// Command pricecalc reproduces the paper's price/performance
// arithmetic: Tables 1 and 2, the August-1997 rebuild price, and the
// $/Mflop figures of merit for the headline runs.
package main

import (
	"flag"
	"fmt"

	"repro/internal/perfmodel"
)

func main() {
	aug97 := flag.Bool("aug97", false, "show only the August 1997 spot-price table")
	flag.Parse()

	if !*aug97 {
		fmt.Println("Table 1: Loki architecture and price (September 1996)")
		fmt.Print(perfmodel.FormatTable(perfmodel.Table1Loki))
		fmt.Println()
	}
	fmt.Println("Table 2: spot prices, August 1997")
	fmt.Print(perfmodel.FormatTable(perfmodel.Table2Spot))
	fmt.Printf("\n16-processor rebuild from Table 2 parts: $%.0f (paper: ~$28k)\n\n",
		perfmodel.Aug97SystemUSD())
	if *aug97 {
		return
	}

	fmt.Println("Price/performance (paper's figures of merit):")
	rows := []struct {
		what   string
		price  float64
		mflops float64
		paper  string
	}{
		{"Loki, 10-day 9.75M-body run (879 Mflops)", perfmodel.Loki.PriceUSD, 879, "$58/Mflop"},
		{"Loki, initial 30 steps (1.19 Gflops)", perfmodel.Loki.PriceUSD, 1190, "$43/Mflop"},
		{"Loki+Hyglac at SC'96 (2.19 Gflops)", perfmodel.SC96.PriceUSD, 2190, "$47/Mflop"},
		{"Hyglac vortex run (950 Mflops)", perfmodel.Hyglac.PriceUSD, 950, "$53/Mflop"},
	}
	for _, r := range rows {
		fmt.Printf("  %-44s $%5.1f/Mflop (paper: %s)\n",
			r.what, perfmodel.PricePerMflop(r.price, r.mflops), r.paper)
	}
}
