// Command pricecalc reproduces the paper's price/performance
// arithmetic: Tables 1 and 2, the August-1997 rebuild price, and the
// $/Mflop figures of merit for the headline runs.
//
// With -modern it re-runs Part II on present-day rented hardware: a
// cloud-instance table (vCPU, clock, FMA width, $/hr -> peak GFLOPS,
// hourly $/TFLOP, five-year rent), plus a measured figure -- a short
// clustered treecode evaluation on this host, its sustained Mflops
// priced at the five-year rent of a matching instance and printed
// next to the paper's $50/Mflop and GRAPE-5's $7/Mflops.
package main

import (
	"flag"
	"fmt"
	"runtime"
	"time"

	"repro/internal/grav"
	"repro/internal/ic"
	"repro/internal/keys"
	"repro/internal/perfmodel"
	"repro/internal/tree"
)

func main() {
	aug97 := flag.Bool("aug97", false, "show only the August 1997 spot-price table")
	modern := flag.Bool("modern", false, "show the modern machine table and a measured $/Mflop on this host")
	modernN := flag.Int("modern-n", 20000, "bodies for the -modern measured run")
	flag.Parse()

	if *modern {
		modernStudy(*modernN)
		return
	}

	if !*aug97 {
		fmt.Println("Table 1: Loki architecture and price (September 1996)")
		fmt.Print(perfmodel.FormatTable(perfmodel.Table1Loki))
		fmt.Println()
	}
	fmt.Println("Table 2: spot prices, August 1997")
	fmt.Print(perfmodel.FormatTable(perfmodel.Table2Spot))
	fmt.Printf("\n16-processor rebuild from Table 2 parts: $%.0f (paper: ~$28k)\n\n",
		perfmodel.Aug97SystemUSD())
	if *aug97 {
		return
	}

	fmt.Println("Price/performance (paper's figures of merit):")
	rows := []struct {
		what   string
		price  float64
		mflops float64
		paper  string
	}{
		{"Loki, 10-day 9.75M-body run (879 Mflops)", perfmodel.Loki.PriceUSD, 879, "$58/Mflop"},
		{"Loki, initial 30 steps (1.19 Gflops)", perfmodel.Loki.PriceUSD, 1190, "$43/Mflop"},
		{"Loki+Hyglac at SC'96 (2.19 Gflops)", perfmodel.SC96.PriceUSD, 2190, "$47/Mflop"},
		{"Hyglac vortex run (950 Mflops)", perfmodel.Hyglac.PriceUSD, 950, "$53/Mflop"},
	}
	for _, r := range rows {
		fmt.Printf("  %-44s $%5.1f/Mflop (paper: %s)\n",
			r.what, perfmodel.PricePerMflop(r.price, r.mflops), r.paper)
	}
}

// modernStudy prints the present-day instance table and a measured
// $/Mflop: a short clustered treecode run on this host gives a
// sustained Mflops rate, which is priced at the five-year rent of the
// smallest listed instance with at least GOMAXPROCS vCPUs (prorated
// to the vCPUs actually used).
func modernStudy(n int) {
	fmt.Println("Modern machine table (on-demand cloud instances):")
	fmt.Print(perfmodel.FormatModernTable(perfmodel.ModernTable))

	procs := runtime.GOMAXPROCS(0)
	mflops, inter := measureTreecode(n)
	fmt.Printf("\nmeasured: %d-body clustered treecode on this host (%d procs)\n", n, procs)
	fmt.Printf("  %d interactions/eval, %.0f sustained Mflops (38 flops/interaction)\n", inter, mflops)

	// Smallest instance that covers this host's parallelism; fall back
	// to the largest. The five-year rent is prorated by the vCPU
	// fraction actually used, matching the paper's convention of
	// pricing only the hardware the run occupied.
	pick := perfmodel.ModernTable[0]
	for _, m := range perfmodel.ModernTable {
		if m.VCPU >= procs && (pick.VCPU < procs || m.VCPU < pick.VCPU) {
			pick = m
		}
	}
	frac := float64(procs) / float64(pick.VCPU)
	if frac > 1 {
		frac = 1
	}
	cost := pick.FiveYearUSD() * frac
	perMflop := perfmodel.PricePerMflop(cost, mflops)
	fmt.Printf("\nprice/performance, five-year rent of %d/%d vCPUs of %s ($%.0f):\n",
		procs, pick.VCPU, pick.Name, cost)
	fmt.Printf("  measured      $%.2f/Mflop\n", perMflop)
	fmt.Printf("  paper (1997)  $%d/Mflop  (Loki, \"about $50/Mflop\")\n", perfmodel.PaperPerMflopUSD)
	fmt.Printf("  GRAPE-5       $%d/Mflops (special-purpose figure the paper cites)\n", perfmodel.Grape5PerMflopUSD)
}

// measureTreecode runs force evaluations over a clustered Plummer
// system through the concurrent pool until ~1 s has elapsed and
// returns the sustained Mflops under the paper's 38-flop accounting,
// plus the per-evaluation interaction count.
func measureTreecode(n int) (mflops float64, interactions uint64) {
	sys := ic.Plummer(n, 1.0, 42)
	d := keys.NewDomain(sys.Pos)
	sys.AssignKeys(d)
	sys.SortByKey()
	mac := grav.MACParams{Kind: grav.MACSalmonWarren, AccelTol: 1e-4, Quad: true}
	tr := tree.Build(sys, d, mac, 16)
	pool := tree.NewForcePool(0)
	defer pool.Close()
	ctr := pool.Gravity(tr, 1e-6) // warm-up: pool buffers reach their high-water mark
	var flops uint64
	start := time.Now()
	for time.Since(start) < time.Second {
		c := pool.Gravity(tr, 1e-6)
		flops += c.Flops()
	}
	wall := time.Since(start).Seconds()
	return float64(flops) / wall / 1e6, ctr.Interactions()
}
