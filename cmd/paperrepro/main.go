// Command paperrepro regenerates every table and figure of the paper
// at laptop scale and prints paper-vs-reproduced rows. See DESIGN.md
// for the experiment index and EXPERIMENTS.md for a recorded run.
//
// Usage:
//
//	paperrepro [-exp all|e1|e2|e3|e4|e5|e6|f1|f2|t1|t2|t3|t4] [-quick]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
	"repro/internal/npb"
	"repro/internal/perfmodel"
)

func main() {
	exp := flag.String("exp", "all", "experiment id (e1..e6, f1, f2, t1..t4, all)")
	quick := flag.Bool("quick", false, "smaller problems (CI sizes)")
	flag.Parse()

	grid := 32
	procs := 8
	if *quick {
		grid, procs = 16, 4
	}

	run := func(id string) {
		switch id {
		case "e1":
			n := 6000
			if *quick {
				n = 2000
			}
			res := experiments.E1(n, procs, 1)
			printRows(res.Rows)
			fmt.Printf("      host wall-clock %.2fs\n", res.HostSeconds)
		case "e2", "ratio":
			res := experiments.E2(grid, procs, 3)
			printRows(res.Rows)
		case "e3":
			printRows(experiments.E3(grid, 3))
		case "e4":
			nt, nc := 48, 4
			if *quick {
				nt, nc = 24, 3
			}
			printRows(experiments.E4(nt, nc, 6))
		case "e5":
			printRows(experiments.E5(grid, 3))
		case "e6":
			printRows(experiments.E6(grid, procs, 3))
		case "f1", "f2":
			g := grid * 2
			steps := 8
			if *quick {
				g, steps = grid, 3
			}
			path := id + ".pgm"
			if err := experiments.Figure(path, g, procs, steps, 512); err != nil {
				fmt.Fprintln(os.Stderr, "figure:", err)
				os.Exit(1)
			}
			fmt.Printf("%s: wrote %s (log-density projection, cf. paper Figure %c)\n", id, path, id[1])
		case "t1":
			fmt.Println("Table 1: Loki architecture and price (September 1996)")
			fmt.Print(perfmodel.FormatTable(perfmodel.Table1Loki))
			fmt.Printf("paper total: $%d\n", perfmodel.Table1Total)
		case "t2":
			fmt.Println("Table 2: spot prices, August 1997")
			fmt.Print(perfmodel.FormatTable(perfmodel.Table2Spot))
			fmt.Printf("16-processor system from these parts: $%.0f (paper: ~$28k)\n",
				perfmodel.Aug97SystemUSD())
		case "t3":
			sizes := npb.MiniB
			if *quick {
				sizes = npb.MiniA
			}
			fmt.Println("Table 3 (shape): NPB at 16 processors, modeled Loki vs ASCI Red")
			fmt.Print(experiments.FormatNPBRows(experiments.NPBTable3(sizes)))
		case "t4":
			ranks := []int{1, 2, 4, 8, 16}
			if *quick {
				ranks = []int{1, 2, 4}
			}
			fmt.Println("Table 4 / Figure 3 (shape): NPB scaling on modeled Loki")
			tab := experiments.NPBTable4(npb.MiniA, ranks)
			for _, np := range ranks {
				fmt.Print(experiments.FormatNPBRows(tab[np]))
			}
		default:
			fmt.Fprintf(os.Stderr, "unknown experiment %q\n", id)
			os.Exit(2)
		}
	}

	if *exp == "all" {
		for _, id := range []string{"e1", "e2", "e3", "e4", "e5", "e6", "f1", "f2", "t1", "t2", "t3", "t4"} {
			fmt.Printf("==== %s ====\n", id)
			run(id)
			fmt.Println()
		}
		return
	}
	run(*exp)
}

func printRows(rows []experiments.Row) {
	for _, r := range rows {
		fmt.Println(" ", r)
	}
}
