// Command treebench benchmarks the parallel hashed oct-tree on a
// clustered body distribution, printing interaction counts, host
// throughput, and modeled throughput on the paper's machines.
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"time"

	"repro/internal/cliutil"
	"repro/internal/core"
	"repro/internal/grav"
	"repro/internal/ic"
	"repro/internal/integrate"
	"repro/internal/metrics"
	"repro/internal/msg"
	"repro/internal/parallel"
	"repro/internal/perfmodel"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

func main() {
	n := flag.Int("n", 100000, "number of bodies")
	procs := flag.Int("procs", 8, "simulated processors")
	steps := flag.Int("steps", 3, "timesteps")
	theta := flag.Float64("theta", 0, "Barnes-Hut opening angle (0 = use -atol)")
	atol := flag.Float64("atol", 1e-4, "Salmon-Warren acceleration error bound")
	bucket := flag.Int("bucket", 16, "tree leaf size")
	traceOut := flag.String("trace", "", "write a Chrome trace_event JSON timeline")
	metricsOut := flag.String("metrics", "", "write a machine-readable RunReport JSON")
	cpuprofile := flag.String("cpuprofile", "", "write a pprof CPU profile")
	memprofile := flag.String("memprofile", "", "write a pprof heap profile at exit")
	chaosSpec := flag.String("chaos", "", `fault injection spec, e.g. "seed=7,crash=0.001,crashphase=walk" (test harness; keys: seed, crash, crashphase, stall, stallphase, latency, reorder)`)
	watchdog := flag.Duration("watchdog", 0, "abort with a stall report after this long without progress (0 = off; chaos runs default to 5s)")
	dtmode := flag.String("dtmode", "uniform", "time stepping: uniform (one rung) or block (hierarchical per-body sub-steps)")
	eta := flag.Float64("eta", 0.02, "block-timestep criterion scale: dt_i = eta*sqrt(eps/|a_i|)")
	evalWorkers := flag.Int("evalworkers", 0, "walk/eval pipeline workers: completed groups evaluate under the batched-message collectives (0 = inline historical schedule; forces identical either way)")
	prefetch := flag.Int("prefetch", 0, "serve-side prefetch depth: replies piggyback the subtree below each requested cell, cutting request rounds (0 = off)")
	httpAddr := flag.String("http", "", "serve live telemetry (/metrics /series /health /report /debug/pprof) on this address (:0 picks a port)")
	noProgress := flag.Duration("noprogress", 3*time.Second, "telemetry no-progress health threshold (with -http; 0 = off)")
	flag.Parse()
	lg := telemetry.NewLogger(os.Stderr, "treebench")
	inj, err := cliutil.Flags{
		N: *n, Procs: *procs, Steps: *steps, DTMode: *dtmode, Eta: *eta,
		EvalWorkers: *evalWorkers, Prefetch: *prefetch, Chaos: *chaosSpec,
	}.Validate()
	if err != nil {
		cliutil.Fail("treebench", err)
	}

	if *cpuprofile != "" {
		stop, err := trace.StartCPUProfile(*cpuprofile)
		if err != nil {
			lg.Error("cpuprofile failed", "err", err)
			os.Exit(1)
		}
		defer stop()
	}
	var run *trace.Run
	if *traceOut != "" || *httpAddr != "" {
		run = trace.NewRun(*procs)
	}
	var reg *metrics.Registry
	var stalls *metrics.Histogram
	if *metricsOut != "" || *traceOut != "" || *httpAddr != "" {
		reg = metrics.NewRegistry()
		stalls = reg.Histogram(metrics.StallHistogram)
	}

	var tel *telemetry.Sampler
	if *httpAddr != "" {
		mon := telemetry.DefaultMonitors()
		mon.NoProgress = *noProgress
		mon.Log = lg
		tel = telemetry.NewSampler(telemetry.Config{
			NP: *procs, Registry: reg, Trace: run, Monitors: mon, Command: "treebench",
		})
		defer tel.Close()
		ep, err := telemetry.Serve(*httpAddr, tel, lg)
		if err != nil {
			lg.Error("telemetry endpoint failed", "err", err)
			os.Exit(1)
		}
		defer ep.Close()
		// The smoke test (scripts/telemetry_smoke.sh) greps this line to
		// discover the :0-assigned port.
		fmt.Printf("telemetry: listening on %s\n", ep.Addr)
	}

	global := ic.Plummer(*n, 1.0, 42)
	mac := grav.MACParams{Kind: grav.MACSalmonWarren, AccelTol: *atol, Quad: true}
	if *theta > 0 {
		mac = grav.MACParams{Kind: grav.MACBarnesHut, Theta: *theta, Quad: true}
	}

	engines := make([]*parallel.Engine, *procs)
	w := msg.NewWorld(*procs)
	w.SetTrace(run)
	if inj != nil {
		w.SetInjector(inj)
		if *watchdog == 0 {
			*watchdog = 5 * time.Second
		}
	}
	if *watchdog > 0 {
		w.StartWatchdog(msg.WatchdogConfig{Quiet: *watchdog, Stacks: true, Log: lg})
	}
	start := time.Now()
	werr := w.RunErr(func(c *msg.Comm) {
		local := core.New(0)
		local.EnableDynamics()
		lo, hi := c.Rank()**n / *procs, (c.Rank()+1)**n / *procs
		for i := lo; i < hi; i++ {
			local.AppendFrom(global, i)
		}
		e := parallel.New(c, local, parallel.Config{
			MAC: mac, Bucket: *bucket, Eps2: 1e-6,
			EvalWorkers: *evalWorkers, PrefetchDepth: *prefetch,
		})
		if *dtmode == "block" {
			e.Stepper.Scheme = integrate.Block
			e.Stepper.Eta = *eta
			e.Stepper.Eps = math.Sqrt(1e-6)
		}
		if run != nil {
			e.EnableTrace(run.Rank(c.Rank()))
		}
		e.Stalls = stalls
		t0 := time.Now()
		e.ComputeForces()
		if tel != nil {
			// The initial evaluation is sample 1: energies are current
			// here, giving the drift monitor its E0 baseline.
			tel.Contribute(c.Rank(), e.Telemetry(time.Since(t0).Nanoseconds()))
		}
		for s := 0; s < *steps; s++ {
			t0 = time.Now()
			e.Step(1e-3)
			if tel != nil {
				tel.Contribute(c.Rank(), e.Telemetry(time.Since(t0).Nanoseconds()))
			}
		}
		engines[c.Rank()] = e
	})
	wall := time.Since(start).Seconds()
	if inj != nil {
		st := inj.Stats()
		lg.Info("chaos: injection summary",
			"delays", st.Delays, "reorders", st.Reorders, "stalls", st.Stalls, "crashes", st.Crashes)
		if reg != nil {
			reg.Counter(metrics.ChaosDelays).Add(st.Delays)
			reg.Counter(metrics.ChaosReorders).Add(st.Reorders)
			reg.Counter(metrics.ChaosStalls).Add(st.Stalls)
			reg.Counter(metrics.ChaosCrashes).Add(st.Crashes)
		}
	}
	if werr != nil {
		// Structured abort: exit code 3 distinguishes a contained
		// failure from a crash (panic) or a hang (harness timeout).
		lg.Error("world aborted", "err", werr)
		os.Exit(3)
	}

	var inter, flops uint64
	for _, e := range engines {
		inter += e.Counters.Interactions()
		flops += e.Counters.Flops()
	}
	evals := uint64(*steps + 1)
	fmt.Printf("N=%d procs=%d evaluations=%d\n", *n, *procs, evals)
	fmt.Printf("interactions: %d total, %.1f per body per evaluation\n",
		inter, float64(inter)/float64(*n)/float64(evals))
	fmt.Printf("flops (38/interaction): %d\n", flops)
	fmt.Printf("host: %.2fs wall, %.2f Gflops-equivalent\n", wall, float64(flops)/wall/1e9)
	comm := w.MaxRankTraffic()
	fmt.Printf("comm (max rank): %d msgs, %.2f MB\n", comm.Msgs, float64(comm.Bytes)/1e6)
	if *dtmode == "block" {
		var active, total uint64
		for _, e := range engines {
			active += e.Stepper.Stats.ActiveSinks
			total += e.Stepper.Stats.TotalSinks
		}
		st := engines[0].Stepper.Stats
		if total > 0 {
			fmt.Printf("block stepping: %d sub-steps (%d full + %d partial evals), active fraction %.4f\n",
				st.SubSteps, st.FullEvals, st.PartialEvals, float64(active)/float64(total))
		}
	}

	if *metricsOut != "" {
		inputs := make([]metrics.RankInput, len(engines))
		for r, e := range engines {
			inputs[r] = e.Report()
		}
		rep := metrics.BuildReport("treebench", *n, wall, inputs, w, reg)
		rep.TraceDropped = run.Dropped()
		if err := rep.WriteFile(*metricsOut); err != nil {
			lg.Error("metrics write failed", "err", err)
			os.Exit(1)
		}
		fmt.Printf("wrote RunReport %s\n", *metricsOut)
	}
	if *traceOut != "" {
		if err := run.WriteChromeFile(*traceOut); err != nil {
			lg.Error("trace write failed", "err", err)
			os.Exit(1)
		}
		if d := run.Dropped(); d > 0 {
			lg.Warn("trace ring dropped events; exported timeline is incomplete",
				"dropped", d, "path", *traceOut)
		}
		fmt.Printf("wrote trace %s (%d events dropped)\n", *traceOut, run.Dropped())
	}
	if *memprofile != "" {
		if err := trace.WriteHeapProfile(*memprofile); err != nil {
			lg.Error("memprofile failed", "err", err)
			os.Exit(1)
		}
	}
	for _, m := range []*perfmodel.Machine{&perfmodel.Loki, &perfmodel.ASCIRed} {
		est := m.Model(flops, perfmodel.RegimeTreeEarly, comm)
		fmt.Printf("modeled on %s\n  %s\n", m.Name, est)
	}
}
