// Command npbrun executes the NPB kernel reproductions and prints the
// paper's Table 3 (16-processor Loki vs ASCI Red) and Table 4 /
// Figure 3 (rank scaling) in shape.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/experiments"
	"repro/internal/msg"
	"repro/internal/npb"
)

func main() {
	table3 := flag.Bool("table3", false, "16-rank Loki vs Red comparison")
	table4 := flag.Bool("table4", false, "rank sweep (Table 4 / Figure 3)")
	kernel := flag.String("kernel", "", "run one kernel (EP,IS,FT,MG,CG,BT,SP,LU)")
	ranks := flag.Int("ranks", 4, "rank count for -kernel")
	big := flag.Bool("big", false, "use the larger mini class")
	flag.Parse()

	sizes := npb.MiniA
	if *big {
		sizes = npb.MiniB
	}

	switch {
	case *table3:
		fmt.Println("Table 3 (shape): NPB per-kernel Mop/s at 16 processors")
		fmt.Print(experiments.FormatNPBRows(experiments.NPBTable3(sizes)))
		fmt.Println("\npaper's Table 3 shape: ASCI Red 10-30% ahead of Loki on the")
		fmt.Println("compute kernels, far ahead only on the bandwidth-hungry IS.")
	case *table4:
		fmt.Println("Table 4 / Figure 3 (shape): NPB scaling on modeled Loki")
		rankList := []int{1, 2, 4, 8, 16}
		tab := experiments.NPBTable4(sizes, rankList)
		// Print as one series per kernel, like Figure 3.
		fmt.Printf("%-3s", "Krn")
		for _, np := range rankList {
			fmt.Printf(" %10s", fmt.Sprintf("x%d Mop/s", np))
		}
		fmt.Println()
		for i, k := range npb.Kernels {
			fmt.Printf("%-3s", k)
			for _, np := range rankList {
				fmt.Printf(" %10.1f", tab[np][i].LokiMops)
			}
			fmt.Println()
		}
	case *kernel != "":
		name := strings.ToUpper(*kernel)
		msg.Run(*ranks, func(c *msg.Comm) {
			r := npb.RunKernel(c, name, sizes)
			if c.Rank() == 0 {
				fmt.Println(r)
			}
		})
	default:
		fmt.Fprintln(os.Stderr, "one of -table3, -table4 or -kernel required")
		os.Exit(2)
	}
}
