// Command halofind runs the post-processing science pipeline on a
// striped snapshot set: friends-of-friends halo identification (the
// paper's "galaxies which can be compared to observational results"),
// the halo mass function, and the two-point correlation function of
// the matter field.
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"repro/internal/analysis"
	"repro/internal/snapio"
	"repro/internal/tree"
)

func main() {
	dir := flag.String("dir", ".", "snapshot directory")
	base := flag.String("base", "cosmo", "snapshot base name")
	stripes := flag.Int("stripes", 4, "stripe count")
	linking := flag.Float64("b", 0.0, "FOF linking length (0 = 0.2x mean spacing)")
	minMembers := flag.Int("min", 10, "minimum halo membership")
	flag.Parse()

	sys, tm, err := snapio.ReadStriped(*dir, *base, *stripes)
	if err != nil {
		fmt.Fprintln(os.Stderr, "read snapshot:", err)
		os.Exit(1)
	}
	fmt.Printf("snapshot: %d bodies at t = %g\n", sys.Len(), tm)

	b := *linking
	if b <= 0 {
		// Mean interparticle spacing from the bounding volume.
		lo, hi := sys.Pos[0], sys.Pos[0]
		for _, p := range sys.Pos {
			if p.X < lo.X {
				lo.X = p.X
			}
			if p.Y < lo.Y {
				lo.Y = p.Y
			}
			if p.Z < lo.Z {
				lo.Z = p.Z
			}
			if p.X > hi.X {
				hi.X = p.X
			}
			if p.Y > hi.Y {
				hi.Y = p.Y
			}
			if p.Z > hi.Z {
				hi.Z = p.Z
			}
		}
		vol := (hi.X - lo.X) * (hi.Y - lo.Y) * (hi.Z - lo.Z)
		if vol <= 0 {
			vol = 1
		}
		spacing := math.Cbrt(vol / float64(sys.Len()))
		b = 0.2 * spacing
		fmt.Printf("linking length b = %.4g (0.2 x mean spacing)\n", b)
	}

	halos := analysis.FOF(sys, b, *minMembers)
	fmt.Printf("\n%d halos with >= %d members\n", len(halos), *minMembers)
	for i, h := range halos {
		if i >= 10 {
			fmt.Printf("  ... and %d more\n", len(halos)-10)
			break
		}
		fmt.Printf("  %3d: %6d members  M=%.4g  r50=%.4g  center=(%.3f %.3f %.3f)\n",
			i, len(h.Members), h.Mass, h.R50, h.Center.X, h.Center.Y, h.Center.Z)
	}

	if len(halos) > 1 {
		mass, count := analysis.MassFunction(halos, 8)
		fmt.Println("\nhalo mass function (log bins):")
		for k := range mass {
			if count[k] > 0 {
				fmt.Printf("  M ~ %10.4g : %d\n", mass[k], count[k])
			}
		}
	}

	// Two-point correlation over two decades below the system scale.
	_, size := tree.GroupSphere(sys.Pos)
	if size == 0 {
		size = 1
	}
	r, xi := analysis.TwoPointCorrelation(sys, size/100, size/3, 8)
	fmt.Println("\ntwo-point correlation xi(r):")
	for k := range r {
		fmt.Printf("  r = %8.4g : xi = %+9.3f\n", r[k], xi[k])
	}
}
