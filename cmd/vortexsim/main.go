// Command vortexsim runs the fusion of two vortex rings with the
// vortex particle method -- the paper's Hyglac showcase -- including
// the periodic remeshing that grows the particle count, and reports
// the paper-style flop accounting.
package main

import (
	"flag"
	"fmt"
	"os"
	"sync"
	"time"

	"repro/internal/cliutil"
	"repro/internal/core"
	"repro/internal/diag"
	"repro/internal/ic"
	"repro/internal/metrics"
	"repro/internal/msg"
	"repro/internal/perfmodel"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/vec"
	"repro/internal/vortex"
)

func main() {
	nTheta := flag.Int("ntheta", 64, "points around each ring")
	nCore := flag.Int("ncore", 4, "points across each core")
	steps := flag.Int("steps", 30, "timesteps")
	remeshEvery := flag.Int("remesh", 10, "remesh interval (0 = off)")
	dt := flag.Float64("dt", 0.02, "timestep")
	sigma := flag.Float64("sigma", 0.12, "core smoothing radius")
	theta := flag.Float64("theta", 0.5, "opening angle")
	procs := flag.Int("procs", 1, "in-process ranks (>1 runs the distributed engine; remeshing off)")
	traceOut := flag.String("trace", "", "write a Chrome trace_event JSON timeline (needs -procs > 1)")
	metricsOut := flag.String("metrics", "", "write a machine-readable RunReport JSON (needs -procs > 1)")
	cpuprofile := flag.String("cpuprofile", "", "write a pprof CPU profile")
	memprofile := flag.String("memprofile", "", "write a pprof heap profile at exit")
	httpAddr := flag.String("http", "", "serve live telemetry (/metrics /series /health /report /debug/pprof) on this address (:0 picks a port)")
	noProgress := flag.Duration("noprogress", 3*time.Second, "telemetry no-progress health threshold (with -http; 0 = off)")
	evalWorkers := flag.Int("evalworkers", 0, "walk/eval pipeline workers for the distributed run: completed groups evaluate under the batched-message collectives (0 = inline historical schedule; results identical either way)")
	prefetch := flag.Int("prefetch", 0, "serve-side prefetch depth for the distributed run: replies piggyback the subtree below each requested cell (0 = off)")
	flag.Parse()
	lg := telemetry.NewLogger(os.Stderr, "vortexsim")
	if _, err := (cliutil.Flags{
		N: *nTheta * *nCore, Procs: *procs, Steps: *steps,
		EvalWorkers: *evalWorkers, Prefetch: *prefetch,
	}).Validate(); err != nil {
		cliutil.Fail("vortexsim", err)
	}

	if *cpuprofile != "" {
		stop, err := trace.StartCPUProfile(*cpuprofile)
		if err != nil {
			lg.Error("cpuprofile failed", "err", err)
			os.Exit(1)
		}
		defer stop()
	}
	if (*traceOut != "" || *metricsOut != "" || *httpAddr != "") && *procs <= 1 {
		lg.Error("-trace/-metrics/-http instrument the distributed engine; use -procs > 1")
		os.Exit(1)
	}
	var run *trace.Run
	if *traceOut != "" || *httpAddr != "" {
		run = trace.NewRun(*procs)
	}
	var reg *metrics.Registry
	var stalls *metrics.Histogram
	if *metricsOut != "" || *traceOut != "" || *httpAddr != "" {
		reg = metrics.NewRegistry()
		stalls = reg.Histogram(metrics.StallHistogram)
	}
	var tel *telemetry.Sampler
	if *httpAddr != "" {
		mon := telemetry.DefaultMonitors()
		mon.NoProgress = *noProgress
		mon.Log = lg
		tel = telemetry.NewSampler(telemetry.Config{
			NP: *procs, Registry: reg, Trace: run, Monitors: mon, Command: "vortexsim",
		})
		defer tel.Close()
		ep, err := telemetry.Serve(*httpAddr, tel, lg)
		if err != nil {
			lg.Error("telemetry endpoint failed", "err", err)
			os.Exit(1)
		}
		defer ep.Close()
		fmt.Printf("telemetry: listening on %s\n", ep.Addr)
	}

	sys := core.New(0)
	sys.EnableDynamics()
	sys.EnableVortex()
	// Two parallel rings, offset so they attract and merge.
	ic.VortexRing(sys, 1.0, 1.0, *sigma, vec.V3{X: -0.75}, vec.V3{Z: 1}, *nTheta, *nCore, 41)
	ic.VortexRing(sys, 1.0, 1.0, *sigma, vec.V3{X: 0.75}, vec.V3{Z: 1}, *nTheta, *nCore, 43)
	fmt.Printf("initial particles: %d (paper run: 57,000)\n", sys.Len())

	var total diag.Counters
	var w *msg.World
	var inputs []metrics.RankInput
	start := time.Now()
	if *procs > 1 {
		sys, total, w, inputs = runParallel(sys, *steps, *dt, *sigma, *theta, *procs, *evalWorkers, *prefetch, run, stalls, tel)
	} else {
		for s := 0; s < *steps; s++ {
			ctr := vortex.Step(sys, *sigma, *theta, *dt)
			total.Add(ctr)
			if *remeshEvery > 0 && (s+1)%*remeshEvery == 0 {
				before := sys.Len()
				sys = vortex.Remesh(sys, *sigma/2, 1e-4)
				fmt.Printf("step %3d: remesh %d -> %d particles\n", s, before, sys.Len())
			}
			if s%10 == 0 {
				c := vortex.Centroid(sys.Pos, sys.Alpha)
				i := vortex.LinearImpulse(sys.Pos, sys.Alpha)
				fmt.Printf("step %3d: centroid z=%.3f, impulse=(%.3f,%.3f,%.3f)\n",
					s, c.Z, i.X, i.Y, i.Z)
			}
		}
	}
	wall := time.Since(start).Seconds()

	fmt.Printf("final particles: %d (paper ended at 360,000)\n", sys.Len())
	fmt.Printf("vortex interactions: %d, flops: %d\n", total.VortexPP, total.Flops())
	fmt.Printf("host: %.2fs, %.1f Mflops-equivalent\n", wall, float64(total.Flops())/wall/1e6)
	est := perfmodel.Hyglac.Model(total.Flops(), perfmodel.RegimeTreeClustered, msg.PhaseTraffic{})
	fmt.Printf("modeled on %s: %s (paper sustained ~950 Mflops over 20 h)\n",
		perfmodel.Hyglac.Name, est)

	if *metricsOut != "" {
		rep := metrics.BuildReport("vortexsim", sys.Len(), wall, inputs, w, reg)
		rep.TraceDropped = run.Dropped()
		if err := rep.WriteFile(*metricsOut); err != nil {
			lg.Error("metrics write failed", "err", err)
			os.Exit(1)
		}
		fmt.Printf("wrote RunReport %s\n", *metricsOut)
	}
	if *traceOut != "" {
		if err := run.WriteChromeFile(*traceOut); err != nil {
			lg.Error("trace write failed", "err", err)
			os.Exit(1)
		}
		if d := run.Dropped(); d > 0 {
			lg.Warn("trace ring dropped events; exported timeline is incomplete",
				"dropped", d, "path", *traceOut)
		}
		fmt.Printf("wrote trace %s (%d events dropped)\n", *traceOut, run.Dropped())
	}
	if *memprofile != "" {
		if err := trace.WriteHeapProfile(*memprofile); err != nil {
			lg.Error("memprofile failed", "err", err)
			os.Exit(1)
		}
	}
}

// runParallel evolves the ring pair on the distributed vortex engine:
// each in-process rank owns a slab of particles and the shared
// hotengine pipeline supplies the decomposition, branch exchange and
// batched request rounds. Returns the gathered final system and the
// summed counters; rank 0 prints the per-phase timer breakdown the
// shared core provides (the diagnostics parity gravity always had).
// run, stalls and tel, when non-nil, instrument every rank.
func runParallel(global *core.System, steps int, dt, sigma, theta float64, procs, evalWorkers, prefetch int,
	run *trace.Run, stalls *metrics.Histogram, tel *telemetry.Sampler) (*core.System, diag.Counters, *msg.World, []metrics.RankInput) {
	n := global.Len()
	var mu sync.Mutex
	var total diag.Counters
	merged := core.New(0)
	merged.EnableDynamics()
	merged.EnableVortex()
	inputs := make([]metrics.RankInput, procs)
	w := msg.NewWorld(procs)
	w.SetTrace(run)
	w.Run(func(c *msg.Comm) {
		lo, hi := c.Rank()*n/c.Size(), (c.Rank()+1)*n/c.Size()
		local := core.New(0)
		local.EnableDynamics()
		local.EnableVortex()
		for i := lo; i < hi; i++ {
			local.AppendFrom(global, i)
		}

		e := vortex.NewParallel(c, local, sigma, theta)
		if evalWorkers > 0 || prefetch > 0 {
			e.EnableOverlap(evalWorkers, prefetch)
		}
		if run != nil {
			e.EnableTrace(run.Rank(c.Rank()))
		}
		e.Stalls = stalls
		for s := 0; s < steps; s++ {
			t0 := time.Now()
			e.Step(dt)
			if tel != nil {
				tel.Contribute(c.Rank(), e.Telemetry(time.Since(t0).Nanoseconds()))
			}
		}

		mu.Lock()
		defer mu.Unlock()
		total.Add(e.Counters)
		inputs[c.Rank()] = e.Report()
		for i := 0; i < e.Sys.Len(); i++ {
			merged.AppendFrom(e.Sys, i)
		}
		if c.Rank() == 0 {
			fmt.Println("rank 0 phase breakdown:")
			for _, ph := range e.Timer.Phases() {
				fmt.Printf("  %-12s %v\n", ph, e.Timer.Get(ph))
			}
			fmt.Printf("  rounds=%d remoteCells=%d\n", e.Rounds, e.RemoteCells)
		}
	})
	c := vortex.Centroid(merged.Pos, merged.Alpha)
	i := vortex.LinearImpulse(merged.Pos, merged.Alpha)
	fmt.Printf("final state: centroid z=%.3f, impulse=(%.3f,%.3f,%.3f)\n", c.Z, i.X, i.Y, i.Z)
	return merged, total, w, inputs
}
