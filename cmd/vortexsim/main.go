// Command vortexsim runs the fusion of two vortex rings with the
// vortex particle method -- the paper's Hyglac showcase -- including
// the periodic remeshing that grows the particle count, and reports
// the paper-style flop accounting.
package main

import (
	"flag"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/diag"
	"repro/internal/ic"
	"repro/internal/msg"
	"repro/internal/perfmodel"
	"repro/internal/vec"
	"repro/internal/vortex"
)

func main() {
	nTheta := flag.Int("ntheta", 64, "points around each ring")
	nCore := flag.Int("ncore", 4, "points across each core")
	steps := flag.Int("steps", 30, "timesteps")
	remeshEvery := flag.Int("remesh", 10, "remesh interval (0 = off)")
	dt := flag.Float64("dt", 0.02, "timestep")
	sigma := flag.Float64("sigma", 0.12, "core smoothing radius")
	theta := flag.Float64("theta", 0.5, "opening angle")
	flag.Parse()

	sys := core.New(0)
	sys.EnableDynamics()
	sys.EnableVortex()
	// Two parallel rings, offset so they attract and merge.
	ic.VortexRing(sys, 1.0, 1.0, *sigma, vec.V3{X: -0.75}, vec.V3{Z: 1}, *nTheta, *nCore, 41)
	ic.VortexRing(sys, 1.0, 1.0, *sigma, vec.V3{X: 0.75}, vec.V3{Z: 1}, *nTheta, *nCore, 43)
	fmt.Printf("initial particles: %d (paper run: 57,000)\n", sys.Len())

	var total diag.Counters
	start := time.Now()
	for s := 0; s < *steps; s++ {
		ctr := vortex.Step(sys, *sigma, *theta, *dt)
		total.Add(ctr)
		if *remeshEvery > 0 && (s+1)%*remeshEvery == 0 {
			before := sys.Len()
			sys = vortex.Remesh(sys, *sigma/2, 1e-4)
			fmt.Printf("step %3d: remesh %d -> %d particles\n", s, before, sys.Len())
		}
		if s%10 == 0 {
			c := vortex.Centroid(sys.Pos, sys.Alpha)
			i := vortex.LinearImpulse(sys.Pos, sys.Alpha)
			fmt.Printf("step %3d: centroid z=%.3f, impulse=(%.3f,%.3f,%.3f)\n",
				s, c.Z, i.X, i.Y, i.Z)
		}
	}
	wall := time.Since(start).Seconds()

	fmt.Printf("final particles: %d (paper ended at 360,000)\n", sys.Len())
	fmt.Printf("vortex interactions: %d, flops: %d\n", total.VortexPP, total.Flops())
	fmt.Printf("host: %.2fs, %.1f Mflops-equivalent\n", wall, float64(total.Flops())/wall/1e6)
	est := perfmodel.Hyglac.Model(total.Flops(), perfmodel.RegimeTreeClustered, msg.PhaseTraffic{})
	fmt.Printf("modeled on %s: %s (paper sustained ~950 Mflops over 20 h)\n",
		perfmodel.Hyglac.Name, est)
}
