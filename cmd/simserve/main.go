// Command simserve runs the simulation service: one daemon, many
// concurrent simulation jobs, each isolated in its own msg world.
//
//	simserve -addr :8420                 # serve
//	simserve -bench                      # load test an in-process server
//	simserve -bench -target http://host  # load test a running daemon
//
// The bench mode is the service's throughput ruler: it keeps -conc
// jobs in flight until -jobs have finished, then reports jobs/sec and
// the p50/p99 submit-to-terminal latency -- the service-tier analogue
// of the paper's Gflops headline, with the box's job throughput as
// the figure of merit.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"sync"
	"syscall"
	"time"

	"repro/internal/cliutil"
	"repro/internal/simserve"
	"repro/internal/telemetry"
)

func main() {
	addr := flag.String("addr", ":8420", "listen address (:0 picks a port)")
	workers := flag.Int("workers", 4, "concurrently running worlds")
	queue := flag.Int("queue", 256, "admitted-but-not-started job cap (beyond it: HTTP 429)")
	batchWindow := flag.Duration("batchwindow", 5*time.Millisecond, "admission batch window")
	batchSize := flag.Int("batchsize", 16, "admission batch size cap")
	maxBodies := flag.Int("maxbodies", 1_000_000, "per-job body cap")
	maxNP := flag.Int("maxnp", 64, "per-job rank cap")
	watchdog := flag.Duration("watchdog", 30*time.Second, "per-job stall watchdog quiet period (negative = off)")
	bench := flag.Bool("bench", false, "run the load driver instead of serving")
	target := flag.String("target", "", "bench an already-running daemon at this base URL (default: in-process server)")
	benchJobs := flag.Int("jobs", 192, "bench: total jobs to run")
	benchConc := flag.Int("conc", 64, "bench: jobs kept in flight")
	n := flag.Int("n", 500, "bench: bodies per job")
	np := flag.Int("np", 2, "bench: ranks per job")
	steps := flag.Int("steps", 1, "bench: timesteps per job")
	flag.Parse()
	if _, err := (cliutil.Flags{N: *n, Procs: *np, Steps: *steps, DTMode: "uniform", Eta: 0.02}).Validate(); err != nil {
		cliutil.Fail("simserve", err)
	}
	if *workers < 1 || *queue < 1 {
		cliutil.Fail("simserve", fmt.Errorf("-workers and -queue must be >= 1"))
	}
	lg := telemetry.NewLogger(os.Stderr, "simserve")
	cfg := simserve.Config{
		Workers: *workers, QueueDepth: *queue,
		BatchWindow: *batchWindow, BatchSize: *batchSize,
		MaxBodies: *maxBodies, MaxNP: *maxNP,
		Watchdog: *watchdog, Log: lg,
	}

	if *bench {
		base := *target
		if base == "" {
			m := simserve.New(cfg)
			defer m.Close()
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				lg.Error("bench listener failed", "err", err)
				os.Exit(1)
			}
			srv := &http.Server{Handler: simserve.Handler(m)}
			go srv.Serve(ln)
			defer srv.Close()
			base = "http://" + ln.Addr().String()
			fmt.Printf("simserve: bench server on %s\n", base)
		}
		if err := runBench(base, *benchJobs, *benchConc, *n, *np, *steps); err != nil {
			lg.Error("bench failed", "err", err)
			os.Exit(1)
		}
		return
	}

	m := simserve.New(cfg)
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		lg.Error("listen failed", "addr", *addr, "err", err)
		os.Exit(1)
	}
	srv := &http.Server{Handler: simserve.Handler(m)}
	// The smoke test (scripts/simserve_smoke.sh) greps this line to
	// discover the :0-assigned port.
	fmt.Printf("simserve: listening on %s\n", ln.Addr())
	lg.Info("serving", "addr", ln.Addr().String(), "workers", *workers, "queue", *queue)

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	select {
	case sig := <-stop:
		lg.Info("shutting down", "signal", sig.String())
		srv.Close()
		m.Close()
	case err := <-done:
		lg.Error("server exited", "err", err)
		m.Close()
		os.Exit(1)
	}
}

// runBench keeps conc jobs in flight over HTTP until total have gone
// terminal, then prints throughput and the latency quantiles.
func runBench(base string, total, conc, n, np, steps int) error {
	if total < conc {
		total = conc
	}
	spec, _ := json.Marshal(simserve.Spec{
		Physics: simserve.PhysicsGravity, N: n, NP: np, Steps: steps,
	})
	client := &http.Client{Timeout: 30 * time.Second}

	var mu sync.Mutex
	lat := make([]time.Duration, 0, total)
	var completed, failed, rejected int

	next := make(chan struct{}, total)
	for i := 0; i < total; i++ {
		next <- struct{}{}
	}
	close(next)

	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < conc; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for range next {
				t0 := time.Now()
				state, err := runOne(client, base, spec)
				d := time.Since(t0)
				mu.Lock()
				switch {
				case err != nil:
					rejected++
				case state == simserve.StateCompleted:
					completed++
					lat = append(lat, d)
				default:
					failed++
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	wall := time.Since(start)

	if completed == 0 {
		return fmt.Errorf("no job completed (%d failed, %d rejected)", failed, rejected)
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	q := func(p float64) time.Duration {
		i := int(p * float64(len(lat)-1))
		return lat[i].Round(time.Millisecond)
	}
	fmt.Printf("bench: %d jobs (%d in flight), n=%d np=%d steps=%d\n", total, conc, n, np, steps)
	fmt.Printf("bench: %d completed, %d failed, %d rejected in %.2fs\n", completed, failed, rejected, wall.Seconds())
	fmt.Printf("bench: %.1f jobs/sec, latency p50=%v p99=%v\n",
		float64(completed)/wall.Seconds(), q(0.50), q(0.99))
	return nil
}

// runOne submits one job and polls its status to a terminal state.
func runOne(client *http.Client, base string, spec []byte) (simserve.State, error) {
	resp, err := client.Post(base+"/jobs", "application/json", bytes.NewReader(spec))
	if err != nil {
		return "", err
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		return "", fmt.Errorf("submit: %d %s", resp.StatusCode, bytes.TrimSpace(body))
	}
	var st simserve.Status
	if err := json.Unmarshal(body, &st); err != nil {
		return "", err
	}
	for {
		r, err := client.Get(base + "/jobs/" + st.ID)
		if err != nil {
			return "", err
		}
		b, _ := io.ReadAll(r.Body)
		r.Body.Close()
		if r.StatusCode != http.StatusOK {
			return "", fmt.Errorf("status: %d %s", r.StatusCode, bytes.TrimSpace(b))
		}
		if err := json.Unmarshal(b, &st); err != nil {
			return "", err
		}
		if st.State.Terminal() {
			return st.State, nil
		}
		time.Sleep(2 * time.Millisecond)
	}
}
