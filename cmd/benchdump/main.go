// Command benchdump converts `go test -bench` output into a stable
// JSON baseline, so successive PRs can diff performance instead of
// eyeballing bench logs:
//
//	go test -run=NONE -bench=Ablation -benchtime=1x . | go run ./cmd/benchdump -o BENCH_baseline.json
//
// Every benchmark line becomes a name plus a metric map (ns/op,
// B/op, allocs/op, and any custom b.ReportMetric units). Header lines
// (goos/goarch/cpu) are captured into the envelope. Output is sorted
// by name and deterministic for a given input.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// Bench is one parsed benchmark result.
type Bench struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Baseline is the emitted document.
type Baseline struct {
	Go         string  `json:"go"`
	GOOS       string  `json:"goos,omitempty"`
	GOARCH     string  `json:"goarch,omitempty"`
	CPU        string  `json:"cpu,omitempty"`
	Pkg        string  `json:"pkg,omitempty"`
	Benchmarks []Bench `json:"benchmarks"`
}

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	base := Baseline{Go: runtime.Version()}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			base.GOOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
			continue
		case strings.HasPrefix(line, "goarch:"):
			base.GOARCH = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
			continue
		case strings.HasPrefix(line, "cpu:"):
			base.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
			continue
		case strings.HasPrefix(line, "pkg:"):
			base.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		if b, ok := parseBenchLine(line); ok {
			base.Benchmarks = append(base.Benchmarks, b)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchdump: read:", err)
		os.Exit(1)
	}
	sort.Slice(base.Benchmarks, func(i, j int) bool {
		return base.Benchmarks[i].Name < base.Benchmarks[j].Name
	})

	enc, err := json.MarshalIndent(&base, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdump: encode:", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchdump: write:", err)
		os.Exit(1)
	}
}

// parseBenchLine parses "BenchmarkFoo-8  4  123 ns/op  7 B/op  0.5 x/op".
// Fields after the iteration count come in (value, unit) pairs.
func parseBenchLine(line string) (Bench, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Bench{}, false
	}
	name := fields[0]
	// Strip the -GOMAXPROCS suffix so baselines diff across machines.
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Bench{}, false
	}
	b := Bench{Name: name, Iterations: iters, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		b.Metrics[fields[i+1]] = v
	}
	return b, len(b.Metrics) > 0
}
