// Command benchdump converts `go test -bench` output into a stable
// JSON baseline, so successive PRs can diff performance instead of
// eyeballing bench logs:
//
//	go test -run=NONE -bench=Ablation -benchtime=1x . | go run ./cmd/benchdump -o BENCH_baseline.json
//
// Every benchmark line becomes a name plus a metric map (ns/op,
// B/op, allocs/op, and any custom b.ReportMetric units). Header lines
// (goos/goarch/cpu) are captured into the envelope. Output is sorted
// by name and deterministic for a given input.
//
// With -compare it becomes the CI guardrail instead: fresh bench
// output on stdin is diffed against the committed baseline, and the
// exit status is 1 if any matched benchmark's ns/op regressed beyond
// -tol, or its allocs/op grew at all:
//
//	go test -run=NONE -bench=Ablation_Batched -benchtime=1x . | \
//	  go run ./cmd/benchdump -compare BENCH_baseline.json -match Ablation_Batched -tol 0.15
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"

	"repro/internal/metrics"
)

// Bench is one parsed benchmark result.
type Bench struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// SimContext is the slice of a RunReport a baseline carries along: a
// bench number without the simulation that produced it (bodies, ranks,
// achieved flop rate) is hard to interpret a month later.
type SimContext struct {
	Command      string  `json:"command"`
	NP           int     `json:"np"`
	Bodies       int     `json:"bodies"`
	WallSeconds  float64 `json:"wall_seconds"`
	Interactions uint64  `json:"interactions"`
	FlopsRate    float64 `json:"flops_rate"`
}

// Baseline is the emitted document.
type Baseline struct {
	Go         string      `json:"go"`
	GOOS       string      `json:"goos,omitempty"`
	GOARCH     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Pkg        string      `json:"pkg,omitempty"`
	Sim        *SimContext `json:"sim,omitempty"`
	Benchmarks []Bench     `json:"benchmarks"`
}

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	compare := flag.String("compare", "", "baseline JSON to compare stdin against (compare mode)")
	match := flag.String("match", "", "regexp restricting which benchmarks -compare checks")
	tol := flag.Float64("tol", 0.15, "allowed fractional ns/op regression in -compare mode")
	runreport := flag.String("runreport", "", "RunReport JSON (from a sim's -metrics) whose flop-rate context to embed")
	flag.Parse()

	base := Baseline{Go: runtime.Version()}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			base.GOOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
			continue
		case strings.HasPrefix(line, "goarch:"):
			base.GOARCH = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
			continue
		case strings.HasPrefix(line, "cpu:"):
			base.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
			continue
		case strings.HasPrefix(line, "pkg:"):
			base.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		if b, ok := parseBenchLine(line); ok {
			base.Benchmarks = append(base.Benchmarks, b)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchdump: read:", err)
		os.Exit(1)
	}
	sort.Slice(base.Benchmarks, func(i, j int) bool {
		return base.Benchmarks[i].Name < base.Benchmarks[j].Name
	})

	if *runreport != "" {
		rep, err := metrics.ReadReport(*runreport)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchdump: -runreport:", err)
			os.Exit(1)
		}
		base.Sim = &SimContext{
			Command:      rep.Command,
			NP:           rep.NP,
			Bodies:       rep.Bodies,
			WallSeconds:  rep.WallSeconds,
			Interactions: rep.Totals.Interactions,
			FlopsRate:    rep.Totals.FlopsRate,
		}
	}

	if *compare != "" {
		os.Exit(compareBaseline(base, *compare, *match, *tol))
	}

	enc, err := json.MarshalIndent(&base, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdump: encode:", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchdump: write:", err)
		os.Exit(1)
	}
}

// compareBaseline diffs the freshly parsed benchmarks against the
// committed baseline and returns the process exit code. A benchmark
// regresses if its ns/op exceeds the baseline by more than tol, or
// its allocs/op grew at all (steady-state allocation is a correctness
// property of the batched walkers, not a tuning knob). Benchmarks in
// the run but absent from the baseline are reported and skipped, so
// adding a benchmark does not require regenerating the baseline in
// the same change.
func compareBaseline(cur Baseline, path, match string, tol float64) int {
	raw, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdump: baseline:", err)
		return 1
	}
	var base Baseline
	if err := json.Unmarshal(raw, &base); err != nil {
		fmt.Fprintln(os.Stderr, "benchdump: baseline:", err)
		return 1
	}
	re, err := regexp.Compile(match)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdump: -match:", err)
		return 1
	}
	if base.Sim != nil {
		fmt.Printf("baseline context: %s np=%d n=%d, %.2f Mflops-equivalent\n",
			base.Sim.Command, base.Sim.NP, base.Sim.Bodies, base.Sim.FlopsRate/1e6)
	}
	baseBy := make(map[string]Bench, len(base.Benchmarks))
	for _, b := range base.Benchmarks {
		baseBy[b.Name] = b
	}

	failed := false
	checked := 0
	for _, b := range cur.Benchmarks {
		if !re.MatchString(b.Name) {
			continue
		}
		ref, ok := baseBy[b.Name]
		if !ok {
			fmt.Printf("%-44s not in baseline (skipped)\n", b.Name)
			continue
		}
		checked++
		curNs, refNs := b.Metrics["ns/op"], ref.Metrics["ns/op"]
		status := "ok"
		delta := 0.0
		if refNs > 0 {
			delta = curNs/refNs - 1
			if delta > tol {
				status = fmt.Sprintf("REGRESSED (> %+.0f%%)", tol*100)
				failed = true
			}
		}
		fmt.Printf("%-44s ns/op %14.0f -> %14.0f  %+6.1f%%  %s\n",
			b.Name, refNs, curNs, delta*100, status)
		if refAllocs, ok := ref.Metrics["allocs/op"]; ok {
			if curAllocs := b.Metrics["allocs/op"]; curAllocs > refAllocs {
				fmt.Printf("%-44s allocs/op %11.0f -> %11.0f  REGRESSED\n",
					b.Name, refAllocs, curAllocs)
				failed = true
			}
		}
	}
	if checked == 0 {
		fmt.Fprintf(os.Stderr, "benchdump: no benchmarks matched %q against the baseline\n", match)
		return 1
	}
	if failed {
		fmt.Println("benchdump: performance regression against", path)
		return 1
	}
	fmt.Printf("benchdump: %d benchmark(s) within %.0f%% of %s\n", checked, tol*100, path)
	return 0
}

// parseBenchLine parses "BenchmarkFoo-8  4  123 ns/op  7 B/op  0.5 x/op".
// Fields after the iteration count come in (value, unit) pairs.
func parseBenchLine(line string) (Bench, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Bench{}, false
	}
	name := fields[0]
	// Strip the -GOMAXPROCS suffix so baselines diff across machines.
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Bench{}, false
	}
	b := Bench{Name: name, Iterations: iters, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		b.Metrics[fields[i+1]] = v
	}
	return b, len(b.Metrics) > 0
}
