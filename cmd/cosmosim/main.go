// Command cosmosim runs a scaled version of the paper's cosmological
// simulations: CDM initial conditions from a 3-D FFT realization,
// sphere-with-buffer geometry, parallel treecode evolution, striped
// snapshots, and a log-density projection image at the end.
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"time"

	"repro/internal/analysis"
	"repro/internal/cliutil"
	"repro/internal/core"
	"repro/internal/cosmo"
	"repro/internal/grav"
	"repro/internal/integrate"
	"repro/internal/metrics"
	"repro/internal/msg"
	"repro/internal/parallel"
	"repro/internal/render"
	"repro/internal/snapio"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/vec"
)

func main() {
	grid := flag.Int("grid", 32, "IC lattice size (power of two)")
	procs := flag.Int("procs", 8, "simulated processors")
	steps := flag.Int("steps", 20, "timesteps")
	snapEvery := flag.Int("snap", 0, "write a striped snapshot every k steps (0 = off)")
	outDir := flag.String("out", ".", "output directory")
	image := flag.String("image", "cosmo.pgm", "final density image (empty = off)")
	halos := flag.Bool("halos", true, "run the FOF halo finder at the end")
	traceOut := flag.String("trace", "", "write a Chrome trace_event JSON timeline (open in chrome://tracing or Perfetto)")
	metricsOut := flag.String("metrics", "", "write a machine-readable RunReport JSON (render with cmd/perfreport)")
	cpuprofile := flag.String("cpuprofile", "", "write a pprof CPU profile of the simulation")
	memprofile := flag.String("memprofile", "", "write a pprof heap profile at exit")
	watchdog := flag.Duration("watchdog", 0, "abort with a stall report after this long without progress (0 = off)")
	dtmode := flag.String("dtmode", "uniform", "time stepping: uniform (one rung) or block (hierarchical per-body sub-steps)")
	eta := flag.Float64("eta", 0.02, "block-timestep criterion scale: dt_i = eta*sqrt(eps/|a_i|)")
	evalWorkers := flag.Int("evalworkers", 0, "walk/eval pipeline workers: completed groups evaluate under the batched-message collectives (0 = inline historical schedule; forces identical either way)")
	prefetch := flag.Int("prefetch", 0, "serve-side prefetch depth: replies piggyback the subtree below each requested cell, cutting request rounds (0 = off)")
	httpAddr := flag.String("http", "", "serve live telemetry (/metrics /series /health /report /debug/pprof) on this address (:0 picks a port)")
	noProgress := flag.Duration("noprogress", 3*time.Second, "telemetry no-progress health threshold (with -http; 0 = off)")
	flag.Parse()
	lg := telemetry.NewLogger(os.Stderr, "cosmosim")
	if _, err := (cliutil.Flags{
		N: *grid, Procs: *procs, Steps: *steps, DTMode: *dtmode, Eta: *eta,
		EvalWorkers: *evalWorkers, Prefetch: *prefetch,
	}).Validate(); err != nil {
		cliutil.Fail("cosmosim", err)
	}

	r, err := cosmo.NewRealization(cosmo.Params{
		Grid: *grid, Box: 1.0, DeltaRMS: 0.25, ShapeGamma: 8, Seed: 12345,
	})
	if err != nil {
		lg.Error("realization failed", "err", err)
		os.Exit(1)
	}
	full, h0 := r.ICs()
	sys := cosmo.SphereWithBuffer(full, vec.V3{}, 0.40, 0.50)
	fmt.Printf("ICs: %d of %d bodies in sphere+buffer, H0=%.3f\n", sys.Len(), full.Len(), h0)

	if *cpuprofile != "" {
		stop, err := trace.StartCPUProfile(*cpuprofile)
		if err != nil {
			lg.Error("cpuprofile failed", "err", err)
			os.Exit(1)
		}
		defer stop()
	}

	// Observability: -trace records per-rank timelines, -metrics
	// feeds the stall histogram and the final RunReport, -http serves
	// all of it live. Everything is nil (zero-cost) when the flags are
	// off.
	var run *trace.Run
	if *traceOut != "" || *httpAddr != "" {
		run = trace.NewRun(*procs)
	}
	var reg *metrics.Registry
	var stalls *metrics.Histogram
	if *metricsOut != "" || *traceOut != "" || *httpAddr != "" {
		reg = metrics.NewRegistry()
		stalls = reg.Histogram(metrics.StallHistogram)
	}
	var tel *telemetry.Sampler
	if *httpAddr != "" {
		mon := telemetry.DefaultMonitors()
		mon.NoProgress = *noProgress
		mon.Log = lg
		tel = telemetry.NewSampler(telemetry.Config{
			NP: *procs, Registry: reg, Trace: run, Monitors: mon, Command: "cosmosim",
		})
		defer tel.Close()
		ep, err := telemetry.Serve(*httpAddr, tel, lg)
		if err != nil {
			lg.Error("telemetry endpoint failed", "err", err)
			os.Exit(1)
		}
		defer ep.Close()
		fmt.Printf("telemetry: listening on %s\n", ep.Addr)
	}

	n := sys.Len()
	engines := make([]*parallel.Engine, *procs)
	w := msg.NewWorld(*procs)
	w.SetTrace(run)
	if *watchdog > 0 {
		w.StartWatchdog(msg.WatchdogConfig{Quiet: *watchdog, Stacks: true, Log: lg})
	}
	start := time.Now()
	werr := w.RunErr(func(c *msg.Comm) {
		local := core.New(0)
		local.EnableDynamics()
		lo, hi := c.Rank()*n / *procs, (c.Rank()+1)*n / *procs
		for i := lo; i < hi; i++ {
			local.AppendFrom(sys, i)
		}
		e := parallel.New(c, local, parallel.Config{
			MAC:         grav.MACParams{Kind: grav.MACSalmonWarren, AccelTol: 3e-3, Quad: true},
			Eps2:        1e-6,
			EvalWorkers: *evalWorkers, PrefetchDepth: *prefetch,
		})
		if *dtmode == "block" {
			e.Stepper.Scheme = integrate.Block
			e.Stepper.Eta = *eta
			e.Stepper.Eps = math.Sqrt(1e-6)
		}
		if run != nil {
			e.EnableTrace(run.Rank(c.Rank()))
		}
		e.Stalls = stalls
		t0 := time.Now()
		e.ComputeForces()
		if tel != nil {
			tel.Contribute(c.Rank(), e.Telemetry(time.Since(t0).Nanoseconds()))
		}
		for s := 0; s < *steps; s++ {
			t0 = time.Now()
			ctr := e.Step(5e-4)
			if tel != nil {
				tel.Contribute(c.Rank(), e.Telemetry(time.Since(t0).Nanoseconds()))
			}
			if s%5 == 0 || s == *steps-1 {
				// Energy is a collective: every rank participates.
				kin, pot := e.Energy()
				if c.Rank() == 0 {
					fmt.Printf("step %3d: %d interactions, E = %.6f\n",
						s, ctr.Interactions(), kin+pot)
				}
			}
		}
		engines[c.Rank()] = e
	})
	wall := time.Since(start).Seconds()
	if werr != nil {
		// Structured abort (exit 3): a contained failure, as opposed
		// to a crash (panic) or a hang (external timeout).
		lg.Error("world aborted", "err", werr)
		os.Exit(3)
	}

	out := core.New(0)
	out.EnableDynamics()
	var flops uint64
	for _, e := range engines {
		for i := 0; i < e.Sys.Len(); i++ {
			out.AppendFrom(e.Sys, i)
		}
		flops += e.Counters.Flops()
	}
	fmt.Printf("done: %.1fs host, %d bodies, %.2f Gflops-equivalent\n",
		wall, out.Len(), float64(flops)/wall/1e9)

	if *metricsOut != "" {
		inputs := make([]metrics.RankInput, len(engines))
		for r, e := range engines {
			inputs[r] = e.Report()
		}
		rep := metrics.BuildReport("cosmosim", out.Len(), wall, inputs, w, reg)
		rep.TraceDropped = run.Dropped()
		if err := rep.WriteFile(*metricsOut); err != nil {
			lg.Error("metrics write failed", "err", err)
			os.Exit(1)
		}
		fmt.Printf("wrote RunReport %s (render: go run ./cmd/perfreport %s)\n", *metricsOut, *metricsOut)
	}
	if *traceOut != "" {
		if err := run.WriteChromeFile(*traceOut); err != nil {
			lg.Error("trace write failed", "err", err)
			os.Exit(1)
		}
		if d := run.Dropped(); d > 0 {
			lg.Warn("trace ring dropped events; exported timeline is incomplete",
				"dropped", d, "path", *traceOut)
		}
		fmt.Printf("wrote trace %s (%d events dropped); open in chrome://tracing or ui.perfetto.dev\n",
			*traceOut, run.Dropped())
	}
	if *memprofile != "" {
		if err := trace.WriteHeapProfile(*memprofile); err != nil {
			lg.Error("memprofile failed", "err", err)
			os.Exit(1)
		}
	}

	if *snapEvery > 0 {
		if err := snapio.WriteStriped(*outDir, "cosmo", out, float64(*steps), 4); err != nil {
			lg.Error("snapshot write failed", "err", err)
			os.Exit(1)
		}
		fmt.Printf("wrote striped snapshot cosmo.* (4 stripes) in %s\n", *outDir)
	}
	if *image != "" {
		img := render.Project(out, vec.V3{}, 0.55, 512, 512)
		if err := img.WritePGM(*image); err != nil {
			lg.Error("image write failed", "err", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *image)
	}

	if *halos {
		// Friends-of-friends galaxy identification, the paper's
		// science driver: linking length 0.2x the mean interparticle
		// spacing of the high-resolution region.
		spacing := 1.0 / float64(*grid)
		found := analysis.FOF(out, 0.2*spacing, 10)
		fmt.Printf("\nFOF halos (>= 10 particles): %d\n", len(found))
		for i, h := range found {
			if i >= 5 {
				fmt.Printf("  ... and %d more\n", len(found)-5)
				break
			}
			fmt.Printf("  halo %d: %5d particles, mass %.4g, r50 %.4f, center (%.3f %.3f %.3f)\n",
				i, len(h.Members), h.Mass, h.R50, h.Center.X, h.Center.Y, h.Center.Z)
		}
		if len(found) > 0 {
			mass, count := analysis.MassFunction(found, 6)
			fmt.Println("halo mass function:")
			for b := range mass {
				fmt.Printf("  M ~ %.3g: %d halos\n", mass[b], count[b])
			}
		}
	}
}
