// Command nsquared runs the O(N^2) ring-decomposed direct benchmark
// the paper used to compare raw machine speed against the GRAPE
// special-purpose hardware, and prints the paper-style Gflops
// accounting.
package main

import (
	"flag"
	"fmt"
	"time"

	"repro/internal/ic"
	"repro/internal/msg"
	"repro/internal/perfmodel"
	"repro/internal/vec"

	"repro/internal/direct"
)

func main() {
	n := flag.Int("n", 20000, "number of bodies")
	procs := flag.Int("procs", 8, "simulated processors")
	steps := flag.Int("steps", 4, "timesteps (the paper ran 4)")
	flag.Parse()

	sys := ic.UniformSphere(*n, 1.0, 7)
	start := time.Now()
	var pp uint64
	counts := make([]uint64, *procs)
	msg.Run(*procs, func(c *msg.Comm) {
		lo, hi := c.Rank()**n / *procs, (c.Rank()+1)**n / *procs
		acc := make([]vec.V3, hi-lo)
		pot := make([]float64, hi-lo)
		for s := 0; s < *steps; s++ {
			ctr := direct.Ring(c, sys.Pos[lo:hi], sys.Mass[lo:hi], acc[:hi-lo], pot[:hi-lo], 1e-6)
			counts[c.Rank()] += ctr.PP
		}
	})
	wall := time.Since(start).Seconds()
	for _, v := range counts {
		pp += v
	}
	flops := pp * 38
	fmt.Printf("N=%d procs=%d steps=%d\n", *n, *procs, *steps)
	fmt.Printf("interactions %d, flops %d\n", pp, flops)
	fmt.Printf("host: %.2fs, %.3f Gflops\n", wall, float64(flops)/wall/1e9)

	// The paper's exact benchmark: 1e6 bodies, 4 steps, 6800 procs.
	paperFlops := uint64(4) * 38 * 1_000_000 * 1_000_000
	est := perfmodel.ASCIRed.Model(paperFlops, perfmodel.RegimeKernel, msg.PhaseTraffic{})
	fmt.Printf("paper benchmark modeled: %s (paper: 635 Gflops in 239.3s)\n", est)
}
