// Command perfreport renders the RunReport JSON that the simulation
// drivers emit under -metrics as paper-style tables: headline flop
// rate, per-rank work, per-phase load balance, the NxN communication
// matrix, and latency histograms.
//
// Usage:
//
//	perfreport run.json              render one report
//	perfreport -roofline run.json    additionally measure this host's
//	                                 compute and bandwidth ceilings and
//	                                 render the full roofline section
//	                                 (ridge point, bound, utilization)
//	perfreport -diff base.json cur.json
//	                                 render both side by side and exit
//	                                 non-zero if the current flop rate
//	                                 regressed more than -tol (15%)
//	perfreport -follow host:port     poll a running driver's -http
//	                                 telemetry endpoint into a
//	                                 refreshing terminal dashboard
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/metrics"
)

func main() {
	diff := flag.Bool("diff", false, "compare two reports: perfreport -diff base.json cur.json")
	tol := flag.Float64("tol", 0.15, "fractional flop-rate drop tolerated by -diff before failing")
	roofline := flag.Bool("roofline", false, "measure this host's compute/bandwidth ceilings and calibrate the roofline section")
	followAddr := flag.String("follow", "", "poll a live -http telemetry endpoint (host:port) into a refreshing terminal view")
	interval := flag.Duration("interval", time.Second, "poll interval for -follow")
	flag.Parse()

	if *followAddr != "" {
		if err := follow(*followAddr, *interval); err != nil {
			fmt.Fprintln(os.Stderr, "perfreport:", err)
			os.Exit(2)
		}
		return
	}

	if *diff {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "usage: perfreport -diff base.json cur.json")
			os.Exit(2)
		}
		base, err := metrics.ReadReport(flag.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, "perfreport:", err)
			os.Exit(2)
		}
		cur, err := metrics.ReadReport(flag.Arg(1))
		if err != nil {
			fmt.Fprintln(os.Stderr, "perfreport:", err)
			os.Exit(2)
		}
		if metrics.Diff(os.Stdout, base, cur, *tol) {
			fmt.Fprintf(os.Stderr, "perfreport: flop rate regressed more than %.0f%%\n", *tol*100)
			os.Exit(1)
		}
		return
	}

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: perfreport run.json  |  perfreport -diff base.json cur.json")
		os.Exit(2)
	}
	rep, err := metrics.ReadReport(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "perfreport:", err)
		os.Exit(2)
	}
	if *roofline && rep.Roofline != nil {
		rep.Roofline.Calibrate(metrics.MeasurePeakFlops(), metrics.MeasurePeakBandwidth())
	}
	rep.Render(os.Stdout)
}
