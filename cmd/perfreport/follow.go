// Follow mode: poll a driver's live -http telemetry endpoint and
// redraw a terminal dashboard each tick -- the mid-run view of the
// same numbers the post-run RunReport tables summarize. The loop ends
// cleanly when the endpoint disappears (the run finished).

package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"repro/internal/telemetry"
)

// follow polls addr every interval until the endpoint goes away.
// Returns an error only if the first poll never succeeds.
func follow(addr string, interval time.Duration) error {
	base := addr
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	base = strings.TrimRight(base, "/")
	client := &http.Client{Timeout: 5 * time.Second}

	connected := false
	for {
		var series struct {
			Samples []telemetry.Sample `json:"samples"`
		}
		if err := getJSON(client, base+"/series?n=12", &series); err != nil {
			if !connected {
				return fmt.Errorf("cannot reach %s: %w", base, err)
			}
			fmt.Printf("\nendpoint %s gone -- run finished\n", base)
			return nil
		}
		connected = true
		var health struct {
			Status string                  `json:"status"`
			Events []telemetry.HealthEvent `json:"events"`
		}
		getJSON(client, base+"/health", &health) // best-effort: series already proved liveness

		draw(base, series.Samples, health.Status, health.Events)
		time.Sleep(interval)
	}
}

func getJSON(client *http.Client, url string, v any) error {
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return fmt.Errorf("%s: %s", url, resp.Status)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

// draw clears the terminal and renders the sample table plus the
// health log tail.
func draw(base string, samples []telemetry.Sample, status string, events []telemetry.HealthEvent) {
	fmt.Print("\x1b[H\x1b[2J") // home + clear
	fmt.Printf("perfreport -follow %s    %s    health: %s\n\n",
		base, time.Now().Format("15:04:05"), statusWord(status))

	if len(samples) == 0 {
		fmt.Println("no samples yet (waiting for the first completed step)")
	} else {
		fmt.Printf("%6s %9s %9s %11s %8s %7s %7s %9s\n",
			"step", "step_ms", "Gflops", "energy", "drift", "active", "imbal", "MB sent")
		for _, s := range samples {
			drift := "-"
			energy := "-"
			if s.Energy != 0 || s.EnergyDrift != 0 {
				energy = fmt.Sprintf("%.5g", s.Energy)
				drift = fmt.Sprintf("%.2e", s.EnergyDrift)
			}
			fmt.Printf("%6d %9.1f %9.2f %11s %8s %7.3f %7.2f %9.2f\n",
				s.Step, s.StepMs, s.FlopsRate/1e9, energy, drift,
				s.ActiveFraction, s.Imbalance, float64(s.Bytes)/1e6)
		}
		last := samples[len(samples)-1]
		fmt.Printf("\nlast step: %d bodies, %d interactions, %d msgs, stall p99 %v\n",
			last.Bodies, last.Interactions, last.Msgs,
			time.Duration(last.StallP99Ns).Round(time.Microsecond))
	}

	fmt.Println()
	if len(events) == 0 {
		fmt.Println("health log: empty")
		return
	}
	fmt.Println("health log (most recent last):")
	tail := events
	if len(tail) > 8 {
		tail = tail[len(tail)-8:]
	}
	for _, e := range tail {
		fmt.Printf("  %s step %-6d %-8s %-14s %s\n",
			e.Time.Format("15:04:05"), e.Step, e.Severity, e.Monitor, e.Message)
	}
}

func statusWord(status string) string {
	if status == "" {
		return "unknown"
	}
	return status
}
