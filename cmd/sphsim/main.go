// Command sphsim demonstrates smoothed particle hydrodynamics on the
// treecode (the paper: "Smoothed Particle Hydrodynamics is implemented
// with 3000 lines" atop the same library): a self-gravitating gas
// sphere evolves with gravity plus pressure, next to a pressureless
// control run. Pressure support slows the central collapse -- the
// qualitative physics an SPH+gravity code must show.
package main

import (
	"flag"
	"fmt"
	"os"
	"sync"
	"time"

	"repro/internal/cliutil"
	"repro/internal/core"
	"repro/internal/diag"
	"repro/internal/ic"
	"repro/internal/integrate"
	"repro/internal/metrics"
	"repro/internal/msg"
	"repro/internal/sph"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/vec"
)

func main() {
	n := flag.Int("n", 4000, "gas particles")
	steps := flag.Int("steps", 150, "timesteps")
	dt := flag.Float64("dt", 4e-3, "timestep")
	cs := flag.Float64("cs", 0.8, "isothermal sound speed of the gas run")
	procs := flag.Int("procs", 1, "in-process ranks (>1 runs the distributed engine)")
	traceOut := flag.String("trace", "", "write a Chrome trace_event JSON timeline of the gas run (needs -procs > 1)")
	metricsOut := flag.String("metrics", "", "write a machine-readable RunReport JSON of the gas run (needs -procs > 1)")
	cpuprofile := flag.String("cpuprofile", "", "write a pprof CPU profile")
	memprofile := flag.String("memprofile", "", "write a pprof heap profile at exit")
	httpAddr := flag.String("http", "", "serve live telemetry (/metrics /series /health /report /debug/pprof) on this address (:0 picks a port)")
	noProgress := flag.Duration("noprogress", 3*time.Second, "telemetry no-progress health threshold (with -http; 0 = off)")
	evalWorkers := flag.Int("evalworkers", 0, "walk/eval pipeline workers for the distributed run: completed groups evaluate under the batched-message collectives (0 = inline historical schedule; results identical either way)")
	prefetch := flag.Int("prefetch", 0, "serve-side prefetch depth for the distributed run: replies piggyback the subtree below each requested cell (0 = off)")
	flag.Parse()
	lg := telemetry.NewLogger(os.Stderr, "sphsim")
	if _, err := (cliutil.Flags{
		N: *n, Procs: *procs, Steps: *steps,
		EvalWorkers: *evalWorkers, Prefetch: *prefetch,
	}).Validate(); err != nil {
		cliutil.Fail("sphsim", err)
	}

	if *cpuprofile != "" {
		stop, err := trace.StartCPUProfile(*cpuprofile)
		if err != nil {
			lg.Error("cpuprofile failed", "err", err)
			os.Exit(1)
		}
		defer stop()
	}
	if (*traceOut != "" || *metricsOut != "" || *httpAddr != "") && *procs <= 1 {
		lg.Error("-trace/-metrics/-http instrument the distributed engine; use -procs > 1")
		os.Exit(1)
	}
	// Only the gas run is instrumented: it is the physics of interest;
	// the pressureless control is a reference computation.
	var run *trace.Run
	if *traceOut != "" || *httpAddr != "" {
		run = trace.NewRun(*procs)
	}
	var reg *metrics.Registry
	var stalls *metrics.Histogram
	if *metricsOut != "" || *traceOut != "" || *httpAddr != "" {
		reg = metrics.NewRegistry()
		stalls = reg.Histogram(metrics.StallHistogram)
	}
	var tel *telemetry.Sampler
	if *httpAddr != "" {
		mon := telemetry.DefaultMonitors()
		mon.NoProgress = *noProgress
		mon.Log = lg
		tel = telemetry.NewSampler(telemetry.Config{
			NP: *procs, Registry: reg, Trace: run, Monitors: mon, Command: "sphsim",
		})
		defer tel.Close()
		ep, err := telemetry.Serve(*httpAddr, tel, lg)
		if err != nil {
			lg.Error("telemetry endpoint failed", "err", err)
			os.Exit(1)
		}
		defer ep.Close()
		fmt.Printf("telemetry: listening on %s\n", ep.Addr)
	}

	fmt.Printf("N = %d gas particles, %d steps of dt = %g", *n, *steps, *dt)
	if *procs > 1 {
		fmt.Printf(" on %d ranks", *procs)
	}
	fmt.Printf("\n\n")
	var gas, control *core.System
	var ctrGas, ctrCtl diag.Counters
	if *procs > 1 {
		start := time.Now()
		gasRun := runParallel(*n, *steps, *dt, *cs, *procs, *evalWorkers, *prefetch, run, stalls, tel)
		wall := time.Since(start).Seconds()
		gas, ctrGas = gasRun.sys, gasRun.total

		if *metricsOut != "" {
			rep := metrics.BuildReport("sphsim", gas.Len(), wall, gasRun.inputs, gasRun.world, reg)
			rep.TraceDropped = run.Dropped()
			if err := rep.WriteFile(*metricsOut); err != nil {
				lg.Error("metrics write failed", "err", err)
				os.Exit(1)
			}
			fmt.Printf("wrote RunReport %s\n", *metricsOut)
		}
		if *traceOut != "" {
			if err := run.WriteChromeFile(*traceOut); err != nil {
				lg.Error("trace write failed", "err", err)
				os.Exit(1)
			}
			if d := run.Dropped(); d > 0 {
				lg.Warn("trace ring dropped events; exported timeline is incomplete",
					"dropped", d, "path", *traceOut)
			}
			fmt.Printf("wrote trace %s (%d events dropped)\n", *traceOut, run.Dropped())
		}

		ctl := runParallel(*n, *steps, *dt, 0, *procs, *evalWorkers, *prefetch, nil, nil, nil)
		control, ctrCtl = ctl.sys, ctl.total
	} else {
		gas, ctrGas = serialRun(*n, *steps, *dt, *cs)
		control, ctrCtl = serialRun(*n, *steps, *dt, 0)
	}
	if *memprofile != "" {
		if err := trace.WriteHeapProfile(*memprofile); err != nil {
			lg.Error("memprofile failed", "err", err)
			os.Exit(1)
		}
	}

	fGas := centralMassFraction(gas)
	fCtl := centralMassFraction(control)
	fmt.Println("mass fraction within r < 0.1 of the center after the run:")
	fmt.Printf("  with pressure (cs=%.2f): %.4f\n", *cs, fGas)
	fmt.Printf("  pressureless control   : %.4f\n", fCtl)
	if fCtl > fGas {
		fmt.Println("  -> pressure support slowed the collapse, as it must")
	}
	fmt.Printf("\nwork: gas run %d SPH pairs + %d gravity interactions (%d flops total)\n",
		ctrGas.SPHPairs, ctrGas.Interactions(), ctrGas.Flops())
	fmt.Printf("      control  %d gravity interactions\n", ctrCtl.Interactions())
}

// serialRun evolves a cold uniform gas sphere under gravity plus
// isothermal pressure (cs = 0 disables pressure). Both force
// evaluations share one tree build per step.
func serialRun(n, steps int, dt, cs float64) (*core.System, diag.Counters) {
	sys := ic.UniformSphere(n, 1.0, 99)
	sys.EnableSPH()
	for i := range sys.H {
		sys.H[i] = 0.1 // ~2x mean spacing for a few thousand bodies
	}
	p := &sph.Params{EOS: sph.Isothermal, CS: cs, AlphaVisc: 1, BetaVisc: 2}
	var total diag.Counters

	forces := func(s *core.System) {
		// sph.Step sorts, builds the tree, fills Rho and the pressure
		// acceleration in Acc (zero work when cs == 0 still computes
		// density; harmless for the control).
		tr, ctr := sph.Step(s, p, 16)
		total.Add(ctr)
		pressure := append(s.Acc[:0:0], s.Acc...)
		if cs == 0 {
			for i := range pressure {
				pressure[i] = vec.V3{}
			}
		}
		gctr := tr.Gravity(1e-4)
		total.Add(gctr)
		for i := range s.Acc {
			s.Acc[i] = s.Acc[i].Add(pressure[i])
		}
	}
	forces(sys)
	integrate.Leapfrog(sys, forces, dt, steps)
	return sys, total
}

// parallelRun is what runParallel hands back: the gathered system,
// summed counters, and the world plus per-rank inputs the RunReport
// needs.
type parallelRun struct {
	sys    *core.System
	total  diag.Counters
	world  *msg.World
	inputs []metrics.RankInput
}

// runParallel evolves the same gas sphere on the distributed engine:
// each in-process rank owns a slab of particles and the hotengine
// pipeline handles decomposition, halo exchange and the gravity walk.
// The pressureless control disables viscosity along with the sound
// speed, which zeroes the SPH acceleration exactly. run, stalls and
// tel, when non-nil, instrument every rank.
func runParallel(n, steps int, dt, cs float64, procs, evalWorkers, prefetch int,
	run *trace.Run, stalls *metrics.Histogram, tel *telemetry.Sampler) parallelRun {
	p := sph.Params{EOS: sph.Isothermal, CS: cs, AlphaVisc: 1, BetaVisc: 2}
	if cs == 0 {
		p.AlphaVisc, p.BetaVisc = 0, 0
	}

	var mu sync.Mutex
	var total diag.Counters
	merged := core.New(0)
	merged.EnableDynamics()
	merged.EnableSPH()
	inputs := make([]metrics.RankInput, procs)
	w := msg.NewWorld(procs)
	w.SetTrace(run)
	w.Run(func(c *msg.Comm) {
		global := ic.UniformSphere(n, 1.0, 99)
		global.EnableSPH()
		for i := range global.H {
			global.H[i] = 0.1
		}
		lo, hi := c.Rank()*n/c.Size(), (c.Rank()+1)*n/c.Size()
		local := core.New(0)
		local.EnableDynamics()
		local.EnableSPH()
		for i := lo; i < hi; i++ {
			local.AppendFrom(global, i)
		}

		e := sph.NewParallel(c, local, sph.ParallelConfig{
			Params: p, Gravity: true, Eps2: 1e-4,
			EvalWorkers: evalWorkers, PrefetchDepth: prefetch,
		})
		if run != nil {
			e.EnableTrace(run.Rank(c.Rank()))
		}
		e.Stalls = stalls
		t0 := time.Now()
		ctr := e.Eval()
		if tel != nil {
			tel.Contribute(c.Rank(), e.Telemetry(time.Since(t0).Nanoseconds()))
		}
		for s := 0; s < steps; s++ {
			t0 = time.Now()
			ctr.Add(e.Step(dt))
			if tel != nil {
				tel.Contribute(c.Rank(), e.Telemetry(time.Since(t0).Nanoseconds()))
			}
		}

		mu.Lock()
		defer mu.Unlock()
		total.Add(ctr)
		inputs[c.Rank()] = e.Report()
		for i := 0; i < e.Sys.Len(); i++ {
			merged.AppendFrom(e.Sys, i)
		}
		if c.Rank() == 0 {
			fmt.Printf("rank 0 phase breakdown (cs=%.2f):\n", cs)
			for _, ph := range e.Timer.Phases() {
				fmt.Printf("  %-12s %v\n", ph, e.Timer.Get(ph))
			}
			fmt.Printf("  rounds=%d remoteCells=%d\n", e.Rounds, e.RemoteCells)
		}
	})
	return parallelRun{sys: merged, total: total, world: w, inputs: inputs}
}

// centralMassFraction returns the mass fraction within 0.1 of the
// center of mass.
func centralMassFraction(s *core.System) float64 {
	c := s.CenterOfMass()
	var m float64
	for i := 0; i < s.Len(); i++ {
		if s.Pos[i].Sub(c).Norm() < 0.1 {
			m += s.Mass[i]
		}
	}
	return m / s.TotalMass()
}
