// Quickstart: evolve a self-gravitating Plummer sphere with the
// hashed oct-tree through the public API, watching energy
// conservation and the paper's interaction accounting.
package main

import (
	"fmt"
	"log"

	hot "repro"
)

func main() {
	// 20,000 bodies sampling a virialized star cluster.
	bodies := hot.PlummerSphere(20000, 1.0, 1)

	cfg := hot.Defaults() // Salmon-Warren MAC, quadrupoles, paper-like accuracy
	sim, err := hot.NewSerial(bodies, cfg)
	if err != nil {
		log.Fatal(err)
	}

	info := sim.Info()
	fmt.Printf("N = %d bodies, initial force evaluation:\n", sim.N())
	fmt.Printf("  %d interactions (%.1f per body), %d tree cells\n",
		info.Interactions, float64(info.Interactions)/float64(sim.N()), info.Cells)
	fmt.Printf("  %d flops at the paper's 38 flops/interaction accounting\n", info.Flops)
	direct := uint64(sim.N()) * uint64(sim.N()-1)
	fmt.Printf("  an O(N^2) evaluation would need %d interactions: %.0fx more\n\n",
		direct, float64(direct)/float64(info.Interactions))

	e0 := info.Kinetic + info.Potential
	fmt.Printf("%-6s %-14s %-14s %-12s\n", "step", "kinetic", "potential", "dE/E")
	for s := 1; s <= 20; s++ {
		info = sim.Step(2e-3)
		if s%5 == 0 {
			e := info.Kinetic + info.Potential
			fmt.Printf("%-6d %-14.6f %-14.6f %-12.2e\n",
				s, info.Kinetic, info.Potential, (e-e0)/e0)
		}
	}
	fmt.Println("\nA virialized cluster in equilibrium: energies steady, drift tiny.")
}
