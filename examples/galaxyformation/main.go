// Galaxy formation: a scaled version of the paper's production
// cosmology runs. Cold Dark Matter initial conditions are realized
// with a 3-D FFT (BBKS spectrum, Zel'dovich displacements), carved
// into the paper's sphere-with-buffer geometry (8x-mass boundary
// particles), evolved with the parallel treecode on 8 simulated
// processors, and rendered as the log-density projection of
// Figures 1-2.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/cosmo"
	"repro/internal/grav"
	"repro/internal/msg"
	"repro/internal/parallel"
	"repro/internal/render"
	"repro/internal/vec"
)

func main() {
	// 32^3 lattice: ~33k particles, ~17k inside the sphere+buffer.
	real, err := cosmo.NewRealization(cosmo.Params{
		Grid: 32, Box: 1.0, DeltaRMS: 0.25, ShapeGamma: 8, Seed: 2025,
	})
	if err != nil {
		log.Fatal(err)
	}
	full, h0 := real.ICs()
	sys := cosmo.SphereWithBuffer(full, vec.V3{}, 0.40, 0.50)
	fmt.Printf("CDM realization: %d lattice particles, H0 = %.3f\n", full.Len(), h0)
	fmt.Printf("sphere+buffer: %d bodies (buffer particles carry 8x mass)\n\n", sys.Len())

	const procs = 8
	const steps = 12
	n := sys.Len()
	engines := make([]*parallel.Engine, procs)
	msg.Run(procs, func(c *msg.Comm) {
		local := core.New(0)
		local.EnableDynamics()
		lo, hi := c.Rank()*n/procs, (c.Rank()+1)*n/procs
		for i := lo; i < hi; i++ {
			local.AppendFrom(sys, i)
		}
		e := parallel.New(c, local, parallel.Config{
			MAC:  grav.MACParams{Kind: grav.MACSalmonWarren, AccelTol: 3e-3, Quad: true},
			Eps2: 1e-6,
		})
		e.ComputeForces()
		for s := 0; s < steps; s++ {
			ctr := e.Step(5e-4)
			if c.Rank() == 0 && s%4 == 0 {
				fmt.Printf("step %2d: %9d interactions, %2d request rounds, %5d remote cells\n",
					s, ctr.Interactions(), e.Rounds, e.RemoteCells)
			}
		}
		engines[c.Rank()] = e
	})

	out := core.New(0)
	out.EnableDynamics()
	for _, e := range engines {
		for i := 0; i < e.Sys.Len(); i++ {
			out.AppendFrom(e.Sys, i)
		}
	}
	img := render.Project(out, vec.V3{}, 0.55, 512, 512)
	if err := img.WritePGM("galaxy.pgm"); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nwrote galaxy.pgm: log projected density, cf. the paper's Figures 1-2")
}
