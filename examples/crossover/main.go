// Crossover: where does the O(N log N) treecode beat the O(N^2)
// direct sum, and what does the force accuracy cost? This example
// sweeps N, measures both algorithms' interaction counts and wall
// times, and verifies the treecode error against the direct answer --
// the quantitative footing of the paper's claim that a good algorithm
// beats a factor-10-per-5-years hardware curve.
package main

import (
	"fmt"
	"math"
	"time"

	hot "repro"
)

func main() {
	fmt.Printf("%8s %14s %14s %9s %10s %10s %12s\n",
		"N", "tree inter.", "direct inter.", "ratio", "tree ms", "direct ms", "rms error")
	cfg := hot.Defaults()
	cfg.AccelTol = 1e-5

	for _, n := range []int{500, 1000, 2000, 4000, 8000, 16000} {
		bodies := hot.PlummerSphere(n, 1.0, 7)

		t0 := time.Now()
		sim, err := hot.NewSerial(bodies, cfg)
		if err != nil {
			panic(err)
		}
		treeMS := time.Since(t0).Seconds() * 1e3
		info := sim.Info()

		t0 = time.Now()
		accD, infoD := hot.DirectForces(bodies, cfg.Eps)
		directMS := time.Since(t0).Seconds() * 1e3

		// Compare the treecode forces (via one tiny step's kick) --
		// easiest through a second evaluation: use DirectForces for
		// the reference and the engine's own interactions for cost;
		// the error metric reuses the direct result.
		rms := forceError(sim, accD)

		fmt.Printf("%8d %14d %14d %9.1f %10.1f %10.1f %12.2e\n",
			n, info.Interactions, infoD.Interactions,
			float64(infoD.Interactions)/float64(info.Interactions),
			treeMS, directMS, rms)
	}
	fmt.Println("\nthe interaction ratio grows ~N/log N: at the paper's N = 322M it")
	fmt.Println("reaches ~1e5, the paper's 'treecode is 10^5 times more efficient'.")
}

// forceError measures the RMS-relative deviation of the treecode
// accelerations from the direct reference.
func forceError(sim *hot.Serial, ref [][3]float64) float64 {
	// Advance by a zero step to expose accelerations via velocities:
	// instead, recompute using the public API: kick with dt and undo.
	// Simpler: use the body velocities after a tiny step.
	before := sim.Bodies()
	sim.Step(1e-9)
	after := sim.Bodies()
	var num, den float64
	for i := range ref {
		for k := 0; k < 3; k++ {
			a := (after[i].Vel[k] - before[i].Vel[k]) / 1e-9
			d := a - ref[i][k]
			num += d * d
			den += ref[i][k] * ref[i][k]
		}
	}
	return math.Sqrt(num / den)
}
