// Vortex rings: the fusion of two vortex rings with the vortex
// particle method, the fluid-dynamics application the paper ran on
// Hyglac for 20 hours. Two offset rings induce velocities on each
// other, approach, stretch, and merge; remeshing keeps the particle
// cores overlapping, growing the particle count exactly as the
// paper's run grew from 57k to 360k particles.
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/diag"
	"repro/internal/ic"
	"repro/internal/vec"
	"repro/internal/vortex"
)

func main() {
	const (
		sigma = 0.12 // core smoothing radius
		theta = 0.5  // tree opening angle
		dt    = 0.02
	)
	sys := core.New(0)
	sys.EnableDynamics()
	sys.EnableVortex()
	ic.VortexRing(sys, 1.0, 1.0, sigma, vec.V3{X: -0.75}, vec.V3{Z: 1}, 48, 4, 41)
	ic.VortexRing(sys, 1.0, 1.0, sigma, vec.V3{X: 0.75}, vec.V3{Z: 1}, 48, 4, 43)

	fmt.Printf("two rings, %d vortex particles\n", sys.Len())
	i0 := vortex.LinearImpulse(sys.Pos, sys.Alpha)
	fmt.Printf("initial impulse: (%.4f, %.4f, %.4f) -- an inviscid invariant\n\n", i0.X, i0.Y, i0.Z)

	var total diag.Counters
	for s := 0; s < 24; s++ {
		ctr := vortex.Step(sys, sigma, theta, dt)
		total.Add(ctr)
		if (s+1)%8 == 0 {
			before := sys.Len()
			sys = vortex.Remesh(sys, sigma/2, 1e-4)
			fmt.Printf("step %2d: remeshed %5d -> %5d particles (core overlap restored)\n",
				s, before, sys.Len())
		}
		if s%6 == 0 {
			c := vortex.Centroid(sys.Pos, sys.Alpha)
			i := vortex.LinearImpulse(sys.Pos, sys.Alpha)
			fmt.Printf("step %2d: centroid z = %+.3f, impulse drift %.2e\n",
				s, c.Z, i.Sub(i0).Norm()/i0.Norm())
		}
	}

	fmt.Printf("\n%d vortex interactions, %d flops (%d per interaction)\n",
		total.VortexPP, total.Flops(), diag.FlopsPerVortexInteract)
	fmt.Println("rings translated along +z while merging: the fusion the paper simulated")
}
