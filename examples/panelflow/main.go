// Panel flow: the boundary element method on the treecode -- the
// paper's fourth application family ("boundary integral methods").
// Source panels on an icosphere enforce no-penetration for a uniform
// onset flow; the solved surface speeds are compared against the
// classical potential-flow result u_t = (3/2) U sin(theta), and the
// induced-velocity sums run through the same hashed oct-tree as
// gravity.
package main

import (
	"fmt"
	"log"
	"math"

	"repro/internal/bem"
	"repro/internal/vec"
)

func main() {
	mesh := bem.Icosphere(3)
	fmt.Printf("unit sphere: %d panels, area %.4f (4pi = %.4f), Euler characteristic %d\n",
		len(mesh.Panels), mesh.TotalArea(), 4*math.Pi, mesh.EulerCharacteristic())

	flow := bem.NewFlow(mesh, vec.V3{X: 1})
	if err := flow.Solve(1e-8, 200, true, 0.4); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("solved: no-penetration residual %.2e, %d induced-velocity interactions\n\n",
		flow.Residual, flow.Counters.Interactions())

	ut := flow.SurfaceVelocity(true, 0.4)
	cp := flow.PressureCoefficient(true, 0.4)

	fmt.Printf("%10s %12s %12s %12s\n", "theta", "u_t (BEM)", "u_t (exact)", "Cp (BEM)")
	// Bin panels by polar angle from the flow axis.
	const bins = 9
	sumU := make([]float64, bins)
	sumC := make([]float64, bins)
	cnt := make([]int, bins)
	for i, p := range mesh.Panels {
		theta := math.Acos(p.Centroid.X / p.Centroid.Norm())
		b := int(theta / math.Pi * bins)
		if b >= bins {
			b = bins - 1
		}
		sumU[b] += ut[i]
		sumC[b] += cp[i]
		cnt[b]++
	}
	for b := 0; b < bins; b++ {
		if cnt[b] == 0 {
			continue
		}
		theta := (float64(b) + 0.5) * math.Pi / bins
		exact := 1.5 * math.Sin(theta)
		fmt.Printf("%9.0f° %12.4f %12.4f %12.4f\n",
			theta*180/math.Pi, sumU[b]/float64(cnt[b]), exact, sumC[b]/float64(cnt[b]))
	}
	fmt.Println("\nthe (3/2) sin(theta) profile and the Cp = 1 - 9/4 sin^2(theta)")
	fmt.Println("pressure distribution of d'Alembert's sphere, from panels on a tree.")
}
