package hot

import (
	"repro/internal/analysis"
)

// Halo is a friends-of-friends group found by FindHalos.
type Halo struct {
	// Members indexes the bodies slice passed to FindHalos.
	Members []int
	Mass    float64
	Center  [3]float64
	// HalfMassRadius contains half the halo's mass.
	HalfMassRadius float64
}

// FindHalos runs the friends-of-friends halo finder over the bodies:
// particles closer than the linking length join a group, and groups
// with at least minMembers particles are returned, most massive
// first. This is the "galaxy identification" step of the paper's
// science case.
func FindHalos(bodies []Body, linkingLength float64, minMembers int) []Halo {
	sys := toSystem(bodies)
	found := analysis.FOF(sys, linkingLength, minMembers)
	out := make([]Halo, len(found))
	for i, h := range found {
		members := make([]int, len(h.Members))
		for k, m := range h.Members {
			// Map back to the caller's indexing via the stable IDs
			// (FOF sorts the system internally).
			members[k] = int(sys.ID[m])
		}
		out[i] = Halo{
			Members:        members,
			Mass:           h.Mass,
			Center:         [3]float64{h.Center.X, h.Center.Y, h.Center.Z},
			HalfMassRadius: h.R50,
		}
	}
	return out
}

// Correlation estimates the two-point correlation function xi(r) of
// the body distribution on logarithmic bins in [rMin, rMax].
func Correlation(bodies []Body, rMin, rMax float64, bins int) (r, xi []float64) {
	return analysis.TwoPointCorrelation(toSystem(bodies), rMin, rMax, bins)
}
