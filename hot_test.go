package hot

import (
	"math"
	"sort"
	"testing"
)

func TestDefaultsValidate(t *testing.T) {
	if err := Defaults().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := Defaults()
	bad.MAC = BarnesHut
	bad.Theta = -1
	if bad.Validate() == nil {
		t.Fatal("negative theta accepted")
	}
	bad2 := Defaults()
	bad2.AccelTol = 0
	if bad2.Validate() == nil {
		t.Fatal("zero AccelTol accepted")
	}
	bad3 := Defaults()
	bad3.Eps = -1
	if bad3.Validate() == nil {
		t.Fatal("negative eps accepted")
	}
}

func TestSerialQuickstart(t *testing.T) {
	bodies := PlummerSphere(2000, 1, 1)
	sim, err := NewSerial(bodies, Defaults())
	if err != nil {
		t.Fatal(err)
	}
	info0 := sim.Info()
	if info0.Interactions == 0 || info0.Flops == 0 || info0.Cells == 0 {
		t.Fatalf("empty info: %+v", info0)
	}
	e0 := info0.Kinetic + info0.Potential
	var last StepInfo
	for i := 0; i < 10; i++ {
		last = sim.Step(1e-3)
	}
	e1 := last.Kinetic + last.Potential
	if math.Abs((e1-e0)/e0) > 1e-2 {
		t.Fatalf("energy drift %v over 10 steps", (e1-e0)/e0)
	}
	if sim.N() != 2000 {
		t.Fatalf("N = %d", sim.N())
	}
	// A virialized Plummer sphere stays bound: kinetic ~ -pot/2.
	if last.Kinetic <= 0 || last.Potential >= 0 {
		t.Fatalf("implausible energies: %+v", last)
	}
}

func TestSerialErrors(t *testing.T) {
	if _, err := NewSerial(nil, Defaults()); err == nil {
		t.Fatal("empty body list accepted")
	}
	cfg := Defaults()
	cfg.AccelTol = -1
	if _, err := NewSerial(PlummerSphere(10, 1, 1), cfg); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestParallelMatchesSerialPhysics(t *testing.T) {
	bodies := PlummerSphere(800, 1, 2)
	cfg := Defaults()
	cfg.AccelTol = 1e-5

	res, err := RunParallel(ParallelConfig{Config: cfg, Procs: 4, Steps: 5, Dt: 1e-3}, bodies, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Bodies) != len(bodies) {
		t.Fatalf("body count %d", len(res.Bodies))
	}
	if res.Interactions == 0 || res.RemoteCells == 0 || res.MaxBytes == 0 {
		t.Fatalf("no parallel activity recorded: %+v", res)
	}

	sim, _ := NewSerial(bodies, cfg)
	for i := 0; i < 5; i++ {
		sim.Step(1e-3)
	}
	serial := sim.Bodies()
	// Trajectories agree closely over a short integration.
	var rms, scale float64
	for i := range serial {
		for k := 0; k < 3; k++ {
			d := serial[i].Pos[k] - res.Bodies[i].Pos[k]
			rms += d * d
			scale += serial[i].Pos[k] * serial[i].Pos[k]
		}
	}
	if math.Sqrt(rms/scale) > 1e-3 {
		t.Fatalf("parallel trajectories deviate: rel RMS %g", math.Sqrt(rms/scale))
	}
}

func TestParallelErrors(t *testing.T) {
	if _, err := RunParallel(ParallelConfig{Config: Defaults(), Procs: 0}, PlummerSphere(10, 1, 1), nil); err == nil {
		t.Fatal("procs=0 accepted")
	}
	if _, err := RunParallel(ParallelConfig{Config: Defaults(), Procs: 2}, nil, nil); err == nil {
		t.Fatal("no bodies accepted")
	}
}

func TestOnStepCallback(t *testing.T) {
	bodies := ColdSphere(200, 1, 3)
	calls := 0
	_, err := RunParallel(ParallelConfig{Config: Defaults(), Procs: 2, Steps: 3, Dt: 1e-4},
		bodies, func(step int, info StepInfo) {
			if step != calls {
				t.Errorf("step %d out of order", step)
			}
			if info.Interactions == 0 {
				t.Error("empty step info")
			}
			calls++
		})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 3 {
		t.Fatalf("callback called %d times", calls)
	}
}

func TestDirectForcesReference(t *testing.T) {
	bodies := TwoBodyOrbit(1, 1, 2)
	acc, info := DirectForces(bodies, 0)
	if info.Interactions != 2 {
		t.Fatalf("interactions = %d", info.Interactions)
	}
	// Mutual attraction along x with magnitude m/d^2 = 1/4.
	if math.Abs(acc[0][0]-0.25) > 1e-12 || math.Abs(acc[1][0]+0.25) > 1e-12 {
		t.Fatalf("acc = %v", acc)
	}
}

func TestTreecodeVsDirectAccuracy(t *testing.T) {
	bodies := PlummerSphere(1000, 1, 4)
	cfg := Defaults()
	cfg.AccelTol = 1e-6
	sim, _ := NewSerial(bodies, cfg)
	_ = sim

	accD, infoD := DirectForces(bodies, cfg.Eps)
	_, infoT := func() ([][3]float64, StepInfo) {
		s, _ := NewSerial(bodies, cfg)
		return nil, s.Info()
	}()
	// The treecode must do far fewer interactions at equal N.
	if infoT.Interactions >= infoD.Interactions {
		t.Fatalf("treecode interactions %d >= direct %d", infoT.Interactions, infoD.Interactions)
	}
	_ = accD
}

func TestFindHalosFacade(t *testing.T) {
	// Two compact clusters, far apart.
	var bodies []Body
	a := PlummerSphere(200, 0.02, 5)
	b := PlummerSphere(200, 0.02, 6)
	for i := range a {
		a[i].Pos[0] -= 3
		bodies = append(bodies, a[i])
	}
	for i := range b {
		b[i].Pos[0] += 3
		bodies = append(bodies, b[i])
	}
	halos := FindHalos(bodies, 0.05, 20)
	if len(halos) != 2 {
		t.Fatalf("found %d halos, want 2", len(halos))
	}
	for _, h := range halos {
		if math.Abs(math.Abs(h.Center[0])-3) > 0.3 {
			t.Fatalf("halo center %v", h.Center)
		}
		if h.HalfMassRadius <= 0 {
			t.Fatal("no half-mass radius")
		}
		// Member indices must reference the caller's slice.
		for _, m := range h.Members {
			if m < 0 || m >= len(bodies) {
				t.Fatalf("member index %d out of range", m)
			}
		}
	}
	// Clustered bodies correlate at small separations.
	r, xi := Correlation(bodies, 0.005, 1.0, 6)
	if len(r) != 6 || xi[0] <= 1 {
		t.Fatalf("xi(small r) = %v, want strongly positive", xi)
	}
}

// Long-term quality: a virialized Plummer sphere evolved for a
// substantial fraction of a crossing time must keep its Lagrangian
// radii (10/50/90% mass shells) steady -- the classic stability test
// of a collisionless N-body code.
func TestPlummerLagrangianRadiiStable(t *testing.T) {
	if testing.Short() {
		t.Skip("long physics test")
	}
	bodies := PlummerSphere(2000, 1.0, 8)
	cfg := Defaults()
	res, err := RunParallel(ParallelConfig{Config: cfg, Procs: 4, Steps: 60, Dt: 5e-3}, bodies, nil)
	if err != nil {
		t.Fatal(err)
	}
	r0 := lagrangianRadii(bodies)
	r1 := lagrangianRadii(res.Bodies)
	for k, frac := range []float64{0.1, 0.5, 0.9} {
		drift := math.Abs(r1[k]-r0[k]) / r0[k]
		if drift > 0.15 {
			t.Errorf("%.0f%% Lagrangian radius drifted %.1f%% (%.3f -> %.3f)",
				frac*100, drift*100, r0[k], r1[k])
		}
	}
}

func lagrangianRadii(bodies []Body) [3]float64 {
	// Center of mass.
	var cx, cy, cz, m float64
	for _, b := range bodies {
		cx += b.Pos[0] * b.Mass
		cy += b.Pos[1] * b.Mass
		cz += b.Pos[2] * b.Mass
		m += b.Mass
	}
	cx, cy, cz = cx/m, cy/m, cz/m
	rs := make([]float64, len(bodies))
	for i, b := range bodies {
		dx, dy, dz := b.Pos[0]-cx, b.Pos[1]-cy, b.Pos[2]-cz
		rs[i] = math.Sqrt(dx*dx + dy*dy + dz*dz)
	}
	sort.Float64s(rs)
	return [3]float64{
		rs[len(rs)/10],
		rs[len(rs)/2],
		rs[len(rs)*9/10],
	}
}
