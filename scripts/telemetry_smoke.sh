#!/bin/sh
# Telemetry smoke test: boot treebench with a live -http endpoint,
# curl the routes a monitoring stack would scrape, and verify known
# series names appear. Fails on any missing route or series.
set -eu
cd "$(dirname "$0")/.."

OUT=$(mktemp -d)
trap 'kill $PID 2>/dev/null || true; rm -rf "$OUT"' EXIT INT TERM

go build -o "$OUT/treebench" ./cmd/treebench

# Enough steps to keep the run alive while we scrape; block stepping
# exercises the active-fraction and rung-occupancy series too.
"$OUT/treebench" -n 12000 -procs 4 -steps 400 -dtmode=block -http=127.0.0.1:0 \
	>"$OUT/stdout" 2>"$OUT/stderr" &
PID=$!

# The driver prints the resolved :0 port on stdout.
ADDR=
for i in $(seq 1 50); do
	ADDR=$(sed -n 's/^telemetry: listening on //p' "$OUT/stdout")
	[ -n "$ADDR" ] && break
	kill -0 $PID 2>/dev/null || { echo "treebench died before listening"; cat "$OUT/stderr"; exit 1; }
	sleep 0.2
done
[ -n "$ADDR" ] || { echo "no 'telemetry: listening on' line"; cat "$OUT/stdout"; exit 1; }

fetch() {
	# curl when present, else wget (CI images vary).
	if command -v curl >/dev/null 2>&1; then
		curl -sf --max-time 10 "http://$1"
	else
		wget -qO- -T 10 "http://$1"
	fi
}

# The telemetry_* gauges appear with the first assembled sample;
# poll until the initial force evaluation completes.
echo "scraping http://$ADDR"
ok=
for i in $(seq 1 120); do
	fetch "$ADDR/metrics" >"$OUT/metrics" || true
	if grep -q 'telemetry_step_ms' "$OUT/metrics"; then ok=1; break; fi
	kill -0 $PID 2>/dev/null || { echo "treebench exited before the first sample"; cat "$OUT/stderr"; exit 1; }
	sleep 0.5
done
[ -n "$ok" ] || { echo "missing telemetry_step_ms in /metrics"; cat "$OUT/metrics"; exit 1; }
grep -q '# TYPE telemetry_samples counter' "$OUT/metrics" || { echo "missing typed counter in /metrics"; exit 1; }

fetch "$ADDR/report" >"$OUT/report"
grep -q '"command": "treebench"' "$OUT/report" || { echo "bad /report"; cat "$OUT/report"; exit 1; }
grep -q '"flops_per_interaction": 38' "$OUT/report" || { echo "/report missing flop constants"; exit 1; }

fetch "$ADDR/series?n=3" >"$OUT/series"
grep -q '"flops_rate"' "$OUT/series" || { echo "bad /series"; cat "$OUT/series"; exit 1; }

fetch "$ADDR/health" >"$OUT/health"
grep -q '"status"' "$OUT/health" || { echo "bad /health"; cat "$OUT/health"; exit 1; }

kill $PID 2>/dev/null || true
wait $PID 2>/dev/null || true
echo "telemetry smoke: ok"
