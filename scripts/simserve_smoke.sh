#!/bin/sh
# Simserve smoke test: boot the daemon on a random port, submit a
# batch of jobs including one with an injected crash, and verify the
# service's isolation contract end to end -- the crash-injected job
# fails, every healthy job completes, identical specs produce
# identical forces hashes, /healthz stays 200, and the bench mode
# reports throughput. Fails on any violated invariant.
set -eu
cd "$(dirname "$0")/.."

OUT=$(mktemp -d)
trap 'kill $PID 2>/dev/null || true; rm -rf "$OUT"' EXIT INT TERM

go build -o "$OUT/simserve" ./cmd/simserve

"$OUT/simserve" -addr 127.0.0.1:0 -workers 4 >"$OUT/stdout" 2>"$OUT/stderr" &
PID=$!

# The daemon prints the resolved :0 port on stdout.
ADDR=
for i in $(seq 1 50); do
	ADDR=$(sed -n 's/^simserve: listening on //p' "$OUT/stdout")
	[ -n "$ADDR" ] && break
	kill -0 $PID 2>/dev/null || { echo "simserve died before listening"; cat "$OUT/stderr"; exit 1; }
	sleep 0.2
done
[ -n "$ADDR" ] || { echo "no 'simserve: listening on' line"; cat "$OUT/stdout"; exit 1; }
echo "driving http://$ADDR"

fetch() {
	# curl when present, else wget (CI images vary).
	if command -v curl >/dev/null 2>&1; then
		curl -sf --max-time 10 "http://$ADDR$1"
	else
		wget -qO- -T 10 "http://$ADDR$1"
	fi
}
post() {
	if command -v curl >/dev/null 2>&1; then
		curl -sf --max-time 10 -X POST -d "$1" "http://$ADDR/jobs"
	else
		wget -qO- -T 10 --post-data="$1" "http://$ADDR/jobs"
	fi
}

# Submit 8 healthy gravity jobs (identical specs -> identical hashes
# expected) plus one crash-injected job in the middle of the batch.
GOOD='{"physics":"gravity","n":400,"np":2,"steps":1}'
BAD='{"physics":"gravity","n":400,"np":2,"steps":1,"chaos":"seed=7,crash=1,crashphase=walk"}'
IDS=
for i in 1 2 3 4; do
	IDS="$IDS $(post "$GOOD" | sed -n 's/.*"id": "\([^"]*\)".*/\1/p')"
done
BADID=$(post "$BAD" | sed -n 's/.*"id": "\([^"]*\)".*/\1/p')
for i in 5 6 7 8; do
	IDS="$IDS $(post "$GOOD" | sed -n 's/.*"id": "\([^"]*\)".*/\1/p')"
done
[ -n "$BADID" ] || { echo "crash-job submit failed"; exit 1; }

state() { fetch "/jobs/$1" | sed -n 's/.*"state": "\([^"]*\)".*/\1/p' | head -1; }

wait_terminal() {
	for i in $(seq 1 150); do
		case "$(state "$1")" in
		completed | failed | cancelled) return 0 ;;
		esac
		kill -0 $PID 2>/dev/null || { echo "server exited mid-job"; cat "$OUT/stderr"; exit 1; }
		sleep 0.2
	done
	echo "job $1 never went terminal"
	exit 1
}

# The crash-injected job must FAIL; every healthy one must COMPLETE
# with the same forces hash.
wait_terminal "$BADID"
[ "$(state "$BADID")" = failed ] || { echo "crash job state: $(state "$BADID"), want failed"; exit 1; }
fetch "/jobs/$BADID" | grep -q 'injected' || { echo "crash job error does not name the injected fault"; exit 1; }

HASH=
NOK=0
for ID in $IDS; do
	wait_terminal "$ID"
	ST=$(state "$ID")
	[ "$ST" = completed ] || { echo "job $ID state: $ST, want completed"; fetch "/jobs/$ID"; exit 1; }
	H=$(fetch "/jobs/$ID" | sed -n 's/.*"forces_hash": "\([^"]*\)".*/\1/p')
	[ -n "$H" ] || { echo "job $ID has no forces hash"; exit 1; }
	if [ -z "$HASH" ]; then HASH=$H; fi
	[ "$H" = "$HASH" ] || { echo "hash mismatch: $H vs $HASH (identical specs)"; exit 1; }
	NOK=$((NOK + 1))
done
[ "$NOK" -ge 8 ] || { echo "only $NOK healthy jobs completed, want >= 8"; exit 1; }
echo "crash contained: 1 failed, $NOK completed, hashes identical ($HASH)"

# The server survived the crash: liveness, per-job telemetry and the
# aggregate metrics all still answer.
fetch /healthz | grep -q '"status": "ok"' || { echo "bad /healthz"; fetch /healthz; exit 1; }
FIRST=$(echo $IDS | cut -d' ' -f1)
fetch "/jobs/$FIRST/series?n=2" | grep -q '"step"' || { echo "bad per-job /series"; exit 1; }
fetch /metrics | grep -q 'simserve_jobs_completed' || { echo "bad /metrics"; exit 1; }
kill -0 $PID || { echo "server not running after the batch"; exit 1; }

kill $PID 2>/dev/null || true
wait $PID 2>/dev/null || true
PID=

# The load driver: >= 64 jobs in flight, throughput + latency report.
"$OUT/simserve" -bench -jobs 96 -conc 64 -n 300 -np 2 -steps 1 >"$OUT/bench" 2>/dev/null
grep -q 'jobs/sec' "$OUT/bench" || { echo "bench missing jobs/sec"; cat "$OUT/bench"; exit 1; }
grep -q 'p99=' "$OUT/bench" || { echo "bench missing p99"; cat "$OUT/bench"; exit 1; }
grep -q '96 completed, 0 failed' "$OUT/bench" || { echo "bench jobs failed"; cat "$OUT/bench"; exit 1; }
sed -n 's/^bench: /  /p' "$OUT/bench"

echo "simserve smoke: ok"
