#!/bin/sh
# Repo-wide check: build, vet, race tests, and the batched-walker
# benchmark guardrail -- the ablation benches run once and are diffed
# against the committed BENCH_baseline.json, failing on a >15% ns/op
# regression or any steady-state allocation creeping in.
set -eu
cd "$(dirname "$0")/.."

echo "== go build"
go build ./...
echo "== go vet"
go vet ./...
echo "== go test -race"
go test -race ./...
echo "== go test -race -count=1 (concurrency-heavy packages, uncached)"
go test -race -count=1 ./internal/trace ./internal/metrics ./internal/diag ./internal/msg \
	./internal/core ./internal/tree ./internal/domain ./internal/abm ./internal/hotengine
echo "== chaos soak (bounded, fixed seeds; clean exit or structured abort, never a hang)"
sh scripts/chaos.sh quick
echo "== benchcmp (construction + walker ablations vs BENCH_baseline.json, tol 15%)"
{
	go test -run='^$' -bench=Ablation_Batched -benchtime=1x .
	go test -run='^$' -bench='Ablation_(Sort|Build|Decompose)' -benchtime=5x .
} | go run ./cmd/benchdump -compare BENCH_baseline.json -match 'Ablation_(Batched|Sort|Build|Decompose)' -tol 0.15
echo "== ok"
