#!/bin/sh
# Repo-wide check: build, vet, race tests, and the fused-vs-batched
# benchmark smoke (one iteration each, enough to catch a kernel
# regression or an allocation creeping into the steady state).
set -eu
cd "$(dirname "$0")/.."

echo "== go build"
go build ./...
echo "== go vet"
go vet ./...
echo "== go test -race"
go test -race ./...
echo "== bench smoke (Ablation_Batched, 1 iteration)"
go test -run='^$' -bench=Ablation_Batched -benchtime=1x .
echo "== ok"
