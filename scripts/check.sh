#!/bin/sh
# Repo-wide check: build, vet, race tests, the hot-kernel
# bounds-check-elimination guard, and the benchmark guardrail -- the
# ablation benches run once and are diffed against the committed
# BENCH_baseline.json, failing on a >15% ns/op regression or any
# steady-state allocation creeping in.
set -eu
cd "$(dirname "$0")/.."

echo "== go build"
go build ./...
echo "== go vet"
go vet ./...
echo "== go test -race"
go test -race ./...
echo "== go test -race -count=1 (concurrency-heavy packages, uncached)"
go test -race -count=1 ./internal/trace ./internal/metrics ./internal/diag ./internal/msg \
	./internal/core ./internal/tree ./internal/domain ./internal/abm ./internal/hotengine \
	./internal/integrate ./internal/telemetry ./internal/parallel ./internal/simserve \
	./internal/cliutil
echo "== telemetry smoke (treebench -http: scrape /metrics /report /series /health)"
sh scripts/telemetry_smoke.sh
echo "== simserve smoke (daemon + crash-injected job contained + bench throughput)"
sh scripts/simserve_smoke.sh
echo "== chaos soak (bounded, fixed seeds; clean exit or structured abort, never a hang)"
sh scripts/chaos.sh quick
echo "== bce (hot interaction kernels stay bounds-check-free, -d=ssa/check_bce)"
sh scripts/bce.sh
echo "== benchcmp (construction + walker ablations vs BENCH_baseline.json, tol 15%)"
{
	go test -run='^$' -bench=Ablation_Batched -benchtime=1x .
	go test -run='^$' -bench='Ablation_(Sort|Build|Decompose)' -benchtime=5x .
} | go run ./cmd/benchdump -compare BENCH_baseline.json -match 'Ablation_(Batched|Sort|Build|Decompose)' -tol 0.15
echo "== benchcmp (interaction-kernel + stepper ablations, tol 50%)"
# The Eval benches measure sub-millisecond kernels and the Step
# benches one single-iteration global step, so shared-machine clock
# steal swings their ns/op far more than the second-scale benches
# above; the loose timing tolerance only catches catastrophic
# regressions. The real guards are allocs/op (benchdump fails on ANY
# growth -- the kernels must stay allocation-free), the BCE golden
# above, and for the stepper the bitwise-equivalence and energy-pin
# tests plus the active-fraction metrics the benches report.
{
	go test -run='^$' -bench='Ablation_Eval' -benchtime=100x .
	go test -run='^$' -bench='Ablation_Step' -benchtime=1x .
} | go run ./cmd/benchdump -compare BENCH_baseline.json -match 'Ablation_(Eval|Step)' -tol 0.5
echo "== benchcmp (latency-hiding ablations: walk overlap + prefetch, tol 50%)"
# Injected-latency A/B at np=8: wall clock on a shared single-core
# host is noisy, so the timing tolerance is loose; the hard guards are
# the bitwise force-equivalence tests (internal/parallel) and the
# ratio assertions the PR's acceptance ran. walk_s/op and stall_p99_ms
# travel in the baseline as custom metrics for eyeballing trends.
go test -run='^$' -bench='Ablation_(WalkOverlap|Prefetch)' -benchtime=1x . |
	go run ./cmd/benchdump -compare BENCH_baseline.json -match 'Ablation_(WalkOverlap|Prefetch)' -tol 0.5
echo "== ok"
