#!/bin/sh
# Bounds-check-elimination guard for the hot interaction kernels.
#
# Builds the kernel packages with -d=ssa/check_bce and compares the
# checks the compiler could NOT eliminate against the committed
# golden (scripts/bce_allow.txt). The golden is aggregated to
# per-file, per-kind counts so comment edits don't churn it; any NEW
# check that survives prove -- say a refactor that breaks the
# re-slice idiom and puts a per-interaction bounds check back into a
# tile sweep -- changes a count and fails the guard.
#
# What the golden admits, and why it is not zero:
#   - internal/grav/tiled.go IsSliceInBounds: the per-tile slice
#     headers (sx[:n] and friends, the l.SX[s0:s0+n] tile carving,
#     the EvalSelf snapshot copies). These run once per tile or per
#     group, amortized over tileSources interactions each.
#   - internal/grav/tiled.go IsInBounds: the per-tile target loads
#     (t.X[i] etc.) in the EvalPP/EvalM2P outer loops, plus exactly
#     ONE in-loop check: the first source access in ppTile's unrolled
#     pair loop. The loop steps by two, which go1.24's prove pass
#     cannot follow as an induction variable, so the first access
#     keeps its check and every later access is eliminated against
#     it -- one compare-and-branch per two interactions is the floor
#     this loop shape admits.
#   - internal/rsqrt/rsqrt.go: the scalar-fallback store in Sweep and
#     Sweep's own header re-slice; the batched main loop is clean.
#
# Run with -update after a deliberate kernel change to regenerate the
# golden (and say why in the commit).
set -eu
cd "$(dirname "$0")/.."

golden=scripts/bce_allow.txt

actual=$(go build -gcflags='-d=ssa/check_bce' ./internal/grav/ ./internal/rsqrt/ 2>&1 |
	grep -E '^internal/(grav/tiled|rsqrt/rsqrt)\.go' |
	sed -E 's/^([^:]+):[0-9]+:[0-9]+: Found /\1 /' |
	sort | uniq -c | awk '{printf "%4d %s %s\n", $1, $2, $3}')

if [ "${1:-}" = "-update" ]; then
	printf '%s\n' "$actual" >"$golden"
	echo "bce: regenerated $golden"
	exit 0
fi

if ! printf '%s\n' "$actual" | diff -u "$golden" - >&2; then
	echo "bce: surviving bounds checks in the hot kernels changed" >&2
	echo "bce: inspect with: go build -gcflags='-d=ssa/check_bce' ./internal/grav/ ./internal/rsqrt/" >&2
	echo "bce: if the change is deliberate: sh scripts/bce.sh -update" >&2
	exit 1
fi
echo "bce: hot-kernel bounds checks match $golden"
