#!/bin/sh
# Chaos soak for the message runtime's failure containment: drive
# treebench under deterministic fault injection and assert that every
# run either completes cleanly (exit 0) or ends in a structured
# world abort (exit 3) -- never a hang (the timeout's exit 124) and
# never an uncontained crash (exit 2). Seeds are fixed, so a failure
# here is replayable with the printed command line.
#
# Usage: scripts/chaos.sh [quick|full]   (default: full)
set -eu
cd "$(dirname "$0")/.."

mode="${1:-full}"
case "$mode" in
quick) seeds="1 2 3" ;;
full) seeds="1 2 3 4 5" ;;
*)
	echo "usage: $0 [quick|full]" >&2
	exit 2
	;;
esac

bin="$(mktemp -d)/treebench"
trap 'rm -rf "$(dirname "$bin")"' EXIT
go build -o "$bin" ./cmd/treebench

runs=0
aborts=0
cleans=0

# run_one CMD...: execute one injected run and bucket its exit status.
run_one() {
	runs=$((runs + 1))
	rc=0
	timeout 120 "$@" >/dev/null 2>/tmp/chaos_err.$$ || rc=$?
	case "$rc" in
	0)
		cleans=$((cleans + 1))
		;;
	3)
		# Contained failure: the stderr must carry the
		# structured report, not a raw panic trace.
		if ! grep -q "msg: world aborted" /tmp/chaos_err.$$; then
			echo "FAIL (exit 3 without a WorldError): $*" >&2
			cat /tmp/chaos_err.$$ >&2
			exit 1
		fi
		aborts=$((aborts + 1))
		;;
	124)
		echo "FAIL (hang, killed by timeout): $*" >&2
		exit 1
		;;
	*)
		echo "FAIL (uncontained exit $rc): $*" >&2
		cat /tmp/chaos_err.$$ >&2
		exit 1
		;;
	esac
}

for np in 2 8; do
	for spec in \
		"crash=0.002" \
		"stall=0.002,latency=0.02"; do
		for seed in $seeds; do
			run_one "$bin" -n 3000 -procs "$np" -steps 2 -watchdog 2s -chaos "seed=$seed,$spec"
		done
	done
done

# Overlap pass: with the walk/eval pipeline and prefetch on, faults
# land while the rank goroutine is running deferred walks inside a
# collective's Progress hook and while serve is packing prefetch
# subtrees -- containment must hold on the pipelined schedule too (a
# crash mid-hook must still unwind into a structured abort, never a
# deadlock on the eval pool's slot tokens).
for np in 2 8; do
	for seed in $seeds; do
		run_one "$bin" -n 3000 -procs "$np" -steps 2 -evalworkers 2 -prefetch 1 \
			-watchdog 2s -chaos "seed=$seed,crash=0.002,stall=0.002,latency=0.02"
	done
done

# Block-timestep pass: the hierarchical scheduler multiplies the
# collectives per step (sub-step evaluations, rung allreduces, the
# splits-reuse decision), so one crash/stall spec soaks that schedule
# too -- containment must hold no matter which collective the fault
# lands in.
for np in 2 8; do
	for seed in $seeds; do
		run_one "$bin" -n 3000 -procs "$np" -steps 2 -dtmode=block -eta 0.02 \
			-watchdog 2s -chaos "seed=$seed,crash=0.001,stall=0.001,latency=0.02"
	done
done

rm -f /tmp/chaos_err.$$
echo "chaos: $runs runs, $cleans clean, $aborts contained aborts, 0 hangs"
