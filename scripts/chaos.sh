#!/bin/sh
# Chaos soak for the message runtime's failure containment: drive
# treebench under deterministic fault injection and assert that every
# run either completes cleanly (exit 0) or ends in a structured
# world abort (exit 3) -- never a hang (the timeout's exit 124) and
# never an uncontained crash (exit 2). Seeds are fixed, so a failure
# here is replayable with the printed command line.
#
# Usage: scripts/chaos.sh [quick|full]   (default: full)
set -eu
cd "$(dirname "$0")/.."

mode="${1:-full}"
case "$mode" in
quick) seeds="1 2 3" ;;
full) seeds="1 2 3 4 5" ;;
*)
	echo "usage: $0 [quick|full]" >&2
	exit 2
	;;
esac

bin="$(mktemp -d)/treebench"
trap 'rm -rf "$(dirname "$bin")"' EXIT
go build -o "$bin" ./cmd/treebench

runs=0
aborts=0
cleans=0
for np in 2 8; do
	for spec in \
		"crash=0.002" \
		"stall=0.002,latency=0.02"; do
		for seed in $seeds; do
			runs=$((runs + 1))
			cmd="$bin -n 3000 -procs $np -steps 2 -watchdog 2s -chaos seed=$seed,$spec"
			rc=0
			timeout 120 $cmd >/dev/null 2>/tmp/chaos_err.$$ || rc=$?
			case "$rc" in
			0)
				cleans=$((cleans + 1))
				;;
			3)
				# Contained failure: the stderr must carry the
				# structured report, not a raw panic trace.
				if ! grep -q "msg: world aborted" /tmp/chaos_err.$$; then
					echo "FAIL (exit 3 without a WorldError): $cmd" >&2
					cat /tmp/chaos_err.$$ >&2
					exit 1
				fi
				aborts=$((aborts + 1))
				;;
			124)
				echo "FAIL (hang, killed by timeout): $cmd" >&2
				exit 1
				;;
			*)
				echo "FAIL (uncontained exit $rc): $cmd" >&2
				cat /tmp/chaos_err.$$ >&2
				exit 1
				;;
			esac
		done
	done
done
rm -f /tmp/chaos_err.$$
echo "chaos: $runs runs, $cleans clean, $aborts contained aborts, 0 hangs"
