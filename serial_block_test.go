package hot

import (
	"math"
	"testing"
)

// The serial engine's block scheduler with every body on rung zero is
// bit for bit the historical uniform leapfrog: same tree builds, same
// group walks, same kicks.
func TestSerialBlockOneRungBitwise(t *testing.T) {
	bodies := PlummerSphere(1500, 1, 5)
	uni, err := NewSerial(bodies, Defaults())
	if err != nil {
		t.Fatal(err)
	}
	blk, err := NewSerial(bodies, Defaults())
	if err != nil {
		t.Fatal(err)
	}
	// Enormous eta: the acceleration criterion puts everything on rung
	// zero, so each global step is one full evaluation.
	blk.EnableBlockSteps(1e9)
	const dt, steps = 1e-3, 3
	for s := 0; s < steps; s++ {
		iu := uni.Step(dt)
		ib := blk.Step(dt)
		if iu.Interactions != ib.Interactions {
			t.Fatalf("step %d: %d interactions uniform, %d block", s, iu.Interactions, ib.Interactions)
		}
	}
	bu, bb := uni.Bodies(), blk.Bodies()
	for i := range bu {
		if bu[i] != bb[i] {
			t.Fatalf("body %d diverged: uniform %+v, block %+v", i, bu[i], bb[i])
		}
	}
	if st := blk.StepperStats(); st.PartialEvals != 0 || st.FullEvals != steps {
		t.Fatalf("one-rung block ran %d partial + %d full evals", st.PartialEvals, st.FullEvals)
	}
}

// Multi-rung serial block stepping: partial evaluations engage, the
// active set shrinks, and the energy stays on the uniform scale.
func TestSerialBlockPartialEvals(t *testing.T) {
	bodies := PlummerSphere(3000, 1, 5)
	uni, err := NewSerial(bodies, Defaults())
	if err != nil {
		t.Fatal(err)
	}
	blk, err := NewSerial(bodies, Defaults())
	if err != nil {
		t.Fatal(err)
	}
	blk.EnableBlockSteps(0.02)
	const dt, steps = 1e-3, 3
	var iu, ib StepInfo
	for s := 0; s < steps; s++ {
		iu = uni.Step(dt)
		ib = blk.Step(dt)
	}
	st := blk.StepperStats()
	if st.PartialEvals == 0 {
		t.Fatalf("no partial evaluations engaged: %+v", st)
	}
	if 2*st.ActiveSinks >= st.TotalSinks {
		t.Fatalf("active fraction %.3f, want the clustered Plummer core to keep it below 0.5",
			float64(st.ActiveSinks)/float64(st.TotalSinks))
	}
	eu, eb := iu.Kinetic+iu.Potential, ib.Kinetic+ib.Potential
	if rel := math.Abs((eb - eu) / eu); rel > 1e-4 {
		t.Fatalf("block energy %g departs from uniform %g by %g relative", eb, eu, rel)
	}
}
