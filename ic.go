package hot

import (
	"repro/internal/ic"
)

// PlummerSphere returns n bodies sampling a virialized Plummer sphere
// of total mass 1 and scale radius a (deterministic for a given seed).
func PlummerSphere(n int, a float64, seed int64) []Body {
	return fromSystem(ic.Plummer(n, a, seed))
}

// ColdSphere returns n equal-mass bodies at rest, uniform in a sphere
// of the given radius: a cold-collapse initial condition.
func ColdSphere(n int, radius float64, seed int64) []Body {
	return fromSystem(ic.UniformSphere(n, radius, seed))
}

// TwoBodyOrbit returns a circular two-body orbit with masses m1, m2
// and separation d (period 2*pi*sqrt(d^3/(m1+m2)) with G = 1).
func TwoBodyOrbit(m1, m2, d float64) []Body {
	return fromSystem(ic.TwoBody(m1, m2, d))
}
