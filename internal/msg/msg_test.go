package msg

import (
	"sync/atomic"
	"testing"
	"testing/quick"

	"repro/internal/trace"
)

func TestSendRecvBasic(t *testing.T) {
	Run(2, func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 7, "hello", 5)
		} else {
			m := c.Recv(0, 7)
			if m.Data.(string) != "hello" || m.Src != 0 || m.Tag != 7 || m.Bytes != 5 {
				t.Errorf("bad message: %+v", m)
			}
		}
	})
}

func TestRecvTagMatching(t *testing.T) {
	Run(2, func(c *Comm) {
		if c.Rank() == 0 {
			c.Send(1, 1, "first", 0)
			c.Send(1, 2, "second", 0)
		} else {
			// Receive out of order by tag.
			if m := c.Recv(0, 2); m.Data.(string) != "second" {
				t.Error("tag 2 mismatched")
			}
			if m := c.Recv(0, 1); m.Data.(string) != "first" {
				t.Error("tag 1 mismatched")
			}
		}
	})
}

func TestRecvAnySource(t *testing.T) {
	var got int32
	Run(4, func(c *Comm) {
		if c.Rank() != 0 {
			c.Send(0, 5, c.Rank(), 4)
		} else {
			for i := 0; i < 3; i++ {
				m := c.Recv(AnySource, 5)
				atomic.AddInt32(&got, int32(m.Data.(int)))
			}
		}
	})
	if got != 1+2+3 {
		t.Fatalf("sum = %d", got)
	}
}

func TestFIFOPerSourceTag(t *testing.T) {
	Run(2, func(c *Comm) {
		const n = 100
		if c.Rank() == 0 {
			for i := 0; i < n; i++ {
				c.Send(1, 3, i, 4)
			}
		} else {
			for i := 0; i < n; i++ {
				if got := c.Recv(0, 3).Data.(int); got != i {
					t.Errorf("out of order: got %d want %d", got, i)
				}
			}
		}
	})
}

func TestTryRecv(t *testing.T) {
	Run(2, func(c *Comm) {
		if c.Rank() == 0 {
			if _, ok := c.TryRecv(1, 9); ok {
				t.Error("TryRecv found phantom message")
			}
			c.Send(1, 8, 42, 4)
		} else {
			m := c.Recv(0, 8) // ensures the message arrived
			if m.Data.(int) != 42 {
				t.Error("wrong data")
			}
			if _, ok := c.TryRecv(0, 8); ok {
				t.Error("message not consumed")
			}
		}
	})
}

func TestBarrier(t *testing.T) {
	for _, np := range []int{1, 2, 3, 4, 7, 8, 16} {
		var phase int32
		Run(np, func(c *Comm) {
			for iter := 0; iter < 5; iter++ {
				atomic.AddInt32(&phase, 1)
				c.Barrier()
				if v := atomic.LoadInt32(&phase); int(v) != np*(iter+1) {
					t.Errorf("np=%d iter=%d: rank passed barrier at phase %d, want %d", np, iter, v, np*(iter+1))
				}
				c.Barrier()
			}
		})
	}
}

func TestBcast(t *testing.T) {
	for _, np := range []int{1, 2, 3, 5, 8, 13} {
		for root := 0; root < np; root += 3 {
			Run(np, func(c *Comm) {
				x := -1
				if c.Rank() == root {
					x = 12345
				}
				got := Bcast(c, root, x, 4)
				if got != 12345 {
					t.Errorf("np=%d root=%d rank=%d: Bcast = %d", np, root, c.Rank(), got)
				}
			})
		}
	}
}

func TestReduceAllreduce(t *testing.T) {
	for _, np := range []int{1, 2, 4, 6, 9} {
		want := int64(np * (np - 1) / 2)
		Run(np, func(c *Comm) {
			got := Reduce(c, 0, int64(c.Rank()), SumI64, 8)
			if c.Rank() == 0 && got != want {
				t.Errorf("np=%d: Reduce = %d want %d", np, got, want)
			}
			all := Allreduce(c, int64(c.Rank()), SumI64, 8)
			if all != want {
				t.Errorf("np=%d rank=%d: Allreduce = %d want %d", np, c.Rank(), all, want)
			}
		})
	}
}

func TestGatherAllgather(t *testing.T) {
	Run(5, func(c *Comm) {
		g := Gather(c, 2, c.Rank()*10, 4)
		if c.Rank() == 2 {
			for r, v := range g {
				if v != r*10 {
					t.Errorf("Gather[%d] = %d", r, v)
				}
			}
		} else if g != nil {
			t.Error("non-root gather should be nil")
		}
		ag := Allgather(c, c.Rank()+100, 4)
		for r, v := range ag {
			if v != r+100 {
				t.Errorf("Allgather[%d] = %d on rank %d", r, v, c.Rank())
			}
		}
	})
}

func TestExScan(t *testing.T) {
	Run(6, func(c *Comm) {
		got := ExScan(c, int64(c.Rank()+1), SumI64, 8)
		// exclusive prefix of 1,2,3,... at rank r is r(r+1)/2
		want := int64(c.Rank() * (c.Rank() + 1) / 2)
		if c.Rank() == 0 {
			want = 0
		}
		if got != want {
			t.Errorf("rank %d: ExScan = %d want %d", c.Rank(), got, want)
		}
	})
}

func TestAlltoallv(t *testing.T) {
	np := 4
	Run(np, func(c *Comm) {
		send := make([][]int, np)
		for d := 0; d < np; d++ {
			// rank r sends [r, d, r+d] to d
			send[d] = []int{c.Rank(), d, c.Rank() + d}
		}
		recv := Alltoallv(c, send, 8)
		for s := 0; s < np; s++ {
			want := []int{s, c.Rank(), s + c.Rank()}
			if len(recv[s]) != 3 {
				t.Fatalf("recv[%d] len %d", s, len(recv[s]))
			}
			for i := range want {
				if recv[s][i] != want[i] {
					t.Errorf("rank %d recv[%d] = %v want %v", c.Rank(), s, recv[s], want)
				}
			}
		}
	})
}

func TestAlltoallvEmptySlices(t *testing.T) {
	Run(3, func(c *Comm) {
		send := make([][]int, 3)
		recv := Alltoallv(c, send, 8)
		for s := range recv {
			if len(recv[s]) != 0 {
				t.Errorf("expected empty, got %v", recv[s])
			}
		}
	})
}

func TestTrafficCounting(t *testing.T) {
	w := Run(2, func(c *Comm) {
		c.Phase("alpha")
		if c.Rank() == 0 {
			c.Send(1, 1, nil, 100)
			c.Send(1, 2, nil, 50)
			c.Phase("beta")
			c.Send(1, 3, nil, 7)
		} else {
			c.Recv(0, 1)
			c.Recv(0, 2)
			c.Recv(0, 3)
		}
	})
	tr := w.RankTraffic(0)
	if a := tr.Phases["alpha"]; a == nil || a.Msgs != 2 || a.Bytes != 150 {
		t.Fatalf("alpha traffic = %+v", tr.Phases["alpha"])
	}
	if b := tr.Phases["beta"]; b == nil || b.Msgs != 1 || b.Bytes != 7 {
		t.Fatalf("beta traffic = %+v", tr.Phases["beta"])
	}
	if tot := w.TotalTraffic(); tot.Bytes != 157 || tot.Msgs != 3 {
		t.Fatalf("total = %+v", tot)
	}
	if m := w.MaxRankTraffic(); m.Bytes != 157 {
		t.Fatalf("max = %+v", m)
	}
	// Receiving rank sent nothing.
	if tot := w.RankTraffic(1).Total(); tot.Msgs != 0 {
		t.Fatalf("rank 1 traffic = %+v", tot)
	}
}

func TestCommMatrix(t *testing.T) {
	w := Run(3, func(c *Comm) {
		c.Phase("p")
		switch c.Rank() {
		case 0:
			c.Send(1, 1, nil, 10)
			c.Send(2, 1, nil, 20)
			c.Send(2, 1, nil, 30)
		case 1:
			c.Recv(0, 1)
			c.Send(0, 2, nil, 5)
		case 2:
			c.Recv(0, 1)
			c.Recv(0, 1)
		}
		if c.Rank() == 0 {
			c.Recv(1, 2)
		}
	})
	msgs, bytes := w.CommMatrix()
	wantMsgs := [][]uint64{{0, 1, 2}, {1, 0, 0}, {0, 0, 0}}
	wantBytes := [][]uint64{{0, 10, 50}, {5, 0, 0}, {0, 0, 0}}
	for s := 0; s < 3; s++ {
		for d := 0; d < 3; d++ {
			if msgs[s][d] != wantMsgs[s][d] || bytes[s][d] != wantBytes[s][d] {
				t.Fatalf("matrix[%d][%d] = (%d, %d), want (%d, %d)",
					s, d, msgs[s][d], bytes[s][d], wantMsgs[s][d], wantBytes[s][d])
			}
		}
		// Row sums agree with the per-rank totals.
		var rm, rb uint64
		for d := 0; d < 3; d++ {
			rm, rb = rm+msgs[s][d], rb+bytes[s][d]
		}
		if tot := w.RankTraffic(s).Total(); rm != tot.Msgs || rb != tot.Bytes {
			t.Fatalf("rank %d row sum (%d, %d) != total %+v", s, rm, rb, tot)
		}
	}
}

// With a trace attached, every send and receive (point-to-point and
// collective) lands on the acting rank's timeline, and send byte
// sums match the traffic record.
func TestWorldTraceEvents(t *testing.T) {
	tr := trace.NewRun(2)
	w := NewWorld(2)
	w.SetTrace(tr)
	w.Run(func(c *Comm) {
		c.Phase("p")
		if c.Rank() == 0 {
			c.Send(1, 1, nil, 64)
		} else {
			c.Recv(0, 1)
		}
		c.Barrier()
	})
	for r := 0; r < 2; r++ {
		var sent, recvd uint64
		for _, ev := range tr.Rank(r).Events() {
			switch ev.Kind {
			case trace.KindSend:
				sent += uint64(ev.Bytes)
			case trace.KindRecv:
				recvd++
			}
		}
		if sent != w.RankTraffic(r).Total().Bytes {
			t.Fatalf("rank %d traced %d sent bytes, traffic says %d",
				r, sent, w.RankTraffic(r).Total().Bytes)
		}
		if recvd == 0 {
			t.Fatalf("rank %d traced no receives (barrier must show)", r)
		}
	}
	// A mismatched trace size is a programming error.
	defer func() {
		if recover() == nil {
			t.Fatal("SetTrace with wrong size did not panic")
		}
	}()
	NewWorld(3).SetTrace(tr)
}

// Property: Allreduce of random vectors matches serial sum for random
// world sizes.
func TestAllreduceMatchesSerialProperty(t *testing.T) {
	f := func(vals []int64, npRaw uint8) bool {
		np := int(npRaw)%7 + 1
		if len(vals) < np {
			return true
		}
		vals = vals[:np]
		var want int64
		for _, v := range vals {
			want += v
		}
		ok := true
		Run(np, func(c *Comm) {
			got := Allreduce(c, vals[c.Rank()], SumI64, 8)
			if got != want {
				ok = false
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestRunPanicPropagates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("panic on a rank should propagate")
		}
	}()
	Run(2, func(c *Comm) {
		if c.Rank() == 1 {
			panic("rank 1 exploded")
		}
	})
}

func TestWorldValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewWorld(0) should panic")
		}
	}()
	NewWorld(0)
}

func BenchmarkPingPong(b *testing.B) {
	Run(2, func(c *Comm) {
		for i := 0; i < b.N; i++ {
			if c.Rank() == 0 {
				c.Send(1, 1, i, 8)
				c.Recv(1, 2)
			} else {
				c.Recv(0, 1)
				c.Send(0, 2, i, 8)
			}
		}
	})
}

func BenchmarkAllreduce16(b *testing.B) {
	Run(16, func(c *Comm) {
		for i := 0; i < b.N; i++ {
			Allreduce(c, float64(c.Rank()), SumF64, 8)
		}
	})
}

// Stress: random mixtures of point-to-point traffic and collectives
// across ranks must neither deadlock nor misdeliver. Each rank sends a
// deterministic pseudo-random pattern; every message carries a
// checksum of (src, dst, seq) that the receiver verifies.
func TestRandomTrafficStress(t *testing.T) {
	const np = 6
	const msgs = 200
	Run(np, func(c *Comm) {
		// Deterministic per-rank schedule.
		x := uint64(c.Rank()*2654435761 + 12345)
		next := func() uint64 {
			x = x*6364136223846793005 + 1442695040888963407
			return x >> 33
		}
		type payload struct{ Src, Seq, Sum uint64 }
		counts := make([]int, np) // messages I will send to each rank
		for i := 0; i < msgs; i++ {
			dst := int(next()) % np
			counts[dst]++
		}
		// Everyone learns how many to expect from everyone.
		expect := make([][]int, np)
		for r := 0; r < np; r++ {
			expect[r] = Bcast(c, r, counts, 8*np)
		}
		// Re-run the schedule, actually sending.
		x = uint64(c.Rank()*2654435761 + 12345)
		sent := make([]uint64, np)
		for i := 0; i < msgs; i++ {
			dst := int(next()) % np
			p := payload{Src: uint64(c.Rank()), Seq: sent[dst], Sum: uint64(c.Rank())*1000003 + sent[dst]}
			c.Send(dst, 77, p, 24)
			sent[dst]++
			if i%17 == 0 {
				c.Barrier() // interleave collectives with p2p
			}
		}
		// Receive everything owed to me, in per-source order.
		for src := 0; src < np; src++ {
			for k := 0; k < expect[src][c.Rank()]; k++ {
				m := c.Recv(src, 77)
				p := m.Data.(payload)
				if p.Src != uint64(src) || p.Seq != uint64(k) || p.Sum != uint64(src)*1000003+uint64(k) {
					t.Errorf("corrupted delivery from %d: %+v (want seq %d)", src, p, k)
				}
			}
		}
		c.Barrier()
	})
}
