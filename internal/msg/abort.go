// Failure containment: abortable worlds. The substrate's collectives
// are fragile by construction -- every rank blocks on named receives,
// so one rank dying mid-collective used to leave every survivor
// parked in mailbox.take forever while Run waited on wg.Wait (the
// deadlock class behind the PR 4 incident). World.Abort is the root
// fix: it records the first failure, flips a world-wide flag, and
// broadcasts every mailbox condvar so each blocked rank wakes, sees
// the flag, and unwinds promptly. Run then re-raises one structured
// *WorldError naming the first failing rank, its cause, and every
// rank's last known progress (phase, collective seq, batched-request
// round, blocked receive).

package msg

import (
	"fmt"
	"strings"
	"sync"
)

// abortUnwind is the panic sentinel a rank raises to unwind after the
// world has aborted for some other rank's failure; Run swallows it so
// only the primary cause is reported.
type abortUnwind struct{}

// rankState is one rank's coarse progress, kept current off the
// per-message hot path (phase changes, collective entry, request
// rounds, and blocking receives only) and snapshotted by the watchdog
// and by Abort.
type rankState struct {
	mu         sync.Mutex
	phase      string
	seq        int
	round      uint64
	blocked    bool
	blockedSrc int
	blockedTag int
}

func (st *rankState) setPhase(p string) {
	st.mu.Lock()
	st.phase = p
	st.mu.Unlock()
}

func (st *rankState) setSeq(s int) {
	st.mu.Lock()
	st.seq = s
	st.mu.Unlock()
}

func (st *rankState) setRound(r uint64) {
	st.mu.Lock()
	st.round = r
	st.mu.Unlock()
}

func (st *rankState) setBlocked(src, tag int) {
	st.mu.Lock()
	st.blocked, st.blockedSrc, st.blockedTag = true, src, tag
	st.mu.Unlock()
}

func (st *rankState) clearBlocked() {
	st.mu.Lock()
	st.blocked = false
	st.mu.Unlock()
}

// RankState is the published snapshot of one rank's progress at abort
// or watchdog time.
type RankState struct {
	Rank int
	// Phase is the rank's current traffic phase label.
	Phase string
	// Seq counts completed collective entries.
	Seq int
	// Round is the rank's last noted batched-request round (abm).
	Round uint64
	// Blocked reports the rank was parked in a blocking Recv, on
	// (BlockedSrc, BlockedTag) -- wildcards appear as AnySource/AnyTag.
	Blocked    bool
	BlockedSrc int
	BlockedTag int
}

func (s RankState) String() string {
	b := "-"
	if s.Blocked {
		b = fmt.Sprintf("recv src=%d tag=%d", s.BlockedSrc, s.BlockedTag)
	}
	return fmt.Sprintf("rank %d: phase=%q seq=%d round=%d blocked=%s", s.Rank, s.Phase, s.Seq, s.Round, b)
}

// States snapshots every rank's progress. Safe to call from any
// goroutine at any time (the watchdog calls it concurrently with the
// run).
func (w *World) States() []RankState {
	out := make([]RankState, w.size)
	for i := range w.states {
		st := &w.states[i]
		st.mu.Lock()
		out[i] = RankState{
			Rank: i, Phase: st.phase, Seq: st.seq, Round: st.round,
			Blocked: st.blocked, BlockedSrc: st.blockedSrc, BlockedTag: st.blockedTag,
		}
		st.mu.Unlock()
	}
	return out
}

// WorldError is the structured failure of an aborted world: the first
// failing rank (RankWatchdog for a watchdog-declared stall), its
// cause, and the per-rank progress table captured at abort time.
type WorldError struct {
	Rank  int
	Cause error
	Ranks []RankState
}

// RankWatchdog is the WorldError.Rank value of an abort declared by
// the stall watchdog rather than by a failing rank.
const RankWatchdog = -1

func (e *WorldError) Error() string {
	var b strings.Builder
	who := fmt.Sprintf("rank %d", e.Rank)
	if e.Rank == RankWatchdog {
		who = "watchdog"
	}
	fmt.Fprintf(&b, "msg: world aborted by %s: %v", who, e.Cause)
	for _, s := range e.Ranks {
		fmt.Fprintf(&b, "\n  %s", s)
	}
	return b.String()
}

func (e *WorldError) Unwrap() error { return e.Cause }

// causeOf normalizes a recovered panic value into the abort cause.
func causeOf(p any) error {
	if err, ok := p.(error); ok {
		return err
	}
	return fmt.Errorf("panic: %v", p)
}

// Abort fails the whole world: the first call records (rank, cause)
// plus a snapshot of every rank's progress, then wakes every blocked
// receive so all ranks unwind promptly instead of deadlocking. Later
// calls are no-ops beyond the wakeup. rank is the failing rank, or
// RankWatchdog for an external monitor.
func (w *World) Abort(rank int, cause error) {
	w.abortMu.Lock()
	if w.abortErr == nil {
		w.abortErr = &WorldError{Rank: rank, Cause: cause, Ranks: w.States()}
		w.aborted.Store(true)
		close(w.abortCh)
	}
	w.abortMu.Unlock()
	for _, b := range w.boxes {
		b.mu.Lock()
		b.cond.Broadcast()
		b.mu.Unlock()
	}
}

// Err returns the world's abort error, or nil while it is healthy.
func (w *World) Err() *WorldError {
	w.abortMu.Lock()
	defer w.abortMu.Unlock()
	return w.abortErr
}

// Abort fails the world from inside a rank: it records this rank as
// the first failure (if no earlier one exists) and unwinds the
// calling goroutine immediately. Protocol layers use it to convert
// "stuck" conditions (request rounds exceeded, handler contract
// violations) into a prompt world-wide abort instead of a panic that
// deadlocks the survivors.
func (c *Comm) Abort(cause error) {
	c.w.Abort(c.rank, cause)
	panic(abortUnwind{})
}
