package msg

import (
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

// syncBuffer guards a bytes.Buffer so the watchdog goroutine can
// write the dump while the test later reads it.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// A genuinely stalled world (every rank waiting on a message nobody
// sends) must be detected, diagnosed, and aborted -- the silent-hang
// class the abort path alone cannot catch.
func TestWatchdogDetectsStall(t *testing.T) {
	var dump syncBuffer
	runWithDeadline(t, 10*time.Second, func() {
		w := NewWorld(2)
		w.StartWatchdog(WatchdogConfig{Quiet: 150 * time.Millisecond, Out: &dump, Stacks: true})
		err := w.RunErr(func(c *Comm) {
			c.Phase("deadlock")
			c.Recv(1-c.Rank(), 99) // neither side ever sends
		})
		if err == nil {
			t.Fatal("expected a WorldError")
		}
		if err.Rank != RankWatchdog {
			t.Fatalf("abort rank = %d, want RankWatchdog", err.Rank)
		}
		var stall *StallError
		if !errors.As(err, &stall) {
			t.Fatalf("cause is %T, want *StallError: %v", err.Cause, err)
		}
	})
	// The dump is structured JSON (one record per line) so it
	// interleaves machine-parseably with the drivers' slog stream.
	out := dump.String()
	for _, want := range []string{
		"msg watchdog: no progress",
		`"phase":"deadlock"`,
		`"blocked":"recv src=1 tag=99"`,
		`"level":"ERROR"`,
		"goroutine", // the stack dump attribute
	} {
		if !strings.Contains(out, want) {
			t.Errorf("dump missing %q; got:\n%s", want, out)
		}
	}
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Errorf("dump line is not JSON: %v\n%s", err, line)
		}
	}
}

// A healthy run must never trip the watchdog, and RunErr retires it.
func TestWatchdogQuietOnHealthyRun(t *testing.T) {
	var dump syncBuffer
	w := NewWorld(4)
	wd := w.StartWatchdog(WatchdogConfig{Quiet: 5 * time.Second, Out: &dump})
	err := w.RunErr(func(c *Comm) {
		for i := 0; i < 20; i++ {
			c.Barrier()
		}
	})
	if err != nil {
		t.Fatalf("unexpected abort: %v", err)
	}
	wd.Stop() // idempotent after RunErr already stopped it
	if got := dump.String(); got != "" {
		t.Fatalf("watchdog wrote a dump on a healthy run:\n%s", got)
	}
}

// The watchdog must not fire while progress is being made, even when
// individual ranks are briefly idle between bursts.
func TestWatchdogToleratesSlowProgress(t *testing.T) {
	w := NewWorld(2)
	w.StartWatchdog(WatchdogConfig{Quiet: 400 * time.Millisecond, Out: &syncBuffer{}})
	err := w.RunErr(func(c *Comm) {
		for i := 0; i < 6; i++ {
			time.Sleep(100 * time.Millisecond) // under Quiet, progress resumes
			c.Barrier()
		}
	})
	if err != nil {
		t.Fatalf("watchdog fired on a slow but live run: %v", err)
	}
}
