package msg

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"
)

// runWithDeadline fails the test if fn does not return within d --
// the guard every containment test needs, since the bug class being
// fixed is "hangs forever".
func runWithDeadline(t *testing.T, d time.Duration, fn func()) {
	t.Helper()
	done := make(chan struct{})
	go func() {
		defer close(done)
		fn()
	}()
	select {
	case <-done:
	case <-time.After(d):
		t.Fatal("run did not complete within deadline (world hung)")
	}
}

// Regression for the PR 4 incident (treebench -procs 8): one rank
// panics mid-collective and every survivor is blocked inside
// mailbox.take on a message that will never come. Before the abort
// path, Run's wg.Wait() hung forever; now the panic must surface as a
// structured WorldError promptly.
func TestPanicMidCollectiveAborts(t *testing.T) {
	runWithDeadline(t, 10*time.Second, func() {
		w := NewWorld(8)
		err := w.RunErr(func(c *Comm) {
			for iter := 0; ; iter++ {
				if c.Rank() == 3 && iter == 5 {
					c.Phase("walk")
					panic("rank 3 exploded mid-collective")
				}
				c.Barrier()
			}
		})
		if err == nil {
			t.Fatal("expected a WorldError")
		}
		if err.Rank != 3 {
			t.Fatalf("first failing rank = %d, want 3", err.Rank)
		}
		if !strings.Contains(err.Error(), "rank 3 exploded") {
			t.Fatalf("cause lost: %v", err)
		}
		if len(err.Ranks) != 8 {
			t.Fatalf("state table has %d ranks, want 8", len(err.Ranks))
		}
		// The survivors were parked in the barrier's Recv; at least
		// some of the snapshot must show a blocked receive with the
		// phase and collective seq they reached.
		blocked := 0
		for _, s := range err.Ranks {
			if s.Blocked {
				blocked++
			}
		}
		if blocked == 0 {
			t.Fatalf("no rank recorded as blocked: %+v", err.Ranks)
		}
	})
}

// The package-level Run must re-raise the WorldError as a panic (the
// historical contract), not hang.
func TestRunPanicIsWorldError(t *testing.T) {
	runWithDeadline(t, 10*time.Second, func() {
		defer func() {
			p := recover()
			if p == nil {
				t.Fatal("expected panic")
			}
			we, ok := p.(*WorldError)
			if !ok {
				t.Fatalf("panic value is %T, want *WorldError", p)
			}
			if we.Rank != 1 {
				t.Fatalf("rank = %d, want 1", we.Rank)
			}
		}()
		Run(4, func(c *Comm) {
			if c.Rank() == 1 {
				panic("boom")
			}
			c.Barrier() // survivors block until the abort wakes them
		})
	})
}

// Comm.Abort is the cooperative path protocol layers use: the caller
// unwinds immediately, everyone else wakes, and the given cause
// survives errors.Is/As through the WorldError.
func TestCommAbortUnwindsWorld(t *testing.T) {
	sentinel := errors.New("protocol stuck")
	runWithDeadline(t, 10*time.Second, func() {
		w := NewWorld(4)
		err := w.RunErr(func(c *Comm) {
			c.Phase("exchange")
			if c.Rank() == 2 {
				c.Abort(fmt.Errorf("giving up: %w", sentinel))
			}
			c.Recv(3, 99) // never sent: survivors depend on the abort
		})
		if err == nil {
			t.Fatal("expected a WorldError")
		}
		if err.Rank != 2 || !errors.Is(err, sentinel) {
			t.Fatalf("got %v", err)
		}
		if err.Ranks[2].Phase != "exchange" {
			t.Fatalf("rank 2 phase = %q, want exchange", err.Ranks[2].Phase)
		}
	})
}

// A clean run returns nil from RunErr and leaves Err() nil.
func TestRunErrNilOnSuccess(t *testing.T) {
	w := NewWorld(3)
	if err := w.RunErr(func(c *Comm) {
		c.Barrier()
		Allreduce(c, c.Rank(), SumI, 4)
	}); err != nil {
		t.Fatalf("unexpected error: %v", err)
	}
	if w.Err() != nil {
		t.Fatalf("Err() = %v on healthy world", w.Err())
	}
}

// First failure wins: concurrent aborts from several ranks must
// produce exactly one coherent WorldError.
func TestFirstFailureWins(t *testing.T) {
	runWithDeadline(t, 10*time.Second, func() {
		w := NewWorld(6)
		err := w.RunErr(func(c *Comm) {
			c.Abort(fmt.Errorf("rank %d failing", c.Rank()))
		})
		if err == nil {
			t.Fatal("expected a WorldError")
		}
		want := fmt.Sprintf("rank %d failing", err.Rank)
		if !strings.Contains(err.Cause.Error(), want) {
			t.Fatalf("cause %q does not match first rank %d", err.Cause, err.Rank)
		}
	})
}
