// Deterministic fault injection for the message substrate. The
// runtime's containment story (abort.go, watchdog.go) is only
// credible if the failure modes it contains can be manufactured on
// demand; the Injector does that with a seeded per-rank generator, so
// a chaos run is exactly reproducible from its seed: the same rank
// crashes at the same send in the same phase every time. Injection
// off (nil injector) costs one branch on the send and recv paths;
// everything here is test tooling and ships disabled.

package msg

import (
	"fmt"
	"sync/atomic"
	"time"
)

// InjectedCrash is the abort cause of a crash fault: the injected
// analogue of a rank dying mid-protocol, used to reproduce the
// one-rank-panics/world-deadlocks class.
type InjectedCrash struct {
	Rank  int
	Phase string
}

func (e *InjectedCrash) Error() string {
	return fmt.Sprintf("msg: injected crash on rank %d in phase %q", e.Rank, e.Phase)
}

// InjectorStats tallies what an Injector actually did.
type InjectorStats struct {
	Delays, Reorders, Stalls, Crashes uint64
}

// Injector perturbs the message substrate deterministically: each
// rank draws from its own seeded generator in program order, so the
// fault schedule depends only on (Seed, config, the run's own
// communication pattern) -- never on goroutine interleaving. Attach
// with World.SetInjector before any communication.
//
// Fault kinds, all off at their zero values:
//
//   - Latency: a message spends up to MaxLatency in flight before it
//     becomes visible to the receiver. The sender is never blocked and
//     the receiver's CPU stays free -- a Recv with a Progress hook
//     computes through the window, which is exactly the latency the
//     paper's asynchronous batched messages are designed to hide.
//     Delivery order per (src, tag) stream is unchanged, so results
//     stay bit-identical.
//   - Reorder: a message is delivered one slot ahead of the newest
//     queued message of its (src, tag) stream -- a bounded FIFO
//     violation. Off by default because FIFO order is what makes runs
//     bit-reproducible; enable only in chaos tests.
//   - Stall: the sending rank goes quiet for StallDur (or until the
//     world aborts, whichever is first) -- watchdog bait.
//   - Crash: the sending rank panics with *InjectedCrash -- abort
//     path bait.
type Injector struct {
	Seed uint64

	// CrashProb is the per-send probability the sending rank panics;
	// CrashPhase restricts crashes to sends in that phase ("" = any);
	// MaxCrashes caps world-wide injected crashes (0 means 1).
	CrashProb  float64
	CrashPhase string
	MaxCrashes int

	// StallProb is the per-send probability the rank stalls for
	// StallDur (0 means 30s); StallPhase restricts it ("" = any);
	// MaxStalls caps world-wide injected stalls (0 means 1).
	StallProb  float64
	StallPhase string
	StallDur   time.Duration
	MaxStalls  int

	// LatencyProb is the per-send probability of an in-flight delivery
	// delay, drawn uniformly in (0, MaxLatency] (0 means 100µs).
	LatencyProb float64
	MaxLatency  time.Duration

	// ReorderProb is the per-send probability of the bounded one-slot
	// reorder. Leave 0 to preserve FIFO determinism.
	ReorderProb float64

	w       *World
	rng     []uint64
	crashes atomic.Int64
	stalls  atomic.Int64
	stats   [4]atomic.Uint64
}

const (
	statDelays = iota
	statReorders
	statStalls
	statCrashes
)

func (inj *Injector) attach(w *World) {
	if inj.MaxCrashes <= 0 {
		inj.MaxCrashes = 1
	}
	if inj.MaxStalls <= 0 {
		inj.MaxStalls = 1
	}
	if inj.StallDur <= 0 {
		inj.StallDur = 30 * time.Second
	}
	if inj.MaxLatency <= 0 {
		inj.MaxLatency = 100 * time.Microsecond
	}
	inj.w = w
	inj.rng = make([]uint64, w.size)
	for r := range inj.rng {
		// Distinct, well-mixed per-rank streams from one seed.
		inj.rng[r] = (inj.Seed+1)*0x9e3779b97f4a7c15 ^ uint64(r+1)*0xbf58476d1ce4e5b9
	}
}

// next advances rank r's generator (splitmix64). Only rank r's own
// goroutine draws from stream r, so no synchronization is needed and
// the draw order is the rank's program order.
func (inj *Injector) next(r int) uint64 {
	x := inj.rng[r] + 0x9e3779b97f4a7c15
	inj.rng[r] = x
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// roll draws a uniform float in [0, 1) from rank r's stream. A draw
// happens for every enabled fault kind on every call site, so the
// schedule of one kind is independent of whether another fired.
func (inj *Injector) roll(r int) float64 {
	return float64(inj.next(r)>>11) / (1 << 53)
}

// Stats returns what was injected so far.
func (inj *Injector) Stats() InjectorStats {
	return InjectorStats{
		Delays:   inj.stats[statDelays].Load(),
		Reorders: inj.stats[statReorders].Load(),
		Stalls:   inj.stats[statStalls].Load(),
		Crashes:  inj.stats[statCrashes].Load(),
	}
}

// onSend runs the send-side faults, returning the message's in-flight
// delay (0 = deliverable immediately) and whether it should be
// delivered reordered.
func (inj *Injector) onSend(c *Comm) (delay time.Duration, reorder bool) {
	r := c.rank
	if inj.CrashProb > 0 && inj.roll(r) < inj.CrashProb &&
		(inj.CrashPhase == "" || inj.CrashPhase == c.phase) {
		if inj.crashes.Add(1) <= int64(inj.MaxCrashes) {
			inj.stats[statCrashes].Add(1)
			panic(&InjectedCrash{Rank: r, Phase: c.phase})
		}
	}
	if inj.StallProb > 0 && inj.roll(r) < inj.StallProb &&
		(inj.StallPhase == "" || inj.StallPhase == c.phase) {
		if inj.stalls.Add(1) <= int64(inj.MaxStalls) {
			inj.stats[statStalls].Add(1)
			inj.stall()
		}
	}
	if inj.LatencyProb > 0 && inj.roll(r) < inj.LatencyProb {
		inj.stats[statDelays].Add(1)
		delay = time.Duration(inj.next(r)%uint64(inj.MaxLatency)) + 1
	}
	if inj.ReorderProb > 0 && inj.roll(r) < inj.ReorderProb {
		inj.stats[statReorders].Add(1)
		reorder = true
	}
	return delay, reorder
}

// stall parks the calling rank for StallDur -- unless the world
// aborts first (typically the watchdog declaring the stall), in which
// case the rank unwinds immediately like any other survivor.
func (inj *Injector) stall() {
	t := time.NewTimer(inj.StallDur)
	defer t.Stop()
	select {
	case <-inj.w.abortCh:
		panic(abortUnwind{})
	case <-t.C:
	}
}
