// Package msg is the message-passing substrate that stands in for MPI:
// a set of "processors" (goroutines) exchanging typed messages through
// unbounded per-rank mailboxes, with the collectives the treecode
// needs (barrier, broadcast, reduce, allreduce, gather, allgather,
// scan, alltoallv) built on point-to-point sends.
//
// Two properties matter for the reproduction:
//
//   - Per-rank traffic counters. The paper's machine models convert
//     message counts and byte volumes into network time on ASCI Red or
//     Loki's switched fast ethernet; every Send records its logical
//     payload size against the sender's current phase so
//     internal/perfmodel can replay a run on any machine description.
//
//   - Determinism. Receives name their source, collectives apply
//     reduction operators in rank order, and mailboxes are FIFO per
//     (source, tag), so a parallel run is reproducible bit-for-bit,
//     which the parallel==serial equivalence tests rely on.
//
// Mailboxes are unbounded, so Send never blocks and naive
// communication patterns (ring shifts, all-to-all bursts) cannot
// deadlock; this mirrors MPI's buffered eager protocol for the small
// and medium messages the treecode sends.
package msg

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/trace"
)

// AnySource matches messages from any rank in Recv.
const AnySource = -1

// AnyTag matches any user tag in Recv.
const AnyTag = -2

// Message is one point-to-point transfer.
type Message struct {
	Src   int
	Tag   int
	Data  any
	Bytes int // logical payload size used for traffic accounting

	// bumped marks a queued message that an injected reorder has
	// already overtaken once; it is never overtaken again, which is
	// what bounds any message's displacement to one delivery slot.
	bumped bool
	// due, when nonzero, is the injected in-flight deadline: the
	// message sits in the mailbox but is invisible to take/tryTake
	// until due passes. The sender is never blocked and the receiver's
	// goroutine stays free to run its Progress hook -- latency as time
	// on the wire, not as a CPU stall.
	due time.Time
}

type mailbox struct {
	mu    sync.Mutex
	cond  *sync.Cond
	queue []Message
	w     *World
}

func newMailbox(w *World) *mailbox {
	m := &mailbox{w: w}
	m.cond = sync.NewCond(&m.mu)
	return m
}

// put appends a message (or, under injected reorder, slots it one
// position ahead of the newest queued message of the same (src, tag)
// stream) and bumps the world progress counter the watchdog samples.
func (m *mailbox) put(msg Message, reorder bool) {
	m.mu.Lock()
	if reorder {
		m.putReordered(msg)
	} else {
		m.queue = append(m.queue, msg)
	}
	m.w.progress.Add(1)
	m.mu.Unlock()
	m.cond.Broadcast()
}

// putReordered inserts msg one slot ahead of the tail-most queued
// message of the same (src, tag) stream, a bounded perturbation: a
// message already overtaken once (bumped) is never overtaken again,
// so no message is ever displaced by more than one delivery slot in
// either direction. Caller holds m.mu.
func (m *mailbox) putReordered(msg Message) {
	for i := len(m.queue) - 1; i >= 0; i-- {
		if m.queue[i].Src == msg.Src && m.queue[i].Tag == msg.Tag {
			if m.queue[i].bumped {
				break // keep the one-slot bound
			}
			m.queue[i].bumped = true
			m.queue = append(m.queue, Message{})
			copy(m.queue[i+1:], m.queue[i:])
			m.queue[i] = msg
			return
		}
	}
	m.queue = append(m.queue, msg)
}

func match(msg Message, src, tag int) bool {
	if src != AnySource && msg.Src != src {
		return false
	}
	if tag != AnyTag && msg.Tag != tag {
		return false
	}
	return true
}

// scanDue finds the first matching message whose injected in-flight
// deadline (if any) has passed, honoring per-stream FIFO: once a
// not-yet-due match is seen, later messages of the same (Src, Tag)
// stream are never delivered ahead of it. Returns the queue index, or
// -1 with the earliest deadline among blocked matches (zero if there
// are no matches at all). Caller holds m.mu.
func (m *mailbox) scanDue(src, tag int) (int, time.Time) {
	var now time.Time
	var earliest time.Time
	var held [][2]int // (Src, Tag) streams blocked by an earlier not-due match
scan:
	for i, msg := range m.queue {
		if !match(msg, src, tag) {
			continue
		}
		if msg.due.IsZero() {
			if held == nil {
				return i, time.Time{}
			}
		} else {
			if now.IsZero() {
				now = time.Now()
			}
			if msg.due.After(now) {
				if earliest.IsZero() || msg.due.Before(earliest) {
					earliest = msg.due
				}
				held = append(held, [2]int{msg.Src, msg.Tag})
				continue
			}
		}
		for _, h := range held {
			if h[0] == msg.Src && h[1] == msg.Tag {
				continue scan
			}
		}
		return i, time.Time{}
	}
	return -1, earliest
}

// take removes and returns the first matching message, blocking until
// one arrives (or, under injected latency, until its in-flight
// deadline passes -- a timer wakes the wait then). An aborted world
// wakes every blocked take (the condvars are broadcast by World.Abort)
// and unwinds the caller with the abort sentinel; the fast path pays
// one atomic load for that. st records where this rank is blocked, but
// only once it actually waits, so a take satisfied from the queue
// never touches it.
func (m *mailbox) take(src, tag int, st *rankState) Message {
	m.mu.Lock()
	defer m.mu.Unlock()
	blocked := false
	var timer *time.Timer
	defer func() {
		if timer != nil {
			timer.Stop()
		}
	}()
	for {
		if m.w.aborted.Load() {
			panic(abortUnwind{})
		}
		i, earliest := m.scanDue(src, tag)
		if i >= 0 {
			msg := m.queue[i]
			m.queue = append(m.queue[:i], m.queue[i+1:]...)
			if blocked {
				st.clearBlocked()
			}
			return msg
		}
		if !earliest.IsZero() {
			// The message is here but still in flight; wake this wait
			// when it matures. A late or spurious broadcast only causes
			// a harmless rescan.
			d := time.Until(earliest)
			if timer == nil {
				timer = time.AfterFunc(d, m.cond.Broadcast)
			} else {
				timer.Reset(d)
			}
		}
		if !blocked {
			st.setBlocked(src, tag)
			blocked = true
		}
		m.cond.Wait()
	}
}

// tryTake removes and returns the first matching message if one is
// already queued and past any injected in-flight deadline.
func (m *mailbox) tryTake(src, tag int) (Message, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.w.aborted.Load() {
		panic(abortUnwind{})
	}
	if i, _ := m.scanDue(src, tag); i >= 0 {
		msg := m.queue[i]
		m.queue = append(m.queue[:i], m.queue[i+1:]...)
		return msg, true
	}
	return Message{}, false
}

// PhaseTraffic is the communication volume attributed to one phase.
// The JSON tags are the RunReport wire names (internal/metrics).
type PhaseTraffic struct {
	Msgs  uint64 `json:"msgs"`
	Bytes uint64 `json:"bytes"`
}

// Traffic is the per-rank communication record, keyed by phase label.
// Only the owning rank writes it during a run.
type Traffic struct {
	Phases map[string]*PhaseTraffic
	// Dest is this rank's comm-matrix row: volume sent to each
	// destination rank, summed over phases.
	Dest []PhaseTraffic
}

func (t *Traffic) add(phase string, bytes int) {
	p := t.Phases[phase]
	if p == nil {
		p = &PhaseTraffic{}
		t.Phases[phase] = p
	}
	p.Msgs++
	p.Bytes += uint64(bytes)
}

// Total sums over phases.
func (t *Traffic) Total() PhaseTraffic {
	var sum PhaseTraffic
	for _, p := range t.Phases {
		sum.Msgs += p.Msgs
		sum.Bytes += p.Bytes
	}
	return sum
}

// World is one parallel machine instance: mailboxes and traffic
// records for every rank.
type World struct {
	size    int
	boxes   []*mailbox
	traffic []Traffic
	trace   *trace.Run

	// Failure containment (abort.go): the aborted flag is checked by
	// every take, abortCh wakes injected stalls, states carries the
	// per-rank progress snapshot the watchdog and WorldError report.
	aborted  atomic.Bool
	abortMu  sync.Mutex
	abortErr *WorldError
	abortCh  chan struct{}
	states   []rankState

	// progress counts message deliveries and phase transitions; the
	// stall watchdog (watchdog.go) samples it to detect a quiet world.
	progress atomic.Uint64
	inj      *Injector
	wd       *Watchdog
}

// NewWorld creates a world of np ranks without running anything; used
// when the caller manages its own goroutines.
func NewWorld(np int) *World {
	if np < 1 {
		panic("msg: world size must be >= 1")
	}
	w := &World{
		size: np, boxes: make([]*mailbox, np), traffic: make([]Traffic, np),
		abortCh: make(chan struct{}), states: make([]rankState, np),
	}
	for i := range w.boxes {
		w.boxes[i] = newMailbox(w)
		w.traffic[i] = Traffic{
			Phases: make(map[string]*PhaseTraffic),
			Dest:   make([]PhaseTraffic, np),
		}
		w.states[i].phase = "init"
	}
	return w
}

// SetInjector attaches a deterministic fault injector (inject.go).
// Must be called before any communication; nil (or never calling
// this) keeps the send/recv hot paths at a single extra branch.
func (w *World) SetInjector(inj *Injector) {
	if inj != nil {
		inj.attach(w)
	}
	w.inj = inj
}

// SetTrace attaches a trace.Run: every Send and Recv then also emits
// a timestamped event on the acting rank's tracer. Must be called
// before any communication; a nil run (or never calling this) keeps
// the hot path free of tracing. The run must have one tracer per
// rank.
func (w *World) SetTrace(r *trace.Run) {
	if r != nil && r.Size() != w.size {
		panic(fmt.Sprintf("msg: trace run has %d ranks, world has %d", r.Size(), w.size))
	}
	w.trace = r
}

// Size returns the number of ranks.
func (w *World) Size() int { return w.size }

// RankTraffic returns rank r's traffic record. Only meaningful after
// the run completes.
func (w *World) RankTraffic(r int) *Traffic { return &w.traffic[r] }

// TotalTraffic sums traffic over all ranks and phases.
func (w *World) TotalTraffic() PhaseTraffic {
	var sum PhaseTraffic
	for i := range w.traffic {
		t := w.traffic[i].Total()
		sum.Msgs += t.Msgs
		sum.Bytes += t.Bytes
	}
	return sum
}

// CommMatrix returns the full NxN communication matrix: msgs[s][d]
// and bytes[s][d] are the message count and byte volume rank s sent
// to rank d. Only meaningful after the run completes.
func (w *World) CommMatrix() (msgs, bytes [][]uint64) {
	msgs = make([][]uint64, w.size)
	bytes = make([][]uint64, w.size)
	for s := range w.traffic {
		msgs[s] = make([]uint64, w.size)
		bytes[s] = make([]uint64, w.size)
		for d, pt := range w.traffic[s].Dest {
			msgs[s][d] = pt.Msgs
			bytes[s][d] = pt.Bytes
		}
	}
	return msgs, bytes
}

// MaxRankTraffic returns the largest per-rank totals (the network
// model's bottleneck rank).
func (w *World) MaxRankTraffic() PhaseTraffic {
	var m PhaseTraffic
	for i := range w.traffic {
		t := w.traffic[i].Total()
		if t.Msgs > m.Msgs {
			m.Msgs = t.Msgs
		}
		if t.Bytes > m.Bytes {
			m.Bytes = t.Bytes
		}
	}
	return m
}

// Comm is one rank's handle on the world.
type Comm struct {
	w     *World
	rank  int
	phase string
	// seq numbers collectives so overlapping collective traffic can
	// never be confused; all ranks must call collectives in the same
	// order (the usual SPMD contract).
	seq int
	// st mirrors phase/seq/blocked-recv into the world's per-rank
	// state table for the watchdog and WorldError (abort.go). Updated
	// off the per-message hot path: on phase changes, collective
	// entry, and only when a Recv actually blocks.
	st *rankState

	// Progress, when non-nil, is polled by a Recv whose message has
	// not arrived yet: the hook runs one unit of deferred local work
	// (e.g. a queued group evaluation) and reports whether it did
	// anything. Recv alternates poll-for-message / one-unit-of-work
	// until either the message lands or the hook runs dry, then parks
	// in the ordinary blocking wait -- MPI_Test-and-compute on top of
	// the channel substrate. The hook runs on this rank's goroutine
	// and must never communicate.
	Progress func() bool
}

// Comm returns rank r's communicator.
func (w *World) Comm(r int) *Comm {
	if r < 0 || r >= w.size {
		panic(fmt.Sprintf("msg: rank %d out of range [0,%d)", r, w.size))
	}
	return &Comm{w: w, rank: r, phase: "init", st: &w.states[r]}
}

// Rank returns this communicator's rank.
func (c *Comm) Rank() int { return c.rank }

// Size returns the world size.
func (c *Comm) Size() int { return c.w.size }

// Phase labels subsequent traffic for the machine model.
func (c *Comm) Phase(name string) {
	c.phase = name
	c.st.setPhase(name)
	c.w.progress.Add(1)
}

// NoteRound records this rank's current batched-request round in the
// world's state table, so a watchdog dump or WorldError names how far
// each rank's request/reply protocol got.
func (c *Comm) NoteRound(n uint64) {
	c.st.setRound(n)
	c.w.progress.Add(1)
}

// CurrentPhase returns the active phase label.
func (c *Comm) CurrentPhase() string { return c.phase }

// TrafficTotal returns this rank's cumulative outbound traffic. Safe
// to call mid-run from the rank's own goroutine (only the owning rank
// writes its Traffic record); the telemetry sampler reads it once per
// step.
func (c *Comm) TrafficTotal() PhaseTraffic {
	return c.w.traffic[c.rank].Total()
}

// Send delivers data to rank dst under a user tag (>= 0). bytes is
// the logical payload size for traffic accounting; the data itself is
// shared by reference, so the receiver must not mutate it unless the
// sender has handed off ownership.
func (c *Comm) Send(dst, tag int, data any, bytes int) {
	if tag < 0 {
		panic("msg: user tags must be >= 0")
	}
	c.send(dst, tag, data, bytes)
}

func (c *Comm) send(dst, tag int, data any, bytes int) {
	if dst < 0 || dst >= c.w.size {
		panic(fmt.Sprintf("msg: send to rank %d out of range", dst))
	}
	reorder := false
	var due time.Time
	if c.w.inj != nil {
		delay, ro := c.w.inj.onSend(c)
		reorder = ro
		if delay > 0 {
			due = time.Now().Add(delay)
		}
	}
	t := &c.w.traffic[c.rank]
	t.add(c.phase, bytes)
	t.Dest[dst].Msgs++
	t.Dest[dst].Bytes += uint64(bytes)
	if c.w.trace != nil {
		c.w.trace.Rank(c.rank).Send(c.phase, dst, bytes)
	}
	c.w.boxes[dst].put(Message{Src: c.rank, Tag: tag, Data: data, Bytes: bytes, due: due}, reorder)
}

// Recv blocks until a message matching (src, tag) arrives. Use
// AnySource / AnyTag as wildcards.
func (c *Comm) Recv(src, tag int) Message {
	if c.Progress != nil {
		for {
			if m, ok := c.w.boxes[c.rank].tryTake(src, tag); ok {
				if c.w.trace != nil {
					c.w.trace.Rank(c.rank).Recv(c.phase, m.Src, m.Bytes)
				}
				return m
			}
			if !c.Progress() {
				break
			}
		}
	}
	m := c.w.boxes[c.rank].take(src, tag, c.st)
	if c.w.trace != nil {
		c.w.trace.Rank(c.rank).Recv(c.phase, m.Src, m.Bytes)
	}
	return m
}

// TryRecv returns a matching message if one is already queued.
func (c *Comm) TryRecv(src, tag int) (Message, bool) {
	m, ok := c.w.boxes[c.rank].tryTake(src, tag)
	if ok && c.w.trace != nil {
		c.w.trace.Rank(c.rank).Recv(c.phase, m.Src, m.Bytes)
	}
	return m, ok
}

// nextTag issues the (negative) tag of the next collective and
// advances the sequence counter: tags encode (sequence, op) so
// distinct collectives never collide. The new seq is mirrored into the
// rank state table so a hang report shows how many collectives each
// rank completed.
func (c *Comm) nextTag(op int) int {
	tag := -(c.seq*16 + op + 3)
	c.seq++
	c.st.setSeq(c.seq)
	return tag
}

const (
	opBarrier = iota
	opBcast
	opReduce
	opGather
	opAlltoall
	opScan
)

// Barrier blocks until every rank has entered it. Dissemination
// pattern: log2 P rounds of pairwise messages. Within one barrier the
// source rank of each round is distinct (dist < P), so a single tag
// disambiguated by seq is enough.
func (c *Comm) Barrier() {
	tag := c.nextTag(opBarrier)
	p := c.w.size
	for dist := 1; dist < p; dist <<= 1 {
		dst := (c.rank + dist) % p
		src := (c.rank - dist + p) % p
		c.send(dst, tag, nil, 0)
		c.Recv(src, tag)
	}
}

// Run executes fn on every rank of a fresh world and returns the
// world for traffic inspection. A failure on any rank aborts the
// whole world and is re-raised on the caller as a *WorldError.
func Run(np int, fn func(*Comm)) *World {
	w := NewWorld(np)
	w.Run(fn)
	return w
}

// Run executes fn on every rank of this world, one goroutine per
// rank, and returns when all complete. Callers that need tracing or
// other pre-run configuration use NewWorld + SetTrace + Run instead
// of the package-level Run. A failure on any rank aborts the world
// (every blocked rank unwinds promptly instead of hanging) and is
// re-raised on the caller as a *WorldError naming the first failing
// rank, its cause, and each rank's last known progress.
func (w *World) Run(fn func(*Comm)) {
	if err := w.RunErr(fn); err != nil {
		panic(err)
	}
}

// RunErr is Run returning the structured abort instead of panicking:
// nil on clean completion, else the *WorldError. Drivers that want a
// diagnosable exit (the chaos harness, long simulations) use this.
func (w *World) RunErr(fn func(*Comm)) *WorldError {
	var wg sync.WaitGroup
	for r := 0; r < w.size; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			defer func() {
				p := recover()
				if p == nil {
					return
				}
				if _, secondary := p.(abortUnwind); secondary {
					// This rank unwound because some other rank
					// failed first; nothing new to report.
					return
				}
				w.Abort(rank, causeOf(p))
			}()
			fn(w.Comm(rank))
		}(r)
	}
	wg.Wait()
	if w.wd != nil {
		w.wd.Stop()
	}
	w.abortMu.Lock()
	err := w.abortErr
	w.abortMu.Unlock()
	return err
}
