// Stall watchdog: turns a silent hang into a diagnosable report. The
// abort path (abort.go) contains failures that announce themselves;
// the watchdog catches the ones that don't -- a protocol mismatch
// where every rank waits on a message nobody will send, an injected
// stall, a lost wakeup. It samples the world's progress counter
// (bumped on every message delivery, phase change, and request-round
// note); after a configurable quiet period with no movement it dumps
// the per-rank state table plus all goroutine stacks (diag.Stacks),
// marks every rank's trace timeline, and aborts the world, so the run
// ends in a structured *WorldError instead of hanging forever.

package msg

import (
	"fmt"
	"io"
	"log/slog"
	"os"
	"sync"
	"time"

	"repro/internal/diag"
)

// StallError is the abort cause of a watchdog-declared stall.
type StallError struct {
	// Quiet is how long the world made no progress.
	Quiet time.Duration
}

func (e *StallError) Error() string {
	return fmt.Sprintf("msg: no progress for %v (stalled)", e.Quiet)
}

// WatchdogConfig controls the stall monitor.
type WatchdogConfig struct {
	// Quiet is the no-progress period after which the world is
	// declared stalled and aborted. Must exceed the run's longest
	// communication-free compute stretch.
	Quiet time.Duration
	// Poll is the sampling interval (0 = Quiet/4).
	Poll time.Duration
	// Out receives the stall dump (nil = os.Stderr). Ignored when Log
	// is set.
	Out io.Writer
	// Log, when non-nil, receives the dump as structured records
	// instead of Out: one error record for the stall, one per-rank
	// record with rank/phase/seq/round/blocked attributes, and the
	// stacks as an attribute. When nil, a JSON handler is built on Out,
	// so the dump is machine-parseable either way and interleaves with
	// the drivers' shared slog stream.
	Log *slog.Logger
	// Stacks includes every goroutine's stack in the dump.
	Stacks bool
}

// Watchdog is a running stall monitor; see World.StartWatchdog.
type Watchdog struct {
	w    *World
	cfg  WatchdogConfig
	stop chan struct{}
	done chan struct{}
	once sync.Once
}

// StartWatchdog launches a stall monitor on this world. Call before
// Run; the monitor retires itself when the run completes (RunErr
// stops it) or when it fires. At most one watchdog per world.
func (w *World) StartWatchdog(cfg WatchdogConfig) *Watchdog {
	if cfg.Quiet <= 0 {
		panic("msg: watchdog needs a positive quiet period")
	}
	if cfg.Poll <= 0 {
		cfg.Poll = cfg.Quiet / 4
	}
	if cfg.Out == nil {
		cfg.Out = os.Stderr
	}
	if cfg.Log == nil {
		cfg.Log = slog.New(slog.NewJSONHandler(cfg.Out, nil))
	}
	if w.wd != nil {
		panic("msg: world already has a watchdog")
	}
	wd := &Watchdog{w: w, cfg: cfg, stop: make(chan struct{}), done: make(chan struct{})}
	w.wd = wd
	go wd.loop()
	return wd
}

// Stop retires the watchdog without firing. Idempotent; returns after
// the monitor goroutine has exited.
func (wd *Watchdog) Stop() {
	wd.once.Do(func() { close(wd.stop) })
	<-wd.done
}

func (wd *Watchdog) loop() {
	defer close(wd.done)
	last := wd.w.progress.Load()
	lastChange := time.Now()
	tick := time.NewTicker(wd.cfg.Poll)
	defer tick.Stop()
	for {
		select {
		case <-wd.stop:
			return
		case <-wd.w.abortCh:
			return // the world already failed for a named reason
		case <-tick.C:
			cur := wd.w.progress.Load()
			if cur != last {
				last, lastChange = cur, time.Now()
				continue
			}
			quiet := time.Since(lastChange)
			if quiet < wd.cfg.Quiet {
				continue
			}
			wd.fire(quiet)
			return
		}
	}
}

// fire dumps the diagnosis and aborts the world.
func (wd *Watchdog) fire(quiet time.Duration) {
	states := wd.w.States()
	lg := wd.cfg.Log
	lg.Error("msg watchdog: no progress, aborting world",
		"quiet", quiet.Round(time.Millisecond).String(), "ranks", len(states))
	for _, s := range states {
		blocked := "-"
		if s.Blocked {
			blocked = fmt.Sprintf("recv src=%d tag=%d", s.BlockedSrc, s.BlockedTag)
		}
		lg.Error("msg watchdog: rank state",
			"rank", s.Rank, "phase", s.Phase, "seq", s.Seq, "round", s.Round,
			"blocked", blocked)
	}
	if wd.cfg.Stacks {
		lg.Error("msg watchdog: goroutine stacks", "stacks", string(diag.Stacks()))
	}
	wd.w.trace.MarkAll("watchdog.stall")
	wd.w.Abort(RankWatchdog, &StallError{Quiet: quiet})
}
