// Stall watchdog: turns a silent hang into a diagnosable report. The
// abort path (abort.go) contains failures that announce themselves;
// the watchdog catches the ones that don't -- a protocol mismatch
// where every rank waits on a message nobody will send, an injected
// stall, a lost wakeup. It samples the world's progress counter
// (bumped on every message delivery, phase change, and request-round
// note); after a configurable quiet period with no movement it dumps
// the per-rank state table plus all goroutine stacks (diag.Stacks),
// marks every rank's trace timeline, and aborts the world, so the run
// ends in a structured *WorldError instead of hanging forever.

package msg

import (
	"fmt"
	"io"
	"os"
	"sync"
	"time"

	"repro/internal/diag"
)

// StallError is the abort cause of a watchdog-declared stall.
type StallError struct {
	// Quiet is how long the world made no progress.
	Quiet time.Duration
}

func (e *StallError) Error() string {
	return fmt.Sprintf("msg: no progress for %v (stalled)", e.Quiet)
}

// WatchdogConfig controls the stall monitor.
type WatchdogConfig struct {
	// Quiet is the no-progress period after which the world is
	// declared stalled and aborted. Must exceed the run's longest
	// communication-free compute stretch.
	Quiet time.Duration
	// Poll is the sampling interval (0 = Quiet/4).
	Poll time.Duration
	// Out receives the stall dump (nil = os.Stderr).
	Out io.Writer
	// Stacks includes every goroutine's stack in the dump.
	Stacks bool
}

// Watchdog is a running stall monitor; see World.StartWatchdog.
type Watchdog struct {
	w    *World
	cfg  WatchdogConfig
	stop chan struct{}
	done chan struct{}
	once sync.Once
}

// StartWatchdog launches a stall monitor on this world. Call before
// Run; the monitor retires itself when the run completes (RunErr
// stops it) or when it fires. At most one watchdog per world.
func (w *World) StartWatchdog(cfg WatchdogConfig) *Watchdog {
	if cfg.Quiet <= 0 {
		panic("msg: watchdog needs a positive quiet period")
	}
	if cfg.Poll <= 0 {
		cfg.Poll = cfg.Quiet / 4
	}
	if cfg.Out == nil {
		cfg.Out = os.Stderr
	}
	if w.wd != nil {
		panic("msg: world already has a watchdog")
	}
	wd := &Watchdog{w: w, cfg: cfg, stop: make(chan struct{}), done: make(chan struct{})}
	w.wd = wd
	go wd.loop()
	return wd
}

// Stop retires the watchdog without firing. Idempotent; returns after
// the monitor goroutine has exited.
func (wd *Watchdog) Stop() {
	wd.once.Do(func() { close(wd.stop) })
	<-wd.done
}

func (wd *Watchdog) loop() {
	defer close(wd.done)
	last := wd.w.progress.Load()
	lastChange := time.Now()
	tick := time.NewTicker(wd.cfg.Poll)
	defer tick.Stop()
	for {
		select {
		case <-wd.stop:
			return
		case <-wd.w.abortCh:
			return // the world already failed for a named reason
		case <-tick.C:
			cur := wd.w.progress.Load()
			if cur != last {
				last, lastChange = cur, time.Now()
				continue
			}
			quiet := time.Since(lastChange)
			if quiet < wd.cfg.Quiet {
				continue
			}
			wd.fire(quiet)
			return
		}
	}
}

// fire dumps the diagnosis and aborts the world.
func (wd *Watchdog) fire(quiet time.Duration) {
	states := wd.w.States()
	out := wd.cfg.Out
	fmt.Fprintf(out, "msg watchdog: no progress for %v; per-rank state:\n", quiet.Round(time.Millisecond))
	for _, s := range states {
		fmt.Fprintf(out, "  %s\n", s)
	}
	if wd.cfg.Stacks {
		fmt.Fprintf(out, "goroutine stacks:\n")
		out.Write(diag.Stacks())
	}
	wd.w.trace.MarkAll("watchdog.stall")
	wd.w.Abort(RankWatchdog, &StallError{Quiet: quiet})
}
