package msg

// Collectives are free generic functions (Go methods cannot be
// generic). All ranks must call the same collectives in the same
// order; reduction operators are applied in rank order so results are
// deterministic regardless of scheduling.

// Bcast distributes root's value to every rank via a binomial tree
// (log2 P message rounds, as a real MPI would).
func Bcast[T any](c *Comm, root int, x T, bytes int) T {
	tag := c.nextTag(opBcast)
	p := c.Size()
	// Work in a coordinate system where root is rank 0.
	vr := (c.Rank() - root + p) % p
	if vr != 0 {
		// Receive from the parent in the binomial tree: clear the
		// lowest set bit of the virtual rank.
		parent := (vr&(vr-1) + root) % p
		m := c.Recv(parent, tag)
		x = m.Data.(T)
	}
	// Forward to children: set each bit above the lowest set bit
	// while the result stays < p.
	low := vr & (-vr)
	if vr == 0 {
		low = 1 << 30
	}
	for bit := 1; bit < low && vr+bit < p; bit <<= 1 {
		c.send((vr+bit+root)%p, tag, x, bytes)
	}
	return x
}

// Reduce combines every rank's x with op (applied in rank order) and
// returns the result on root; other ranks receive the zero value.
func Reduce[T any](c *Comm, root int, x T, op func(a, b T) T, bytes int) T {
	tag := c.nextTag(opReduce)
	if c.Rank() != root {
		c.send(root, tag, x, bytes)
		var zero T
		return zero
	}
	// Apply in rank order for determinism.
	var acc T
	first := true
	for r := 0; r < c.Size(); r++ {
		var v T
		if r == root {
			v = x
		} else {
			v = c.Recv(r, tag).Data.(T)
		}
		if first {
			acc = v
			first = false
		} else {
			acc = op(acc, v)
		}
	}
	return acc
}

// Allreduce is Reduce followed by Bcast.
func Allreduce[T any](c *Comm, x T, op func(a, b T) T, bytes int) T {
	v := Reduce(c, 0, x, op, bytes)
	return Bcast(c, 0, v, bytes)
}

// Gather collects every rank's value at root, indexed by rank; other
// ranks receive nil.
func Gather[T any](c *Comm, root int, x T, bytes int) []T {
	tag := c.nextTag(opGather)
	if c.Rank() != root {
		c.send(root, tag, x, bytes)
		return nil
	}
	out := make([]T, c.Size())
	for r := 0; r < c.Size(); r++ {
		if r == root {
			out[r] = x
		} else {
			out[r] = c.Recv(r, tag).Data.(T)
		}
	}
	return out
}

// Allgather collects every rank's value on all ranks.
func Allgather[T any](c *Comm, x T, bytes int) []T {
	v := Gather(c, 0, x, bytes)
	return Bcast(c, 0, v, bytes*c.Size())
}

// ExScan returns the exclusive prefix reduction over ranks: rank r
// gets op(x_0, ..., x_{r-1}); rank 0 gets the zero value. Used by the
// decomposition to compute global body offsets.
func ExScan[T any](c *Comm, x T, op func(a, b T) T, bytes int) T {
	tag := c.nextTag(opScan)
	// Linear chain: rank r-1 sends its inclusive prefix to r.
	var prefix T
	have := false
	if c.Rank() > 0 {
		m := c.Recv(c.Rank()-1, tag)
		prefix = m.Data.(T)
		have = true
	}
	if c.Rank() < c.Size()-1 {
		inc := x
		if have {
			inc = op(prefix, x)
		}
		c.send(c.Rank()+1, tag, inc, bytes)
	}
	return prefix
}

// Alltoallv sends send[d] to rank d and returns what every rank sent
// here, indexed by source. bytesPer is the logical wire size of one T.
// The received slices alias the senders' slices (in-process handoff);
// receivers treat them as read-only.
func Alltoallv[T any](c *Comm, send [][]T, bytesPer int) [][]T {
	return AlltoallvInto(c, send, nil, bytesPer)
}

// AlltoallvInto is Alltoallv reusing recv as the result's outer slice
// when its capacity allows (every element is overwritten), so
// steady-state exchanges -- the ABM round loop -- allocate nothing.
// Pass nil to allocate fresh.
func AlltoallvInto[T any](c *Comm, send, recv [][]T, bytesPer int) [][]T {
	if len(send) != c.Size() {
		panic("msg: Alltoallv needs one send slice per rank")
	}
	tag := c.nextTag(opAlltoall)
	for d := 0; d < c.Size(); d++ {
		if d == c.Rank() {
			continue
		}
		c.send(d, tag, send[d], bytesPer*len(send[d]))
	}
	if cap(recv) < c.Size() {
		recv = make([][]T, c.Size())
	}
	recv = recv[:c.Size()]
	recv[c.Rank()] = send[c.Rank()]
	for s := 0; s < c.Size(); s++ {
		if s == c.Rank() {
			continue
		}
		recv[s] = c.Recv(s, tag).Data.([]T)
	}
	return recv
}

// AlltoallvSizedFunc is AlltoallvSizedInto that additionally invokes
// onBatch(src, batch) as each source's batch lands (the local batch
// at its own position in source order), so the caller can process
// early arrivals while later sources are still in flight -- the
// incremental-delivery hook the pipelined tree walk imports cells
// through. onBatch runs on the calling goroutine and must not
// communicate.
func AlltoallvSizedFunc[T any](c *Comm, send, recv [][]T, bytesOf func(T) int, onBatch func(src int, batch []T)) [][]T {
	if len(send) != c.Size() {
		panic("msg: Alltoallv needs one send slice per rank")
	}
	tag := c.nextTag(opAlltoall)
	for d := 0; d < c.Size(); d++ {
		if d == c.Rank() {
			continue
		}
		n := 0
		for i := range send[d] {
			n += bytesOf(send[d][i])
		}
		c.send(d, tag, send[d], n)
	}
	if cap(recv) < c.Size() {
		recv = make([][]T, c.Size())
	}
	recv = recv[:c.Size()]
	for s := 0; s < c.Size(); s++ {
		if s == c.Rank() {
			recv[s] = send[s]
		} else {
			recv[s] = c.Recv(s, tag).Data.([]T)
		}
		onBatch(s, recv[s])
	}
	return recv
}

// AlltoallvSizedInto is AlltoallvInto for element types whose wire
// size varies per value (e.g. cell replies carrying a piggybacked
// prefetch subtree): bytesOf gives the logical wire size of one T, and
// each batch is accounted as the sum over its elements. The fixed-size
// exchanges keep the cheaper bytesPer path.
func AlltoallvSizedInto[T any](c *Comm, send, recv [][]T, bytesOf func(T) int) [][]T {
	if len(send) != c.Size() {
		panic("msg: Alltoallv needs one send slice per rank")
	}
	tag := c.nextTag(opAlltoall)
	for d := 0; d < c.Size(); d++ {
		if d == c.Rank() {
			continue
		}
		n := 0
		for i := range send[d] {
			n += bytesOf(send[d][i])
		}
		c.send(d, tag, send[d], n)
	}
	if cap(recv) < c.Size() {
		recv = make([][]T, c.Size())
	}
	recv = recv[:c.Size()]
	recv[c.Rank()] = send[c.Rank()]
	for s := 0; s < c.Size(); s++ {
		if s == c.Rank() {
			continue
		}
		recv[s] = c.Recv(s, tag).Data.([]T)
	}
	return recv
}

// Common reduction operators.
func SumF64(a, b float64) float64 { return a + b }
func SumI64(a, b int64) int64     { return a + b }
func SumU64(a, b uint64) uint64   { return a + b }
func MaxF64(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
func MinF64(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}
func MaxI(a, b int) int {
	if a > b {
		return a
	}
	return b
}
func SumI(a, b int) int { return a + b }
