package msg

import (
	"testing"

	"repro/internal/trace"
)

// Recv(AnySource, AnyTag) must still honor per-(source, tag) FIFO:
// a wildcard drains streams in arrival order, but within any one
// stream values arrive in posting order.
func TestWildcardRecvStreamFIFO(t *testing.T) {
	const n = 50
	perStream := make(map[[2]int][]int)
	Run(3, func(c *Comm) {
		switch c.Rank() {
		case 1:
			for i := 0; i < n; i++ {
				c.Send(0, 10, i, 4)
				c.Send(0, 11, 1000+i, 4)
			}
		case 2:
			for i := 0; i < n; i++ {
				c.Send(0, 10, 2000+i, 4)
			}
		case 0:
			for i := 0; i < 3*n; i++ {
				m := c.Recv(AnySource, AnyTag)
				key := [2]int{m.Src, m.Tag}
				perStream[key] = append(perStream[key], m.Data.(int))
			}
		}
	})
	if len(perStream) != 3 {
		t.Fatalf("got %d streams, want 3", len(perStream))
	}
	for key, vals := range perStream {
		if len(vals) != n {
			t.Fatalf("stream %v delivered %d messages, want %d", key, len(vals), n)
		}
		for i := 1; i < len(vals); i++ {
			if vals[i] <= vals[i-1] {
				t.Fatalf("stream %v violated FIFO at %d: %v", key, i, vals)
			}
		}
	}
}

// A wildcard source with a fixed tag selects only that tag while
// preserving the per-source order.
func TestWildcardSourceFixedTag(t *testing.T) {
	got := make([]Message, 0, 4)
	Run(3, func(c *Comm) {
		switch c.Rank() {
		case 1:
			c.Send(0, 5, "a1", 2)
			c.Send(0, 6, "b1", 2)
			c.Send(0, 5, "a2", 2)
		case 2:
			c.Send(0, 5, "c1", 2)
		case 0:
			for i := 0; i < 3; i++ {
				got = append(got, c.Recv(AnySource, 5))
			}
			// The tag-6 message must still be there, untouched.
			got = append(got, c.Recv(1, 6))
		}
	})
	for _, m := range got[:3] {
		if m.Tag != 5 {
			t.Fatalf("wildcard-source recv returned tag %d, want 5", m.Tag)
		}
	}
	var from1 []string
	for _, m := range got[:3] {
		if m.Src == 1 {
			from1 = append(from1, m.Data.(string))
		}
	}
	if len(from1) != 2 || from1[0] != "a1" || from1[1] != "a2" {
		t.Fatalf("source-1 tag-5 order = %v, want [a1 a2]", from1)
	}
	if got[3].Data.(string) != "b1" {
		t.Fatalf("tag-6 message = %v, want b1", got[3].Data)
	}
}

// TryRecv must account exactly like Recv: a hit emits one trace recv
// event with the same peer/bytes a blocking Recv would, a miss emits
// nothing, and sender-side traffic is identical either way.
func TestTryRecvAccountingParity(t *testing.T) {
	recvEvents := func(poll bool) ([]trace.Event, PhaseTraffic) {
		w := NewWorld(2)
		tr := trace.NewRun(2)
		w.SetTrace(tr)
		w.Run(func(c *Comm) {
			c.Phase("x")
			if c.Rank() == 0 {
				c.Send(1, 3, "payload", 64)
				return
			}
			if poll {
				for {
					if _, ok := c.TryRecv(0, 3); ok {
						break
					}
				}
			} else {
				c.Recv(0, 3)
			}
		})
		var evs []trace.Event
		for _, ev := range tr.Rank(1).Events() {
			if ev.Kind == trace.KindRecv {
				evs = append(evs, ev)
			}
		}
		return evs, w.RankTraffic(0).Total()
	}

	blocking, trafB := recvEvents(false)
	polled, trafP := recvEvents(true)
	if len(blocking) != 1 || len(polled) != 1 {
		t.Fatalf("recv event counts: blocking=%d polled=%d, want 1 each", len(blocking), len(polled))
	}
	b, p := blocking[0], polled[0]
	if b.Peer != p.Peer || b.Bytes != p.Bytes || b.Name != p.Name {
		t.Fatalf("trace mismatch: Recv=%+v TryRecv=%+v", b, p)
	}
	if trafB != trafP {
		t.Fatalf("traffic mismatch: Recv=%+v TryRecv=%+v", trafB, trafP)
	}
}

// A missed TryRecv leaves no trace event behind.
func TestTryRecvMissEmitsNothing(t *testing.T) {
	w := NewWorld(1)
	tr := trace.NewRun(1)
	w.SetTrace(tr)
	w.Run(func(c *Comm) {
		if _, ok := c.TryRecv(0, 9); ok {
			panic("unexpected message")
		}
	})
	for _, ev := range tr.Rank(0).Events() {
		if ev.Kind == trace.KindRecv {
			t.Fatalf("miss emitted a recv event: %+v", ev)
		}
	}
}
