package msg

import (
	"errors"
	"testing"
	"time"
)

// chaosRun executes one crash-injected run and reports its outcome.
// Only rank 2 ever enters the "walk" phase, so with CrashPhase="walk"
// the failing rank is pinned and the crash point depends only on the
// seeded draw sequence.
func chaosRun(seed uint64) (*WorldError, InjectorStats) {
	w := NewWorld(4)
	inj := &Injector{Seed: seed, CrashProb: 0.05, CrashPhase: "walk"}
	w.SetInjector(inj)
	err := w.RunErr(func(c *Comm) {
		c.Phase("build")
		for i := 0; i < 40; i++ {
			c.Barrier()
		}
		if c.Rank() == 2 {
			c.Phase("walk")
		}
		for i := 0; i < 200; i++ {
			c.Barrier()
		}
	})
	return err, inj.Stats()
}

// Same seed, same config => same crash: same rank, same phase, and
// the same number of completed collectives on the crashed rank. This
// is the property that makes a chaos failure replayable.
func TestInjectorCrashDeterministic(t *testing.T) {
	runWithDeadline(t, 20*time.Second, func() {
		err1, st1 := chaosRun(42)
		err2, st2 := chaosRun(42)
		if err1 == nil || err2 == nil {
			t.Fatalf("expected both runs to crash: %v / %v", err1, err2)
		}
		var c1, c2 *InjectedCrash
		if !errors.As(err1, &c1) || !errors.As(err2, &c2) {
			t.Fatalf("causes are %v / %v, want *InjectedCrash", err1.Cause, err2.Cause)
		}
		if *c1 != *c2 {
			t.Fatalf("crash schedule diverged: %+v vs %+v", c1, c2)
		}
		if c1.Rank != 2 || c1.Phase != "walk" {
			t.Fatalf("crash = %+v, want rank 2 in walk", c1)
		}
		if s1, s2 := err1.Ranks[2].Seq, err2.Ranks[2].Seq; s1 != s2 {
			t.Fatalf("crash point diverged: seq %d vs %d", s1, s2)
		}
		if st1 != st2 {
			t.Fatalf("stats diverged: %+v vs %+v", st1, st2)
		}
		if st1.Crashes != 1 {
			t.Fatalf("crashes = %d, want 1", st1.Crashes)
		}
	})
}

// Different seeds should crash at different points; verify the seed
// actually feeds the schedule (three seeds, so a chance collision of
// one pair cannot fail the test).
func TestInjectorSeedChangesSchedule(t *testing.T) {
	runWithDeadline(t, 30*time.Second, func() {
		seqs := make(map[int]bool)
		for _, seed := range []uint64{1, 7, 13} {
			err, _ := chaosRun(seed)
			if err == nil {
				t.Skipf("seed %d produced no crash in this window", seed)
			}
			seqs[err.Ranks[2].Seq] = true
		}
		if len(seqs) == 1 {
			t.Fatal("three seeds all crashed at the same collective seq (seed ignored?)")
		}
	})
}

// Latency-only injection perturbs timing but not results: the run
// completes cleanly and the collectives still compute the right
// values.
func TestInjectorLatencyHarmless(t *testing.T) {
	runWithDeadline(t, 30*time.Second, func() {
		w := NewWorld(4)
		inj := &Injector{Seed: 3, LatencyProb: 0.5, MaxLatency: 50 * time.Microsecond}
		w.SetInjector(inj)
		err := w.RunErr(func(c *Comm) {
			for i := 0; i < 25; i++ {
				if got := Allreduce(c, c.Rank()+i, SumI, 4); got != 6+4*i {
					panic("allreduce result corrupted")
				}
			}
		})
		if err != nil {
			t.Fatalf("latency-only run aborted: %v", err)
		}
		if st := inj.Stats(); st.Delays == 0 {
			t.Fatal("no delays injected at LatencyProb=0.5")
		}
	})
}

// Injected reorder is bounded: with every send reordered and the
// receiver draining only after all messages queue up, no message may
// land more than one slot from its FIFO position.
func TestInjectorReorderBounded(t *testing.T) {
	const n = 100
	runWithDeadline(t, 10*time.Second, func() {
		w := NewWorld(2)
		inj := &Injector{Seed: 5, ReorderProb: 1}
		w.SetInjector(inj)
		var order []int
		err := w.RunErr(func(c *Comm) {
			if c.Rank() == 0 {
				for i := 0; i < n; i++ {
					c.Send(1, 7, i, 4)
				}
				c.Send(1, 8, nil, 0) // "all queued" marker
				return
			}
			c.Recv(0, 8) // tag-8 marker arrives last: the tag-7 burst is fully queued
			for i := 0; i < n; i++ {
				order = append(order, c.Recv(0, 7).Data.(int))
			}
		})
		if err != nil {
			t.Fatalf("reorder run aborted: %v", err)
		}
		seen := make(map[int]bool, n)
		moved := 0
		for pos, v := range order {
			if seen[v] {
				t.Fatalf("value %d delivered twice", v)
			}
			seen[v] = true
			if d := pos - v; d < -1 || d > 1 {
				t.Fatalf("message %d displaced %d slots (pos %d)", v, d, pos)
			} else if d != 0 {
				moved++
			}
		}
		if len(seen) != n {
			t.Fatalf("lost messages: got %d of %d", len(seen), n)
		}
		if moved == 0 {
			t.Fatal("ReorderProb=1 but every message arrived in FIFO order")
		}
		if st := inj.Stats(); st.Reorders == 0 {
			t.Fatal("stats recorded no reorders")
		}
	})
}

// An injected stall is watchdog bait: the stalled rank goes quiet,
// the watchdog declares the stall, and the stalled rank's 30s park is
// cut short by the abort (the whole test runs in well under a
// second).
func TestInjectorStallTripsWatchdog(t *testing.T) {
	runWithDeadline(t, 10*time.Second, func() {
		w := NewWorld(2)
		inj := &Injector{Seed: 11, StallProb: 1, StallDur: 30 * time.Second}
		w.SetInjector(inj)
		w.StartWatchdog(WatchdogConfig{Quiet: 150 * time.Millisecond, Out: &syncBuffer{}})
		start := time.Now()
		err := w.RunErr(func(c *Comm) {
			for i := 0; i < 100; i++ {
				c.Barrier()
			}
		})
		if err == nil {
			t.Fatal("expected the watchdog to abort the stalled world")
		}
		var stall *StallError
		if !errors.As(err, &stall) {
			t.Fatalf("cause is %v, want *StallError", err.Cause)
		}
		if elapsed := time.Since(start); elapsed > 5*time.Second {
			t.Fatalf("abort took %v; the injected 30s stall was not cut short", elapsed)
		}
		if st := inj.Stats(); st.Stalls != 1 {
			t.Fatalf("stalls = %d, want 1", st.Stalls)
		}
	})
}
