// Package integrate provides the time integrators used by the serial
// simulation drivers: the kick-drift-kick leapfrog (the standard
// N-body integrator, symplectic for fixed steps) and its comoving
// variant for cosmological runs (see internal/cosmo for the expansion
// factors).
package integrate

import (
	"repro/internal/core"
	"repro/internal/vec"
)

// Forces computes accelerations (and potentials) for the system; the
// serial tree driver and the direct solver both satisfy it.
type Forces func(sys *core.System)

// Leapfrog advances the system by n kick-drift-kick steps of size dt.
// The system's Acc must be current on entry (call forces once first);
// it is current again on exit.
func Leapfrog(sys *core.System, forces Forces, dt float64, n int) {
	for s := 0; s < n; s++ {
		KickDriftKick(sys, forces, dt)
	}
}

// KickDriftKick advances one leapfrog step.
func KickDriftKick(sys *core.System, forces Forces, dt float64) {
	Kick(sys, dt/2)
	Drift(sys, dt)
	forces(sys)
	Kick(sys, dt/2)
}

// Kick advances velocities by dt with the current accelerations.
func Kick(sys *core.System, dt float64) {
	for i := range sys.Vel {
		sys.Vel[i] = sys.Vel[i].Add(sys.Acc[i].Scale(dt))
	}
}

// Drift advances positions by dt with the current velocities.
func Drift(sys *core.System, dt float64) {
	for i := range sys.Pos {
		sys.Pos[i] = sys.Pos[i].Add(sys.Vel[i].Scale(dt))
	}
}

// Energy returns kinetic, potential and total energy (Pot must be
// current).
func Energy(sys *core.System) (kin, pot, total float64) {
	kin = sys.KineticEnergy()
	pot = sys.PotentialEnergy()
	return kin, pot, kin + pot
}

// AngularMomentum returns the total angular momentum about the origin.
func AngularMomentum(sys *core.System) vec.V3 {
	var l vec.V3
	for i := range sys.Vel {
		l = l.Add(sys.Pos[i].Cross(sys.Vel[i]).Scale(sys.Mass[i]))
	}
	return l
}
