// Package integrate is the one time-integration core every driver and
// engine steps through: the kick-drift-kick leapfrog (the standard
// N-body integrator, symplectic for fixed steps), its hierarchical
// block-timestep generalization (per-body power-of-two sub-steps
// chosen from an acceleration criterion, see Stepper), and the shared
// kick/drift loops. Serial drivers adapt via Forces/FuncBodies; the
// distributed gravity and SPH engines adapt via the Bodies interface.
// The comoving variant for cosmological runs lives in internal/cosmo.
package integrate

import (
	"repro/internal/core"
	"repro/internal/vec"
)

// Forces computes accelerations (and potentials) for the system; the
// serial tree driver and the direct solver both satisfy it.
type Forces func(sys *core.System)

// Leapfrog advances the system by n uniform kick-drift-kick steps of
// size dt through the stepper core.
//
// Contract: the system's Acc must be current on entry (call forces
// once first); it is current again on exit, and forces runs exactly
// once per step -- the step sequence is Kick(dt/2), Drift(dt),
// forces, Kick(dt/2), nothing more.
func Leapfrog(sys *core.System, forces Forces, dt float64, n int) {
	st := Stepper{B: &FuncBodies{
		System: sys,
		Force:  func(s *core.System, _ int) { forces(s) },
	}}
	for s := 0; s < n; s++ {
		st.Step(dt)
	}
}

// KickDriftKick advances one uniform leapfrog step (the one-rung case
// of the stepper core; same Acc-current entry/exit contract as
// Leapfrog).
func KickDriftKick(sys *core.System, forces Forces, dt float64) {
	Leapfrog(sys, forces, dt, 1)
}

// Kick advances velocities by dt with the current accelerations.
func Kick(sys *core.System, dt float64) {
	for i := range sys.Vel {
		sys.Vel[i] = sys.Vel[i].Add(sys.Acc[i].Scale(dt))
	}
}

// Drift advances positions by dt with the current velocities.
func Drift(sys *core.System, dt float64) {
	for i := range sys.Pos {
		sys.Pos[i] = sys.Pos[i].Add(sys.Vel[i].Scale(dt))
	}
}

// Energy returns kinetic, potential and total energy (Pot must be
// current).
func Energy(sys *core.System) (kin, pot, total float64) {
	kin = sys.KineticEnergy()
	pot = sys.PotentialEnergy()
	return kin, pot, kin + pot
}

// AngularMomentum returns the total angular momentum about the origin.
func AngularMomentum(sys *core.System) vec.V3 {
	var l vec.V3
	for i := range sys.Vel {
		l = l.Add(sys.Pos[i].Cross(sys.Vel[i]).Scale(sys.Mass[i]))
	}
	return l
}
