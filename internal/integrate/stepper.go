package integrate

import (
	"math"
	"math/bits"

	"repro/internal/core"
)

// Bodies is the stepper's view of one rank's particle system: the
// kick and drift loops live here in the integrate core, so an
// implementation supplies only what differs per engine -- how forces
// are computed and how rungs synchronize across ranks. The serial
// tree driver, the distributed gravity engine and the distributed SPH
// engine all adapt to it.
type Bodies interface {
	// Sys returns the current local system. Forces may replace it
	// (the distributed engines redistribute bodies), so the stepper
	// re-fetches it after every evaluation.
	Sys() *core.System
	// Forces computes accelerations (and potentials) for every body
	// whose Rung is at least minRung. minRung <= 0 requests a full
	// synchronization evaluation: every body, fresh decomposition.
	// minRung > 0 is a partial evaluation: only the listed rungs need
	// new accelerations, and distributed implementations may take the
	// incremental decomposition fast path. Either way the evaluation
	// is collective -- every rank calls Forces at every sub-step, even
	// with an empty local active set.
	Forces(minRung int)
	// MaxRung folds a proposed local maximum rung into the global
	// maximum (an allreduce in the distributed engines, the identity
	// serially), so every rank runs the same sub-step schedule.
	MaxRung(local int) int
}

// Scheme selects the time-stepping mode.
type Scheme int

const (
	// Uniform advances every body with the same step: one force
	// evaluation per step, the classic kick-drift-kick leapfrog. This
	// is the one-rung degenerate case of the block scheduler, kept as
	// its own code path so the operation sequence is bitwise the
	// historical one.
	Uniform Scheme = iota
	// Block assigns each body a power-of-two sub-step of the global
	// step from the acceleration criterion dt_i = Eta*sqrt(Eps/|a_i|)
	// and evaluates forces only for the bodies whose sub-step ends at
	// each sub-step boundary (Valdarnini 2002's hierarchical block
	// timesteps): clustered systems concentrate activity in a tiny
	// core, so most evaluations touch a small active set.
	Block
)

// DefaultMaxRung caps the rung hierarchy at 2^6 = 64 sub-steps per
// global step.
const DefaultMaxRung = 6

// Stats accumulates what the scheduler did, the numerator and
// denominator of the active-fraction accounting in RunReport.
type Stats struct {
	// BigSteps counts Step calls; SubSteps the sub-step force
	// evaluations inside them (equal for Uniform).
	BigSteps uint64
	SubSteps uint64
	// FullEvals are synchronization evaluations (every body);
	// PartialEvals evaluated an active subset.
	FullEvals    uint64
	PartialEvals uint64
	// ActiveSinks counts the bodies the scheduler marked active across
	// all evaluations; TotalSinks counts every body at every
	// evaluation. ActiveSinks/TotalSinks is the active fraction; its
	// inverse is the force-evaluation saving over uniform stepping at
	// the finest occupied rung.
	ActiveSinks uint64
	TotalSinks  uint64
	// Occupancy[r] accumulates how many bodies were assigned rung r at
	// the synchronization points (uniform stepping charges everything
	// to rung 0).
	Occupancy []uint64
}

// occupy grows the occupancy histogram to hold rung r and bumps it.
func (st *Stats) occupy(r, n int) {
	for len(st.Occupancy) <= r {
		st.Occupancy = append(st.Occupancy, 0)
	}
	st.Occupancy[r] += uint64(n)
}

// Stepper advances a Bodies through global steps of size dt with
// either uniform or hierarchical block timesteps.
//
// Invariant (entry and exit of Step): every body's Acc is current for
// its position -- evaluate forces once before the first Step -- and
// all bodies are synchronized at the same time. Block sub-steps
// desynchronize bodies inside a Step; the final sub-step is always a
// full synchronization evaluation, which restores the invariant and
// is where energies and snapshots are meaningful.
type Stepper struct {
	B      Bodies
	Scheme Scheme
	// Eta scales the acceleration criterion dt_i = Eta*sqrt(Eps/|a_i|)
	// (Block only). Typical 0.01-0.05 for unit-scale problems.
	Eta float64
	// Eps is the softening length in the criterion (Block only).
	Eps float64
	// MaxRung caps the hierarchy depth; 0 means DefaultMaxRung.
	MaxRung int
	// Stats accumulates scheduler accounting across Steps.
	Stats Stats
}

// Step advances one global step of size dt. See the Stepper invariant
// for the entry/exit contract.
func (st *Stepper) Step(dt float64) {
	st.Stats.BigSteps++
	if st.Scheme == Uniform {
		// The historical kick-drift-kick sequence, bit for bit.
		sys := st.B.Sys()
		n := sys.Len()
		Kick(sys, dt/2)
		Drift(sys, dt)
		st.Stats.SubSteps++
		st.Stats.FullEvals++
		st.Stats.ActiveSinks += uint64(n)
		st.Stats.TotalSinks += uint64(n)
		st.Stats.occupy(0, n)
		st.B.Forces(0)
		Kick(st.B.Sys(), dt/2)
		return
	}

	sys := st.B.Sys()
	r := st.B.MaxRung(st.assignRungs(sys, dt))
	nsub := 1 << uint(r)
	h := dt / float64(nsub)

	// Opening half-kicks: every body starts a sub-step here, each by
	// half of its own step dt/2^rung.
	KickRungs(sys, 0, dt)
	for s := 1; s <= nsub; s++ {
		// Prediction: every body drifts at the finest granularity, so
		// inactive bodies are exact sources (positions are first-order
		// in the KDK split regardless of rung).
		Drift(sys, h)
		minRung := r - bits.TrailingZeros(uint(s))
		st.Stats.SubSteps++
		if minRung <= 0 {
			st.Stats.FullEvals++
		} else {
			st.Stats.PartialEvals++
		}
		st.Stats.ActiveSinks += countActive(sys, minRung)
		st.Stats.TotalSinks += uint64(sys.Len())
		st.B.Forces(minRung)
		sys = st.B.Sys()
		// Closing half-kicks for the bodies whose step just ended;
		// when the global step continues they immediately open their
		// next one.
		KickRungs(sys, minRung, dt)
		if s < nsub {
			KickRungs(sys, minRung, dt)
		}
	}
}

// assignRungs chooses each body's rung from the acceleration
// criterion and returns the local maximum. Rungs are recomputed at
// every synchronization point (Step entry), where every body's Acc is
// current.
func (st *Stepper) assignRungs(sys *core.System, dt float64) int {
	sys.EnableRungs()
	maxRung := st.MaxRung
	if maxRung <= 0 {
		maxRung = DefaultMaxRung
	}
	eta, eps := st.Eta, st.Eps
	localMax := 0
	for i := range sys.Rung {
		r := 0
		if eta > 0 && eps > 0 {
			if a := sys.Acc[i].Norm(); a > 0 {
				dti := eta * math.Sqrt(eps/a)
				for step := dt; step > dti && r < maxRung; r++ {
					step *= 0.5
				}
			}
		}
		sys.Rung[i] = uint8(r)
		st.Stats.occupy(r, 1)
		if r > localMax {
			localMax = r
		}
	}
	return localMax
}

// CountRungs tallies the system's current rung occupancy into out
// (rungs past len(out) are clamped into the last bin). Unlike
// Stats.Occupancy, which accumulates over the whole run, this is the
// instantaneous distribution -- what the live telemetry sampler
// reports per step. A nil Rung column is all rung zero.
func CountRungs(sys *core.System, out []uint64) {
	if len(out) == 0 {
		return
	}
	if sys.Rung == nil {
		out[0] += uint64(sys.Len())
		return
	}
	for _, r := range sys.Rung {
		i := int(r)
		if i >= len(out) {
			i = len(out) - 1
		}
		out[i]++
	}
}

// countActive returns how many bodies are active at minRung.
func countActive(sys *core.System, minRung int) uint64 {
	if minRung <= 0 || sys.Rung == nil {
		return uint64(sys.Len())
	}
	var n uint64
	for _, r := range sys.Rung {
		if int(r) >= minRung {
			n++
		}
	}
	return n
}

// KickRungs applies the half-kick of each active body's own sub-step:
// bodies with Rung >= minRung advance their velocity by
// Acc * dt/2^(Rung+1). A nil Rung column means every body is on rung
// zero (half-kick dt/2), which makes the one-rung case bitwise
// identical to Kick(sys, dt/2).
func KickRungs(sys *core.System, minRung int, dt float64) {
	if sys.Rung == nil {
		Kick(sys, dt/2)
		return
	}
	for i := range sys.Vel {
		r := int(sys.Rung[i])
		if r < minRung {
			continue
		}
		h := dt / float64(uint64(2)<<uint(r))
		sys.Vel[i] = sys.Vel[i].Add(sys.Acc[i].Scale(h))
	}
}

// FuncBodies adapts a *core.System plus a force callback to the
// Bodies interface for serial drivers: the system is never replaced
// and rungs need no synchronization.
type FuncBodies struct {
	System *core.System
	// Force computes accelerations for bodies with Rung >= minRung
	// (minRung <= 0: all). Serial uniform drivers may ignore minRung.
	Force func(sys *core.System, minRung int)
}

func (b *FuncBodies) Sys() *core.System     { return b.System }
func (b *FuncBodies) Forces(minRung int)    { b.Force(b.System, minRung) }
func (b *FuncBodies) MaxRung(local int) int { return local }
