package integrate

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/ic"
	"repro/internal/vec"
)

// countingBodies wraps FuncBodies and counts Forces calls.
type countingBodies struct {
	FuncBodies
	calls int
}

func (b *countingBodies) Forces(minRung int) {
	b.calls++
	b.FuncBodies.Forces(minRung)
}

// Guard: a uniform step is Kick(dt/2), Drift(dt), one force
// evaluation, Kick(dt/2) -- nothing more. A second evaluation per step
// would silently double the cost of every driver.
func TestUniformStepEvaluatesForcesOnce(t *testing.T) {
	sys := ic.Plummer(60, 1, 9)
	f := directForces(1e-4)
	f(sys)
	b := &countingBodies{FuncBodies: FuncBodies{
		System: sys,
		Force:  func(s *core.System, _ int) { f(s) },
	}}
	st := Stepper{B: b}
	const steps = 7
	for i := 0; i < steps; i++ {
		st.Step(1e-3)
	}
	if b.calls != steps {
		t.Fatalf("forces evaluated %d times over %d uniform steps, want exactly one per step", b.calls, steps)
	}
	if st.Stats.BigSteps != steps || st.Stats.SubSteps != steps || st.Stats.FullEvals != steps || st.Stats.PartialEvals != 0 {
		t.Fatalf("uniform stats: %+v", st.Stats)
	}
	// Leapfrog drives the same core; its call count must match too.
	sys2 := ic.Plummer(60, 1, 9)
	calls := 0
	f(sys2)
	Leapfrog(sys2, func(s *core.System) { calls++; f(s) }, 1e-3, steps)
	if calls != steps {
		t.Fatalf("Leapfrog evaluated forces %d times over %d steps", calls, steps)
	}
}

// KickRungs with no rung column (or every body on rung zero) must be
// bit for bit the historical half-kick.
func TestKickRungsDegeneratesToHalfKick(t *testing.T) {
	mk := func() *core.System {
		sys := ic.Plummer(40, 1, 11)
		directForces(1e-4)(sys)
		return sys
	}
	a, b, c := mk(), mk(), mk()
	const dt = 7e-4 // not a power of two: exercises the rounding
	Kick(a, dt/2)
	KickRungs(b, 0, dt) // nil Rung column
	c.EnableRungs()
	KickRungs(c, 0, dt) // explicit rung-zero column
	for i := range a.Vel {
		if a.Vel[i] != b.Vel[i] || a.Vel[i] != c.Vel[i] {
			t.Fatalf("body %d: Kick %v, KickRungs(nil) %v, KickRungs(r0) %v", i, a.Vel[i], b.Vel[i], c.Vel[i])
		}
	}
}

// The block scheduler with every body on rung zero runs exactly one
// full evaluation per step and must reproduce the uniform leapfrog
// bit for bit -- the degenerate case the refactor hinges on.
func TestBlockOneRungBitwiseUniform(t *testing.T) {
	const n, steps, dt = 150, 10, 1e-3
	f := directForces(1e-4)
	mk := func() (*core.System, *Stepper) {
		sys := ic.Plummer(n, 1, 21)
		f(sys)
		st := &Stepper{B: &FuncBodies{
			System: sys,
			Force:  func(s *core.System, _ int) { f(s) },
		}}
		return sys, st
	}
	uniSys, uni := mk()
	blkSys, blk := mk()
	blk.Scheme = Block
	// Eta large enough that dt_i = Eta*sqrt(Eps/|a|) always exceeds dt:
	// every body lands on rung zero through the real criterion.
	blk.Eta, blk.Eps = 1e6, 1.0
	for i := 0; i < steps; i++ {
		uni.Step(dt)
		blk.Step(dt)
	}
	for i := range uniSys.Pos {
		if uniSys.Pos[i] != blkSys.Pos[i] || uniSys.Vel[i] != blkSys.Vel[i] {
			t.Fatalf("body %d diverged: uniform pos %v vel %v, block pos %v vel %v",
				i, uniSys.Pos[i], uniSys.Vel[i], blkSys.Pos[i], blkSys.Vel[i])
		}
	}
	if blk.Stats.PartialEvals != 0 || blk.Stats.FullEvals != steps {
		t.Fatalf("one-rung block ran %d partial + %d full evals over %d steps", blk.Stats.PartialEvals, blk.Stats.FullEvals, steps)
	}
	if got := blk.Stats.Occupancy[0]; got != n*steps {
		t.Fatalf("rung-0 occupancy %d, want %d", got, n*steps)
	}
}

// plummerSetup builds a softened Plummer model plus a stepper; eta = 0
// leaves the stepper uniform.
func plummerSetup(n int, eps float64, eta float64) (*core.System, *Stepper) {
	sys := ic.Plummer(n, 1, 33)
	f := directForces(eps * eps)
	f(sys)
	st := &Stepper{B: &FuncBodies{
		System: sys,
		Force:  func(s *core.System, _ int) { f(s) },
	}}
	if eta > 0 {
		st.Scheme = Block
		st.Eta, st.Eps = eta, eps
	}
	return sys, st
}

// Energy pin on a Plummer model: hierarchical sub-steps approximate
// the per-body trajectories, so block stepping may drift more than
// uniform stepping at the same global dt -- but not by more than 2x,
// or the rung criterion (or the prediction of inactive sources) is
// broken.
func TestBlockEnergyDriftWithinTwiceUniform(t *testing.T) {
	const n, steps, dt, eps = 200, 120, 2e-2, 0.05
	drift := func(eta float64) (float64, Stats) {
		sys, st := plummerSetup(n, eps, eta)
		_, _, e0 := Energy(sys)
		for i := 0; i < steps; i++ {
			st.Step(dt)
		}
		_, _, e1 := Energy(sys)
		return math.Abs((e1 - e0) / e0), st.Stats
	}
	uniform, _ := drift(0)
	block, stats := drift(0.02)
	if stats.PartialEvals == 0 {
		t.Fatalf("block run stayed on one rung (stats %+v); the comparison is vacuous", stats)
	}
	if stats.ActiveSinks >= stats.TotalSinks {
		t.Fatalf("block run never shrank the active set: %d/%d", stats.ActiveSinks, stats.TotalSinks)
	}
	// Floor guards against a ratio blowup when both drifts are tiny.
	if floor := 1e-10; block > 2*uniform+floor {
		t.Fatalf("block energy drift %g exceeds 2x the uniform baseline %g", block, uniform)
	}
	t.Logf("energy drift: uniform %.3g, block %.3g (active fraction %.3f)",
		uniform, block, float64(stats.ActiveSinks)/float64(stats.TotalSinks))
}

// At synchronization points every body has completed its sub-step
// hierarchy, so reversing velocities and stepping back must retrace
// the trajectory. Uniform leapfrog reverses to roundoff; the block
// hierarchy re-derives rungs from the (reversed) accelerations, so it
// retraces only to the sub-step truncation scale -- but a scheduler
// bug (asymmetric kicks, skipped closing kick) shows up as O(1) error.
func TestBlockTimeReversibleAtSyncPoints(t *testing.T) {
	const n, steps, dt, eps = 120, 12, 1e-2, 0.05
	for _, tc := range []struct {
		name string
		eta  float64
		tol  float64
	}{
		{"uniform", 0, 1e-9},
		{"block", 0.05, 2e-3},
	} {
		sys, st := plummerSetup(n, eps, tc.eta)
		p0 := append([]vec.V3(nil), sys.Pos...)
		for i := 0; i < steps; i++ {
			st.Step(dt)
		}
		for i := range sys.Vel {
			sys.Vel[i] = sys.Vel[i].Neg()
		}
		// Re-evaluate so rung assignment sees the turned-around state
		// exactly as a fresh forward run would.
		st.B.Forces(0)
		for i := 0; i < steps; i++ {
			st.Step(dt)
		}
		if tc.eta > 0 && st.Stats.PartialEvals == 0 {
			t.Fatalf("%s: no partial evaluations; reversibility test is vacuous", tc.name)
		}
		worst := 0.0
		for i := range sys.Pos {
			if d := sys.Pos[i].Sub(p0[i]).Norm(); d > worst {
				worst = d
			}
		}
		if worst > tc.tol {
			t.Fatalf("%s: worst position after forward+reverse %g, want < %g", tc.name, worst, tc.tol)
		}
		t.Logf("%s: worst reversal error %g", tc.name, worst)
	}
}

// Rung assignment follows the acceleration criterion: halving eta
// moves bodies one rung finer (dt_i halves), and the cap holds.
func TestAssignRungsFollowsCriterion(t *testing.T) {
	sys := core.New(3)
	sys.EnableDynamics()
	for i := range sys.Mass {
		sys.Mass[i] = 1
	}
	sys.Acc[0] = vec.V3{}        // no force: coarsest rung
	sys.Acc[1] = vec.V3{X: 1}    // moderate
	sys.Acc[2] = vec.V3{X: 4096} // extreme: hits the cap
	st := &Stepper{Scheme: Block, Eta: 0.05, Eps: 0.05, MaxRung: 4}
	const dt = 2e-2
	max := st.assignRungs(sys, dt)
	if sys.Rung[0] != 0 {
		t.Fatalf("zero-acceleration body on rung %d, want 0", sys.Rung[0])
	}
	// dt_1 = 0.05*sqrt(0.05/1) ~ 0.0112: one halving of dt = 0.02.
	if sys.Rung[1] != 1 {
		t.Fatalf("moderate body on rung %d, want 1", sys.Rung[1])
	}
	if sys.Rung[2] != 4 || max != 4 {
		t.Fatalf("extreme body on rung %d (max %d), want the cap 4", sys.Rung[2], max)
	}
}
