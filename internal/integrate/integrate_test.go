package integrate

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/direct"
	"repro/internal/ic"
	"repro/internal/vec"
)

func directForces(eps2 float64) Forces {
	return func(sys *core.System) {
		direct.Serial(sys.Pos, sys.Mass, sys.Acc, sys.Pot, eps2)
	}
}

func TestTwoBodyOrbitClosesAndConservesEnergy(t *testing.T) {
	sys := ic.TwoBody(1, 1, 1.0)
	const eps2 = 1e-12
	f := directForces(eps2)
	f(sys)
	p0 := append([]vec.V3(nil), sys.Pos...)
	_, _, e0 := Energy(sys)
	// Period of the relative orbit: T = 2 pi sqrt(d^3 / (G M)).
	period := 2 * math.Pi * math.Sqrt(1.0/2.0)
	steps := 2000
	Leapfrog(sys, f, period/float64(steps), steps)
	_, _, e1 := Energy(sys)
	if rel := math.Abs((e1 - e0) / e0); rel > 1e-5 {
		t.Fatalf("energy drift %g over one orbit", rel)
	}
	// After one period the bodies return to their start.
	for i := range sys.Pos {
		if d := sys.Pos[i].Sub(p0[i]).Norm(); d > 5e-3 {
			t.Fatalf("body %d did not close orbit: off by %g", i, d)
		}
	}
}

func TestLeapfrogTimeReversibility(t *testing.T) {
	sys := ic.Plummer(50, 1, 3)
	const eps2 = 1e-2
	f := directForces(eps2)
	f(sys)
	p0 := append([]vec.V3(nil), sys.Pos...)
	v0 := append([]vec.V3(nil), sys.Vel...)
	const dt = 1e-3
	Leapfrog(sys, f, dt, 50)
	// Reverse velocities and integrate back.
	for i := range sys.Vel {
		sys.Vel[i] = sys.Vel[i].Neg()
	}
	Leapfrog(sys, f, dt, 50)
	for i := range sys.Pos {
		if d := sys.Pos[i].Sub(p0[i]).Norm(); d > 1e-9 {
			t.Fatalf("body %d position not reversed: %g", i, d)
		}
		if d := sys.Vel[i].Neg().Sub(v0[i]).Norm(); d > 1e-9 {
			t.Fatalf("body %d velocity not reversed: %g", i, d)
		}
	}
}

func TestEnergySecondOrderConvergence(t *testing.T) {
	// Halving dt should reduce the energy error by ~4x (2nd order).
	run := func(dt float64) float64 {
		sys := ic.Plummer(80, 1, 4)
		f := directForces(1e-2)
		f(sys)
		_, _, e0 := Energy(sys)
		Leapfrog(sys, f, dt, int(0.2/dt))
		_, _, e1 := Energy(sys)
		return math.Abs((e1 - e0) / e0)
	}
	errCoarse := run(4e-3)
	errFine := run(2e-3)
	order := math.Log2(errCoarse / errFine)
	if order < 1.2 {
		t.Fatalf("convergence order %.2f (coarse %g, fine %g), want ~2", order, errCoarse, errFine)
	}
}

func TestAngularMomentumConservation(t *testing.T) {
	sys := ic.Plummer(100, 1, 5)
	f := directForces(1e-4)
	f(sys)
	l0 := AngularMomentum(sys)
	Leapfrog(sys, f, 1e-3, 100)
	l1 := AngularMomentum(sys)
	// Direct forces are exactly antisymmetric: L conserved to
	// integration roundoff.
	if d := l1.Sub(l0).Norm(); d > 1e-10 {
		t.Fatalf("angular momentum drift %g", d)
	}
}

func TestKickDriftUnits(t *testing.T) {
	sys := core.New(1)
	sys.EnableDynamics()
	sys.Vel[0] = vec.V3{X: 2}
	sys.Acc[0] = vec.V3{Y: 3}
	Drift(sys, 0.5)
	if sys.Pos[0] != (vec.V3{X: 1}) {
		t.Fatalf("drift: %v", sys.Pos[0])
	}
	Kick(sys, 0.5)
	if sys.Vel[0] != (vec.V3{X: 2, Y: 1.5}) {
		t.Fatalf("kick: %v", sys.Vel[0])
	}
}
