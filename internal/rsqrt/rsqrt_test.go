package rsqrt

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRsqrtBasics(t *testing.T) {
	cases := []struct{ x, want float64 }{
		{1, 1},
		{4, 0.5},
		{0.25, 2},
		{16, 0.25},
		{2, 1 / math.Sqrt2},
		{1e300, 1 / math.Sqrt(1e300)},
		{1e-300, 1 / math.Sqrt(1e-300)},
		{3.1415926, 1 / math.Sqrt(3.1415926)},
	}
	for _, c := range cases {
		got := Rsqrt(c.x)
		rel := math.Abs(got-c.want) / c.want
		if rel > 4e-16 {
			t.Errorf("Rsqrt(%g) = %.17g, want %.17g (rel %g)", c.x, got, c.want, rel)
		}
	}
}

func TestRsqrtSpecials(t *testing.T) {
	if !math.IsInf(Rsqrt(0), 1) {
		t.Error("Rsqrt(0) should be +Inf")
	}
	if !math.IsInf(Rsqrt(math.Copysign(0, -1)), 1) {
		t.Error("Rsqrt(-0) should be +Inf")
	}
	if !math.IsNaN(Rsqrt(-1)) {
		t.Error("Rsqrt(-1) should be NaN")
	}
	if !math.IsNaN(Rsqrt(math.NaN())) {
		t.Error("Rsqrt(NaN) should be NaN")
	}
	if Rsqrt(math.Inf(1)) != 0 {
		t.Error("Rsqrt(+Inf) should be 0")
	}
}

func TestRsqrtSubnormal(t *testing.T) {
	x := math.Float64frombits(1) // smallest positive subnormal
	got := Rsqrt(x)
	want := 1 / math.Sqrt(x)
	if rel := math.Abs(got-want) / want; rel > 1e-15 {
		t.Errorf("Rsqrt(min subnormal) rel error %g", rel)
	}
	x = math.Float64frombits(0x000FFFFFFFFFFFFF) // largest subnormal
	got = Rsqrt(x)
	want = 1 / math.Sqrt(x)
	if rel := math.Abs(got-want) / want; rel > 1e-15 {
		t.Errorf("Rsqrt(max subnormal) rel error %g", rel)
	}
}

// Property: full-precision Rsqrt matches 1/math.Sqrt to ~2 ulp for all
// positive finite inputs.
func TestRsqrtAccuracyProperty(t *testing.T) {
	f := func(u uint64) bool {
		// Map to a positive finite normal or subnormal float64.
		u &^= 1 << 63
		x := math.Float64frombits(u)
		if math.IsNaN(x) || math.IsInf(x, 0) || x == 0 {
			return true
		}
		got := Rsqrt(x)
		want := 1 / math.Sqrt(x)
		if math.IsInf(want, 1) {
			return math.IsInf(got, 1)
		}
		rel := math.Abs(got-want) / want
		return rel <= 5e-16
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestIterationAccuracyLadder(t *testing.T) {
	// Each Newton step should roughly square the relative error.
	worst0, worst1, worst2 := 53.0, 53.0, 53.0
	for i := 0; i < 4000; i++ {
		x := 1.0 + 3.0*float64(i)/4000.0 // spans the whole table
		if b := CorrectBits(x, Rsqrt0(x)); b < worst0 {
			worst0 = b
		}
		if b := CorrectBits(x, Rsqrt1(x)); b < worst1 {
			worst1 = b
		}
		if b := CorrectBits(x, Rsqrt(x)); b < worst2 {
			worst2 = b
		}
	}
	if worst0 < 20 {
		t.Errorf("seed accuracy %f bits, want >= 20", worst0)
	}
	if worst1 < 42 {
		t.Errorf("1-iteration accuracy %f bits, want >= 42", worst1)
	}
	if worst2 < 50 {
		t.Errorf("2-iteration accuracy %f bits, want >= 50", worst2)
	}
	if worst1 < worst0 || worst2 < worst1 {
		t.Errorf("accuracy not monotone: %f %f %f", worst0, worst1, worst2)
	}
}

// sameBits reports whether two float64s are bit-identical, treating
// every NaN as equal to every other NaN.
func sameBits(a, b float64) bool {
	if math.IsNaN(a) && math.IsNaN(b) {
		return true
	}
	return math.Float64bits(a) == math.Float64bits(b)
}

// Property: the batched Sweep is element-wise bit-identical to the
// scalar Rsqrt for arbitrary bit patterns -- the contract that lets
// the SoA kernels in internal/grav share this implementation instead
// of re-deriving the seed tables.
func TestSweepMatchesRsqrtProperty(t *testing.T) {
	f := func(us []uint64) bool {
		src := make([]float64, len(us))
		for i, u := range us {
			src[i] = math.Float64frombits(u)
		}
		dst := make([]float64, len(src))
		Sweep(dst, src)
		for i := range src {
			if !sameBits(dst[i], Rsqrt(src[i])) {
				t.Logf("x=%x sweep=%x rsqrt=%x",
					math.Float64bits(src[i]), math.Float64bits(dst[i]), math.Float64bits(Rsqrt(src[i])))
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

// The directed companion of the property test: walk the full exponent
// range, both mantissa-fold parities, the subnormal binade, and every
// special case through Sweep in one batch.
func TestSweepExponentRange(t *testing.T) {
	var src []float64
	for e := -1074; e <= 1023; e++ {
		// One even-exponent and one odd-exponent representative per
		// binade, plus a mantissa near the top of the seed table.
		x := math.Ldexp(1, e)
		src = append(src, x, 1.5*x, 1.999*x)
	}
	// Subnormals (min, max, mid) and specials.
	src = append(src,
		math.Float64frombits(1),
		math.Float64frombits(0x000FFFFFFFFFFFFF),
		math.Float64frombits(0x0000000100000000),
		0, math.Copysign(0, -1), -1, math.Inf(1), math.Inf(-1), math.NaN(),
	)
	dst := make([]float64, len(src))
	Sweep(dst, src)
	for i, x := range src {
		if want := Rsqrt(x); !sameBits(dst[i], want) {
			t.Errorf("Sweep(%g) = %x, Rsqrt = %x",
				x, math.Float64bits(dst[i]), math.Float64bits(want))
		}
	}
}

// A short destination must be the caller's bug, not silent
// truncation: Sweep reslices dst to len(src) up front.
func TestSweepShortDstPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Sweep with short dst did not panic")
		}
	}()
	Sweep(make([]float64, 2), make([]float64, 3))
}

func TestSqrt(t *testing.T) {
	for _, x := range []float64{0, 1, 2, 100, 1e-10, 1e10} {
		got := Sqrt(x)
		want := math.Sqrt(x)
		if x == 0 {
			if got != 0 {
				t.Errorf("Sqrt(0) = %g", got)
			}
			continue
		}
		if rel := math.Abs(got-want) / want; rel > 1e-15 {
			t.Errorf("Sqrt(%g) rel error %g", x, rel)
		}
	}
}

func TestFlopsConstant(t *testing.T) {
	if Flops != 38 {
		t.Fatalf("paper charges 38 flops per interaction, constant is %d", Flops)
	}
}

func BenchmarkRsqrt(b *testing.B) {
	x := 1.234567
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += Rsqrt(x)
		x += 1e-9
	}
	_ = sink
}

func BenchmarkMathSqrtInverse(b *testing.B) {
	x := 1.234567
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += 1 / math.Sqrt(x)
		x += 1e-9
	}
	_ = sink
}

// BenchmarkSweep measures batched throughput per element on a
// kernel-tile-sized span, where consecutive elements' seed and Newton
// chains overlap -- the number the tiled kernels actually pay.
func BenchmarkSweep(b *testing.B) {
	const n = 256
	src := make([]float64, n)
	dst := make([]float64, n)
	for i := range src {
		src[i] = 0.5 + float64(i)*0.037
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Sweep(dst, src)
	}
	b.ReportMetric(float64(b.N)*n/b.Elapsed().Seconds()/1e9, "Gelem/s")
}
