package rsqrt

import (
	"math"
	"testing"
	"testing/quick"
)

// relErrVsSqrt returns |RsqrtFused(x) - 1/sqrt(x)| / (1/sqrt(x)).
func relErrVsSqrt(x float64) float64 {
	want := 1 / math.Sqrt(x)
	return math.Abs(RsqrtFused(x)-want) / want
}

// Property: the fused one-Newton path matches 1/math.Sqrt to ~2 ulp
// for all positive finite inputs, same bound the two-Newton Rsqrt
// property test uses -- the finer per-binade seed grid buys back the
// dropped iteration.
func TestRsqrtFusedAccuracyProperty(t *testing.T) {
	f := func(u uint64) bool {
		u &^= 1 << 63
		x := math.Float64frombits(u)
		if math.IsNaN(x) || math.IsInf(x, 0) || x == 0 {
			return true
		}
		want := 1 / math.Sqrt(x)
		if math.IsInf(want, 1) {
			return math.IsInf(RsqrtFused(x), 1)
		}
		return relErrVsSqrt(x) <= 5e-16
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

// The fused table folds the binade parity into the coefficients: a
// wrong fold would be a clean 1/sqrt(2) factor on half the exponent
// range. Sweep a mantissa grid across binades of both parities, deep
// into both tails, to pin the parity logic and the exponent-add
// rescale exactly where the property test samples thinly.
func TestRsqrtFusedBinadeSweep(t *testing.T) {
	worst := 0.0
	for e := -320; e <= 320; e++ {
		for i := 0; i < 64; i++ {
			x := (1 + float64(i)/64) * math.Ldexp(1, e)
			if rel := relErrVsSqrt(x); rel > worst {
				worst = rel
			}
		}
	}
	if worst > 5e-16 {
		t.Errorf("worst relative error across binades %g > 5e-16", worst)
	}
}

// Zero, negative, Inf, NaN, and subnormal inputs take the fallback,
// so the fused path must agree with Rsqrt bit for bit there.
func TestRsqrtFusedSpecialsMatchRsqrt(t *testing.T) {
	cases := []float64{
		0,
		math.Copysign(0, -1),
		-1,
		-math.MaxFloat64,
		math.Inf(1),
		math.Inf(-1),
		math.NaN(),
		math.Float64frombits(1),                  // smallest subnormal
		math.Float64frombits(0x000FFFFFFFFFFFFF), // largest subnormal
	}
	for _, x := range cases {
		got, want := RsqrtFused(x), Rsqrt(x)
		if math.Float64bits(got) != math.Float64bits(want) {
			t.Errorf("RsqrtFused(%g) = %v, Rsqrt = %v", x, got, want)
		}
	}
	// The extreme normals stay on the fast path (they must NOT fall
	// back), where only accuracy -- not bit identity with the
	// two-Newton Rsqrt -- is guaranteed.
	for _, x := range []float64{math.MaxFloat64, math.Float64frombits(0x0010000000000000)} {
		if rel := relErrVsSqrt(x); rel > 5e-16 {
			t.Errorf("RsqrtFused(%g) relative error %g > 5e-16", x, rel)
		}
	}
}

// The seed polynomial alone (before the Newton step) must land within
// ~1e-8 of 1/sqrt: one Newton squares that to below an ulp, which is
// the whole budget for dropping the second iteration. Evaluates the
// table exactly the way the kernels do.
func TestRsqrtFusedSeedAccuracy(t *testing.T) {
	seed := FusedTable()
	worst := 0.0
	for i := 0; i < 4096; i++ {
		x := 1 + 3*float64(i)/4096 // spans both binade parities
		b := math.Float64bits(x)
		k := int(b>>FusedShift) & (FusedTableSize - 1)
		tf := float64(b << (64 - FusedShift) >> (64 - FusedShift))
		c := &seed[k]
		y := c.C0 + tf*(c.C1+tf*c.C2)
		want := 1 / math.Sqrt(x)
		if rel := math.Abs(y-want) / want; rel > worst {
			worst = rel
		}
	}
	if worst > 2e-8 {
		t.Errorf("worst fused seed relative error %g > 2e-8", worst)
	}
}
