// Package rsqrt implements the reciprocal square root 1/sqrt(x) using
// only floating point adds and multiplies, following the algorithm of
// Karp (Scientific Programming 1, 1993) cited by the paper: a table
// lookup, Chebyshev polynomial interpolation, and Newton-Raphson
// iteration.
//
// This is the kernel that makes a gravitational interaction cost 38
// floating point operations on hardware without a fast square root:
// the argument's exponent is halved by integer bit manipulation, a
// quadratic fit through Chebyshev nodes seeds y ~= 1/sqrt(m) for the
// mantissa m folded into [1,4), and two Newton iterations
//
//	y <- y * (1.5 - 0.5*m*y*y)
//
// polish it to full double precision. The seed table is built once at
// init time (the 1997 code likewise precomputed it); the per-call path
// contains no divisions and no calls to math.Sqrt.
package rsqrt

import "math"

// tableBits sets the seed table resolution: 2^tableBits intervals over
// the mantissa range [1,4). With quadratic interpolation the seed is
// accurate to ~1e-8, so one Newton step reaches ~1e-15 and two steps
// are below double rounding error.
const tableBits = 8

const tableSize = 1 << tableBits

// TableSize is the number of seed intervals, exported for kernels that
// fuse the sweep body into their own loops (internal/grav's tiled
// kernels). The tables themselves are built only here, at init.
const TableSize = tableSize

// IntervalWidth is the mantissa span of one seed interval.
const IntervalWidth = intervalWidth

// SeedTables returns the Chebyshev seed coefficient tables. Callers
// fusing the sweep into a larger loop index them with the same clamped
// interval index Sweep uses; writing through the pointers is not
// allowed.
func SeedTables() (c0, c1, c2 *[TableSize]float64) {
	return &seedC0, &seedC1, &seedC2
}

// The fused-kernel seed: the variant of the Karp table designed for
// inlining into a larger loop (internal/grav's tiled kernels), where
// everything the evaluation needs comes straight from the argument's
// bit pattern with the fewest possible integer operations:
//
//   - the table index is the single 8-bit field (bits >> 45) & 255:
//     its low FusedMantBits bits are the top mantissa bits (the
//     interval within the binade) and its top bit is the BIASED
//     exponent's least significant bit, which encodes the binade
//     parity, so no shift/or assembly of the index is needed;
//   - the polynomial runs directly in the integer low mantissa
//     tf = float64(bits & (2^45-1)) with the 2^-52 scale folded into
//     the coefficients (exact: power-of-two scalings), so the
//     unfolded mantissa u is never materialized as a float;
//   - the Newton factor 0.5*m = HalfM*u is D + E*tf with per-entry
//     D = HalfM*Base and E = HalfM*2^-52, which is EXACT (both
//     addends are exact and their sum is HalfM*u, representable);
//   - the final scale by 2^(-e/2) is an integer add into the
//     exponent field (exact, identical to the multiply).
//
// The per-binade grid is fine enough (interpolation error ~7e-9,
// worst case at the bottom of the odd binade) that a single Newton
// iteration reaches full double precision, so the fused form costs
// one whole Newton step less than the classic sweep while agreeing
// with it to a couple of ulps. The whole table is 10 KB.

// FusedMantBits is the per-binade resolution of the fused seed table:
// 2^FusedMantBits intervals over each binade.
const FusedMantBits = 7

// FusedTableSize is the total fused seed entry count; entry k serves
// arguments whose index field (bits >> FusedShift) & (FusedTableSize-1)
// equals k.
const FusedTableSize = 2 << FusedMantBits

// FusedShift is the right shift that brings the index field to the
// bottom: the low mantissa has 52-FusedMantBits bits below the field.
const FusedShift = 52 - FusedMantBits

// FusedCoeffs is one fused seed interval for the argument binade with
// fold = 1 (biased exponent odd) or 2 (biased exponent even): the
// Chebyshev quadratic C0 + tf*(C1 + tf*C2) in the integer low
// mantissa tf approximates 1/sqrt(fold*u) on the interval, and
// D + E*tf = (fold/2)*u exactly for the Newton step.
type FusedCoeffs struct {
	C0, C1, C2, D, E float64
}

var fusedSeed [FusedTableSize]FusedCoeffs

// FusedTable returns the fused seed table; writing through the
// pointer is not allowed.
func FusedTable() *[FusedTableSize]FusedCoeffs {
	return &fusedSeed
}

// RsqrtFused is the scalar form of the fused-kernel pipeline:
// bit-indexed seed, one Newton iteration. It is the reference the
// property tests hold the tiled kernels' inlined arithmetic against
// (the kernels inline exactly this operation sequence), and agrees
// with Rsqrt to within a couple of ulps (both are within ~1 ulp of
// the exactly rounded result). Special cases match Rsqrt exactly:
// they take the same fallback.
//
// The exponent handling: for x = u * 2^e with even e' = e - odd the
// result is y * 2^(-e'/2), and -e'/2 = (1023 + odd - be) >> 1 with
// be the biased exponent and odd = (be&1)^1 (the bias 1023 is odd).
// The scale is applied by adding to y's exponent field directly --
// exact, identical to the multiply (y is in (0.35, 1.01] and e'/2 is
// within +-511, so the sum stays normal).
func RsqrtFused(x float64) float64 {
	b := math.Float64bits(x)
	if (b>>52)-1 >= 0x7FE {
		return Rsqrt(x) // zero, subnormal, negative, Inf, NaN
	}
	be := int(b >> 52)
	k := int(b>>FusedShift) & (FusedTableSize - 1)
	tf := float64(b << (64 - FusedShift) >> (64 - FusedShift))
	c := &fusedSeed[k]
	y := c.C0 + tf*(c.C1+tf*c.C2)
	y = y * (1.5 - (c.D+c.E*tf)*(y*y))
	return math.Float64frombits(math.Float64bits(y) + uint64((1023+(be&1^1)-be)>>1)<<52)
}

// Each interval stores the coefficients of the quadratic
// c0 + t*(c1 + t*c2) in t = m - start(interval).
var seedC0, seedC1, seedC2 [tableSize]float64

// The mantissa range [1,4) spans two binades, so an interval covers
// 3.0 / tableSize in m.
const intervalWidth = 3.0 / tableSize

// chebCoeffs returns the coefficients of the degree-2 Chebyshev
// interpolant of 1/sqrt(fold*u) on [a,b] in u, expanded around a so
// evaluation is Horner in t = u-a: both seed tables are built from
// this one fit (the classic table with fold = 1 over the folded
// mantissa, the fused table with the binade's fold baked in).
func chebCoeffs(a, b, fold float64) (c0, c1, c2 float64) {
	mid := 0.5 * (a + b)
	half := 0.5 * (b - a)
	// Chebyshev nodes of degree-2 interpolation on [a,b].
	var x, f [3]float64
	for k := 0; k < 3; k++ {
		x[k] = mid + half*math.Cos(float64(2*k+1)*math.Pi/6)
		f[k] = 1 / math.Sqrt(fold*x[k])
	}
	// Newton divided differences, then shift the expansion
	// point from x[0] to a.
	d01 := (f[1] - f[0]) / (x[1] - x[0])
	d12 := (f[2] - f[1]) / (x[2] - x[1])
	d012 := (d12 - d01) / (x[2] - x[0])
	u0 := a - x[0]
	u1 := a - x[1]
	return f[0] + d01*u0 + d012*u0*u1, d01 + d012*(u0+u1), d012
}

func init() {
	for i := 0; i < tableSize; i++ {
		a := 1.0 + float64(i)*intervalWidth
		seedC0[i], seedC1[i], seedC2[i] = chebCoeffs(a, a+intervalWidth, 1)
	}
	const half = FusedTableSize / 2
	for k := 0; k < FusedTableSize; k++ {
		i := k & (half - 1)
		// Entry k's top bit is the BIASED exponent LSB; the bias is
		// odd, so biased-even (top bit 0) means unbiased-odd: fold 2.
		fold := 2.0
		if k >= half {
			fold = 1
		}
		base := 1 + float64(i)/half
		c0, c1, c2 := chebCoeffs(base, base+1.0/half, fold)
		// Rescale from t = u-base to the integer low mantissa
		// tf = t*2^52; power-of-two scalings are exact, so the
		// evaluation is bit-identical to the u-space form.
		fusedSeed[k].C0 = c0
		fusedSeed[k].C1 = c1 * 0x1p-52
		fusedSeed[k].C2 = c2 * 0x1p-104
		fusedSeed[k].D = 0.5 * fold * base
		fusedSeed[k].E = 0.5 * fold * 0x1p-52
	}
}

// Rsqrt returns 1/sqrt(x) computed with adds and multiplies only on
// the hot path (plus integer exponent manipulation). Special cases:
//
//	Rsqrt(+Inf)  = 0
//	Rsqrt(±0)    = +Inf
//	Rsqrt(x < 0) = NaN
//	Rsqrt(NaN)   = NaN
func Rsqrt(x float64) float64 {
	return rsqrtN(x, 2)
}

// Rsqrt1 is Rsqrt with a single Newton-Raphson iteration: relative
// error ~1e-15. Exposed for the ablation benchmarks.
func Rsqrt1(x float64) float64 { return rsqrtN(x, 1) }

// Rsqrt0 is the bare Chebyshev table seed with no Newton iteration:
// relative error ~1e-8. Exposed for the ablation benchmarks.
func Rsqrt0(x float64) float64 { return rsqrtN(x, 0) }

func rsqrtN(x float64, iters int) float64 {
	if math.IsNaN(x) {
		return x
	}
	if x < 0 {
		return math.NaN()
	}
	if x == 0 {
		return math.Inf(1)
	}
	if math.IsInf(x, 1) {
		return 0
	}
	b := math.Float64bits(x)
	if b>>52 == 0 {
		// Subnormal: rescale by an even power of two and undo after.
		return rsqrtN(x*0x1p108, iters) * 0x1p54
	}
	e := int(b>>52) - 1023
	// Fold the mantissa into [1,4): odd exponents contribute 2.
	m := math.Float64frombits(b&0x000FFFFFFFFFFFFF | 0x3FF0000000000000)
	if e&1 != 0 {
		m *= 2
		e--
	}
	i := int((m - 1.0) * (1.0 / intervalWidth))
	if i >= tableSize {
		i = tableSize - 1
	}
	t := m - (1.0 + float64(i)*intervalWidth)
	y := seedC0[i] + t*(seedC1[i]+t*seedC2[i])
	for k := 0; k < iters; k++ {
		y = y * (1.5 - 0.5*m*y*y)
	}
	// Exact rescale by 2^(-e/2); e is even and within [-1074, 1023],
	// so -e/2 is within the normal exponent range.
	return y * math.Float64frombits(uint64(-e/2+1023)<<52)
}

// oddFold multiplies the mantissa by 1 or 2 depending on exponent
// parity; a table load instead of a branch, because the parity is
// effectively random across interactions and a branch there costs a
// mispredict on half of them.
var oddFold = [2]float64{1, 2}

// Sweep fills dst with the Karp reciprocal square root of each src
// element, bit-identical to calling Rsqrt per element. The scalar
// routine is too large for the compiler's inlining budget, so the
// batched SoA kernels in internal/grav call this instead: the seed
// and Newton sequences of consecutive elements are independent, and
// with the loop body inlined their ~20-cycle dependence chains
// overlap -- this is where a batched pipeline beats a per-interaction
// call. Special arguments (zero, subnormal, negative, infinite, NaN)
// take the scalar fallback. dst must be at least as long as src.
func Sweep(dst, src []float64) {
	dst = dst[:len(src)]
	for i, x := range src {
		b := math.Float64bits(x)
		e := int(b >> 52)
		if e == 0 || e >= 0x7FF {
			dst[i] = Rsqrt(x) // zero, subnormal, negative, Inf, NaN
			continue
		}
		e -= 1023
		odd := e & 1
		e -= odd
		m := math.Float64frombits(b&0x000FFFFFFFFFFFFF|0x3FF0000000000000) * oddFold[odd]
		k := int((m - 1.0) * (1.0 / intervalWidth))
		if k >= tableSize {
			k = tableSize - 1
		}
		// m >= 1 keeps k non-negative; the mask is a no-op that hands
		// the prove pass the [0, tableSize) range so the three table
		// loads below carry no bounds checks.
		k &= tableSize - 1
		t := m - (1.0 + float64(k)*intervalWidth)
		y := seedC0[k] + t*(seedC1[k]+t*seedC2[k])
		y = y * (1.5 - 0.5*m*y*y)
		y = y * (1.5 - 0.5*m*y*y)
		dst[i] = y * math.Float64frombits(uint64(-e/2+1023)<<52)
	}
}

// Flops is the number of floating point operations the paper charges
// for one gravitational interaction built on this kernel.
const Flops = 38

// Sqrt returns sqrt(x) as x * Rsqrt(x), still with adds and multiplies
// only on the hot path. Sqrt(0) = 0.
func Sqrt(x float64) float64 {
	if x == 0 {
		return 0
	}
	return x * Rsqrt(x)
}

// CorrectBits reports the number of correct mantissa bits of an
// approximation y to 1/sqrt(x); used by tests and the accuracy bench.
func CorrectBits(x, y float64) float64 {
	exact := 1 / math.Sqrt(x)
	rel := math.Abs(y-exact) / exact
	if rel == 0 {
		return 53
	}
	return -math.Log2(rel)
}
