// Package rsqrt implements the reciprocal square root 1/sqrt(x) using
// only floating point adds and multiplies, following the algorithm of
// Karp (Scientific Programming 1, 1993) cited by the paper: a table
// lookup, Chebyshev polynomial interpolation, and Newton-Raphson
// iteration.
//
// This is the kernel that makes a gravitational interaction cost 38
// floating point operations on hardware without a fast square root:
// the argument's exponent is halved by integer bit manipulation, a
// quadratic fit through Chebyshev nodes seeds y ~= 1/sqrt(m) for the
// mantissa m folded into [1,4), and two Newton iterations
//
//	y <- y * (1.5 - 0.5*m*y*y)
//
// polish it to full double precision. The seed table is built once at
// init time (the 1997 code likewise precomputed it); the per-call path
// contains no divisions and no calls to math.Sqrt.
package rsqrt

import "math"

// tableBits sets the seed table resolution: 2^tableBits intervals over
// the mantissa range [1,4). With quadratic interpolation the seed is
// accurate to ~1e-8, so one Newton step reaches ~1e-15 and two steps
// are below double rounding error.
const tableBits = 8

const tableSize = 1 << tableBits

// Each interval stores the coefficients of the quadratic
// c0 + t*(c1 + t*c2) in t = m - start(interval).
var seedC0, seedC1, seedC2 [tableSize]float64

// The mantissa range [1,4) spans two binades, so an interval covers
// 3.0 / tableSize in m.
const intervalWidth = 3.0 / tableSize

func init() {
	for i := 0; i < tableSize; i++ {
		a := 1.0 + float64(i)*intervalWidth
		b := a + intervalWidth
		mid := 0.5 * (a + b)
		half := 0.5 * (b - a)
		// Chebyshev nodes of degree-2 interpolation on [a,b].
		var x, f [3]float64
		for k := 0; k < 3; k++ {
			x[k] = mid + half*math.Cos(float64(2*k+1)*math.Pi/6)
			f[k] = 1 / math.Sqrt(x[k])
		}
		// Newton divided differences, then shift the expansion
		// point from x[0] to a so evaluation is Horner in t = m-a.
		d01 := (f[1] - f[0]) / (x[1] - x[0])
		d12 := (f[2] - f[1]) / (x[2] - x[1])
		d012 := (d12 - d01) / (x[2] - x[0])
		u0 := a - x[0]
		u1 := a - x[1]
		seedC2[i] = d012
		seedC1[i] = d01 + d012*(u0+u1)
		seedC0[i] = f[0] + d01*u0 + d012*u0*u1
	}
}

// Rsqrt returns 1/sqrt(x) computed with adds and multiplies only on
// the hot path (plus integer exponent manipulation). Special cases:
//
//	Rsqrt(+Inf)  = 0
//	Rsqrt(±0)    = +Inf
//	Rsqrt(x < 0) = NaN
//	Rsqrt(NaN)   = NaN
func Rsqrt(x float64) float64 {
	return rsqrtN(x, 2)
}

// Rsqrt1 is Rsqrt with a single Newton-Raphson iteration: relative
// error ~1e-15. Exposed for the ablation benchmarks.
func Rsqrt1(x float64) float64 { return rsqrtN(x, 1) }

// Rsqrt0 is the bare Chebyshev table seed with no Newton iteration:
// relative error ~1e-8. Exposed for the ablation benchmarks.
func Rsqrt0(x float64) float64 { return rsqrtN(x, 0) }

func rsqrtN(x float64, iters int) float64 {
	if math.IsNaN(x) {
		return x
	}
	if x < 0 {
		return math.NaN()
	}
	if x == 0 {
		return math.Inf(1)
	}
	if math.IsInf(x, 1) {
		return 0
	}
	b := math.Float64bits(x)
	if b>>52 == 0 {
		// Subnormal: rescale by an even power of two and undo after.
		return rsqrtN(x*0x1p108, iters) * 0x1p54
	}
	e := int(b>>52) - 1023
	// Fold the mantissa into [1,4): odd exponents contribute 2.
	m := math.Float64frombits(b&0x000FFFFFFFFFFFFF | 0x3FF0000000000000)
	if e&1 != 0 {
		m *= 2
		e--
	}
	i := int((m - 1.0) * (1.0 / intervalWidth))
	if i >= tableSize {
		i = tableSize - 1
	}
	t := m - (1.0 + float64(i)*intervalWidth)
	y := seedC0[i] + t*(seedC1[i]+t*seedC2[i])
	for k := 0; k < iters; k++ {
		y = y * (1.5 - 0.5*m*y*y)
	}
	// Exact rescale by 2^(-e/2); e is even and within [-1074, 1023],
	// so -e/2 is within the normal exponent range.
	return y * math.Float64frombits(uint64(-e/2+1023)<<52)
}

// TableSize and IntervalWidth describe the seed table layout for
// callers that inline the Karp sequence into their own loops (the
// batched SoA kernels in internal/grav: the scalar routine is too
// large for the compiler's inlining budget, so their batch sweep
// replicates the hot path and uses SeedTables for the coefficients).
const (
	TableSize     = tableSize
	IntervalWidth = intervalWidth
)

// SeedTables returns the Chebyshev seed coefficient tables. The
// arrays are read-only after package init.
func SeedTables() (c0, c1, c2 *[TableSize]float64) {
	return &seedC0, &seedC1, &seedC2
}

// Flops is the number of floating point operations the paper charges
// for one gravitational interaction built on this kernel.
const Flops = 38

// Sqrt returns sqrt(x) as x * Rsqrt(x), still with adds and multiplies
// only on the hot path. Sqrt(0) = 0.
func Sqrt(x float64) float64 {
	if x == 0 {
		return 0
	}
	return x * Rsqrt(x)
}

// CorrectBits reports the number of correct mantissa bits of an
// approximation y to 1/sqrt(x); used by tests and the accuracy bench.
func CorrectBits(x, y float64) float64 {
	exact := 1 / math.Sqrt(x)
	rel := math.Abs(y-exact) / exact
	if rel == 0 {
		return 53
	}
	return -math.Log2(rel)
}
