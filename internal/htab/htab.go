// Package htab implements the hash table that gives the hashed
// oct-tree its name: a translation from global Morton keys to local
// cell storage. Following Warren & Salmon, the hash function is a
// simple AND-mask of the key's low bits (which vary fastest along the
// Morton curve, so spatially clustered cells scatter well), and
// collisions are resolved by chaining. The indirection through this
// table is also the hook where a distributed traversal detects
// accesses to non-local data: a missing key is not an error, it is a
// request waiting to be sent.
//
// The table is deliberately hand-rolled rather than a Go map: chains
// live in flat int32 slices, so the whole structure is three
// allocations regardless of size, Clear is O(buckets) with no
// re-allocation, and iteration order is insertion order (which the
// deterministic parallel code relies on).
package htab

import "repro/internal/keys"

// Table maps keys.Key to values of type V.
type Table[V any] struct {
	mask    uint64
	buckets []int32 // head index into entries, -1 if empty
	entries []entry[V]
	// Stats accumulates probe statistics for the hash ablation bench.
	Stats Stats
}

type entry[V any] struct {
	key  keys.Key
	next int32
	val  V
}

// Stats counts hash table activity.
type Stats struct {
	Lookups uint64 // total Lookup calls
	Probes  uint64 // total chain links followed
	Misses  uint64 // lookups that found nothing
}

// New returns a table sized for about n entries.
func New[V any](n int) *Table[V] {
	b := 16
	for b < n {
		b <<= 1
	}
	t := &Table[V]{
		mask:    uint64(b - 1),
		buckets: make([]int32, b),
		entries: make([]entry[V], 0, n),
	}
	for i := range t.buckets {
		t.buckets[i] = -1
	}
	return t
}

// Len returns the number of entries.
func (t *Table[V]) Len() int { return len(t.entries) }

// hash is the paper's AND-mask hash.
func (t *Table[V]) hash(k keys.Key) int { return int(uint64(k) & t.mask) }

// Lookup returns the value stored under k.
func (t *Table[V]) Lookup(k keys.Key) (V, bool) {
	t.Stats.Lookups++
	for i := t.buckets[t.hash(k)]; i >= 0; i = t.entries[i].next {
		t.Stats.Probes++
		if t.entries[i].key == k {
			return t.entries[i].val, true
		}
	}
	t.Stats.Misses++
	var zero V
	return zero, false
}

// Ptr returns a pointer to the value stored under k, or nil. The
// pointer is invalidated by the next Insert (the entry slice may
// move), so callers must not hold it across mutations.
func (t *Table[V]) Ptr(k keys.Key) *V {
	for i := t.buckets[t.hash(k)]; i >= 0; i = t.entries[i].next {
		if t.entries[i].key == k {
			return &t.entries[i].val
		}
	}
	return nil
}

// Contains reports whether k is present.
func (t *Table[V]) Contains(k keys.Key) bool {
	for i := t.buckets[t.hash(k)]; i >= 0; i = t.entries[i].next {
		if t.entries[i].key == k {
			return true
		}
	}
	return false
}

// Insert stores val under k, replacing any existing value. It reports
// whether the key was newly inserted.
func (t *Table[V]) Insert(k keys.Key, val V) bool {
	h := t.hash(k)
	for i := t.buckets[h]; i >= 0; i = t.entries[i].next {
		if t.entries[i].key == k {
			t.entries[i].val = val
			return false
		}
	}
	if len(t.entries) >= 2*len(t.buckets) {
		t.grow()
		h = t.hash(k)
	}
	t.entries = append(t.entries, entry[V]{key: k, next: t.buckets[h], val: val})
	t.buckets[h] = int32(len(t.entries) - 1)
	return true
}

// Upsert returns a pointer to the value under k, inserting the zero
// value first if absent. The same invalidation caveat as Ptr applies.
func (t *Table[V]) Upsert(k keys.Key) *V {
	h := t.hash(k)
	for i := t.buckets[h]; i >= 0; i = t.entries[i].next {
		if t.entries[i].key == k {
			return &t.entries[i].val
		}
	}
	if len(t.entries) >= 2*len(t.buckets) {
		t.grow()
		h = t.hash(k)
	}
	var zero V
	t.entries = append(t.entries, entry[V]{key: k, next: t.buckets[h], val: zero})
	t.buckets[h] = int32(len(t.entries) - 1)
	return &t.entries[len(t.entries)-1].val
}

func (t *Table[V]) grow() {
	nb := len(t.buckets) * 2
	t.buckets = make([]int32, nb)
	t.mask = uint64(nb - 1)
	for i := range t.buckets {
		t.buckets[i] = -1
	}
	for i := range t.entries {
		h := t.hash(t.entries[i].key)
		t.entries[i].next = t.buckets[h]
		t.buckets[h] = int32(i)
	}
}

// Clear removes all entries but keeps the allocated capacity.
func (t *Table[V]) Clear() {
	t.entries = t.entries[:0]
	for i := range t.buckets {
		t.buckets[i] = -1
	}
	t.Stats = Stats{}
}

// Range calls f for every (key, value) pair in insertion order,
// stopping early if f returns false. The table must not be mutated
// during iteration.
func (t *Table[V]) Range(f func(k keys.Key, v *V) bool) {
	for i := range t.entries {
		if !f(t.entries[i].key, &t.entries[i].val) {
			return
		}
	}
}

// Keys returns all keys in insertion order.
func (t *Table[V]) Keys() []keys.Key {
	out := make([]keys.Key, len(t.entries))
	for i := range t.entries {
		out[i] = t.entries[i].key
	}
	return out
}

// MaxChain returns the length of the longest collision chain; used by
// tests and the hash ablation bench.
func (t *Table[V]) MaxChain() int {
	max := 0
	for _, head := range t.buckets {
		n := 0
		for i := head; i >= 0; i = t.entries[i].next {
			n++
		}
		if n > max {
			max = n
		}
	}
	return max
}
