package htab

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/keys"
)

func TestInsertLookup(t *testing.T) {
	tb := New[int](4)
	if tb.Len() != 0 {
		t.Fatal("new table not empty")
	}
	if _, ok := tb.Lookup(keys.Root); ok {
		t.Fatal("lookup in empty table succeeded")
	}
	if !tb.Insert(keys.Root, 42) {
		t.Fatal("first insert should be new")
	}
	if v, ok := tb.Lookup(keys.Root); !ok || v != 42 {
		t.Fatalf("lookup = %v, %v", v, ok)
	}
	if tb.Insert(keys.Root, 43) {
		t.Fatal("second insert of same key should replace, not add")
	}
	if v, _ := tb.Lookup(keys.Root); v != 43 {
		t.Fatalf("replace failed: %v", v)
	}
	if tb.Len() != 1 {
		t.Fatalf("len = %d", tb.Len())
	}
}

func TestGrowManyKeys(t *testing.T) {
	tb := New[uint64](4)
	rng := rand.New(rand.NewSource(2))
	ref := make(map[keys.Key]uint64)
	for i := 0; i < 20000; i++ {
		k := keys.FromCoords(rng.Uint32()&0x1FFFFF, rng.Uint32()&0x1FFFFF, rng.Uint32()&0x1FFFFF, keys.MaxLevel)
		v := rng.Uint64()
		tb.Insert(k, v)
		ref[k] = v
	}
	if tb.Len() != len(ref) {
		t.Fatalf("len = %d, want %d", tb.Len(), len(ref))
	}
	for k, v := range ref {
		got, ok := tb.Lookup(k)
		if !ok || got != v {
			t.Fatalf("lookup %v = %v,%v want %v", k, got, ok, v)
		}
	}
}

func TestUpsertAndPtr(t *testing.T) {
	tb := New[int](4)
	p := tb.Upsert(keys.Root)
	if *p != 0 {
		t.Fatal("upsert should create zero value")
	}
	*p = 7
	if v, _ := tb.Lookup(keys.Root); v != 7 {
		t.Fatalf("write through Upsert pointer lost: %v", v)
	}
	p2 := tb.Ptr(keys.Root)
	if p2 == nil || *p2 != 7 {
		t.Fatal("Ptr should find existing entry")
	}
	if tb.Ptr(keys.Root.Child(3)) != nil {
		t.Fatal("Ptr of absent key should be nil")
	}
	// Upsert of an existing key returns the same entry.
	p3 := tb.Upsert(keys.Root)
	if *p3 != 7 {
		t.Fatal("upsert of existing key should not reset value")
	}
	if tb.Len() != 1 {
		t.Fatalf("len = %d", tb.Len())
	}
}

func TestClear(t *testing.T) {
	tb := New[int](4)
	for i := 0; i < 100; i++ {
		tb.Insert(keys.Key(1<<21|i), i)
	}
	tb.Clear()
	if tb.Len() != 0 {
		t.Fatal("clear did not empty table")
	}
	if _, ok := tb.Lookup(keys.Key(1<<21 | 5)); ok {
		t.Fatal("stale entry after clear")
	}
	// Table must be reusable.
	tb.Insert(keys.Root, 1)
	if v, ok := tb.Lookup(keys.Root); !ok || v != 1 {
		t.Fatal("table unusable after clear")
	}
}

func TestRangeInsertionOrder(t *testing.T) {
	tb := New[int](4)
	want := []keys.Key{keys.Root, keys.Root.Child(1), keys.Root.Child(2), keys.Root.Child(1).Child(7)}
	for i, k := range want {
		tb.Insert(k, i)
	}
	var got []keys.Key
	tb.Range(func(k keys.Key, v *int) bool {
		got = append(got, k)
		return true
	})
	if len(got) != len(want) {
		t.Fatalf("range visited %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("range order[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	// Early stop.
	n := 0
	tb.Range(func(keys.Key, *int) bool { n++; return false })
	if n != 1 {
		t.Fatalf("early stop visited %d", n)
	}
}

func TestKeysMatchesRange(t *testing.T) {
	tb := New[int](4)
	for i := 0; i < 50; i++ {
		tb.Insert(keys.Root.Child(i%8).Child((i/8)%8), i)
	}
	ks := tb.Keys()
	if len(ks) != tb.Len() {
		t.Fatalf("Keys len %d != table len %d", len(ks), tb.Len())
	}
}

// Property: the table agrees with a Go map under a random sequence of
// inserts and lookups.
func TestAgainstMapProperty(t *testing.T) {
	f := func(ops []uint32) bool {
		tb := New[uint32](4)
		ref := make(map[keys.Key]uint32)
		for _, op := range ops {
			// Use few distinct keys so collisions and replacement
			// paths are exercised.
			k := keys.Root.Child(int(op) % 8).Child(int(op>>3) % 8)
			tb.Insert(k, op)
			ref[k] = op
		}
		if tb.Len() != len(ref) {
			return false
		}
		for k, v := range ref {
			got, ok := tb.Lookup(k)
			if !ok || got != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestStatsAndMaxChain(t *testing.T) {
	tb := New[int](1024)
	// Force collisions: same low bits.
	base := keys.Key(1 << 30)
	for i := 0; i < 8; i++ {
		tb.Insert(base|keys.Key(i)<<20, i) // differ above the mask for small tables? mask is >= 1023
	}
	_ = tb.MaxChain()
	tb.Lookup(base)
	if tb.Stats.Lookups == 0 {
		t.Fatal("stats not counted")
	}
}

func BenchmarkHtabLookup(b *testing.B) {
	tb := New[int](1 << 16)
	rng := rand.New(rand.NewSource(3))
	ks := make([]keys.Key, 1<<16)
	for i := range ks {
		ks[i] = keys.FromCoords(rng.Uint32()&0x1FFFFF, rng.Uint32()&0x1FFFFF, rng.Uint32()&0x1FFFFF, keys.MaxLevel)
		tb.Insert(ks[i], i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tb.Lookup(ks[i&(1<<16-1)])
	}
}

func BenchmarkGoMapLookup(b *testing.B) {
	m := make(map[keys.Key]int, 1<<16)
	rng := rand.New(rand.NewSource(3))
	ks := make([]keys.Key, 1<<16)
	for i := range ks {
		ks[i] = keys.FromCoords(rng.Uint32()&0x1FFFFF, rng.Uint32()&0x1FFFFF, rng.Uint32()&0x1FFFFF, keys.MaxLevel)
		m[ks[i]] = i
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m[ks[i&(1<<16-1)]]
	}
}
