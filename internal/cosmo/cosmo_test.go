package cosmo

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/direct"
	"repro/internal/fft"
	"repro/internal/integrate"
	"repro/internal/vec"
)

func TestBBKSLimits(t *testing.T) {
	if BBKS(0) != 1 {
		t.Fatal("T(0) != 1")
	}
	if v := BBKS(1e-6); math.Abs(v-1) > 1e-3 {
		t.Fatalf("T(q->0) = %v", v)
	}
	// Monotone decreasing.
	prev := 1.0
	for q := 0.01; q < 100; q *= 2 {
		v := BBKS(q)
		if v >= prev {
			t.Fatalf("T not decreasing at q=%v", q)
		}
		prev = v
	}
	// Small-scale suppression.
	if BBKS(100) > 1e-3 {
		t.Fatalf("T(100) = %v, want strong suppression", BBKS(100))
	}
}

func TestPowerSpectrumShape(t *testing.T) {
	// P(k) rises as ~k at large scales, turns over, falls at small
	// scales: the CDM peak.
	gamma := 0.2
	kPeak, pPeak := 0.0, 0.0
	prevP := 0.0
	rising := false
	for k := 1e-3; k < 100; k *= 1.1 {
		p := PowerSpectrum(k, gamma)
		if p > pPeak {
			kPeak, pPeak = k, p
		}
		if p > prevP {
			rising = true
		}
		prevP = p
	}
	if !rising {
		t.Fatal("spectrum never rises")
	}
	if kPeak < 1e-3*1.1 || kPeak > 50 {
		t.Fatalf("peak at k=%v implausible", kPeak)
	}
	if PowerSpectrum(0, gamma) != 0 || PowerSpectrum(-1, gamma) != 0 {
		t.Fatal("P(k<=0) must be 0")
	}
}

func TestRealizationRMS(t *testing.T) {
	p := Params{Grid: 16, Box: 100, DeltaRMS: 0.25, ShapeGamma: 0.05, Seed: 1}
	r, err := NewRealization(p)
	if err != nil {
		t.Fatal(err)
	}
	var ss, mean float64
	for _, v := range r.Delta {
		ss += v * v
		mean += v
	}
	n := float64(len(r.Delta))
	rms := math.Sqrt(ss / n)
	if math.Abs(rms-0.25) > 1e-10 {
		t.Fatalf("delta RMS = %v, want 0.25", rms)
	}
	if math.Abs(mean/n) > 0.05 {
		t.Fatalf("delta mean = %v, want ~0", mean/n)
	}
}

func TestRealizationGridValidation(t *testing.T) {
	if _, err := NewRealization(Params{Grid: 12, Box: 1, DeltaRMS: 0.1, ShapeGamma: 1}); err == nil {
		t.Fatal("non power-of-two grid should fail")
	}
}

// The defining Zel'dovich property: div(psi) = -delta. Verified
// spectrally (exact for the band-limited field): FFT each psi
// component, assemble i k . psi(k), compare to -delta(k).
func TestZeldovichDivergence(t *testing.T) {
	p := Params{Grid: 16, Box: 50, DeltaRMS: 0.2, ShapeGamma: 0.1, Seed: 2}
	r, err := NewRealization(p)
	if err != nil {
		t.Fatal(err)
	}
	n := r.N
	kf := 2 * math.Pi / r.Box
	var psiK [3][]complex128
	for j := 0; j < 3; j++ {
		g, _ := fft.NewGrid3(n)
		for i, v := range r.Psi[j] {
			g.Data[i] = complex(v, 0)
		}
		g.Forward3()
		psiK[j] = g.Data
	}
	gd, _ := fft.NewGrid3(n)
	for i, v := range r.Delta {
		gd.Data[i] = complex(v, 0)
	}
	gd.Forward3()

	var num, den float64
	for z := 0; z < n; z++ {
		for y := 0; y < n; y++ {
			for x := 0; x < n; x++ {
				if x == 0 && y == 0 && z == 0 {
					continue // zero mode carries no displacement
				}
				kx := float64(fft.FreqIndex(x, n)) * kf
				ky := float64(fft.FreqIndex(y, n)) * kf
				kz := float64(fft.FreqIndex(z, n)) * kf
				idx := (z*n+y)*n + x
				div := complex(0, kx)*psiK[0][idx] + complex(0, ky)*psiK[1][idx] + complex(0, kz)*psiK[2][idx]
				res := div + gd.Data[idx]
				num += real(res)*real(res) + imag(res)*imag(res)
				d := gd.Data[idx]
				den += real(d)*real(d) + imag(d)*imag(d)
			}
		}
	}
	if rel := math.Sqrt(num / den); rel > 1e-9 {
		t.Fatalf("spectral div(psi) vs -delta relative residual %v", rel)
	}
}

func TestICsBulkProperties(t *testing.T) {
	p := Params{Grid: 8, Box: 10, DeltaRMS: 0.1, ShapeGamma: 0.5, Seed: 3}
	r, _ := NewRealization(p)
	sys, h0 := r.ICs()
	if sys.Len() != 8*8*8 {
		t.Fatalf("N = %d", sys.Len())
	}
	if math.Abs(sys.TotalMass()-1) > 1e-12 {
		t.Fatalf("total mass %v", sys.TotalMass())
	}
	if h0 <= 0 {
		t.Fatal("H0 must be positive")
	}
	// Velocities dominated by Hubble flow: radially outward on
	// average (positive v.r correlation).
	var corr float64
	for i := range sys.Pos {
		corr += sys.Vel[i].Dot(sys.Pos[i])
	}
	if corr <= 0 {
		t.Fatal("no net expansion in ICs")
	}
	// EdS check: H0^2 = 8 pi rhobar / 3 within the box volume.
	rhobar := 1.0 / (p.Box * p.Box * p.Box)
	if math.Abs(h0*h0-8*math.Pi*rhobar/3) > 1e-12 {
		t.Fatalf("H0 not EdS: %v", h0)
	}
}

func TestSphereWithBuffer(t *testing.T) {
	p := Params{Grid: 16, Box: 10, DeltaRMS: 0.05, ShapeGamma: 0.5, Seed: 4}
	r, _ := NewRealization(p)
	sys, _ := r.ICs()
	totalBefore := sys.TotalMass()
	sph := SphereWithBuffer(sys, vec.V3{}, 2.0, 4.0)
	if sph.Len() == 0 || sph.Len() >= sys.Len() {
		t.Fatalf("sphere has %d of %d bodies", sph.Len(), sys.Len())
	}
	mFine := 1.0 / float64(sys.Len())
	var massHigh, massBuf float64
	for i := 0; i < sph.Len(); i++ {
		d := sph.Pos[i].Norm()
		if d > 4.0+1e-9 {
			t.Fatalf("body beyond buffer radius: %v", d)
		}
		if d <= 2.0 {
			if math.Abs(sph.Mass[i]-mFine) > 1e-15 {
				t.Fatalf("high-res body has mass %v", sph.Mass[i])
			}
			massHigh += sph.Mass[i]
		} else {
			if math.Abs(sph.Mass[i]-8*mFine) > 1e-15 {
				t.Fatalf("buffer body has mass %v, want 8x", sph.Mass[i])
			}
			massBuf += sph.Mass[i]
		}
	}
	// Buffer mass should approximate the shell's share of the mean
	// density: volume ratio (4^3 - 2^3)/2^3 = 7 of the high-res mass.
	if ratio := massBuf / massHigh; ratio < 3 || ratio > 14 {
		t.Fatalf("buffer/high mass ratio %v implausible", ratio)
	}
	_ = totalBefore
	// IDs renumbered contiguously.
	for i := range sph.ID {
		if sph.ID[i] != int64(i) {
			t.Fatal("IDs not renumbered")
		}
	}
}

func TestMeasurePowerRecoversShape(t *testing.T) {
	// The measured band power of a realization should correlate with
	// the input spectrum: rising then falling around the same peak.
	p := Params{Grid: 32, Box: 100, DeltaRMS: 0.2, ShapeGamma: 0.15, Seed: 5}
	r, _ := NewRealization(p)
	ks, pow := MeasurePower(r.Delta, r.N, r.Box, 8)
	// Compare the correlation between measured and model power over
	// populated bins.
	var dot, mm, pp float64
	for b := range ks {
		if pow[b] == 0 {
			continue
		}
		model := PowerSpectrum(ks[b], p.ShapeGamma)
		dot += model * pow[b]
		mm += model * model
		pp += pow[b] * pow[b]
	}
	if corr := dot / math.Sqrt(mm*pp); corr < 0.7 {
		t.Fatalf("measured spectrum correlates %v with model", corr)
	}
}

// The substitution check for the whole cosmology strategy: a uniform
// sphere with pure Hubble-flow velocities at exactly critical density
// must expand self-similarly following the Einstein-de Sitter solution
// a(t) = (1 + 3/2 H0 t)^(2/3) -- Newtonian Birkhoff in action. Run it
// with the direct solver (no tree error) and compare the radius
// evolution against the analytic curve.
func TestEdSExpansionMatchesAnalytic(t *testing.T) {
	const n = 1500
	rng := rand.New(rand.NewSource(42))
	sys := core.New(n)
	sys.EnableDynamics()
	const r0 = 1.0
	for i := 0; i < n; i++ {
		// Uniform in the sphere.
		for {
			p := vec.V3{X: 2*rng.Float64() - 1, Y: 2*rng.Float64() - 1, Z: 2*rng.Float64() - 1}
			if p.Norm2() <= 1 {
				sys.Pos[i] = p.Scale(r0)
				break
			}
		}
		sys.Mass[i] = 1.0 / float64(n)
	}
	// Critical density: H0^2 = 8 pi G rho / 3 = 2 G M / r0^3 (G=M=r0=1).
	h0 := math.Sqrt(2.0)
	for i := 0; i < n; i++ {
		sys.Vel[i] = sys.Pos[i].Scale(h0)
	}

	forces := func(s *core.System) {
		direct.Serial(s.Pos, s.Mass, s.Acc, s.Pot, 1e-4)
	}
	forces(sys)

	meanR := func() float64 {
		var r float64
		for i := 0; i < n; i++ {
			r += sys.Pos[i].Norm()
		}
		return r / float64(n)
	}
	r0mean := meanR()

	const dt = 4e-3
	const steps = 200
	integrate.Leapfrog(sys, forces, dt, steps)
	tEnd := float64(steps) * dt
	// EdS scale factor from a=1 at t=0: a(t) = (1 + 1.5 H0 t)^(2/3).
	want := math.Pow(1+1.5*h0*tEnd, 2.0/3.0)
	got := meanR() / r0mean
	if rel := math.Abs(got-want) / want; rel > 0.03 {
		t.Fatalf("EdS expansion: mean radius grew %.4fx, analytic %.4fx (rel %.3f)", got, want, rel)
	}
}
