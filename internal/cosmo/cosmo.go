// Package cosmo builds the cosmological initial conditions pipeline of
// the paper's production runs: a Cold Dark Matter power spectrum
// (BBKS transfer function), a Gaussian random density field realized
// with the 3-D FFT (the paper used 1024^3 and 512^3 grids; we run the
// identical pipeline at laptop-scale grids), Zel'dovich displacements
// of a particle lattice, and the sphere-with-buffer geometry: "the
// region inside a sphere ... was calculated at high mass resolution,
// while a buffer region with a particle mass 8 times higher was used
// around the outside to provide boundary conditions".
//
// Evolution strategy: the paper's runs are vacuum-bounded spheres, not
// periodic boxes, so (by the Newtonian Birkhoff theorem) the dynamics
// can be integrated in physical coordinates with Hubble-flow initial
// velocities on our tested plain leapfrog -- no comoving terms needed.
// Units: G = 1; the box length sets the length unit.
package cosmo

import (
	"math"
	"math/rand"

	"repro/internal/core"
	"repro/internal/fft"
	"repro/internal/vec"
)

// Params configures an initial-conditions build.
type Params struct {
	// Grid is the lattice size per dimension (power of two).
	Grid int
	// Box is the comoving box edge length (code units).
	Box float64
	// DeltaRMS is the target RMS density contrast of the realization
	// (sets the normalization A of P(k); the paper starts well before
	// nonlinearity, delta_rms ~ 0.1-0.3).
	DeltaRMS float64
	// ShapeGamma is the BBKS shape parameter Omega*h in units where
	// the box is measured in h^-1 Mpc-like lengths; typical CDM ~ 5
	// inverse box lengths for a 100 Mpc box.
	ShapeGamma float64
	// Seed drives the Gaussian realization.
	Seed int64
}

// BBKS returns the Bardeen-Bond-Kaiser-Szalay CDM transfer function
// T(q), q = k/Gamma (with Gamma the shape parameter in the same
// inverse-length units as k). T(0) = 1.
func BBKS(q float64) float64 {
	if q <= 0 {
		return 1
	}
	t := math.Log(1+2.34*q) / (2.34 * q)
	poly := 1 + 3.89*q + math.Pow(16.1*q, 2) + math.Pow(5.46*q, 3) + math.Pow(6.71*q, 4)
	return t * math.Pow(poly, -0.25)
}

// PowerSpectrum returns the unnormalized CDM power P(k) = k T(k/G)^2
// (primordial n=1 Harrison-Zel'dovich slope times the BBKS transfer
// squared).
func PowerSpectrum(k, gamma float64) float64 {
	if k <= 0 {
		return 0
	}
	t := BBKS(k / gamma)
	return k * t * t
}

// Realization holds a generated density field and its displacement
// fields on the grid.
type Realization struct {
	N     int
	Box   float64
	Delta []float64    // density contrast at grid points
	Psi   [3][]float64 // Zel'dovich displacement components
}

// NewRealization draws a Gaussian random field with the CDM spectrum
// and solves for the Zel'dovich displacement psi = -grad(phi), with
// div(psi) = -delta, spectrally.
func NewRealization(p Params) (*Realization, error) {
	n := p.Grid
	g, err := fft.NewGrid3(n)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(p.Seed))
	// White noise, unit variance per point.
	for i := range g.Data {
		g.Data[i] = complex(rng.NormFloat64(), 0)
	}
	g.Forward3()
	// Filter by sqrt(P(k)).
	kf := 2 * math.Pi / p.Box
	for z := 0; z < n; z++ {
		for y := 0; y < n; y++ {
			for x := 0; x < n; x++ {
				kx := float64(fft.FreqIndex(x, n)) * kf
				ky := float64(fft.FreqIndex(y, n)) * kf
				kz := float64(fft.FreqIndex(z, n)) * kf
				k := math.Sqrt(kx*kx + ky*ky + kz*kz)
				idx := (z*n+y)*n + x
				// Zero the Nyquist planes: those modes are their own
				// conjugate partners, so the displacement field
				// i k delta / k^2 cannot be Hermitian there.
				if n > 1 && (x == n/2 || y == n/2 || z == n/2) {
					g.Data[idx] = 0
					continue
				}
				g.Data[idx] *= complex(math.Sqrt(PowerSpectrum(k, p.ShapeGamma)), 0)
			}
		}
	}
	// Keep the filtered Fourier modes for the displacement solve.
	deltaK := append([]complex128(nil), g.Data...)
	g.Inverse3()
	// Normalize to the requested RMS.
	var ss float64
	for i := range g.Data {
		v := real(g.Data[i])
		ss += v * v
	}
	rms := math.Sqrt(ss / float64(len(g.Data)))
	scale := 1.0
	if rms > 0 {
		scale = p.DeltaRMS / rms
	}
	r := &Realization{N: n, Box: p.Box}
	r.Delta = make([]float64, n*n*n)
	for i := range g.Data {
		r.Delta[i] = real(g.Data[i]) * scale
	}
	// Zel'dovich: psi_j(k) = i k_j delta(k) / k^2.
	for j := 0; j < 3; j++ {
		for z := 0; z < n; z++ {
			for y := 0; y < n; y++ {
				for x := 0; x < n; x++ {
					kx := float64(fft.FreqIndex(x, n)) * kf
					ky := float64(fft.FreqIndex(y, n)) * kf
					kz := float64(fft.FreqIndex(z, n)) * kf
					k2 := kx*kx + ky*ky + kz*kz
					idx := (z*n+y)*n + x
					if k2 == 0 {
						g.Data[idx] = 0
						continue
					}
					kj := [3]float64{kx, ky, kz}[j]
					g.Data[idx] = deltaK[idx] * complex(0, kj/k2)
				}
			}
		}
		g.Inverse3()
		r.Psi[j] = make([]float64, n*n*n)
		for i := range g.Data {
			r.Psi[j][i] = real(g.Data[i]) * scale
		}
		copy(g.Data, deltaK)
	}
	return r, nil
}

// ICs places one particle per grid point, displaced by the Zel'dovich
// field, with Hubble-flow plus Zel'dovich peculiar velocities. The
// returned system has total mass 1 and Hubble constant H0 chosen for
// an Einstein-de Sitter (critical density) sphere:
// H0^2 = 8 pi G rhobar / 3 with G = 1.
func (r *Realization) ICs() (*core.System, float64) {
	n := r.N
	sys := core.New(n * n * n)
	sys.EnableDynamics()
	cell := r.Box / float64(n)
	m := 1.0 / float64(n*n*n)
	rhobar := 1.0 / (r.Box * r.Box * r.Box)
	h0 := math.Sqrt(8 * math.Pi * rhobar / 3)
	half := r.Box / 2
	i := 0
	for z := 0; z < n; z++ {
		for y := 0; y < n; y++ {
			for x := 0; x < n; x++ {
				idx := (z*n+y)*n + x
				psi := vec.V3{X: r.Psi[0][idx], Y: r.Psi[1][idx], Z: r.Psi[2][idx]}
				q := vec.V3{
					X: (float64(x)+0.5)*cell - half,
					Y: (float64(y)+0.5)*cell - half,
					Z: (float64(z)+0.5)*cell - half,
				}
				pos := q.Add(psi)
				sys.Pos[i] = pos
				// Hubble flow + Zel'dovich peculiar velocity
				// (EdS: Ddot = H at the starting epoch).
				sys.Vel[i] = pos.Scale(h0).Add(psi.Scale(h0))
				sys.Mass[i] = m
				i++
			}
		}
	}
	return sys, h0
}

// SphereWithBuffer carves the paper's geometry out of a cubic IC set:
// bodies within rHigh of the center are kept at full resolution;
// bodies in the buffer shell (rHigh, rBuf] are merged 8-into-1 (every
// 8th body kept with 8 times the mass, preserving the mean density);
// bodies beyond rBuf are dropped.
func SphereWithBuffer(sys *core.System, center vec.V3, rHigh, rBuf float64) *core.System {
	out := core.New(0)
	out.EnableDynamics()
	bufCount := 0
	for i := 0; i < sys.Len(); i++ {
		d := sys.Pos[i].Sub(center).Norm()
		switch {
		case d <= rHigh:
			out.AppendFrom(sys, i)
		case d <= rBuf:
			bufCount++
			if bufCount%8 == 0 {
				out.AppendFrom(sys, i)
				out.Mass[out.Len()-1] *= 8
			}
		}
	}
	// Re-number identities.
	for i := range out.ID {
		out.ID[i] = int64(i)
	}
	return out
}

// MeasurePower bins |delta(k)|^2 of a density field into nBins
// spherical shells; used by tests to verify the realization follows
// the input spectrum. Returns bin-center k values and mean power.
func MeasurePower(delta []float64, n int, box float64, nBins int) (ks, power []float64) {
	g, err := fft.NewGrid3(n)
	if err != nil {
		panic(err)
	}
	for i, v := range delta {
		g.Data[i] = complex(v, 0)
	}
	g.Forward3()
	kf := 2 * math.Pi / box
	kmax := kf * float64(n) / 2 * math.Sqrt(3)
	sum := make([]float64, nBins)
	cnt := make([]float64, nBins)
	for z := 0; z < n; z++ {
		for y := 0; y < n; y++ {
			for x := 0; x < n; x++ {
				kx := float64(fft.FreqIndex(x, n)) * kf
				ky := float64(fft.FreqIndex(y, n)) * kf
				kz := float64(fft.FreqIndex(z, n)) * kf
				k := math.Sqrt(kx*kx + ky*ky + kz*kz)
				if k == 0 {
					continue
				}
				b := int(k / kmax * float64(nBins))
				if b >= nBins {
					b = nBins - 1
				}
				idx := (z*n+y)*n + x
				re, im := real(g.Data[idx]), imag(g.Data[idx])
				sum[b] += re*re + im*im
				cnt[b]++
			}
		}
	}
	ks = make([]float64, nBins)
	power = make([]float64, nBins)
	for b := 0; b < nBins; b++ {
		ks[b] = (float64(b) + 0.5) * kmax / float64(nBins)
		if cnt[b] > 0 {
			power[b] = sum[b] / cnt[b]
		}
	}
	return ks, power
}
