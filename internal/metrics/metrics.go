// Package metrics is the machine-readable side of the observability
// layer: lock-free counters, gauges and HDR-style power-of-two
// histograms behind a named Registry, plus the RunReport every
// simulation command can emit (report.go). Where internal/trace
// answers "when did each rank do what", this package answers "how
// much, in total" -- and the two agree by construction because both
// are fed from the same diag.Counters and msg traffic records.
//
// The flop accounting behind the rate metrics is the paper's
// (internal/diag): a gravitational interaction is charged
// diag.FlopsPerInteraction = 38 flops (Karp reciprocal square root
// built from adds and multiplies), a quadrupole term adds
// diag.FlopsPerQuadrupole = 70, a regularized Biot-Savart vortex
// interaction costs diag.FlopsPerVortexInteract = 168, and an SPH
// pair diag.FlopsPerSPHPair = 55. Every "flops" or "flops_rate"
// metric in a RunReport is counted interactions pushed through those
// constants, exactly as the paper derives 430 Gflops from interaction
// counts and wall-clock time.
//
// All update paths are atomic, so engine goroutines and pool workers
// may hammer one metric concurrently; all read paths are snapshots.
// Every type tolerates a nil receiver on its update methods, so a
// disabled registry costs one branch per update site.
package metrics

import (
	"math"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing uint64.
type Counter struct{ v atomic.Uint64 }

// Add increments the counter. Nil-safe no-op.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count. Nil-safe (0).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a last-write-wins float64.
type Gauge struct{ bits atomic.Uint64 }

// Set stores the gauge value. Nil-safe no-op.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Value returns the current value. Nil-safe (0).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// histBuckets is one bucket per possible bit length of a uint64
// sample: bucket i holds values whose bits.Len64 is i, i.e. the
// half-open range [2^(i-1), 2^i), with bucket 0 holding exact zeros.
const histBuckets = 65

// Histogram is an HDR-style latency histogram: power-of-two buckets,
// exact count/sum/max, atomic updates. Resolution is a factor of two,
// which is what latency percentiles need -- a stall of 1 ms vs 1.4 ms
// is the same diagnosis, 1 ms vs 16 ms is not.
type Histogram struct {
	buckets [histBuckets]atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Uint64
	max     atomic.Uint64
}

// Observe records one sample. Nil-safe no-op.
func (h *Histogram) Observe(v uint64) {
	if h == nil {
		return
	}
	h.buckets[bits.Len64(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		old := h.max.Load()
		if v <= old || h.max.CompareAndSwap(old, v) {
			return
		}
	}
}

// Count returns the number of samples. Nil-safe (0).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Quantile returns an upper bound on the q-quantile (0 <= q <= 1):
// the top of the power-of-two bucket containing it, clamped to the
// exact observed maximum. Nil-safe (0).
func (h *Histogram) Quantile(q float64) uint64 {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	var seen uint64
	for i := 0; i < histBuckets; i++ {
		seen += h.buckets[i].Load()
		if seen >= rank {
			upper := uint64(math.MaxUint64)
			if i < 64 {
				upper = 1<<uint(i) - 1
			}
			if m := h.max.Load(); m < upper {
				upper = m
			}
			return upper
		}
	}
	return h.max.Load()
}

// HistogramSnapshot is the serializable summary of a Histogram.
type HistogramSnapshot struct {
	Count uint64 `json:"count"`
	Sum   uint64 `json:"sum"`
	Max   uint64 `json:"max"`
	P50   uint64 `json:"p50"`
	P90   uint64 `json:"p90"`
	P99   uint64 `json:"p99"`
}

// Snapshot summarizes the histogram. Nil-safe (zero snapshot).
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	return HistogramSnapshot{
		Count: h.count.Load(),
		Sum:   h.sum.Load(),
		Max:   h.max.Load(),
		P50:   h.Quantile(0.50),
		P90:   h.Quantile(0.90),
		P99:   h.Quantile(0.99),
	}
}

// Registry is a named collection of metrics. Lookup creates on first
// use; the returned pointers are stable, so hot paths resolve a
// metric once and update it lock-free thereafter.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
	}
}

// Counter returns the named counter, creating it if new. Nil-safe: a
// nil registry yields a nil Counter whose Add is a no-op.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it if new. Nil-safe.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it if new. Nil-safe.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// Values returns every counter and gauge as one flat sorted-key map.
// Nil-safe (nil).
func (r *Registry) Values() map[string]float64 {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]float64, len(r.counters)+len(r.gauges))
	for name, c := range r.counters {
		out[name] = float64(c.Value())
	}
	for name, g := range r.gauges {
		out[name] = g.Value()
	}
	return out
}

// Counters returns every counter's current value by name. Unlike
// Values it keeps the metric kind, which Prometheus exposition needs
// for its TYPE lines. Nil-safe (nil).
func (r *Registry) Counters() map[string]uint64 {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]uint64, len(r.counters))
	for name, c := range r.counters {
		out[name] = c.Value()
	}
	return out
}

// Gauges returns every gauge's current value by name. Nil-safe (nil).
func (r *Registry) Gauges() map[string]float64 {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]float64, len(r.gauges))
	for name, g := range r.gauges {
		out[name] = g.Value()
	}
	return out
}

// Snapshots returns every histogram's summary. Nil-safe (nil).
func (r *Registry) Snapshots() map[string]HistogramSnapshot {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]HistogramSnapshot, len(r.hists))
	for name, h := range r.hists {
		out[name] = h.Snapshot()
	}
	return out
}

// Names returns the registry's metric names, sorted, for stable
// rendering. Nil-safe (nil).
func (r *Registry) Names() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.counters)+len(r.gauges)+len(r.hists))
	for n := range r.counters {
		names = append(names, n)
	}
	for n := range r.gauges {
		names = append(names, n)
	}
	for n := range r.hists {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
