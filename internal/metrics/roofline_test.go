package metrics

import (
	"math"
	"strings"
	"testing"

	"repro/internal/diag"
)

func TestRooflineAccounting(t *testing.T) {
	// 1e6 interactions at 38 flops and 8 bytes each over 0.5 s.
	r := NewRoofline(38e6, 8e6, 0.5)
	if got, want := r.Intensity, 38.0/8.0; math.Abs(got-want) > 1e-12 {
		t.Errorf("intensity = %g, want %g", got, want)
	}
	if got, want := r.AchievedFlops, 76e6; math.Abs(got-want) > 1 {
		t.Errorf("achieved = %g, want %g", got, want)
	}
}

func TestRooflineCalibrateBounds(t *testing.T) {
	// Intensity 4.75; ridge at peak/bw.
	r := NewRoofline(38e6, 8e6, 0.5)

	// Low bandwidth: ridge 10 > intensity 4.75 -> memory-bound, the
	// ceiling is intensity*bw.
	r.Calibrate(100e9, 10e9)
	if r.Bound != "memory" {
		t.Errorf("bound = %q, want memory (ridge %g)", r.Bound, r.RidgeIntensity)
	}
	if want := 4.75 * 10e9; math.Abs(r.Ceiling-want) > 1 {
		t.Errorf("ceiling = %g, want %g", r.Ceiling, want)
	}

	// High bandwidth: ridge 1 < intensity -> compute-bound, ceiling is
	// the flop peak, utilization = achieved/peak.
	r.Calibrate(100e9, 100e9)
	if r.Bound != "compute" {
		t.Errorf("bound = %q, want compute", r.Bound)
	}
	if math.Abs(r.Ceiling-100e9) > 1 {
		t.Errorf("ceiling = %g, want 100e9", r.Ceiling)
	}
	if want := 76e6 / 100e9; math.Abs(r.Utilization-want) > 1e-15 {
		t.Errorf("utilization = %g, want %g", r.Utilization, want)
	}
}

func TestReportCarriesRoofline(t *testing.T) {
	in := []RankInput{{Counters: diag.Counters{PP: 1000, PC: 500, QuadPC: 500}}}
	rep := BuildReport("test", 100, 2.0, in, nil, nil)
	rf := rep.Roofline
	if rf == nil {
		t.Fatal("BuildReport left Roofline nil")
	}
	wantFlops := uint64(1500*diag.FlopsPerInteraction + 500*diag.FlopsPerQuadrupole)
	if rf.KernelFlops != wantFlops {
		t.Errorf("kernel flops = %d, want %d", rf.KernelFlops, wantFlops)
	}
	wantBytes := uint64(1000*diag.BytesPerPPInteraction + 500*diag.BytesPerPCInteraction + 500*diag.BytesPerQuadPCExtra)
	if rf.KernelBytes != wantBytes {
		t.Errorf("kernel bytes = %d, want %d", rf.KernelBytes, wantBytes)
	}

	var sb strings.Builder
	rep.Render(&sb)
	if !strings.Contains(sb.String(), "roofline:") {
		t.Errorf("Render output missing roofline section:\n%s", sb.String())
	}
	if !strings.Contains(sb.String(), "intensity") {
		t.Errorf("Render output missing intensity line")
	}
}

func TestMeasurePeaksArePositive(t *testing.T) {
	if testing.Short() {
		t.Skip("host measurement in -short mode")
	}
	if f := MeasurePeakFlops(); f <= 0 {
		t.Errorf("MeasurePeakFlops = %g", f)
	}
	if b := MeasurePeakBandwidth(); b <= 0 {
		t.Errorf("MeasurePeakBandwidth = %g", b)
	}
}
