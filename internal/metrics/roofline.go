// Roofline analysis for the interaction kernels: pair the 38-flop
// interaction accounting with a bytes-moved count (diag.KernelBytes)
// to place the run on a roofline plot -- arithmetic intensity on the
// x-axis, achieved flop rate against the machine's compute and memory
// ceilings. The paper argued its kernels were compute-bound on the
// Pentium Pro ("32 bytes per 38 flops"); this section makes the same
// argument measurable on the host the run actually used.
package metrics

import (
	"runtime"
	"sync"
	"time"
)

// Roofline is the roofline section of a RunReport. The first four
// fields are pure accounting filled by BuildReport; the Peak* fields
// and everything derived from them are host measurements filled by
// Calibrate (perfreport does this at render time, so a report written
// on one machine can be calibrated against another).
type Roofline struct {
	// KernelFlops and KernelBytes are the totals over all ranks under
	// the paper's flop accounting and the tiled kernels' bytes-moved
	// accounting (see diag.KernelBytes).
	KernelFlops uint64 `json:"kernel_flops"`
	KernelBytes uint64 `json:"kernel_bytes"`
	// Intensity is KernelFlops/KernelBytes in flops/byte.
	Intensity float64 `json:"intensity_flops_per_byte"`
	// AchievedFlops is the run's sustained rate, flops/s.
	AchievedFlops float64 `json:"achieved_flops"`

	// PeakFlops is the measured (or asserted) compute ceiling, flops/s.
	PeakFlops float64 `json:"peak_flops,omitempty"`
	// PeakBandwidth is the measured memory ceiling, bytes/s.
	PeakBandwidth float64 `json:"peak_bandwidth,omitempty"`
	// RidgeIntensity is PeakFlops/PeakBandwidth: below it a kernel is
	// bandwidth-limited, above it compute-limited.
	RidgeIntensity float64 `json:"ridge_intensity,omitempty"`
	// Ceiling is min(PeakFlops, Intensity*PeakBandwidth): the roofline
	// bound for this kernel's intensity.
	Ceiling float64 `json:"ceiling_flops,omitempty"`
	// Bound is "compute" or "memory" depending on which side of the
	// ridge the kernel sits.
	Bound string `json:"bound,omitempty"`
	// Utilization is AchievedFlops/Ceiling.
	Utilization float64 `json:"utilization,omitempty"`
}

// NewRoofline builds the accounting half from run totals; wall is the
// run's wall-clock seconds.
func NewRoofline(flops, bytes uint64, wall float64) *Roofline {
	r := &Roofline{KernelFlops: flops, KernelBytes: bytes}
	if bytes > 0 {
		r.Intensity = float64(flops) / float64(bytes)
	}
	if wall > 0 {
		r.AchievedFlops = float64(flops) / wall
	}
	return r
}

// Calibrate fills the machine half against the given ceilings
// (flops/s and bytes/s) and derives the ridge point, the kernel's
// roofline ceiling, which side it binds on, and the utilization.
func (r *Roofline) Calibrate(peakFlops, peakBandwidth float64) {
	r.PeakFlops = peakFlops
	r.PeakBandwidth = peakBandwidth
	if peakBandwidth > 0 {
		r.RidgeIntensity = peakFlops / peakBandwidth
	}
	r.Ceiling = peakFlops
	r.Bound = "compute"
	if bw := r.Intensity * peakBandwidth; bw > 0 && bw < r.Ceiling {
		r.Ceiling = bw
		r.Bound = "memory"
	}
	if r.Ceiling > 0 {
		r.Utilization = r.AchievedFlops / r.Ceiling
	}
}

// MeasurePeakFlops estimates the host's double-precision compute
// ceiling in flops/s: every core runs chains of independent
// multiply-adds (8 accumulators per goroutine, enough to cover the
// FP latency-throughput gap), charged at 2 flops each. On hardware
// where the compiler does not fuse them this underestimates the FMA
// peak by up to 2x -- acceptable for a ceiling the kernels are
// compared against, and stated in the report as "measured".
func MeasurePeakFlops() float64 {
	workers := runtime.GOMAXPROCS(0)
	const iters = 1 << 22
	var wg sync.WaitGroup
	sink := make([]float64, workers)
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			a0, a1, a2, a3 := 1.0, 1.1, 1.2, 1.3
			a4, a5, a6, a7 := 1.4, 1.5, 1.6, 1.7
			// Multipliers near 1 keep the accumulators finite for the
			// whole run (no Inf/denormal slowdowns).
			const c, d = 1.0000000001, 1e-9
			for i := 0; i < iters; i++ {
				a0 = a0*c + d
				a1 = a1*c + d
				a2 = a2*c + d
				a3 = a3*c + d
				a4 = a4*c + d
				a5 = a5*c + d
				a6 = a6*c + d
				a7 = a7*c + d
			}
			sink[w] = a0 + a1 + a2 + a3 + a4 + a5 + a6 + a7
		}(w)
	}
	wg.Wait()
	el := time.Since(start).Seconds()
	if el <= 0 {
		return 0
	}
	// 8 chains x 2 flops per iteration per worker.
	return float64(workers) * float64(iters) * 16 / el
}

// MeasurePeakBandwidth estimates the host's memory read bandwidth in
// bytes/s: every core streams a 32 MiB float64 buffer (well past any
// LLC) with a reduction that the compiler cannot elide.
func MeasurePeakBandwidth() float64 {
	workers := runtime.GOMAXPROCS(0)
	const n = 4 << 20 // 4M float64 = 32 MiB per worker
	const passes = 4
	bufs := make([][]float64, workers)
	for w := range bufs {
		bufs[w] = make([]float64, n)
		for i := range bufs[w] {
			bufs[w][i] = float64(i)
		}
	}
	var wg sync.WaitGroup
	sink := make([]float64, workers)
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var s0, s1, s2, s3 float64
			b := bufs[w]
			for p := 0; p < passes; p++ {
				for i := 0; i+4 <= len(b); i += 4 {
					s0 += b[i]
					s1 += b[i+1]
					s2 += b[i+2]
					s3 += b[i+3]
				}
			}
			sink[w] = s0 + s1 + s2 + s3
		}(w)
	}
	wg.Wait()
	el := time.Since(start).Seconds()
	if el <= 0 {
		return 0
	}
	return float64(workers) * float64(n) * 8 * passes / el
}
