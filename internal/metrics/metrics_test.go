package metrics

import (
	"strings"
	"sync"
	"testing"

	"repro/internal/diag"
)

func TestCounterGaugeNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	c.Add(5)
	if c.Value() != 0 {
		t.Fatal("nil counter holds a value")
	}
	g := r.Gauge("y")
	g.Set(3)
	if g.Value() != 0 {
		t.Fatal("nil gauge holds a value")
	}
	h := r.Histogram("z")
	h.Observe(7)
	if h.Count() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("nil histogram holds samples")
	}
	if r.Values() != nil || r.Snapshots() != nil || r.Names() != nil {
		t.Fatal("nil registry yields data")
	}
	_ = h.Snapshot()
}

func TestRegistryStablePointers(t *testing.T) {
	r := NewRegistry()
	if r.Counter("a") != r.Counter("a") {
		t.Fatal("counter pointer not stable")
	}
	r.Counter("a").Add(2)
	r.Counter("a").Add(3)
	r.Gauge("g").Set(1.5)
	vals := r.Values()
	if vals["a"] != 5 || vals["g"] != 1.5 {
		t.Fatalf("values = %v", vals)
	}
	names := r.Names()
	if len(names) != 2 || names[0] != "a" || names[1] != "g" {
		t.Fatalf("names = %v", names)
	}
}

func TestHistogramBucketsAndQuantiles(t *testing.T) {
	var h Histogram
	// 90 fast samples, 9 medium, 1 slow: the classic stall shape.
	for i := 0; i < 90; i++ {
		h.Observe(100) // bucket [64,128)
	}
	for i := 0; i < 9; i++ {
		h.Observe(10_000)
	}
	h.Observe(1_000_000)
	if h.Count() != 100 {
		t.Fatalf("count = %d", h.Count())
	}
	if p50 := h.Quantile(0.50); p50 < 100 || p50 >= 128 {
		t.Fatalf("p50 = %d, want in [100,128)", p50)
	}
	if p90 := h.Quantile(0.90); p90 < 100 || p90 >= 128 {
		t.Fatalf("p90 = %d (90 of 100 samples are fast)", p90)
	}
	if p99 := h.Quantile(0.99); p99 < 10_000 || p99 >= 16_384 {
		t.Fatalf("p99 = %d, want in [10000,16384)", p99)
	}
	s := h.Snapshot()
	if s.Max != 1_000_000 || s.Sum != 90*100+9*10_000+1_000_000 {
		t.Fatalf("snapshot = %+v", s)
	}
	// The quantile upper bound is clamped to the observed max.
	if q := h.Quantile(1.0); q != 1_000_000 {
		t.Fatalf("p100 = %d", q)
	}
}

// Quantile edge cases: the extremes of q, a single sample, and the
// max-clamp when the true quantile shares a bucket with the maximum.
func TestHistogramQuantileEdges(t *testing.T) {
	// Single sample: every quantile is that sample (its bucket upper
	// bound clamps to the exact observed max).
	var one Histogram
	one.Observe(700) // bucket [512,1024)
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := one.Quantile(q); got != 700 {
			t.Fatalf("single-sample Quantile(%g) = %d, want 700", q, got)
		}
	}

	var h Histogram
	h.Observe(3) // bucket [2,4)
	h.Observe(100)
	h.Observe(1000)
	// q=0 still resolves to rank 1 (the smallest sample's bucket), not
	// a zero division or an empty answer.
	if q0 := h.Quantile(0); q0 != 3 {
		t.Fatalf("Quantile(0) = %d, want 3 (bucket [2,4) clamps to max-in-bucket... observed 3)", q0)
	}
	// q=1 is exactly the observed max, not the bucket top (1023).
	if q1 := h.Quantile(1); q1 != 1000 {
		t.Fatalf("Quantile(1) = %d, want the exact observed max 1000", q1)
	}

	// Max-clamp inside a bucket: two samples in [512,1024); p50's
	// bucket top is 1023 but the observed max 600 is tighter.
	var cl Histogram
	cl.Observe(520)
	cl.Observe(600)
	if p50 := cl.Quantile(0.5); p50 != 600 {
		t.Fatalf("Quantile(0.5) = %d, want clamped to observed max 600", p50)
	}
	// ...but the clamp must not apply across buckets: with a later
	// sample in a higher bucket, p50 keeps its own bucket's bound.
	cl.Observe(5000)
	if p50 := cl.Quantile(0.5); p50 != 1023 {
		t.Fatalf("Quantile(0.5) = %d, want bucket top 1023 (max lives in a higher bucket)", p50)
	}
}

func TestHistogramZeroAndEmpty(t *testing.T) {
	var h Histogram
	if h.Quantile(0.5) != 0 || h.Snapshot().Count != 0 {
		t.Fatal("empty histogram not zero")
	}
	h.Observe(0)
	if h.Count() != 1 || h.Quantile(0.99) != 0 {
		t.Fatal("zero sample mishandled")
	}
}

// The detached RankInput path: PhaseSeconds instead of live timers,
// SentMsgs/SentBytes instead of a msg.World -- what the live-telemetry
// sampler feeds BuildReport mid-run.
func TestBuildReportDetachedInputs(t *testing.T) {
	inputs := []RankInput{
		{Counters: diag.Counters{PP: 100},
			PhaseSeconds: map[string]float64{"walk": 2, "treebuild": 1},
			SentMsgs:     5, SentBytes: 1000},
		{Counters: diag.Counters{PP: 60},
			PhaseSeconds: map[string]float64{"walk": 3},
			SentMsgs:     7, SentBytes: 2000},
	}
	rep := BuildReport("live", 200, 1.0, inputs, nil, nil)
	if rep.Totals.Interactions != 160 {
		t.Fatalf("interactions = %d", rep.Totals.Interactions)
	}
	if rep.Totals.Msgs != 12 || rep.Totals.Bytes != 3000 {
		t.Fatalf("detached traffic not totaled: %d/%d", rep.Totals.Msgs, rep.Totals.Bytes)
	}
	if rep.Ranks[1].SentBytes != 2000 || rep.Ranks[0].PhaseSeconds["walk"] != 2 {
		t.Fatalf("rank rows = %+v", rep.Ranks)
	}
	var walk *PhaseBalance
	for i := range rep.Phases {
		if rep.Phases[i].Phase == "walk" {
			walk = &rep.Phases[i]
		}
	}
	if walk == nil || walk.Max != 3 {
		t.Fatalf("phase balance from detached seconds = %+v", rep.Phases)
	}
}

// TraceDropped must surface in the rendered report as a warning.
func TestRenderWarnsOnDroppedTraceEvents(t *testing.T) {
	rep := BuildReport("x", 10, 1.0, []RankInput{{}}, nil, nil)
	rep.TraceDropped = 42
	var b strings.Builder
	rep.Render(&b)
	if !strings.Contains(b.String(), "42 trace events dropped") {
		t.Fatalf("render missing drop warning:\n%s", b.String())
	}
}

// Concurrent updates must be race-free and lose nothing; run under
// -race.
func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("n")
	h := r.Histogram("h")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Add(1)
				h.Observe(uint64(w*1000 + i))
			}
		}(w)
	}
	wg.Wait()
	if c.Value() != 8000 || h.Count() != 8000 {
		t.Fatalf("lost updates: c=%d h=%d", c.Value(), h.Count())
	}
	if h.Snapshot().Max != 7999 {
		t.Fatalf("max = %d", h.Snapshot().Max)
	}
}
