package metrics

import (
	"sync"
	"testing"
)

func TestCounterGaugeNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	c.Add(5)
	if c.Value() != 0 {
		t.Fatal("nil counter holds a value")
	}
	g := r.Gauge("y")
	g.Set(3)
	if g.Value() != 0 {
		t.Fatal("nil gauge holds a value")
	}
	h := r.Histogram("z")
	h.Observe(7)
	if h.Count() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("nil histogram holds samples")
	}
	if r.Values() != nil || r.Snapshots() != nil || r.Names() != nil {
		t.Fatal("nil registry yields data")
	}
	_ = h.Snapshot()
}

func TestRegistryStablePointers(t *testing.T) {
	r := NewRegistry()
	if r.Counter("a") != r.Counter("a") {
		t.Fatal("counter pointer not stable")
	}
	r.Counter("a").Add(2)
	r.Counter("a").Add(3)
	r.Gauge("g").Set(1.5)
	vals := r.Values()
	if vals["a"] != 5 || vals["g"] != 1.5 {
		t.Fatalf("values = %v", vals)
	}
	names := r.Names()
	if len(names) != 2 || names[0] != "a" || names[1] != "g" {
		t.Fatalf("names = %v", names)
	}
}

func TestHistogramBucketsAndQuantiles(t *testing.T) {
	var h Histogram
	// 90 fast samples, 9 medium, 1 slow: the classic stall shape.
	for i := 0; i < 90; i++ {
		h.Observe(100) // bucket [64,128)
	}
	for i := 0; i < 9; i++ {
		h.Observe(10_000)
	}
	h.Observe(1_000_000)
	if h.Count() != 100 {
		t.Fatalf("count = %d", h.Count())
	}
	if p50 := h.Quantile(0.50); p50 < 100 || p50 >= 128 {
		t.Fatalf("p50 = %d, want in [100,128)", p50)
	}
	if p90 := h.Quantile(0.90); p90 < 100 || p90 >= 128 {
		t.Fatalf("p90 = %d (90 of 100 samples are fast)", p90)
	}
	if p99 := h.Quantile(0.99); p99 < 10_000 || p99 >= 16_384 {
		t.Fatalf("p99 = %d, want in [10000,16384)", p99)
	}
	s := h.Snapshot()
	if s.Max != 1_000_000 || s.Sum != 90*100+9*10_000+1_000_000 {
		t.Fatalf("snapshot = %+v", s)
	}
	// The quantile upper bound is clamped to the observed max.
	if q := h.Quantile(1.0); q != 1_000_000 {
		t.Fatalf("p100 = %d", q)
	}
}

func TestHistogramZeroAndEmpty(t *testing.T) {
	var h Histogram
	if h.Quantile(0.5) != 0 || h.Snapshot().Count != 0 {
		t.Fatal("empty histogram not zero")
	}
	h.Observe(0)
	if h.Count() != 1 || h.Quantile(0.99) != 0 {
		t.Fatal("zero sample mishandled")
	}
}

// Concurrent updates must be race-free and lose nothing; run under
// -race.
func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("n")
	h := r.Histogram("h")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Add(1)
				h.Observe(uint64(w*1000 + i))
			}
		}(w)
	}
	wg.Wait()
	if c.Value() != 8000 || h.Count() != 8000 {
		t.Fatalf("lost updates: c=%d h=%d", c.Value(), h.Count())
	}
	if h.Snapshot().Max != 7999 {
		t.Fatalf("max = %d", h.Snapshot().Max)
	}
}
