// RunReport: the one machine-readable artifact every simulation
// command can emit (-metrics run.json). It is the paper's performance
// tables as data -- interaction counts and the 38-flop accounting,
// per-phase wall-clock with load-balance statistics across ranks, the
// NxN communication matrix, request-round counts, and walk-stall
// percentiles -- assembled from the same diag.Counters, diag.Timer
// and msg traffic records the engines already keep, so the report
// always agrees with the counters byte for byte. cmd/perfreport
// renders one (or diffs two) as paper-style tables.
package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"

	"repro/internal/diag"
	"repro/internal/msg"
)

// ReportSchema versions the RunReport JSON layout.
const ReportSchema = 1

// Constants records the flop-accounting constants in force when the
// report was written, next to the numbers they produced.
type Constants struct {
	FlopsPerInteraction    int `json:"flops_per_interaction"`
	FlopsPerQuadrupole     int `json:"flops_per_quadrupole"`
	FlopsPerVortexInteract int `json:"flops_per_vortex_interaction"`
	FlopsPerSPHPair        int `json:"flops_per_sph_pair"`
}

// Totals is the run-wide summary.
type Totals struct {
	Counters     diag.Counters `json:"counters"`
	Interactions uint64        `json:"interactions"`
	Flops        uint64        `json:"flops"`
	// FlopsRate is Flops over the host wall-clock, in flops/s.
	FlopsRate float64 `json:"flops_rate"`
	Msgs      uint64  `json:"msgs"`
	Bytes     uint64  `json:"bytes"`
}

// RankReport is one rank's share.
type RankReport struct {
	Rank         int                         `json:"rank"`
	Counters     diag.Counters               `json:"counters"`
	Flops        uint64                      `json:"flops"`
	PhaseSeconds map[string]float64          `json:"phase_seconds,omitempty"`
	Traffic      map[string]msg.PhaseTraffic `json:"traffic,omitempty"`
	SentMsgs     uint64                      `json:"sent_msgs"`
	SentBytes    uint64                      `json:"sent_bytes"`
	Rounds       int                         `json:"rounds"`
	RemoteCells  int                         `json:"remote_cells"`
}

// PhaseBalance is the load-balance statistics of one phase's
// wall-clock seconds across ranks.
type PhaseBalance struct {
	Phase string `json:"phase"`
	diag.Balance
}

// RunReport is the emitted document.
type RunReport struct {
	Schema      int            `json:"schema"`
	Command     string         `json:"command"`
	NP          int            `json:"np"`
	Bodies      int            `json:"bodies"`
	WallSeconds float64        `json:"wall_seconds"`
	Constants   Constants      `json:"flop_constants"`
	Totals      Totals         `json:"totals"`
	Ranks       []RankReport   `json:"ranks"`
	Phases      []PhaseBalance `json:"phase_balance,omitempty"`
	// Roofline places the run's kernels on a roofline plot; the
	// accounting half is always filled, the machine ceilings only when
	// the renderer calibrates (perfreport -roofline).
	Roofline *Roofline `json:"roofline,omitempty"`
	// Stepping aggregates the per-rank time-integration scheduler
	// accounting (present when the drivers supplied it).
	Stepping *SteppingStats `json:"stepping,omitempty"`
	// Overlap aggregates the walk/eval pipeline's latency-hiding
	// accounting (present when any rank ran with eval workers or
	// prefetch on).
	Overlap *OverlapStats `json:"overlap,omitempty"`
	// TraceDropped counts trace events discarded by full rank rings
	// (trace.Run.Dropped at report time); non-zero means the exported
	// Chrome timeline has holes and should not be read as complete
	// evidence.
	TraceDropped uint64 `json:"trace_dropped,omitempty"`
	// CommMatrix*: row = sending rank, column = destination rank.
	CommMatrixMsgs  [][]uint64                   `json:"comm_matrix_msgs,omitempty"`
	CommMatrixBytes [][]uint64                   `json:"comm_matrix_bytes,omitempty"`
	Metrics         map[string]float64           `json:"metrics,omitempty"`
	Histograms      map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// StallHistogram is the registry name under which the engines record
// deferred-group walk stalls, in nanoseconds from first deferral to
// walk completion.
const StallHistogram = "walk_stall_ns"

// Registry names under which a chaos run records what its fault
// injector actually did (msg.InjectorStats), so a RunReport from a
// chaos soak documents its own perturbation.
const (
	ChaosDelays   = "chaos_delays"
	ChaosReorders = "chaos_reorders"
	ChaosStalls   = "chaos_stalls"
	ChaosCrashes  = "chaos_crashes"
)

// SteppingStats summarizes the time-integration scheduler: how many
// (sub-)steps ran, how many force evaluations were full vs partial,
// and what fraction of the bodies the partial evaluations actually
// computed forces for. ActiveSinks/TotalSinks is the active fraction;
// its inverse is the force-evaluation saving of block timesteps over
// uniform stepping at the finest occupied rung. Mirrors
// integrate.Stats so the report stays decoupled from the integrator.
type SteppingStats struct {
	// Mode is "uniform" or "block"; Eta the block criterion scale.
	Mode           string  `json:"mode"`
	Eta            float64 `json:"eta,omitempty"`
	BigSteps       uint64  `json:"big_steps"`
	SubSteps       uint64  `json:"sub_steps"`
	FullEvals      uint64  `json:"full_evals"`
	PartialEvals   uint64  `json:"partial_evals"`
	ActiveSinks    uint64  `json:"active_sinks"`
	TotalSinks     uint64  `json:"total_sinks"`
	ActiveFraction float64 `json:"active_fraction"`
	// RungOccupancy[r] counts bodies assigned rung r at the
	// synchronization points, summed over the run.
	RungOccupancy []uint64 `json:"rung_occupancy,omitempty"`
}

// OverlapStats summarizes the walk/eval pipeline's latency hiding:
// how much wall time the rank goroutines spent parked in the walk
// collectives, how much eval-worker kernel time there was in total,
// and how much of it ran inside those communication windows -- the
// paper's "keep the FPUs busy while messages are in flight" made
// measurable. OverlapFraction is EvalDuringComm/EvalBusy, the
// fraction of kernel work that was hidden under communication.
// Prefetch accounting rides along: cells speculatively imported,
// how many a walk actually used, and the hit rate.
type OverlapStats struct {
	EvalWorkers           int     `json:"eval_workers"`
	PrefetchDepth         int     `json:"prefetch_depth"`
	CommSeconds           float64 `json:"comm_seconds"`
	EvalBusySeconds       float64 `json:"eval_busy_seconds"`
	EvalDuringCommSeconds float64 `json:"eval_during_comm_seconds"`
	OverlapFraction       float64 `json:"overlap_fraction"`
	// Rounds is the request/reply round count (max across ranks; the
	// rounds are collective, so ranks agree up to partial phases).
	Rounds          int     `json:"rounds"`
	Prefetched      uint64  `json:"prefetched"`
	PrefetchUsed    uint64  `json:"prefetch_used"`
	PrefetchHitRate float64 `json:"prefetch_hit_rate"`
}

// RankInput is what one rank's engine contributes to a report.
type RankInput struct {
	Counters diag.Counters
	Timer    *diag.Timer
	// Sub carries sub-phase breakdowns nested inside Timer's phases
	// (e.g. "treebuild/sort" within treebuild); folded into
	// PhaseSeconds and the balance table under their slash-qualified
	// names.
	Sub         *diag.Timer
	Rounds      int
	RemoteCells int
	// Stepping carries the rank's time-integration scheduler
	// accounting; aggregated across ranks into RunReport.Stepping.
	Stepping *SteppingStats
	// Overlap carries the rank's latency-hiding accounting; aggregated
	// across ranks into RunReport.Overlap.
	Overlap *OverlapStats
	// PhaseSeconds is the detached alternative to Timer/Sub: a plain
	// per-phase seconds map, read only when both timers are nil. The
	// live-telemetry sampler builds reports from copies, not from the
	// ranks' own (still-running) timers.
	PhaseSeconds map[string]float64
	// SentMsgs/SentBytes are the detached alternative to the msg.World
	// traffic lookup, read only when w == nil.
	SentMsgs  uint64
	SentBytes uint64
}

// BuildReport assembles a RunReport from per-rank engine state, the
// message world's traffic records (nil for serial runs), and an
// optional registry of extra metrics. wall is the host wall-clock of
// the instrumented region in seconds.
func BuildReport(command string, bodies int, wall float64, ranks []RankInput, w *msg.World, reg *Registry) *RunReport {
	rep := &RunReport{
		Schema:      ReportSchema,
		Command:     command,
		NP:          len(ranks),
		Bodies:      bodies,
		WallSeconds: wall,
		Constants: Constants{
			FlopsPerInteraction:    diag.FlopsPerInteraction,
			FlopsPerQuadrupole:     diag.FlopsPerQuadrupole,
			FlopsPerVortexInteract: diag.FlopsPerVortexInteract,
			FlopsPerSPHPair:        diag.FlopsPerSPHPair,
		},
		Metrics:    reg.Values(),
		Histograms: reg.Snapshots(),
	}

	phaseOrder := []string{}
	phaseSeen := map[string]bool{}
	for r, in := range ranks {
		rr := RankReport{
			Rank:        r,
			Counters:    in.Counters,
			Flops:       in.Counters.Flops(),
			Rounds:      in.Rounds,
			RemoteCells: in.RemoteCells,
		}
		for _, tm := range []*diag.Timer{in.Timer, in.Sub} {
			if tm == nil {
				continue
			}
			if rr.PhaseSeconds == nil {
				rr.PhaseSeconds = map[string]float64{}
			}
			for _, ph := range tm.Phases() {
				rr.PhaseSeconds[ph] = tm.Get(ph).Seconds()
				if !phaseSeen[ph] {
					phaseSeen[ph] = true
					phaseOrder = append(phaseOrder, ph)
				}
			}
		}
		if in.Timer == nil && in.Sub == nil && len(in.PhaseSeconds) > 0 {
			rr.PhaseSeconds = map[string]float64{}
			names := make([]string, 0, len(in.PhaseSeconds))
			for ph := range in.PhaseSeconds {
				names = append(names, ph)
			}
			sort.Strings(names) // deterministic balance-table order
			for _, ph := range names {
				rr.PhaseSeconds[ph] = in.PhaseSeconds[ph]
				if !phaseSeen[ph] {
					phaseSeen[ph] = true
					phaseOrder = append(phaseOrder, ph)
				}
			}
		}
		if w == nil {
			rr.SentMsgs, rr.SentBytes = in.SentMsgs, in.SentBytes
			rep.Totals.Msgs += in.SentMsgs
			rep.Totals.Bytes += in.SentBytes
		}
		if w != nil {
			t := w.RankTraffic(r)
			rr.Traffic = map[string]msg.PhaseTraffic{}
			for ph, pt := range t.Phases {
				rr.Traffic[ph] = *pt
			}
			tot := t.Total()
			rr.SentMsgs, rr.SentBytes = tot.Msgs, tot.Bytes
		}
		rep.Totals.Counters.Add(in.Counters)
		rep.Ranks = append(rep.Ranks, rr)
		if in.Stepping != nil {
			if rep.Stepping == nil {
				rep.Stepping = &SteppingStats{Mode: in.Stepping.Mode, Eta: in.Stepping.Eta,
					BigSteps: in.Stepping.BigSteps, SubSteps: in.Stepping.SubSteps}
			}
			st := rep.Stepping
			// Steps and evaluations are collective (every rank runs the
			// same schedule); sinks and occupancy are per-rank shares.
			st.FullEvals = in.Stepping.FullEvals
			st.PartialEvals = in.Stepping.PartialEvals
			st.ActiveSinks += in.Stepping.ActiveSinks
			st.TotalSinks += in.Stepping.TotalSinks
			for len(st.RungOccupancy) < len(in.Stepping.RungOccupancy) {
				st.RungOccupancy = append(st.RungOccupancy, 0)
			}
			for r, n := range in.Stepping.RungOccupancy {
				st.RungOccupancy[r] += n
			}
		}
		if in.Overlap != nil {
			if rep.Overlap == nil {
				rep.Overlap = &OverlapStats{
					EvalWorkers:   in.Overlap.EvalWorkers,
					PrefetchDepth: in.Overlap.PrefetchDepth,
				}
			}
			ov := rep.Overlap
			// Seconds and prefetch counts are per-rank shares, summed;
			// rounds are collective, so keep the max.
			ov.CommSeconds += in.Overlap.CommSeconds
			ov.EvalBusySeconds += in.Overlap.EvalBusySeconds
			ov.EvalDuringCommSeconds += in.Overlap.EvalDuringCommSeconds
			ov.Prefetched += in.Overlap.Prefetched
			ov.PrefetchUsed += in.Overlap.PrefetchUsed
			if in.Overlap.Rounds > ov.Rounds {
				ov.Rounds = in.Overlap.Rounds
			}
		}
	}
	if st := rep.Stepping; st != nil && st.TotalSinks > 0 {
		st.ActiveFraction = float64(st.ActiveSinks) / float64(st.TotalSinks)
	}
	if ov := rep.Overlap; ov != nil {
		if ov.EvalBusySeconds > 0 {
			ov.OverlapFraction = ov.EvalDuringCommSeconds / ov.EvalBusySeconds
		}
		if ov.Prefetched > 0 {
			ov.PrefetchHitRate = float64(ov.PrefetchUsed) / float64(ov.Prefetched)
		}
	}
	rep.Totals.Interactions = rep.Totals.Counters.Interactions()
	rep.Totals.Flops = rep.Totals.Counters.Flops()
	if wall > 0 {
		rep.Totals.FlopsRate = float64(rep.Totals.Flops) / wall
	}
	rep.Roofline = NewRoofline(rep.Totals.Flops, rep.Totals.Counters.KernelBytes(), wall)
	if w != nil {
		tot := w.TotalTraffic()
		rep.Totals.Msgs, rep.Totals.Bytes = tot.Msgs, tot.Bytes
		rep.CommMatrixMsgs, rep.CommMatrixBytes = w.CommMatrix()
	}

	for _, ph := range phaseOrder {
		vals := make([]float64, 0, len(ranks))
		for _, rr := range rep.Ranks {
			vals = append(vals, rr.PhaseSeconds[ph])
		}
		rep.Phases = append(rep.Phases, PhaseBalance{Phase: ph, Balance: diag.BalanceOf(vals)})
	}
	return rep
}

// WriteFile writes the report as indented JSON.
func (r *RunReport) WriteFile(path string) error {
	enc, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(enc, '\n'), 0o644)
}

// ReadReport loads a RunReport from a JSON file.
func ReadReport(path string) (*RunReport, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r RunReport
	if err := json.Unmarshal(raw, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &r, nil
}

// Render writes the report as the paper-style tables: headline rate,
// per-rank work and traffic, per-phase balance, the comm matrix, and
// histogram percentiles.
func (r *RunReport) Render(w io.Writer) {
	fmt.Fprintf(w, "RunReport: %s  np=%d  bodies=%d  wall=%.3fs\n",
		r.Command, r.NP, r.Bodies, r.WallSeconds)
	fmt.Fprintf(w, "interactions: %d (pp %d, pc %d, quad %d)\n",
		r.Totals.Interactions, r.Totals.Counters.PP, r.Totals.Counters.PC, r.Totals.Counters.QuadPC)
	fmt.Fprintf(w, "flops: %d at %d/interaction -> %s\n",
		r.Totals.Flops, r.Constants.FlopsPerInteraction, diag.Rate(r.Totals.Flops, r.WallSeconds))
	if r.Totals.Msgs > 0 {
		fmt.Fprintf(w, "traffic: %d msgs, %.3f MB total\n", r.Totals.Msgs, float64(r.Totals.Bytes)/1e6)
	}
	if r.TraceDropped > 0 {
		fmt.Fprintf(w, "WARNING: %d trace events dropped (ring full); timeline is incomplete\n", r.TraceDropped)
	}

	if rf := r.Roofline; rf != nil && rf.KernelBytes > 0 {
		fmt.Fprintf(w, "\nroofline:\n")
		fmt.Fprintf(w, "  kernel flops     %d\n", rf.KernelFlops)
		fmt.Fprintf(w, "  kernel bytes     %d\n", rf.KernelBytes)
		fmt.Fprintf(w, "  intensity        %.2f flops/byte (paper: 38 flops / 32 bytes = 1.19)\n", rf.Intensity)
		fmt.Fprintf(w, "  achieved         %s\n", diag.Rate(uint64(rf.AchievedFlops), 1))
		if rf.PeakFlops > 0 {
			fmt.Fprintf(w, "  peak compute     %s (measured)\n", diag.Rate(uint64(rf.PeakFlops), 1))
			fmt.Fprintf(w, "  peak bandwidth   %.2f GB/s (measured)\n", rf.PeakBandwidth/1e9)
			fmt.Fprintf(w, "  ridge point      %.2f flops/byte\n", rf.RidgeIntensity)
			fmt.Fprintf(w, "  ceiling          %s (%s-bound)\n", diag.Rate(uint64(rf.Ceiling), 1), rf.Bound)
			fmt.Fprintf(w, "  utilization      %.1f%% of roofline ceiling\n", rf.Utilization*100)
		}
	}

	if st := r.Stepping; st != nil {
		fmt.Fprintf(w, "\nstepping (%s", st.Mode)
		if st.Eta > 0 {
			fmt.Fprintf(w, ", eta=%g", st.Eta)
		}
		fmt.Fprintf(w, "):\n")
		fmt.Fprintf(w, "  steps            %d big, %d sub-steps\n", st.BigSteps, st.SubSteps)
		fmt.Fprintf(w, "  force evals      %d full, %d partial\n", st.FullEvals, st.PartialEvals)
		if st.TotalSinks > 0 {
			fmt.Fprintf(w, "  active fraction  %.4f (%d of %d sink evaluations)\n",
				st.ActiveFraction, st.ActiveSinks, st.TotalSinks)
			if st.ActiveFraction > 0 {
				fmt.Fprintf(w, "  eval saving      %.2fx fewer sink evaluations than uniform sub-stepping\n",
					1/st.ActiveFraction)
			}
		}
		if len(st.RungOccupancy) > 0 {
			fmt.Fprintf(w, "  rung occupancy  ")
			for rr, n := range st.RungOccupancy {
				fmt.Fprintf(w, " r%d=%d", rr, n)
			}
			fmt.Fprintln(w)
		}
	}

	if ov := r.Overlap; ov != nil {
		fmt.Fprintf(w, "\noverlap (eval workers=%d, prefetch depth=%d):\n", ov.EvalWorkers, ov.PrefetchDepth)
		fmt.Fprintf(w, "  comm windows     %.4fs (rank time inside walk collectives, all ranks)\n", ov.CommSeconds)
		fmt.Fprintf(w, "  eval busy        %.4fs total kernel time on eval workers\n", ov.EvalBusySeconds)
		fmt.Fprintf(w, "  eval during comm %.4fs (%.1f%% of eval work hidden under communication)\n",
			ov.EvalDuringCommSeconds, ov.OverlapFraction*100)
		fmt.Fprintf(w, "  rounds           %d\n", ov.Rounds)
		if ov.Prefetched > 0 {
			fmt.Fprintf(w, "  prefetch         %d cells, %d used (hit rate %.1f%%, %d wasted)\n",
				ov.Prefetched, ov.PrefetchUsed, ov.PrefetchHitRate*100, ov.Prefetched-ov.PrefetchUsed)
		}
	}

	fmt.Fprintf(w, "\nper-rank work:\n")
	fmt.Fprintf(w, "  %4s %14s %16s %10s %12s %7s %8s\n",
		"rank", "interactions", "flops", "sent msgs", "sent bytes", "rounds", "remote")
	for _, rr := range r.Ranks {
		fmt.Fprintf(w, "  %4d %14d %16d %10d %12d %7d %8d\n",
			rr.Rank, rr.Counters.Interactions(), rr.Flops,
			rr.SentMsgs, rr.SentBytes, rr.Rounds, rr.RemoteCells)
	}

	if len(r.Phases) > 0 {
		fmt.Fprintf(w, "\nphase balance (seconds across ranks; eff = mean/max):\n")
		fmt.Fprintf(w, "  %-14s %10s %10s %10s %10s %6s\n", "phase", "min", "max", "mean", "median", "eff")
		for _, pb := range r.Phases {
			fmt.Fprintf(w, "  %-14s %10.4f %10.4f %10.4f %10.4f %6.2f\n",
				pb.Phase, pb.Min, pb.Max, pb.Mean, pb.Median, pb.Efficiency)
		}
	}

	if len(r.CommMatrixBytes) > 0 {
		fmt.Fprintf(w, "\ncomm matrix (bytes; row = src rank, col = dst rank):\n      ")
		for d := range r.CommMatrixBytes {
			fmt.Fprintf(w, "%12s", fmt.Sprintf("->%d", d))
		}
		fmt.Fprintln(w)
		for s, row := range r.CommMatrixBytes {
			fmt.Fprintf(w, "  r%-3d", s)
			for _, b := range row {
				fmt.Fprintf(w, "%12d", b)
			}
			fmt.Fprintln(w)
		}
	}

	if len(r.Histograms) > 0 {
		fmt.Fprintf(w, "\nhistograms:\n")
		names := make([]string, 0, len(r.Histograms))
		for n := range r.Histograms {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			h := r.Histograms[n]
			fmt.Fprintf(w, "  %-20s n=%d  p50=%d  p90=%d  p99=%d  max=%d\n",
				n, h.Count, h.P50, h.P90, h.P99, h.Max)
		}
	}

	if len(r.Metrics) > 0 {
		fmt.Fprintf(w, "\nmetrics:\n")
		names := make([]string, 0, len(r.Metrics))
		for n := range r.Metrics {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			fmt.Fprintf(w, "  %-24s %g\n", n, r.Metrics[n])
		}
	}
}

// Diff compares two reports (old, new) and writes a delta table. It
// returns true if the new report's flop rate regressed by more than
// tol (fractionally) -- the simulation-level analogue of the
// benchdump ns/op guardrail, so CI can gate on end-to-end throughput.
func Diff(w io.Writer, base, cur *RunReport, tol float64) (regressed bool) {
	fmt.Fprintf(w, "diff: %s (np=%d) -> %s (np=%d)\n", base.Command, base.NP, cur.Command, cur.NP)
	rel := func(a, b float64) float64 {
		if a == 0 {
			return 0
		}
		return b/a - 1
	}
	dRate := rel(base.Totals.FlopsRate, cur.Totals.FlopsRate)
	status := "ok"
	if base.Totals.FlopsRate > 0 && dRate < -tol {
		status = fmt.Sprintf("REGRESSED (< -%0.f%%)", tol*100)
		regressed = true
	}
	fmt.Fprintf(w, "  %-16s %14.3e -> %14.3e  %+6.1f%%  %s\n",
		"flops_rate", base.Totals.FlopsRate, cur.Totals.FlopsRate, dRate*100, status)
	fmt.Fprintf(w, "  %-16s %14d -> %14d  %+6.1f%%\n",
		"interactions", base.Totals.Interactions, cur.Totals.Interactions,
		rel(float64(base.Totals.Interactions), float64(cur.Totals.Interactions))*100)
	fmt.Fprintf(w, "  %-16s %14d -> %14d  %+6.1f%%\n",
		"bytes", base.Totals.Bytes, cur.Totals.Bytes,
		rel(float64(base.Totals.Bytes), float64(cur.Totals.Bytes))*100)
	fmt.Fprintf(w, "  %-16s %14.3f -> %14.3f  %+6.1f%%\n",
		"wall_seconds", base.WallSeconds, cur.WallSeconds,
		rel(base.WallSeconds, cur.WallSeconds)*100)

	basePh := map[string]PhaseBalance{}
	for _, pb := range base.Phases {
		basePh[pb.Phase] = pb
	}
	for _, pb := range cur.Phases {
		if o, ok := basePh[pb.Phase]; ok {
			fmt.Fprintf(w, "  phase %-12s max %8.4fs -> %8.4fs  %+6.1f%%  (eff %.2f -> %.2f)\n",
				pb.Phase, o.Max, pb.Max, rel(o.Max, pb.Max)*100, o.Efficiency, pb.Efficiency)
		}
	}
	return regressed
}
