package direct

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/msg"
	"repro/internal/vec"
)

func randomBodies(n int, seed int64) ([]vec.V3, []float64) {
	rng := rand.New(rand.NewSource(seed))
	pos := make([]vec.V3, n)
	mass := make([]float64, n)
	for i := range pos {
		pos[i] = vec.V3{X: rng.Float64(), Y: rng.Float64(), Z: rng.Float64()}
		mass[i] = rng.Float64() + 0.1
	}
	return pos, mass
}

func TestSerialCounters(t *testing.T) {
	pos, mass := randomBodies(100, 1)
	acc := make([]vec.V3, 100)
	pot := make([]float64, 100)
	ctr := Serial(pos, mass, acc, pot, 1e-4)
	if ctr.PP != 100*99 {
		t.Fatalf("PP = %d", ctr.PP)
	}
	if ctr.Flops() != 100*99*38 {
		t.Fatalf("flops = %d", ctr.Flops())
	}
}

func TestRingMatchesSerial(t *testing.T) {
	const n = 240
	const eps2 = 1e-5
	pos, mass := randomBodies(n, 2)
	wantAcc := make([]vec.V3, n)
	wantPot := make([]float64, n)
	Serial(pos, mass, wantAcc, wantPot, eps2)

	for _, np := range []int{1, 2, 3, 5, 8} {
		gotAcc := make([]vec.V3, n)
		gotPot := make([]float64, n)
		var totalPP uint64
		pps := make([]uint64, np)
		msg.Run(np, func(c *msg.Comm) {
			lo := c.Rank() * n / np
			hi := (c.Rank() + 1) * n / np
			ctr := Ring(c, pos[lo:hi], mass[lo:hi], gotAcc[lo:hi], gotPot[lo:hi], eps2)
			pps[c.Rank()] = ctr.PP
		})
		for _, v := range pps {
			totalPP += v
		}
		if totalPP != n*(n-1) {
			t.Fatalf("np=%d: total PP = %d, want %d", np, totalPP, n*(n-1))
		}
		for i := 0; i < n; i++ {
			if d := gotAcc[i].Sub(wantAcc[i]).Norm(); d > 1e-12*(wantAcc[i].Norm()+1) {
				t.Fatalf("np=%d body %d: acc %v vs %v", np, i, gotAcc[i], wantAcc[i])
			}
			if math.Abs(gotPot[i]-wantPot[i]) > 1e-12*(math.Abs(wantPot[i])+1) {
				t.Fatalf("np=%d body %d: pot", np, i)
			}
		}
	}
}

func TestRingUnevenPartition(t *testing.T) {
	// Ranks with different body counts (including an empty one).
	const eps2 = 1e-5
	pos, mass := randomBodies(10, 3)
	wantAcc := make([]vec.V3, 10)
	wantPot := make([]float64, 10)
	Serial(pos, mass, wantAcc, wantPot, eps2)

	cuts := []int{0, 7, 7, 10} // rank 1 is empty
	gotAcc := make([]vec.V3, 10)
	gotPot := make([]float64, 10)
	msg.Run(3, func(c *msg.Comm) {
		lo, hi := cuts[c.Rank()], cuts[c.Rank()+1]
		Ring(c, pos[lo:hi], mass[lo:hi], gotAcc[lo:hi], gotPot[lo:hi], eps2)
	})
	for i := 0; i < 10; i++ {
		if d := gotAcc[i].Sub(wantAcc[i]).Norm(); d > 1e-12 {
			t.Fatalf("body %d: acc mismatch", i)
		}
	}
}

func TestRingTrafficScalesLinearly(t *testing.T) {
	// Communication volume per rank should be ~32 bytes * N (each
	// rank forwards every block once), the paper's N-vs-N^2 argument.
	const n = 128
	pos, mass := randomBodies(n, 4)
	acc := make([]vec.V3, n)
	pot := make([]float64, n)
	w := msg.Run(4, func(c *msg.Comm) {
		lo := c.Rank() * n / 4
		hi := (c.Rank() + 1) * n / 4
		Ring(c, pos[lo:hi], mass[lo:hi], acc[lo:hi], pot[lo:hi], 1e-4)
	})
	perRank := w.RankTraffic(0).Total()
	wantBytes := uint64(32 * n / 4 * 3) // 3 forwards of 32-body blocks
	if perRank.Bytes != wantBytes {
		t.Fatalf("rank 0 sent %d bytes, want %d", perRank.Bytes, wantBytes)
	}
}

func BenchmarkDirectSerial1k(b *testing.B) {
	pos, mass := randomBodies(1000, 5)
	acc := make([]vec.V3, 1000)
	pot := make([]float64, 1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Serial(pos, mass, acc, pot, 1e-4)
	}
	b.ReportMetric(1000*999*38, "flops/op")
}
