// Package direct implements the O(N^2) solution of the N-body problem
// the paper benchmarks against the treecode: "simply a double loop,
// very easy to parallelize using a ring decomposition". It exists (as
// in the paper) to calibrate raw machine speed and to make the
// algorithmic comparison concrete — the paper's 1-million-body run on
// 6800 processors sustained 635 Gflops and was still ~10^5 times less
// efficient than the treecode.
package direct

import (
	"repro/internal/diag"
	"repro/internal/grav"
	"repro/internal/msg"
	"repro/internal/vec"
)

// Serial computes forces on all bodies by direct summation.
func Serial(pos []vec.V3, mass []float64, acc []vec.V3, pot []float64, eps2 float64) diag.Counters {
	for i := range acc {
		acc[i] = vec.V3{}
		pot[i] = 0
	}
	var ctr diag.Counters
	ctr.PP = grav.PPSelf(pos, mass, acc, pot, eps2)
	return ctr
}

// block is the unit circulated around the ring.
type block struct {
	pos  []vec.V3
	mass []float64
}

// blockBytes is the logical wire size per body in the ring pipeline:
// the paper's 32 bytes (position + mass).
const blockBytes = 32

const ringTag = 11

// Ring computes forces on this rank's bodies with the ring
// decomposition: every rank's block of bodies visits every other rank
// once, so computation scales as (N/P)*N while communication scales
// as N per rank. acc and pot are overwritten.
func Ring(c *msg.Comm, pos []vec.V3, mass []float64, acc []vec.V3, pot []float64, eps2 float64) diag.Counters {
	c.Phase("nsquared")
	for i := range acc {
		acc[i] = vec.V3{}
		pot[i] = 0
	}
	var ctr diag.Counters
	p := c.Size()
	next := (c.Rank() + 1) % p
	prev := (c.Rank() - 1 + p) % p

	cur := block{pos: pos, mass: mass}
	for round := 0; round < p; round++ {
		// Forward the block first so communication overlaps the
		// compute of this round (the paper's pipeline), except on the
		// last round where nothing more is needed.
		if round < p-1 {
			c.Send(next, ringTag, cur, blockBytes*len(cur.pos))
		}
		if round == 0 {
			ctr.PP += grav.PPSelf(cur.pos, cur.mass, acc, pot, eps2)
		} else {
			ctr.PP += grav.PPTile(pos, acc, pot, cur.pos, cur.mass, eps2)
		}
		if round < p-1 {
			m := c.Recv(prev, ringTag)
			cur = m.Data.(block)
		}
	}
	return ctr
}
