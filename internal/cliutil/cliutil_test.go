package cliutil

import (
	"strings"
	"testing"
)

// ok is the baseline every variation below perturbs one field of.
func ok() Flags {
	return Flags{N: 1000, Procs: 4, Steps: 3, DTMode: "uniform", Eta: 0.02}
}

func TestValidateAccepts(t *testing.T) {
	cases := []Flags{
		ok(),
		{N: 1, Procs: 1, Steps: 0}, // minimal, no dtmode flag
		{N: 10, Procs: 2, Steps: 1, DTMode: "block", Eta: 0.02},
		{N: 10, Procs: 2, Steps: 1, EvalWorkers: 4, Prefetch: 2},
		{N: 10, Procs: 2, Steps: 1, Chaos: "seed=7,crash=0.001,crashphase=walk"},
	}
	for i, f := range cases {
		if _, err := f.Validate(); err != nil {
			t.Errorf("case %d %+v: unexpected error %v", i, f, err)
		}
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []struct {
		mutate func(*Flags)
		want   string
	}{
		{func(f *Flags) { f.N = 0 }, "problem size"},
		{func(f *Flags) { f.N = -5 }, "problem size"},
		{func(f *Flags) { f.Procs = 0 }, "-procs"},
		{func(f *Flags) { f.Steps = -1 }, "-steps"},
		{func(f *Flags) { f.DTMode = "adaptive" }, "-dtmode"},
		{func(f *Flags) { f.DTMode = "block"; f.Eta = 0 }, "-eta"},
		{func(f *Flags) { f.EvalWorkers = -1 }, "-evalworkers"},
		{func(f *Flags) { f.Prefetch = -2 }, "-prefetch"},
		{func(f *Flags) { f.Chaos = "crash" }, "-chaos"},
		{func(f *Flags) { f.Chaos = "crash=2" }, "probability"},
		{func(f *Flags) { f.Chaos = "seed=x" }, "seed"},
		{func(f *Flags) { f.Chaos = "frob=0.5" }, "unknown chaos key"},
	}
	for i, c := range cases {
		f := ok()
		c.mutate(&f)
		_, err := f.Validate()
		if err == nil {
			t.Errorf("case %d %+v: expected error", i, f)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("case %d: error %q does not mention %q", i, err, c.want)
		}
		if strings.ContainsRune(err.Error(), '\n') {
			t.Errorf("case %d: usage error is not one line: %q", i, err)
		}
	}
}

func TestParseChaosFields(t *testing.T) {
	inj, err := ParseChaos("seed=9,crash=0.25,crashphase=walk,stall=0.5,stallphase=build,latency=1,reorder=0")
	if err != nil {
		t.Fatal(err)
	}
	if inj.Seed != 9 || inj.CrashProb != 0.25 || inj.CrashPhase != "walk" ||
		inj.StallProb != 0.5 || inj.StallPhase != "build" ||
		inj.LatencyProb != 1 || inj.ReorderProb != 0 {
		t.Fatalf("parsed injector = %+v", inj)
	}
	// Empty fields and surrounding whitespace are tolerated.
	if _, err := ParseChaos(" seed=1 , crash=0.1 ,"); err != nil {
		t.Fatalf("whitespace spec: %v", err)
	}
}
