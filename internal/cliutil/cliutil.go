// Package cliutil is the drivers' shared command-line edge: one
// validator for the flags every simulation driver exposes, and the
// chaos-spec parser that turns "seed=7,crash=0.001" into a
// msg.Injector. Factored here because the four drivers (treebench,
// cosmosim, sphsim, vortexsim) and the simserve job intake must agree
// on what a well-formed run request is -- a bad value produces a
// one-line usage error (exit 2 at the CLI, HTTP 400 at the service),
// never a panic or a hung world (-procs=0 used to divide by zero in
// the slab scatter; negative -steps silently ran nothing).
package cliutil

import (
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/msg"
)

// Flags is the driver-shared subset of a run request. Fields a driver
// does not expose stay at their zero value and are skipped by
// Validate where that is meaningful (DTMode "", Chaos "").
type Flags struct {
	// N is the problem-size flag (-n bodies, -grid lattice, -ntheta
	// ring points -- the count the slab scatter divides by Procs).
	N int
	// Procs is the in-process rank count; the world hangs or divides
	// by zero below 1.
	Procs int
	// Steps is the timestep count; negative is always a spec error
	// (0 is a valid force-only run).
	Steps int
	// DTMode is the stepping scheme ("" = driver has no -dtmode flag).
	DTMode string
	// Eta is the block-timestep criterion scale, checked only when
	// DTMode is "block".
	Eta float64
	// EvalWorkers and Prefetch are the walk/eval pipeline knobs.
	EvalWorkers int
	Prefetch    int
	// Chaos is the fault-injection spec ("" = off).
	Chaos string
}

// Validate checks the request and parses the chaos spec. The returned
// injector is nil when Chaos is empty. The error is a single line fit
// for a usage message.
func (f Flags) Validate() (*msg.Injector, error) {
	if f.N < 1 {
		return nil, fmt.Errorf("problem size must be >= 1 (got %d)", f.N)
	}
	if f.Procs < 1 {
		return nil, fmt.Errorf("-procs must be >= 1 (got %d)", f.Procs)
	}
	if f.Steps < 0 {
		return nil, fmt.Errorf("-steps must be >= 0 (got %d)", f.Steps)
	}
	switch f.DTMode {
	case "", "uniform":
	case "block":
		if f.Eta <= 0 {
			return nil, fmt.Errorf("-eta must be > 0 with -dtmode=block (got %g)", f.Eta)
		}
	default:
		return nil, fmt.Errorf("unknown -dtmode %q (want uniform or block)", f.DTMode)
	}
	if f.EvalWorkers < 0 {
		return nil, fmt.Errorf("-evalworkers must be >= 0 (got %d)", f.EvalWorkers)
	}
	if f.Prefetch < 0 {
		return nil, fmt.Errorf("-prefetch must be >= 0 (got %d)", f.Prefetch)
	}
	if f.Chaos == "" {
		return nil, nil
	}
	inj, err := ParseChaos(f.Chaos)
	if err != nil {
		return nil, fmt.Errorf("-chaos: %v", err)
	}
	return inj, nil
}

// Fail prints prog and the validation error as one line on stderr and
// exits 2 -- the conventional usage-error code, distinct from runtime
// failure (1) and structured world abort (3).
func Fail(prog string, err error) {
	fmt.Fprintf(os.Stderr, "%s: %v\n", prog, err)
	os.Exit(2)
}

// ParseChaos builds a fault injector from a "key=value,..." spec:
// seed (uint), crash/stall/latency/reorder (probabilities in [0,1]),
// crashphase/stallphase (phase labels gating crash/stall).
func ParseChaos(spec string) (*msg.Injector, error) {
	inj := &msg.Injector{}
	for _, kv := range strings.Split(spec, ",") {
		kv = strings.TrimSpace(kv)
		if kv == "" {
			continue
		}
		key, val, ok := strings.Cut(kv, "=")
		if !ok {
			return nil, fmt.Errorf("bad chaos field %q (want key=value)", kv)
		}
		switch key {
		case "crashphase":
			inj.CrashPhase = val
			continue
		case "stallphase":
			inj.StallPhase = val
			continue
		case "seed":
			s, err := strconv.ParseUint(val, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("bad chaos seed %q", val)
			}
			inj.Seed = s
			continue
		}
		p, err := strconv.ParseFloat(val, 64)
		if err != nil || p < 0 || p > 1 {
			return nil, fmt.Errorf("bad chaos probability %q=%q (want [0,1])", key, val)
		}
		switch key {
		case "crash":
			inj.CrashProb = p
		case "stall":
			inj.StallProb = p
		case "latency":
			inj.LatencyProb = p
		case "reorder":
			inj.ReorderProb = p
		default:
			return nil, fmt.Errorf("unknown chaos key %q", key)
		}
	}
	return inj, nil
}
