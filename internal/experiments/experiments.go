// Package experiments reproduces, one function per table or figure,
// every quantitative result in the paper's evaluation. Each function
// runs real code at laptop scale (the full algorithm, smaller N),
// counts work exactly as the paper does (interactions x 38 flops),
// and projects onto the paper's machines with internal/perfmodel.
// The returned structs pair the paper's number with ours so the
// harness (cmd/paperrepro, bench_test.go, EXPERIMENTS.md) can print
// paper-vs-measured rows.
package experiments

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/cosmo"
	"repro/internal/diag"
	"repro/internal/direct"
	"repro/internal/grav"
	"repro/internal/ic"
	"repro/internal/msg"
	"repro/internal/parallel"
	"repro/internal/perfmodel"
	"repro/internal/vec"
	"repro/internal/vortex"
)

// Row is one paper-vs-reproduction comparison.
type Row struct {
	ID       string
	Quantity string
	Paper    float64
	Ours     float64
	Unit     string
	Note     string
}

func (r Row) String() string {
	return fmt.Sprintf("%-5s %-38s paper %12.4g %-8s ours %12.4g %-8s %s",
		r.ID, r.Quantity, r.Paper, r.Unit, r.Ours, r.Unit, r.Note)
}

// Ratio returns ours/paper, the headline "shape" metric.
func (r Row) Ratio() float64 {
	if r.Paper == 0 {
		return 0
	}
	return r.Ours / r.Paper
}

// cosmoSystem builds the scaled sphere-with-buffer CDM initial
// conditions shared by E2/E3/F1/F2.
func cosmoSystem(grid int, seed int64) *core.System {
	r, err := cosmo.NewRealization(cosmo.Params{
		Grid: grid, Box: 1.0, DeltaRMS: 0.25, ShapeGamma: 8, Seed: seed,
	})
	if err != nil {
		panic(err)
	}
	sys, _ := r.ICs()
	// Paper geometry: high-res sphere of diameter 0.8 box, buffer to
	// the box edge (8x mass), mirroring the 160/200 Mpc setup.
	return cosmo.SphereWithBuffer(sys, vec.V3{}, 0.40, 0.50)
}

// runTreecode runs the parallel treecode for steps timesteps on procs
// simulated ranks and returns the total counters plus interactions
// per body per step.
func runTreecode(sys *core.System, procs, steps int, aTol float64) (diag.Counters, float64, float64) {
	n := sys.Len()
	var total diag.Counters
	start := time.Now()
	engines := make([]*parallel.Engine, procs)
	msg.Run(procs, func(c *msg.Comm) {
		local := core.New(0)
		local.EnableDynamics()
		lo, hi := c.Rank()*n/procs, (c.Rank()+1)*n/procs
		for i := lo; i < hi; i++ {
			local.AppendFrom(sys, i)
		}
		e := parallel.New(c, local, parallel.Config{
			MAC:  grav.MACParams{Kind: grav.MACSalmonWarren, AccelTol: aTol, Quad: true},
			Eps2: 1e-6,
		})
		e.ComputeForces()
		for s := 0; s < steps; s++ {
			e.Step(5e-4)
		}
		engines[c.Rank()] = e
	})
	host := time.Since(start).Seconds()
	for _, e := range engines {
		total.Add(e.Counters)
	}
	perBodyStep := float64(total.Interactions()) / float64(n) / float64(steps+1)
	return total, perBodyStep, host
}

// --- E1: the 1M-body O(N^2) benchmark (635 Gflops) ---------------------

// E1Result compares the direct-sum benchmark.
type E1Result struct {
	Rows        []Row
	HostSeconds float64
}

// E1 runs the ring-decomposed O(N^2) solver at a scaled N, verifies
// the interaction count is exactly N(N-1)steps, and projects the
// paper's N = 1e6, 4 steps onto ASCI Red.
func E1(n, procs, steps int) E1Result {
	sys := core.New(n)
	sys.EnableDynamics()
	g := newRand(1)
	for i := 0; i < n; i++ {
		sys.Pos[i] = vec.V3{X: g(), Y: g(), Z: g()}
		sys.Mass[i] = 1.0 / float64(n)
	}
	var pp uint64
	start := time.Now()
	counters := make([]uint64, procs)
	msg.Run(procs, func(c *msg.Comm) {
		lo, hi := c.Rank()*n/procs, (c.Rank()+1)*n/procs
		acc := make([]vec.V3, hi-lo)
		pot := make([]float64, hi-lo)
		for s := 0; s < steps; s++ {
			ctr := direct.Ring(c, sys.Pos[lo:hi], sys.Mass[lo:hi], acc, pot, 1e-6)
			counters[c.Rank()] += ctr.PP
		}
	})
	host := time.Since(start).Seconds()
	for _, v := range counters {
		pp += v
	}

	// Paper's benchmark: counts N*N (not N(N-1)) per step.
	paperFlops := uint64(4) * 38 * 1_000_000 * 1_000_000
	est := perfmodel.ASCIRed.Model(paperFlops, perfmodel.RegimeKernel, msg.PhaseTraffic{})
	hostGflops := float64(pp) * 38 / host / 1e9
	return E1Result{
		HostSeconds: host,
		Rows: []Row{
			{ID: "E1", Quantity: "O(N^2) 1M bodies on ASCI Red", Paper: 635, Ours: est.Gflops, Unit: "Gflops",
				Note: fmt.Sprintf("host run: N=%d, %d ranks, %.0f interactions, %.2f Gflops measured", n, procs, float64(pp), hostGflops)},
			{ID: "E1", Quantity: "O(N^2) benchmark wall-clock", Paper: 239.3, Ours: est.TotalSec, Unit: "s",
				Note: "modeled from counted flops at the calibrated kernel rate"},
		},
	}
}

// --- E2: the 322M-body treecode (430/170 Gflops, 10^5 ratio) -----------

// E2Result compares the big treecode run.
type E2Result struct {
	Rows        []Row
	PerBodyStep float64
}

// E2 runs the scaled cosmology treecode, extrapolates the measured
// interactions-per-body to the paper's N, and models both the 6800-
// processor peak and the 4096-processor sustained phases.
func E2(grid, procs, steps int) E2Result {
	sys := cosmoSystem(grid, 2)
	n := sys.Len()
	_, perBody, _ := runTreecode(sys, procs, steps, 3e-3)

	const paperN = 322_159_436.0
	perBodyPaper := perfmodel.ScaleInteractions(perBody, float64(n), paperN)

	// Peak: 5 steps on 6800 procs; paper counted 7.18e12 interactions.
	peakInter := perBodyPaper * paperN * 5
	est5 := perfmodel.ASCIRed.Model(uint64(peakInter)*38, perfmodel.RegimeTreeEarly, msg.PhaseTraffic{})
	// Sustained: 287 steps on 4096 procs; paper counted 1.52e14.
	susInter := perBodyPaper * paperN * 287
	estS := perfmodel.ASCIRed4096.Model(uint64(susInter)*38, perfmodel.RegimeTreeClustered, msg.PhaseTraffic{})

	return E2Result{
		PerBodyStep: perBody,
		Rows: []Row{
			{ID: "E2b", Quantity: "treecode peak (6800 procs, 5 steps)", Paper: 431, Ours: est5.Gflops, Unit: "Gflops",
				Note: fmt.Sprintf("measured %.0f inter/body/step at N=%d -> %.0f at N=322M (paper: %.0f)",
					perBody, n, perBodyPaper, 7.18e12/paperN/5)},
			{ID: "E2a", Quantity: "treecode sustained (4096 procs)", Paper: 170, Ours: estS.Gflops, Unit: "Gflops",
				Note: fmt.Sprintf("modeled %.1f h for 287 steps (paper 9.4 h)", estS.TotalSec/3600)},
			{ID: "E2c", Quantity: "treecode/N^2 efficiency ratio at 322M", Paper: 1e5,
				Ours: paperN / perBodyPaper, Unit: "x",
				Note: "N interactions/body direct vs measured treecode interactions/body"},
		},
	}
}

// --- E3: Loki's 9.75M-body run (879 Mflops, $58/Mflop) ------------------

// E3 models the Loki run from the same measured treecode profile.
func E3(grid, steps int) []Row {
	sys := cosmoSystem(grid, 3)
	n := sys.Len()
	_, perBody, _ := runTreecode(sys, 16, steps, 3e-3)
	const paperN = 9_753_824.0
	perBodyPaper := perfmodel.ScaleInteractions(perBody, float64(n), paperN)

	// Early: 30 steps (paper counted 1.15e12 interactions, 1.19 Gflops).
	early := perfmodel.Loki.Model(uint64(perBodyPaper*paperN*30)*38, perfmodel.RegimeTreeEarly, msg.PhaseTraffic{})
	// Sustained: 750 steps to April 30 (1.97e13 interactions, 879 Mflops).
	sus := perfmodel.Loki.Model(uint64(perBodyPaper*paperN*750)*38, perfmodel.RegimeTreeClustered, msg.PhaseTraffic{})
	return []Row{
		{ID: "E3", Quantity: "Loki initial 30 steps", Paper: 1.19, Ours: early.Gflops, Unit: "Gflops",
			Note: fmt.Sprintf("measured %.0f inter/body/step at N=%d", perBody, n)},
		{ID: "E3", Quantity: "Loki 10-day sustained", Paper: 0.879, Ours: sus.Gflops, Unit: "Gflops",
			Note: fmt.Sprintf("modeled %.1f days (paper 9.8)", sus.TotalSec/86400)},
		{ID: "E3", Quantity: "Loki price/performance", Paper: 58, Ours: perfmodel.PricePerMflop(perfmodel.Loki.PriceUSD, sus.Gflops*1e3), Unit: "$/Mflop"},
	}
}

// --- E4: Hyglac's vortex ring fusion (950 Mflops) -----------------------

// E4 runs the scaled two-ring fusion, counts kernel flops exactly,
// and models the paper's 20-hour Hyglac run.
func E4(nTheta, nCore, steps int) []Row {
	sys := rings(nTheta, nCore)
	n0 := sys.Len()
	var total diag.Counters
	start := time.Now()
	for s := 0; s < steps; s++ {
		ctr := vortex.Step(sys, 0.12, 0.5, 0.02)
		total.Add(ctr)
		if s == steps/2 {
			sys = vortex.Remesh(sys, 0.06, 1e-4)
		}
	}
	host := time.Since(start).Seconds()
	_ = host
	// Scale to the paper's particle counts (57k -> 360k over 340
	// steps; use the geometric mean 143k for the sustained phase).
	perBodyStep := float64(total.VortexPP) / float64(sys.Len()) / float64(steps)
	paperInterPerStep := perfmodel.ScaleInteractions(perBodyStep, float64(sys.Len()), 143_000) * 143_000
	flops := uint64(paperInterPerStep*340) * diag.FlopsPerVortexInteract
	est := perfmodel.Hyglac.Model(flops, perfmodel.RegimeTreeClustered, msg.PhaseTraffic{})
	// Duration check: feed the paper's own measured flop total
	// (950 Mflops x 20 h) through the machine model -- our scaled run
	// does genuinely less work per body (its cores hold far fewer
	// particles), so the duration validates the model, not the
	// extrapolation.
	paperFlops := uint64(0.950e9 * 20 * 3600)
	durEst := perfmodel.Hyglac.Model(paperFlops, perfmodel.RegimeTreeClustered, msg.PhaseTraffic{})
	return []Row{
		{ID: "E4", Quantity: "Hyglac vortex ring fusion", Paper: 0.950, Ours: est.Gflops, Unit: "Gflops",
			Note: fmt.Sprintf("scaled run: %d->%d particles, %.0f inter/body/step", n0, sys.Len(), perBodyStep)},
		{ID: "E4", Quantity: "ring fusion duration", Paper: 20, Ours: durEst.TotalSec / 3600, Unit: "hours",
			Note: "paper's flop total through the Hyglac machine model"},
	}
}

func rings(nTheta, nCore int) *core.System {
	sys := core.New(0)
	sys.EnableDynamics()
	sys.EnableVortex()
	// Two offset rings with parallel axes: they approach, stretch and
	// merge, as in the Hyglac simulation.
	ic.VortexRing(sys, 1.0, 1.0, 0.12, vec.V3{X: -0.75}, vec.V3{Z: 1}, nTheta, nCore, 41)
	ic.VortexRing(sys, 1.0, 1.0, 0.12, vec.V3{X: 0.75}, vec.V3{Z: 1}, nTheta, nCore, 43)
	return sys
}

// --- E5: SC'96 combined machine (2.19 Gflops, $47/Mflop) ----------------

// E5 models the 10M-body benchmark on the combined 32-processor
// system.
func E5(grid, steps int) []Row {
	sys := cosmoSystem(grid, 5)
	n := sys.Len()
	_, perBody, _ := runTreecode(sys, 32, steps, 3e-3)
	const paperN = 10_000_000.0
	perBodyPaper := perfmodel.ScaleInteractions(perBody, float64(n), paperN)
	// Benchmark: one force evaluation.
	est := perfmodel.SC96.Model(uint64(perBodyPaper*paperN)*38, perfmodel.RegimeTreeEarly, msg.PhaseTraffic{})
	return []Row{
		{ID: "E5", Quantity: "SC'96 Loki+Hyglac benchmark", Paper: 2.19, Ours: est.Gflops, Unit: "Gflops"},
		{ID: "E5", Quantity: "SC'96 price/performance", Paper: 47,
			Ours: perfmodel.PricePerMflop(perfmodel.SC96.PriceUSD, est.Gflops*1e3), Unit: "$/Mflop"},
	}
}

// --- E6: particles updated per second -----------------------------------

// E6 compares update rates of the two algorithms at the paper's scale.
func E6(grid, procs, steps int) []Row {
	sys := cosmoSystem(grid, 6)
	n := sys.Len()
	_, perBody, _ := runTreecode(sys, procs, steps, 3e-3)
	const paperN = 322_159_436.0
	perBodyPaper := perfmodel.ScaleInteractions(perBody, float64(n), paperN)

	treeStep := perfmodel.ASCIRed.Model(uint64(perBodyPaper*paperN)*38, perfmodel.RegimeTreeClustered, msg.PhaseTraffic{})
	treeRate := paperN / treeStep.TotalSec
	directStep := perfmodel.ASCIRed.Model(uint64(paperN*paperN)*38, perfmodel.RegimeKernel, msg.PhaseTraffic{})
	directRate := paperN / directStep.TotalSec
	return []Row{
		{ID: "E6", Quantity: "treecode particle updates/s (322M)", Paper: 3e6, Ours: treeRate, Unit: "1/s"},
		{ID: "E6", Quantity: "N^2 particle updates/s (322M)", Paper: 52, Ours: directRate, Unit: "1/s"},
	}
}

// newRand is a tiny deterministic generator for E1's uniform cloud
// (decoupled from math/rand for stability of recorded outputs).
func newRand(seed uint64) func() float64 {
	s := seed*2862933555777941757 + 3037000493
	return func() float64 {
		s = s*2862933555777941757 + 3037000493
		return float64(s>>11) / float64(1<<53)
	}
}
