package experiments

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/npb"
)

// checkRows asserts the paper-vs-ours ratio is within [lo, hi]: the
// "shape holds" criterion (who wins, roughly by what factor).
func checkRows(t *testing.T, rows []Row, lo, hi float64) {
	t.Helper()
	for _, r := range rows {
		ratio := r.Ratio()
		if ratio < lo || ratio > hi {
			t.Errorf("%s: paper %.4g vs ours %.4g %s (ratio %.2f outside [%.2f, %.2f])",
				r.Quantity, r.Paper, r.Ours, r.Unit, ratio, lo, hi)
		}
	}
}

func TestE1ReproducesDirectBenchmark(t *testing.T) {
	res := E1(3000, 4, 1)
	// The modeled Gflops comes from the calibrated kernel rate, so
	// this is tight.
	checkRows(t, res.Rows, 0.9, 1.1)
	if res.HostSeconds <= 0 {
		t.Fatal("no host measurement")
	}
}

func TestE2TreecodeShape(t *testing.T) {
	res := E2(16, 4, 2)
	// Interactions/body extrapolation carries real uncertainty: the
	// shape criterion is a factor ~2.
	checkRows(t, res.Rows, 0.4, 2.5)
	if res.PerBodyStep < 100 || res.PerBodyStep > 100000 {
		t.Fatalf("implausible interactions/body/step: %v", res.PerBodyStep)
	}
}

func TestE3LokiShape(t *testing.T) {
	checkRows(t, E3(16, 2), 0.4, 2.5)
}

func TestE4VortexShape(t *testing.T) {
	checkRows(t, E4(24, 3, 4), 0.3, 3.0)
}

func TestE5SC96Shape(t *testing.T) {
	checkRows(t, E5(16, 2), 0.4, 2.5)
}

func TestE6UpdateRates(t *testing.T) {
	rows := E6(16, 4, 2)
	checkRows(t, rows, 0.3, 3.0)
	// The treecode must beat N^2 by orders of magnitude.
	var tree, direct float64
	for _, r := range rows {
		if r.Paper == 52 {
			direct = r.Ours
		} else {
			tree = r.Ours
		}
	}
	if tree < 1e4*direct {
		t.Fatalf("treecode rate %.3g not >> direct %.3g", tree, direct)
	}
}

func TestFigureWritesPGM(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fig.pgm")
	if err := Figure(path, 16, 2, 1, 64); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(data[:2]) != "P5" {
		t.Fatal("not a PGM")
	}
}

func TestNPBTable3Shape(t *testing.T) {
	rows := NPBTable3(npb.MiniA)
	if len(rows) != len(npb.Kernels) {
		t.Fatalf("%d rows", len(rows))
	}
	var isRatio, epRatio float64
	for _, r := range rows {
		if !r.Verified {
			t.Errorf("%s failed verification", r.Kernel)
		}
		if r.RedOverLoki < 0.99 {
			t.Errorf("%s: Red (%.1f) modeled slower than Loki (%.1f)", r.Kernel, r.RedMops, r.LokiMops)
		}
		switch r.Kernel {
		case "IS":
			isRatio = r.RedOverLoki
		case "EP":
			epRatio = r.RedOverLoki
		}
	}
	// The paper's Table 3 shape: EP is network-insensitive (Loki ~
	// Red), IS is the bandwidth-hungry outlier where Red wins big.
	if epRatio > 1.6 {
		t.Errorf("EP Red/Loki = %.2f; paper shows near parity", epRatio)
	}
	if isRatio < epRatio {
		t.Errorf("IS Red/Loki (%.2f) should exceed EP's (%.2f)", isRatio, epRatio)
	}
}

func TestNPBTable4Scaling(t *testing.T) {
	tab := NPBTable4(npb.MiniA, []int{1, 2, 4})
	for _, np := range []int{1, 2, 4} {
		if len(tab[np]) != len(npb.Kernels) {
			t.Fatalf("np=%d: %d rows", np, len(tab[np]))
		}
	}
	// Modeled Loki Mop/s should increase with ranks for the
	// compute-heavy kernels (EP at minimum).
	ep := func(np int) float64 {
		for _, r := range tab[np] {
			if r.Kernel == "EP" {
				return r.LokiMops
			}
		}
		return 0
	}
	if !(ep(4) > ep(2) && ep(2) > ep(1)) {
		t.Errorf("EP does not scale on modeled Loki: %v %v %v", ep(1), ep(2), ep(4))
	}
	s := FormatNPBRows(tab[4])
	if len(s) == 0 {
		t.Fatal("empty table")
	}
}
