package experiments

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/grav"
	"repro/internal/msg"
	"repro/internal/npb"
	"repro/internal/parallel"
	"repro/internal/perfmodel"
	"repro/internal/render"
	"repro/internal/vec"
)

// Figure renders the log-density projection of a scaled cosmology run
// after some evolution, reproducing Figures 1 (Red-scale parameters)
// and 2 (Loki-scale) qualitatively.
//
// Note the projected system is the *initial* conditions when steps is
// zero; with steps > 0 the treecode evolves a copy first, so clumping
// (the figures' dark-matter halos) shows up.
func Figure(path string, grid, procs, steps, pixels int) error {
	sys := cosmoSystem(grid, 9)
	if steps > 0 {
		// runTreecode redistributes bodies across simulated ranks but
		// the engines share the same global set; evolve in place by
		// collecting every rank's final bodies.
		evolved := evolveForFigure(sys, procs, steps)
		sys = evolved
	}
	img := render.Project(sys, vec.V3{}, 0.55, pixels, pixels)
	return img.WritePGM(path)
}

func evolveForFigure(sys *core.System, procs, steps int) *core.System {
	n := sys.Len()
	engines := make([]*parallel.Engine, procs)
	msg.Run(procs, func(c *msg.Comm) {
		local := core.New(0)
		local.EnableDynamics()
		lo, hi := c.Rank()*n/procs, (c.Rank()+1)*n/procs
		for i := lo; i < hi; i++ {
			local.AppendFrom(sys, i)
		}
		e := parallel.New(c, local, parallel.Config{
			MAC:  grav.MACParams{Kind: grav.MACSalmonWarren, AccelTol: 3e-3, Quad: true},
			Eps2: 1e-6,
		})
		e.ComputeForces()
		for s := 0; s < steps; s++ {
			e.Step(5e-4)
		}
		engines[c.Rank()] = e
	})
	out := core.New(0)
	out.EnableDynamics()
	for _, e := range engines {
		for i := 0; i < e.Sys.Len(); i++ {
			out.AppendFrom(e.Sys, i)
		}
	}
	return out
}

// NPBTable runs the NPB suite at the given rank count and attaches
// modeled Mop/s on Loki and ASCI Red: the reproduction of Table 3
// (16 ranks, miniB) and Table 4 / Figure 3 (rank sweep, miniA).
type NPBRow struct {
	Kernel      string
	Ranks       int
	HostMops    float64
	LokiMops    float64
	RedMops     float64
	RedOverLoki float64
	Verified    bool
}

// ClassScale inflates the mini-problem op counts and data volumes to
// the regime of the paper's Class B problems before modeling machine
// time: NPB Class B is ~512-1000x our mini sizes, and without the
// scaling every kernel would sit in the latency-dominated corner that
// real Class B runs only reach on the IS kernel. Message *counts*
// (collective rounds, alltoall fan-out) do not grow with class, so
// they are left unscaled.
const ClassScale = 512

// byteExponent gives each kernel's communication-growth law: data-
// moving kernels (transposes, key exchange, vector gathers) carry
// bytes proportional to the problem volume; halo-exchange kernels
// (LU, MG) carry surface terms ~ volume^(2/3); EP's reduction is
// size-independent.
var byteExponent = map[string]float64{
	"EP": 0, "IS": 1, "FT": 1, "BT": 1, "SP": 1, "CG": 1,
	"LU": 2.0 / 3.0, "MG": 2.0 / 3.0,
}

// NPBTable3 reproduces Table 3's shape: per-kernel Mop/s on Loki vs
// ASCI Red at 16 processors.
func NPBTable3(sizes npb.Sizes) []NPBRow {
	return npbRows(16, sizes)
}

// NPBTable4 reproduces Table 4 / Figure 3: the rank sweep on Loki.
func NPBTable4(sizes npb.Sizes, ranks []int) map[int][]NPBRow {
	out := make(map[int][]NPBRow)
	for _, np := range ranks {
		out[np] = npbRows(np, sizes)
	}
	return out
}

func npbRows(np int, sizes npb.Sizes) []NPBRow {
	results := npb.RunSuite(np, sizes)
	rows := make([]NPBRow, len(results))
	for i, r := range results {
		bScale := math.Pow(ClassScale, byteExponent[r.Kernel])
		comm := msg.PhaseTraffic{Msgs: r.CommMsgs, Bytes: uint64(float64(r.CommBytes) * bScale)}
		ops := r.Ops * ClassScale
		// Model compute time from the op count at the machines'
		// scalar rate (NPB ops are mixed flops; use the same kernel
		// rate for both machines -- identical CPUs -- so the network
		// term is what differentiates them, as the paper found).
		lokiM := scaledMachine(perfmodel.Loki, np)
		redM := scaledMachine(perfmodel.ASCIRed, np)
		loki := lokiM.Model(ops, perfmodel.RegimeKernel, comm)
		red := redM.Model(ops, perfmodel.RegimeKernel, comm)
		rows[i] = NPBRow{
			Kernel:   r.Kernel,
			Ranks:    np,
			HostMops: r.Mops(),
			LokiMops: float64(ops) / loki.TotalSec / 1e6,
			RedMops:  float64(ops) / red.TotalSec / 1e6,
			Verified: r.Verified,
		}
		if rows[i].LokiMops > 0 {
			rows[i].RedOverLoki = rows[i].RedMops / rows[i].LokiMops
		}
	}
	return rows
}

// scaledMachine returns a copy of m with np processors (the paper's
// Table 3 compares 16-processor slices of both machines).
func scaledMachine(m perfmodel.Machine, np int) *perfmodel.Machine {
	m.Nodes = np
	m.ProcsPerNode = 1
	return &m
}

// FormatNPBRows renders rows like the paper's Table 3.
func FormatNPBRows(rows []NPBRow) string {
	s := fmt.Sprintf("%-3s %6s %12s %12s %12s %10s\n", "Krn", "Ranks", "Host Mop/s", "Loki Mop/s", "Red Mop/s", "Red/Loki")
	for _, r := range rows {
		s += fmt.Sprintf("%-3s %6d %12.1f %12.1f %12.1f %10.2f\n",
			r.Kernel, r.Ranks, r.HostMops, r.LokiMops, r.RedMops, r.RedOverLoki)
	}
	return s
}
