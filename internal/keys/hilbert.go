package keys

import "repro/internal/vec"

// Hilbert ordering is provided as an alternative space-filling curve
// for the domain decomposition ablation. The tree name space itself
// is always Morton (key arithmetic requires it); Hilbert keys are used
// only to order bodies before splitting work among processors, where
// the curve's better locality can reduce boundary communication.
//
// The conversion uses Skilling's transpose algorithm (AIP Conf. Proc.
// 707, 2004): coordinates are transformed in place into the
// "transposed" Hilbert index, whose bit-interleaving is the index.

// HilbertFromCoords returns the Hilbert-curve key for integer
// coordinates in [0, 2^MaxLevel), with the same placeholder-bit
// format as Morton body keys so the two orderings are interchangeable
// in the decomposition code.
func HilbertFromCoords(x, y, z uint32) Key {
	X := [3]uint32{x, y, z}
	axesToTranspose(&X, coordBits)
	body := spread1By2(uint64(X[0]))<<2 | spread1By2(uint64(X[1]))<<1 | spread1By2(uint64(X[2]))
	return Key(body) | 1<<uint(3*MaxLevel)
}

// HilbertKeyOf returns the Hilbert key of position p within domain d.
func (d Domain) HilbertKeyOf(p vec.V3) Key {
	return HilbertFromCoords(d.quant(p.X, d.Origin.X), d.quant(p.Y, d.Origin.Y), d.quant(p.Z, d.Origin.Z))
}

// axesToTranspose converts coordinates into the transposed Hilbert
// index in place (Skilling 2004).
func axesToTranspose(X *[3]uint32, b int) {
	const n = 3
	M := uint32(1) << uint(b-1)
	// Inverse undo excess work.
	for Q := M; Q > 1; Q >>= 1 {
		P := Q - 1
		for i := 0; i < n; i++ {
			if X[i]&Q != 0 {
				X[0] ^= P
			} else {
				t := (X[0] ^ X[i]) & P
				X[0] ^= t
				X[i] ^= t
			}
		}
	}
	// Gray encode.
	for i := 1; i < n; i++ {
		X[i] ^= X[i-1]
	}
	t := uint32(0)
	for Q := M; Q > 1; Q >>= 1 {
		if X[n-1]&Q != 0 {
			t ^= Q - 1
		}
	}
	for i := 0; i < n; i++ {
		X[i] ^= t
	}
}

// transposeToAxes is the inverse of axesToTranspose; used by tests to
// verify the mapping is a bijection.
func transposeToAxes(X *[3]uint32, b int) {
	const n = 3
	N := uint32(2) << uint(b-1)
	// Gray decode by H ^ (H/2).
	t := X[n-1] >> 1
	for i := n - 1; i > 0; i-- {
		X[i] ^= X[i-1]
	}
	X[0] ^= t
	// Undo excess work.
	for Q := uint32(2); Q != N; Q <<= 1 {
		P := Q - 1
		for i := n - 1; i >= 0; i-- {
			if X[i]&Q != 0 {
				X[0] ^= P
			} else {
				tt := (X[0] ^ X[i]) & P
				X[0] ^= tt
				X[i] ^= tt
			}
		}
	}
}
