package keys

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/vec"
)

func TestRootProperties(t *testing.T) {
	if Root.Level() != 0 {
		t.Fatalf("root level = %d", Root.Level())
	}
	if Root.Parent() != Invalid {
		t.Fatalf("root parent = %v", Root.Parent())
	}
	if !Root.Valid() {
		t.Fatal("root should be valid")
	}
	if Invalid.Valid() {
		t.Fatal("invalid key should not be valid")
	}
}

func TestChildParentRoundTrip(t *testing.T) {
	k := Root
	for level := 1; level <= MaxLevel; level++ {
		oct := level % 8
		c := k.Child(oct)
		if c.Level() != level {
			t.Fatalf("level %d: child level = %d", level, c.Level())
		}
		if c.Parent() != k {
			t.Fatalf("level %d: parent mismatch", level)
		}
		if c.Octant() != oct {
			t.Fatalf("level %d: octant = %d want %d", level, c.Octant(), oct)
		}
		if !k.Contains(c) {
			t.Fatalf("level %d: parent does not contain child", level)
		}
		if c.Contains(k) {
			t.Fatalf("level %d: child contains parent", level)
		}
		k = c
	}
}

func TestCoordsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 2000; i++ {
		level := rng.Intn(MaxLevel + 1)
		max := uint32(1) << uint(level)
		x, y, z := rng.Uint32()%max, rng.Uint32()%max, rng.Uint32()%max
		if level == 0 {
			x, y, z = 0, 0, 0
		}
		k := FromCoords(x, y, z, level)
		if !k.Valid() {
			t.Fatalf("FromCoords(%d,%d,%d,%d) invalid", x, y, z, level)
		}
		gx, gy, gz, gl := k.Coords()
		if gx != x || gy != y || gz != z || gl != level {
			t.Fatalf("round trip (%d,%d,%d,%d) -> (%d,%d,%d,%d)", x, y, z, level, gx, gy, gz, gl)
		}
	}
}

// Property: Morton order preserves the containment interval structure:
// all body keys inside a cell lie in [MinBody, MaxBody].
func TestBodyRangeProperty(t *testing.T) {
	f := func(xa, ya, za uint32, lvl uint8) bool {
		level := int(lvl) % (MaxLevel + 1)
		max := uint32(1) << uint(level)
		x, y, z := xa%max, ya%max, za%max
		if level == 0 {
			x, y, z = 0, 0, 0
		}
		cell := FromCoords(x, y, z, level)
		lo, hi := cell.MinBody(), cell.MaxBody()
		if lo.Level() != MaxLevel || hi.Level() != MaxLevel {
			return false
		}
		if !cell.Contains(lo) || !cell.Contains(hi) {
			return false
		}
		// A body just outside must not be contained.
		if lo > 1<<63 { // lo-1 still a body key
			if cell.Contains(lo - 1) {
				return false
			}
		}
		return lo <= hi
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestAncestorAt(t *testing.T) {
	k := FromCoords(123456, 654321, 111111, MaxLevel)
	for l := 0; l <= MaxLevel; l++ {
		a := k.AncestorAt(l)
		if a.Level() != l {
			t.Fatalf("AncestorAt(%d).Level() = %d", l, a.Level())
		}
		if !a.Contains(k) {
			t.Fatalf("AncestorAt(%d) does not contain key", l)
		}
	}
	if k.AncestorAt(0) != Root {
		t.Fatal("level-0 ancestor should be root")
	}
}

func TestCommonAncestor(t *testing.T) {
	a := Root.Child(0).Child(1).Child(2)
	b := Root.Child(0).Child(1).Child(5)
	if got := CommonAncestor(a, b); got != Root.Child(0).Child(1) {
		t.Fatalf("CommonAncestor = %v", got)
	}
	c := Root.Child(7)
	if got := CommonAncestor(a, c); got != Root {
		t.Fatalf("CommonAncestor across root = %v", got)
	}
	if got := CommonAncestor(a, a); got != a {
		t.Fatalf("CommonAncestor(a,a) = %v", got)
	}
	// Different levels: ancestor of both.
	if got := CommonAncestor(a, a.Parent()); got != a.Parent() {
		t.Fatalf("CommonAncestor(a,parent) = %v", got)
	}
}

func TestDomainKeyOf(t *testing.T) {
	d := Domain{Origin: vec.V3{X: -1, Y: -1, Z: -1}, Size: 2}
	// The lower corner maps to key with coords (0,0,0).
	k := d.KeyOf(vec.V3{X: -1, Y: -1, Z: -1})
	x, y, z, _ := k.Coords()
	if x != 0 || y != 0 || z != 0 {
		t.Fatalf("lower corner coords = %d,%d,%d", x, y, z)
	}
	// The upper corner clamps to coordMax.
	k = d.KeyOf(vec.V3{X: 1, Y: 1, Z: 1})
	x, y, z, _ = k.Coords()
	if x != coordMax || y != coordMax || z != coordMax {
		t.Fatalf("upper corner coords = %d,%d,%d", x, y, z)
	}
	// Out-of-domain positions clamp rather than wrap.
	k = d.KeyOf(vec.V3{X: 100, Y: -100, Z: 0})
	x, y, z, _ = k.Coords()
	if x != coordMax || y != 0 {
		t.Fatalf("clamped coords = %d,%d,%d", x, y, z)
	}
}

// Property: Morton order of keys respects spatial octant order at the
// top level: points in the lower x half always sort before points in
// the upper x half when y,z octant bits agree.
func TestMortonSpatialOrder(t *testing.T) {
	d := Domain{Origin: vec.V3{}, Size: 1}
	lo := d.KeyOf(vec.V3{X: 0.1, Y: 0.1, Z: 0.1})
	hi := d.KeyOf(vec.V3{X: 0.9, Y: 0.1, Z: 0.1})
	if lo >= hi {
		t.Fatal("x-order violated at top level")
	}
}

func TestCellCenter(t *testing.T) {
	d := Domain{Origin: vec.V3{X: 0, Y: 0, Z: 0}, Size: 8}
	c, s := d.CellCenter(Root)
	if s != 8 {
		t.Fatalf("root size = %v", s)
	}
	if c != (vec.V3{X: 4, Y: 4, Z: 4}) {
		t.Fatalf("root center = %v", c)
	}
	// Child 7 (x=1,y=1,z=1) is the upper octant.
	c, s = d.CellCenter(Root.Child(7))
	if s != 4 {
		t.Fatalf("child size = %v", s)
	}
	if c != (vec.V3{X: 6, Y: 6, Z: 6}) {
		t.Fatalf("child 7 center = %v", c)
	}
	c, _ = d.CellCenter(Root.Child(0))
	if c != (vec.V3{X: 2, Y: 2, Z: 2}) {
		t.Fatalf("child 0 center = %v", c)
	}
}

func TestNewDomainContainsAll(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	pos := make([]vec.V3, 500)
	for i := range pos {
		pos[i] = vec.V3{X: rng.NormFloat64() * 10, Y: rng.NormFloat64(), Z: rng.NormFloat64() * 3}
	}
	d := NewDomain(pos)
	for _, p := range pos {
		f := p.Sub(d.Origin)
		if f.X < 0 || f.Y < 0 || f.Z < 0 || f.X >= d.Size || f.Y >= d.Size || f.Z >= d.Size {
			t.Fatalf("position %v outside domain %+v", p, d)
		}
	}
	// Degenerate inputs.
	if d := NewDomain(nil); d.Size <= 0 {
		t.Fatal("empty domain must have positive size")
	}
	if d := NewDomain([]vec.V3{{X: 1, Y: 1, Z: 1}}); d.Size <= 0 {
		t.Fatal("single-point domain must have positive size")
	}
}

func TestHilbertBijection(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 2000; i++ {
		x := rng.Uint32() & coordMax
		y := rng.Uint32() & coordMax
		z := rng.Uint32() & coordMax
		X := [3]uint32{x, y, z}
		axesToTranspose(&X, coordBits)
		transposeToAxes(&X, coordBits)
		if X != [3]uint32{x, y, z} {
			t.Fatalf("Hilbert transpose not invertible at (%d,%d,%d): got %v", x, y, z, X)
		}
	}
}

// Property: consecutive Hilbert-ordered cells are spatially adjacent
// (the defining locality property of the Hilbert curve). Checked at a
// coarse 4-bit resolution by full enumeration.
func TestHilbertAdjacency(t *testing.T) {
	const b = 4
	const n = 1 << b
	type pt struct{ x, y, z uint32 }
	order := make(map[uint64]pt, n*n*n)
	for x := uint32(0); x < n; x++ {
		for y := uint32(0); y < n; y++ {
			for z := uint32(0); z < n; z++ {
				X := [3]uint32{x, y, z}
				axesToTranspose(&X, b)
				// Build the index by interleaving the transposed bits.
				var idx uint64
				for bit := b - 1; bit >= 0; bit-- {
					for i := 0; i < 3; i++ {
						idx = idx<<1 | uint64(X[i]>>uint(bit)&1)
					}
				}
				order[idx] = pt{x, y, z}
			}
		}
	}
	if len(order) != n*n*n {
		t.Fatalf("Hilbert index not a bijection: %d distinct indices", len(order))
	}
	idxs := make([]uint64, 0, len(order))
	for i := range order {
		idxs = append(idxs, i)
	}
	sort.Slice(idxs, func(i, j int) bool { return idxs[i] < idxs[j] })
	for i := 1; i < len(idxs); i++ {
		a, b2 := order[idxs[i-1]], order[idxs[i]]
		d := absDiff(a.x, b2.x) + absDiff(a.y, b2.y) + absDiff(a.z, b2.z)
		if d != 1 {
			t.Fatalf("non-adjacent consecutive Hilbert cells: %+v -> %+v", a, b2)
		}
	}
}

func absDiff(a, b uint32) uint32 {
	if a > b {
		return a - b
	}
	return b - a
}

func TestHilbertKeyFormat(t *testing.T) {
	k := HilbertFromCoords(1, 2, 3)
	if !k.Valid() || k.Level() != MaxLevel {
		t.Fatalf("Hilbert key has wrong format: level %d", k.Level())
	}
	d := Domain{Origin: vec.V3{}, Size: 1}
	k2 := d.HilbertKeyOf(vec.V3{X: 0.5, Y: 0.25, Z: 0.75})
	if !k2.Valid() || k2.Level() != MaxLevel {
		t.Fatalf("HilbertKeyOf wrong format: level %d", k2.Level())
	}
}

func BenchmarkKeyFromPos(b *testing.B) {
	d := Domain{Origin: vec.V3{}, Size: 1}
	p := vec.V3{X: 0.123, Y: 0.456, Z: 0.789}
	var sink Key
	for i := 0; i < b.N; i++ {
		sink ^= d.KeyOf(p)
	}
	_ = sink
}

func BenchmarkHilbertKey(b *testing.B) {
	d := Domain{Origin: vec.V3{}, Size: 1}
	p := vec.V3{X: 0.123, Y: 0.456, Z: 0.789}
	var sink Key
	for i := 0; i < b.N; i++ {
		sink ^= d.HilbertKeyOf(p)
	}
	_ = sink
}
