// Package keys implements the Morton-ordered key scheme at the heart
// of the hashed oct-tree: every body and every cell is named by a
// 64-bit key formed from the interleaved bits of its coordinates with
// a leading placeholder bit, so that the key itself encodes both the
// position and the depth of a tree node. Key arithmetic (parent,
// child, ancestor, containment) is pure bit manipulation, which is
// what lets the distributed tree use a single global name space: any
// processor can compute the key of any cell without communication.
//
// Conventions, following Warren & Salmon (Supercomputing '93):
//
//   - Coordinates are scaled to [0,1)^3 over the root cell and
//     quantized to MaxLevel = 21 bits per dimension.
//   - A key at tree level L has exactly 1 + 3L significant bits: the
//     placeholder 1 followed by one octant digit (3 bits) per level.
//   - The root key is 1. A body key is a level-21 key (64 bits with
//     the placeholder at bit 63).
//   - Octant digits are packed x-major: bit 2 of a digit is the x
//     bit, bit 1 is y, bit 0 is z.
package keys

import (
	"math/bits"

	"repro/internal/vec"
)

// Key is a Morton key with placeholder bit.
type Key uint64

// MaxLevel is the deepest tree level representable: 21 octant digits
// plus the placeholder bit fill 64 bits.
const MaxLevel = 21

// Root is the key of the root cell.
const Root Key = 1

// Invalid is the zero Key, which names no cell (every valid key has
// its placeholder bit set).
const Invalid Key = 0

// coordBits is the per-dimension quantization.
const coordBits = MaxLevel

// coordMax is the largest quantized coordinate value.
const coordMax = 1<<coordBits - 1

// Valid reports whether k is a structurally valid key: nonzero and
// with a bit length of the form 1+3L.
func (k Key) Valid() bool {
	if k == 0 {
		return false
	}
	return (bits.Len64(uint64(k))-1)%3 == 0
}

// Level returns the tree level of k (0 for the root).
func (k Key) Level() int {
	return (bits.Len64(uint64(k)) - 1) / 3
}

// Parent returns the key of k's parent cell. The parent of the root
// is Invalid.
func (k Key) Parent() Key {
	if k <= Root {
		return Invalid
	}
	return k >> 3
}

// Child returns the key of k's child in the given octant (0..7).
func (k Key) Child(octant int) Key {
	return k<<3 | Key(octant&7)
}

// Octant returns which child of its parent k is (0..7).
func (k Key) Octant() int { return int(k & 7) }

// AncestorAt returns k's ancestor at the given level. It panics if
// level exceeds k's own level.
func (k Key) AncestorAt(level int) Key {
	d := k.Level() - level
	if d < 0 {
		panic("keys: AncestorAt level below key")
	}
	return k >> uint(3*d)
}

// Contains reports whether cell k is b itself or an ancestor of b.
func (k Key) Contains(b Key) bool {
	d := b.Level() - k.Level()
	if d < 0 {
		return false
	}
	return b>>uint(3*d) == k
}

// MinBody returns the smallest body-level (level MaxLevel) key inside
// cell k, i.e. the key of k's lower corner.
func (k Key) MinBody() Key {
	return k << uint(3*(MaxLevel-k.Level()))
}

// MaxBody returns the largest body-level key inside cell k.
func (k Key) MaxBody() Key {
	s := uint(3 * (MaxLevel - k.Level()))
	return k<<s | (1<<s - 1)
}

// Coords returns the integer coordinates of k's lower corner at k's
// own level resolution, plus the level. The coordinates range over
// [0, 2^level).
func (k Key) Coords() (x, y, z uint32, level int) {
	level = k.Level()
	body := uint64(k) &^ (1 << uint(3*level)) // strip placeholder
	x = compact1By2(body >> 2)
	y = compact1By2(body >> 1)
	z = compact1By2(body)
	return x, y, z, level
}

// FromCoords builds the key at the given level from integer
// coordinates in [0, 2^level).
func FromCoords(x, y, z uint32, level int) Key {
	body := spread1By2(uint64(x))<<2 | spread1By2(uint64(y))<<1 | spread1By2(uint64(z))
	return Key(body) | 1<<uint(3*level)
}

// Domain describes the cubic root cell of a simulation.
type Domain struct {
	Origin vec.V3  // lower corner
	Size   float64 // edge length
}

// NewDomain returns a cubic domain that contains all the given
// positions with a small safety margin, so that quantization never
// lands exactly on the upper boundary.
func NewDomain(pos []vec.V3) Domain {
	if len(pos) == 0 {
		return Domain{Origin: vec.V3{X: 0, Y: 0, Z: 0}, Size: 1}
	}
	lo, hi := pos[0], pos[0]
	for _, p := range pos[1:] {
		lo = vec.Min(lo, p)
		hi = vec.Max(hi, p)
	}
	span := hi.Sub(lo)
	size := span.MaxAbs()
	if size == 0 {
		size = 1
	}
	size *= 1.0 + 1e-6
	return Domain{Origin: lo, Size: size}
}

// KeyOf returns the body-level key of position p within the domain.
// Positions outside the domain are clamped to the boundary.
func (d Domain) KeyOf(p vec.V3) Key {
	return FromCoords(d.quant(p.X, d.Origin.X), d.quant(p.Y, d.Origin.Y), d.quant(p.Z, d.Origin.Z), MaxLevel)
}

func (d Domain) quant(x, o float64) uint32 {
	f := (x - o) / d.Size
	q := int64(f * (1 << coordBits))
	if q < 0 {
		q = 0
	}
	if q > coordMax {
		q = coordMax
	}
	return uint32(q)
}

// CellCenter returns the center position and edge length of cell k.
func (d Domain) CellCenter(k Key) (center vec.V3, size float64) {
	x, y, z, level := k.Coords()
	size = d.Size / float64(uint64(1)<<uint(level))
	center = vec.V3{
		X: d.Origin.X + (float64(x)+0.5)*size,
		Y: d.Origin.Y + (float64(y)+0.5)*size,
		Z: d.Origin.Z + (float64(z)+0.5)*size,
	}
	return center, size
}

// spread1By2 spaces the low 21 bits of v three apart:
// ...abc -> ..a..b..c.
func spread1By2(v uint64) uint64 {
	v &= 0x1FFFFF
	v = (v | v<<32) & 0x1F00000000FFFF
	v = (v | v<<16) & 0x1F0000FF0000FF
	v = (v | v<<8) & 0x100F00F00F00F00F
	v = (v | v<<4) & 0x10C30C30C30C30C3
	v = (v | v<<2) & 0x1249249249249249
	return v
}

// compact1By2 is the inverse of spread1By2.
func compact1By2(v uint64) uint32 {
	v &= 0x1249249249249249
	v = (v ^ v>>2) & 0x10C30C30C30C30C3
	v = (v ^ v>>4) & 0x100F00F00F00F00F
	v = (v ^ v>>8) & 0x1F0000FF0000FF
	v = (v ^ v>>16) & 0x1F00000000FFFF
	v = (v ^ v>>32) & 0x1FFFFF
	return uint32(v)
}

// CommonAncestor returns the deepest cell containing both a and b.
func CommonAncestor(a, b Key) Key {
	la, lb := a.Level(), b.Level()
	if la > lb {
		a = a.AncestorAt(lb)
		la = lb
	} else if lb > la {
		b = b.AncestorAt(la)
	}
	for a != b {
		a >>= 3
		b >>= 3
	}
	return a
}
