// Package snapio implements particle snapshot I/O the way the paper's
// runs needed it: binary records addressed with explicit 64-bit
// offsets ("since each data file exceeds 2^31 bytes, several I/O
// routines in our code had to be extended to support 64-bit
// integers"), striped across multiple files/disks (Loki wrote each
// 312 MB snapshot striped over its 16 disks at >50 MB/s aggregate),
// and checksummed headers so a restart can trust what it reads.
package snapio

import (
	"encoding/binary"
	"fmt"
	"hash/crc64"
	"io"
	"math"
	"os"
	"path/filepath"

	"repro/internal/core"
	"repro/internal/vec"
)

// Magic identifies a snapshot stripe file.
const Magic = 0x484F545F534E4150 // "HOT_SNAP"

// Version is the on-disk format version.
const Version = 1

// recordBytes is the fixed size of one body record: pos(24) vel(24)
// mass(8) id(8).
const recordBytes = 64

// headerBytes is the fixed stripe header size.
const headerBytes = 64

var crcTable = crc64.MakeTable(crc64.ECMA)

// Header describes one stripe file.
type Header struct {
	Magic   uint64
	Version uint32
	Stripe  uint32 // index of this stripe
	Stripes uint32 // total stripes in the set
	_       uint32 // padding
	// NTotal is the global body count across all stripes; NLocal the
	// records in this file. Both 64-bit: snapshot sets larger than
	// 2^31 bodies are addressable.
	NTotal, NLocal int64
	// Offset is this stripe's first body index in the global set.
	Offset int64
	// Time is the simulation time of the snapshot.
	Time float64
	// CRC covers the body payload.
	CRC uint64
}

// stripeName returns the filename of stripe s.
func stripeName(dir, base string, s, total int) string {
	return filepath.Join(dir, fmt.Sprintf("%s.%03d-of-%03d.snap", base, s, total))
}

// WriteStriped writes the system as a set of stripe files. Bodies are
// split into contiguous runs, one per stripe, mirroring how Loki
// striped snapshots over its local disks.
func WriteStriped(dir, base string, sys *core.System, time float64, stripes int) error {
	if stripes < 1 {
		return fmt.Errorf("snapio: stripes must be >= 1")
	}
	n := int64(sys.Len())
	for s := 0; s < stripes; s++ {
		lo := n * int64(s) / int64(stripes)
		hi := n * int64(s+1) / int64(stripes)
		if err := writeStripe(stripeName(dir, base, s, stripes), sys, time, s, stripes, lo, hi, n); err != nil {
			return err
		}
	}
	return nil
}

func writeStripe(path string, sys *core.System, time float64, s, stripes int, lo, hi, total int64) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	payload := make([]byte, (hi-lo)*recordBytes)
	for i := lo; i < hi; i++ {
		encodeBody(payload[(i-lo)*recordBytes:], sys, int(i))
	}
	h := Header{
		Magic:   Magic,
		Version: Version,
		Stripe:  uint32(s),
		Stripes: uint32(stripes),
		NTotal:  total,
		NLocal:  hi - lo,
		Offset:  lo,
		Time:    time,
		CRC:     crc64.Checksum(payload, crcTable),
	}
	buf := make([]byte, headerBytes)
	encodeHeader(buf, &h)
	// Explicit 64-bit offsets: header at 0, payload at headerBytes.
	if _, err := f.WriteAt(buf, 0); err != nil {
		return err
	}
	if _, err := f.WriteAt(payload, int64(headerBytes)); err != nil {
		return err
	}
	return f.Sync()
}

// ReadStriped loads a striped snapshot set written by WriteStriped.
func ReadStriped(dir, base string, stripes int) (*core.System, float64, error) {
	var sys *core.System
	var time float64
	for s := 0; s < stripes; s++ {
		h, payload, err := readStripe(stripeName(dir, base, s, stripes))
		if err != nil {
			return nil, 0, err
		}
		if int(h.Stripes) != stripes {
			return nil, 0, fmt.Errorf("snapio: stripe count mismatch: file says %d, expected %d", h.Stripes, stripes)
		}
		if sys == nil {
			sys = core.New(int(h.NTotal))
			sys.EnableDynamics()
			time = h.Time
		}
		for i := int64(0); i < h.NLocal; i++ {
			decodeBody(payload[i*recordBytes:], sys, int(h.Offset+i))
		}
	}
	if sys == nil {
		return nil, 0, fmt.Errorf("snapio: no stripes read")
	}
	return sys, time, nil
}

func readStripe(path string) (*Header, []byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	buf := make([]byte, headerBytes)
	if _, err := io.ReadFull(f, buf); err != nil {
		return nil, nil, fmt.Errorf("snapio: short header in %s: %w", path, err)
	}
	h := decodeHeader(buf)
	if h.Magic != Magic {
		return nil, nil, fmt.Errorf("snapio: %s: bad magic %x", path, h.Magic)
	}
	if h.Version != Version {
		return nil, nil, fmt.Errorf("snapio: %s: unsupported version %d", path, h.Version)
	}
	payload := make([]byte, h.NLocal*recordBytes)
	if _, err := f.ReadAt(payload, int64(headerBytes)); err != nil {
		return nil, nil, fmt.Errorf("snapio: short payload in %s: %w", path, err)
	}
	if crc := crc64.Checksum(payload, crcTable); crc != h.CRC {
		return nil, nil, fmt.Errorf("snapio: %s: checksum mismatch", path)
	}
	return h, payload, nil
}

func encodeHeader(b []byte, h *Header) {
	le := binary.LittleEndian
	le.PutUint64(b[0:], h.Magic)
	le.PutUint32(b[8:], h.Version)
	le.PutUint32(b[12:], h.Stripe)
	le.PutUint32(b[16:], h.Stripes)
	le.PutUint64(b[24:], uint64(h.NTotal))
	le.PutUint64(b[32:], uint64(h.NLocal))
	le.PutUint64(b[40:], uint64(h.Offset))
	le.PutUint64(b[48:], floatBits(h.Time))
	le.PutUint64(b[56:], h.CRC)
}

func decodeHeader(b []byte) *Header {
	le := binary.LittleEndian
	return &Header{
		Magic:   le.Uint64(b[0:]),
		Version: le.Uint32(b[8:]),
		Stripe:  le.Uint32(b[12:]),
		Stripes: le.Uint32(b[16:]),
		NTotal:  int64(le.Uint64(b[24:])),
		NLocal:  int64(le.Uint64(b[32:])),
		Offset:  int64(le.Uint64(b[40:])),
		Time:    bitsFloat(le.Uint64(b[48:])),
		CRC:     le.Uint64(b[56:]),
	}
}

func encodeBody(b []byte, sys *core.System, i int) {
	le := binary.LittleEndian
	putV3 := func(off int, v vec.V3) {
		le.PutUint64(b[off:], floatBits(v.X))
		le.PutUint64(b[off+8:], floatBits(v.Y))
		le.PutUint64(b[off+16:], floatBits(v.Z))
	}
	putV3(0, sys.Pos[i])
	if sys.Vel != nil {
		putV3(24, sys.Vel[i])
	}
	le.PutUint64(b[48:], floatBits(sys.Mass[i]))
	le.PutUint64(b[56:], uint64(sys.ID[i]))
}

func decodeBody(b []byte, sys *core.System, i int) {
	le := binary.LittleEndian
	getV3 := func(off int) vec.V3 {
		return vec.V3{
			X: bitsFloat(le.Uint64(b[off:])),
			Y: bitsFloat(le.Uint64(b[off+8:])),
			Z: bitsFloat(le.Uint64(b[off+16:])),
		}
	}
	sys.Pos[i] = getV3(0)
	if sys.Vel != nil {
		sys.Vel[i] = getV3(24)
	}
	sys.Mass[i] = bitsFloat(le.Uint64(b[48:]))
	sys.ID[i] = int64(le.Uint64(b[56:]))
}

func floatBits(f float64) uint64 { return math.Float64bits(f) }

func bitsFloat(b uint64) float64 { return math.Float64frombits(b) }

// WriteAt64 writes a body record at an explicit 64-bit record index in
// an already-open stripe file: the primitive whose 32-bit predecessor
// the paper had to fix. Used for out-of-order parallel writes and by
// the large-offset test.
func WriteAt64(f *os.File, sys *core.System, i int, record int64) error {
	b := make([]byte, recordBytes)
	encodeBody(b, sys, i)
	_, err := f.WriteAt(b, int64(headerBytes)+record*recordBytes)
	return err
}

// ReadAt64 reads one record by 64-bit index.
func ReadAt64(f *os.File, sys *core.System, i int, record int64) error {
	b := make([]byte, recordBytes)
	if _, err := f.ReadAt(b, int64(headerBytes)+record*recordBytes); err != nil {
		return err
	}
	decodeBody(b, sys, i)
	return nil
}
