package snapio

import (
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/vec"
)

func randomSystem(n int, seed int64) *core.System {
	rng := rand.New(rand.NewSource(seed))
	sys := core.New(n)
	sys.EnableDynamics()
	for i := 0; i < n; i++ {
		sys.Pos[i] = vec.V3{X: rng.NormFloat64(), Y: rng.NormFloat64(), Z: rng.NormFloat64()}
		sys.Vel[i] = vec.V3{X: rng.NormFloat64()}
		sys.Mass[i] = rng.Float64() + 0.1
	}
	return sys
}

func TestRoundTripStriped(t *testing.T) {
	dir := t.TempDir()
	for _, stripes := range []int{1, 3, 16} {
		sys := randomSystem(100, int64(stripes))
		if err := WriteStriped(dir, "snap", sys, 2.5, stripes); err != nil {
			t.Fatal(err)
		}
		got, tm, err := ReadStriped(dir, "snap", stripes)
		if err != nil {
			t.Fatal(err)
		}
		if tm != 2.5 {
			t.Fatalf("time = %v", tm)
		}
		if got.Len() != sys.Len() {
			t.Fatalf("stripes=%d: N = %d", stripes, got.Len())
		}
		for i := 0; i < sys.Len(); i++ {
			if got.Pos[i] != sys.Pos[i] || got.Vel[i] != sys.Vel[i] ||
				got.Mass[i] != sys.Mass[i] || got.ID[i] != sys.ID[i] {
				t.Fatalf("stripes=%d body %d corrupted", stripes, i)
			}
		}
	}
}

func TestChecksumDetectsCorruption(t *testing.T) {
	dir := t.TempDir()
	sys := randomSystem(50, 1)
	if err := WriteStriped(dir, "c", sys, 0, 2); err != nil {
		t.Fatal(err)
	}
	// Flip one payload byte in stripe 0.
	path := filepath.Join(dir, "c.000-of-002.snap")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[headerBytes+10] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ReadStriped(dir, "c", 2); err == nil {
		t.Fatal("corruption not detected")
	}
}

func TestBadMagicAndVersion(t *testing.T) {
	dir := t.TempDir()
	sys := randomSystem(10, 2)
	if err := WriteStriped(dir, "m", sys, 0, 1); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "m.000-of-001.snap")
	data, _ := os.ReadFile(path)
	data[0] ^= 0xFF // break magic
	os.WriteFile(path, data, 0o644)
	if _, _, err := ReadStriped(dir, "m", 1); err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestStripeCountMismatch(t *testing.T) {
	dir := t.TempDir()
	sys := randomSystem(10, 3)
	if err := WriteStriped(dir, "s", sys, 0, 2); err != nil {
		t.Fatal(err)
	}
	// Reading with the wrong stripe count fails cleanly (file names
	// don't match).
	if _, _, err := ReadStriped(dir, "s", 3); err == nil {
		t.Fatal("wrong stripe count accepted")
	}
}

// The paper's 64-bit lesson: records must be addressable beyond the
// 2^31-byte boundary. Writes a sparse file with one record past 3 GB
// and reads it back.
func TestLargeOffset64Bit(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "big.snap")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	sys := randomSystem(1, 4)
	// Record index chosen so the byte offset exceeds 2^31 (a 32-bit
	// signed offset would wrap): 50 million * 64 bytes = 3.2e9.
	const record = int64(50_000_000)
	if err := WriteAt64(f, sys, 0, record); err != nil {
		t.Fatal(err)
	}
	if off := int64(headerBytes) + record*recordBytes; off <= 1<<31 {
		t.Fatalf("test offset %d does not exceed 2^31", off)
	}
	got := core.New(1)
	got.EnableDynamics()
	if err := ReadAt64(f, got, 0, record); err != nil {
		t.Fatal(err)
	}
	if got.Pos[0] != sys.Pos[0] || got.Mass[0] != sys.Mass[0] {
		t.Fatal("record at >2^31 offset corrupted")
	}
	// The sparse file reports the full logical size.
	st, _ := f.Stat()
	if st.Size() <= 1<<31 {
		t.Fatalf("file size %d", st.Size())
	}
}

func TestWriteStripedValidation(t *testing.T) {
	if err := WriteStriped(t.TempDir(), "x", randomSystem(5, 5), 0, 0); err == nil {
		t.Fatal("stripes=0 accepted")
	}
}

func TestReadMissingFile(t *testing.T) {
	if _, _, err := ReadStriped(t.TempDir(), "nope", 1); err == nil {
		t.Fatal("missing file accepted")
	}
}
