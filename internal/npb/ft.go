package npb

import (
	"math"
	"math/cmplx"

	"repro/internal/fft"
	"repro/internal/msg"
)

// FT is the 3-D FFT PDE kernel: solve a diffusion-like equation
// spectrally by forward-transforming an initial field, multiplying by
// per-mode exponential decay factors each "time step", and
// checksumming. The distributed transform uses a slab decomposition
// with one global transpose per direction change -- the classic
// bandwidth-bound pattern.
//
// Layout A gives rank r the z-planes [r*n/P, (r+1)*n/P) with index
// (zl*n+y)*n+x; layout B gives it the x-planes with index
// (xl*n+y)*n+z.

// FTResult carries the checksums of each iteration.
type FTResult struct {
	Result
	Checksums []complex128
}

// RunFT runs the kernel on an n^3 grid (n a power of two, divisible
// by the rank count) for iters evolution steps.
func RunFT(c *msg.Comm, n, iters int) FTResult {
	var r FTResult
	r.Kernel, r.Class, r.Ranks = "FT", ftClass(n), c.Size()
	p := c.Size()
	if n%p != 0 {
		panic("npb: FT grid must be divisible by rank count")
	}
	nz := n / p
	plan, err := fft.NewPlan(n)
	if err != nil {
		panic(err)
	}

	slab := make([]complex128, nz*n*n) // layout A
	orig := make([]complex128, len(slab))
	trans := make([]complex128, nz*n*n) // layout B (nx-local = nz)
	buf := make([]complex128, n)

	verified := true
	r.Seconds = timed(func() {
		// Deterministic initial data: two uniforms per point, global
		// stream order, jump-ahead to this rank's offset.
		g := NewLCG(DefaultSeed)
		zoff := c.Rank() * nz
		g.Skip(uint64(2 * zoff * n * n))
		for i := range slab {
			re := g.Next()
			im := g.Next()
			slab[i] = complex(re, im)
		}
		copy(orig, slab)

		c.Phase("ft")
		forward3(c, plan, slab, trans, buf, n, nz)
		// Evolution factors need global kx in layout B.
		xoff := c.Rank() * nz
		alpha := 1e-6
		for it := 1; it <= iters; it++ {
			var sum complex128
			for xl := 0; xl < nz; xl++ {
				kx := float64(fft.FreqIndex(xoff+xl, n))
				for y := 0; y < n; y++ {
					ky := float64(fft.FreqIndex(y, n))
					base := (xl*n + y) * n
					for z := 0; z < n; z++ {
						kz := float64(fft.FreqIndex(z, n))
						k2 := kx*kx + ky*ky + kz*kz
						f := math.Exp(-4 * math.Pi * math.Pi * alpha * k2)
						trans[base+z] *= complex(f, 0)
						sum += trans[base+z]
					}
				}
			}
			r.Checksums = append(r.Checksums, msg.Allreduce(c, sum,
				func(a, b complex128) complex128 { return a + b }, 16))
		}
		inverse3(c, plan, slab, trans, buf, n, nz)

		// Verification: with alpha small and iters few, the field
		// must return near the original, mode-wise damped; instead
		// run the identity check on the DC-preserving property: the
		// mean of the field equals the mean of the original damped by
		// factor 1 (k=0 mode untouched).
		var meanGot, meanWant complex128
		for i := range slab {
			meanGot += slab[i]
			meanWant += orig[i]
		}
		meanGot = msg.Allreduce(c, meanGot, func(a, b complex128) complex128 { return a + b }, 16)
		meanWant = msg.Allreduce(c, meanWant, func(a, b complex128) complex128 { return a + b }, 16)
		if cmplx.Abs(meanGot-meanWant) > 1e-6*cmplx.Abs(meanWant) {
			verified = false
		}
		// And every point must be within the damping envelope of the
		// original magnitude scale.
		for i := range slab {
			if cmplx.IsNaN(slab[i]) || cmplx.Abs(slab[i]) > 2 {
				verified = false
				break
			}
		}
	})
	// One 3-D FFT is 3 axes x 5 n log2(n) per line x n^2 lines.
	fftOps := uint64(3*5*n*n*n) * uint64(math.Log2(float64(n)))
	r.Ops = 2*fftOps + uint64(iters)*uint64(6*n*n*n)
	r.Verified = verified
	return r
}

func ftClass(n int) string {
	if n >= 64 {
		return "miniB"
	}
	return "miniA"
}

// forward3 transforms layout-A slab into fully-transformed layout-B
// trans: FFT x, FFT y, transpose, FFT z.
func forward3(c *msg.Comm, plan *fft.Plan, slab, trans, buf []complex128, n, nz int) {
	// X lines (contiguous).
	for zy := 0; zy < nz*n; zy++ {
		plan.Forward(slab[zy*n : zy*n+n])
	}
	// Y lines (stride n).
	for zl := 0; zl < nz; zl++ {
		for x := 0; x < n; x++ {
			for y := 0; y < n; y++ {
				buf[y] = slab[(zl*n+y)*n+x]
			}
			plan.Forward(buf[:n])
			for y := 0; y < n; y++ {
				slab[(zl*n+y)*n+x] = buf[y]
			}
		}
	}
	transposeAB(c, slab, trans, n, nz)
	// Z lines (contiguous in layout B).
	for xy := 0; xy < nz*n; xy++ {
		plan.Forward(trans[xy*n : xy*n+n])
	}
}

// inverse3 is the reverse of forward3.
func inverse3(c *msg.Comm, plan *fft.Plan, slab, trans, buf []complex128, n, nz int) {
	for xy := 0; xy < nz*n; xy++ {
		plan.Inverse(trans[xy*n : xy*n+n])
	}
	transposeBA(c, trans, slab, n, nz)
	for zl := 0; zl < nz; zl++ {
		for x := 0; x < n; x++ {
			for y := 0; y < n; y++ {
				buf[y] = slab[(zl*n+y)*n+x]
			}
			plan.Inverse(buf[:n])
			for y := 0; y < n; y++ {
				slab[(zl*n+y)*n+x] = buf[y]
			}
		}
	}
	for zy := 0; zy < nz*n; zy++ {
		plan.Inverse(slab[zy*n : zy*n+n])
	}
}

// transposeAB exchanges layout A (z-slabs) into layout B (x-slabs):
// rank r sends rank s the block {x in Xs, all y, z in Zr}, packed in
// (z, y, xl) order.
func transposeAB(c *msg.Comm, a, b []complex128, n, nz int) {
	p := c.Size()
	send := make([][]complex128, p)
	for s := 0; s < p; s++ {
		blk := make([]complex128, 0, nz*n*nz)
		for zl := 0; zl < nz; zl++ {
			for y := 0; y < n; y++ {
				base := (zl*n + y) * n
				for xl := 0; xl < nz; xl++ {
					blk = append(blk, a[base+s*nz+xl])
				}
			}
		}
		send[s] = blk
	}
	recv := msg.Alltoallv(c, send, 16)
	// Unpack: block from rank s covers z in Zs, packed (zl, y, xl).
	for s := 0; s < p; s++ {
		blk := recv[s]
		i := 0
		for zl := 0; zl < nz; zl++ {
			z := s*nz + zl
			for y := 0; y < n; y++ {
				for xl := 0; xl < nz; xl++ {
					b[(xl*n+y)*n+z] = blk[i]
					i++
				}
			}
		}
	}
}

// transposeBA is the inverse exchange.
func transposeBA(c *msg.Comm, b, a []complex128, n, nz int) {
	p := c.Size()
	send := make([][]complex128, p)
	for s := 0; s < p; s++ {
		blk := make([]complex128, 0, nz*n*nz)
		for xl := 0; xl < nz; xl++ {
			for y := 0; y < n; y++ {
				base := (xl*n + y) * n
				for zl := 0; zl < nz; zl++ {
					blk = append(blk, b[base+s*nz+zl])
				}
			}
		}
		send[s] = blk
	}
	recv := msg.Alltoallv(c, send, 16)
	for s := 0; s < p; s++ {
		blk := recv[s]
		i := 0
		for xl := 0; xl < nz; xl++ {
			x := s*nz + xl
			for y := 0; y < n; y++ {
				for zl := 0; zl < nz; zl++ {
					a[(zl*n+y)*n+x] = blk[i]
					i++
				}
			}
		}
	}
}
