package npb

import (
	"math"

	"repro/internal/msg"
)

// LU (reduced): SSOR relaxation of the implicit operator
// A = I - tau * Laplacian3D (Dirichlet) on an n^3 grid. The original's
// lower/upper wavefront sweeps are replaced by red-black coloring --
// the standard parallel formulation -- with one halo exchange per
// color per sweep, which preserves LU's nearest-neighbor,
// latency-sensitive communication signature.

// RunLU relaxes A u = rhs for the given number of SSOR sweeps and
// verifies the residual reduction.
func RunLU(c *msg.Comm, n, sweeps int) PseudoResult {
	var res PseudoResult
	res.Kernel, res.Class, res.Ranks = "LU", ftClass(n), c.Size()
	p := c.Size()
	if n%p != 0 {
		panic("npb: grid must be divisible by rank count")
	}
	nz := n / p
	zoff := c.Rank() * nz

	const tau = pseudoTau
	diag := 1 + 6*tau
	// Fields with one halo plane on each side.
	plane := n * n
	u := make([]float64, (nz+2)*plane)
	rhs := make([]float64, nz*plane)
	manufactured(rhs, DefaultSeed, c.Rank()*len(rhs))

	at := func(f []float64, x, y, zl int) float64 {
		if x < 0 || x >= n || y < 0 || y >= n {
			return 0 // Dirichlet in x, y
		}
		return f[((zl+1)*n+y)*n+x]
	}
	halo := func(tag int) {
		if p == 1 {
			// Dirichlet: zero halos outside the global domain.
			for i := 0; i < plane; i++ {
				u[i] = 0
				u[(nz+1)*plane+i] = 0
			}
			return
		}
		up := c.Rank() + 1
		down := c.Rank() - 1
		if up < p {
			c.Send(up, tag, append([]float64(nil), u[nz*plane:(nz+1)*plane]...), 8*plane)
		}
		if down >= 0 {
			c.Send(down, tag+1, append([]float64(nil), u[plane:2*plane]...), 8*plane)
		}
		if down >= 0 {
			copy(u[0:plane], c.Recv(down, tag).Data.([]float64))
		} else {
			for i := 0; i < plane; i++ {
				u[i] = 0
			}
		}
		if up < p {
			copy(u[(nz+1)*plane:(nz+2)*plane], c.Recv(up, tag+1).Data.([]float64))
		} else {
			for i := 0; i < plane; i++ {
				u[(nz+1)*plane+i] = 0
			}
		}
	}
	residualNorm := func() float64 {
		halo(60)
		var s float64
		for zl := 0; zl < nz; zl++ {
			for y := 0; y < n; y++ {
				for x := 0; x < n; x++ {
					au := diag*at(u, x, y, zl) - tau*(at(u, x-1, y, zl)+at(u, x+1, y, zl)+
						at(u, x, y-1, zl)+at(u, x, y+1, zl)+at(u, x, y, zl-1)+at(u, x, y, zl+1))
					r := rhs[(zl*n+y)*n+x] - au
					s += r * r
				}
			}
		}
		return math.Sqrt(msg.Allreduce(c, s, msg.SumF64, 8))
	}

	var ops uint64
	var r0, r1 float64
	res.Seconds = timed(func() {
		c.Phase("lu")
		r0 = residualNorm()
		const omega = 1.2
		for s := 0; s < sweeps; s++ {
			// Red-black Gauss-Seidel, forward then backward order
			// (the SSOR pair).
			for pass := 0; pass < 2; pass++ {
				for color := 0; color < 2; color++ {
					cc := color
					if pass == 1 {
						cc = 1 - color
					}
					halo(62 + 2*pass)
					for zl := 0; zl < nz; zl++ {
						zg := zoff + zl
						for y := 0; y < n; y++ {
							for x := 0; x < n; x++ {
								if (x+y+zg)&1 != cc {
									continue
								}
								sum := rhs[(zl*n+y)*n+x] + tau*(at(u, x-1, y, zl)+at(u, x+1, y, zl)+
									at(u, x, y-1, zl)+at(u, x, y+1, zl)+at(u, x, y, zl-1)+at(u, x, y, zl+1))
								old := at(u, x, y, zl)
								u[((zl+1)*n+y)*n+x] = old + omega*(sum/diag-old)
							}
						}
					}
					ops += uint64(13 * n * n * nz / 2)
				}
			}
		}
		r1 = residualNorm()
	})
	res.Ops = msg.Allreduce(c, ops, msg.SumU64, 8)
	res.Err = r1 / r0
	res.Verified = r1 < 0.1*r0 && !math.IsNaN(r1)
	return res
}
