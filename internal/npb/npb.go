// Package npb implements the NAS Parallel Benchmark kernels the paper
// uses to compare machine balance (Tables 3 and 4, Figure 3): EP, IS,
// FT, MG and CG as full verified kernels, and reduced-order BT, SP and
// LU solvers that preserve the originals' computation/communication
// pattern (implicit line solves along every axis of a 3-D grid, with
// transposes/halos between ranks).
//
// Problem classes are scaled to laptop-size grids ("mini" classes);
// the quantity the reproduction cares about is the *relative* Mop/s
// across kernels, processor counts and machine models, which is set
// by each kernel's compute/communication structure, not its absolute
// size. Every kernel verifies its answer (against analytic identities
// or a serial reference), as the NPB originals do.
package npb

import (
	"fmt"
	"time"
)

// Result is one benchmark execution.
type Result struct {
	Kernel   string
	Class    string
	Ranks    int
	Ops      uint64 // kernel-defined operation count
	Seconds  float64
	Verified bool
	// CommMsgs/CommBytes are the bottleneck rank's traffic, for the
	// machine models.
	CommMsgs, CommBytes uint64
}

// Mops returns millions of operations per second (host-measured).
func (r Result) Mops() float64 {
	if r.Seconds <= 0 {
		return 0
	}
	return float64(r.Ops) / r.Seconds / 1e6
}

// String renders like the NPB summary line.
func (r Result) String() string {
	v := "VERIFICATION SUCCESSFUL"
	if !r.Verified {
		v = "VERIFICATION FAILED"
	}
	return fmt.Sprintf("%-2s class %s x%-2d  %10.2f Mop/s  %8.3fs  %s",
		r.Kernel, r.Class, r.Ranks, r.Mops(), r.Seconds, v)
}

// timer measures one benchmark body.
func timed(f func()) float64 {
	t0 := time.Now()
	f()
	return time.Since(t0).Seconds()
}

// --- NPB pseudorandom numbers -----------------------------------------
//
// The NPB linear congruential generator: x_{k+1} = a x_k mod 2^46 with
// a = 5^13, yielding uniform doubles x/2^46 in (0,1). Jump-ahead by
// binary powering makes independent streams for each rank, exactly as
// the Fortran originals do.

// lcgMod is 2^46.
const lcgMod = uint64(1) << 46

// LCGA is the NPB multiplier 5^13.
const LCGA = uint64(1220703125)

// DefaultSeed is the NPB default seed.
const DefaultSeed = uint64(314159265)

// mulmod46 returns a*b mod 2^46 without overflow (operands < 2^46).
func mulmod46(a, b uint64) uint64 {
	const m23 = 1<<23 - 1
	a1, a0 := a>>23, a&m23
	b1, b0 := b>>23, b&m23
	mid := (a1*b0 + a0*b1) & m23
	return (mid<<23 + a0*b0) & (lcgMod - 1)
}

// LCG is the NPB generator state.
type LCG struct{ x uint64 }

// NewLCG seeds a generator.
func NewLCG(seed uint64) *LCG { return &LCG{x: seed % lcgMod} }

// Next returns the next uniform double in (0,1).
func (g *LCG) Next() float64 {
	g.x = mulmod46(LCGA, g.x)
	return float64(g.x) * (1.0 / float64(lcgMod))
}

// Skip advances the stream by n steps in O(log n): x <- a^n x.
func (g *LCG) Skip(n uint64) {
	an := powmod46(LCGA, n)
	g.x = mulmod46(an, g.x)
}

// powmod46 returns a^n mod 2^46.
func powmod46(a, n uint64) uint64 {
	result := uint64(1)
	for ; n > 0; n >>= 1 {
		if n&1 == 1 {
			result = mulmod46(result, a)
		}
		a = mulmod46(a, a)
	}
	return result
}
