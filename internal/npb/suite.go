package npb

import (
	"fmt"
	"strings"

	"repro/internal/msg"
)

// Sizes selects the mini problem sizes. "A" is quick (CI-sized), "B"
// is a few times larger, mirroring NPB's class ladder at laptop
// scale.
type Sizes struct {
	EPLog2    uint
	ISLog2    uint
	ISBits    uint
	FTGrid    int
	FTIters   int
	MGGrid    int
	MGCycles  int
	CGSize    int
	CGIters   int
	ADIGrid   int
	ADIIters  int
	LUSweeps  int
	ClassName string
}

// MiniA is the quick class.
var MiniA = Sizes{
	EPLog2: 18, ISLog2: 16, ISBits: 16,
	FTGrid: 16, FTIters: 4,
	MGGrid: 32, MGCycles: 4,
	CGSize: 1400, CGIters: 25,
	ADIGrid: 16, ADIIters: 4,
	LUSweeps:  12,
	ClassName: "miniA",
}

// MiniB is the larger class used for the Table 3 reproduction.
var MiniB = Sizes{
	EPLog2: 21, ISLog2: 19, ISBits: 18,
	FTGrid: 32, FTIters: 6,
	MGGrid: 64, MGCycles: 4,
	CGSize: 7000, CGIters: 40,
	ADIGrid: 32, ADIIters: 4,
	LUSweeps:  16,
	ClassName: "miniB",
}

// Kernels is the Table 3 kernel order.
var Kernels = []string{"BT", "SP", "LU", "MG", "FT", "EP", "IS", "CG"}

// RunKernel dispatches one kernel by name.
func RunKernel(c *msg.Comm, name string, s Sizes) Result {
	switch name {
	case "EP":
		return RunEP(c, s.EPLog2).Result
	case "IS":
		return RunIS(c, s.ISLog2, s.ISBits).Result
	case "FT":
		return RunFT(c, s.FTGrid, s.FTIters).Result
	case "MG":
		return RunMG(c, s.MGGrid, s.MGCycles).Result
	case "CG":
		return RunCG(c, s.CGSize, s.CGIters).Result
	case "BT":
		return RunBT(c, s.ADIGrid, s.ADIIters).Result
	case "SP":
		return RunSP(c, s.ADIGrid, s.ADIIters).Result
	case "LU":
		return RunLU(c, s.ADIGrid, s.LUSweeps).Result
	default:
		panic("npb: unknown kernel " + name)
	}
}

// RunSuite runs every kernel on a fresh world of np ranks and returns
// results with the bottleneck rank's traffic attached (for the
// machine models).
func RunSuite(np int, s Sizes) []Result {
	results := make([]Result, len(Kernels))
	for i, k := range Kernels {
		var res Result
		w := msg.Run(np, func(c *msg.Comm) {
			r := RunKernel(c, k, s)
			if c.Rank() == 0 {
				res = r
			}
		})
		m := w.MaxRankTraffic()
		res.CommMsgs, res.CommBytes = m.Msgs, m.Bytes
		results[i] = res
	}
	return results
}

// FormatSuite renders results as a table like the paper's Table 3/4.
func FormatSuite(results []Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-3s %-6s %5s %12s %10s %8s\n", "Krn", "Class", "Ranks", "Mop/s", "Seconds", "Verified")
	for _, r := range results {
		fmt.Fprintf(&b, "%-3s %-6s %5d %12.2f %10.4f %8v\n",
			r.Kernel, r.Class, r.Ranks, r.Mops(), r.Seconds, r.Verified)
	}
	return b.String()
}
