package npb

import (
	"sort"

	"repro/internal/msg"
)

// IS is the integer sort kernel: N keys uniform in [0, 2^b) are
// ranked by a parallel bucket sort. It is the most communication-
// intensive NPB kernel (an all-to-all of the entire data set), which
// is why the paper's Table 3 shows it as the one benchmark where ASCI
// Red's network beats Loki's fast ethernet by a wide margin.

// ISResult carries verification state.
type ISResult struct {
	Result
	N uint64
}

// RunIS sorts 2^m keys of 2^b bits across the communicator. Each rank
// generates its block of the global key sequence (jump-ahead), keys
// are exchanged so rank r receives bucket r (key range partition),
// and each rank sorts locally. Verification checks global order and
// key conservation.
func RunIS(c *msg.Comm, m, b uint) ISResult {
	var r ISResult
	r.Kernel, r.Class, r.Ranks = "IS", className(m, 20, 23), c.Size()
	n := uint64(1) << m
	r.N = n
	maxKey := uint64(1) << b
	p := c.Size()

	var sorted []uint64
	var localSum, globalSum uint64
	r.Seconds = timed(func() {
		lo := n * uint64(c.Rank()) / uint64(p)
		hi := n * uint64(c.Rank()+1) / uint64(p)
		g := NewLCG(DefaultSeed)
		g.Skip(lo)
		keys := make([]uint64, 0, hi-lo)
		for i := lo; i < hi; i++ {
			k := uint64(g.Next() * float64(maxKey))
			if k >= maxKey {
				k = maxKey - 1
			}
			keys = append(keys, k)
			localSum += k
		}
		// Bucket by destination rank: key range partition.
		send := make([][]uint64, p)
		for _, k := range keys {
			d := int(k * uint64(p) / maxKey)
			if d >= p {
				d = p - 1
			}
			send[d] = append(send[d], k)
		}
		c.Phase("is")
		recv := msg.Alltoallv(c, send, 8)
		sorted = sorted[:0]
		for _, blk := range recv {
			sorted = append(sorted, blk...)
		}
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		// Conservation check sums.
		var recvSum uint64
		for _, k := range sorted {
			recvSum += k
		}
		globalSum = msg.Allreduce(c, recvSum, msg.SumU64, 8)
		_ = msg.Allreduce(c, localSum, msg.SumU64, 8) // symmetric check traffic
	})
	r.Ops = n // NPB convention: IS reports keys ranked per second

	// Verification: locally sorted, bucket boundaries respected, and
	// global boundaries between ranks ordered.
	ok := true
	for i := 1; i < len(sorted); i++ {
		if sorted[i] < sorted[i-1] {
			ok = false
		}
	}
	lo := uint64(c.Rank()) * maxKey / uint64(p)
	hi := uint64(c.Rank()+1) * maxKey / uint64(p)
	for _, k := range sorted {
		if k < lo || k >= hi {
			ok = false
		}
	}
	// Global key-sum conservation: recompute the full sequence sum on
	// every rank cheaply via the LCG (deterministic).
	gg := NewLCG(DefaultSeed)
	var want uint64
	for i := uint64(0); i < n; i++ {
		k := uint64(gg.Next() * float64(maxKey))
		if k >= maxKey {
			k = maxKey - 1
		}
		want += k
	}
	if globalSum != want {
		ok = false
	}
	r.Verified = msg.Allreduce(c, boolToInt(ok), minInt, 4) == 1
	return r
}

func boolToInt(b bool) int {
	if b {
		return 1
	}
	return 0
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
