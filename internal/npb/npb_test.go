package npb

import (
	"math"
	"math/cmplx"
	"testing"

	"repro/internal/msg"
)

func TestLCGSkipEquivalence(t *testing.T) {
	g1 := NewLCG(DefaultSeed)
	for i := 0; i < 1000; i++ {
		g1.Next()
	}
	g2 := NewLCG(DefaultSeed)
	g2.Skip(1000)
	if a, b := g1.Next(), g2.Next(); a != b {
		t.Fatalf("Skip(1000) diverges: %v vs %v", a, b)
	}
	// Skip(0) is identity.
	g3 := NewLCG(DefaultSeed)
	g3.Skip(0)
	g4 := NewLCG(DefaultSeed)
	if g3.Next() != g4.Next() {
		t.Fatal("Skip(0) not identity")
	}
}

func TestLCGUniformity(t *testing.T) {
	g := NewLCG(DefaultSeed)
	var sum float64
	const n = 100000
	buckets := make([]int, 10)
	for i := 0; i < n; i++ {
		u := g.Next()
		if u <= 0 || u >= 1 {
			t.Fatalf("uniform out of range: %v", u)
		}
		sum += u
		buckets[int(u*10)]++
	}
	if math.Abs(sum/n-0.5) > 0.01 {
		t.Fatalf("mean %v", sum/n)
	}
	for b, cnt := range buckets {
		if cnt < n/10-n/100 || cnt > n/10+n/100 {
			t.Fatalf("bucket %d count %d", b, cnt)
		}
	}
}

func TestMulmod46(t *testing.T) {
	// Agreement with big-integer arithmetic on random-ish values.
	cases := [][2]uint64{
		{LCGA, DefaultSeed},
		{lcgMod - 1, lcgMod - 1},
		{123456789012, 987654321098},
		{1, lcgMod - 1},
		{0, 12345},
	}
	for _, c := range cases {
		hi, lo := bits128Mul(c[0], c[1])
		want := lo & (lcgMod - 1)
		_ = hi
		if got := mulmod46(c[0], c[1]); got != want {
			t.Fatalf("mulmod46(%d, %d) = %d, want %d", c[0], c[1], got, want)
		}
	}
}

// bits128Mul is a reference 128-bit multiply (schoolbook on 32-bit
// halves).
func bits128Mul(a, b uint64) (hi, lo uint64) {
	a0, a1 := a&0xFFFFFFFF, a>>32
	b0, b1 := b&0xFFFFFFFF, b>>32
	t := a0 * b0
	lo = t & 0xFFFFFFFF
	carry := t >> 32
	t = a1*b0 + carry
	m0 := t & 0xFFFFFFFF
	c1 := t >> 32
	t = a0*b1 + m0
	lo |= (t & 0xFFFFFFFF) << 32
	hi = a1*b1 + c1 + t>>32
	return hi, lo
}

func TestEPSerialVsParallel(t *testing.T) {
	const m = 14
	var serial EPResult
	msg.Run(1, func(c *msg.Comm) { serial = RunEP(c, m) })
	if !serial.Verified {
		t.Fatalf("serial EP failed verification: accepted=%d", serial.Accepted)
	}
	for _, np := range []int{2, 4, 7} {
		var par EPResult
		msg.Run(np, func(c *msg.Comm) {
			r := RunEP(c, m)
			if c.Rank() == 0 {
				par = r
			}
		})
		if par.Accepted != serial.Accepted {
			t.Fatalf("np=%d: accepted %d vs %d", np, par.Accepted, serial.Accepted)
		}
		if par.Counts != serial.Counts {
			t.Fatalf("np=%d: annulus counts differ", np)
		}
		if math.Abs(par.SumX-serial.SumX) > 1e-9 || math.Abs(par.SumY-serial.SumY) > 1e-9 {
			t.Fatalf("np=%d: sums differ: (%v,%v) vs (%v,%v)", np, par.SumX, par.SumY, serial.SumX, serial.SumY)
		}
		if !par.Verified {
			t.Fatalf("np=%d: verification failed", np)
		}
	}
}

func TestISAcrossRanks(t *testing.T) {
	for _, np := range []int{1, 2, 4} {
		msg.Run(np, func(c *msg.Comm) {
			r := RunIS(c, 12, 12)
			if !r.Verified {
				t.Errorf("np=%d rank=%d: IS verification failed", np, c.Rank())
			}
		})
	}
}

func TestFTSerialVsParallel(t *testing.T) {
	const n, iters = 16, 3
	var serial FTResult
	msg.Run(1, func(c *msg.Comm) { serial = RunFT(c, n, iters) })
	if !serial.Verified {
		t.Fatal("serial FT failed verification")
	}
	if len(serial.Checksums) != iters {
		t.Fatalf("%d checksums", len(serial.Checksums))
	}
	for _, np := range []int{2, 4} {
		var par FTResult
		msg.Run(np, func(c *msg.Comm) {
			r := RunFT(c, n, iters)
			if c.Rank() == 0 {
				par = r
			}
		})
		if !par.Verified {
			t.Fatalf("np=%d: FT verification failed", np)
		}
		for i := range serial.Checksums {
			if d := cmplx.Abs(par.Checksums[i] - serial.Checksums[i]); d > 1e-6*cmplx.Abs(serial.Checksums[i]) {
				t.Fatalf("np=%d: checksum %d differs: %v vs %v", np, i, par.Checksums[i], serial.Checksums[i])
			}
		}
	}
}

func TestMGConvergence(t *testing.T) {
	for _, np := range []int{1, 2, 4} {
		var res MGResult
		msg.Run(np, func(c *msg.Comm) {
			r := RunMG(c, 32, 4)
			if c.Rank() == 0 {
				res = r
			}
		})
		if !res.Verified {
			t.Fatalf("np=%d: MG failed: residual %v -> %v", np, res.InitialResidual, res.FinalResidual)
		}
		if res.FinalResidual > 0.05*res.InitialResidual {
			t.Fatalf("np=%d: weak convergence: %v -> %v", np, res.InitialResidual, res.FinalResidual)
		}
	}
}

func TestMGParallelMatchesSerial(t *testing.T) {
	var serial, par MGResult
	msg.Run(1, func(c *msg.Comm) { serial = RunMG(c, 16, 3) })
	msg.Run(4, func(c *msg.Comm) {
		r := RunMG(c, 16, 3)
		if c.Rank() == 0 {
			par = r
		}
	})
	if d := math.Abs(par.FinalResidual-serial.FinalResidual) / serial.FinalResidual; d > 1e-9 {
		t.Fatalf("parallel MG final residual differs by %v (%v vs %v)", d, par.FinalResidual, serial.FinalResidual)
	}
}

func TestCGConvergence(t *testing.T) {
	var serial, par CGResult
	msg.Run(1, func(c *msg.Comm) { serial = RunCG(c, 1400, 25) })
	if !serial.Verified {
		t.Fatalf("serial CG: %v -> %v", serial.InitialResidual, serial.FinalResidual)
	}
	msg.Run(4, func(c *msg.Comm) {
		r := RunCG(c, 1400, 25)
		if c.Rank() == 0 {
			par = r
		}
	})
	if !par.Verified {
		t.Fatal("parallel CG failed")
	}
	if d := math.Abs(par.FinalResidual-serial.FinalResidual) / (serial.FinalResidual + 1e-30); d > 1e-6 {
		t.Fatalf("CG parallel residual differs: %v vs %v", par.FinalResidual, serial.FinalResidual)
	}
}

func TestBTSPExactSolves(t *testing.T) {
	for _, np := range []int{1, 2, 4} {
		msg.Run(np, func(c *msg.Comm) {
			bt := RunBT(c, 16, 2)
			if !bt.Verified {
				t.Errorf("np=%d: BT max error %g", np, bt.Err)
			}
			sp := RunSP(c, 16, 2)
			if !sp.Verified {
				t.Errorf("np=%d: SP max error %g", np, sp.Err)
			}
		})
	}
}

func TestLUReducesResidual(t *testing.T) {
	for _, np := range []int{1, 2, 4} {
		var res PseudoResult
		msg.Run(np, func(c *msg.Comm) {
			r := RunLU(c, 16, 12)
			if c.Rank() == 0 {
				res = r
			}
		})
		if !res.Verified {
			t.Fatalf("np=%d: LU residual ratio %v", np, res.Err)
		}
	}
}

func TestTridiagSolvers(t *testing.T) {
	// thomas: solve then apply must reproduce the input.
	n := 33
	rhs := make([]float64, n)
	orig := make([]float64, n)
	g := NewLCG(7)
	for i := range rhs {
		rhs[i] = g.Next()
		orig[i] = rhs[i]
	}
	d, o := 1+2*pseudoTau, -pseudoTau
	dw := make([]float64, n)
	thomas(d, o, rhs, dw)
	back := make([]float64, n)
	applyTri(d, o, rhs, back)
	for i := range back {
		if math.Abs(back[i]-orig[i]) > 1e-12 {
			t.Fatalf("thomas round trip failed at %d: %v vs %v", i, back[i], orig[i])
		}
	}
}

func TestPentaSolver(t *testing.T) {
	n := 29
	g := NewLCG(8)
	rhs := make([]float64, n)
	orig := make([]float64, n)
	for i := range rhs {
		rhs[i] = g.Next() - 0.5
		orig[i] = rhs[i]
	}
	d, o := 1+2*pseudoTau, -pseudoTau
	c0, c1, c2 := o*o, 2*d*o, d*d+2*o*o
	band := make([]float64, 5*n)
	penta(c0, c1, c2, rhs, band)
	back := make([]float64, n)
	applyPenta(c0, c1, c2, rhs, back)
	for i := range back {
		if math.Abs(back[i]-orig[i]) > 1e-11 {
			t.Fatalf("penta round trip failed at %d", i)
		}
	}
}

func TestBlockThomas(t *testing.T) {
	nv := 17
	dBlk, oBlk := btBlocks()
	g := NewLCG(9)
	rhs := make([]float64, 3*nv)
	orig := make([]float64, 3*nv)
	for i := range rhs {
		rhs[i] = g.Next() - 0.5
		orig[i] = rhs[i]
	}
	dws := make([]m3, nv)
	blockThomas(dBlk, oBlk, rhs, dws)
	back := make([]float64, 3*nv)
	applyBlockTri(dBlk, oBlk, rhs, back)
	for i := range back {
		if math.Abs(back[i]-orig[i]) > 1e-12 {
			t.Fatalf("block thomas round trip failed at %d", i)
		}
	}
}

func TestM3Inverse(t *testing.T) {
	a := m3{4, 1, 0, 1, 3, 1, 0, 1, 2}
	inv := m3inv(a)
	id := m3mul(a, inv)
	want := m3{1, 0, 0, 0, 1, 0, 0, 0, 1}
	for i := range id {
		if math.Abs(id[i]-want[i]) > 1e-12 {
			t.Fatalf("A A^-1 != I at %d: %v", i, id[i])
		}
	}
}

func TestRunSuiteSmoke(t *testing.T) {
	results := RunSuite(2, MiniA)
	if len(results) != len(Kernels) {
		t.Fatalf("%d results", len(results))
	}
	for _, r := range results {
		if !r.Verified {
			t.Errorf("%s failed verification", r.Kernel)
		}
		if r.Ops == 0 || r.Seconds <= 0 {
			t.Errorf("%s has no measurement: %+v", r.Kernel, r)
		}
	}
	s := FormatSuite(results)
	if len(s) == 0 {
		t.Fatal("empty table")
	}
}
