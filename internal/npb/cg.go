package npb

import (
	"math"

	"repro/internal/msg"
)

// CG is the conjugate gradient kernel: solve A x = b for a random
// sparse symmetric positive-definite matrix. The parallel version
// block-partitions rows; each iteration needs the full iterate (an
// allgather) and two dot products (allreduces) -- the latency-bound
// pattern of the original benchmark.

// sparse is a CSR matrix.
type sparse struct {
	n    int
	rowp []int32
	col  []int32
	val  []float64
}

// buildSparse deterministically constructs an SPD matrix: nnz random
// off-diagonal entries per row, symmetrized, plus a dominant diagonal.
func buildSparse(n, nnzPerRow int, seed uint64) *sparse {
	g := NewLCG(seed)
	entries := make(map[[2]int32]float64)
	for i := int32(0); i < int32(n); i++ {
		for k := 0; k < nnzPerRow; k++ {
			j := int32(g.Next() * float64(n))
			if j >= int32(n) {
				j = int32(n) - 1
			}
			if j == i {
				continue
			}
			v := g.Next() - 0.5
			entries[[2]int32{i, j}] += v
			entries[[2]int32{j, i}] += v
		}
	}
	// Diagonal dominance => SPD.
	rowAbs := make([]float64, n)
	for k, v := range entries {
		rowAbs[k[0]] += math.Abs(v)
	}
	for i := int32(0); i < int32(n); i++ {
		entries[[2]int32{i, i}] = rowAbs[i] + 1
	}
	// CSR assembly (rows in order, columns sorted per row).
	s := &sparse{n: n, rowp: make([]int32, n+1)}
	cols := make([][]int32, n)
	vals := make([][]float64, n)
	for k, v := range entries {
		cols[k[0]] = append(cols[k[0]], k[1])
		vals[k[0]] = append(vals[k[0]], v)
	}
	// Sort each row for determinism.
	for i := 0; i < n; i++ {
		c, v := cols[i], vals[i]
		for a := 1; a < len(c); a++ {
			for b := a; b > 0 && c[b] < c[b-1]; b-- {
				c[b], c[b-1] = c[b-1], c[b]
				v[b], v[b-1] = v[b-1], v[b]
			}
		}
	}
	for i := 0; i < n; i++ {
		s.rowp[i] = int32(len(s.col))
		s.col = append(s.col, cols[i]...)
		s.val = append(s.val, vals[i]...)
	}
	s.rowp[n] = int32(len(s.col))
	return s
}

// matvecRows computes y[lo:hi] = A[lo:hi,:] x.
func (s *sparse) matvecRows(x, y []float64, lo, hi int) uint64 {
	var ops uint64
	for i := lo; i < hi; i++ {
		var sum float64
		for k := s.rowp[i]; k < s.rowp[i+1]; k++ {
			sum += s.val[k] * x[s.col[k]]
		}
		y[i] = sum
		ops += 2 * uint64(s.rowp[i+1]-s.rowp[i])
	}
	return ops
}

// CGResult reports convergence.
type CGResult struct {
	Result
	InitialResidual, FinalResidual float64
}

// RunCG solves an n-unknown system with the given iterations.
func RunCG(c *msg.Comm, n, iters int) CGResult {
	var res CGResult
	res.Kernel, res.Class, res.Ranks = "CG", cgClass(n), c.Size()
	p := c.Size()
	lo := n * c.Rank() / p
	hi := n * (c.Rank() + 1) / p
	var ops uint64
	verified := true

	res.Seconds = timed(func() {
		c.Phase("cg")
		// Every rank builds the same matrix deterministically (mini
		// scale; the original distributes assembly, which only
		// changes setup cost).
		A := buildSparse(n, 6, DefaultSeed)
		b := make([]float64, n)
		for i := range b {
			b[i] = 1
		}
		x := make([]float64, n)
		r := append([]float64(nil), b...)
		pv := append([]float64(nil), b...)
		ap := make([]float64, n)

		dotLocal := func(a, bb []float64) float64 {
			var s float64
			for i := lo; i < hi; i++ {
				s += a[i] * bb[i]
			}
			ops += 2 * uint64(hi-lo)
			return s
		}
		dot := func(a, bb []float64) float64 {
			return msg.Allreduce(c, dotLocal(a, bb), msg.SumF64, 8)
		}
		gatherVec := func(v []float64) {
			parts := msg.Allgather(c, append([]float64(nil), v[lo:hi]...), 8*(hi-lo))
			at := 0
			for r := 0; r < p; r++ {
				copy(v[at:], parts[r])
				at += len(parts[r])
			}
		}

		rr := dot(r, r)
		res.InitialResidual = math.Sqrt(rr)
		for it := 0; it < iters; it++ {
			gatherVec(pv)
			ops += A.matvecRows(pv, ap, lo, hi)
			alpha := rr / dot(pv, ap)
			for i := lo; i < hi; i++ {
				x[i] += alpha * pv[i]
				r[i] -= alpha * ap[i]
			}
			ops += 4 * uint64(hi-lo)
			rrNew := dot(r, r)
			beta := rrNew / rr
			rr = rrNew
			for i := lo; i < hi; i++ {
				pv[i] = r[i] + beta*pv[i]
			}
			ops += 2 * uint64(hi-lo)
		}
		res.FinalResidual = math.Sqrt(rr)
		if !(res.FinalResidual < 1e-3*res.InitialResidual) || math.IsNaN(res.FinalResidual) {
			verified = false
		}
	})
	res.Ops = msg.Allreduce(c, ops, msg.SumU64, 8)
	res.Verified = verified
	return res
}

func cgClass(n int) string {
	if n >= 10000 {
		return "miniB"
	}
	return "miniA"
}
