package npb

import (
	"math"

	"repro/internal/msg"
)

// EP is the "embarrassingly parallel" kernel: generate 2^m pairs of
// uniforms, map accepted pairs through the polar method to Gaussian
// deviates, count them in ten square annuli, and sum the deviates.
// Communication is a single reduction at the end -- the kernel every
// machine should ace (and the one where the paper's Table 3 shows
// even Loki and ASCI Red nearly tied per processor).

// EPResult carries the verification sums.
type EPResult struct {
	Result
	SumX, SumY float64
	Counts     [10]uint64
	Accepted   uint64
}

// epOpsPerPair is the documented operation charge per generated pair
// (two LCG steps, the acceptance test, and amortized transform).
const epOpsPerPair = 20

// RunEP executes EP with 2^m pairs distributed over the communicator
// by jump-ahead streams. The serial result (same m) is identical for
// any rank count, which is the verification.
func RunEP(c *msg.Comm, m uint) EPResult {
	var r EPResult
	r.Kernel, r.Class, r.Ranks = "EP", className(m, 24, 28), c.Size()
	pairs := uint64(1) << m
	r.Seconds = timed(func() {
		lo := pairs * uint64(c.Rank()) / uint64(c.Size())
		hi := pairs * uint64(c.Rank()+1) / uint64(c.Size())
		g := NewLCG(DefaultSeed)
		g.Skip(2 * lo) // two uniforms per pair
		var sx, sy float64
		var counts [10]uint64
		var acc uint64
		for p := lo; p < hi; p++ {
			x := 2*g.Next() - 1
			y := 2*g.Next() - 1
			t := x*x + y*y
			if t > 1 || t == 0 {
				continue
			}
			f := math.Sqrt(-2 * math.Log(t) / t)
			gx, gy := x*f, y*f
			acc++
			sx += gx
			sy += gy
			l := int(math.Max(math.Abs(gx), math.Abs(gy)))
			if l < 10 {
				counts[l]++
			}
		}
		c.Phase("ep")
		r.SumX = msg.Allreduce(c, sx, msg.SumF64, 8)
		r.SumY = msg.Allreduce(c, sy, msg.SumF64, 8)
		r.Accepted = msg.Allreduce(c, acc, msg.SumU64, 8)
		for l := 0; l < 10; l++ {
			r.Counts[l] = msg.Allreduce(c, counts[l], msg.SumU64, 8)
		}
	})
	r.Ops = pairs * epOpsPerPair
	// Verification: the acceptance ratio of the polar method is
	// pi/4, and every accepted pair must land in an annulus.
	ratio := float64(r.Accepted) / float64(pairs)
	var inAnnuli uint64
	for _, v := range r.Counts {
		inAnnuli += v
	}
	r.Verified = math.Abs(ratio-math.Pi/4) < 0.01 && inAnnuli == r.Accepted
	return r
}

// className maps a log2 size onto a mini-class label.
func className(m, small, large uint) string {
	switch {
	case m <= small:
		return "miniA"
	case m >= large:
		return "miniB"
	default:
		return "miniAB"
	}
}
