package npb

import (
	"math"

	"repro/internal/msg"
)

// MG is the multigrid kernel: V-cycles of the 3-D periodic Poisson
// problem A u = v with the 7-point Laplacian, weighted-Jacobi
// smoothing, full-weighting restriction and trilinear prolongation.
// Ranks own z-slabs at every level and exchange one-plane halos
// before each stencil sweep -- the nearest-neighbor pattern whose
// traffic the machine models translate into Loki-vs-Red time.

// mgGrid is one level's distributed field: nz local planes of an
// n x n x (global n) grid, plus two halo planes (index 0 and nz+1).
type mgGrid struct {
	n, nz int
	data  []float64 // (zl+1)*n*n + y*n + x
}

func newMGGrid(n, nz int) *mgGrid {
	return &mgGrid{n: n, nz: nz, data: make([]float64, (nz+2)*n*n)}
}

func (g *mgGrid) at(x, y, zl int) float64 {
	n := g.n
	x, y = (x+n)%n, (y+n)%n
	return g.data[((zl+1)*n+y)*n+x]
}

func (g *mgGrid) set(x, y, zl int, v float64) {
	n := g.n
	x, y = (x+n)%n, (y+n)%n
	g.data[((zl+1)*n+y)*n+x] = v
}

// halo exchanges the boundary planes with the neighbor ranks
// (periodic in z).
func (g *mgGrid) halo(c *msg.Comm, tag int) {
	n, nz := g.n, g.nz
	plane := n * n
	p := c.Size()
	if p == 1 {
		copy(g.data[0:plane], g.data[nz*plane:(nz+1)*plane])
		copy(g.data[(nz+1)*plane:(nz+2)*plane], g.data[plane:2*plane])
		return
	}
	up := (c.Rank() + 1) % p
	down := (c.Rank() - 1 + p) % p
	// Send my top plane up, my bottom plane down.
	c.Send(up, tag, append([]float64(nil), g.data[nz*plane:(nz+1)*plane]...), 8*plane)
	c.Send(down, tag+1, append([]float64(nil), g.data[plane:2*plane]...), 8*plane)
	copy(g.data[0:plane], c.Recv(down, tag).Data.([]float64))
	copy(g.data[(nz+1)*plane:(nz+2)*plane], c.Recv(up, tag+1).Data.([]float64))
}

// residual computes r = v - A u with A = 7-point Laplacian (h = 1).
// u's halo must be current.
func mgResidual(u, v, r *mgGrid) {
	n, nz := u.n, u.nz
	for zl := 0; zl < nz; zl++ {
		for y := 0; y < n; y++ {
			for x := 0; x < n; x++ {
				au := u.at(x-1, y, zl) + u.at(x+1, y, zl) +
					u.at(x, y-1, zl) + u.at(x, y+1, zl) +
					u.at(x, y, zl-1) + u.at(x, y, zl+1) - 6*u.at(x, y, zl)
				r.set(x, y, zl, v.at(x, y, zl)-au)
			}
		}
	}
}

// smooth runs one weighted-Jacobi sweep u <- u + w/6 (v - A u).
func mgSmooth(u, v, tmp *mgGrid, w float64) {
	mgResidual(u, v, tmp)
	n, nz := u.n, u.nz
	for zl := 0; zl < nz; zl++ {
		for y := 0; y < n; y++ {
			for x := 0; x < n; x++ {
				u.set(x, y, zl, u.at(x, y, zl)-w/6*tmp.at(x, y, zl))
			}
		}
	}
}

// restrict full-weights the fine residual onto the coarse grid
// (coarse point (X,Y,Z) at fine (2X,2Y,2Z); tensor [1/4,1/2,1/4]).
// The fine grid's halo must be current.
func mgRestrict(fine, coarse *mgGrid) {
	cn, cnz := coarse.n, coarse.nz
	w1 := [3]float64{0.25, 0.5, 0.25}
	for zl := 0; zl < cnz; zl++ {
		for y := 0; y < cn; y++ {
			for x := 0; x < cn; x++ {
				var s float64
				for dz := -1; dz <= 1; dz++ {
					for dy := -1; dy <= 1; dy++ {
						for dx := -1; dx <= 1; dx++ {
							s += w1[dx+1] * w1[dy+1] * w1[dz+1] *
								fine.at(2*x+dx, 2*y+dy, 2*zl+dz)
						}
					}
				}
				coarse.set(x, y, zl, s)
			}
		}
	}
}

// prolong adds the trilinear interpolation of the coarse correction
// onto the fine grid. The coarse halo must be current.
func mgProlong(coarse, fine *mgGrid) {
	fn, fnz := fine.n, fine.nz
	for zl := 0; zl < fnz; zl++ {
		for y := 0; y < fn; y++ {
			for x := 0; x < fn; x++ {
				// Coarse coordinates bracketing this fine point.
				cx, rx := x/2, x%2
				cy, ry := y/2, y%2
				cz, rz := zl/2, zl%2
				var s float64
				if rx == 0 && ry == 0 && rz == 0 {
					s = coarse.at(cx, cy, cz)
				} else {
					// Average the 2^(set bits) bracketing points.
					cnt := 0.0
					for dz := 0; dz <= rz; dz++ {
						for dy := 0; dy <= ry; dy++ {
							for dx := 0; dx <= rx; dx++ {
								s += coarse.at(cx+dx, cy+dy, cz+dz)
								cnt++
							}
						}
					}
					s /= cnt
				}
				fine.set(x, y, zl, fine.at(x, y, zl)+s)
			}
		}
	}
}

// MGResult reports the residual history.
type MGResult struct {
	Result
	InitialResidual, FinalResidual float64
}

// RunMG solves the n^3 periodic Poisson problem with the given number
// of V-cycles. n must be a power of two; the rank count must divide
// n/2^(levels-1) so every level keeps at least one local plane.
func RunMG(c *msg.Comm, n, cycles int) MGResult {
	var res MGResult
	res.Kernel, res.Class, res.Ranks = "MG", ftClass(n), c.Size()
	p := c.Size()
	// Choose the level count so the coarsest grid still has >= 1
	// plane per rank and is at least 4 points across.
	levels := 1
	for sz := n; sz/2 >= 4 && (sz/2)%p == 0 && sz/2/p >= 1; sz /= 2 {
		levels++
	}

	type level struct{ u, v, r, tmp *mgGrid }
	lv := make([]level, levels)
	sz := n
	for l := 0; l < levels; l++ {
		nz := sz / p
		lv[l] = level{newMGGrid(sz, nz), newMGGrid(sz, nz), newMGGrid(sz, nz), newMGGrid(sz, nz)}
		sz /= 2
	}

	var ops uint64
	verified := true
	res.Seconds = timed(func() {
		c.Phase("mg")
		// Zero-mean random right-hand side, identical across rank
		// counts (global stream with jump-ahead).
		f := lv[0]
		g := NewLCG(DefaultSeed)
		zoff := c.Rank() * f.v.nz
		g.Skip(uint64(zoff * n * n))
		var localSum float64
		for zl := 0; zl < f.v.nz; zl++ {
			for y := 0; y < n; y++ {
				for x := 0; x < n; x++ {
					v := g.Next() - 0.5
					f.v.set(x, y, zl, v)
					localSum += v
				}
			}
		}
		mean := msg.Allreduce(c, localSum, msg.SumF64, 8) / float64(n*n*n)
		for i := range f.v.data {
			f.v.data[i] -= mean
		}

		norm := func(gr *mgGrid) float64 {
			var s float64
			for zl := 0; zl < gr.nz; zl++ {
				for y := 0; y < gr.n; y++ {
					for x := 0; x < gr.n; x++ {
						val := gr.at(x, y, zl)
						s += val * val
					}
				}
			}
			return math.Sqrt(msg.Allreduce(c, s, msg.SumF64, 8))
		}

		f.u.halo(c, 100)
		mgResidual(f.u, f.v, f.r)
		res.InitialResidual = norm(f.r)

		var vcycle func(l int)
		vcycle = func(l int) {
			cur := lv[l]
			const w = 0.8
			for s := 0; s < 2; s++ {
				cur.u.halo(c, 100+4*l)
				mgSmooth(cur.u, cur.v, cur.tmp, w)
				ops += uint64(10 * cur.u.n * cur.u.n * cur.u.nz)
			}
			if l == levels-1 {
				for s := 0; s < 8; s++ {
					cur.u.halo(c, 100+4*l)
					mgSmooth(cur.u, cur.v, cur.tmp, w)
					ops += uint64(10 * cur.u.n * cur.u.n * cur.u.nz)
				}
				return
			}
			cur.u.halo(c, 100+4*l)
			mgResidual(cur.u, cur.v, cur.r)
			cur.r.halo(c, 101+4*l)
			next := lv[l+1]
			mgRestrict(cur.r, next.v)
			for i := range next.u.data {
				next.u.data[i] = 0
			}
			vcycle(l + 1)
			next.u.halo(c, 102+4*l)
			mgProlong(next.u, cur.u)
			for s := 0; s < 2; s++ {
				cur.u.halo(c, 100+4*l)
				mgSmooth(cur.u, cur.v, cur.tmp, w)
				ops += uint64(10 * cur.u.n * cur.u.n * cur.u.nz)
			}
		}
		for cy := 0; cy < cycles; cy++ {
			vcycle(0)
		}
		f.u.halo(c, 100)
		mgResidual(f.u, f.v, f.r)
		res.FinalResidual = norm(f.r)
		if !(res.FinalResidual < 0.2*res.InitialResidual) || math.IsNaN(res.FinalResidual) {
			verified = false
		}
	})
	res.Ops = msg.Allreduce(c, ops, msg.SumU64, 8)
	res.Verified = verified
	return res
}
