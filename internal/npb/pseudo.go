package npb

import (
	"math"

	"repro/internal/msg"
)

// Reduced-order BT, SP and LU. The NPB originals solve the 3-D
// compressible Navier-Stokes equations with three different implicit
// schemes; what distinguishes them computationally is the shape of
// the inner solver:
//
//	BT: block-tridiagonal line solves (5x5 blocks) along each axis
//	SP: scalar pentadiagonal line solves along each axis
//	LU: SSOR relaxation sweeps of the full operator
//
// The reductions keep exactly those shapes on a scalar model problem,
// the ADI-factored implicit heat equation
//
//	(I - tau Lx)(I - tau Ly)(I - tau Lz) u = rhs
//
// with Dirichlet boundaries: 3x3 blocks coupled by a fixed SPD matrix
// for BT, the squared factor (I - tau L)^2 (pentadiagonal) for SP,
// and red-black SSOR for LU (the wavefront sweep of the original is
// replaced by the standard parallel coloring). Ranks own z-slabs: x/y
// line solves are rank-local, z solves go through a global transpose
// (BT, SP) and halo exchanges (LU), matching the originals'
// communication structure. Every solver verifies against a
// manufactured solution.

const pseudoTau = 0.1

// --- 1-D building blocks ----------------------------------------------

// thomas solves the Dirichlet tridiagonal system with constant
// diagonal d and off-diagonal o along rhs, using dw as scratch.
func thomas(d, o float64, rhs, dw []float64) {
	n := len(rhs)
	dw[0] = d
	for i := 1; i < n; i++ {
		m := o / dw[i-1]
		dw[i] = d - m*o
		rhs[i] -= m * rhs[i-1]
	}
	rhs[n-1] /= dw[n-1]
	for i := n - 2; i >= 0; i-- {
		rhs[i] = (rhs[i] - o*rhs[i+1]) / dw[i]
	}
}

// applyTri computes out = (d I + o Shift) rhs for the Dirichlet
// tridiagonal operator.
func applyTri(d, o float64, u, out []float64) {
	n := len(u)
	for i := 0; i < n; i++ {
		v := d * u[i]
		if i > 0 {
			v += o * u[i-1]
		}
		if i < n-1 {
			v += o * u[i+1]
		}
		out[i] = v
	}
}

// penta solves the Dirichlet pentadiagonal system with constant bands
// (c2 center, c1 first off, c0 second off) by banded elimination
// without pivoting (the operator is diagonally dominant).
func penta(c0, c1, c2 float64, rhs []float64, band []float64) {
	n := len(rhs)
	// band holds rows of 5: [i*5+k] = coefficient of u[i-2+k].
	for i := 0; i < n; i++ {
		band[i*5+0] = c0
		band[i*5+1] = c1
		band[i*5+2] = c2
		band[i*5+3] = c1
		band[i*5+4] = c0
	}
	// Forward elimination of the two sub-diagonals.
	for i := 0; i < n-1; i++ {
		piv := band[i*5+2]
		// Row i+1, entry below pivot (offset -1 => slot 1).
		m1 := band[(i+1)*5+1] / piv
		band[(i+1)*5+1] = 0
		band[(i+1)*5+2] -= m1 * band[i*5+3]
		band[(i+1)*5+3] -= m1 * band[i*5+4]
		rhs[i+1] -= m1 * rhs[i]
		if i < n-2 {
			m2 := band[(i+2)*5+0] / piv
			band[(i+2)*5+0] = 0
			band[(i+2)*5+1] -= m2 * band[i*5+3]
			band[(i+2)*5+2] -= m2 * band[i*5+4]
			rhs[i+2] -= m2 * rhs[i]
		}
	}
	// Back substitution.
	rhs[n-1] /= band[(n-1)*5+2]
	if n >= 2 {
		rhs[n-2] = (rhs[n-2] - band[(n-2)*5+3]*rhs[n-1]) / band[(n-2)*5+2]
	}
	for i := n - 3; i >= 0; i-- {
		rhs[i] = (rhs[i] - band[i*5+3]*rhs[i+1] - band[i*5+4]*rhs[i+2]) / band[i*5+2]
	}
}

// applyPenta computes out = pentadiagonal(c0,c1,c2) u (Dirichlet).
func applyPenta(c0, c1, c2 float64, u, out []float64) {
	n := len(u)
	for i := 0; i < n; i++ {
		v := c2 * u[i]
		if i >= 1 {
			v += c1 * u[i-1]
		}
		if i >= 2 {
			v += c0 * u[i-2]
		}
		if i < n-1 {
			v += c1 * u[i+1]
		}
		if i < n-2 {
			v += c0 * u[i+2]
		}
		out[i] = v
	}
}

// --- 3x3 block building blocks (BT) ------------------------------------

// m3 is a 3x3 matrix in row-major order.
type m3 [9]float64

// btCoupling is the fixed SPD coupling matrix of the BT reduction.
var btCoupling = m3{1.0, 0.5, 0.0, 0.5, 1.0, 0.5, 0.0, 0.5, 1.0}

func m3mul(a, b m3) m3 {
	var c m3
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			c[i*3+j] = a[i*3]*b[j] + a[i*3+1]*b[3+j] + a[i*3+2]*b[6+j]
		}
	}
	return c
}

func m3vec(a m3, v [3]float64) [3]float64 {
	return [3]float64{
		a[0]*v[0] + a[1]*v[1] + a[2]*v[2],
		a[3]*v[0] + a[4]*v[1] + a[5]*v[2],
		a[6]*v[0] + a[7]*v[1] + a[8]*v[2],
	}
}

func m3sub(a, b m3) m3 {
	var c m3
	for i := range c {
		c[i] = a[i] - b[i]
	}
	return c
}

func m3inv(a m3) m3 {
	d := a[0]*(a[4]*a[8]-a[5]*a[7]) - a[1]*(a[3]*a[8]-a[5]*a[6]) + a[2]*(a[3]*a[7]-a[4]*a[6])
	inv := 1 / d
	return m3{
		(a[4]*a[8] - a[5]*a[7]) * inv, (a[2]*a[7] - a[1]*a[8]) * inv, (a[1]*a[5] - a[2]*a[4]) * inv,
		(a[5]*a[6] - a[3]*a[8]) * inv, (a[0]*a[8] - a[2]*a[6]) * inv, (a[2]*a[3] - a[0]*a[5]) * inv,
		(a[3]*a[7] - a[4]*a[6]) * inv, (a[1]*a[6] - a[0]*a[7]) * inv, (a[0]*a[4] - a[1]*a[3]) * inv,
	}
}

// btBlocks returns the constant blocks of the BT line operator:
// D = I + 2 tau C, O = -tau C.
func btBlocks() (dBlk, oBlk m3) {
	for i := range btCoupling {
		oBlk[i] = -pseudoTau * btCoupling[i]
		dBlk[i] = 2 * pseudoTau * btCoupling[i]
	}
	dBlk[0] += 1
	dBlk[4] += 1
	dBlk[8] += 1
	return dBlk, oBlk
}

// blockThomas solves the Dirichlet block-tridiagonal system with
// constant blocks along a line of nv 3-vectors stored contiguously in
// rhs (length 3*nv). dws is scratch for the nv modified diagonal
// inverses.
func blockThomas(dBlk, oBlk m3, rhs []float64, dws []m3) {
	nv := len(rhs) / 3
	dws[0] = m3inv(dBlk)
	for i := 1; i < nv; i++ {
		m := m3mul(oBlk, dws[i-1])
		dws[i] = m3inv(m3sub(dBlk, m3mul(m, oBlk)))
		mv := m3vec(m, [3]float64{rhs[(i-1)*3], rhs[(i-1)*3+1], rhs[(i-1)*3+2]})
		rhs[i*3] -= mv[0]
		rhs[i*3+1] -= mv[1]
		rhs[i*3+2] -= mv[2]
	}
	v := m3vec(dws[nv-1], [3]float64{rhs[(nv-1)*3], rhs[(nv-1)*3+1], rhs[(nv-1)*3+2]})
	rhs[(nv-1)*3], rhs[(nv-1)*3+1], rhs[(nv-1)*3+2] = v[0], v[1], v[2]
	for i := nv - 2; i >= 0; i-- {
		ov := m3vec(oBlk, [3]float64{rhs[(i+1)*3], rhs[(i+1)*3+1], rhs[(i+1)*3+2]})
		w := [3]float64{rhs[i*3] - ov[0], rhs[i*3+1] - ov[1], rhs[i*3+2] - ov[2]}
		w = m3vec(dws[i], w)
		rhs[i*3], rhs[i*3+1], rhs[i*3+2] = w[0], w[1], w[2]
	}
}

// applyBlockTri computes out = blocktridiag(D, O) u along a line of
// 3-vectors (Dirichlet).
func applyBlockTri(dBlk, oBlk m3, u, out []float64) {
	nv := len(u) / 3
	for i := 0; i < nv; i++ {
		v := m3vec(dBlk, [3]float64{u[i*3], u[i*3+1], u[i*3+2]})
		if i > 0 {
			w := m3vec(oBlk, [3]float64{u[(i-1)*3], u[(i-1)*3+1], u[(i-1)*3+2]})
			v[0] += w[0]
			v[1] += w[1]
			v[2] += w[2]
		}
		if i < nv-1 {
			w := m3vec(oBlk, [3]float64{u[(i+1)*3], u[(i+1)*3+1], u[(i+1)*3+2]})
			v[0] += w[0]
			v[1] += w[1]
			v[2] += w[2]
		}
		out[i*3], out[i*3+1], out[i*3+2] = v[0], v[1], v[2]
	}
}

// --- slab plumbing ------------------------------------------------------

// lineOp processes every line of a z-slab field along the given local
// axis (0=x contiguous, 1=y strided); the closure receives one packed
// line of n points x comp values.
func forEachLine(f []float64, n, nz, comp, axis int, line []float64, fn func(line []float64)) {
	switch axis {
	case 0:
		for zy := 0; zy < nz*n; zy++ {
			base := zy * n * comp
			fn(f[base : base+n*comp])
		}
	case 1:
		for zl := 0; zl < nz; zl++ {
			for x := 0; x < n; x++ {
				for y := 0; y < n; y++ {
					src := ((zl*n+y)*n + x) * comp
					copy(line[y*comp:(y+1)*comp], f[src:src+comp])
				}
				fn(line[:n*comp])
				for y := 0; y < n; y++ {
					dst := ((zl*n+y)*n + x) * comp
					copy(f[dst:dst+comp], line[y*comp:(y+1)*comp])
				}
			}
		}
	default:
		panic("npb: forEachLine axis must be 0 or 1")
	}
}

// transposeZX exchanges a z-slab field (layout A, index
// ((zl*n+y)*n+x)*comp) into an x-slab field (layout B, index
// ((xl*n+y)*n+z)*comp) across the communicator. The exchange is
// symmetric: calling it on a layout-B field returns layout A.
func transposeZX(c *msg.Comm, a, b []float64, n, nz, comp int) {
	p := c.Size()
	send := make([][]float64, p)
	for s := 0; s < p; s++ {
		blk := make([]float64, 0, nz*n*nz*comp)
		for i := 0; i < nz; i++ {
			for y := 0; y < n; y++ {
				for j := 0; j < nz; j++ {
					src := ((i*n+y)*n + s*nz + j) * comp
					blk = append(blk, a[src:src+comp]...)
				}
			}
		}
		send[s] = blk
	}
	recv := msg.Alltoallv(c, send, 8*comp)
	for s := 0; s < p; s++ {
		blk := recv[s]
		at := 0
		for i := 0; i < nz; i++ {
			for y := 0; y < n; y++ {
				for j := 0; j < nz; j++ {
					dst := ((j*n+y)*n + s*nz + i) * comp
					copy(b[dst:dst+comp], blk[at:at+comp])
					at += comp
				}
			}
		}
	}
}

// --- BT ------------------------------------------------------------------

// PseudoResult reports solver quality.
type PseudoResult struct {
	Result
	// Err is the max-norm deviation from the manufactured solution
	// (BT, SP: direct solves, ~roundoff) or the residual reduction
	// factor (LU).
	Err float64
}

// manufactured fills a deterministic smooth-ish field.
func manufactured(f []float64, seed uint64, offset int) {
	g := NewLCG(seed)
	g.Skip(uint64(offset))
	for i := range f {
		f[i] = g.Next() - 0.5
	}
}

// RunBT solves the 3-axis block-tridiagonal factored system iters
// times on an n^3 grid of 3-vectors.
func RunBT(c *msg.Comm, n, iters int) PseudoResult {
	return runADI(c, n, iters, "BT", 3,
		func(line []float64, scratch *adiScratch) {
			blockThomas(scratch.dBlk, scratch.oBlk, line, scratch.dws)
		},
		func(u, out []float64, scratch *adiScratch) {
			applyBlockTri(scratch.dBlk, scratch.oBlk, u, out)
		},
		34*3, // ops per point per axis: block solve arithmetic
	)
}

// RunSP solves the 3-axis pentadiagonal factored system.
func RunSP(c *msg.Comm, n, iters int) PseudoResult {
	return runADI(c, n, iters, "SP", 1,
		func(line []float64, scratch *adiScratch) {
			penta(scratch.c0, scratch.c1, scratch.c2, line, scratch.band)
		},
		func(u, out []float64, scratch *adiScratch) {
			applyPenta(scratch.c0, scratch.c1, scratch.c2, u, out)
		},
		19,
	)
}

type adiScratch struct {
	dBlk, oBlk m3
	dws        []m3
	band       []float64
	c0, c1, c2 float64
}

// runADI is the shared BT/SP driver: build rhs = Az Ay Ax u*, then
// invert axis by axis (x, y local; z via transpose) and compare to u*.
func runADI(c *msg.Comm, n, iters int, kernel string, comp int,
	solve func(line []float64, s *adiScratch),
	apply func(u, out []float64, s *adiScratch),
	opsPerPoint int) PseudoResult {

	var res PseudoResult
	res.Kernel, res.Class, res.Ranks = kernel, ftClass(n), c.Size()
	p := c.Size()
	if n%p != 0 {
		panic("npb: grid must be divisible by rank count")
	}
	nz := n / p

	scratch := &adiScratch{
		dws:  make([]m3, n),
		band: make([]float64, 5*n),
	}
	scratch.dBlk, scratch.oBlk = btBlocks()
	// SP bands: (I - tau L)^2 with L the 1-D Dirichlet Laplacian.
	d := 1 + 2*pseudoTau
	o := -pseudoTau
	scratch.c0 = o * o
	scratch.c1 = 2 * d * o
	scratch.c2 = d*d + 2*o*o

	size := n * n * nz * comp
	uStar := make([]float64, size)
	rhs := make([]float64, size)
	trans := make([]float64, size)
	line := make([]float64, n*comp)
	out := make([]float64, n*comp)

	manufactured(uStar, DefaultSeed, c.Rank()*size)

	var ops uint64
	res.Seconds = timed(func() {
		c.Phase(kernel)
		for it := 0; it < iters; it++ {
			copy(rhs, uStar)
			// Apply Ax, Ay locally, then Az in the transposed layout.
			forEachLine(rhs, n, nz, comp, 0, line, func(l []float64) {
				apply(l, out[:len(l)], scratch)
				copy(l, out[:len(l)])
			})
			forEachLine(rhs, n, nz, comp, 1, line, func(l []float64) {
				apply(l, out[:len(l)], scratch)
				copy(l, out[:len(l)])
			})
			transposeZX(c, rhs, trans, n, nz, comp)
			// In layout B the old z axis is contiguous: axis 0.
			forEachLine(trans, n, nz, comp, 0, line, func(l []float64) {
				apply(l, out[:len(l)], scratch)
				copy(l, out[:len(l)])
			})
			// Invert in reverse order: z first (still transposed).
			forEachLine(trans, n, nz, comp, 0, line, func(l []float64) {
				solve(l, scratch)
			})
			transposeZX(c, trans, rhs, n, nz, comp)
			forEachLine(rhs, n, nz, comp, 1, line, func(l []float64) {
				solve(l, scratch)
			})
			forEachLine(rhs, n, nz, comp, 0, line, func(l []float64) {
				solve(l, scratch)
			})
			ops += uint64(opsPerPoint) * uint64(n*n*nz) * 6
		}
	})
	// Verification: direct solves recover the manufactured field.
	maxErr := 0.0
	for i := range rhs {
		if e := math.Abs(rhs[i] - uStar[i]); e > maxErr {
			maxErr = e
		}
	}
	maxErr = msg.Allreduce(c, maxErr, msg.MaxF64, 8)
	res.Err = maxErr
	res.Verified = maxErr < 1e-10
	res.Ops = msg.Allreduce(c, ops, msg.SumU64, 8)
	return res
}
