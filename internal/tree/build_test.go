package tree

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/grav"
	"repro/internal/ic"
	"repro/internal/keys"
)

// buildTestSystem returns a key-sorted clustered system.
func buildTestSystem(n int, seed int64) (*core.System, keys.Domain) {
	sys := ic.Plummer(n, 1.0, seed)
	d := keys.NewDomain(sys.Pos)
	sys.AssignKeys(d)
	sys.SortByKey()
	return sys, d
}

// treesEqual asserts two trees are byte-identical: same cells (all
// fields, moments and RCrit included) and same group order.
func treesEqual(t *testing.T, want, got *Tree) {
	t.Helper()
	if want.NCells() != got.NCells() {
		t.Fatalf("cell count %d != %d", got.NCells(), want.NCells())
	}
	want.Cells.Range(func(k keys.Key, wc *Cell) bool {
		gc := got.Cell(k)
		if gc == nil {
			t.Fatalf("cell %v missing from parallel build", k)
		}
		if *gc != *wc {
			t.Fatalf("cell %v differs:\n serial  %+v\n parallel %+v", k, *wc, *gc)
		}
		return true
	})
	if len(want.Groups) != len(got.Groups) {
		t.Fatalf("group count %d != %d", len(got.Groups), len(want.Groups))
	}
	for i := range want.Groups {
		if want.Groups[i] != got.Groups[i] {
			t.Fatalf("group %d: %v != %v", i, got.Groups[i], want.Groups[i])
		}
	}
}

// The tentpole determinism claim: the fan-out build produces the
// serial build's tree byte for byte, for any worker count, bucket
// size, and force-split interval.
func TestParallelBuildMatchesSerial(t *testing.T) {
	for _, n := range []int{0, 1, 50, 5000} {
		sys, d := buildTestSystem(n, 31)
		mac := grav.MACParams{Kind: grav.MACSalmonWarren, AccelTol: 1e-4, Quad: true}
		for _, bucket := range []int{1, 16} {
			serial := (&Builder{Workers: 1}).BuildRange(sys, d, mac, bucket, 0, EndOffset)
			if err := serial.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{2, 8} {
				b := &Builder{Workers: workers, minParallel: 1}
				par := b.BuildRange(sys, d, mac, bucket, 0, EndOffset)
				if err := par.CheckInvariants(); err != nil {
					t.Fatalf("n=%d bucket=%d w=%d: %v", n, bucket, workers, err)
				}
				treesEqual(t, serial, par)
				// A reused Builder must keep producing the same tree.
				treesEqual(t, serial, b.BuildRange(sys, d, mac, bucket, 0, EndOffset))
			}
		}
	}
}

// Force-split ranges (the parallel engine's branch-cell guarantee)
// must survive the fan-out build too.
func TestParallelBuildRangeSplits(t *testing.T) {
	sys, d := buildTestSystem(4000, 37)
	mac := grav.DefaultMAC()
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 8; trial++ {
		a := uint64(rng.Int63()) % EndOffset
		b := uint64(rng.Int63()) % EndOffset
		if a > b {
			a, b = b, a
		}
		serial := (&Builder{Workers: 1}).BuildRange(sys, d, mac, 16, a, b)
		par := (&Builder{Workers: 8, minParallel: 1}).BuildRange(sys, d, mac, 16, a, b)
		treesEqual(t, serial, par)
	}
}

// The package-level BuildRange must behave exactly as before the
// Builder existed (the serial driver and every old test ride on it).
func TestBuildRangeWrapperUnchanged(t *testing.T) {
	sys, d := buildTestSystem(3000, 41)
	mac := grav.DefaultMAC()
	wrapped := BuildRange(sys, d, mac, 16, 0, EndOffset)
	serial := (&Builder{Workers: 1}).BuildRange(sys, d, mac, 16, 0, EndOffset)
	treesEqual(t, serial, wrapped)
	if err := wrapped.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestUpperBound(t *testing.T) {
	for _, n := range []int{0, 1, 7, 64, 65, 500} {
		ks := make([]keys.Key, n)
		for i := range ks {
			ks[i] = keys.Key(1<<63 | uint64(i*3)) // sorted, gaps of 3
		}
		for q := -1; q < 3*n+2; q++ {
			max := keys.Key(1<<63 | uint64(q))
			if q < 0 {
				max = keys.Key(1 << 63)
			}
			want := 0
			for want < n && ks[want] <= max {
				want++
			}
			if got := upperBound(ks, max); got != want {
				t.Fatalf("n=%d q=%d: upperBound=%d want %d", n, q, got, want)
			}
		}
	}
}
