// Parallel fan-out tree construction. The sorted body array is
// partitioned at octant boundaries (recursing into the largest
// partition until there are a few per worker), each partition's
// subtree is built concurrently into a per-partition cell buffer,
// the buffers are bulk-inserted into the shared hash table, and the
// root spine above the partitions is assembled serially. Moments and
// RCrit are byte-identical to the serial build for any worker count:
// the partitions plus spine are exactly the cells the serial
// recursion creates, and every internal cell combines the same child
// moments in the same octant order.

package tree

import (
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/diag"
	"repro/internal/grav"
	"repro/internal/htab"
	"repro/internal/keys"
)

// buildMinParallel is the body count below which partitioning and
// worker fan-out cost more than the build itself.
const buildMinParallel = 1 << 14

// partsPerWorker over-decomposes so the largest-first greedy schedule
// can balance uneven octant populations.
const partsPerWorker = 4

// part is one contiguous run of the sorted body array, rooted at key.
type part struct {
	key    keys.Key
	lo, hi int
}

// spineRec remembers an internal cell above the partitions; its
// moments are combined from its children after the partitions finish.
type spineRec struct {
	key    keys.Key
	lo, hi int
	mask   uint8
}

// cellSink collects the cells and leaf groups of one partition's
// subtree in DFS order.
type cellSink struct {
	cells  []Cell
	groups []keys.Key
}

// Builder constructs trees, reusing its partition and cell-buffer
// scratch across builds (one Builder per rank, like core.Sorter). The
// zero value is ready to use.
type Builder struct {
	// Workers caps the build goroutines; 0 means automatic
	// (GOMAXPROCS, capped), 1 forces the serial path.
	Workers int
	// Sub, when non-nil, receives the construction sub-breakdown as
	// the phases "treebuild/build" (partition + concurrent subtree
	// builds) and "treebuild/insert" (bulk hash insertion + spine).
	Sub *diag.Timer

	// minParallel overrides buildMinParallel in tests.
	minParallel int

	parts    []part
	partsTmp []part
	spine    []spineRec
	order    []int32
	sinks    []cellSink
}

// NewBuilder returns a Builder with the given worker cap.
func NewBuilder(workers int) *Builder { return &Builder{Workers: workers} }

func (b *Builder) effWorkers(n int) int {
	minP := b.minParallel
	if minP <= 0 {
		minP = buildMinParallel
	}
	if n < minP {
		return 1
	}
	w := b.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
		if w > 8 {
			w = 8
		}
	}
	if w < 1 {
		w = 1
	}
	return w
}

// BuildRange is Builder's counterpart of the package-level BuildRange:
// same contract, same resulting tree, byte for byte.
func (b *Builder) BuildRange(sys *core.System, d keys.Domain, mac grav.MACParams, bucket int, lo, hi uint64) *Tree {
	if bucket <= 0 {
		bucket = DefaultBucketSize
	}
	if !sys.Sorted() {
		panic("tree: bodies must be sorted by key before Build")
	}
	t := &Tree{
		Sys:     sys,
		Domain:  d,
		MAC:     mac,
		Bucket:  bucket,
		Cells:   htab.New[Cell](2 * (sys.Len()/bucket + 16)),
		rangeLo: lo, rangeHi: hi,
	}
	if b.Sub != nil {
		b.Sub.Start("treebuild/build")
	}
	w := b.effWorkers(sys.Len())
	b.partition(t, w)
	b.runParts(t, w)
	if b.Sub != nil {
		b.Sub.Start("treebuild/insert")
	}
	b.assemble(t)
	if b.Sub != nil {
		b.Sub.Stop()
	}
	return t
}

// expandable reports whether the serial recursion would subdivide
// this cell (the exact complement of the leaf rule in buildInto).
func (t *Tree) expandable(p part) bool {
	if p.key.Level() == keys.MaxLevel {
		return false
	}
	inside := KeyOffset(p.key.MinBody()) >= t.rangeLo && KeyOffset(p.key.MaxBody()) < t.rangeHi
	return !(p.hi-p.lo <= t.Bucket && inside)
}

// partition splits [0, N) at octant boundaries until there are
// roughly partsPerWorker partitions per worker, always expanding the
// most populous expandable partition. Expanded cells are recorded as
// spine records for assemble.
func (b *Builder) partition(t *Tree, w int) {
	b.parts = append(b.parts[:0], part{key: keys.Root, lo: 0, hi: t.Sys.Len()})
	b.spine = b.spine[:0]
	if w == 1 {
		return
	}
	target := partsPerWorker * w
	for len(b.parts) < target {
		best := -1
		for i, p := range b.parts {
			if !t.expandable(p) {
				continue
			}
			if best < 0 || p.hi-p.lo > b.parts[best].hi-b.parts[best].lo {
				best = i
			}
		}
		if best < 0 {
			break
		}
		p := b.parts[best]
		var kids [8]part
		nk := 0
		var mask uint8
		cur := p.lo
		for oct := 0; oct < 8; oct++ {
			ck := p.key.Child(oct)
			end := cur + upperBound(t.Sys.Key[cur:p.hi], ck.MaxBody())
			if end > cur {
				kids[nk] = part{key: ck, lo: cur, hi: end}
				nk++
				mask |= 1 << uint(oct)
			}
			cur = end
		}
		b.spine = append(b.spine, spineRec{key: p.key, lo: p.lo, hi: p.hi, mask: mask})
		// Splice the children in place of the parent, preserving the
		// Morton order of the partition list.
		b.partsTmp = append(b.partsTmp[:0], b.parts[best+1:]...)
		b.parts = append(b.parts[:best], kids[:nk]...)
		b.parts = append(b.parts, b.partsTmp...)
	}
}

// runParts builds every partition's subtree, concurrently when there
// is more than one worker. Workers claim partitions largest-first off
// an atomic counter (the ForcePool idiom), writing into disjoint
// per-partition sinks.
func (b *Builder) runParts(t *Tree, w int) {
	np := len(b.parts)
	for len(b.sinks) < np {
		b.sinks = append(b.sinks, cellSink{})
	}
	if np == 1 || w == 1 {
		for pi := range b.parts {
			b.buildPart(t, pi)
		}
		return
	}
	b.order = b.order[:0]
	for pi := range b.parts {
		b.order = append(b.order, int32(pi))
	}
	sort.Slice(b.order, func(i, j int) bool {
		a, c := b.parts[b.order[i]], b.parts[b.order[j]]
		return a.hi-a.lo > c.hi-c.lo
	})
	if w > np {
		w = np
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for k := 0; k < w; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := next.Add(1) - 1
				if i >= int64(len(b.order)) {
					return
				}
				b.buildPart(t, int(b.order[i]))
			}
		}()
	}
	wg.Wait()
}

func (b *Builder) buildPart(t *Tree, pi int) {
	s := &b.sinks[pi]
	s.cells = s.cells[:0]
	s.groups = s.groups[:0]
	p := b.parts[pi]
	t.buildInto(s, p.key, p.lo, p.hi)
}

// assemble bulk-inserts the partition subtrees in Morton order and
// builds the spine cells in reverse creation order, so every child
// (partition root or deeper spine cell) is in the table before its
// parent's moments are combined.
func (b *Builder) assemble(t *Tree) {
	for pi := range b.parts {
		for _, c := range b.sinks[pi].cells {
			t.Cells.Insert(c.Key, c)
		}
		t.Groups = append(t.Groups, b.sinks[pi].groups...)
	}
	for i := len(b.spine) - 1; i >= 0; i-- {
		r := b.spine[i]
		var children [8]grav.Multipole
		present := children[:0]
		for oct := 0; oct < 8; oct++ {
			if r.mask&(1<<uint(oct)) != 0 {
				present = append(present, t.Cells.Ptr(r.key.Child(oct)).Mp)
			}
		}
		mp := grav.Combine(present)
		center, size := t.Domain.CellCenter(r.key)
		c := Cell{
			Key:       r.key,
			Mp:        mp,
			First:     int32(r.lo),
			N:         int32(r.hi - r.lo),
			ChildMask: r.mask,
		}
		c.RCrit = grav.RCrit(&mp, size, mp.COM.Sub(center).Norm(), t.MAC)
		t.Cells.Insert(r.key, c)
	}
}

// buildInto is the serial subtree recursion: identical arithmetic to
// the historical Tree.build, but emitting cells into a sink so
// partitions can build concurrently without touching the shared
// table.
func (t *Tree) buildInto(sink *cellSink, key keys.Key, lo, hi int) grav.Multipole {
	center, size := t.Domain.CellCenter(key)
	inside := KeyOffset(key.MinBody()) >= t.rangeLo && KeyOffset(key.MaxBody()) < t.rangeHi
	if (hi-lo <= t.Bucket && inside) || key.Level() == keys.MaxLevel {
		mp := grav.FromBodies(t.Sys.Pos[lo:hi], t.Sys.Mass[lo:hi])
		c := Cell{
			Key:   key,
			Mp:    mp,
			First: int32(lo),
			N:     int32(hi - lo),
			Leaf:  true,
		}
		c.RCrit = grav.RCrit(&mp, size, mp.COM.Sub(center).Norm(), t.MAC)
		sink.cells = append(sink.cells, c)
		sink.groups = append(sink.groups, key)
		return mp
	}
	var children [8]grav.Multipole
	present := children[:0]
	var mask uint8
	cur := lo
	for oct := 0; oct < 8; oct++ {
		ck := key.Child(oct)
		// End of this octant's body range: first key beyond MaxBody.
		end := cur + upperBound(t.Sys.Key[cur:hi], ck.MaxBody())
		if end > cur {
			mp := t.buildInto(sink, ck, cur, end)
			present = append(present, mp)
			mask |= 1 << uint(oct)
		}
		cur = end
	}
	mp := grav.Combine(present)
	c := Cell{
		Key:       key,
		Mp:        mp,
		First:     int32(lo),
		N:         int32(hi - lo),
		ChildMask: mask,
	}
	c.RCrit = grav.RCrit(&mp, size, mp.COM.Sub(center).Norm(), t.MAC)
	sink.cells = append(sink.cells, c)
	return mp
}

// upperBound returns how many leading keys of ks are <= max. Octant
// splits near the buckets are short, so small slices use a linear
// scan; long ones a branch-light binary search (replacing the
// closure-based sort.Search on the build hot path).
func upperBound(ks []keys.Key, max keys.Key) int {
	if len(ks) <= 64 {
		for i, k := range ks {
			if k > max {
				return i
			}
		}
		return len(ks)
	}
	lo, hi := 0, len(ks)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if ks[mid] <= max {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
