package tree

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/diag"
	"repro/internal/grav"
	"repro/internal/keys"
	"repro/internal/vec"
)

// cloud builds a key-sorted random system inside the unit cube.
func cloud(n int, seed int64) (*core.System, keys.Domain) {
	rng := rand.New(rand.NewSource(seed))
	sys := core.New(n)
	sys.EnableDynamics()
	for i := 0; i < n; i++ {
		// Mildly clustered: half uniform, half in a tight clump, so
		// the tree is adaptive.
		if i%2 == 0 {
			sys.Pos[i] = vec.V3{X: rng.Float64(), Y: rng.Float64(), Z: rng.Float64()}
		} else {
			sys.Pos[i] = vec.V3{
				X: 0.3 + 0.05*rng.NormFloat64(),
				Y: 0.7 + 0.05*rng.NormFloat64(),
				Z: 0.2 + 0.05*rng.NormFloat64(),
			}
		}
		sys.Mass[i] = 1.0 / float64(n)
	}
	d := keys.NewDomain(sys.Pos)
	sys.AssignKeys(d)
	sys.SortByKey()
	return sys, d
}

func TestBuildInvariants(t *testing.T) {
	for _, n := range []int{0, 1, 5, 16, 17, 100, 3000} {
		sys, d := cloud(n, int64(n)+1)
		tr := Build(sys, d, grav.DefaultMAC(), 16)
		if err := tr.CheckInvariants(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if n > 0 && tr.NCells() == 0 {
			t.Fatalf("n=%d: no cells", n)
		}
	}
}

func TestBuildRequiresSorted(t *testing.T) {
	sys, d := cloud(100, 2)
	// Corrupt the order.
	sys.Key[0], sys.Key[50] = sys.Key[50], sys.Key[0]
	defer func() {
		if recover() == nil {
			t.Fatal("Build on unsorted bodies should panic")
		}
	}()
	Build(sys, d, grav.DefaultMAC(), 16)
}

func TestDuplicatePositions(t *testing.T) {
	// More identical bodies than the bucket size: the tree must stop
	// subdividing at MaxLevel and still be consistent.
	sys := core.New(40)
	sys.EnableDynamics()
	for i := range sys.Pos {
		sys.Pos[i] = vec.V3{X: 0.5, Y: 0.5, Z: 0.5}
		sys.Mass[i] = 1
	}
	d := keys.Domain{Origin: vec.V3{}, Size: 1}
	sys.AssignKeys(d)
	sys.SortByKey()
	tr := Build(sys, d, grav.DefaultMAC(), 8)
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Forces with softening must be finite and ~zero by symmetry.
	ctr := tr.Gravity(1e-2)
	if ctr.Interactions() == 0 {
		t.Fatal("no interactions")
	}
	for i := range sys.Acc {
		if math.IsNaN(sys.Acc[i].Norm()) || sys.Acc[i].Norm() > 1e-9 {
			t.Fatalf("body %d acc = %v", i, sys.Acc[i])
		}
	}
}

func accuracy(t *testing.T, mac grav.MACParams, n int) (rms, max float64) {
	t.Helper()
	sys, d := cloud(n, 42)
	tr := Build(sys, d, mac, 16)
	const eps2 = 1e-6
	tr.Gravity(eps2)
	var sum2 float64
	for i := range sys.Pos {
		// Direct reference, excluding self.
		var exact vec.V3
		for j := range sys.Pos {
			if j == i {
				continue
			}
			dd := sys.Pos[j].Sub(sys.Pos[i])
			r2 := dd.Norm2() + eps2
			rinv := 1 / math.Sqrt(r2)
			exact = exact.Add(dd.Scale(sys.Mass[j] * rinv * rinv * rinv))
		}
		rel := sys.Acc[i].Sub(exact).Norm() / (exact.Norm() + 1e-30)
		sum2 += rel * rel
		if rel > max {
			max = rel
		}
	}
	return math.Sqrt(sum2 / float64(n)), max
}

func TestGravityAccuracySW(t *testing.T) {
	rms, _ := accuracy(t, grav.MACParams{Kind: grav.MACSalmonWarren, AccelTol: 1e-7, Quad: true}, 1500)
	// The paper quotes RMS force accuracy better than 1e-3; with a
	// tight tolerance we should do much better.
	if rms > 1e-4 {
		t.Fatalf("RMS relative force error %g", rms)
	}
}

func TestGravityAccuracyBH(t *testing.T) {
	rms, _ := accuracy(t, grav.MACParams{Kind: grav.MACBarnesHut, Theta: 0.6, Quad: true}, 1500)
	if rms > 1e-3 {
		t.Fatalf("BH theta=0.6 RMS error %g", rms)
	}
}

func TestMACToleranceOrdering(t *testing.T) {
	loose, _ := accuracy(t, grav.MACParams{Kind: grav.MACSalmonWarren, AccelTol: 1e-4, Quad: true}, 800)
	tight, _ := accuracy(t, grav.MACParams{Kind: grav.MACSalmonWarren, AccelTol: 1e-8, Quad: true}, 800)
	if tight >= loose {
		t.Fatalf("tighter tolerance did not reduce error: %g vs %g", tight, loose)
	}
}

func TestQuadBeatsMono(t *testing.T) {
	mono, _ := accuracy(t, grav.MACParams{Kind: grav.MACBarnesHut, Theta: 0.8, Quad: false}, 800)
	quad, _ := accuracy(t, grav.MACParams{Kind: grav.MACBarnesHut, Theta: 0.8, Quad: true}, 800)
	if quad >= mono {
		t.Fatalf("quadrupole (%g) not better than monopole (%g)", quad, mono)
	}
}

func TestGravityCountersAndWork(t *testing.T) {
	sys, d := cloud(2000, 7)
	// Use the scale-free Barnes-Hut MAC for the operation-count test;
	// the absolute-error MAC's cost depends on the problem's force
	// normalization (see TestGravityAccuracySW for its accuracy).
	tr := Build(sys, d, grav.MACParams{Kind: grav.MACBarnesHut, Theta: 0.7, Quad: true}, 16)
	ctr := tr.Gravity(1e-6)
	if ctr.PP == 0 || ctr.PC == 0 {
		t.Fatalf("counters: %+v", ctr)
	}
	// O(N log N): far fewer interactions than N^2 but at least N.
	n := uint64(2000)
	if ctr.Interactions() >= n*n/2 {
		t.Fatalf("interaction count %d not sub-quadratic", ctr.Interactions())
	}
	if ctr.Interactions() < n {
		t.Fatalf("interaction count %d implausibly low", ctr.Interactions())
	}
	for i, w := range sys.Work {
		if w <= 0 {
			t.Fatalf("body %d has nonpositive work %g", i, w)
		}
	}
	if ctr.Flops() != ctr.Interactions()*38+ctr.QuadPC*70 {
		t.Fatal("flop accounting mismatch")
	}
}

func TestMomentumConservation(t *testing.T) {
	// Sum of m*a over all bodies should vanish for the PP part and be
	// tiny overall (multipole truncation breaks symmetry only at the
	// error tolerance level).
	sys, d := cloud(1000, 9)
	tr := Build(sys, d, grav.MACParams{Kind: grav.MACSalmonWarren, AccelTol: 1e-8, Quad: true}, 16)
	tr.Gravity(1e-6)
	var f vec.V3
	var scale float64
	for i := range sys.Acc {
		f = f.Add(sys.Acc[i].Scale(sys.Mass[i]))
		scale += sys.Acc[i].Norm() * sys.Mass[i]
	}
	if f.Norm() > 1e-4*scale {
		t.Fatalf("net force %v (scale %g)", f, scale)
	}
}

func TestGroupSphere(t *testing.T) {
	c, r := GroupSphere(nil)
	if c != (vec.V3{}) || r != 0 {
		t.Fatal("empty sphere")
	}
	pos := []vec.V3{{X: -1}, {X: 1}, {X: 0, Y: 0.5}}
	c, r = GroupSphere(pos)
	if c.Sub(vec.V3{Y: 0.25}).Norm() > 1e-14 {
		t.Fatalf("center = %v", c)
	}
	for _, p := range pos {
		if p.Sub(c).Norm() > r+1e-14 {
			t.Fatalf("point %v outside sphere r=%v", p, r)
		}
	}
}

func TestRangeDecomposeTiles(t *testing.T) {
	f := func(a, b uint64) bool {
		lo := a % (EndOffset + 1)
		hi := b % (EndOffset + 1)
		if lo > hi {
			lo, hi = hi, lo
		}
		cells := RangeDecompose(lo, hi)
		if lo == hi {
			return len(cells) == 0
		}
		cur := lo
		for _, c := range cells {
			if !c.Valid() {
				return false
			}
			if KeyOffset(c.MinBody()) != cur {
				return false
			}
			cur = KeyOffset(c.MaxBody()) + 1
		}
		return cur == hi
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestRangeDecomposeWholeDomain(t *testing.T) {
	cells := RangeDecompose(0, EndOffset)
	// The whole domain decomposes into exactly the root cell.
	if len(cells) != 1 || cells[0] != keys.Root {
		t.Fatalf("whole domain -> %v", cells)
	}
}

func TestRangeDecomposeIsMinimal(t *testing.T) {
	// An octant-aligned interval must come back as a single cell, not
	// eight children.
	c := keys.Root.Child(3)
	cells := RangeDecompose(KeyOffset(c.MinBody()), KeyOffset(c.MaxBody())+1)
	if len(cells) != 1 || cells[0] != c {
		t.Fatalf("aligned octant -> %v", cells)
	}
}

func TestWalkMissingCells(t *testing.T) {
	// A source that hides one subtree must cause Walk to report the
	// hidden keys rather than silently computing a wrong force.
	sys, d := cloud(500, 11)
	tr := Build(sys, d, grav.DefaultMAC(), 16)
	hidden := keys.Root.Child(firstChild(t, tr))
	src := &hidingSource{Tree: tr, hide: hidden}
	var w Walker
	gk := tr.Groups[len(tr.Groups)-1]
	g := tr.Cell(gk)
	var ctr diag.Counters
	pos := sys.Pos[g.First : g.First+g.N]
	missing := w.Walk(src, gk, pos, &ctr)
	// The last group is spatially far from child(first); it may have
	// accepted the hidden cell's parent... the hidden child itself is
	// only missing if the walk tried to open it.
	for _, m := range missing {
		if m != hidden {
			t.Fatalf("unexpected missing key %v", m)
		}
	}
}

func firstChild(t *testing.T, tr *Tree) int {
	root := tr.Cell(keys.Root)
	if root == nil || root.Leaf {
		t.Skip("root is a leaf")
	}
	for oct := 0; oct < 8; oct++ {
		if root.ChildMask&(1<<uint(oct)) != 0 {
			return oct
		}
	}
	t.Fatal("root has no children")
	return 0
}

type hidingSource struct {
	*Tree
	hide keys.Key
}

func (h *hidingSource) Cell(k keys.Key) *Cell {
	if k == h.hide {
		return nil
	}
	return h.Tree.Cell(k)
}

func BenchmarkTreeBuild10k(b *testing.B) {
	sys, d := cloud(10000, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Build(sys, d, grav.DefaultMAC(), 16)
	}
}

func BenchmarkTreeGravity10k(b *testing.B) {
	sys, d := cloud(10000, 1)
	tr := Build(sys, d, grav.DefaultMAC(), 16)
	b.ResetTimer()
	var inter uint64
	for i := 0; i < b.N; i++ {
		ctr := tr.Gravity(1e-6)
		inter += ctr.Interactions()
	}
	b.ReportMetric(float64(inter)/float64(b.N), "interactions/op")
}

// Property: BuildRange with a random force-split interval keeps all
// tree invariants and materializes every branch cell of the interval
// as a node (the contract the parallel engine depends on).
func TestBuildRangeBranchesMaterialize(t *testing.T) {
	f := func(seed int64, aRaw, bRaw uint64) bool {
		sys, d := cloud(300, seed)
		lo := aRaw % (EndOffset + 1)
		hi := bRaw % (EndOffset + 1)
		if lo > hi {
			lo, hi = hi, lo
		}
		if lo == hi {
			return true
		}
		// Keep only bodies inside [lo, hi) -- the parallel engine's
		// precondition after decomposition.
		kept := core.New(0)
		kept.EnableDynamics()
		for i := 0; i < sys.Len(); i++ {
			off := KeyOffset(sys.Key[i])
			if off >= lo && off < hi {
				kept.AppendFrom(sys, i)
			}
		}
		if kept.Len() == 0 {
			return true
		}
		kept.AssignKeys(d)
		kept.SortByKey()
		tr := BuildRange(kept, d, grav.DefaultMAC(), 8, lo, hi)
		if err := tr.CheckInvariants(); err != nil {
			t.Logf("invariants: %v", err)
			return false
		}
		// Every nonempty branch of [lo,hi) must exist as a node.
		for _, bk := range RangeDecompose(lo, hi) {
			blo, bhi := KeyOffset(bk.MinBody()), KeyOffset(bk.MaxBody())
			hasBody := false
			for i := 0; i < kept.Len(); i++ {
				off := KeyOffset(kept.Key[i])
				if off >= blo && off <= bhi {
					hasBody = true
					break
				}
			}
			if hasBody && tr.Cell(bk) == nil {
				t.Logf("branch %v (lvl %d) missing from force-split tree", bk, bk.Level())
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
