package tree

import (
	"repro/internal/diag"
	"repro/internal/grav"
	"repro/internal/keys"
	"repro/internal/vec"
)

// Source is what a traversal walks: a provider of cells by key. The
// serial Tree is a Source; the parallel engine wraps the shared top
// tree, the local tree and the imported remote cells into one Source
// whose Cell method records misses as pending remote requests.
type Source interface {
	// Cell returns the cell stored under k, or nil if the data is not
	// (yet) available. A nil return during a parallel walk means "ask
	// the owner"; the serial tree never returns nil for keys reachable
	// from the root.
	Cell(k keys.Key) *Cell
	// LeafBodies returns the bodies of a leaf cell.
	LeafBodies(c *Cell) ([]vec.V3, []float64)
	// Root returns the key traversals start from.
	Root() keys.Key
}

// Walker holds the reusable state of group traversals (the stack), so
// per-group allocations are amortized away.
type Walker struct {
	stack   []keys.Key
	missing []keys.Key
}

// GroupSphere returns the bounding sphere of a body set: midpoint of
// the coordinate bounds and the max distance to it.
func GroupSphere(pos []vec.V3) (center vec.V3, radius float64) {
	if len(pos) == 0 {
		return vec.V3{}, 0
	}
	lo, hi := pos[0], pos[0]
	for _, p := range pos[1:] {
		lo = vec.Min(lo, p)
		hi = vec.Max(hi, p)
	}
	center = lo.Add(hi).Scale(0.5)
	for _, p := range pos {
		if d := p.Sub(center).Norm(); d > radius {
			radius = d
		}
	}
	return center, radius
}

// Walk traverses src for one group of bodies and accumulates the
// gravitational acceleration and potential into acc and pot (parallel
// slices of gpos, NOT zeroed here). groupKey identifies the group's
// own leaf so its self-interaction uses the self kernel.
//
// If any needed cell is unavailable the traversal keeps going to
// collect every missing key (so one communication round batches all of
// them, the asynchronous-batched-messages pattern) and returns them;
// the partial accumulation must then be discarded and the group
// re-walked after the data arrives.
func (w *Walker) Walk(src Source, groupKey keys.Key, gpos []vec.V3, acc []vec.V3, pot []float64, eps2 float64, quad bool, ctr *diag.Counters) (missing []keys.Key) {
	gc, gr := GroupSphere(gpos)
	w.stack = w.stack[:0]
	w.missing = w.missing[:0]
	w.stack = append(w.stack, src.Root())
	for len(w.stack) > 0 {
		k := w.stack[len(w.stack)-1]
		w.stack = w.stack[:len(w.stack)-1]
		c := src.Cell(k)
		if c == nil {
			w.missing = append(w.missing, k)
			continue
		}
		ctr.Traversals++
		if c.Mp.M == 0 {
			continue // empty cell contributes nothing
		}
		d := c.Mp.COM.Sub(gc).Norm()
		if d-gr > c.RCrit && d > gr {
			n := grav.M2P(gpos, acc, pot, &c.Mp, quad, eps2)
			ctr.PC += n
			if quad {
				ctr.QuadPC += n
			}
			continue
		}
		if c.Leaf {
			spos, smass := src.LeafBodies(c)
			if c.Key == groupKey {
				ctr.PP += grav.PPSelf(gpos, smass, acc, pot, eps2)
			} else {
				ctr.PP += grav.PPTile(gpos, acc, pot, spos, smass, eps2)
			}
			continue
		}
		for oct := 0; oct < 8; oct++ {
			if c.ChildMask&(1<<uint(oct)) != 0 {
				w.stack = append(w.stack, k.Child(oct))
			}
		}
	}
	if len(w.missing) > 0 {
		return w.missing
	}
	return nil
}

// Gravity runs a full serial force evaluation: for every group, zero
// its accumulators, walk the tree, and record per-body work weights
// for the next domain decomposition. The system must have dynamics
// enabled. Returns the interaction counters.
func (t *Tree) Gravity(eps2 float64) diag.Counters {
	var ctr diag.Counters
	var w Walker
	sys := t.Sys
	for _, gk := range t.Groups {
		g := t.Cell(gk)
		lo, hi := g.First, g.First+g.N
		for i := lo; i < hi; i++ {
			sys.Acc[i] = vec.V3{}
			sys.Pot[i] = 0
		}
		before := ctr.PP + ctr.PC
		if m := w.Walk(t, gk, sys.Pos[lo:hi], sys.Acc[lo:hi], sys.Pot[lo:hi], eps2, t.MAC.Quad, &ctr); m != nil {
			panic("tree: serial walk reported missing cells")
		}
		// Per-body work estimate: the group's interactions spread
		// evenly over its bodies (exact to +-1, since every body in a
		// group shares the same interaction lists).
		if g.N > 0 {
			per := float64(ctr.PP+ctr.PC-before) / float64(g.N)
			for i := lo; i < hi; i++ {
				sys.Work[i] = per
			}
		}
	}
	return ctr
}
