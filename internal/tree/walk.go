package tree

import (
	"math"

	"repro/internal/core"
	"repro/internal/diag"
	"repro/internal/grav"
	"repro/internal/keys"
	"repro/internal/vec"
)

// Source is what a traversal walks: a provider of cells by key. The
// serial Tree is a Source; the parallel engine wraps the shared top
// tree, the local tree and the imported remote cells into one Source
// whose Cell method records misses as pending remote requests.
type Source interface {
	// Cell returns the cell stored under k, or nil if the data is not
	// (yet) available. A nil return during a parallel walk means "ask
	// the owner"; the serial tree never returns nil for keys reachable
	// from the root.
	Cell(k keys.Key) *Cell
	// LeafBodies returns the bodies of a leaf cell.
	LeafBodies(c *Cell) ([]vec.V3, []float64)
	// Root returns the key traversals start from.
	Root() keys.Key
}

// Walker holds the reusable state of group traversals: the stack, the
// missing-key buffer, the interaction list the walk fills, and the
// SoA target block Evaluate uses. One long-lived Walker per worker
// amortizes every per-group allocation away.
type Walker struct {
	stack   []keys.Key
	missing []keys.Key
	// Kernels selects the interaction-kernel implementation Evaluate
	// uses; the zero value is the production tiled set. Engines set it
	// once so every evaluation of a run is pinned to one set.
	Kernels grav.Impl
	// List is the interaction list built by the last Walk.
	List grav.InteractionList
	tg   grav.Targets
}

// GroupSphere returns the bounding sphere of a body set: midpoint of
// the coordinate bounds and the max distance to it. It runs once per
// group per force evaluation, so it is kept allocation-free and
// sqrt-free in the loops: scalar branch min/max for the bounds, then
// a squared-distance max with the single square root taken at the
// end. (The radius genuinely needs the second pass: the center is not
// known until the bounds are, and max |p-c| does not decompose per
// coordinate. The second pass is 8 flops per body, no calls.)
func GroupSphere(pos []vec.V3) (center vec.V3, radius float64) {
	if len(pos) == 0 {
		return vec.V3{}, 0
	}
	lox, loy, loz := pos[0].X, pos[0].Y, pos[0].Z
	hix, hiy, hiz := lox, loy, loz
	for i := 1; i < len(pos); i++ {
		x, y, z := pos[i].X, pos[i].Y, pos[i].Z
		if x < lox {
			lox = x
		} else if x > hix {
			hix = x
		}
		if y < loy {
			loy = y
		} else if y > hiy {
			hiy = y
		}
		if z < loz {
			loz = z
		} else if z > hiz {
			hiz = z
		}
	}
	cx, cy, cz := 0.5*(lox+hix), 0.5*(loy+hiy), 0.5*(loz+hiz)
	var r2max float64
	for i := range pos {
		dx := pos[i].X - cx
		dy := pos[i].Y - cy
		dz := pos[i].Z - cz
		if r2 := dx*dx + dy*dy + dz*dz; r2 > r2max {
			r2max = r2
		}
	}
	return vec.V3{X: cx, Y: cy, Z: cz}, math.Sqrt(r2max)
}

// Walk traverses src for one group of bodies and builds the group's
// interaction list in w.List (phase 1 of the two-phase evaluation):
// accepted multipoles go to the cell slab, leaf bodies are gathered
// into the SoA source columns, and the group's own leaf sets the Self
// flag. No forces are computed here -- call Evaluate afterwards.
// groupKey identifies the group's own leaf.
//
// If any needed cell is unavailable the traversal keeps going to
// collect every missing key (so one communication round batches all
// of them, the asynchronous-batched-messages pattern) and returns
// them; the partial list must then be discarded and the group
// re-walked after the data arrives (Walk resets w.List, so re-walking
// with the same Walker reuses the storage).
func (w *Walker) Walk(src Source, groupKey keys.Key, gpos []vec.V3, ctr *diag.Counters) (missing []keys.Key) {
	gc, gr := GroupSphere(gpos)
	w.stack = w.stack[:0]
	w.missing = w.missing[:0]
	w.List.Reset()
	w.stack = append(w.stack, src.Root())
	for len(w.stack) > 0 {
		k := w.stack[len(w.stack)-1]
		w.stack = w.stack[:len(w.stack)-1]
		c := src.Cell(k)
		if c == nil {
			w.missing = append(w.missing, k)
			continue
		}
		ctr.Traversals++
		if c.Mp.M == 0 {
			continue // empty cell contributes nothing
		}
		d := c.Mp.COM.Sub(gc).Norm()
		if d-gr > c.RCrit && d > gr {
			w.List.AddCell(&c.Mp)
			continue
		}
		if c.Leaf {
			if c.Key == groupKey {
				w.List.Self = true
			} else {
				spos, smass := src.LeafBodies(c)
				w.List.AddBodies(spos, smass)
			}
			continue
		}
		for oct := 0; oct < 8; oct++ {
			if c.ChildMask&(1<<uint(oct)) != 0 {
				w.stack = append(w.stack, k.Child(oct))
			}
		}
	}
	if len(w.missing) > 0 {
		return w.missing
	}
	return nil
}

// Evaluate applies the interaction list built by the last Walk to the
// group (phase 2): gather the targets into the SoA block, sweep the
// multipole slab and the source columns with the batched kernels, and
// scatter the results, overwriting acc and pot. gmass is needed only
// for the self-interaction (it may be nil when w.List.Self is false).
// Interaction counts are identical to the fused walk's.
func (w *Walker) Evaluate(gpos []vec.V3, gmass []float64, acc []vec.V3, pot []float64, eps2 float64, quad bool, ctr *diag.Counters) {
	if w.List.Self {
		w.tg.Load(gpos, gmass)
	} else {
		w.tg.Load(gpos, nil)
	}
	n := w.Kernels.EvalM2P(&w.tg, &w.List, quad, eps2)
	ctr.PC += n
	if quad {
		ctr.QuadPC += n
	}
	ctr.PP += w.Kernels.EvalPP(&w.tg, &w.List, eps2)
	if w.List.Self {
		ctr.PP += w.Kernels.EvalSelf(&w.tg, eps2)
	}
	w.tg.Store(acc, pot)
}

// WalkFused is the original single-phase traversal: it evaluates each
// accepted interaction as it is found, accumulating into acc and pot
// (parallel slices of gpos, NOT zeroed here). It is retained as the
// reference for the fused-vs-batched ablation and the equivalence
// tests; production paths use Walk + Evaluate.
func (w *Walker) WalkFused(src Source, groupKey keys.Key, gpos []vec.V3, acc []vec.V3, pot []float64, eps2 float64, quad bool, ctr *diag.Counters) (missing []keys.Key) {
	gc, gr := GroupSphere(gpos)
	w.stack = w.stack[:0]
	w.missing = w.missing[:0]
	w.stack = append(w.stack, src.Root())
	for len(w.stack) > 0 {
		k := w.stack[len(w.stack)-1]
		w.stack = w.stack[:len(w.stack)-1]
		c := src.Cell(k)
		if c == nil {
			w.missing = append(w.missing, k)
			continue
		}
		ctr.Traversals++
		if c.Mp.M == 0 {
			continue // empty cell contributes nothing
		}
		d := c.Mp.COM.Sub(gc).Norm()
		if d-gr > c.RCrit && d > gr {
			n := grav.M2P(gpos, acc, pot, &c.Mp, quad, eps2)
			ctr.PC += n
			if quad {
				ctr.QuadPC += n
			}
			continue
		}
		if c.Leaf {
			spos, smass := src.LeafBodies(c)
			if c.Key == groupKey {
				ctr.PP += grav.PPSelf(gpos, smass, acc, pot, eps2)
			} else {
				ctr.PP += grav.PPTile(gpos, acc, pot, spos, smass, eps2)
			}
			continue
		}
		for oct := 0; oct < 8; oct++ {
			if c.ChildMask&(1<<uint(oct)) != 0 {
				w.stack = append(w.stack, k.Child(oct))
			}
		}
	}
	if len(w.missing) > 0 {
		return w.missing
	}
	return nil
}

// gravityGroups runs the two-phase evaluation for the groups
// [glo,ghi): list-build walk, batched evaluation, and the per-body
// work weights for the next domain decomposition (the group's
// interactions spread evenly over its bodies, exact to +-1 since
// every body in a group shares the same interaction list). Shared by
// the serial driver and the concurrent pool workers; with a reused
// Walker the steady state allocates nothing.
func (t *Tree) gravityGroups(w *Walker, ctr *diag.Counters, glo, ghi int, eps2 float64) {
	w.Kernels = t.Kernels
	sys := t.Sys
	for _, gk := range t.Groups[glo:ghi] {
		g := t.Cell(gk)
		lo, hi := g.First, g.First+g.N
		before := ctr.PP + ctr.PC
		if m := w.Walk(t, gk, sys.Pos[lo:hi], ctr); m != nil {
			panic("tree: serial walk reported missing cells")
		}
		w.Evaluate(sys.Pos[lo:hi], sys.Mass[lo:hi], sys.Acc[lo:hi], sys.Pot[lo:hi], eps2, t.MAC.Quad, ctr)
		if g.N > 0 {
			per := float64(ctr.PP+ctr.PC-before) / float64(g.N)
			for i := lo; i < hi; i++ {
				sys.Work[i] = per
			}
		}
	}
}

// Gravity runs a full serial force evaluation through the two-phase
// (interaction-list) path: for every group, build its list, evaluate
// it batched, and record per-body work weights. The system must have
// dynamics enabled. Returns the interaction counters.
func (t *Tree) Gravity(eps2 float64) diag.Counters {
	var ctr diag.Counters
	var w Walker
	t.gravityGroups(&w, &ctr, 0, len(t.Groups), eps2)
	return ctr
}

// GroupActive reports whether the body range [lo,hi) of sys holds any
// body on rung minRung or finer. Activity is group-granular: a group
// with one active body is evaluated whole (the inactive members' Acc
// is overwritten with values they never consume -- their own kicks
// read Acc only at their own sub-step boundaries, which are full
// evaluations for them), so the interaction kernels, including the
// self-interaction, run unchanged. A nil Rung column means rung zero
// everywhere.
func GroupActive(sys *core.System, lo, hi, minRung int) bool {
	if minRung <= 0 || sys.Rung == nil {
		return true
	}
	for _, r := range sys.Rung[lo:hi] {
		if int(r) >= minRung {
			return true
		}
	}
	return false
}

// GravityActive is the partial force evaluation of block timesteps:
// it walks and evaluates only the groups containing a body on rung
// minRung or finer, skipping everything else (their Acc, Pot and Work
// are left untouched). minRung <= 0 degenerates to Gravity -- the
// identical code path, so a synchronization evaluation is bitwise the
// uniform one. Inactive bodies still contribute as sources through the
// tree, which must have been rebuilt from their drifted positions.
func (t *Tree) GravityActive(eps2 float64, minRung int) diag.Counters {
	if minRung <= 0 {
		return t.Gravity(eps2)
	}
	var ctr diag.Counters
	var w Walker
	w.Kernels = t.Kernels
	sys := t.Sys
	for _, gk := range t.Groups {
		g := t.Cell(gk)
		lo, hi := g.First, g.First+g.N
		if !GroupActive(sys, int(lo), int(hi), minRung) {
			continue
		}
		before := ctr.PP + ctr.PC
		if m := w.Walk(t, gk, sys.Pos[lo:hi], &ctr); m != nil {
			panic("tree: serial walk reported missing cells")
		}
		w.Evaluate(sys.Pos[lo:hi], sys.Mass[lo:hi], sys.Acc[lo:hi], sys.Pot[lo:hi], eps2, t.MAC.Quad, &ctr)
		if g.N > 0 {
			per := float64(ctr.PP+ctr.PC-before) / float64(g.N)
			for i := lo; i < hi; i++ {
				sys.Work[i] = per
			}
		}
	}
	return ctr
}

// GravityFused is the original fused-walk evaluation (traversal and
// kernels interleaved, AoS accumulators). Kept as the baseline side
// of the BenchmarkAblation_Batched* pair and for equivalence tests;
// it produces the same interaction counts as Gravity and the same
// forces to roundoff.
func (t *Tree) GravityFused(eps2 float64) diag.Counters {
	var ctr diag.Counters
	var w Walker
	sys := t.Sys
	for _, gk := range t.Groups {
		g := t.Cell(gk)
		lo, hi := g.First, g.First+g.N
		for i := lo; i < hi; i++ {
			sys.Acc[i] = vec.V3{}
			sys.Pot[i] = 0
		}
		before := ctr.PP + ctr.PC
		if m := w.WalkFused(t, gk, sys.Pos[lo:hi], sys.Acc[lo:hi], sys.Pot[lo:hi], eps2, t.MAC.Quad, &ctr); m != nil {
			panic("tree: serial walk reported missing cells")
		}
		if g.N > 0 {
			per := float64(ctr.PP+ctr.PC-before) / float64(g.N)
			for i := lo; i < hi; i++ {
				sys.Work[i] = per
			}
		}
	}
	return ctr
}
