//go:build !race

package tree

import (
	"testing"

	"repro/internal/grav"
)

// The issue's guardrail: a persistent ForcePool must reach a
// zero-allocation steady state -- walkers, interaction lists and SoA
// blocks are all pooled per worker, and the wake/done signalling uses
// pre-allocated channels. (Skipped under -race: the detector's
// instrumentation charges shadow allocations to the test.)
func TestForcePoolSteadyStateAllocatesNothing(t *testing.T) {
	sys, d := cloud(5000, 23)
	tr := Build(sys, d, grav.DefaultMAC(), 16)
	p := NewForcePool(4)
	defer p.Close()
	p.Gravity(tr, 1e-6) // warm-up: buffers reach their high-water mark
	allocs := testing.AllocsPerRun(5, func() { p.Gravity(tr, 1e-6) })
	if allocs != 0 {
		t.Fatalf("steady-state pool evaluation allocates %v times per call", allocs)
	}
}
