// Package tree implements the hashed oct-tree: an adaptive octree over
// Morton keys whose cells live in a hash table (internal/htab), so any
// cell is reachable by key arithmetic plus one lookup — the property
// that lets the parallel code use one global name space for local and
// remote data alike.
//
// A tree is built bottom-up over a key-sorted body array: cells
// subdivide until they hold at most BucketSize bodies, leaves carry
// [First,First+N) ranges into the body array, and every cell stores
// its multipole moments and the critical radius RCrit precomputed from
// the configured multipole acceptance criterion.
package tree

import (
	"fmt"
	"math/bits"

	"repro/internal/core"
	"repro/internal/grav"
	"repro/internal/htab"
	"repro/internal/keys"
	"repro/internal/vec"
)

// DefaultBucketSize is the leaf capacity; leaves double as the groups
// of the group-based traversal.
const DefaultBucketSize = 16

// Cell is one node of the hashed oct-tree.
type Cell struct {
	Key keys.Key
	Mp  grav.Multipole
	// RCrit is the precomputed critical radius: the cell's multipole
	// expansion is valid for any target farther than RCrit from the
	// center of mass.
	RCrit float64
	// First and N give the body range of a leaf (indices into the
	// owning body arena).
	First, N int32
	// ChildMask has bit o set when child octant o exists.
	ChildMask uint8
	Leaf      bool
}

// Tree is a hashed oct-tree over one (locally stored) body set.
type Tree struct {
	Sys    *core.System
	Domain keys.Domain
	MAC    grav.MACParams
	Bucket int
	// Kernels pins the interaction-kernel implementation every
	// Gravity evaluation over this tree uses (serial and pooled); the
	// zero value is the production tiled set.
	Kernels grav.Impl
	Cells   *htab.Table[Cell]
	// Groups lists the leaf cell keys in Morton order; leaves are the
	// traversal groups.
	Groups []keys.Key
	// rangeLo/rangeHi force-split interval: a cell whose key interval
	// is not fully inside [rangeLo, rangeHi) must subdivide even if it
	// holds few bodies, so that every branch cell of the interval
	// materializes as a tree node (the parallel engine depends on it).
	rangeLo, rangeHi uint64
}

// Build constructs the tree. Bodies must already carry keys for the
// domain and be sorted by key; Build panics otherwise (the callers --
// serial driver and parallel engine -- own the sort step explicitly).
func Build(sys *core.System, d keys.Domain, mac grav.MACParams, bucket int) *Tree {
	return BuildRange(sys, d, mac, bucket, 0, EndOffset)
}

// BuildRange constructs the tree for a processor owning the key-offset
// interval [lo, hi): identical to Build except that cells straddling
// the interval boundary always subdivide (see Tree.rangeLo). It runs
// through a transient Builder (see build.go); pipelines that build
// every timestep hold a persistent Builder instead.
func BuildRange(sys *core.System, d keys.Domain, mac grav.MACParams, bucket int, lo, hi uint64) *Tree {
	var b Builder
	return b.BuildRange(sys, d, mac, bucket, lo, hi)
}

// Cell returns the cell stored under k, or nil.
func (t *Tree) Cell(k keys.Key) *Cell { return t.Cells.Ptr(k) }

// Root returns the root key.
func (t *Tree) Root() keys.Key { return keys.Root }

// LeafBodies returns the positions and masses of a leaf's bodies.
func (t *Tree) LeafBodies(c *Cell) ([]vec.V3, []float64) {
	return t.Sys.Pos[c.First : c.First+c.N], t.Sys.Mass[c.First : c.First+c.N]
}

// NCells returns the number of cells in the tree.
func (t *Tree) NCells() int { return t.Cells.Len() }

// CheckInvariants validates structural and physical consistency; used
// by tests and returned as an error for fuzzing.
func (t *Tree) CheckInvariants() error {
	root := t.Cell(keys.Root)
	if root == nil {
		return fmt.Errorf("tree: no root cell")
	}
	var sum float64
	for _, m := range t.Sys.Mass {
		sum += m
	}
	if d := root.Mp.M - sum; d > 1e-9*sum+1e-12 || d < -1e-9*sum-1e-12 {
		return fmt.Errorf("tree: root mass %g != body mass %g", root.Mp.M, sum)
	}
	// Every body must be covered by exactly one leaf, and leaf ranges
	// must tile [0, N) in Morton order.
	next := 0
	for _, gk := range t.Groups {
		g := t.Cell(gk)
		if g == nil || !g.Leaf {
			return fmt.Errorf("tree: group %v is not a leaf", gk)
		}
		if int(g.First) != next {
			return fmt.Errorf("tree: leaf %v starts at %d, want %d", gk, g.First, next)
		}
		next = int(g.First + g.N)
		for i := g.First; i < g.First+g.N; i++ {
			if !gk.Contains(t.Sys.Key[i]) {
				return fmt.Errorf("tree: body %d (key %v) outside its leaf %v", i, t.Sys.Key[i], gk)
			}
		}
	}
	if next != t.Sys.Len() {
		return fmt.Errorf("tree: leaves cover %d bodies, want %d", next, t.Sys.Len())
	}
	// Internal cells: mass equals sum of children; ChildMask matches
	// table contents.
	var err error
	t.Cells.Range(func(k keys.Key, c *Cell) bool {
		if c.Leaf {
			return true
		}
		var m float64
		for oct := 0; oct < 8; oct++ {
			ck := k.Child(oct)
			child := t.Cell(ck)
			if c.ChildMask&(1<<uint(oct)) != 0 {
				if child == nil {
					err = fmt.Errorf("tree: cell %v claims child %d but it is absent", k, oct)
					return false
				}
				m += child.Mp.M
			} else if child != nil && keys.Root.Contains(ck) {
				// A present child not in the mask is a corruption
				// (unless it is an unrelated key, impossible here).
				err = fmt.Errorf("tree: cell %v has unmasked child %d", k, oct)
				return false
			}
		}
		if d := m - c.Mp.M; d > 1e-9*c.Mp.M+1e-12 || d < -1e-9*c.Mp.M-1e-12 {
			err = fmt.Errorf("tree: cell %v mass %g != children %g", k, c.Mp.M, m)
			return false
		}
		return true
	})
	return err
}

// KeyOffset maps a body-level key to its offset on the Morton curve:
// a plain integer in [0, 8^21) with the placeholder bit stripped.
// Domain splits are expressed as offsets so that the exclusive upper
// end of the last processor's interval (8^21) is representable.
func KeyOffset(k keys.Key) uint64 {
	return uint64(k) &^ (uint64(1) << 63)
}

// EndOffset is one past the largest body-key offset.
const EndOffset = uint64(1) << 63

// RangeDecompose returns the minimal set of cells whose body-key
// intervals exactly tile the offset interval [lo, hi). These are the
// "branch" cells a processor publishes to the shared top tree: the
// coarsest cells fully contained in its domain interval.
func RangeDecompose(olo, ohi uint64) []keys.Key {
	var out []keys.Key
	cur := olo
	for cur < ohi {
		// Largest block size 8^s aligned at cur and fitting in the
		// remaining interval.
		sAlign := keys.MaxLevel
		if cur != 0 {
			sAlign = bits.TrailingZeros64(cur) / 3
		}
		sFit := (63 - bits.LeadingZeros64(ohi-cur)) / 3
		s := sAlign
		if sFit < s {
			s = sFit
		}
		if s > keys.MaxLevel {
			s = keys.MaxLevel
		}
		level := keys.MaxLevel - s
		out = append(out, keys.Key(cur>>(3*uint(s))|1<<(3*uint(level))))
		cur += 1 << (3 * uint(s))
	}
	return out
}
