package tree

import "repro/internal/diag"

// GravityConcurrent is Gravity with the group loop fanned out over
// host goroutines (shared-memory parallelism inside one simulated
// "processor" -- the analogue of the paper's use of both CPUs of each
// ASCI Red node as compute processors). It spins up a transient
// ForcePool; callers with a per-step hot loop should hold a
// ForcePool themselves so the workers (and their pooled interaction
// lists) persist and the steady state allocates nothing.
// workers <= 0 uses GOMAXPROCS. Results are identical to Gravity
// (same per-group arithmetic, no cross-group reductions).
func (t *Tree) GravityConcurrent(eps2 float64, workers int) diag.Counters {
	if workers == 1 {
		return t.Gravity(eps2)
	}
	p := NewForcePool(workers)
	defer p.Close()
	return p.Gravity(t, eps2)
}
