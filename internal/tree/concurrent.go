package tree

import (
	"runtime"
	"sync"

	"repro/internal/diag"
	"repro/internal/vec"
)

// GravityConcurrent is Gravity with the group loop fanned out over
// host goroutines (shared-memory parallelism inside one simulated
// "processor" -- the analogue of the paper's use of both CPUs of each
// ASCI Red node as compute processors). Groups write disjoint body
// ranges, so workers share the tree read-only and never contend.
// workers <= 0 uses GOMAXPROCS. Results are identical to Gravity
// (same per-group arithmetic, no cross-group reductions).
func (t *Tree) GravityConcurrent(eps2 float64, workers int) diag.Counters {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers == 1 {
		return t.Gravity(eps2)
	}
	sys := t.Sys
	ctrs := make([]diag.Counters, workers)
	var next int64
	var mu sync.Mutex
	take := func(batch int) (int, int) {
		mu.Lock()
		defer mu.Unlock()
		lo := int(next)
		if lo >= len(t.Groups) {
			return 0, 0
		}
		hi := lo + batch
		if hi > len(t.Groups) {
			hi = len(t.Groups)
		}
		next = int64(hi)
		return lo, hi
	}

	var wg sync.WaitGroup
	for wk := 0; wk < workers; wk++ {
		wg.Add(1)
		go func(wk int) {
			defer wg.Done()
			var w Walker
			ctr := &ctrs[wk]
			for {
				glo, ghi := take(8)
				if glo == ghi {
					return
				}
				for _, gk := range t.Groups[glo:ghi] {
					g := t.Cell(gk)
					lo, hi := g.First, g.First+g.N
					for i := lo; i < hi; i++ {
						sys.Acc[i] = vec.V3{}
						sys.Pot[i] = 0
					}
					before := ctr.PP + ctr.PC
					if m := w.Walk(t, gk, sys.Pos[lo:hi], sys.Acc[lo:hi], sys.Pot[lo:hi], eps2, t.MAC.Quad, ctr); m != nil {
						panic("tree: concurrent walk reported missing cells")
					}
					if g.N > 0 {
						per := float64(ctr.PP+ctr.PC-before) / float64(g.N)
						for i := lo; i < hi; i++ {
							sys.Work[i] = per
						}
					}
				}
			}
		}(wk)
	}
	wg.Wait()
	var total diag.Counters
	for i := range ctrs {
		total.Add(ctrs[i])
	}
	return total
}
