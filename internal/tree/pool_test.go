package tree

import (
	"testing"

	"repro/internal/grav"
	"repro/internal/trace"
)

// With a tracer attached, every Gravity call emits one busy span per
// worker on the rank's sub-tracks, and the evaluation itself stays
// identical to the untraced pool.
func TestForcePoolTraceEmitsWorkerSpans(t *testing.T) {
	sys, d := cloud(2000, 31)
	tr := Build(sys, d, grav.DefaultMAC(), 16)

	p := NewForcePool(4)
	defer p.Close()
	plain := p.Gravity(tr, 1e-6)
	accPlain := append(sys.Acc[:0:0], sys.Acc...)

	run := trace.NewRun(1)
	p.SetTrace(run.Rank(0))
	traced := p.Gravity(tr, 1e-6)
	if traced != plain {
		t.Fatalf("tracing changed counters: %+v vs %+v", traced, plain)
	}
	for i := range accPlain {
		if sys.Acc[i] != accPlain[i] {
			t.Fatalf("tracing changed forces at body %d", i)
		}
	}

	workers := map[int]int{}
	for _, ev := range run.Rank(0).Events() {
		if ev.Kind != trace.KindSpan || ev.Name != "gravity" {
			t.Fatalf("unexpected event %+v", ev)
		}
		workers[ev.TID]++
	}
	if len(workers) != 4 {
		t.Fatalf("spans on %d sub-tracks, want 4 workers", len(workers))
	}
	for tid, n := range workers {
		if tid < 1 || tid > 4 || n != 1 {
			t.Fatalf("worker sub-track %d has %d spans", tid, n)
		}
	}

	// Detaching stops emission.
	p.SetTrace(nil)
	p.Gravity(tr, 1e-6)
	if got := len(run.Rank(0).Events()); got != 4 {
		t.Fatalf("events after detach: %d", got)
	}
}
