package tree

import (
	"runtime"
	"sync/atomic"

	"repro/internal/diag"
	"repro/internal/keys"
	"repro/internal/trace"
)

// groupBatch is how many groups a pool worker claims per grab: large
// enough that the atomic counter is cold, small enough that the
// tail-end imbalance stays negligible (groups are leaf buckets, so a
// batch is a few hundred bodies of work).
const groupBatch = 8

// ForcePool is a persistent worker pool for concurrent force
// evaluations. The workers, their Walkers (stacks, interaction lists,
// SoA target blocks) and all coordination channels live as long as
// the pool, so a steady-state Gravity call performs zero heap
// allocations -- the property BenchmarkAblation_BatchedConcurrentAllocs
// guards. Groups write disjoint body ranges, so workers share the
// tree read-only and never contend.
//
// A pool may be reused across many trees and timesteps (the paper's
// persistent compute processes); it is not safe for concurrent
// Gravity calls on the same pool. Close releases the workers.
type ForcePool struct {
	tr      *Tree
	eps2    float64
	next    atomic.Int64
	ctrs    []diag.Counters
	walkers []*Walker
	start   []chan struct{}
	done    chan struct{}
	trace   *trace.Tracer
}

// SetTrace attaches a tracer: each Gravity call then emits one busy
// span per worker on the tracer's sub-tracks, exposing tail workers
// and queue imbalance. Set it between evaluations only (same
// single-owner contract as Gravity itself); nil disables.
func (p *ForcePool) SetTrace(t *trace.Tracer) { p.trace = t }

// NewForcePool starts a pool of workers (<= 0 means GOMAXPROCS).
func NewForcePool(workers int) *ForcePool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	p := &ForcePool{
		ctrs:    make([]diag.Counters, workers),
		walkers: make([]*Walker, workers),
		start:   make([]chan struct{}, workers),
		done:    make(chan struct{}, workers),
	}
	for i := range p.start {
		p.walkers[i] = new(Walker)
		p.start[i] = make(chan struct{}, 1)
		go p.worker(i)
	}
	return p
}

// worker loops forever: wake, drain the group queue, signal done.
// The Walker persists across evaluations, which is where the
// zero-allocation steady state comes from.
func (p *ForcePool) worker(i int) {
	w := p.walkers[i]
	ctr := &p.ctrs[i]
	for range p.start[i] {
		t := p.tr
		t0 := p.trace.Now()
		n := int64(len(t.Groups))
		for {
			hi := p.next.Add(groupBatch)
			lo := hi - groupBatch
			if lo >= n {
				break
			}
			if hi > n {
				hi = n
			}
			t.gravityGroups(w, ctr, int(lo), int(hi), p.eps2)
		}
		p.trace.WorkerSpan(i, "gravity", t0)
		p.done <- struct{}{}
	}
}

// Gravity runs one full force evaluation of t over the pool's
// workers. Results are identical to the serial Tree.Gravity (same
// per-group arithmetic, no cross-group reductions).
func (p *ForcePool) Gravity(t *Tree, eps2 float64) diag.Counters {
	p.tr, p.eps2 = t, eps2
	p.next.Store(0)
	for i := range p.ctrs {
		p.ctrs[i] = diag.Counters{}
	}
	for _, c := range p.start {
		c <- struct{}{}
	}
	for range p.start {
		<-p.done
	}
	var total diag.Counters
	for i := range p.ctrs {
		total.Add(p.ctrs[i])
	}
	p.tr = nil
	p.equalize()
	return total
}

// equalize levels every worker's buffer capacities up to the
// fleet-wide maximum. The atomic group queue hands batches out
// nondeterministically, so without this a worker could meet a group
// whose interaction list is larger than any it saw before and have to
// grow mid-evaluation; after one full evaluation plus equalize, every
// walker can hold the largest list any group produces and the steady
// state allocates nothing. Runs between evaluations, workers idle.
func (p *ForcePool) equalize() { EqualizeWalkers(p.walkers) }

// EqualizeWalkers levels every walker's buffer capacities (interaction
// list, SoA target block, traversal stack) up to the fleet-wide
// maximum, so after one full evaluation no walker has to grow
// mid-flight no matter which groups it is handed next time. Callers
// must hold all walkers idle (between evaluations); the distributed
// engines' eval slot pools use this the same way ForcePool does.
func EqualizeWalkers(walkers []*Walker) {
	var nb, nc, nt, ns, nstack int
	for _, w := range walkers {
		b, c := w.List.Caps()
		t, s := w.tg.Caps()
		nb, nc = max(nb, b), max(nc, c)
		nt, ns = max(nt, t), max(ns, s)
		nstack = max(nstack, cap(w.stack))
	}
	for _, w := range walkers {
		w.List.Grow(nb, nc)
		w.tg.Grow(nt, ns)
		if cap(w.stack) < nstack {
			grown := make([]keys.Key, len(w.stack), nstack)
			copy(grown, w.stack)
			w.stack = grown
		}
	}
}

// Workers returns the pool's worker count.
func (p *ForcePool) Workers() int { return len(p.start) }

// Close stops the workers. The pool must not be used afterwards.
func (p *ForcePool) Close() {
	for _, c := range p.start {
		close(c)
	}
}
