package tree

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/cosmo"
	"repro/internal/diag"
	"repro/internal/grav"
	"repro/internal/ic"
	"repro/internal/keys"
	"repro/internal/vec"
)

// sorted prepares an IC system for tree building.
func sorted(sys *core.System) (*core.System, keys.Domain) {
	sys.EnableDynamics()
	d := keys.NewDomain(sys.Pos)
	sys.AssignKeys(d)
	sys.SortByKey()
	return sys, d
}

func cosmoCloud(t *testing.T) (*core.System, keys.Domain) {
	r, err := cosmo.NewRealization(cosmo.Params{
		Grid: 16, Box: 1, DeltaRMS: 0.2, ShapeGamma: 5, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	sys, _ := r.ICs()
	return sorted(sys)
}

// accClose checks the batched result against the fused one to ~1e-12
// relative (the two paths order the floating-point sums differently).
func accClose(t *testing.T, tag string, acc, ref []vec.V3, pot, refPot []float64) {
	t.Helper()
	var scale float64
	for i := range ref {
		if n := ref[i].Norm(); n > scale {
			scale = n
		}
	}
	tol := 1e-12 * (scale + 1)
	for i := range ref {
		if acc[i].Sub(ref[i]).Norm() > tol || math.Abs(pot[i]-refPot[i]) > tol {
			t.Fatalf("%s: body %d differs: %v/%g vs %v/%g", tag, i, acc[i], pot[i], ref[i], refPot[i])
		}
	}
}

// The list-based two-phase evaluation must match the fused walk on
// realistic ICs, serial and concurrent, monopole and quadrupole, with
// byte-identical interaction counts.
func TestGravityMatchesFused(t *testing.T) {
	macs := map[string]grav.MACParams{
		"bh-mono": {Kind: grav.MACBarnesHut, Theta: 0.7, Quad: false},
		"bh-quad": {Kind: grav.MACBarnesHut, Theta: 0.7, Quad: true},
		"sw-quad": {Kind: grav.MACSalmonWarren, AccelTol: 1e-4, Quad: true},
	}
	ics := map[string]func() (*core.System, keys.Domain){
		"plummer": func() (*core.System, keys.Domain) { return sorted(ic.Plummer(3000, 1.0, 5)) },
		"cosmo":   func() (*core.System, keys.Domain) { return cosmoCloud(t) },
	}
	const eps2 = 1e-6
	for icName, mk := range ics {
		sys, d := mk()
		for macName, mac := range macs {
			tag := icName + "/" + macName
			tr := Build(sys, d, mac, 16)
			ctrFused := tr.GravityFused(eps2)
			refAcc := append(sys.Acc[:0:0], sys.Acc...)
			refPot := append(sys.Pot[:0:0], sys.Pot...)
			refWork := append(sys.Work[:0:0], sys.Work...)

			ctr := tr.Gravity(eps2)
			if ctr.PP != ctrFused.PP || ctr.PC != ctrFused.PC || ctr.QuadPC != ctrFused.QuadPC {
				t.Fatalf("%s: counts differ: batched PP=%d PC=%d QuadPC=%d, fused PP=%d PC=%d QuadPC=%d",
					tag, ctr.PP, ctr.PC, ctr.QuadPC, ctrFused.PP, ctrFused.PC, ctrFused.QuadPC)
			}
			accClose(t, tag+"/serial", sys.Acc, refAcc, sys.Pot, refPot)
			for i := range refWork {
				if sys.Work[i] != refWork[i] {
					t.Fatalf("%s: work weight %d differs", tag, i)
				}
			}

			ctrC := tr.GravityConcurrent(eps2, 4)
			if ctrC.PP != ctrFused.PP || ctrC.PC != ctrFused.PC {
				t.Fatalf("%s: concurrent counts differ", tag)
			}
			accClose(t, tag+"/concurrent", sys.Acc, refAcc, sys.Pot, refPot)
		}
	}
}

// An InteractionList built from a tree walk must evaluate to the same
// forces as replaying its entries through the fused kernels one call
// at a time: the list is a faithful, order-preserving record of the
// walk's accepted interactions.
func TestListEvaluationMatchesPerEntryKernels(t *testing.T) {
	const eps2 = 1e-6
	f := func(seed int64, groupPick uint16, quad bool) bool {
		n := 200 + int(uint64(seed)%300)
		sys, d := cloud(n, seed)
		mac := grav.DefaultMAC()
		mac.Quad = quad
		tr := Build(sys, d, mac, 16)
		gk := tr.Groups[int(groupPick)%len(tr.Groups)]
		g := tr.Cell(gk)
		gpos := sys.Pos[g.First : g.First+g.N]
		gmass := sys.Mass[g.First : g.First+g.N]

		var w Walker
		var ctr diag.Counters
		if m := w.Walk(tr, gk, gpos, &ctr); m != nil {
			return false
		}
		acc := make([]vec.V3, len(gpos))
		pot := make([]float64, len(gpos))
		w.Evaluate(gpos, gmass, acc, pot, eps2, quad, &ctr)

		// Replay the list entry by entry through the fused kernels.
		ref := make([]vec.V3, len(gpos))
		refPot := make([]float64, len(gpos))
		for c := 0; c < w.List.NCells(); c++ {
			mp := w.List.Cell(c)
			grav.M2P(gpos, ref, refPot, &mp, quad, eps2)
		}
		var spos [1]vec.V3
		var smass [1]float64
		for j := 0; j < w.List.NSources(); j++ {
			spos[0] = vec.V3{X: w.List.SX[j], Y: w.List.SY[j], Z: w.List.SZ[j]}
			smass[0] = w.List.SM[j]
			grav.PPTile(gpos, ref, refPot, spos[:], smass[:], eps2)
		}
		if w.List.Self {
			grav.PPSelf(gpos, gmass, ref, refPot, eps2)
		}
		for i := range ref {
			if acc[i].Sub(ref[i]).Norm() > 1e-9*(ref[i].Norm()+1) ||
				math.Abs(pot[i]-refPot[i]) > 1e-9*(math.Abs(refPot[i])+1) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// groupSphereRef is the original two-AoS-pass implementation, kept as
// the reference for the optimized GroupSphere.
func groupSphereRef(pos []vec.V3) (center vec.V3, radius float64) {
	if len(pos) == 0 {
		return vec.V3{}, 0
	}
	lo, hi := pos[0], pos[0]
	for _, p := range pos[1:] {
		lo = vec.Min(lo, p)
		hi = vec.Max(hi, p)
	}
	center = lo.Add(hi).Scale(0.5)
	for _, p := range pos {
		if d := p.Sub(center).Norm(); d > radius {
			radius = d
		}
	}
	return center, radius
}

func TestGroupSphereMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	for _, n := range []int{0, 1, 2, 3, 16, 100, 1000} {
		pos := make([]vec.V3, n)
		for i := range pos {
			pos[i] = vec.V3{X: rng.NormFloat64(), Y: rng.NormFloat64(), Z: rng.NormFloat64()}
		}
		c, r := GroupSphere(pos)
		cRef, rRef := groupSphereRef(pos)
		// Same arithmetic for the center; the radius is
		// sqrt(max d2) vs max sqrt(d2) -- identical because sqrt is
		// monotone and correctly rounded.
		if c != cRef || r != rRef {
			t.Fatalf("n=%d: got %v/%g want %v/%g", n, c, r, cRef, rRef)
		}
	}
}

func TestGroupSphereAllocsNothing(t *testing.T) {
	pos := make([]vec.V3, 512)
	rng := rand.New(rand.NewSource(20))
	for i := range pos {
		pos[i] = vec.V3{X: rng.Float64(), Y: rng.Float64(), Z: rng.Float64()}
	}
	if allocs := testing.AllocsPerRun(100, func() { GroupSphere(pos) }); allocs != 0 {
		t.Fatalf("GroupSphere allocates %v times per call", allocs)
	}
}

func BenchmarkGroupSphere(b *testing.B) {
	pos := make([]vec.V3, 16) // one bucket: the per-group hot case
	rng := rand.New(rand.NewSource(21))
	for i := range pos {
		pos[i] = vec.V3{X: rng.Float64(), Y: rng.Float64(), Z: rng.Float64()}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		GroupSphere(pos)
	}
}
