package tree

import (
	"testing"

	"repro/internal/grav"
)

func TestGravityConcurrentMatchesSerial(t *testing.T) {
	sys, d := cloud(3000, 21)
	tr := Build(sys, d, grav.DefaultMAC(), 16)
	ctrSerial := tr.Gravity(1e-6)
	accSerial := append(sys.Acc[:0:0], sys.Acc...)
	potSerial := append(sys.Pot[:0:0], sys.Pot...)
	workSerial := append(sys.Work[:0:0], sys.Work...)

	for _, workers := range []int{2, 4, 8} {
		ctr := tr.GravityConcurrent(1e-6, workers)
		if ctr.PP != ctrSerial.PP || ctr.PC != ctrSerial.PC {
			t.Fatalf("workers=%d: counters differ: %+v vs %+v", workers, ctr, ctrSerial)
		}
		for i := range accSerial {
			// Identical arithmetic per group: bitwise equality.
			if sys.Acc[i] != accSerial[i] || sys.Pot[i] != potSerial[i] {
				t.Fatalf("workers=%d body %d: results differ from serial", workers, i)
			}
			if sys.Work[i] != workSerial[i] {
				t.Fatalf("workers=%d body %d: work weight differs", workers, i)
			}
		}
	}
	// workers=1 must delegate to the serial path.
	ctr := tr.GravityConcurrent(1e-6, 1)
	if ctr.Interactions() != ctrSerial.Interactions() {
		t.Fatal("workers=1 differs")
	}
	// workers=0 uses GOMAXPROCS and still matches.
	ctr = tr.GravityConcurrent(1e-6, 0)
	if ctr.Interactions() != ctrSerial.Interactions() {
		t.Fatal("workers=0 differs")
	}
}

func BenchmarkGravityConcurrent(b *testing.B) {
	sys, d := cloud(30000, 22)
	tr := Build(sys, d, grav.DefaultMAC(), 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.GravityConcurrent(1e-6, 0)
	}
}
