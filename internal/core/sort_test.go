package core

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/keys"
	"repro/internal/vec"
)

// makeSystem builds a fully-featured system whose keys come from
// keyOf(i) and whose per-body payloads are distinct, so any column
// the permutation forgets or misroutes shows up as a mismatch.
func makeSystem(n int, keyOf func(i int) keys.Key, rng *rand.Rand) *System {
	s := New(n)
	s.EnableDynamics()
	s.EnableVortex()
	s.EnableSPH()
	perm := rng.Perm(n)
	for i := 0; i < n; i++ {
		f := float64(i)
		s.Key[i] = keyOf(i)
		s.ID[i] = int64(perm[i]) // IDs unique but shuffled
		s.Pos[i] = vec.V3{X: f, Y: f + 0.25, Z: f + 0.5}
		s.Mass[i] = f + 1
		s.Work[i] = f + 2
		s.Vel[i] = vec.V3{X: -f}
		s.Acc[i] = vec.V3{Y: -f}
		s.Pot[i] = -f
		s.Alpha[i] = vec.V3{Z: -f}
		s.H[i] = f + 3
		s.Rho[i] = f + 4
	}
	return s
}

// reference sorts a clone of s with sort.SliceStable by (Key, ID) and
// returns the permutation.
func referencePerm(s *System) []int {
	idx := make([]int, s.Len())
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		if s.Key[idx[a]] != s.Key[idx[b]] {
			return s.Key[idx[a]] < s.Key[idx[b]]
		}
		return s.ID[idx[a]] < s.ID[idx[b]]
	})
	return idx
}

func checkAgainstReference(t *testing.T, orig, got *System, perm []int) {
	t.Helper()
	if err := got.Validate(); err != nil {
		t.Fatal(err)
	}
	for i, p := range perm {
		if got.Key[i] != orig.Key[p] || got.ID[i] != orig.ID[p] {
			t.Fatalf("body %d: got (key %v, id %d), want (key %v, id %d)",
				i, got.Key[i], got.ID[i], orig.Key[p], orig.ID[p])
		}
		if got.Pos[i] != orig.Pos[p] || got.Mass[i] != orig.Mass[p] ||
			got.Work[i] != orig.Work[p] ||
			got.Vel[i] != orig.Vel[p] || got.Acc[i] != orig.Acc[p] ||
			got.Pot[i] != orig.Pot[p] || got.Alpha[i] != orig.Alpha[p] ||
			got.H[i] != orig.H[p] || got.Rho[i] != orig.Rho[p] {
			t.Fatalf("body %d: payload columns did not follow the permutation", i)
		}
	}
}

func clone(s *System) *System {
	c := New(0)
	c.EnableDynamics()
	c.EnableVortex()
	c.EnableSPH()
	for i := 0; i < s.Len(); i++ {
		c.AppendFrom(s, i)
	}
	return c
}

func randomBodyKey(rng *rand.Rand) keys.Key {
	return keys.FromCoords(
		uint32(rng.Intn(1<<21)), uint32(rng.Intn(1<<21)), uint32(rng.Intn(1<<21)),
		keys.MaxLevel)
}

func TestSortMatchesStableReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	few := []keys.Key{ // heavy MaxLevel collisions
		randomBodyKey(rng), randomBodyKey(rng), randomBodyKey(rng),
	}
	cases := map[string]func(i int) keys.Key{
		"random":     func(i int) keys.Key { return randomBodyKey(rng) },
		"allEqual":   func(i int) keys.Key { return few[0] },
		"collisions": func(i int) keys.Key { return few[i%3] },
		"sorted":     func(i int) keys.Key { return keys.FromCoords(uint32(i), 0, 0, keys.MaxLevel) },
		"reverse":    func(i int) keys.Key { return keys.FromCoords(uint32(5000-i), 0, 0, keys.MaxLevel) },
	}
	for name, keyOf := range cases {
		for _, workers := range []int{1, 2, 8} {
			orig := makeSystem(3001, keyOf, rng)
			got := clone(orig)
			st := &Sorter{Workers: workers}
			st.Sort(got)
			checkAgainstReference(t, orig, got, referencePerm(orig))
			if !got.Sorted() {
				t.Fatalf("%s/w%d: not sorted", name, workers)
			}
			// Idempotence: a second sort is the identity.
			again := clone(got)
			st.Sort(again)
			checkAgainstReference(t, got, again, referencePerm(got))
			_ = name
		}
	}
}

// Above the serial cutoff the parallel histogram/scatter path runs;
// it must agree with the reference and with the serial Sorter.
func TestSortParallelLargeMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	n := sortSerialBelow * 2
	orig := makeSystem(n, func(i int) keys.Key { return randomBodyKey(rng) }, rng)
	a, b := clone(orig), clone(orig)
	(&Sorter{Workers: 1}).Sort(a)
	(&Sorter{Workers: 8}).Sort(b)
	checkAgainstReference(t, orig, a, referencePerm(orig))
	for i := 0; i < n; i++ {
		if a.Key[i] != b.Key[i] || a.ID[i] != b.ID[i] || a.Pos[i] != b.Pos[i] {
			t.Fatalf("worker counts disagree at body %d", i)
		}
	}
}

func TestSortByKeyPooled(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	orig := makeSystem(513, func(i int) keys.Key { return randomBodyKey(rng) }, rng)
	got := clone(orig)
	got.SortByKey()
	checkAgainstReference(t, orig, got, referencePerm(orig))
}

func TestResortRepairsPerturbedKeys(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for _, frac := range []float64{0, 0.02, 0.1, 0.6} { // 0.6 forces the fallback
		orig := makeSystem(4000, func(i int) keys.Key { return randomBodyKey(rng) }, rng)
		st := &Sorter{Workers: 2}
		st.Sort(orig)
		// Perturb a fraction of the keys, as a dynamics step would.
		for i := 0; i < orig.Len(); i++ {
			if rng.Float64() < frac {
				orig.Key[i] = randomBodyKey(rng)
			}
		}
		want := clone(orig)
		(&Sorter{}).Sort(want)
		got := clone(orig)
		d := st.Resort(got)
		if frac == 0 && d != 0 {
			t.Fatalf("resort of a sorted system reported %d displaced", d)
		}
		for i := 0; i < got.Len(); i++ {
			if got.Key[i] != want.Key[i] || got.ID[i] != want.ID[i] ||
				got.Pos[i] != want.Pos[i] || got.Rho[i] != want.Rho[i] {
				t.Fatalf("frac %g: resort differs from full sort at body %d", frac, i)
			}
		}
	}
}

// Resort must also restore the ID tie-break among equal keys, not
// just the key order.
func TestResortEqualKeyTieBreak(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	k := randomBodyKey(rng)
	orig := makeSystem(600, func(i int) keys.Key { return k }, rng)
	st := &Sorter{}
	st.Sort(orig)
	// Swap a few IDs out of order by re-keying nothing: displace IDs
	// directly to simulate exchange-merged runs.
	for s := 0; s < 20; s++ {
		i, j := rng.Intn(600), rng.Intn(600)
		orig.ID[i], orig.ID[j] = orig.ID[j], orig.ID[i]
	}
	want := clone(orig)
	(&Sorter{}).Sort(want)
	got := clone(orig)
	st.Resort(got)
	for i := 0; i < got.Len(); i++ {
		if got.ID[i] != want.ID[i] {
			t.Fatalf("tie-break order differs at body %d", i)
		}
	}
}

// A reused serial Sorter must not allocate in steady state: the
// permutation, value and gather scratch all persist, and the serial
// path constructs no dispatch closures.
func TestSorterSteadyStateAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	s := makeSystem(5000, func(i int) keys.Key { return randomBodyKey(rng) }, rng)
	st := &Sorter{Workers: 1}
	st.Sort(s)
	shuffle := func() {
		for i := 0; i < 200; i++ {
			s.Key[rng.Intn(s.Len())] = randomBodyKey(rng)
		}
	}
	shuffle()
	avg := testing.AllocsPerRun(5, func() {
		st.Sort(s)
		shuffle()
	})
	if avg > 0 {
		t.Fatalf("steady-state Sort allocates %.1f/op", avg)
	}
}

// A reused Sorter's scratch arrays come from swapping with whatever
// System it last sorted, and a System built by append has different
// capacities per column (capacity growth depends on element size). A
// later sort of a system whose length lands between two of those
// capacities used to panic in Apply, which gated every mandatory
// column's reallocation on cap(sPos) alone. Seen in the wild as a rank
// crash (then a world deadlock) in treebench at np=8.
func TestSorterScratchUnevenCapacities(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	small := makeSystem(100, func(int) keys.Key { return randomBodyKey(rng) }, rng)
	// Give one column spare capacity, as append-grown systems have.
	pos := make([]vec.V3, 100, 300)
	copy(pos, small.Pos)
	small.Pos = pos

	var st Sorter
	st.Sort(small) // scratch now holds small's arrays: Pos cap 300, Mass cap 100

	big := makeSystem(200, func(int) keys.Key { return randomBodyKey(rng) }, rng)
	ref := referencePerm(big)
	origBig := clone(big)
	st.Sort(big) // 100 < 200 <= 300: used to panic on sMass[:200]
	checkAgainstReference(t, origBig, big, ref)
}
