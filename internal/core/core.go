// Package core defines the particle system shared by every physics
// module: a structure-of-arrays container for bodies with the fields
// the hashed oct-tree needs (position, mass, Morton key, work weight)
// plus optional per-application fields (velocity, acceleration,
// potential, vortex strength, smoothing length).
//
// Structure-of-arrays keeps the gravity kernel's memory traffic at the
// paper's 32 bytes per interaction and makes the sort/exchange steps
// of the domain decomposition simple slice permutations.
package core

import (
	"fmt"

	"repro/internal/keys"
	"repro/internal/vec"
)

// System holds N bodies. Pos, Mass, Key, Work and ID always have
// length N; the remaining slices are either nil (feature unused) or
// length N.
type System struct {
	Pos  []vec.V3
	Mass []float64
	Key  []keys.Key
	// Work is the per-body cost estimate from the previous force
	// evaluation, used to weight the domain decomposition.
	Work []float64
	// ID is a stable identity that survives sorting and exchange.
	ID []int64

	Vel []vec.V3
	Acc []vec.V3
	Pot []float64
	// Alpha is the vector-valued vortex particle strength.
	Alpha []vec.V3
	// H is the SPH smoothing length; Rho the SPH density.
	H   []float64
	Rho []float64
	// Rung is the block-timestep rung: body i sub-steps the global
	// step in 2^Rung[i] pieces. Carried through sort and exchange so
	// bodies keep their rung when they migrate ranks mid-step.
	Rung []uint8
}

// New returns a system of n bodies with the always-present fields
// allocated and Work initialized to 1 (uniform first-step weights).
func New(n int) *System {
	s := &System{
		Pos:  make([]vec.V3, n),
		Mass: make([]float64, n),
		Key:  make([]keys.Key, n),
		Work: make([]float64, n),
		ID:   make([]int64, n),
	}
	for i := range s.Work {
		s.Work[i] = 1
		s.ID[i] = int64(i)
	}
	return s
}

// Len returns the number of bodies.
func (s *System) Len() int { return len(s.Pos) }

// EnableDynamics allocates Vel, Acc and Pot if absent.
func (s *System) EnableDynamics() {
	n := s.Len()
	if s.Vel == nil {
		s.Vel = make([]vec.V3, n)
	}
	if s.Acc == nil {
		s.Acc = make([]vec.V3, n)
	}
	if s.Pot == nil {
		s.Pot = make([]float64, n)
	}
}

// EnableVortex allocates the vortex strength field if absent.
func (s *System) EnableVortex() {
	if s.Alpha == nil {
		s.Alpha = make([]vec.V3, s.Len())
	}
}

// EnableRungs allocates the block-timestep rung field if absent
// (all bodies start on rung zero: the full global step).
func (s *System) EnableRungs() {
	if s.Rung == nil {
		s.Rung = make([]uint8, s.Len())
	}
}

// EnableSPH allocates the SPH fields if absent.
func (s *System) EnableSPH() {
	if s.H == nil {
		s.H = make([]float64, s.Len())
	}
	if s.Rho == nil {
		s.Rho = make([]float64, s.Len())
	}
}

// fields returns all non-nil slices as swappable views; used by Swap
// and the permutation helpers so new fields cannot be forgotten.
func (s *System) swap(i, j int) {
	s.Pos[i], s.Pos[j] = s.Pos[j], s.Pos[i]
	s.Mass[i], s.Mass[j] = s.Mass[j], s.Mass[i]
	s.Key[i], s.Key[j] = s.Key[j], s.Key[i]
	s.Work[i], s.Work[j] = s.Work[j], s.Work[i]
	s.ID[i], s.ID[j] = s.ID[j], s.ID[i]
	if s.Vel != nil {
		s.Vel[i], s.Vel[j] = s.Vel[j], s.Vel[i]
	}
	if s.Acc != nil {
		s.Acc[i], s.Acc[j] = s.Acc[j], s.Acc[i]
	}
	if s.Pot != nil {
		s.Pot[i], s.Pot[j] = s.Pot[j], s.Pot[i]
	}
	if s.Alpha != nil {
		s.Alpha[i], s.Alpha[j] = s.Alpha[j], s.Alpha[i]
	}
	if s.H != nil {
		s.H[i], s.H[j] = s.H[j], s.H[i]
	}
	if s.Rho != nil {
		s.Rho[i], s.Rho[j] = s.Rho[j], s.Rho[i]
	}
	if s.Rung != nil {
		s.Rung[i], s.Rung[j] = s.Rung[j], s.Rung[i]
	}
}

// AssignKeys computes Morton keys for every body within the domain.
func (s *System) AssignKeys(d keys.Domain) {
	for i, p := range s.Pos {
		s.Key[i] = d.KeyOf(p)
	}
}

// AssignHilbertKeys computes Hilbert keys instead (decomposition
// ablation; the tree build re-assigns Morton keys afterwards).
func (s *System) AssignHilbertKeys(d keys.Domain) {
	for i, p := range s.Pos {
		s.Key[i] = d.HilbertKeyOf(p)
	}
}

// byKey adapts a System to package sort for SortByKeyStd (see
// sort.go; SortByKey itself is the radix path).
type byKey struct{ s *System }

func (b byKey) Len() int           { return b.s.Len() }
func (b byKey) Less(i, j int) bool { return b.s.Key[i] < b.s.Key[j] }
func (b byKey) Swap(i, j int)      { b.s.swap(i, j) }

// Sorted reports whether keys are in ascending order.
func (s *System) Sorted() bool {
	for i := 1; i < len(s.Key); i++ {
		if s.Key[i] < s.Key[i-1] {
			return false
		}
	}
	return true
}

// TotalMass returns the mass sum.
func (s *System) TotalMass() float64 {
	m := 0.0
	for _, v := range s.Mass {
		m += v
	}
	return m
}

// CenterOfMass returns the mass-weighted mean position.
func (s *System) CenterOfMass() vec.V3 {
	var c vec.V3
	m := 0.0
	for i := range s.Pos {
		c = c.Add(s.Pos[i].Scale(s.Mass[i]))
		m += s.Mass[i]
	}
	if m == 0 {
		return vec.V3{}
	}
	return c.Scale(1 / m)
}

// Momentum returns the total momentum (requires Vel).
func (s *System) Momentum() vec.V3 {
	var p vec.V3
	for i := range s.Vel {
		p = p.Add(s.Vel[i].Scale(s.Mass[i]))
	}
	return p
}

// KineticEnergy returns sum(m v^2 / 2) (requires Vel).
func (s *System) KineticEnergy() float64 {
	e := 0.0
	for i := range s.Vel {
		e += 0.5 * s.Mass[i] * s.Vel[i].Norm2()
	}
	return e
}

// PotentialEnergy returns sum(m pot)/2 (requires Pot filled by a force
// evaluation; the half corrects for double counting pairs).
func (s *System) PotentialEnergy() float64 {
	e := 0.0
	for i := range s.Pot {
		e += 0.5 * s.Mass[i] * s.Pot[i]
	}
	return e
}

// Slice returns a view of bodies [lo,hi) sharing storage with s.
func (s *System) Slice(lo, hi int) *System {
	v := &System{
		Pos:  s.Pos[lo:hi],
		Mass: s.Mass[lo:hi],
		Key:  s.Key[lo:hi],
		Work: s.Work[lo:hi],
		ID:   s.ID[lo:hi],
	}
	if s.Vel != nil {
		v.Vel = s.Vel[lo:hi]
	}
	if s.Acc != nil {
		v.Acc = s.Acc[lo:hi]
	}
	if s.Pot != nil {
		v.Pot = s.Pot[lo:hi]
	}
	if s.Alpha != nil {
		v.Alpha = s.Alpha[lo:hi]
	}
	if s.H != nil {
		v.H = s.H[lo:hi]
	}
	if s.Rho != nil {
		v.Rho = s.Rho[lo:hi]
	}
	if s.Rung != nil {
		v.Rung = s.Rung[lo:hi]
	}
	return v
}

// AppendFrom appends body i of src to s.
func (s *System) AppendFrom(src *System, i int) {
	s.Pos = append(s.Pos, src.Pos[i])
	s.Mass = append(s.Mass, src.Mass[i])
	s.Key = append(s.Key, src.Key[i])
	s.Work = append(s.Work, src.Work[i])
	s.ID = append(s.ID, src.ID[i])
	if src.Vel != nil {
		s.Vel = append(s.Vel, src.Vel[i])
	}
	if src.Acc != nil {
		s.Acc = append(s.Acc, src.Acc[i])
	}
	if src.Pot != nil {
		s.Pot = append(s.Pot, src.Pot[i])
	}
	if src.Alpha != nil {
		s.Alpha = append(s.Alpha, src.Alpha[i])
	}
	if src.H != nil {
		s.H = append(s.H, src.H[i])
	}
	if src.Rho != nil {
		s.Rho = append(s.Rho, src.Rho[i])
	}
	if src.Rung != nil {
		s.Rung = append(s.Rung, src.Rung[i])
	}
}

// Validate checks internal consistency (slice lengths), returning a
// descriptive error for misuse.
func (s *System) Validate() error {
	n := s.Len()
	check := func(name string, l, want int) error {
		if l != want {
			return fmt.Errorf("core: field %s has length %d, want %d", name, l, want)
		}
		return nil
	}
	if err := check("Mass", len(s.Mass), n); err != nil {
		return err
	}
	if err := check("Key", len(s.Key), n); err != nil {
		return err
	}
	if err := check("Work", len(s.Work), n); err != nil {
		return err
	}
	if err := check("ID", len(s.ID), n); err != nil {
		return err
	}
	for name, l := range map[string]int{
		"Vel": len(s.Vel), "Acc": len(s.Acc), "Pot": len(s.Pot),
		"Alpha": len(s.Alpha), "H": len(s.H), "Rho": len(s.Rho),
		"Rung": len(s.Rung),
	} {
		if l != 0 {
			if err := check(name, l, n); err != nil {
				return err
			}
		}
	}
	return nil
}

// BytesPerBody is the logical wire size of one body during particle
// exchange: position, velocity, mass, work and id. The paper quotes
// 32 bytes of data read per interaction (position + mass); exchange
// carries the dynamic state too.
const BytesPerBody = 3*8 + 3*8 + 8 + 8 + 8
