package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/keys"
	"repro/internal/vec"
)

func randomSystem(n int, seed int64) *System {
	rng := rand.New(rand.NewSource(seed))
	s := New(n)
	s.EnableDynamics()
	for i := 0; i < n; i++ {
		s.Pos[i] = vec.V3{X: rng.Float64(), Y: rng.Float64(), Z: rng.Float64()}
		s.Vel[i] = vec.V3{X: rng.NormFloat64(), Y: rng.NormFloat64(), Z: rng.NormFloat64()}
		s.Mass[i] = rng.Float64() + 0.1
	}
	return s
}

func TestNewDefaults(t *testing.T) {
	s := New(5)
	if s.Len() != 5 {
		t.Fatalf("Len = %d", s.Len())
	}
	for i := range s.Work {
		if s.Work[i] != 1 {
			t.Fatal("work not initialized to 1")
		}
		if s.ID[i] != int64(i) {
			t.Fatal("id not initialized")
		}
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSortByKeyPermutesAllFields(t *testing.T) {
	s := randomSystem(200, 1)
	s.EnableVortex()
	s.EnableSPH()
	for i := range s.Alpha {
		s.Alpha[i] = s.Pos[i].Scale(2)
		s.H[i] = float64(i)
		s.Rho[i] = float64(i) * 2
	}
	d := keys.NewDomain(s.Pos)
	s.AssignKeys(d)

	// Remember identity -> position mapping.
	byID := make(map[int64]vec.V3)
	for i := range s.Pos {
		byID[s.ID[i]] = s.Pos[i]
	}
	s.SortByKey()
	if !s.Sorted() {
		t.Fatal("not sorted")
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	for i := range s.Pos {
		if byID[s.ID[i]] != s.Pos[i] {
			t.Fatalf("body %d: position decoupled from id after sort", i)
		}
		if s.Alpha[i] != s.Pos[i].Scale(2) {
			t.Fatalf("body %d: alpha decoupled from pos after sort", i)
		}
		if s.Key[i] != d.KeyOf(s.Pos[i]) {
			t.Fatalf("body %d: key decoupled from pos", i)
		}
	}
}

// Property: sorting is idempotent and preserves multiset of IDs.
func TestSortPreservesBodiesProperty(t *testing.T) {
	f := func(seed int64) bool {
		s := randomSystem(64, seed)
		d := keys.NewDomain(s.Pos)
		s.AssignKeys(d)
		seen := make(map[int64]bool)
		s.SortByKey()
		for _, id := range s.ID {
			if seen[id] {
				return false
			}
			seen[id] = true
		}
		return len(seen) == 64 && s.Sorted()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestMassAndEnergyDiagnostics(t *testing.T) {
	s := New(2)
	s.EnableDynamics()
	s.Mass[0], s.Mass[1] = 1, 3
	s.Pos[0] = vec.V3{X: 0}
	s.Pos[1] = vec.V3{X: 4}
	s.Vel[0] = vec.V3{X: 2}
	s.Vel[1] = vec.V3{X: -1}
	if m := s.TotalMass(); m != 4 {
		t.Fatalf("TotalMass = %v", m)
	}
	if c := s.CenterOfMass(); c != (vec.V3{X: 3}) {
		t.Fatalf("CenterOfMass = %v", c)
	}
	if p := s.Momentum(); p != (vec.V3{X: -1}) {
		t.Fatalf("Momentum = %v", p)
	}
	if e := s.KineticEnergy(); e != 0.5*1*4+0.5*3*1 {
		t.Fatalf("KineticEnergy = %v", e)
	}
	s.Pot[0], s.Pot[1] = -1, -2
	if e := s.PotentialEnergy(); e != 0.5*(1*-1+3*-2) {
		t.Fatalf("PotentialEnergy = %v", e)
	}
	if c := New(0).CenterOfMass(); c != (vec.V3{}) {
		t.Fatalf("empty CenterOfMass = %v", c)
	}
}

func TestSliceSharesStorage(t *testing.T) {
	s := randomSystem(10, 3)
	v := s.Slice(2, 5)
	if v.Len() != 3 {
		t.Fatalf("slice len = %d", v.Len())
	}
	v.Pos[0] = vec.V3{X: 99}
	if s.Pos[2].X != 99 {
		t.Fatal("slice does not share storage")
	}
	if err := v.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestAppendFrom(t *testing.T) {
	src := randomSystem(5, 4)
	dst := New(0)
	dst.EnableDynamics()
	for i := 0; i < src.Len(); i++ {
		dst.AppendFrom(src, i)
	}
	if dst.Len() != 5 {
		t.Fatalf("len = %d", dst.Len())
	}
	for i := 0; i < 5; i++ {
		if dst.Pos[i] != src.Pos[i] || dst.Vel[i] != src.Vel[i] || dst.Mass[i] != src.Mass[i] {
			t.Fatalf("body %d not copied faithfully", i)
		}
	}
	if err := dst.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	s := New(3)
	s.Mass = s.Mass[:2]
	if err := s.Validate(); err == nil {
		t.Fatal("Validate missed short Mass")
	}
	s = New(3)
	s.Vel = make([]vec.V3, 1)
	if err := s.Validate(); err == nil {
		t.Fatal("Validate missed short Vel")
	}
}

func TestHilbertKeysAssign(t *testing.T) {
	s := randomSystem(50, 5)
	d := keys.NewDomain(s.Pos)
	s.AssignHilbertKeys(d)
	for _, k := range s.Key {
		if !k.Valid() || k.Level() != keys.MaxLevel {
			t.Fatal("bad hilbert key")
		}
	}
}
