// Stable parallel LSD radix sort over the Morton keys. The paper
// treats body ordering as the inner loop of the domain decomposition
// ("practically identical to a parallel sorting algorithm"), so the
// sort must cost a few linear passes, not an O(N log N) comparison
// sort that swaps every SoA column per exchange. A Sorter computes a
// permutation by sorting (Key, ID) pairs digit by digit and applies
// it with one gather pass per column; across timesteps Resort repairs
// a nearly sorted array by extracting the displaced bodies and
// merging them back.
//
// Ordering contract: ascending Key, ties broken by ascending ID.
// The tie-break makes the order deterministic (package sort's
// introsort is unstable under equal keys); every key-sorted consumer
// only needs ascending keys, so the refinement is invisible to them.
package core

import (
	"math"
	"runtime"
	"sort"
	"sync"

	"repro/internal/keys"
	"repro/internal/vec"
)

// sortSerialBelow is the size under which the per-pass goroutine
// fan-out costs more than it saves and the Sorter stays serial.
const sortSerialBelow = 1 << 13

// Sorter sorts a System's bodies into (Key, ID) order. It owns the
// permutation, histogram and per-column gather scratch, so a Sorter
// reused across timesteps allocates nothing in steady state. A Sorter
// is not safe for concurrent use; distinct ranks use distinct Sorters.
type Sorter struct {
	// Workers caps the sorting goroutines. 0 means automatic
	// (GOMAXPROCS, capped); 1 forces the serial path.
	Workers int

	perm, permTmp []int32
	vals, valsTmp []uint64
	hist          [][256]int32
	orw, andw     []uint64

	kept, disp []int32

	sPos, sVel, sAcc, sAlpha []vec.V3
	sMass, sWork, sPot, sH   []float64
	sRho                     []float64
	sKey                     []keys.Key
	sID                      []int64
	sRung                    []uint8
}

// workers picks the fan-out for an n-element pass.
func (st *Sorter) workers(n int) int {
	if n < sortSerialBelow {
		return 1
	}
	w := st.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
		if w > 8 {
			w = 8
		}
	}
	if w < 1 {
		w = 1
	}
	return w
}

// parallelRanges splits [0,n) into workers contiguous chunks and runs
// fn on each. The chunk boundaries are a pure function of (workers, n)
// so the histogram and scatter passes of one radix digit agree.
func parallelRanges(workers, n int, fn func(w, lo, hi int)) {
	if workers <= 1 {
		fn(0, 0, n)
		return
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo, hi := w*n/workers, (w+1)*n/workers
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			fn(w, lo, hi)
		}(w, lo, hi)
	}
	wg.Wait()
}

func (st *Sorter) ensure(n int) {
	if n > math.MaxInt32 {
		panic("core: Sorter supports at most 2^31-1 bodies")
	}
	if cap(st.perm) < n {
		st.perm = make([]int32, n)
		st.permTmp = make([]int32, n)
		st.vals = make([]uint64, n)
		st.valsTmp = make([]uint64, n)
	}
	w := st.workers(n)
	if len(st.hist) < w {
		st.hist = make([][256]int32, w)
		st.orw = make([]uint64, w)
		st.andw = make([]uint64, w)
	}
}

// signFlip maps an int64 onto a uint64 whose unsigned order matches
// the signed order (IDs are non-negative everywhere in this codebase,
// but the sort should not silently depend on that).
const signFlip = uint64(1) << 63

// Sort reorders s into ascending (Key, ID) order. Keys must already
// be assigned; Sort touches every non-nil column exactly once, in the
// final gather.
func (st *Sorter) Sort(s *System) {
	n := s.Len()
	if n < 2 {
		return
	}
	st.ensure(n)
	perm := st.perm[:n]
	for i := range perm {
		perm[i] = int32(i)
	}
	// Secondary digit first: a stable pass over the IDs, then stable
	// passes over the keys, leaves equal keys in ID order. When the
	// IDs are already ascending in array order (fresh systems, and
	// every array this Sorter produced), the identity permutation is
	// the ID sort and the first phase is free.
	ascending := true
	for i := 1; i < n; i++ {
		if s.ID[i] < s.ID[i-1] {
			ascending = false
			break
		}
	}
	if !ascending {
		vals := st.vals[:n]
		for i := range vals {
			vals[i] = uint64(s.ID[i]) ^ signFlip
		}
		st.radixSort(n)
	}
	perm = st.perm[:n]
	vals := st.vals[:n]
	for i := range vals {
		vals[i] = uint64(s.Key[perm[i]])
	}
	st.radixSort(n)
	st.Apply(s, st.perm[:n])
}

// radixSort stably sorts st.perm[:n] by st.vals[:n] (the value array
// is permuted alongside). Bytes on which every value agrees are
// skipped, so a key set spanning few octant levels costs few passes.
func (st *Sorter) radixSort(n int) {
	w := st.workers(n)
	orv, andv := uint64(0), ^uint64(0)
	if w == 1 {
		for _, v := range st.vals[:n] {
			orv |= v
			andv &= v
		}
	} else {
		vals := st.vals[:n]
		parallelRanges(w, n, func(wi, lo, hi int) {
			o, a := uint64(0), ^uint64(0)
			for _, v := range vals[lo:hi] {
				o |= v
				a &= v
			}
			st.orw[wi], st.andw[wi] = o, a
		})
		for wi := 0; wi < w; wi++ {
			orv |= st.orw[wi]
			andv &= st.andw[wi]
		}
	}
	for shift := uint(0); shift < 64; shift += 8 {
		if (orv>>shift)&0xff == (andv>>shift)&0xff {
			continue // all values share this byte
		}
		st.radixPass(n, w, shift)
	}
}

// radixPass is one stable counting pass on byte (vals >> shift). The
// per-chunk histograms are recomputed every pass: the element
// arrangement changes between passes, so per-chunk scatter offsets
// from an earlier arrangement would not be stable. The serial path
// avoids the dispatch closures entirely (they heap-allocate), keeping
// a reused Sorter allocation-free in steady state.
func (st *Sorter) radixPass(n, w int, shift uint) {
	if w == 1 {
		st.countChunk(0, 0, n, shift)
		st.mergeOffsets(1)
		st.scatterChunk(0, 0, n, shift)
	} else {
		parallelRanges(w, n, func(wi, lo, hi int) { st.countChunk(wi, lo, hi, shift) })
		st.mergeOffsets(w)
		parallelRanges(w, n, func(wi, lo, hi int) { st.scatterChunk(wi, lo, hi, shift) })
	}
	st.vals, st.valsTmp = st.valsTmp, st.vals
	st.perm, st.permTmp = st.permTmp, st.perm
}

func (st *Sorter) countChunk(wi, lo, hi int, shift uint) {
	h := &st.hist[wi]
	*h = [256]int32{}
	for _, v := range st.vals[lo:hi] {
		h[uint8(v>>shift)]++
	}
}

// mergeOffsets turns the per-chunk counts into exclusive scatter
// offsets: chunk wi's run of byte b lands after every chunk's smaller
// bytes and after earlier chunks' runs of b -- the stable order.
func (st *Sorter) mergeOffsets(w int) {
	hist := st.hist[:w]
	pos := int32(0)
	for b := 0; b < 256; b++ {
		for wi := 0; wi < w; wi++ {
			c := hist[wi][b]
			hist[wi][b] = pos
			pos += c
		}
	}
}

func (st *Sorter) scatterChunk(wi, lo, hi int, shift uint) {
	h := &st.hist[wi]
	vals, perm := st.vals, st.perm
	tmpV, tmpP := st.valsTmp, st.permTmp
	for i := lo; i < hi; i++ {
		b := uint8(vals[i] >> shift)
		d := h[b]
		h[b]++
		tmpV[d] = vals[i]
		tmpP[d] = perm[i]
	}
}

// gather copies src[perm[i]] into dst[i].
func gather[T any](dst, src []T, perm []int32) {
	for i, p := range perm {
		dst[i] = src[p]
	}
}

// Apply permutes every non-nil column of s by perm (body i of the
// result is body perm[i] of the input) with one parallel gather pass
// per column, then swaps the gathered arrays into the System. The
// previous backing arrays become the Sorter's scratch; callers must
// not hold Slice views across a sort.
func (st *Sorter) Apply(s *System, perm []int32) {
	n := len(perm)
	if n != s.Len() {
		panic("core: permutation length does not match system")
	}
	if n == 0 {
		return
	}
	// Each column grows independently: the swap below hands the
	// System's old arrays to the scratch, and arrays of different
	// element sizes do not share append's capacity growth, so the
	// scratch capacities diverge across calls.
	st.sPos = grow(st.sPos, n)
	st.sMass = grow(st.sMass, n)
	st.sKey = grow(st.sKey, n)
	st.sWork = grow(st.sWork, n)
	st.sID = grow(st.sID, n)
	if s.Vel != nil {
		st.sVel = grow(st.sVel, n)
	}
	if s.Acc != nil {
		st.sAcc = grow(st.sAcc, n)
	}
	if s.Alpha != nil {
		st.sAlpha = grow(st.sAlpha, n)
	}
	if s.Pot != nil {
		st.sPot = grow(st.sPot, n)
	}
	if s.H != nil {
		st.sH = grow(st.sH, n)
	}
	if s.Rho != nil {
		st.sRho = grow(st.sRho, n)
	}
	if s.Rung != nil {
		st.sRung = grow(st.sRung, n)
	}

	if w := st.workers(n); w == 1 {
		st.applyChunk(s, perm, 0, n)
	} else {
		parallelRanges(w, n, func(_, lo, hi int) { st.applyChunk(s, perm, lo, hi) })
	}

	s.Pos, st.sPos = st.sPos, s.Pos
	s.Mass, st.sMass = st.sMass, s.Mass
	s.Key, st.sKey = st.sKey, s.Key
	s.Work, st.sWork = st.sWork, s.Work
	s.ID, st.sID = st.sID, s.ID
	if s.Vel != nil {
		s.Vel, st.sVel = st.sVel, s.Vel
	}
	if s.Acc != nil {
		s.Acc, st.sAcc = st.sAcc, s.Acc
	}
	if s.Alpha != nil {
		s.Alpha, st.sAlpha = st.sAlpha, s.Alpha
	}
	if s.Pot != nil {
		s.Pot, st.sPot = st.sPot, s.Pot
	}
	if s.H != nil {
		s.H, st.sH = st.sH, s.H
	}
	if s.Rho != nil {
		s.Rho, st.sRho = st.sRho, s.Rho
	}
	if s.Rung != nil {
		s.Rung, st.sRung = st.sRung, s.Rung
	}
}

func grow[T any](sl []T, n int) []T {
	if cap(sl) < n {
		return make([]T, n)
	}
	return sl[:n]
}

// applyChunk gathers rows [lo,hi) of every non-nil column into the
// Sorter's scratch arrays.
func (st *Sorter) applyChunk(s *System, perm []int32, lo, hi int) {
	p := perm[lo:hi]
	gather(st.sPos[lo:hi], s.Pos, p)
	gather(st.sMass[lo:hi], s.Mass, p)
	gather(st.sKey[lo:hi], s.Key, p)
	gather(st.sWork[lo:hi], s.Work, p)
	gather(st.sID[lo:hi], s.ID, p)
	if s.Vel != nil {
		gather(st.sVel[lo:hi], s.Vel, p)
	}
	if s.Acc != nil {
		gather(st.sAcc[lo:hi], s.Acc, p)
	}
	if s.Alpha != nil {
		gather(st.sAlpha[lo:hi], s.Alpha, p)
	}
	if s.Pot != nil {
		gather(st.sPot[lo:hi], s.Pot, p)
	}
	if s.H != nil {
		gather(st.sH[lo:hi], s.H, p)
	}
	if s.Rho != nil {
		gather(st.sRho[lo:hi], s.Rho, p)
	}
	if s.Rung != nil {
		gather(st.sRung[lo:hi], s.Rung, p)
	}
}

// lessAt orders bodies i, j of s by (Key, ID).
func lessAt(s *System, i, j int32) bool {
	if s.Key[i] != s.Key[j] {
		return s.Key[i] < s.Key[j]
	}
	return s.ID[i] < s.ID[j]
}

// Resort restores (Key, ID) order after keys changed for a fraction
// of the bodies (one dynamics step moves few bodies across cell
// boundaries -- the paper's observation that the sort is nearly free
// after the first timestep). It scans once, extracts the displaced
// bodies (those breaking the running order), sorts just those, and
// merges them back; if more than a quarter of the bodies are
// displaced it falls back to a full radix sort. Returns the number of
// displaced bodies (n means a full sort ran).
func (st *Sorter) Resort(s *System) int {
	n := s.Len()
	if n < 2 {
		return 0
	}
	st.kept = st.kept[:0]
	st.disp = st.disp[:0]
	maxK, maxID := s.Key[0], s.ID[0]
	st.kept = append(st.kept, 0)
	for i := 1; i < n; i++ {
		if s.Key[i] < maxK || (s.Key[i] == maxK && s.ID[i] < maxID) {
			st.disp = append(st.disp, int32(i))
		} else {
			maxK, maxID = s.Key[i], s.ID[i]
			st.kept = append(st.kept, int32(i))
		}
	}
	d := len(st.disp)
	if d == 0 {
		return 0
	}
	if d > n/4 {
		st.Sort(s)
		return n
	}
	disp := st.disp
	sort.Slice(disp, func(a, b int) bool { return lessAt(s, disp[a], disp[b]) })
	// The kept subsequence is (Key, ID)-sorted by construction of the
	// running-max scan, so a two-way merge with the sorted displaced
	// list is the full stable order.
	st.ensure(n)
	perm := st.perm[:n]
	kept := st.kept
	i, j := 0, 0
	for k := range perm {
		if j >= len(disp) || (i < len(kept) && lessAt(s, kept[i], disp[j])) {
			perm[k] = kept[i]
			i++
		} else {
			perm[k] = disp[j]
			j++
		}
	}
	st.Apply(s, perm)
	return d
}

// sorters backs SortByKey so transient call sites (serial driver,
// tests, tools) still amortize the Sorter scratch.
var sorters = sync.Pool{New: func() any { return new(Sorter) }}

// SortByKey sorts the bodies into ascending key order with a stable
// parallel radix sort; equal keys are ordered by ID (deterministic,
// unlike the previous comparison sort). Long-lived pipelines hold
// their own Sorter; this entry point serves everyone else from a
// pool.
func (s *System) SortByKey() {
	st := sorters.Get().(*Sorter)
	st.Sort(s)
	sorters.Put(st)
}

// SortByKeyStd is the pre-radix comparison sort (package sort over
// the SoA columns, unstable under equal keys), kept as the ablation
// baseline for BenchmarkAblation_SortStd.
func (s *System) SortByKeyStd() {
	sort.Sort(byKey{s})
}
