package render

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/vec"
)

func TestProjectBins(t *testing.T) {
	sys := core.New(3)
	sys.Mass[0], sys.Mass[1], sys.Mass[2] = 1, 2, 4
	sys.Pos[0] = vec.V3{X: -0.9, Y: -0.9} // lower-left pixel
	sys.Pos[1] = vec.V3{X: 0.9, Y: 0.9}   // upper-right pixel
	sys.Pos[2] = vec.V3{X: 5, Y: 0}       // outside: dropped
	img := Project(sys, vec.V3{}, 1.0, 10, 10)
	var total float64
	for _, v := range img.Pix {
		total += v
	}
	if total != 3 {
		t.Fatalf("projected mass %v, want 3 (outside body dropped)", total)
	}
	if img.Pix[0] != 1 {
		t.Fatalf("lower-left pixel %v", img.Pix[0])
	}
	if img.Pix[9*10+9] != 2 {
		t.Fatalf("upper-right pixel %v", img.Pix[99])
	}
}

func TestLogScaleOrdering(t *testing.T) {
	img := &Image{W: 3, H: 1, Pix: []float64{0, 1, 100}}
	s := img.LogScale()
	if s[0] != 0 {
		t.Fatal("empty pixel must be black")
	}
	if !(s[2] > s[1]) {
		t.Fatalf("denser pixel not brighter: %v", s)
	}
}

func TestLogScaleUniform(t *testing.T) {
	img := &Image{W: 2, H: 1, Pix: []float64{5, 5}}
	s := img.LogScale()
	if s[0] != 255 || s[1] != 255 {
		t.Fatalf("uniform field should saturate: %v", s)
	}
}

func TestWritePGM(t *testing.T) {
	sys := core.New(100)
	for i := range sys.Pos {
		sys.Pos[i] = vec.V3{X: float64(i%10)/10 - 0.5, Y: float64(i/10)/10 - 0.5}
		sys.Mass[i] = 1
	}
	img := Project(sys, vec.V3{}, 0.6, 32, 32)
	path := filepath.Join(t.TempDir(), "fig.pgm")
	if err := img.WritePGM(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(data[:2]) != "P5" {
		t.Fatalf("not a PGM: %q", data[:2])
	}
	// Header + 32*32 pixel bytes.
	if len(data) < 32*32 {
		t.Fatalf("file too short: %d", len(data))
	}
}
