// Package render produces the log-density projection images of the
// paper's Figures 1 and 2: "the color of each pixel represents the
// logarithm of the projected particle density along the line of
// sight". Output is 8-bit PGM (and a small PPM false-color variant),
// written with stdlib only.
package render

import (
	"fmt"
	"math"
	"os"

	"repro/internal/core"
	"repro/internal/vec"
)

// Image is a grayscale density map.
type Image struct {
	W, H int
	Pix  []float64 // projected mass per pixel, row-major
}

// Project accumulates the mass of all bodies inside the square region
// [center-half, center+half]^2 (in x and y; all z) onto a w-by-h
// grid, projecting along the z axis.
func Project(sys *core.System, center vec.V3, half float64, w, h int) *Image {
	img := &Image{W: w, H: h, Pix: make([]float64, w*h)}
	for i := 0; i < sys.Len(); i++ {
		fx := (sys.Pos[i].X - center.X + half) / (2 * half)
		fy := (sys.Pos[i].Y - center.Y + half) / (2 * half)
		if fx < 0 || fx >= 1 || fy < 0 || fy >= 1 {
			continue
		}
		px := int(fx * float64(w))
		py := int(fy * float64(h))
		img.Pix[py*w+px] += sys.Mass[i]
	}
	return img
}

// LogScale maps projected mass to 0..255 on a log scale, as the paper
// describes, with empty pixels black.
func (img *Image) LogScale() []uint8 {
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range img.Pix {
		if v > 0 {
			l := math.Log10(v)
			if l < lo {
				lo = l
			}
			if l > hi {
				hi = l
			}
		}
	}
	out := make([]uint8, len(img.Pix))
	if hi <= lo {
		for i, v := range img.Pix {
			if v > 0 {
				out[i] = 255
			}
		}
		return out
	}
	for i, v := range img.Pix {
		if v > 0 {
			f := (math.Log10(v) - lo) / (hi - lo)
			out[i] = uint8(55 + f*200) // floor at dark gray so structure shows
		}
	}
	return out
}

// WritePGM writes the log-scaled image as binary PGM (P5).
func (img *Image) WritePGM(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if _, err := fmt.Fprintf(f, "P5\n%d %d\n255\n", img.W, img.H); err != nil {
		return err
	}
	if _, err := f.Write(img.LogScale()); err != nil {
		return err
	}
	return f.Sync()
}
