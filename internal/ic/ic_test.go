package ic

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/grav"
	"repro/internal/vec"
)

func TestPlummerBulk(t *testing.T) {
	sys := Plummer(2000, 1.0, 1)
	if sys.Len() != 2000 {
		t.Fatalf("N = %d", sys.Len())
	}
	if m := sys.TotalMass(); math.Abs(m-1) > 1e-12 {
		t.Fatalf("total mass %v", m)
	}
	if c := sys.CenterOfMass(); c.Norm() > 1e-12 {
		t.Fatalf("COM %v", c)
	}
	if p := sys.Momentum(); p.Norm() > 1e-12 {
		t.Fatalf("momentum %v", p)
	}
	// Half-mass radius of a Plummer sphere is ~1.3 a.
	var rs []float64
	for i := range sys.Pos {
		rs = append(rs, sys.Pos[i].Norm())
	}
	within := 0
	for _, r := range rs {
		if r < 1.3 {
			within++
		}
	}
	frac := float64(within) / float64(len(rs))
	if frac < 0.4 || frac > 0.62 {
		t.Fatalf("mass fraction within 1.3a = %v, want ~0.5", frac)
	}
	// All radii within the truncation.
	for _, r := range rs {
		if r >= 10 {
			t.Fatalf("body beyond truncation radius: %v", r)
		}
	}
}

func TestPlummerVirial(t *testing.T) {
	// 2K + W ~ 0 for an equilibrium model (within sampling noise).
	sys := Plummer(4000, 1.0, 2)
	kin := sys.KineticEnergy()
	var w float64
	for i := 0; i < sys.Len(); i++ {
		// eps2 = 0: AccelAt skips exact self-pairs, so no softened
		// self-potential pollutes W.
		_, pot := grav.AccelAt(sys.Pos[i], sys.Pos, sys.Mass, 0)
		w += 0.5 * sys.Mass[i] * pot
	}
	ratio := -2 * kin / w
	if ratio < 0.8 || ratio > 1.2 {
		t.Fatalf("virial ratio 2K/|W| = %v, want ~1", ratio)
	}
}

func TestUniformSphere(t *testing.T) {
	sys := UniformSphere(3000, 2.0, 3)
	if math.Abs(sys.TotalMass()-1) > 1e-12 {
		t.Fatal("mass")
	}
	inside := 0
	for i := range sys.Pos {
		r := sys.Pos[i].Norm()
		if r > 2.0 {
			t.Fatalf("body outside sphere: %v", r)
		}
		if r < 2.0/math.Cbrt(2) { // half-volume radius
			inside++
		}
		if sys.Vel[i].Norm() != 0 {
			t.Fatal("cold sphere must start at rest")
		}
	}
	frac := float64(inside) / float64(sys.Len())
	if frac < 0.44 || frac > 0.56 {
		t.Fatalf("half-volume fraction %v, want ~0.5 (uniform)", frac)
	}
}

func TestTwoBodyCircular(t *testing.T) {
	sys := TwoBody(3, 1, 2.0)
	// COM at origin, zero momentum.
	if c := sys.CenterOfMass(); c.Norm() > 1e-14 {
		t.Fatalf("COM %v", c)
	}
	if p := sys.Momentum(); p.Norm() > 1e-14 {
		t.Fatalf("momentum %v", p)
	}
	// Circular orbit: centripetal acceleration matches gravity for
	// each body: v^2/r = G m_other r / d^2 ... checked via energies:
	// for a circular two-body orbit E = -G m1 m2 / (2 d).
	kin := sys.KineticEnergy()
	d := sys.Pos[1].Sub(sys.Pos[0]).Norm()
	pot := -3.0 * 1.0 / d
	if e := kin + pot; math.Abs(e- -3.0/(2*2.0)) > 1e-12 {
		t.Fatalf("orbit energy %v, want %v", e, -3.0/(2*2.0))
	}
}

func newEmptyVortexSystem() *core.System {
	s := core.New(0)
	s.EnableDynamics()
	s.EnableVortex()
	return s
}

func TestVortexRingGeometry(t *testing.T) {
	s := newEmptyVortexSystem()
	axis := vec.V3{Z: 1}
	VortexRing(s, 1.0, 2.0, 0.2, vec.V3{X: 5}, axis, 32, 4, 1)
	if s.Len() != 32*4 {
		t.Fatalf("N = %d", s.Len())
	}
	var totalAlpha vec.V3
	for i := 0; i < s.Len(); i++ {
		// Every particle near the torus: distance from the ring circle
		// must be within the core radius.
		p := s.Pos[i].Sub(vec.V3{X: 5})
		inPlane := vec.V3{X: p.X, Y: p.Y}
		ringDist := math.Abs(inPlane.Norm() - 2.0)
		if math.Sqrt(ringDist*ringDist+p.Z*p.Z) > 0.2+1e-12 {
			t.Fatalf("particle %d outside core: %v", i, s.Pos[i])
		}
		totalAlpha = totalAlpha.Add(s.Alpha[i])
		// Strength is tangential: perpendicular to both axis and the
		// radial direction.
		if math.Abs(s.Alpha[i].Dot(axis)) > 1e-12 {
			t.Fatalf("alpha %d has axial component", i)
		}
	}
	// Tangential strengths around a full ring cancel.
	if totalAlpha.Norm() > 1e-10 {
		t.Fatalf("net alpha %v, want ~0 by symmetry", totalAlpha)
	}
	// Total strength magnitude: sum |alpha| = Gamma * 2 pi R.
	var sum float64
	for i := 0; i < s.Len(); i++ {
		sum += s.Alpha[i].Norm()
	}
	want := 1.0 * 2 * math.Pi * 2.0
	if math.Abs(sum-want) > 1e-9 {
		t.Fatalf("total |alpha| = %v, want %v", sum, want)
	}
}

func TestVortexRingAppends(t *testing.T) {
	s := newEmptyVortexSystem()
	VortexRing(s, 1.0, 1.0, 0.1, vec.V3{}, vec.V3{Z: 1}, 8, 2, 1)
	n1 := s.Len()
	VortexRing(s, -1.0, 1.0, 0.1, vec.V3{Z: 3}, vec.V3{Z: 1}, 8, 2, 2)
	if s.Len() != 2*n1 {
		t.Fatalf("second ring did not append: %d", s.Len())
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestPerpTo(t *testing.T) {
	for _, v := range []vec.V3{{X: 1}, {Y: 2}, {Z: -3}, {X: 1, Y: 1, Z: 1}} {
		p := perpTo(v)
		if math.Abs(p.Dot(v)) > 1e-12 {
			t.Fatalf("perpTo(%v) = %v not perpendicular", v, p)
		}
		if math.Abs(p.Norm()-1) > 1e-12 {
			t.Fatalf("perpTo(%v) not unit", v)
		}
	}
}
