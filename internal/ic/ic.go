// Package ic generates initial conditions for the example problems:
// Plummer spheres and uniform spheres for galactic dynamics, the cold
// collapse used by accuracy studies, two-body circular orbits for
// integrator validation, and the vortex-ring discretizations for the
// fluid dynamics runs (Hyglac's showcase problem).
package ic

import (
	"math"
	"math/rand"

	"repro/internal/core"
	"repro/internal/vec"
)

// Plummer samples an N-body realization of the Plummer sphere with
// total mass 1, scale radius a, in virial equilibrium (the standard
// Aarseth-Henon-Wielen sampling), truncated at 10a.
func Plummer(n int, a float64, seed int64) *core.System {
	rng := rand.New(rand.NewSource(seed))
	sys := core.New(n)
	sys.EnableDynamics()
	for i := 0; i < n; i++ {
		sys.Mass[i] = 1.0 / float64(n)
		// Radius from the inverse cumulative mass profile.
		var r float64
		for {
			x := rng.Float64()
			r = a / math.Sqrt(math.Pow(x, -2.0/3.0)-1)
			if r < 10*a {
				break
			}
		}
		sys.Pos[i] = isotropic(rng).Scale(r)
		// Velocity via von Neumann rejection on q^2 (1-q^2)^(7/2).
		var q float64
		for {
			q = rng.Float64()
			g := rng.Float64() * 0.1
			if g < q*q*math.Pow(1-q*q, 3.5) {
				break
			}
		}
		vesc := math.Sqrt(2) * math.Pow(1+r*r/(a*a), -0.25) / math.Sqrt(a)
		sys.Vel[i] = isotropic(rng).Scale(q * vesc)
	}
	// Zero the bulk motion.
	com := sys.CenterOfMass()
	mom := sys.Momentum()
	for i := 0; i < n; i++ {
		sys.Pos[i] = sys.Pos[i].Sub(com)
		sys.Vel[i] = sys.Vel[i].Sub(mom) // total mass is 1
	}
	return sys
}

// UniformSphere places n equal-mass bodies uniformly in a sphere of
// the given radius, at rest (cold collapse when evolved).
func UniformSphere(n int, radius float64, seed int64) *core.System {
	rng := rand.New(rand.NewSource(seed))
	sys := core.New(n)
	sys.EnableDynamics()
	for i := 0; i < n; i++ {
		sys.Mass[i] = 1.0 / float64(n)
		r := radius * math.Cbrt(rng.Float64())
		sys.Pos[i] = isotropic(rng).Scale(r)
	}
	return sys
}

// TwoBody returns a two-body circular orbit with separation d and
// masses m1, m2 (softening must be << d for the orbit to be clean).
func TwoBody(m1, m2, d float64) *core.System {
	sys := core.New(2)
	sys.EnableDynamics()
	m := m1 + m2
	sys.Mass[0], sys.Mass[1] = m1, m2
	sys.Pos[0] = vec.V3{X: -d * m2 / m}
	sys.Pos[1] = vec.V3{X: d * m1 / m}
	v := math.Sqrt(m / d) // relative circular speed, G=1
	sys.Vel[0] = vec.V3{Y: -v * m2 / m}
	sys.Vel[1] = vec.V3{Y: v * m1 / m}
	return sys
}

// isotropic returns a unit vector uniform on the sphere.
func isotropic(rng *rand.Rand) vec.V3 {
	for {
		v := vec.V3{
			X: 2*rng.Float64() - 1,
			Y: 2*rng.Float64() - 1,
			Z: 2*rng.Float64() - 1,
		}
		n2 := v.Norm2()
		if n2 > 1e-8 && n2 <= 1 {
			return v.Scale(1 / math.Sqrt(n2))
		}
	}
}

// VortexRing discretizes a thin-cored vortex ring of circulation
// gamma, ring radius R, core radius rc, centered at center with its
// axis along axis (unit vector). nTheta points around the ring and
// nCore points across the core section give nTheta*nCore particles.
// Returned strengths Alpha integrate the vorticity over each particle
// volume, so the total circulation is preserved.
func VortexRing(sys *core.System, gamma, R, rc float64, center, axis vec.V3, nTheta, nCore int, seed int64) {
	sys.EnableVortex()
	rng := rand.New(rand.NewSource(seed))
	// Orthonormal frame (e1, e2, axis).
	e1 := perpTo(axis)
	e2 := axis.Cross(e1)
	n0 := sys.Len()
	add := nTheta * nCore
	grow(sys, add)
	dGamma := gamma / float64(nTheta*nCore)
	k := n0
	for it := 0; it < nTheta; it++ {
		th := 2 * math.Pi * float64(it) / float64(nTheta)
		// Ring tangent at this angle.
		cdir := e1.Scale(math.Cos(th)).Add(e2.Scale(math.Sin(th)))
		tdir := e2.Scale(math.Cos(th)).Add(e1.Scale(-math.Sin(th)))
		for ic := 0; ic < nCore; ic++ {
			// Uniform disc sample in the core cross-section.
			rho := rc * math.Sqrt(rng.Float64())
			phi := 2 * math.Pi * rng.Float64()
			off := cdir.Scale(rho * math.Cos(phi)).Add(axis.Scale(rho * math.Sin(phi)))
			sys.Pos[k] = center.Add(cdir.Scale(R)).Add(off)
			// alpha = integral of vorticity over the particle volume:
			// total int(omega dV) = Gamma * 2*pi*R along the tangent,
			// split evenly over the particles.
			sys.Alpha[k] = tdir.Scale(dGamma * 2 * math.Pi * R)
			sys.Mass[k] = 1e-12 // vortex particles carry no gravitating mass
			sys.Work[k] = 1
			sys.ID[k] = int64(k)
			k++
		}
	}
}

// grow appends n zero bodies to sys preserving enabled fields.
func grow(sys *core.System, n int) {
	for i := 0; i < n; i++ {
		sys.Pos = append(sys.Pos, vec.V3{})
		sys.Mass = append(sys.Mass, 0)
		sys.Key = append(sys.Key, 0)
		sys.Work = append(sys.Work, 1)
		sys.ID = append(sys.ID, int64(len(sys.ID)))
		if sys.Vel != nil {
			sys.Vel = append(sys.Vel, vec.V3{})
		}
		if sys.Acc != nil {
			sys.Acc = append(sys.Acc, vec.V3{})
		}
		if sys.Pot != nil {
			sys.Pot = append(sys.Pot, 0)
		}
		if sys.Alpha != nil {
			sys.Alpha = append(sys.Alpha, vec.V3{})
		}
		if sys.H != nil {
			sys.H = append(sys.H, 0)
		}
		if sys.Rho != nil {
			sys.Rho = append(sys.Rho, 0)
		}
	}
}

// perpTo returns a unit vector perpendicular to v.
func perpTo(v vec.V3) vec.V3 {
	u := vec.V3{X: 1}
	if math.Abs(v.X) > 0.9*v.Norm() {
		u = vec.V3{Y: 1}
	}
	p := u.Sub(v.Scale(u.Dot(v) / v.Norm2()))
	return p.Scale(1 / p.Norm())
}
