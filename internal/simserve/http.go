// The service's HTTP edge. Everything here is a thin JSON shim over
// the Manager; mistakes in a request body or ID map to 4xx, overload
// to 429, and nothing a job does can take a route down -- each job's
// telemetry mux is mounted under /jobs/{id}/ with the prefix
// stripped, so the whole per-run observability surface of PR 8
// (series, health, report, pprof) exists per job.
//
//	POST   /jobs          submit a Spec, 202 + Status
//	GET    /jobs          list all jobs (statuses, submission order)
//	GET    /jobs/{id}     one job's Status
//	DELETE /jobs/{id}     cancel (queued -> cancelled now; running -> world abort)
//	GET    /jobs/{id}/*   the job's telemetry handler (series, health, ...)
//	GET    /healthz       liveness + job-state tally
//	GET    /metrics       service-level aggregate (Prometheus text)

package simserve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"repro/internal/telemetry"
)

// maxSpecBytes bounds a POST /jobs body; a Spec is a handful of
// scalars, so anything bigger is garbage.
const maxSpecBytes = 1 << 16

// Handler builds the service mux over a Manager.
func Handler(m *Manager) http.Handler {
	mux := http.NewServeMux()

	mux.HandleFunc("POST /jobs", func(w http.ResponseWriter, r *http.Request) {
		var spec Spec
		dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxSpecBytes))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&spec); err != nil {
			http.Error(w, fmt.Sprintf("bad request body: %v", err), http.StatusBadRequest)
			return
		}
		j, err := m.Submit(spec)
		if err != nil {
			http.Error(w, err.Error(), submitStatus(err))
			return
		}
		w.Header().Set("Location", "/jobs/"+j.ID)
		writeJSON(w, http.StatusAccepted, j.Status())
	})

	mux.HandleFunc("GET /jobs", func(w http.ResponseWriter, r *http.Request) {
		jobs := m.Jobs()
		out := make([]Status, len(jobs))
		for i, j := range jobs {
			out[i] = j.Status()
		}
		writeJSON(w, http.StatusOK, out)
	})

	mux.HandleFunc("GET /jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		j, ok := m.Get(r.PathValue("id"))
		if !ok {
			http.Error(w, "no such job", http.StatusNotFound)
			return
		}
		writeJSON(w, http.StatusOK, j.Status())
	})

	mux.HandleFunc("DELETE /jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		if _, ok := m.Get(id); !ok {
			http.Error(w, "no such job", http.StatusNotFound)
			return
		}
		if err := m.Cancel(id); err != nil {
			// Already terminal: cancellation cannot apply.
			http.Error(w, err.Error(), http.StatusConflict)
			return
		}
		j, _ := m.Get(id)
		writeJSON(w, http.StatusOK, j.Status())
	})

	// The job's own telemetry surface: strip /jobs/{id} and let the
	// per-job mux route /series, /health, /report, /metrics, pprof.
	mux.HandleFunc("/jobs/{id}/", func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		j, ok := m.Get(id)
		if !ok {
			http.Error(w, "no such job", http.StatusNotFound)
			return
		}
		http.StripPrefix("/jobs/"+id, j.handler).ServeHTTP(w, r)
	})

	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{
			"status": "ok",
			"jobs":   m.Counts(),
		})
	})

	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		telemetry.WritePrometheus(w, m.Registry())
	})

	return mux
}

// submitStatus maps Submit's sentinel errors onto HTTP statuses.
func submitStatus(err error) int {
	switch {
	case errors.Is(err, ErrBadSpec):
		return http.StatusBadRequest
	case errors.Is(err, ErrOverloaded):
		return http.StatusTooManyRequests
	case errors.Is(err, ErrClosed):
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v) // a failed write means the client went away
}
