package simserve

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/grav"
	"repro/internal/ic"
	"repro/internal/msg"
	"repro/internal/parallel"
)

func discardLog() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

func testManager(t *testing.T, cfg Config) *Manager {
	t.Helper()
	if cfg.Log == nil {
		cfg.Log = discardLog()
	}
	if cfg.BatchWindow == 0 {
		cfg.BatchWindow = time.Millisecond
	}
	m := New(cfg)
	t.Cleanup(m.Close)
	return m
}

// waitTerminal polls until the job reaches a terminal state.
func waitTerminal(t *testing.T, j *Job, timeout time.Duration) State {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if st := j.State(); st.Terminal() {
			return st
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s not terminal after %v (state %s)", j.ID, timeout, j.State())
	return ""
}

// TestGravityJobBitwiseStandalone pins the service's correctness
// contract: a gravity job's final forces are bit-identical to the
// standalone treebench run of the same (n, np, steps, seed). The
// reference below duplicates the driver's rank body independently of
// run.go, so a drift in either copy fails the test.
func TestGravityJobBitwiseStandalone(t *testing.T) {
	const n, np, steps = 600, 4, 2
	m := testManager(t, Config{Workers: 2})
	j, err := m.Submit(Spec{Physics: PhysicsGravity, N: n, NP: np, Steps: steps})
	if err != nil {
		t.Fatal(err)
	}
	if st := waitTerminal(t, j, 30*time.Second); st != StateCompleted {
		t.Fatalf("job ended %s: %s", st, j.Status().Error)
	}
	res := j.Result()
	if res == nil || res.ForcesHash == "" {
		t.Fatalf("completed job has no result/hash: %+v", res)
	}
	if res.Bodies != n {
		t.Fatalf("result bodies = %d, want %d", res.Bodies, n)
	}

	// Standalone reference: the treebench main loop, verbatim.
	global := ic.Plummer(n, 1.0, 42)
	systems := make([]*core.System, np)
	w := msg.NewWorld(np)
	werr := w.RunErr(func(c *msg.Comm) {
		local := core.New(0)
		local.EnableDynamics()
		lo, hi := c.Rank()*n/np, (c.Rank()+1)*n/np
		for i := lo; i < hi; i++ {
			local.AppendFrom(global, i)
		}
		e := parallel.New(c, local, parallel.Config{
			MAC:    grav.MACParams{Kind: grav.MACSalmonWarren, AccelTol: 1e-4, Quad: true},
			Bucket: 16, Eps2: 1e-6,
		})
		e.ComputeForces()
		for s := 0; s < steps; s++ {
			e.Step(1e-3)
		}
		systems[c.Rank()] = e.Sys
	})
	if werr != nil {
		t.Fatalf("reference run aborted: %v", werr)
	}
	if ref := ForcesHash(systems, false); res.ForcesHash != ref {
		t.Fatalf("service forces hash %s != standalone %s", res.ForcesHash, ref)
	}
}

// TestCrashContainment is the tentpole's isolation story: one
// crash-injected job fails with the structured world error while its
// neighbors -- running concurrently in the same process -- complete
// with identical hashes, and the manager keeps accepting work.
func TestCrashContainment(t *testing.T) {
	m := testManager(t, Config{Workers: 4})
	good := Spec{Physics: PhysicsGravity, N: 300, NP: 2, Steps: 1}
	bad := good
	bad.Chaos = "seed=7,crash=1,crashphase=walk"

	jobs := make([]*Job, 0, 9)
	for i := 0; i < 8; i++ {
		j, err := m.Submit(good)
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, j)
	}
	crasher, err := m.Submit(bad)
	if err != nil {
		t.Fatal(err)
	}

	if st := waitTerminal(t, crasher, 30*time.Second); st != StateFailed {
		t.Fatalf("crash-injected job ended %s, want failed", st)
	}
	if e := crasher.Status().Error; !strings.Contains(e, "injected") {
		t.Fatalf("crash job error %q does not name the injected fault", e)
	}
	var hash string
	for i, j := range jobs {
		if st := waitTerminal(t, j, 30*time.Second); st != StateCompleted {
			t.Fatalf("job %d ended %s: %s", i, st, j.Status().Error)
		}
		h := j.Result().ForcesHash
		if hash == "" {
			hash = h
		} else if h != hash {
			t.Fatalf("job %d hash %s != job 0 hash %s (identical specs)", i, h, hash)
		}
	}

	// The manager survived: a fresh submission still runs to completion.
	after, err := m.Submit(good)
	if err != nil {
		t.Fatalf("submit after crash: %v", err)
	}
	if st := waitTerminal(t, after, 30*time.Second); st != StateCompleted {
		t.Fatalf("post-crash job ended %s", st)
	}
	if h := after.Result().ForcesHash; h != hash {
		t.Fatalf("post-crash hash %s != pre-crash %s", h, hash)
	}
}

// TestSPHAndVortexJobs exercises the other two physics end to end.
func TestSPHAndVortexJobs(t *testing.T) {
	m := testManager(t, Config{Workers: 2})
	specs := []Spec{
		{Physics: PhysicsSPH, N: 200, NP: 2, Steps: 1},
		{Physics: PhysicsVortex, N: 12, NP: 2, Steps: 2},
	}
	for _, sp := range specs {
		j, err := m.Submit(sp)
		if err != nil {
			t.Fatalf("%s: %v", sp.Physics, err)
		}
		if st := waitTerminal(t, j, 60*time.Second); st != StateCompleted {
			t.Fatalf("%s job ended %s: %s", sp.Physics, st, j.Status().Error)
		}
		res := j.Result()
		if res.ForcesHash == "" || res.Interactions == 0 {
			t.Fatalf("%s result incomplete: %+v", sp.Physics, res)
		}
		if sp.Physics == PhysicsVortex && res.Bodies != 2*sp.N*vortexCore {
			t.Fatalf("vortex bodies = %d, want %d", res.Bodies, 2*sp.N*vortexCore)
		}
	}
}

// TestCancelQueued cancels a job the single worker has not reached:
// it must go terminal immediately and never run.
func TestCancelQueued(t *testing.T) {
	m := testManager(t, Config{Workers: 1})
	blocker, err := m.Submit(Spec{Physics: PhysicsGravity, N: 4000, NP: 2, Steps: 6})
	if err != nil {
		t.Fatal(err)
	}
	queued, err := m.Submit(Spec{Physics: PhysicsGravity, N: 300, NP: 2, Steps: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Cancel(queued.ID); err != nil {
		t.Fatal(err)
	}
	if st := queued.State(); st != StateCancelled {
		t.Fatalf("queued job state %s after cancel, want cancelled", st)
	}
	if st := waitTerminal(t, blocker, 60*time.Second); st != StateCompleted {
		t.Fatalf("blocker ended %s", st)
	}
	if queued.Result() != nil {
		t.Fatal("cancelled job has a result; it ran anyway")
	}
	// Double-cancel reports the terminal state.
	if err := m.Cancel(queued.ID); err == nil {
		t.Fatal("cancelling a terminal job succeeded")
	}
}

// TestCancelRunning aborts a running world and expects a prompt
// cancelled state, not failed.
func TestCancelRunning(t *testing.T) {
	m := testManager(t, Config{Workers: 1})
	j, err := m.Submit(Spec{Physics: PhysicsGravity, N: 20000, NP: 4, Steps: 50})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for j.State() != StateRunning {
		if time.Now().After(deadline) {
			t.Fatalf("job never started (state %s)", j.State())
		}
		time.Sleep(time.Millisecond)
	}
	if err := m.Cancel(j.ID); err != nil {
		t.Fatal(err)
	}
	if st := waitTerminal(t, j, 30*time.Second); st != StateCancelled {
		t.Fatalf("job ended %s, want cancelled", st)
	}
}

// TestSubmitRejections covers the 4xx paths: malformed specs and
// queue overload.
func TestSubmitRejections(t *testing.T) {
	m := testManager(t, Config{Workers: 1, QueueDepth: 2, MaxBodies: 10000, MaxNP: 8})
	cases := []Spec{
		{Physics: "magneto", N: 100, NP: 2, Steps: 1},
		{Physics: PhysicsGravity, N: 0, NP: 2, Steps: 1},
		{Physics: PhysicsGravity, N: 100, NP: 0, Steps: 1},
		{Physics: PhysicsGravity, N: 100, NP: 2, Steps: -1},
		{Physics: PhysicsGravity, N: 100, NP: 2, Steps: 1, DTMode: "warp"},
		{Physics: PhysicsGravity, N: 100, NP: 2, Steps: 1, Chaos: "crash=9"},
		{Physics: PhysicsGravity, N: 100000, NP: 2, Steps: 1}, // over MaxBodies
		{Physics: PhysicsGravity, N: 100, NP: 16, Steps: 1},   // over MaxNP
		{Physics: PhysicsVortex, N: 10, NP: 2, Steps: 1, DTMode: "block"},
		{Physics: PhysicsSPH, N: 100, NP: 2, Steps: 1, IC: ICPlummer},
	}
	for i, sp := range cases {
		if _, err := m.Submit(sp); !errors.Is(err, ErrBadSpec) {
			t.Fatalf("case %d (%+v): err = %v, want ErrBadSpec", i, sp, err)
		}
	}
	if got := m.Registry().Counter(MetricRejected).Value(); got != uint64(len(cases)) {
		t.Fatalf("rejected counter = %d, want %d", got, len(cases))
	}

	// Overload: fill the 2-deep queue past capacity with slow jobs.
	long := Spec{Physics: PhysicsGravity, N: 5000, NP: 2, Steps: 5}
	var overloaded bool
	for i := 0; i < 8; i++ {
		if _, err := m.Submit(long); errors.Is(err, ErrOverloaded) {
			overloaded = true
			break
		}
	}
	if !overloaded {
		t.Fatal("queue never rejected with ErrOverloaded")
	}
}

// TestBatcher unit-tests the admission window: size-triggered flush,
// time-triggered flush, and close flushing stragglers.
func TestBatcher(t *testing.T) {
	var mu sync.Mutex
	var batches [][]*Job
	flush := func(b []*Job) {
		mu.Lock()
		batches = append(batches, b)
		mu.Unlock()
	}
	b := newBatcher(20*time.Millisecond, 3, flush)

	// Size trigger: the third submit flushes immediately.
	for i := 0; i < 3; i++ {
		if !b.submit(&Job{}) {
			t.Fatal("submit refused before close")
		}
	}
	mu.Lock()
	if len(batches) != 1 || len(batches[0]) != 3 {
		t.Fatalf("size trigger: batches = %v", batchSizes(batches))
	}
	mu.Unlock()

	// Time trigger: one pending job flushes after the window.
	b.submit(&Job{})
	deadline := time.Now().Add(time.Second)
	for {
		mu.Lock()
		n := len(batches)
		mu.Unlock()
		if n == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("window flush never fired")
		}
		time.Sleep(time.Millisecond)
	}

	// Close flushes stragglers and refuses new work.
	b.submit(&Job{})
	b.close()
	mu.Lock()
	if len(batches) != 3 || len(batches[2]) != 1 {
		t.Fatalf("close flush: batches = %v", batchSizes(batches))
	}
	mu.Unlock()
	if b.submit(&Job{}) {
		t.Fatal("submit accepted after close")
	}
}

func batchSizes(batches [][]*Job) []int {
	out := make([]int, len(batches))
	for i, b := range batches {
		out[i] = len(b)
	}
	return out
}

// TestHTTPAPI drives the full edge through httptest: submit, status,
// per-job telemetry mount, cancel, healthz, metrics, and the error
// statuses.
func TestHTTPAPI(t *testing.T) {
	m := testManager(t, Config{Workers: 2})
	srv := httptest.NewServer(Handler(m))
	defer srv.Close()

	post := func(body string) (*http.Response, []byte) {
		resp, err := http.Post(srv.URL+"/jobs", "application/json", bytes.NewBufferString(body))
		if err != nil {
			t.Fatal(err)
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp, b
	}

	// Submit a small gravity job.
	resp, body := post(`{"physics":"gravity","n":300,"np":2,"steps":1}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /jobs = %d: %s", resp.StatusCode, body)
	}
	var st Status
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.ID == "" || st.Spec.Seed != 42 {
		t.Fatalf("submit reply %+v: want id and defaulted seed", st)
	}
	if loc := resp.Header.Get("Location"); loc != "/jobs/"+st.ID {
		t.Fatalf("Location = %q", loc)
	}

	// Bad bodies are 400s, not crashes.
	for _, bad := range []string{`{`, `{"physics":"magneto","n":1,"np":1}`, `{"bogus":1}`} {
		if resp, b := post(bad); resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("POST %q = %d: %s", bad, resp.StatusCode, b)
		}
	}

	// Wait for completion via the status route.
	deadline := time.Now().Add(30 * time.Second)
	for {
		r, err := http.Get(srv.URL + "/jobs/" + st.ID)
		if err != nil {
			t.Fatal(err)
		}
		b, _ := io.ReadAll(r.Body)
		r.Body.Close()
		if r.StatusCode != http.StatusOK {
			t.Fatalf("GET /jobs/%s = %d", st.ID, r.StatusCode)
		}
		if err := json.Unmarshal(b, &st); err != nil {
			t.Fatal(err)
		}
		if st.State.Terminal() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %s", st.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if st.State != StateCompleted || st.Result == nil || st.Result.ForcesHash == "" {
		t.Fatalf("terminal status %+v", st)
	}

	// The per-job telemetry mount answers with the job's own series.
	r, err := http.Get(srv.URL + "/jobs/" + st.ID + "/series?n=4")
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(r.Body)
	r.Body.Close()
	if r.StatusCode != http.StatusOK || !bytes.Contains(b, []byte(`"step"`)) {
		t.Fatalf("GET /jobs/{id}/series = %d: %s", r.StatusCode, b)
	}

	// Unknown IDs 404 on every jobs route.
	for _, path := range []string{"/jobs/nope", "/jobs/nope/series"} {
		r, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		if r.StatusCode != http.StatusNotFound {
			t.Fatalf("GET %s = %d, want 404", path, r.StatusCode)
		}
	}

	// DELETE on a terminal job is a 409; listing and health stay up.
	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/jobs/"+st.ID, nil)
	r, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusConflict {
		t.Fatalf("DELETE terminal job = %d, want 409", r.StatusCode)
	}

	r, err = http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	b, _ = io.ReadAll(r.Body)
	r.Body.Close()
	if r.StatusCode != http.StatusOK || !bytes.Contains(b, []byte(`"completed"`)) {
		t.Fatalf("GET /healthz = %d: %s", r.StatusCode, b)
	}

	r, err = http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	b, _ = io.ReadAll(r.Body)
	r.Body.Close()
	if r.StatusCode != http.StatusOK || !bytes.Contains(b, []byte(MetricCompleted)) {
		t.Fatalf("GET /metrics = %d: %s", r.StatusCode, b)
	}
}
