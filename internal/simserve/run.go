// Job execution: one accepted Spec becomes one msg.World whose rank
// bodies mirror the standalone drivers step for step -- same ICs,
// same slab scatter, same engine configuration, same evaluation
// sequence. That mirroring is the service's correctness contract: a
// job's final forces are bit-identical to what treebench/sphsim/
// vortexsim compute for the same (spec, np, seed), pinned by
// TestGravityJobBitwiseStandalone.

package simserve

import (
	"encoding/binary"
	"hash/fnv"
	"math"
	"time"

	"repro/internal/core"
	"repro/internal/grav"
	"repro/internal/ic"
	"repro/internal/integrate"
	"repro/internal/msg"
	"repro/internal/parallel"
	"repro/internal/sph"
	"repro/internal/vec"
	"repro/internal/vortex"
)

// vortexCore is the fixed points-across-core of vortex-ring jobs
// (the driver's -ncore default).
const vortexCore = 4

// runJob moves a dequeued job through running to a terminal state.
// Every failure mode of the world -- rank panic, injected crash,
// watchdog stall, cancellation -- lands here as a *msg.WorldError;
// nothing escapes to the worker goroutine.
func (m *Manager) runJob(j *Job) {
	j.mu.Lock()
	if j.state != StateQueued { // cancelled while queued
		j.mu.Unlock()
		return
	}
	j.state = StateRunning
	j.started = time.Now()
	j.mu.Unlock()
	m.reg.Gauge(MetricRunning).Set(float64(m.running.Add(1)))
	m.lg.Info("job started", "job", j.ID, "physics", j.Spec.Physics,
		"n", j.Spec.N, "np", j.Spec.NP, "steps", j.Spec.Steps)

	res, err := m.execute(j)

	j.mu.Lock()
	j.world = nil
	j.finished = time.Now()
	switch {
	case err == nil:
		j.state = StateCompleted
		j.result = res
	case j.cancelled:
		j.state = StateCancelled
		j.err = errCancelled.Error()
	default:
		j.state = StateFailed
		j.err = err.Error()
	}
	state, lat, runNs := j.state, j.finished.Sub(j.submitted), j.finished.Sub(j.started)
	j.mu.Unlock()

	j.tel.Close()
	m.reg.Gauge(MetricRunning).Set(float64(m.running.Add(-1)))
	m.reg.Histogram(MetricLatencyNs).Observe(uint64(lat.Nanoseconds()))
	m.reg.Histogram(MetricRunNs).Observe(uint64(runNs.Nanoseconds()))
	switch state {
	case StateCompleted:
		m.reg.Counter(MetricCompleted).Add(1)
		m.lg.Info("job completed", "job", j.ID, "wall_ms", runNs.Milliseconds(), "hash", res.ForcesHash)
	case StateCancelled:
		m.reg.Counter(MetricCancelled).Add(1)
		m.lg.Info("job cancelled", "job", j.ID)
	default:
		m.reg.Counter(MetricFailed).Add(1)
		m.lg.Error("job failed (contained)", "job", j.ID, "err", err)
	}
}

// execute builds the job's world and runs its physics. The returned
// error is the structured world abort (or cancellation); a nil error
// means every rank completed and res holds the digest.
func (m *Manager) execute(j *Job) (*Result, error) {
	sp := j.Spec
	w := msg.NewWorld(sp.NP)
	if j.inj != nil {
		w.SetInjector(j.inj)
	}
	if m.cfg.Watchdog > 0 {
		w.StartWatchdog(msg.WatchdogConfig{Quiet: m.cfg.Watchdog, Log: m.lg.With("job", j.ID)})
	}
	if !j.attachWorld(w) {
		return nil, errCancelled
	}

	systems := make([]*core.System, sp.NP)
	var werr *msg.WorldError
	var interactions, flops uint64
	t0 := time.Now()
	switch sp.Physics {
	case PhysicsGravity:
		engines := make([]*parallel.Engine, sp.NP)
		werr = w.RunErr(gravityRank(j, engines))
		if werr == nil {
			for r, e := range engines {
				systems[r] = e.Sys
				interactions += e.Counters.Interactions()
				flops += e.Counters.Flops()
			}
		}
	case PhysicsSPH: // headline count includes the SPH pair kernel
		engines := make([]*sph.ParallelEngine, sp.NP)
		werr = w.RunErr(sphRank(j, engines))
		if werr == nil {
			for r, e := range engines {
				systems[r] = e.Sys
				interactions += e.Counters.Interactions() + e.Counters.SPHPairs
				flops += e.Counters.Flops()
			}
		}
	case PhysicsVortex: // vortex work is all in the VortexPP kernel
		engines := make([]*vortex.ParallelEngine, sp.NP)
		werr = w.RunErr(vortexRank(j, engines))
		if werr == nil {
			for r, e := range engines {
				systems[r] = e.Sys
				interactions += e.Counters.VortexPP
				flops += e.Counters.Flops()
			}
		}
	}
	if werr != nil {
		return nil, werr
	}
	res := &Result{
		Interactions: interactions,
		Flops:        flops,
		ForcesHash:   ForcesHash(systems, sp.Physics == PhysicsVortex),
		WallMs:       float64(time.Since(t0).Nanoseconds()) / 1e6,
	}
	for _, s := range systems {
		res.Bodies += s.Len()
	}
	return res, nil
}

// scatter builds rank r's contiguous slab of the global system --
// the same lo:hi split every driver uses.
func scatter(global *core.System, local *core.System, rank, size int) {
	n := global.Len()
	lo, hi := rank*n/size, (rank+1)*n/size
	for i := lo; i < hi; i++ {
		local.AppendFrom(global, i)
	}
}

// gravityRank is the per-rank body of a gravity job, mirroring
// cmd/treebench: Plummer (or cold-sphere) ICs, Salmon-Warren MAC with
// quadrupoles, one initial force evaluation then Steps KDK steps.
func gravityRank(j *Job, engines []*parallel.Engine) func(*msg.Comm) {
	sp := j.Spec
	var global *core.System
	switch sp.IC {
	case ICSphere:
		global = ic.UniformSphere(sp.N, 1.0, sp.Seed)
	default:
		global = ic.Plummer(sp.N, 1.0, sp.Seed)
	}
	return func(c *msg.Comm) {
		local := core.New(0)
		local.EnableDynamics()
		scatter(global, local, c.Rank(), c.Size())
		e := parallel.New(c, local, parallel.Config{
			MAC:    grav.MACParams{Kind: grav.MACSalmonWarren, AccelTol: sp.Tol, Quad: true},
			Bucket: 16, Eps2: 1e-6,
			EvalWorkers: sp.EvalWorkers, PrefetchDepth: sp.Prefetch,
		})
		if sp.DTMode == "block" {
			e.Stepper.Scheme = integrate.Block
			e.Stepper.Eta = sp.Eta
			e.Stepper.Eps = math.Sqrt(1e-6)
		}
		t0 := time.Now()
		e.ComputeForces()
		// The initial evaluation is sample 1: energies are current
		// here, giving the job's drift monitor its E0 baseline.
		j.tel.Contribute(c.Rank(), e.Telemetry(time.Since(t0).Nanoseconds()))
		for s := 0; s < sp.Steps; s++ {
			t0 = time.Now()
			e.Step(sp.DT)
			j.tel.Contribute(c.Rank(), e.Telemetry(time.Since(t0).Nanoseconds()))
		}
		engines[c.Rank()] = e
	}
}

// sphRank mirrors cmd/sphsim's distributed gas run: a cold uniform
// gas sphere under isothermal pressure plus self-gravity.
func sphRank(j *Job, engines []*sph.ParallelEngine) func(*msg.Comm) {
	sp := j.Spec
	global := ic.UniformSphere(sp.N, 1.0, sp.Seed)
	global.EnableSPH()
	for i := range global.H {
		global.H[i] = 0.1
	}
	return func(c *msg.Comm) {
		local := core.New(0)
		local.EnableDynamics()
		local.EnableSPH()
		scatter(global, local, c.Rank(), c.Size())
		e := sph.NewParallel(c, local, sph.ParallelConfig{
			Params:  sph.Params{EOS: sph.Isothermal, CS: 0.8, AlphaVisc: 1, BetaVisc: 2},
			Gravity: true, Eps2: 1e-4,
			EvalWorkers: sp.EvalWorkers, PrefetchDepth: sp.Prefetch,
		})
		t0 := time.Now()
		e.Eval()
		j.tel.Contribute(c.Rank(), e.Telemetry(time.Since(t0).Nanoseconds()))
		for s := 0; s < sp.Steps; s++ {
			t0 = time.Now()
			e.Step(sp.DT)
			j.tel.Contribute(c.Rank(), e.Telemetry(time.Since(t0).Nanoseconds()))
		}
		engines[c.Rank()] = e
	}
}

// vortexRank mirrors cmd/vortexsim's distributed run: two offset
// vortex rings (N points around, vortexCore across) advected with
// the vortex particle method.
func vortexRank(j *Job, engines []*vortex.ParallelEngine) func(*msg.Comm) {
	sp := j.Spec
	const sigma, theta = 0.12, 0.5
	global := core.New(0)
	global.EnableDynamics()
	global.EnableVortex()
	ic.VortexRing(global, 1.0, 1.0, sigma, vec.V3{X: -0.75}, vec.V3{Z: 1}, sp.N, vortexCore, 41)
	ic.VortexRing(global, 1.0, 1.0, sigma, vec.V3{X: 0.75}, vec.V3{Z: 1}, sp.N, vortexCore, 43)
	return func(c *msg.Comm) {
		local := core.New(0)
		local.EnableDynamics()
		local.EnableVortex()
		scatter(global, local, c.Rank(), c.Size())
		e := vortex.NewParallel(c, local, sigma, theta)
		if sp.EvalWorkers > 0 || sp.Prefetch > 0 {
			e.EnableOverlap(sp.EvalWorkers, sp.Prefetch)
		}
		for s := 0; s < sp.Steps; s++ {
			t0 := time.Now()
			e.Step(sp.DT)
			j.tel.Contribute(c.Rank(), e.Telemetry(time.Since(t0).Nanoseconds()))
		}
		engines[c.Rank()] = e
	}
}

// ForcesHash digests the final per-body state in rank-major, local
// body order: ID plus the acceleration columns (positions for the
// vortex method, whose Step folds the induced velocity straight into
// Pos). Bit-for-bit deterministic for a given (spec, np, seed), so
// equality with a standalone-driver run IS bitwise force equality.
func ForcesHash(systems []*core.System, positions bool) string {
	h := fnv.New64a()
	var buf [8]byte
	word := func(u uint64) {
		binary.LittleEndian.PutUint64(buf[:], u)
		h.Write(buf[:])
	}
	for _, s := range systems {
		for i := 0; i < s.Len(); i++ {
			word(uint64(s.ID[i]))
			v := s.Acc[i]
			if positions {
				v = s.Pos[i]
			}
			word(math.Float64bits(v.X))
			word(math.Float64bits(v.Y))
			word(math.Float64bits(v.Z))
		}
	}
	return string(appendHex(nil, h.Sum64()))
}

// appendHex is %016x without fmt on the hash path.
func appendHex(dst []byte, u uint64) []byte {
	const digits = "0123456789abcdef"
	for shift := 60; shift >= 0; shift -= 4 {
		dst = append(dst, digits[(u>>uint(shift))&0xf])
	}
	return dst
}
