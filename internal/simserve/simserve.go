// Package simserve is the simulation service: one daemon serving
// many concurrent simulation jobs from a single process -- the
// modern analogue of the paper's Loki serving a production run, with
// throughput-per-box as the figure of merit.
//
// The layering maps service words onto engine words:
//
//	session  = one accepted job: a Spec, a lifecycle, a job-scoped
//	           telemetry stack (Sampler + Registry + HTTP handler)
//	world    = the job's msg.World while it runs: np ranks, abortable,
//	           stall-watchdogged; the unit of failure isolation
//	engines  = the np per-rank engine instances inside the world,
//	           whose persistent state (domain.Decomposer splitters,
//	           core.Sorter scratch, tree.ForcePool workers) is reused
//	           across every step and sub-step of the job
//
// Admission is batched (batcher.go): accepted jobs enter a time/size
// window and flush onto a bounded worker pool, so a burst of
// submissions becomes a few dispatches instead of a thundering herd.
// The pool bounds concurrency: at most Workers worlds exist at once,
// each with Spec.NP rank goroutines.
//
// Isolation is PR 5's containment story, promoted to the service
// tier: a rank panic, an injected crash, a stall (watchdog) or a
// cancellation aborts THAT job's world -- every rank of it unwinds
// promptly, the job goes failed/cancelled with the structured
// *msg.WorldError as its error, and the server keeps serving. The
// tests pin a crash-injected job failing while its neighbors
// complete bit-identically to standalone runs.
package simserve

import (
	"fmt"
	"log/slog"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
	"repro/internal/telemetry"
)

// Service-level metric names (the aggregate /metrics exposition;
// per-job registries live under /jobs/{id}/metrics).
const (
	MetricSubmitted = "simserve_jobs_submitted"
	MetricRejected  = "simserve_jobs_rejected"
	MetricCompleted = "simserve_jobs_completed"
	MetricFailed    = "simserve_jobs_failed"
	MetricCancelled = "simserve_jobs_cancelled"
	MetricRunning   = "simserve_jobs_running"
	MetricQueued    = "simserve_jobs_queued"
	MetricBatches   = "simserve_batches_flushed"
	MetricBatchJobs = "simserve_batch_jobs"     // histogram: jobs per flushed batch
	MetricLatencyNs = "simserve_job_latency_ns" // histogram: submit -> terminal
	MetricRunNs     = "simserve_job_run_ns"     // histogram: started -> terminal
)

// Config sizes the service. Zero values select the defaults noted on
// each field.
type Config struct {
	// Workers bounds concurrently running worlds (default 4).
	Workers int
	// QueueDepth bounds jobs admitted but not yet started; submissions
	// beyond it are rejected (HTTP 429), the honest answer under
	// overload (default 256).
	QueueDepth int
	// BatchWindow / BatchSize are the admission batcher's flush
	// thresholds (defaults 5ms / 16).
	BatchWindow time.Duration
	BatchSize   int
	// MaxBodies / MaxNP cap a single job (defaults 1e6 / 64): one
	// pathological request must not own the box.
	MaxBodies int
	MaxNP     int
	// Watchdog is the per-job stall quiet period; a job making no
	// message progress for this long is aborted and reported failed
	// (default 30s, 0 keeps the default; negative disables).
	Watchdog time.Duration
	// TelemetryCapacity is each job's sample-ring size (default 1024;
	// bounded so thousands of retained jobs stay cheap).
	TelemetryCapacity int
	// Log is the service logger (nil = slog.Default()).
	Log *slog.Logger
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 256
	}
	if c.BatchWindow <= 0 {
		c.BatchWindow = 5 * time.Millisecond
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 16
	}
	if c.MaxBodies <= 0 {
		c.MaxBodies = 1_000_000
	}
	if c.MaxNP <= 0 {
		c.MaxNP = 64
	}
	if c.Watchdog == 0 {
		c.Watchdog = 30 * time.Second
	}
	if c.TelemetryCapacity <= 0 {
		c.TelemetryCapacity = 1024
	}
	if c.Log == nil {
		c.Log = slog.Default()
	}
	return c
}

// Manager owns the job table, the admission batcher, and the worker
// pool. All methods are safe for concurrent use.
type Manager struct {
	cfg Config
	lg  *slog.Logger
	reg *metrics.Registry

	mu    sync.Mutex
	jobs  map[string]*Job
	order []string // submission order, for listing

	seq     atomic.Uint64
	backlog atomic.Int64 // admitted, not yet dequeued by a worker
	running atomic.Int64
	closed  atomic.Bool

	batch *batcher
	queue chan *Job
	wg    sync.WaitGroup
}

// New starts a manager with cfg.Workers worker goroutines.
func New(cfg Config) *Manager {
	cfg = cfg.withDefaults()
	m := &Manager{
		cfg:  cfg,
		lg:   cfg.Log,
		reg:  metrics.NewRegistry(),
		jobs: make(map[string]*Job),
		// The backlog cap guarantees at most QueueDepth jobs sit
		// between admission and dequeue, so a queue of that capacity
		// never blocks a batch flush.
		queue: make(chan *Job, cfg.QueueDepth),
	}
	m.batch = newBatcher(cfg.BatchWindow, cfg.BatchSize, m.dispatch)
	for i := 0; i < cfg.Workers; i++ {
		m.wg.Add(1)
		go m.worker()
	}
	return m
}

// Registry exposes the service-level aggregate metrics (the /metrics
// route).
func (m *Manager) Registry() *metrics.Registry { return m.reg }

// Submit validates and admits a job. The error distinguishes a bad
// spec (ErrBadSpec wrap, HTTP 400) from overload (ErrOverloaded,
// HTTP 429) and shutdown (ErrClosed, HTTP 503).
func (m *Manager) Submit(spec Spec) (*Job, error) {
	if m.closed.Load() {
		return nil, ErrClosed
	}
	spec = spec.withDefaults()
	inj, err := spec.validate(m.cfg.MaxBodies, m.cfg.MaxNP)
	if err != nil {
		m.reg.Counter(MetricRejected).Add(1)
		return nil, fmt.Errorf("%w: %v", ErrBadSpec, err)
	}
	// Admission control: bound admitted-not-yet-started work.
	if n := m.backlog.Add(1); n > int64(m.cfg.QueueDepth) {
		m.backlog.Add(-1)
		m.reg.Counter(MetricRejected).Add(1)
		return nil, ErrOverloaded
	}

	j := &Job{
		ID:        fmt.Sprintf("j-%06d", m.seq.Add(1)),
		Spec:      spec,
		inj:       inj,
		state:     StateQueued,
		submitted: time.Now(),
	}
	j.reg = metrics.NewRegistry()
	j.tel = telemetry.NewSampler(telemetry.Config{
		NP:       spec.NP,
		Capacity: m.cfg.TelemetryCapacity,
		Registry: j.reg,
		Monitors: telemetry.MonitorConfig{
			EnergyDriftTol: 0.02, ImbalanceMax: 4, ImbalanceRuns: 3,
			StallP99Max: 500 * time.Millisecond,
			Log:         m.lg.With("job", j.ID),
		},
		Command: "simserve/" + j.ID,
	})
	j.handler = telemetry.Handler(j.tel)

	m.mu.Lock()
	m.jobs[j.ID] = j
	m.order = append(m.order, j.ID)
	m.mu.Unlock()

	if !m.batch.submit(j) {
		// Closed between the flag check and the batcher: unwind.
		m.backlog.Add(-1)
		m.mu.Lock()
		delete(m.jobs, j.ID)
		m.order = m.order[:len(m.order)-1]
		m.mu.Unlock()
		return nil, ErrClosed
	}
	m.reg.Counter(MetricSubmitted).Add(1)
	m.reg.Gauge(MetricQueued).Set(float64(m.backlog.Load()))
	return j, nil
}

// Get returns a job by ID.
func (m *Manager) Get(id string) (*Job, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	return j, ok
}

// Jobs lists every tracked job in submission order.
func (m *Manager) Jobs() []*Job {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]*Job, 0, len(m.order))
	for _, id := range m.order {
		out = append(out, m.jobs[id])
	}
	return out
}

// Cancel cancels a job by ID: queued jobs go terminal immediately,
// running jobs have their world aborted.
func (m *Manager) Cancel(id string) error {
	j, ok := m.Get(id)
	if !ok {
		return fmt.Errorf("no such job %s", id)
	}
	st, err := j.cancel()
	if err != nil {
		return err
	}
	if st == StateCancelled {
		// Cancelled straight from the queue: the worker will skip it,
		// so account for it here.
		j.tel.Close()
		m.reg.Counter(MetricCancelled).Add(1)
	}
	return nil
}

// Counts reports the live job-state tally (the /healthz body).
func (m *Manager) Counts() map[State]int {
	counts := map[State]int{}
	for _, j := range m.Jobs() {
		counts[j.State()]++
	}
	return counts
}

// Close stops intake, flushes the batcher, drains the queue and waits
// for running jobs. Idempotent.
func (m *Manager) Close() {
	if m.closed.Swap(true) {
		return
	}
	m.batch.close()
	close(m.queue)
	m.wg.Wait()
}

// dispatch is the batcher's flush sink: one batch of admitted jobs
// handed FIFO to the worker pool.
func (m *Manager) dispatch(batch []*Job) {
	m.reg.Counter(MetricBatches).Add(1)
	m.reg.Histogram(MetricBatchJobs).Observe(uint64(len(batch)))
	for _, j := range batch {
		m.queue <- j
	}
}

// worker runs queued jobs until the queue closes.
func (m *Manager) worker() {
	defer m.wg.Done()
	for j := range m.queue {
		m.backlog.Add(-1)
		m.reg.Gauge(MetricQueued).Set(float64(m.backlog.Load()))
		m.runJob(j)
	}
}

// Sentinel errors of Submit, mapped to HTTP statuses by the edge.
var (
	ErrBadSpec    = fmt.Errorf("simserve: bad job spec")
	ErrOverloaded = fmt.Errorf("simserve: queue full, try again later")
	ErrClosed     = fmt.Errorf("simserve: shutting down")
)
