// Job model: what a simulation request looks like on the wire, the
// lifecycle it moves through, and the result it leaves behind. A Job
// is the service's unit of isolation -- each one runs in its own msg
// world, so its failure modes (rank panic, stall, cancellation) are
// contained by PR 5's abort machinery and surface here as a terminal
// state, never as a server exit.

package simserve

import (
	"fmt"
	"net/http"
	"sync"
	"time"

	"repro/internal/cliutil"
	"repro/internal/metrics"
	"repro/internal/msg"
	"repro/internal/telemetry"
)

// Physics names the three engines the service can instantiate.
const (
	PhysicsGravity = "gravity"
	PhysicsSPH     = "sph"
	PhysicsVortex  = "vortex"
)

// IC names the initial-condition generators per physics.
const (
	ICPlummer   = "plummer"    // gravity (default)
	ICSphere    = "sphere"     // gravity: cold uniform sphere
	ICGasSphere = "gas-sphere" // sph (default)
	ICRings     = "rings"      // vortex (default): two offset vortex rings
)

// State is a job's lifecycle position. Transitions only move forward:
//
//	queued -> running -> completed | failed
//	queued | running -> cancelled
type State string

const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StateCompleted State = "completed"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"
)

// Terminal reports whether a job in this state is finished for good.
func (s State) Terminal() bool {
	return s == StateCompleted || s == StateFailed || s == StateCancelled
}

// Spec is the POST /jobs request body: everything needed to
// reproduce the run. The zero value of each optional field selects
// the physics' production default, so {"physics":"gravity","n":10000,
// "np":4,"steps":3} is a complete request.
type Spec struct {
	// Physics selects the engine: gravity (default), sph, vortex.
	Physics string `json:"physics"`
	// IC selects the initial conditions ("" = the physics' default).
	IC string `json:"ic,omitempty"`
	// N is the problem size: bodies for gravity/sph, points around
	// each ring for vortex.
	N int `json:"n"`
	// NP is the rank count of the job's world.
	NP int `json:"np"`
	// Steps is the timestep count (0 = a single force evaluation).
	Steps int `json:"steps"`
	// DT is the timestep (0 = the physics default).
	DT float64 `json:"dt,omitempty"`
	// DTMode is uniform (default) or block; Eta scales the block
	// criterion (0 = 0.02).
	DTMode string  `json:"dtmode,omitempty"`
	Eta    float64 `json:"eta,omitempty"`
	// Tol is the Salmon-Warren acceleration error bound for gravity
	// walks (0 = 1e-4).
	Tol float64 `json:"tol,omitempty"`
	// Seed seeds the IC generator (0 = 42, the drivers' default).
	Seed int64 `json:"seed,omitempty"`
	// EvalWorkers/Prefetch are the walk/eval pipeline knobs; results
	// are bitwise identical either way.
	EvalWorkers int `json:"evalworkers,omitempty"`
	Prefetch    int `json:"prefetch,omitempty"`
	// Chaos is a deterministic fault-injection spec (test harness;
	// same grammar as the drivers' -chaos flag). A crash or stall it
	// injects fails THIS job, nothing else.
	Chaos string `json:"chaos,omitempty"`
}

// withDefaults returns the spec with zero-valued optionals resolved,
// so identical requests hash identically no matter how sparse the
// JSON was.
func (sp Spec) withDefaults() Spec {
	if sp.Physics == "" {
		sp.Physics = PhysicsGravity
	}
	if sp.IC == "" {
		switch sp.Physics {
		case PhysicsSPH:
			sp.IC = ICGasSphere
		case PhysicsVortex:
			sp.IC = ICRings
		default:
			sp.IC = ICPlummer
		}
	}
	if sp.DTMode == "" {
		sp.DTMode = "uniform"
	}
	if sp.Eta == 0 {
		sp.Eta = 0.02
	}
	if sp.Tol == 0 {
		sp.Tol = 1e-4
	}
	if sp.Seed == 0 {
		sp.Seed = 42
	}
	if sp.DT == 0 {
		switch sp.Physics {
		case PhysicsSPH:
			sp.DT = 4e-3
		case PhysicsVortex:
			sp.DT = 0.02
		default:
			sp.DT = 1e-3
		}
	}
	return sp
}

// validate rejects a malformed or oversized spec with a one-line
// error (HTTP 400 at the edge). limits come from the manager config.
func (sp Spec) validate(maxBodies, maxNP int) (*msg.Injector, error) {
	switch sp.Physics {
	case PhysicsGravity:
		if sp.IC != ICPlummer && sp.IC != ICSphere {
			return nil, fmt.Errorf("gravity ic must be %q or %q (got %q)", ICPlummer, ICSphere, sp.IC)
		}
	case PhysicsSPH:
		if sp.IC != ICGasSphere {
			return nil, fmt.Errorf("sph ic must be %q (got %q)", ICGasSphere, sp.IC)
		}
	case PhysicsVortex:
		if sp.IC != ICRings {
			return nil, fmt.Errorf("vortex ic must be %q (got %q)", ICRings, sp.IC)
		}
		if sp.DTMode == "block" {
			return nil, fmt.Errorf("vortex jobs are uniform-step only")
		}
	default:
		return nil, fmt.Errorf("unknown physics %q (want gravity, sph or vortex)", sp.Physics)
	}
	if sp.DT <= 0 {
		return nil, fmt.Errorf("dt must be > 0 (got %g)", sp.DT)
	}
	if sp.Tol <= 0 {
		return nil, fmt.Errorf("tol must be > 0 (got %g)", sp.Tol)
	}
	inj, err := cliutil.Flags{
		N: sp.N, Procs: sp.NP, Steps: sp.Steps, DTMode: sp.DTMode, Eta: sp.Eta,
		EvalWorkers: sp.EvalWorkers, Prefetch: sp.Prefetch, Chaos: sp.Chaos,
	}.Validate()
	if err != nil {
		return nil, err
	}
	if sp.Bodies() > maxBodies {
		return nil, fmt.Errorf("job too large: %d bodies exceeds the per-job cap %d", sp.Bodies(), maxBodies)
	}
	if sp.NP > maxNP {
		return nil, fmt.Errorf("np %d exceeds the per-job cap %d", sp.NP, maxNP)
	}
	return inj, nil
}

// Bodies is the body count the spec will simulate (vortex rings
// expand N ring points into 2 rings x N x vortexCore core points).
func (sp Spec) Bodies() int {
	if sp.Physics == PhysicsVortex {
		return 2 * sp.N * vortexCore
	}
	return sp.N
}

// Result is what a completed job leaves behind.
type Result struct {
	// Bodies is the final body count across ranks.
	Bodies int `json:"bodies"`
	// Interactions and Flops are the run totals under the paper's
	// 38-flop accounting.
	Interactions uint64 `json:"interactions"`
	Flops        uint64 `json:"flops"`
	// ForcesHash is an FNV-64a digest over every rank's final (ID,
	// Acc) columns in rank-major order -- bit-for-bit deterministic
	// for a given (spec, np, seed), so two runs of the same spec (or
	// a service run vs the standalone driver) can be compared without
	// shipping the state.
	ForcesHash string `json:"forces_hash"`
	// WallMs is the job's in-world wall clock.
	WallMs float64 `json:"wall_ms"`
}

// Job is one tracked simulation: spec, lifecycle, result, and the
// job-scoped telemetry stack (sampler + registry + mounted HTTP
// handler). All mutable fields are guarded by mu.
type Job struct {
	ID string
	// Spec is the defaulted, validated request (immutable).
	Spec Spec

	// tel/reg/handler are the job-scoped telemetry stack, created at
	// submit so /jobs/{id}/series answers (empty) even while queued.
	tel     *telemetry.Sampler
	reg     *metrics.Registry
	handler http.Handler
	inj     *msg.Injector

	mu        sync.Mutex
	state     State
	err       string
	world     *msg.World // non-nil only while running
	cancelled bool       // cancel requested (may precede world creation)
	result    *Result
	submitted time.Time
	started   time.Time
	finished  time.Time
}

// Status is the GET /jobs/{id} wire format.
type Status struct {
	ID        string     `json:"id"`
	State     State      `json:"state"`
	Spec      Spec       `json:"spec"`
	Error     string     `json:"error,omitempty"`
	Result    *Result    `json:"result,omitempty"`
	Submitted time.Time  `json:"submitted"`
	Started   *time.Time `json:"started,omitempty"`
	Finished  *time.Time `json:"finished,omitempty"`
}

// Status snapshots the job for the HTTP layer.
func (j *Job) Status() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := Status{
		ID: j.ID, State: j.state, Spec: j.Spec, Error: j.err,
		Result: j.result, Submitted: j.submitted,
	}
	if !j.started.IsZero() {
		t := j.started
		st.Started = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		st.Finished = &t
	}
	return st
}

// State returns the job's current lifecycle position.
func (j *Job) State() State {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Result returns the job's result, nil unless completed.
func (j *Job) Result() *Result {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.result
}

// cancel requests cancellation: a queued job goes terminal
// immediately, a running one has its world aborted (the abort
// unwinds every rank promptly; the worker marks the job cancelled).
// Terminal jobs report an error. The returned state is the job's
// state after the request: StateCancelled means it is already
// terminal and the caller should account for it (a running job is
// accounted by the worker when its world unwinds).
func (j *Job) cancel() (State, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state.Terminal() {
		return j.state, fmt.Errorf("job %s already %s", j.ID, j.state)
	}
	j.cancelled = true
	if j.world != nil {
		j.world.Abort(msg.RankWatchdog, errCancelled)
	} else if j.state == StateQueued {
		j.state = StateCancelled
		j.err = errCancelled.Error()
		j.finished = time.Now()
	}
	return j.state, nil
}

// attachWorld publishes the running job's world for cancellation.
// Returns false when cancellation already won the race, in which case
// the worker must not run the world.
func (j *Job) attachWorld(w *msg.World) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.cancelled {
		return false
	}
	j.world = w
	return true
}

// errCancelled is the abort cause of a user cancellation; the worker
// translates it into StateCancelled rather than StateFailed.
var errCancelled = fmt.Errorf("simserve: job cancelled by request")
