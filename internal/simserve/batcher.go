// Admission batching: accepted jobs are not handed to the worker
// pool one by one but in time/size-windowed batches, the same
// batching discipline the engines apply to their request rounds. The
// point at service scale is admission smoothing -- a burst of
// submissions becomes one dispatch with one lock acquisition and one
// metrics update per window, and the window gives the scheduler a
// natural place to apply policy (today: FIFO within a batch; the
// shape is where priorities or fairness would land).
//
// Flush rules, whichever comes first:
//   - the batch reaches MaxBatch jobs -> flush now;
//   - Window elapses after the batch's FIRST job arrived -> flush
//     whatever is pending.

package simserve

import (
	"sync"
	"time"
)

// batcher collects submitted jobs and flushes them in batches to a
// sink. Safe for concurrent Submit; the flusher is a single timer
// goroutine armed only while jobs are pending.
type batcher struct {
	window time.Duration
	max    int
	flush  func([]*Job) // called outside the lock, jobs in arrival order

	mu      sync.Mutex
	pending []*Job
	timer   *time.Timer
	closed  bool
}

func newBatcher(window time.Duration, max int, flush func([]*Job)) *batcher {
	if window <= 0 {
		window = 5 * time.Millisecond
	}
	if max <= 0 {
		max = 16
	}
	return &batcher{window: window, max: max, flush: flush}
}

// submit queues one job for the next flush. Returns false after
// close (the caller rejects the job).
func (b *batcher) submit(j *Job) bool {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return false
	}
	b.pending = append(b.pending, j)
	var batch []*Job
	switch {
	case len(b.pending) >= b.max:
		batch = b.take()
	case len(b.pending) == 1:
		// First job of a fresh window: arm the timer.
		b.timer = time.AfterFunc(b.window, b.onTimer)
	}
	b.mu.Unlock()
	if batch != nil {
		b.flush(batch)
	}
	return true
}

// onTimer flushes whatever accumulated during the window.
func (b *batcher) onTimer() {
	b.mu.Lock()
	batch := b.take()
	b.mu.Unlock()
	if batch != nil {
		b.flush(batch)
	}
}

// take detaches the pending batch and disarms the timer. Caller
// holds b.mu.
func (b *batcher) take() []*Job {
	if b.timer != nil {
		b.timer.Stop()
		b.timer = nil
	}
	if len(b.pending) == 0 {
		return nil
	}
	batch := b.pending
	b.pending = nil
	return batch
}

// close flushes any stragglers and refuses further submissions.
func (b *batcher) close() {
	b.mu.Lock()
	b.closed = true
	batch := b.take()
	b.mu.Unlock()
	if batch != nil {
		b.flush(batch)
	}
}
