package vortex

import (
	"math"

	"repro/internal/vec"
)

// Batched, structure-of-arrays evaluation for the vortex tree walk:
// the vector-valued twin of internal/grav's interaction-list path.
// The walk gathers accepted cell monopoles and leaf particles into a
// vList, and the eval* kernels sweep the whole list target-major,
// holding each target's six accumulators (velocity and dalpha/dt) in
// registers across the source stream. Per-interaction arithmetic and
// VortexPP accounting match velTile/velMono exactly.

// vList is the flat interaction list of one target group: source
// particles as SoA position and strength columns, plus the accepted
// cell monopoles. Storage is reused across reset calls.
type vList struct {
	sx, sy, sz    []float64
	sax, say, saz []float64
	cells         []cellMoment
}

func (l *vList) reset() {
	l.sx, l.sy, l.sz = l.sx[:0], l.sy[:0], l.sz[:0]
	l.sax, l.say, l.saz = l.sax[:0], l.say[:0], l.saz[:0]
	l.cells = l.cells[:0]
}

func (l *vList) addBodies(pos, alpha []vec.V3) {
	for i := range pos {
		l.sx = append(l.sx, pos[i].X)
		l.sy = append(l.sy, pos[i].Y)
		l.sz = append(l.sz, pos[i].Z)
		l.sax = append(l.sax, alpha[i].X)
		l.say = append(l.say, alpha[i].Y)
		l.saz = append(l.saz, alpha[i].Z)
	}
}

// vTargets is the reusable SoA target block: positions, strengths,
// and the velocity / dalpha accumulators.
type vTargets struct {
	x, y, z    []float64
	ax, ay, az []float64
	ux, uy, uz []float64
	dx, dy, dz []float64
}

func growV(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

// load gathers a group and zeroes the accumulators.
func (t *vTargets) load(pos, alpha []vec.V3) {
	n := len(pos)
	t.x, t.y, t.z = growV(t.x, n), growV(t.y, n), growV(t.z, n)
	t.ax, t.ay, t.az = growV(t.ax, n), growV(t.ay, n), growV(t.az, n)
	t.ux, t.uy, t.uz = growV(t.ux, n), growV(t.uy, n), growV(t.uz, n)
	t.dx, t.dy, t.dz = growV(t.dx, n), growV(t.dy, n), growV(t.dz, n)
	for i := range pos {
		t.x[i], t.y[i], t.z[i] = pos[i].X, pos[i].Y, pos[i].Z
		t.ax[i], t.ay[i], t.az[i] = alpha[i].X, alpha[i].Y, alpha[i].Z
		t.ux[i], t.uy[i], t.uz[i] = 0, 0, 0
		t.dx[i], t.dy[i], t.dz[i] = 0, 0, 0
	}
}

// store scatters the accumulators, overwriting vel and dAlpha.
func (t *vTargets) store(vel, dAlpha []vec.V3) {
	for i := range vel {
		vel[i] = vec.V3{X: t.ux[i], Y: t.uy[i], Z: t.uz[i]}
		dAlpha[i] = vec.V3{X: t.dx[i], Y: t.dy[i], Z: t.dz[i]}
	}
}

// evalVelPP applies every source particle of the list to every
// target: the batched velTile. Coincident pairs (r2 == 0, the group's
// own bodies against themselves, or remesh duplicates) are skipped
// exactly as in the fused kernel, and -- also matching velTile -- still
// count toward VortexPP. Returns the interaction count.
func evalVelPP(t *vTargets, l *vList, s2 float64) uint64 {
	for p := range t.x {
		xp, yp, zp := t.x[p], t.y[p], t.z[p]
		apx, apy, apz := t.ax[p], t.ay[p], t.az[p]
		ux, uy, uz := t.ux[p], t.uy[p], t.uz[p]
		dax, day, daz := t.dx[p], t.dy[p], t.dz[p]
		for q := range l.sx {
			rx := xp - l.sx[q]
			ry := yp - l.sy[q]
			rz := zp - l.sz[q]
			r2 := rx*rx + ry*ry + rz*rz
			if r2 == 0 {
				continue // coincident particle (self during remesh)
			}
			aqx, aqy, aqz := l.sax[q], l.say[q], l.saz[q]
			d2 := r2 + s2
			d := math.Sqrt(d2)
			inv5 := 1 / (d2 * d2 * d)
			g := (r2 + 2.5*s2) * inv5
			gp := -3 * (r2 + 3.5*s2) * inv5 / d2
			// rxa = r x alpha_q
			rxax := ry*aqz - rz*aqy
			rxay := rz*aqx - rx*aqz
			rxaz := rx*aqy - ry*aqx
			fg := fourPiInv * g
			ux -= rxax * fg
			uy -= rxay * fg
			uz -= rxaz * fg
			// alpha_p x alpha_q
			cxx := apy*aqz - apz*aqy
			cxy := apz*aqx - apx*aqz
			cxz := apx*aqy - apy*aqx
			dax -= cxx * fg
			day -= cxy * fg
			daz -= cxz * fg
			fs := fourPiInv * gp * (apx*rx + apy*ry + apz*rz)
			dax -= rxax * fs
			day -= rxay * fs
			daz -= rxaz * fs
		}
		t.ux[p], t.uy[p], t.uz[p] = ux, uy, uz
		t.dx[p], t.dy[p], t.dz[p] = dax, day, daz
	}
	return uint64(len(t.x)) * uint64(len(l.sx))
}

// evalVelMono applies every accepted cell monopole to every target:
// the batched velMono, with the same sigma regularization (a
// single-body cell reproduces the body-body interaction exactly).
// Returns the interaction count.
func evalVelMono(t *vTargets, cells []cellMoment, s2 float64) uint64 {
	for p := range t.x {
		xp, yp, zp := t.x[p], t.y[p], t.z[p]
		apx, apy, apz := t.ax[p], t.ay[p], t.az[p]
		ux, uy, uz := t.ux[p], t.uy[p], t.uz[p]
		dax, day, daz := t.dx[p], t.dy[p], t.dz[p]
		for c := range cells {
			m := &cells[c]
			rx := xp - m.Centroid.X
			ry := yp - m.Centroid.Y
			rz := zp - m.Centroid.Z
			r2 := rx*rx + ry*ry + rz*rz
			d2 := r2 + s2
			d := math.Sqrt(d2)
			inv5 := 1 / (d2 * d2 * d)
			g := (r2 + 2.5*s2) * inv5
			gp := -3 * (r2 + 3.5*s2) * inv5 / d2
			aqx, aqy, aqz := m.ASum.X, m.ASum.Y, m.ASum.Z
			rxax := ry*aqz - rz*aqy
			rxay := rz*aqx - rx*aqz
			rxaz := rx*aqy - ry*aqx
			fg := fourPiInv * g
			ux -= rxax * fg
			uy -= rxay * fg
			uz -= rxaz * fg
			cxx := apy*aqz - apz*aqy
			cxy := apz*aqx - apx*aqz
			cxz := apx*aqy - apy*aqx
			dax -= cxx * fg
			day -= cxy * fg
			daz -= cxz * fg
			fs := fourPiInv * gp * (apx*rx + apy*ry + apz*rz)
			dax -= rxax * fs
			day -= rxay * fs
			daz -= rxaz * fs
		}
		t.ux[p], t.uy[p], t.uz[p] = ux, uy, uz
		t.dx[p], t.dy[p], t.dz[p] = dax, day, daz
	}
	return uint64(len(t.x)) * uint64(len(cells))
}
