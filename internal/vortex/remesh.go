package vortex

import (
	"math"
	"sort"

	"repro/internal/core"
	"repro/internal/vec"
)

// M4Prime is the third-order interpolation kernel of Monaghan used by
// vortex methods for remeshing: it conserves the zeroth, first and
// second moments of the interpolated quantity.
func M4Prime(x float64) float64 {
	x = math.Abs(x)
	switch {
	case x < 1:
		return 1 - 2.5*x*x + 1.5*x*x*x
	case x < 2:
		return 0.5 * (2 - x) * (2 - x) * (1 - x)
	default:
		return 0
	}
}

// Remesh redistributes the particle strengths onto a regular lattice
// of spacing h using the M4' kernel, returning a fresh particle set
// positioned at lattice nodes. Nodes whose interpolated strength
// magnitude falls below cut times the maximum are dropped. This
// restores the core-overlap condition the method needs; it is the
// operation that grew the paper's ring-fusion run from 57,000 to
// 360,000 particles.
func Remesh(sys *core.System, h, cut float64) *core.System {
	type node struct{ x, y, z int }
	acc := make(map[node]vec.V3)
	for p := 0; p < sys.Len(); p++ {
		px, py, pz := sys.Pos[p].X/h, sys.Pos[p].Y/h, sys.Pos[p].Z/h
		ix, iy, iz := int(math.Floor(px)), int(math.Floor(py)), int(math.Floor(pz))
		for dx := -1; dx <= 2; dx++ {
			wx := M4Prime(px - float64(ix+dx))
			if wx == 0 {
				continue
			}
			for dy := -1; dy <= 2; dy++ {
				wy := M4Prime(py - float64(iy+dy))
				if wy == 0 {
					continue
				}
				for dz := -1; dz <= 2; dz++ {
					wz := M4Prime(pz - float64(iz+dz))
					if wz == 0 {
						continue
					}
					nd := node{ix + dx, iy + dy, iz + dz}
					acc[nd] = acc[nd].Add(sys.Alpha[p].Scale(wx * wy * wz))
				}
			}
		}
	}
	// Find the cutoff scale.
	maxA := 0.0
	for _, a := range acc {
		if v := a.Norm(); v > maxA {
			maxA = v
		}
	}
	thresh := cut * maxA
	// Deterministic output order.
	nodes := make([]node, 0, len(acc))
	for nd, a := range acc {
		if a.Norm() > thresh {
			nodes = append(nodes, nd)
		}
	}
	sort.Slice(nodes, func(i, j int) bool {
		a, b := nodes[i], nodes[j]
		if a.z != b.z {
			return a.z < b.z
		}
		if a.y != b.y {
			return a.y < b.y
		}
		return a.x < b.x
	})
	out := core.New(len(nodes))
	out.EnableDynamics()
	out.EnableVortex()
	for i, nd := range nodes {
		out.Pos[i] = vec.V3{X: float64(nd.x) * h, Y: float64(nd.y) * h, Z: float64(nd.z) * h}
		out.Alpha[i] = acc[nd]
		out.Mass[i] = out.Alpha[i].Norm()
		out.ID[i] = int64(i)
	}
	return out
}
