package vortex

import (
	"repro/internal/core"
	"repro/internal/diag"
	"repro/internal/grav"
	"repro/internal/keys"
	"repro/internal/tree"
	"repro/internal/vec"
)

// TreeEval evaluates velocities and strength derivatives through the
// hashed oct-tree: the tree is built with |alpha| as the structural
// "mass" (so the center of mass is the strength-weighted centroid and
// the Barnes-Hut MAC sees the right geometry), far clusters apply
// their monopole (total strength at the centroid), and near leaves
// fall back to pairwise tiles.
//
// The system is key-sorted in place; sys.Vel receives the velocities
// and the returned slice holds dalpha/dt aligned with the sorted
// order. theta is the Barnes-Hut opening angle.
func TreeEval(sys *core.System, sigma, theta float64) ([]vec.V3, diag.Counters) {
	var ctr diag.Counters
	n := sys.Len()
	sys.EnableVortex()
	sys.EnableDynamics()
	// Structural mass = |alpha|.
	for i := 0; i < n; i++ {
		sys.Mass[i] = sys.Alpha[i].Norm()
	}
	d := keys.NewDomain(sys.Pos)
	sys.AssignKeys(d)
	sys.SortByKey()
	mac := grav.MACParams{Kind: grav.MACBarnesHut, Theta: theta, Quad: false}
	tr := tree.Build(sys, d, mac, 32)
	ctr.CellsBuilt += uint64(tr.NCells())

	// Prefix sums of alpha give every cell's total strength from its
	// contiguous body range.
	prefA := make([]vec.V3, n+1)
	for i := 0; i < n; i++ {
		prefA[i+1] = prefA[i].Add(sys.Alpha[i])
	}

	// Two-phase evaluation, mirroring the gravity walker: phase 1
	// builds the group's interaction list (SoA source columns plus a
	// monopole slab), phase 2 sweeps it with the batched kernels in
	// soa.go. The list, target block and stack persist across groups,
	// so the per-group steady state allocates nothing.
	dAlpha := make([]vec.V3, n)
	s2 := sigma * sigma
	var stack []keys.Key
	var list vList
	var tg vTargets
	for _, gk := range tr.Groups {
		g := tr.Cell(gk)
		lo, hi := g.First, g.First+g.N
		gpos := sys.Pos[lo:hi]
		galpha := sys.Alpha[lo:hi]
		gc, gr := tree.GroupSphere(gpos)
		list.reset()
		stack = stack[:0]
		stack = append(stack, keys.Root)
		for len(stack) > 0 {
			k := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			c := tr.Cell(k)
			ctr.Traversals++
			if c.Mp.M == 0 {
				continue // zero total |alpha|: no contribution
			}
			dd := c.Mp.COM.Sub(gc).Norm()
			if dd-gr > c.RCrit && dd > gr {
				list.cells = append(list.cells, cellMoment{
					ASum:     prefA[c.First+c.N].Sub(prefA[c.First]),
					Centroid: c.Mp.COM,
				})
				continue
			}
			if c.Leaf {
				list.addBodies(sys.Pos[c.First:c.First+c.N], sys.Alpha[c.First:c.First+c.N])
				continue
			}
			for oct := 0; oct < 8; oct++ {
				if c.ChildMask&(1<<uint(oct)) != 0 {
					stack = append(stack, k.Child(oct))
				}
			}
		}
		tg.load(gpos, galpha)
		ctr.VortexPP += evalVelMono(&tg, list.cells, s2)
		ctr.VortexPP += evalVelPP(&tg, &list, s2)
		tg.store(sys.Vel[lo:hi], dAlpha[lo:hi])
	}
	return dAlpha, ctr
}

// Step advances the vortex system one second-order Runge-Kutta
// (midpoint) step: two tree evaluations. Positions move with the
// induced velocity; strengths evolve under stretching. The system is
// re-sorted internally, so callers must track particles by ID.
func Step(sys *core.System, sigma, theta, dt float64) diag.Counters {
	n := sys.Len()
	// Stage 1.
	d1, ctr := TreeEval(sys, sigma, theta)
	// Save state indexed by particle ID (the second evaluation
	// re-sorts, invalidating positional indices).
	x0 := make([]vec.V3, n)
	a0 := make([]vec.V3, n)
	for i := 0; i < n; i++ {
		x0[sys.ID[i]] = sys.Pos[i]
		a0[sys.ID[i]] = sys.Alpha[i]
	}
	for i := 0; i < n; i++ {
		sys.Pos[i] = sys.Pos[i].Add(sys.Vel[i].Scale(dt / 2))
		sys.Alpha[i] = sys.Alpha[i].Add(d1[i].Scale(dt / 2))
	}
	// Stage 2 at the midpoint.
	d2, ctr2 := TreeEval(sys, sigma, theta)
	ctr.Add(ctr2)
	for i := 0; i < n; i++ {
		id := sys.ID[i]
		sys.Pos[i] = x0[id].Add(sys.Vel[i].Scale(dt))
		sys.Alpha[i] = a0[id].Add(d2[i].Scale(dt))
	}
	return ctr
}
