package vortex

import (
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/ic"
	"repro/internal/msg"
	"repro/internal/vec"
)

const (
	eqSigma = 0.15
	eqTheta = 0.4
)

// ringPair is the test problem: two coaxial vortex rings, the
// configuration the paper's vortex runs fused.
func ringPair() *core.System {
	sys := core.New(0)
	sys.EnableDynamics()
	sys.EnableVortex()
	axis := vec.V3{Z: 1}
	ic.VortexRing(sys, 1.0, 1.0, 0.15, vec.V3{Z: -0.4}, axis, 48, 8, 3)
	ic.VortexRing(sys, 1.0, 1.0, 0.15, vec.V3{Z: 0.4}, axis, 48, 8, 4)
	return sys
}

func scatterVortex(global *core.System, c *msg.Comm) *core.System {
	n := global.Len()
	lo, hi := c.Rank()*n/c.Size(), (c.Rank()+1)*n/c.Size()
	local := core.New(0)
	local.EnableDynamics()
	local.EnableVortex()
	for i := lo; i < hi; i++ {
		local.AppendFrom(global, i)
	}
	return local
}

// TestParallelMatchesTreeEval compares the distributed vortex engine
// at 1, 2 and 8 ranks against the serial TreeEval on the ring pair.
// One rank must be bit-identical (same sort, same interaction lists,
// same batched kernel sweep order) with identical interaction counts;
// on more ranks the boundary-refined leaves reshape the interaction
// lists, so velocities and stretching agree to the MAC error scale.
func TestParallelMatchesTreeEval(t *testing.T) {
	serial := ringPair()
	sd, sctr := TreeEval(serial, eqSigma, eqTheta)
	n := serial.Len()
	refVel := make(map[int64]vec.V3, n)
	refDA := make(map[int64]vec.V3, n)
	velScale, daScale := 0.0, 0.0
	for i := 0; i < n; i++ {
		refVel[serial.ID[i]] = serial.Vel[i]
		refDA[serial.ID[i]] = sd[i]
		if v := serial.Vel[i].Norm(); v > velScale {
			velScale = v
		}
		if a := sd[i].Norm(); a > daScale {
			daScale = a
		}
	}

	for _, np := range []int{1, 2, 8} {
		var mu sync.Mutex
		var pp uint64
		exact := true
		maxVelErr, maxDAErr := 0.0, 0.0
		msg.Run(np, func(c *msg.Comm) {
			e := NewParallel(c, scatterVortex(ringPair(), c), eqSigma, eqTheta)
			da := e.Eval()
			mu.Lock()
			defer mu.Unlock()
			pp += e.Counters.VortexPP
			for i := 0; i < e.Sys.Len(); i++ {
				id := e.Sys.ID[i]
				if e.Sys.Vel[i] != refVel[id] || da[i] != refDA[id] {
					exact = false
				}
				if d := e.Sys.Vel[i].Sub(refVel[id]).Norm() / velScale; d > maxVelErr {
					maxVelErr = d
				}
				if d := da[i].Sub(refDA[id]).Norm() / daScale; d > maxDAErr {
					maxDAErr = d
				}
			}
		})
		if np == 1 {
			if !exact {
				t.Errorf("np=1: velocities or dalpha differ bitwise from TreeEval (vel %g, dalpha %g)", maxVelErr, maxDAErr)
			}
			if pp != sctr.VortexPP {
				t.Errorf("np=1: VortexPP = %d, serial = %d", pp, sctr.VortexPP)
			}
		} else {
			if maxVelErr > 1e-2 || maxDAErr > 1e-2 {
				t.Errorf("np=%d: max relative error vel %g, dalpha %g", np, maxVelErr, maxDAErr)
			}
			// Boundary-refined leaves are smaller, so more clusters
			// pass the MAC as monopoles and pairwise counts drop.
			ratio := float64(pp) / float64(sctr.VortexPP)
			if ratio < 0.75 || ratio > 1.3 {
				t.Errorf("np=%d: VortexPP ratio vs serial %g", np, ratio)
			}
		}
	}
}
