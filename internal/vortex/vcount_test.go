package vortex

import (
	"sync"
	"testing"

	"repro/internal/msg"
)

// With the retry-rollback in place, the distributed evaluation's
// interaction count must match the single-rank count closely (deep
// boundary cells may flip between tile and monopole treatment, so
// exact equality is not required).
func TestInteractionCountStableAcrossRanks(t *testing.T) {
	global := twoRings(32, 3)
	totals := map[int]uint64{}
	for _, np := range []int{1, 2, 4} {
		var total uint64
		var mu sync.Mutex
		msg.Run(np, func(c *msg.Comm) {
			e := NewParallel(c, scatterV(global, c), 0.15, 0.01)
			e.Eval()
			mu.Lock()
			total += e.Counters.VortexPP
			mu.Unlock()
		})
		totals[np] = total
	}
	for _, np := range []int{2, 4} {
		ratio := float64(totals[np]) / float64(totals[1])
		if ratio < 0.98 || ratio > 1.02 {
			t.Errorf("np=%d interaction count %d vs np=1 %d (ratio %.3f)", np, totals[np], totals[1], ratio)
		}
	}
}
