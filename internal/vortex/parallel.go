package vortex

import (
	"fmt"
	"sort"

	"repro/internal/abm"
	"repro/internal/core"
	"repro/internal/diag"
	"repro/internal/domain"
	"repro/internal/grav"
	"repro/internal/htab"
	"repro/internal/keys"
	"repro/internal/msg"
	"repro/internal/tree"
	"repro/internal/vec"
)

// ParallelEngine evaluates the vortex particle method on the
// distributed hashed oct-tree, exactly as the paper ran the two-ring
// fusion across Hyglac's 16 processors: the same decomposition,
// branch-exchange and batched request machinery as gravity
// (internal/parallel), but with vector-valued cell moments (total
// strength at the strength-weighted centroid) and the Biot-Savart /
// stretching kernels.
type ParallelEngine struct {
	C     *msg.Comm
	Sys   *core.System
	Sigma float64
	Theta float64

	domainBox keys.Domain
	splits    []uint64
	local     *tree.Tree
	prefA     []vec.V3

	top      *htab.Table[tree.Cell]
	topASum  *htab.Table[vec.V3]
	imported *htab.Table[tree.Cell]
	impASum  *htab.Table[vec.V3]
	impPos   []vec.V3
	impAlpha []vec.V3

	// Counters accumulates across evaluations.
	Counters diag.Counters
	// Rounds/RemoteCells describe the last evaluation.
	Rounds      int
	RemoteCells int
}

// NewParallel wraps this rank's particles.
func NewParallel(c *msg.Comm, sys *core.System, sigma, theta float64) *ParallelEngine {
	sys.EnableDynamics()
	sys.EnableVortex()
	return &ParallelEngine{C: c, Sys: sys, Sigma: sigma, Theta: theta}
}

// vcellWire is the packed cell payload: geometric moments plus the
// vector strength sum, plus leaf particle data in replies.
type vcellWire struct {
	Key       keys.Key
	Mp        grav.Multipole
	ASum      vec.V3
	RCrit     float64
	N         int32
	ChildMask uint8
	Leaf      bool
	Pos       []vec.V3
	Alpha     []vec.V3
}

const vcellWireBytes = 8 + 12*8 + 3*8 + 8 + 4 + 2

// Eval runs one distributed evaluation: sys.Vel is filled and the
// returned slice holds dalpha/dt for the (redistributed, key-sorted)
// local particles.
func (e *ParallelEngine) Eval() []vec.V3 {
	// Structural mass = |alpha| so the tree geometry (COM, RCrit)
	// follows the vorticity distribution.
	for i := 0; i < e.Sys.Len(); i++ {
		e.Sys.Mass[i] = e.Sys.Alpha[i].Norm()
	}
	e.domainBox = domain.GlobalDomain(e.C, e.Sys)
	res := domain.Decompose(e.C, e.Sys, e.domainBox)
	e.Sys = res.Sys
	e.splits = res.Splits

	mac := grav.MACParams{Kind: grav.MACBarnesHut, Theta: e.Theta, Quad: false}
	e.C.Phase("vtreebuild")
	e.local = tree.BuildRange(e.Sys, e.domainBox, mac, 32,
		e.splits[e.C.Rank()], e.splits[e.C.Rank()+1])
	e.Counters.CellsBuilt += uint64(e.local.NCells())

	n := e.Sys.Len()
	e.prefA = make([]vec.V3, n+1)
	for i := 0; i < n; i++ {
		e.prefA[i+1] = e.prefA[i].Add(e.Sys.Alpha[i])
	}

	e.exchangeBranches(mac)
	e.C.Phase("vwalk")
	return e.walkAll()
}

// localASum returns the strength sum of a local cell from the prefix
// sums.
func (e *ParallelEngine) localASum(c *tree.Cell) vec.V3 {
	return e.prefA[c.First+c.N].Sub(e.prefA[c.First])
}

func (e *ParallelEngine) exchangeBranches(mac grav.MACParams) {
	e.C.Phase("vbranches")
	var mine []vcellWire
	for _, bk := range tree.RangeDecompose(e.splits[e.C.Rank()], e.splits[e.C.Rank()+1]) {
		c := e.local.Cell(bk)
		if c == nil {
			continue
		}
		mine = append(mine, vcellWire{
			Key: bk, Mp: c.Mp, ASum: e.localASum(c), RCrit: c.RCrit,
			N: c.N, ChildMask: c.ChildMask, Leaf: c.Leaf,
		})
	}
	all := msg.Allgather(e.C, mine, vcellWireBytes*len(mine))

	e.top = htab.New[tree.Cell](256)
	e.topASum = htab.New[vec.V3](256)
	e.imported = htab.New[tree.Cell](1024)
	e.impASum = htab.New[vec.V3](1024)
	e.impPos = e.impPos[:0]
	e.impAlpha = e.impAlpha[:0]
	e.RemoteCells = 0

	var branchKeys []keys.Key
	for r, batch := range all {
		for _, w := range batch {
			c := tree.Cell{
				Key: w.Key, Mp: w.Mp, RCrit: w.RCrit, N: w.N,
				ChildMask: w.ChildMask, Leaf: w.Leaf,
			}
			if r == e.C.Rank() {
				c.First = e.local.Cell(w.Key).First
			} else if w.Leaf {
				c.First = -1 << 30 // unfetched sentinel
			}
			e.top.Insert(w.Key, c)
			e.topASum.Insert(w.Key, w.ASum)
			branchKeys = append(branchKeys, w.Key)
		}
	}
	// Ancestors, deepest first.
	anc := map[keys.Key]bool{}
	for _, bk := range branchKeys {
		for k := bk.Parent(); k != keys.Invalid; k = k.Parent() {
			if anc[k] {
				break
			}
			anc[k] = true
		}
	}
	order := make([]keys.Key, 0, len(anc))
	for k := range anc {
		order = append(order, k)
	}
	sort.Slice(order, func(i, j int) bool { return order[i].Level() > order[j].Level() })
	for _, k := range order {
		var children []grav.Multipole
		var mask uint8
		var nb int32
		var asum vec.V3
		for oct := 0; oct < 8; oct++ {
			ck := k.Child(oct)
			if cc := e.top.Ptr(ck); cc != nil {
				children = append(children, cc.Mp)
				mask |= 1 << uint(oct)
				nb += cc.N
				if av := e.topASum.Ptr(ck); av != nil {
					asum = asum.Add(*av)
				}
			}
		}
		mp := grav.Combine(children)
		center, size := e.domainBox.CellCenter(k)
		mac := grav.MACParams{Kind: grav.MACBarnesHut, Theta: e.Theta, Quad: false}
		e.top.Insert(k, tree.Cell{
			Key: k, Mp: mp, N: nb, ChildMask: mask,
			RCrit: grav.RCrit(&mp, size, mp.COM.Sub(center).Norm(), mac),
		})
		e.topASum.Insert(k, asum)
	}
}

func (e *ParallelEngine) ownerOf(k keys.Key) int {
	off := tree.KeyOffset(k.MinBody())
	r := sort.Search(len(e.splits)-1, func(i int) bool { return e.splits[i+1] > off })
	if r >= e.C.Size() {
		r = e.C.Size() - 1
	}
	return r
}

// resolve finds a cell and its strength sum, or reports it missing.
func (e *ParallelEngine) resolve(k keys.Key) (*tree.Cell, vec.V3, bool) {
	if c := e.top.Ptr(k); c != nil {
		if c.Leaf && c.First == -1<<30 {
			if ic := e.imported.Ptr(k); ic != nil {
				return ic, *e.impASum.Ptr(k), true
			}
			return nil, vec.V3{}, false
		}
		return c, *e.topASum.Ptr(k), true
	}
	if e.ownerOf(k) == e.C.Rank() {
		c := e.local.Cell(k)
		if c == nil {
			return nil, vec.V3{}, false
		}
		return c, e.localASum(c), true
	}
	if ic := e.imported.Ptr(k); ic != nil {
		return ic, *e.impASum.Ptr(k), true
	}
	return nil, vec.V3{}, false
}

// leafBodies returns positions and strengths of a leaf cell.
func (e *ParallelEngine) leafBodies(c *tree.Cell) ([]vec.V3, []vec.V3) {
	if c.First >= 0 {
		return e.Sys.Pos[c.First : c.First+c.N], e.Sys.Alpha[c.First : c.First+c.N]
	}
	i := -(c.First + 1)
	return e.impPos[i : i+c.N], e.impAlpha[i : i+c.N]
}

func (e *ParallelEngine) serve(src int, reqs []keys.Key) []vcellWire {
	out := make([]vcellWire, len(reqs))
	for i, k := range reqs {
		c := e.local.Cell(k)
		if c == nil {
			panic(fmt.Sprintf("vortex: rank %d asked for unknown cell %v", src, k))
		}
		w := vcellWire{
			Key: k, Mp: c.Mp, ASum: e.localASum(c), RCrit: c.RCrit,
			N: c.N, ChildMask: c.ChildMask, Leaf: c.Leaf,
		}
		if c.Leaf {
			w.Pos, w.Alpha = e.leafBodies(c)
		}
		out[i] = w
	}
	return out
}

func (e *ParallelEngine) importCell(w vcellWire) {
	c := tree.Cell{
		Key: w.Key, Mp: w.Mp, RCrit: w.RCrit, N: w.N,
		ChildMask: w.ChildMask, Leaf: w.Leaf,
	}
	if w.Leaf {
		start := int32(len(e.impPos))
		e.impPos = append(e.impPos, w.Pos...)
		e.impAlpha = append(e.impAlpha, w.Alpha...)
		c.First = -(start + 1)
	}
	e.imported.Insert(w.Key, c)
	e.impASum.Insert(w.Key, w.ASum)
	e.RemoteCells++
}

// walkGroup traverses for one group, returning missing keys (partial
// results must be discarded and rewalked).
func (e *ParallelEngine) walkGroup(gpos, galpha []vec.V3, gvel, gda []vec.V3, stack []keys.Key) (missing []keys.Key) {
	gc, gr := tree.GroupSphere(gpos)
	s2 := e.Sigma * e.Sigma
	stack = stack[:0]
	stack = append(stack, keys.Root)
	for len(stack) > 0 {
		k := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		c, asum, ok := e.resolve(k)
		if !ok {
			missing = append(missing, k)
			continue
		}
		e.Counters.Traversals++
		if c.Mp.M == 0 {
			continue
		}
		dd := c.Mp.COM.Sub(gc).Norm()
		if dd-gr > c.RCrit && dd > gr {
			m := cellMoment{ASum: asum, Centroid: c.Mp.COM}
			velMono(gpos, galpha, gvel, gda, &m, s2, &e.Counters)
			continue
		}
		if c.Leaf {
			spos, salpha := e.leafBodies(c)
			velTile(gpos, galpha, gvel, gda, spos, salpha, s2, &e.Counters)
			continue
		}
		for oct := 0; oct < 8; oct++ {
			if c.ChildMask&(1<<uint(oct)) != 0 {
				stack = append(stack, k.Child(oct))
			}
		}
	}
	return missing
}

func (e *ParallelEngine) walkAll() []vec.V3 {
	eng := abm.New(e.C, 8, vcellWireBytes, e.serve)
	sys := e.Sys
	dAlpha := make([]vec.V3, sys.Len())
	deferred := make([]keys.Key, len(e.local.Groups))
	copy(deferred, e.local.Groups)
	pending := map[keys.Key]bool{}
	var stack []keys.Key

	e.Rounds = 0
	for round := 0; ; round++ {
		if round > 64 {
			panic("vortex: request rounds exceeded limit")
		}
		var still []keys.Key
		for _, gk := range deferred {
			g := e.local.Cell(gk)
			lo, hi := g.First, g.First+g.N
			for i := lo; i < hi; i++ {
				sys.Vel[i] = vec.V3{}
				dAlpha[i] = vec.V3{}
			}
			// Snapshot so a deferred group's discarded partial walk
			// does not inflate the interaction counts.
			snapshot := e.Counters
			missing := e.walkGroup(sys.Pos[lo:hi], sys.Alpha[lo:hi], sys.Vel[lo:hi], dAlpha[lo:hi], stack)
			if missing == nil {
				continue
			}
			e.Counters = snapshot
			e.Counters.Deferred++
			still = append(still, gk)
			for _, mk := range missing {
				if !pending[mk] {
					pending[mk] = true
					e.Counters.Requests++
					eng.Post(e.ownerOf(mk), mk)
				}
			}
		}
		deferred = still
		if !eng.AnyPendingGlobal(len(deferred) > 0) {
			break
		}
		for _, batch := range eng.Round() {
			for _, w := range batch {
				e.importCell(w)
			}
		}
		e.Rounds++
	}
	return dAlpha
}

// saved carries a particle's pre-step state across rank migrations.
type saved struct {
	ID   int64
	X, A vec.V3
}

// Step advances one RK2 (midpoint) step with distributed evaluations.
// The decomposition between the two stages may migrate particles
// across ranks, so the pre-step state is exchanged by particle ID (a
// collective allgather; the in-process machine makes this cheap, and
// the state is ~56 bytes/particle either way).
func (e *ParallelEngine) Step(dt float64) {
	d1 := e.Eval()
	n := e.Sys.Len()
	mine := make([]saved, n)
	for i := 0; i < n; i++ {
		mine[i] = saved{ID: e.Sys.ID[i], X: e.Sys.Pos[i], A: e.Sys.Alpha[i]}
	}
	for i := 0; i < n; i++ {
		e.Sys.Pos[i] = e.Sys.Pos[i].Add(e.Sys.Vel[i].Scale(dt / 2))
		e.Sys.Alpha[i] = e.Sys.Alpha[i].Add(d1[i].Scale(dt / 2))
	}
	d2 := e.Eval()
	// Reassemble everyone's pre-step state, keyed by ID.
	all := msg.Allgather(e.C, mine, 56*len(mine))
	x0 := make(map[int64]saved, n)
	for _, batch := range all {
		for _, s := range batch {
			x0[s.ID] = s
		}
	}
	for i := 0; i < e.Sys.Len(); i++ {
		s, ok := x0[e.Sys.ID[i]]
		if !ok {
			panic("vortex: particle lost its pre-step state")
		}
		e.Sys.Pos[i] = s.X.Add(e.Sys.Vel[i].Scale(dt))
		e.Sys.Alpha[i] = s.A.Add(d2[i].Scale(dt))
	}
}
