package vortex

import (
	"repro/internal/core"
	"repro/internal/diag"
	"repro/internal/grav"
	"repro/internal/hotengine"
	"repro/internal/keys"
	"repro/internal/msg"
	"repro/internal/telemetry"
	"repro/internal/tree"
	"repro/internal/vec"
)

// ParallelEngine evaluates the vortex particle method on the
// distributed hashed oct-tree, exactly as the paper ran the two-ring
// fusion across Hyglac's 16 processors: the same decomposition,
// branch-exchange and batched request machinery as gravity -- now
// literally the same code, the shared pipeline in internal/hotengine
// -- instantiated with vector-valued cell moments (total strength at
// the strength-weighted centroid) and the Biot-Savart / stretching
// kernels. Completed group walks are swept with the batched SoA
// kernels (evalVelMono/evalVelPP), the same two-phase evaluation as
// the serial TreeEval.
type ParallelEngine struct {
	*hotengine.Engine[vec.V3, VLeaf]
	Sigma float64
	Theta float64

	phys   *vphysics
	lists  []vList
	tgs    []vTargets
	stack  []keys.Key
	dAlpha []vec.V3
}

// VLeaf is the vortex leaf payload of a request reply: position and
// strength columns, aliasing the serving rank's storage.
type VLeaf struct {
	Pos   []vec.V3
	Alpha []vec.V3
}

// vphysics is the vortex instantiation of hotengine.Physics: the
// per-cell payload is the cell's total strength (a vector the
// geometric multipole cannot carry), derived from prefix sums over
// the key-sorted strengths.
type vphysics struct {
	e     *ParallelEngine
	prefA []vec.V3

	impPos   []vec.V3
	impAlpha []vec.V3
}

// Prepare derives the structural mass |alpha| so the tree geometry
// (COM, RCrit) follows the vorticity distribution.
func (p *vphysics) Prepare(sys *core.System) {
	for i := 0; i < sys.Len(); i++ {
		sys.Mass[i] = sys.Alpha[i].Norm()
	}
}

// PostBuild computes prefix sums of alpha, giving every local cell's
// total strength from its contiguous body range in O(1).
func (p *vphysics) PostBuild(t *tree.Tree) {
	n := p.e.Sys.Len()
	p.prefA = make([]vec.V3, n+1)
	for i := 0; i < n; i++ {
		p.prefA[i+1] = p.prefA[i].Add(p.e.Sys.Alpha[i])
	}
}

func (p *vphysics) Extra(c *tree.Cell) vec.V3 {
	return p.prefA[c.First+c.N].Sub(p.prefA[c.First])
}

func (p *vphysics) CombineExtra(acc, child vec.V3) vec.V3 { return acc.Add(child) }

func (p *vphysics) PackLeaf(c *tree.Cell) VLeaf {
	pos, alpha := p.e.leafBodies(c)
	return VLeaf{Pos: pos, Alpha: alpha}
}

func (p *vphysics) ImportLeaf(n int32, b VLeaf) int32 {
	start := int32(len(p.impPos))
	p.impPos = append(p.impPos, b.Pos...)
	p.impAlpha = append(p.impAlpha, b.Alpha...)
	return start
}

func (p *vphysics) ResetImports() {
	p.impPos = p.impPos[:0]
	p.impAlpha = p.impAlpha[:0]
}

// NewParallel wraps this rank's particles.
func NewParallel(c *msg.Comm, sys *core.System, sigma, theta float64) *ParallelEngine {
	sys.EnableDynamics()
	sys.EnableVortex()
	e := &ParallelEngine{Sigma: sigma, Theta: theta}
	e.phys = &vphysics{e: e}
	e.Engine = hotengine.New[vec.V3, VLeaf](c, sys, e.phys, hotengine.Config{
		MAC:         grav.MACParams{Kind: grav.MACBarnesHut, Theta: theta, Quad: false},
		Bucket:      32,
		PhasePrefix: "v",
	})
	e.ensureSlots()
	return e
}

// EnableOverlap turns on the pipelined walk/eval schedule (and serve-side
// prefetch) after construction, resizing the per-slot scratch to match.
func (e *ParallelEngine) EnableOverlap(workers, prefetchDepth int) {
	e.ConfigureOverlap(workers, prefetchDepth)
	e.ensureSlots()
}

// ensureSlots sizes the per-slot interaction lists and target blocks to
// the engine's slot count (1 when the pipeline is off).
func (e *ParallelEngine) ensureSlots() {
	n := e.Slots()
	for len(e.lists) < n {
		e.lists = append(e.lists, vList{})
	}
	for len(e.tgs) < n {
		e.tgs = append(e.tgs, vTargets{})
	}
}

// Eval runs one distributed evaluation: sys.Vel is filled and the
// returned slice holds dalpha/dt for the (redistributed, key-sorted)
// local particles.
func (e *ParallelEngine) Eval() []vec.V3 {
	e.Exchange()
	e.dAlpha = make([]vec.V3, e.Sys.Len())
	walk := func(slot int, gk keys.Key, g *tree.Cell, ctr *diag.Counters) []keys.Key {
		return e.walkGroup(slot, g, ctr)
	}
	eval := func(slot int, gk keys.Key, g *tree.Cell, ctr *diag.Counters) {
		e.evalGroup(slot, g, ctr)
	}
	e.WalkGroups("walk", walk, eval)
	return e.dAlpha
}

// leafBodies returns positions and strengths of a leaf cell.
func (e *ParallelEngine) leafBodies(c *tree.Cell) ([]vec.V3, []vec.V3) {
	if c.First >= 0 {
		return e.Sys.Pos[c.First : c.First+c.N], e.Sys.Alpha[c.First : c.First+c.N]
	}
	i := -(c.First + 1)
	return e.phys.impPos[i : i+c.N], e.phys.impAlpha[i : i+c.N]
}

// walkGroup builds one group's interaction list (SoA source columns
// plus a monopole slab) into the slot's vList, returning missing keys
// instead if any cell is unresolved (the list is discarded and the
// group rewalked after the data arrives). The walk runs only on the
// rank goroutine; e.stack is shared across slots for that reason.
func (e *ParallelEngine) walkGroup(slot int, g *tree.Cell, ctr *diag.Counters) (missing []keys.Key) {
	sys := e.Sys
	lo, hi := g.First, g.First+g.N
	gpos := sys.Pos[lo:hi]
	gc, gr := tree.GroupSphere(gpos)
	list := &e.lists[slot]
	list.reset()
	e.stack = append(e.stack[:0], keys.Root)
	for len(e.stack) > 0 {
		k := e.stack[len(e.stack)-1]
		e.stack = e.stack[:len(e.stack)-1]
		c, asum, ok := e.Resolve(k)
		if !ok {
			missing = append(missing, k)
			continue
		}
		ctr.Traversals++
		if c.Mp.M == 0 {
			continue // zero total |alpha|: no contribution
		}
		dd := c.Mp.COM.Sub(gc).Norm()
		if dd-gr > c.RCrit && dd > gr {
			list.cells = append(list.cells, cellMoment{ASum: *asum, Centroid: c.Mp.COM})
			continue
		}
		if c.Leaf {
			spos, salpha := e.leafBodies(c)
			list.addBodies(spos, salpha)
			continue
		}
		for oct := 0; oct < 8; oct++ {
			if c.ChildMask&(1<<uint(oct)) != 0 {
				e.stack = append(e.stack, k.Child(oct))
			}
		}
	}
	return missing
}

// evalGroup sweeps a completed interaction list with the batched
// kernels. Sources were copied into the slot's vList by the walk, so
// the sweep touches only the group's own Vel/dAlpha rows and the slot
// scratch -- safe to run on an eval worker during communication.
func (e *ParallelEngine) evalGroup(slot int, g *tree.Cell, ctr *diag.Counters) {
	sys := e.Sys
	lo, hi := g.First, g.First+g.N
	s2 := e.Sigma * e.Sigma
	list := &e.lists[slot]
	tg := &e.tgs[slot]
	tg.load(sys.Pos[lo:hi], sys.Alpha[lo:hi])
	ctr.VortexPP += evalVelMono(tg, list.cells, s2)
	ctr.VortexPP += evalVelPP(tg, list, s2)
	tg.store(sys.Vel[lo:hi], e.dAlpha[lo:hi])
}

// saved carries a particle's pre-step state across rank migrations.
type saved struct {
	ID   int64
	X, A vec.V3
}

// Step advances one RK2 (midpoint) step with distributed evaluations.
// The decomposition between the two stages may migrate particles
// across ranks, so the pre-step state is exchanged by particle ID (a
// collective allgather; the in-process machine makes this cheap, and
// the state is ~56 bytes/particle either way).
func (e *ParallelEngine) Step(dt float64) {
	d1 := e.Eval()
	n := e.Sys.Len()
	mine := make([]saved, n)
	for i := 0; i < n; i++ {
		mine[i] = saved{ID: e.Sys.ID[i], X: e.Sys.Pos[i], A: e.Sys.Alpha[i]}
	}
	for i := 0; i < n; i++ {
		e.Sys.Pos[i] = e.Sys.Pos[i].Add(e.Sys.Vel[i].Scale(dt / 2))
		e.Sys.Alpha[i] = e.Sys.Alpha[i].Add(d1[i].Scale(dt / 2))
	}
	d2 := e.Eval()
	// Reassemble everyone's pre-step state, keyed by ID.
	all := msg.Allgather(e.C, mine, 56*len(mine))
	x0 := make(map[int64]saved, n)
	for _, batch := range all {
		for _, s := range batch {
			x0[s.ID] = s
		}
	}
	for i := 0; i < e.Sys.Len(); i++ {
		s, ok := x0[e.Sys.ID[i]]
		if !ok {
			panic("vortex: particle lost its pre-step state")
		}
		e.Sys.Pos[i] = s.X.Add(e.Sys.Vel[i].Scale(dt))
		e.Sys.Alpha[i] = s.A.Add(d2[i].Scale(dt))
	}
}

// Telemetry returns the pipeline's rank sample. Vortex dynamics has no
// softened potential to sum, so HasEnergy stays false and the
// energy-drift monitor never arms on vortex runs.
func (e *ParallelEngine) Telemetry(stepNs int64) telemetry.RankSample {
	return e.TelemetrySample(stepNs)
}
