package vortex

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/ic"
	"repro/internal/vec"
)

func ring(nTheta, nCore int, gamma, R, rc float64, center vec.V3, seed int64) *core.System {
	s := core.New(0)
	s.EnableDynamics()
	s.EnableVortex()
	ic.VortexRing(s, gamma, R, rc, center, vec.V3{Z: 1}, nTheta, nCore, seed)
	return s
}

func TestPairwiseAntisymmetryOfVelocity(t *testing.T) {
	// Two particles: the velocity each induces on the other follows
	// the Biot-Savart sign convention; u_p from q is -(1/4pi) g r x a_q.
	pos := []vec.V3{{X: 0}, {X: 1}}
	alpha := []vec.V3{{Z: 0}, {Z: 1}} // only q=1 carries strength
	vel := make([]vec.V3, 2)
	da := make([]vec.V3, 2)
	n := Pairwise(pos, alpha, 0.1, vel, da)
	if n != 2 {
		t.Fatalf("count %d", n)
	}
	// r = x_0 - x_1 = (-1,0,0); r x alpha_1 = (-1,0,0)x(0,0,1) = (0,1,0)*... = (0*1-0*0, 0*(-0)-(-1)*1, 0) = (0,1,0)
	// u_0 = -(1/4pi) g (0,1,0): negative y? compute: cross((-1,0,0),(0,0,1)) = (0*1-0*0, 0*0-(-1)*1, (-1)*0-0*0) = (0,1,0).
	if vel[0].Y >= 0 {
		t.Fatalf("u_0 = %v, expected -y direction", vel[0])
	}
	if vel[1].Norm() != 0 {
		t.Fatalf("u_1 = %v, particle 0 has no strength", vel[1])
	}
}

func TestRingTranslatesAlongAxis(t *testing.T) {
	// A single thin vortex ring self-propels along its axis with
	// speed U ~ Gamma/(4 pi R) [ln(8R/rc) - const]: check direction
	// and order of magnitude.
	s := ring(64, 4, 1.0, 1.0, 0.1, vec.V3{}, 1)
	vel := make([]vec.V3, s.Len())
	da := make([]vec.V3, s.Len())
	Pairwise(s.Pos, s.Alpha, 0.1, vel, da)
	var mean vec.V3
	for i := range vel {
		mean = mean.Add(vel[i])
	}
	mean = mean.Scale(1 / float64(len(vel)))
	uAnalytic := 1.0 / (4 * math.Pi) * (math.Log(8.0/0.1) - 0.558)
	if mean.Z <= 0 {
		t.Fatalf("ring moves %v, want +z", mean)
	}
	if mean.Z < 0.3*uAnalytic || mean.Z > 3*uAnalytic {
		t.Fatalf("ring speed %v, analytic %v", mean.Z, uAnalytic)
	}
	// Transverse drift ~ 0 by symmetry.
	if math.Abs(mean.X) > 0.05*mean.Z || math.Abs(mean.Y) > 0.05*mean.Z {
		t.Fatalf("transverse drift: %v", mean)
	}
}

func TestTreeEvalMatchesPairwise(t *testing.T) {
	s := ring(48, 3, 1.0, 1.0, 0.15, vec.V3{}, 2)
	ic.VortexRing(s, 1.0, 1.0, 0.15, vec.V3{X: 2.5}, vec.V3{Z: 1}, 48, 3, 3)
	n := s.Len()

	// Tree evaluation (sorts the system).
	dTree, ctr := TreeEval(s, 0.15, 0.4)
	if ctr.VortexPP == 0 {
		t.Fatal("no vortex interactions")
	}
	// Pairwise on the same (sorted) state.
	velRef := make([]vec.V3, n)
	daRef := make([]vec.V3, n)
	Pairwise(s.Pos, s.Alpha, 0.15, velRef, daRef)

	var vRMS float64
	for i := 0; i < n; i++ {
		vRMS += velRef[i].Norm2()
	}
	vRMS = math.Sqrt(vRMS / float64(n))
	for i := 0; i < n; i++ {
		if d := s.Vel[i].Sub(velRef[i]).Norm() / vRMS; d > 0.02 {
			t.Fatalf("particle %d velocity error %g of RMS", i, d)
		}
	}
	var daRMS float64
	for i := 0; i < n; i++ {
		daRMS += daRef[i].Norm2()
	}
	daRMS = math.Sqrt(daRMS/float64(n)) + 1e-30
	for i := 0; i < n; i++ {
		if d := dTree[i].Sub(daRef[i]).Norm() / daRMS; d > 0.05 {
			t.Fatalf("particle %d stretching error %g of RMS", i, d)
		}
	}
	// Tree should do fewer interactions than N^2 on two separated
	// rings.
	if ctr.VortexPP >= uint64(n)*uint64(n-1) {
		t.Fatalf("tree did %d interactions, pairwise is %d", ctr.VortexPP, n*(n-1))
	}
}

func TestM4PrimeProperties(t *testing.T) {
	if M4Prime(0) != 1 {
		t.Fatalf("W(0) = %v", M4Prime(0))
	}
	if M4Prime(1) != 0 || M4Prime(2) != 0 || M4Prime(3) != 0 {
		t.Fatal("W must vanish at integers >= 1")
	}
	// Partition of unity: sum over integer shifts is 1 for any x.
	for _, x := range []float64{0.0, 0.1, 0.25, 0.5, 0.77, 0.99} {
		sum := 0.0
		for i := -3; i <= 3; i++ {
			sum += M4Prime(x - float64(i))
		}
		if math.Abs(sum-1) > 1e-12 {
			t.Fatalf("partition of unity violated at %v: %v", x, sum)
		}
	}
	// First moment: sum i*W(x-i) = x (linear reproduction).
	for _, x := range []float64{0.2, 0.6, 0.9} {
		sum := 0.0
		for i := -3; i <= 3; i++ {
			sum += float64(i) * M4Prime(x-float64(i))
		}
		if math.Abs(sum-x) > 1e-12 {
			t.Fatalf("first moment at %v: %v", x, sum)
		}
	}
}

func TestRemeshConservesStrengthAndImpulse(t *testing.T) {
	s := ring(32, 4, 1.0, 1.0, 0.15, vec.V3{X: 0.3, Y: -0.2, Z: 0.1}, 4)
	a0 := TotalStrength(s.Alpha)
	i0 := LinearImpulse(s.Pos, s.Alpha)
	out := Remesh(s, 0.07, 0) // no cutoff: exact conservation
	if out.Len() == 0 {
		t.Fatal("remesh produced nothing")
	}
	a1 := TotalStrength(out.Alpha)
	i1 := LinearImpulse(out.Pos, out.Alpha)
	if d := a1.Sub(a0).Norm(); d > 1e-12 {
		t.Fatalf("total strength drift %g", d)
	}
	// M4' conserves first moments: impulse preserved to roundoff.
	if d := i1.Sub(i0).Norm(); d > 1e-10*(i0.Norm()+1) {
		t.Fatalf("impulse drift %g", d)
	}
}

func TestRemeshGrowsThinParticleSet(t *testing.T) {
	// Remeshing a distorted set onto overlap-preserving spacing adds
	// particles (the paper's 57k -> 360k growth over the run).
	s := ring(64, 2, 1.0, 1.0, 0.05, vec.V3{}, 5)
	n0 := s.Len()
	out := Remesh(s, 0.03, 1e-4)
	if out.Len() <= n0 {
		t.Fatalf("remesh %d -> %d, expected growth", n0, out.Len())
	}
}

func TestStepAdvancesRing(t *testing.T) {
	s := ring(32, 3, 1.0, 1.0, 0.15, vec.V3{}, 6)
	z0 := Centroid(s.Pos, s.Alpha).Z
	i0 := LinearImpulse(s.Pos, s.Alpha)
	for k := 0; k < 5; k++ {
		Step(s, 0.15, 0.4, 0.05)
	}
	z1 := Centroid(s.Pos, s.Alpha).Z
	if z1 <= z0 {
		t.Fatalf("ring did not advance: %v -> %v", z0, z1)
	}
	// Impulse approximately conserved by the dynamics.
	i1 := LinearImpulse(s.Pos, s.Alpha)
	if d := i1.Sub(i0).Norm() / i0.Norm(); d > 0.05 {
		t.Fatalf("impulse drift %v", d)
	}
}

func TestDiagnostics(t *testing.T) {
	pos := []vec.V3{{X: 1}, {X: -1}}
	alpha := []vec.V3{{Y: 2}, {Y: 2}}
	if s := TotalStrength(alpha); s != (vec.V3{Y: 4}) {
		t.Fatalf("TotalStrength %v", s)
	}
	// I = 0.5 * sum x cross a = 0.5*[(1,0,0)x(0,2,0) + (-1,0,0)x(0,2,0)] = 0.
	if i := LinearImpulse(pos, alpha); i.Norm() > 1e-15 {
		t.Fatalf("LinearImpulse %v", i)
	}
	if c := Centroid(pos, alpha); c.Norm() > 1e-15 {
		t.Fatalf("Centroid %v", c)
	}
	if Centroid(nil, nil) != (vec.V3{}) {
		t.Fatal("empty centroid")
	}
	if MaxVelocity([]vec.V3{{X: 1}, {Y: -3}}) != 3 {
		t.Fatal("MaxVelocity")
	}
}

func TestEnergyAndEnstrophyDiagnostics(t *testing.T) {
	s := ring(32, 3, 1.0, 1.0, 0.15, vec.V3{}, 7)
	vel := make([]vec.V3, s.Len())
	da := make([]vec.V3, s.Len())
	Pairwise(s.Pos, s.Alpha, 0.15, vel, da)
	e := KineticEnergy(s.Pos, s.Alpha, vel)
	if e <= 0 {
		t.Fatalf("ring kinetic energy %v, want positive", e)
	}
	if Enstrophy(s.Alpha) <= 0 {
		t.Fatal("enstrophy must be positive")
	}
	// Enstrophy grows under stretching in a fusing-ring flow; here we
	// just verify the diagnostic is stable under remesh (conserved
	// approximately, since M4' smooths).
	before := Enstrophy(s.Alpha)
	out := Remesh(s, 0.07, 0)
	after := Enstrophy(out.Alpha)
	if after <= 0 || after > 2*before {
		t.Fatalf("enstrophy through remesh: %v -> %v", before, after)
	}
}
