package vortex

import (
	"math"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/ic"
	"repro/internal/msg"
	"repro/internal/vec"
)

func twoRings(nTheta, nCore int) *core.System {
	s := core.New(0)
	s.EnableDynamics()
	s.EnableVortex()
	ic.VortexRing(s, 1.0, 1.0, 0.15, vec.V3{X: -0.75}, vec.V3{Z: 1}, nTheta, nCore, 41)
	ic.VortexRing(s, 1.0, 1.0, 0.15, vec.V3{X: 0.75}, vec.V3{Z: 1}, nTheta, nCore, 43)
	return s
}

func scatterV(global *core.System, c *msg.Comm) *core.System {
	n := global.Len()
	local := core.New(0)
	local.EnableDynamics()
	local.EnableVortex()
	lo, hi := c.Rank()*n/c.Size(), (c.Rank()+1)*n/c.Size()
	for i := lo; i < hi; i++ {
		local.AppendFrom(global, i)
	}
	return local
}

func TestParallelVortexMatchesSerial(t *testing.T) {
	global := twoRings(32, 3)
	n := global.Len()
	const sigma, theta = 0.15, 0.4

	// Serial reference (pairwise, exact).
	velRef := make([]vec.V3, n)
	daRef := make([]vec.V3, n)
	Pairwise(global.Pos, global.Alpha, sigma, velRef, daRef)
	var vRMS, daRMS float64
	for i := 0; i < n; i++ {
		vRMS += velRef[i].Norm2()
		daRMS += daRef[i].Norm2()
	}
	vRMS = math.Sqrt(vRMS / float64(n))
	daRMS = math.Sqrt(daRMS/float64(n)) + 1e-30

	for _, np := range []int{1, 2, 4} {
		var mu sync.Mutex
		seen := 0
		totalRemote := 0
		msg.Run(np, func(c *msg.Comm) {
			e := NewParallel(c, scatterV(global, c), sigma, theta)
			dAlpha := e.Eval()
			mu.Lock()
			defer mu.Unlock()
			totalRemote += e.RemoteCells
			for i := 0; i < e.Sys.Len(); i++ {
				id := e.Sys.ID[i]
				if d := e.Sys.Vel[i].Sub(velRef[id]).Norm() / vRMS; d > 0.03 {
					t.Errorf("np=%d particle %d: velocity error %g of RMS", np, id, d)
				}
				if d := dAlpha[i].Sub(daRef[id]).Norm() / daRMS; d > 0.06 {
					t.Errorf("np=%d particle %d: stretching error %g of RMS", np, id, d)
				}
				seen++
			}
		})
		if seen != n {
			t.Fatalf("np=%d: saw %d particles", np, seen)
		}
		if np > 1 && totalRemote == 0 {
			t.Fatalf("np=%d: no remote cells fetched", np)
		}
	}
}

func TestParallelVortexStep(t *testing.T) {
	global := twoRings(24, 2)
	const sigma, theta, dt = 0.15, 0.5, 0.05

	// Serial reference trajectory via the serial Step.
	serial := twoRings(24, 2)
	for s := 0; s < 3; s++ {
		Step(serial, sigma, theta, dt)
	}
	zSerial := Centroid(serial.Pos, serial.Alpha).Z

	var zPar float64
	var totalN int
	var mu sync.Mutex
	msg.Run(3, func(c *msg.Comm) {
		e := NewParallel(c, scatterV(global, c), sigma, theta)
		for s := 0; s < 3; s++ {
			e.Step(dt)
		}
		// Gather all particles for the centroid.
		type pt struct{ P, A vec.V3 }
		mineP := make([]pt, e.Sys.Len())
		for i := range mineP {
			mineP[i] = pt{e.Sys.Pos[i], e.Sys.Alpha[i]}
		}
		all := msg.Allgather(c, mineP, 48*len(mineP))
		if c.Rank() == 0 {
			var pos, alpha []vec.V3
			for _, b := range all {
				for _, p := range b {
					pos = append(pos, p.P)
					alpha = append(alpha, p.A)
				}
			}
			mu.Lock()
			zPar = Centroid(pos, alpha).Z
			totalN = len(pos)
			mu.Unlock()
		}
	})
	if totalN != global.Len() {
		t.Fatalf("lost particles: %d of %d", totalN, global.Len())
	}
	// Both trajectories advance in +z and agree closely.
	if zPar <= 0 || zSerial <= 0 {
		t.Fatalf("rings did not advance: serial %v parallel %v", zSerial, zPar)
	}
	if math.Abs(zPar-zSerial) > 0.05*zSerial+1e-3 {
		t.Fatalf("parallel trajectory deviates: %v vs %v", zPar, zSerial)
	}
}

func TestParallelVortexEmptyRanks(t *testing.T) {
	// More ranks than the tiny ring needs: empty intervals must not
	// deadlock.
	global := twoRings(8, 1)
	msg.Run(6, func(c *msg.Comm) {
		e := NewParallel(c, scatterV(global, c), 0.15, 0.5)
		e.Eval()
	})
}
