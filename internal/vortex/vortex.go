// Package vortex implements the vortex particle method of the paper's
// fluid dynamics result (the two-ring fusion computed on Hyglac):
// Lagrangian particles carrying vector-valued vorticity strengths
// alpha, advected by the regularized Biot-Savart velocity they induce,
// with vorticity stretching evolving the strengths, and periodic
// "remeshing" onto a regular lattice to maintain the core-overlap
// condition (which is what grew the paper's run from 57k to 360k
// particles).
//
// The regularization is the high-order algebraic kernel of
// Winckelmans & Leonard:
//
//	u(x)     = -(1/4pi) sum_q g(r) r x alpha_q,  r = x - x_q
//	g(r)     = (|r|^2 + 2.5 s^2) / (|r|^2 + s^2)^{5/2}
//	dalpha_p = -(1/4pi) sum_q [ g (alpha_p x alpha_q)
//	           + (g'/|r|)(alpha_p . r)(r x alpha_q) ] dt
//	g'/|r|   = -3 (|r|^2 + 3.5 s^2) / (|r|^2 + s^2)^{7/2}
//
// (classical stretching scheme). Far fields are evaluated through the
// same hashed oct-tree as gravity, with vector-valued cell moments:
// the paper's point that one treecode library serves gravity, vortex
// dynamics and SPH alike.
package vortex

import (
	"math"

	"repro/internal/diag"
	"repro/internal/vec"
)

const fourPiInv = 1 / (4 * math.Pi)

// Pairwise evaluates velocities and strength derivatives by direct
// summation over all particle pairs: the O(N^2) reference. vel and
// dAlpha are overwritten. Returns the interaction count.
func Pairwise(pos, alpha []vec.V3, sigma float64, vel, dAlpha []vec.V3) uint64 {
	n := len(pos)
	s2 := sigma * sigma
	for p := 0; p < n; p++ {
		var u, da vec.V3
		ap := alpha[p]
		for q := 0; q < n; q++ {
			if q == p {
				continue
			}
			r := pos[p].Sub(pos[q])
			r2 := r.Norm2()
			d2 := r2 + s2
			d := math.Sqrt(d2)
			inv5 := 1 / (d2 * d2 * d)
			g := (r2 + 2.5*s2) * inv5
			gp := -3 * (r2 + 3.5*s2) * inv5 / d2
			rxa := r.Cross(alpha[q])
			u = u.Sub(rxa.Scale(fourPiInv * g))
			da = da.Sub(ap.Cross(alpha[q]).Scale(fourPiInv * g))
			da = da.Sub(rxa.Scale(fourPiInv * gp * ap.Dot(r)))
		}
		vel[p] = u
		dAlpha[p] = da
	}
	if n == 0 {
		return 0
	}
	return uint64(n) * uint64(n-1)
}

// velTile accumulates velocity and stretching on targets from a
// disjoint source tile.
func velTile(tpos, talpha []vec.V3, vel, dAlpha []vec.V3, spos, salpha []vec.V3, s2 float64, ctr *diag.Counters) {
	for p := range tpos {
		u := vel[p]
		da := dAlpha[p]
		ap := talpha[p]
		for q := range spos {
			r := tpos[p].Sub(spos[q])
			r2 := r.Norm2()
			if r2 == 0 {
				continue // coincident particle (self during remesh)
			}
			d2 := r2 + s2
			d := math.Sqrt(d2)
			inv5 := 1 / (d2 * d2 * d)
			g := (r2 + 2.5*s2) * inv5
			gp := -3 * (r2 + 3.5*s2) * inv5 / d2
			rxa := r.Cross(salpha[q])
			u = u.Sub(rxa.Scale(fourPiInv * g))
			da = da.Sub(ap.Cross(salpha[q]).Scale(fourPiInv * g))
			da = da.Sub(rxa.Scale(fourPiInv * gp * ap.Dot(r)))
		}
		vel[p] = u
		dAlpha[p] = da
		ctr.VortexPP += uint64(len(spos))
	}
}

// cellMoment accumulates a far-field monopole for a cluster: total
// strength and strength-weighted centroid (falling back to the
// geometric mean position for clusters whose |alpha| sums to ~0).
type cellMoment struct {
	ASum     vec.V3
	Centroid vec.V3
}

// velMono applies a cluster's monopole to the targets with the same
// sigma regularization as the particle kernel: a single-body cell
// then reproduces the body-body interaction exactly, which matters
// because force-split parallel trees contain deep single-body cells
// whose critical radii are far smaller than the core size (the same
// pitfall as softened gravity vs bare multipoles).
func velMono(tpos, talpha []vec.V3, vel, dAlpha []vec.V3, m *cellMoment, s2 float64, ctr *diag.Counters) {
	for p := range tpos {
		r := tpos[p].Sub(m.Centroid)
		r2 := r.Norm2()
		d2 := r2 + s2
		d := math.Sqrt(d2)
		inv5 := 1 / (d2 * d2 * d)
		g := (r2 + 2.5*s2) * inv5
		gp := -3 * (r2 + 3.5*s2) * inv5 / d2
		rxa := r.Cross(m.ASum)
		vel[p] = vel[p].Sub(rxa.Scale(fourPiInv * g))
		dAlpha[p] = dAlpha[p].Sub(talpha[p].Cross(m.ASum).Scale(fourPiInv * g))
		dAlpha[p] = dAlpha[p].Sub(rxa.Scale(fourPiInv * gp * talpha[p].Dot(r)))
		ctr.VortexPP++
	}
}

// Diagnostics of a vortex particle field.

// TotalStrength returns sum(alpha): the total vorticity integral,
// conserved by remeshing exactly and by the dynamics approximately.
func TotalStrength(alpha []vec.V3) vec.V3 {
	var s vec.V3
	for _, a := range alpha {
		s = s.Add(a)
	}
	return s
}

// LinearImpulse returns I = (1/2) sum x cross alpha, the hydrodynamic
// impulse, an invariant of inviscid vortex dynamics.
func LinearImpulse(pos, alpha []vec.V3) vec.V3 {
	var s vec.V3
	for i := range pos {
		s = s.Add(pos[i].Cross(alpha[i]))
	}
	return s.Scale(0.5)
}

// Centroid returns the |alpha|-weighted mean position (tracks ring
// translation).
func Centroid(pos, alpha []vec.V3) vec.V3 {
	var c vec.V3
	var w float64
	for i := range pos {
		a := alpha[i].Norm()
		c = c.Add(pos[i].Scale(a))
		w += a
	}
	if w == 0 {
		return vec.V3{}
	}
	return c.Scale(1 / w)
}

// MaxVelocity returns the largest |vel|, used for CFL-style timestep
// control in the drivers.
func MaxVelocity(vel []vec.V3) float64 {
	m := 0.0
	for i := range vel {
		if v := vel[i].Norm(); v > m {
			m = v
		}
	}
	return m
}

// KineticEnergy returns the kinetic energy of the induced flow in the
// particle representation, E = (1/2) sum_p u_p . (x_p x alpha_p)
// (Saffman's impulse form, valid for localized vorticity). Together
// with LinearImpulse it tracks the quality of an inviscid run.
func KineticEnergy(pos, alpha, vel []vec.V3) float64 {
	var e float64
	for i := range pos {
		e += vel[i].Dot(pos[i].Cross(alpha[i]))
	}
	return 0.5 * e
}

// Enstrophy returns sum |alpha|^2 / volume-free proxy: the particle
// enstrophy integral used to monitor stretching growth.
func Enstrophy(alpha []vec.V3) float64 {
	var s float64
	for i := range alpha {
		s += alpha[i].Norm2()
	}
	return s
}
