package perfmodel

import (
	"fmt"
	"strings"
)

// LineItem is one row of a parts list.
type LineItem struct {
	Qty         int
	UnitUSD     float64
	Description string
}

// Ext returns the extended (qty x unit) price.
func (l LineItem) Ext() float64 { return float64(l.Qty) * l.UnitUSD }

// Table1Loki is the paper's Table 1: "Loki architecture and price
// (September, 1996)", summing to $51,379.
var Table1Loki = []LineItem{
	{16, 595, "Intel Pentium Pro 200 MHz CPU/256k cache"},
	{16, 15, "Heat Sink and Fan"},
	{16, 295, "Intel VS440FX (Venus) motherboard"},
	{64, 235, "8x36 60ns parity FPM SIMMs (128 MB per node)"},
	{16, 359, "Quantum Fireball 3240 MB IDE Hard Drive"},
	{16, 85, "D-Link DFE-500TX 100 Mb Fast Ethernet PCI Card"},
	{16, 129, "SMC EtherPower 10/100 Fast Ethernet PCI Card"},
	{16, 59, "S3 Trio-64 1MB PCI Video Card"},
	{16, 119, "ATX Case"},
	{2, 4794, "3Com SuperStack II Switch 3000, 8-port Fast Ethernet"},
	{1, 255, "Ethernet cables"},
}

// Table1Total is the paper's printed total for Table 1.
const Table1Total = 51_379

// Table2Spot is the paper's Table 2: spot prices for August 1997.
var Table2Spot = []LineItem{
	{1, 220, "ASUS P/I-XP6NP5 motherboard"},
	{1, 467, "Pentium Pro 200 MHz, 256k L2"},
	{1, 204, "Pentium Pro 150 MHz, 256k L2"},
	{1, 112, "SIMM FPM 8x36x60, 32 MB"},
	{1, 215, "Disk Quantum Fireball 3.2GB EIDE"},
	{1, 53, "Fast Ethernet DFE-500TX 21140 PCI"},
	{1, 150, "Misc. Case, Floppy, Heat Sink"},
	{1, 2500, "BayStack 350T 16 port 10/100 Mbit switch"},
}

// Aug97SystemUSD builds the paper's "$28k" August-1997 16-processor
// system from Table 2 spot prices: 16 nodes (board, 200 MHz CPU, 4x32
// MB SIMMs, disk, NIC, misc) plus one 16-port switch.
func Aug97SystemUSD() float64 {
	perNode := itemPrice("ASUS") + itemPrice("Pentium Pro 200") +
		4*itemPrice("SIMM") + itemPrice("Disk") + itemPrice("DFE-500TX") +
		itemPrice("Misc")
	return 16*perNode + itemPrice("BayStack")
}

func itemPrice(prefix string) float64 {
	for _, l := range Table2Spot {
		if strings.Contains(l.Description, prefix) {
			return l.UnitUSD
		}
	}
	panic("perfmodel: unknown Table 2 item " + prefix)
}

// Total sums a parts list.
func Total(items []LineItem) float64 {
	var t float64
	for _, l := range items {
		t += l.Ext()
	}
	return t
}

// PricePerMflop returns the paper's price/performance metric in
// dollars per sustained Mflop.
func PricePerMflop(priceUSD, mflops float64) float64 {
	if mflops <= 0 {
		return 0
	}
	return priceUSD / mflops
}

// FormatTable renders a parts list like the paper's Table 1.
func FormatTable(items []LineItem) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%4s %8s %9s  %s\n", "Qty", "Price", "Ext.", "Description")
	for _, l := range items {
		fmt.Fprintf(&b, "%4d %8.0f %9.0f  %s\n", l.Qty, l.UnitUSD, l.Ext(), l.Description)
	}
	fmt.Fprintf(&b, "Total $%.0f\n", Total(items))
	return b.String()
}
