package perfmodel

import (
	"math"
	"strings"
	"testing"
)

// TestModernArithmetic pins the instance-table formulas to the same
// arithmetic as the reference analysis: GFLOPS = vCPU x clock x
// flops/cycle, hourly $/TFLOP = price / (GFLOPS/1000), five-year cost
// = price x 24 x 365 x 5.
func TestModernArithmetic(t *testing.T) {
	m := ModernMachine{Name: "x", VCPU: 40, ClockGHz: 2.4, FlopsPerCycle: 16, PriceHrUSD: 2.394}
	if got, want := m.GFLOPS(), 40*2.4*16.0; math.Abs(got-want) > 1e-9 {
		t.Errorf("GFLOPS = %g, want %g", got, want)
	}
	if got, want := m.PerTflopHrUSD(), 2.394/(40*2.4*16.0/1000); math.Abs(got-want) > 1e-12 {
		t.Errorf("$/TFLOP = %g, want %g", got, want)
	}
	if got, want := m.FiveYearUSD(), 2.394*24*365*5; math.Abs(got-want) > 1e-9 {
		t.Errorf("5yr cost = %g, want %g", got, want)
	}
}

// TestModernTableGolden pins every row of the shipped table: the
// derived columns must match the formulas applied to the row's
// literals, and a few spot values are pinned outright so a silent
// edit of the table shows up as a diff here.
func TestModernTableGolden(t *testing.T) {
	for _, m := range ModernTable {
		wantG := float64(m.VCPU) * m.ClockGHz * float64(m.FlopsPerCycle)
		if math.Abs(m.GFLOPS()-wantG) > 1e-9 {
			t.Errorf("%s: GFLOPS = %g, want %g", m.Name, m.GFLOPS(), wantG)
		}
		if wantT := m.PriceHrUSD / (wantG / 1000); math.Abs(m.PerTflopHrUSD()-wantT) > 1e-12 {
			t.Errorf("%s: $/TFLOP = %g, want %g", m.Name, m.PerTflopHrUSD(), wantT)
		}
		if wantF := m.PriceHrUSD * FiveYearHours; math.Abs(m.FiveYearUSD()-wantF) > 1e-6 {
			t.Errorf("%s: 5yr = %g, want %g", m.Name, m.FiveYearUSD(), wantF)
		}
	}
	spot := map[string]float64{
		"c7i.metal-24xl": 4915.2,
		"c7i.8xlarge":    1638.4,
		"m6i.large":      92.8,
	}
	seen := 0
	for _, m := range ModernTable {
		if want, ok := spot[m.Name]; ok {
			seen++
			if math.Abs(m.GFLOPS()-want) > 1e-9 {
				t.Errorf("%s: GFLOPS = %g, want pinned %g", m.Name, m.GFLOPS(), want)
			}
		}
	}
	if seen != len(spot) {
		t.Errorf("pinned %d of %d expected instances in ModernTable", seen, len(spot))
	}
}

// TestModernVsClassicAnchors: five years of the cheapest listed
// instance at its own peak must land far below both the paper's
// $50/Mflop and GRAPE-5's $7/Mflops -- the modernized Part II's
// conclusion, pinned so the table cannot drift into contradicting it.
func TestModernVsClassicAnchors(t *testing.T) {
	if PaperPerMflopUSD != 50 || Grape5PerMflopUSD != 7 {
		t.Fatalf("classic anchors changed: paper=%d grape5=%d", PaperPerMflopUSD, Grape5PerMflopUSD)
	}
	for _, m := range ModernTable {
		// Charge the peak rate; even at 10% of peak the conclusion holds,
		// checked with the 10x margin below.
		per := m.PerMflopFiveYearUSD(m.GFLOPS() * 1000)
		if per*10 >= Grape5PerMflopUSD {
			t.Errorf("%s: five-year $%.4f/Mflop at peak; 10%%-of-peak would not beat GRAPE-5", m.Name, per)
		}
	}
}

func TestFormatModernTable(t *testing.T) {
	out := FormatModernTable(ModernTable)
	for _, want := range []string{"Instance", "$/hr/TFLOP", "5yr price", "c7i.8xlarge", "4915.2"} {
		if !strings.Contains(out, want) {
			t.Errorf("table output missing %q:\n%s", want, out)
		}
	}
}
