package perfmodel

import (
	"fmt"
	"strings"
)

// ModernMachine describes a present-day rented machine for the
// modernized Part II study: instead of a parts list summing to a
// purchase price, a cloud instance is (vCPU count, clock, per-cycle
// flop width, $/hour). Peak GFLOPS and the price figures of merit
// follow the same arithmetic as the classic $/Mflop table:
//
//	GFLOPS   = vCPU x ClockGHz x FlopsPerCycle
//	$/TFLOP  = PriceHrUSD / (GFLOPS/1000)      (an hourly rate)
//	5yr cost = PriceHrUSD x 24 x 365 x 5       (the buy-vs-rent bridge
//	                                            to the paper's one-time
//	                                            system price)
type ModernMachine struct {
	Name string
	// VCPU is the advertised vCPU count (hardware threads).
	VCPU int
	// ClockGHz is the sustained clock in GHz.
	ClockGHz float64
	// FlopsPerCycle is the double-precision flops one vCPU retires per
	// cycle (FMA width x 2 / SMT sharing, per the vendor datasheet).
	FlopsPerCycle int
	// PriceHrUSD is the on-demand hourly price.
	PriceHrUSD float64
}

// GFLOPS returns the advertised peak: vCPU x clock x flops/cycle.
func (m ModernMachine) GFLOPS() float64 {
	return float64(m.VCPU) * m.ClockGHz * float64(m.FlopsPerCycle)
}

// PerTflopHrUSD returns the hourly price of a peak teraflop.
func (m ModernMachine) PerTflopHrUSD() float64 {
	g := m.GFLOPS()
	if g <= 0 {
		return 0
	}
	return m.PriceHrUSD / (g / 1000)
}

// FiveYearHours is the rent-to-own horizon used to compare an hourly
// price with the paper's one-time system price.
const FiveYearHours = 24 * 365 * 5

// FiveYearUSD returns the cost of renting the instance continuously
// for five years.
func (m ModernMachine) FiveYearUSD() float64 {
	return m.PriceHrUSD * FiveYearHours
}

// PerMflopFiveYearUSD is the paper's figure of merit transplanted to a
// rented machine: the five-year cost divided by a sustained Mflops
// rate. Comparable to Loki's $58/Mflop (a bought machine amortized
// over its useful life) and GRAPE-5's $7/Mflops.
func (m ModernMachine) PerMflopFiveYearUSD(sustainedMflops float64) float64 {
	return PricePerMflop(m.FiveYearUSD(), sustainedMflops)
}

// ModernTable is the present-day instance table (on-demand prices as
// of mid-2026; general-purpose and compute-optimized x86 shapes with
// AVX-512 FMA, plus one small shape for scale). FlopsPerCycle 16 =
// one 512-bit FMA pipe x 8 doubles x 2 flops per vCPU (SMT halves the
// two-pipe core figure).
var ModernTable = []ModernMachine{
	{Name: "c7i.metal-24xl", VCPU: 96, ClockGHz: 3.2, FlopsPerCycle: 16, PriceHrUSD: 4.284},
	{Name: "c7i.8xlarge", VCPU: 32, ClockGHz: 3.2, FlopsPerCycle: 16, PriceHrUSD: 1.428},
	{Name: "m7i.4xlarge", VCPU: 16, ClockGHz: 3.2, FlopsPerCycle: 16, PriceHrUSD: 0.8064},
	{Name: "c6i.2xlarge", VCPU: 8, ClockGHz: 2.9, FlopsPerCycle: 16, PriceHrUSD: 0.34},
	{Name: "m6i.large", VCPU: 2, ClockGHz: 2.9, FlopsPerCycle: 16, PriceHrUSD: 0.096},
}

// Classic $/Mflop anchors the modern rows are printed against.
const (
	// PaperPerMflopUSD is the paper's headline: "about $50/Mflop".
	PaperPerMflopUSD = 50
	// Grape5PerMflopUSD is the GRAPE-5 special-purpose figure the
	// paper cites as the number to beat ($7/Mflops).
	Grape5PerMflopUSD = 7
)

// FormatModernTable renders the instance table like the classic parts
// tables: peak GFLOPS, hourly $/TFLOP, and the five-year rent cost.
func FormatModernTable(rows []ModernMachine) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-16s %5s %6s %5s %9s %12s %13s\n",
		"Instance", "vCPU", "GHz", "f/cyc", "GFLOPS", "$/hr/TFLOP", "5yr price")
	for _, m := range rows {
		fmt.Fprintf(&b, "%-16s %5d %6.1f %5d %9.1f %12.3f %13.0f\n",
			m.Name, m.VCPU, m.ClockGHz, m.FlopsPerCycle,
			m.GFLOPS(), m.PerTflopHrUSD(), m.FiveYearUSD())
	}
	return b.String()
}
