package perfmodel

import (
	"math"
	"strings"
	"testing"

	"repro/internal/msg"
)

func TestTable1SumsToPaperTotal(t *testing.T) {
	if got := Total(Table1Loki); got != Table1Total {
		t.Fatalf("Table 1 total $%.0f, paper prints $%d", got, Table1Total)
	}
}

func TestLokiPriceMatchesTable(t *testing.T) {
	if Loki.PriceUSD != Table1Total {
		t.Fatalf("Loki.PriceUSD = %v", Loki.PriceUSD)
	}
	if Hyglac.PriceUSD != 50_498 {
		t.Fatalf("Hyglac price = %v (paper: $50,498 incl. tax)", Hyglac.PriceUSD)
	}
	if SC96.PriceUSD != 103_000 {
		t.Fatalf("SC96 price = %v (paper: $103k)", SC96.PriceUSD)
	}
}

func TestAug97SystemNear28k(t *testing.T) {
	// The paper: "A 16 processor 200MHz-2 Gbyte memory-50 Gbyte disk
	// system with BayStack switch would be $28k."
	got := Aug97SystemUSD()
	if got < 26_000 || got > 30_000 {
		t.Fatalf("Aug-97 system price $%.0f, paper says ~$28k", got)
	}
}

func TestMachineCalibrationReproducesPaperHeadlines(t *testing.T) {
	// Feeding the paper's own interaction counts through the model
	// must reproduce the paper's Gflops within a few percent (the
	// rates were calibrated from them, so this is a consistency check
	// of the arithmetic, like the paper's own flop accounting).
	cases := []struct {
		name      string
		m         *Machine
		flops     uint64
		regime    Regime
		wantGF    float64
		tolerance float64
	}{
		// 1e6 bodies, 4 steps, N^2: 1e6*1e6*38*4 flops in 239.3 s.
		{"E1 n2", &ASCIRed, 4 * 38 * 1_000_000 * 1_000_000, RegimeKernel, 635, 0.03},
		// First 5 treecode steps: 7.18e12 interactions in 632 s.
		{"E2b peak", &ASCIRed, 7_180_000_000_000 * 38, RegimeTreeEarly, 431, 0.03},
		// Sustained: 1.52e14 interactions over 9h24m on 4096 procs.
		{"E2a sustained", &ASCIRed4096, 152_000_000_000_000 * 38, RegimeTreeClustered, 170, 0.03},
		// Loki first 30 steps: 1.15e12 interactions in 36973 s.
		{"E3 early", &Loki, 1_150_000_000_000 * 38, RegimeTreeEarly, 1.19, 0.03},
		// Loki 10 days: 1.97e13 interactions in 850000 s.
		{"E3 sustained", &Loki, 19_700_000_000_000 * 38, RegimeTreeClustered, 0.879, 0.03},
	}
	for _, c := range cases {
		e := c.m.Model(c.flops, c.regime, msg.PhaseTraffic{})
		if rel := math.Abs(e.Gflops-c.wantGF) / c.wantGF; rel > c.tolerance {
			t.Errorf("%s: modeled %.1f Gflops, paper %.1f (rel %.3f)", c.name, e.Gflops, c.wantGF, rel)
		}
	}
}

func TestPricePerformanceHeadlines(t *testing.T) {
	// $58/Mflop for the 10-day Loki run at 879 Mflops.
	if got := PricePerMflop(Loki.PriceUSD, 879); math.Abs(got-58) > 1.0 {
		t.Fatalf("Loki 10-day $/Mflop = %.1f, paper says $58", got)
	}
	// $47/Mflop for the SC'96 benchmark at 2.19 Gflops on $103k.
	if got := PricePerMflop(SC96.PriceUSD, 2190); math.Abs(got-47) > 1.0 {
		t.Fatalf("SC96 $/Mflop = %.1f, paper says $47", got)
	}
}

func TestModelCommTerm(t *testing.T) {
	m := Loki
	e0 := m.Model(1e9, RegimeKernel, msg.PhaseTraffic{})
	e1 := m.Model(1e9, RegimeKernel, msg.PhaseTraffic{Msgs: 1000, Bytes: 11_500_000})
	// 1000 msgs at 208us = 0.208 s; 11.5 MB at 11.5 MB/s = 1 s.
	if d := e1.CommSec - 1.208; math.Abs(d) > 1e-9 {
		t.Fatalf("comm time %v, want 1.208", e1.CommSec)
	}
	if e1.TotalSec <= e0.TotalSec {
		t.Fatal("communication must slow the run")
	}
	if e1.Gflops >= e0.Gflops {
		t.Fatal("Gflops must drop with comm")
	}
}

func TestRegimeOrdering(t *testing.T) {
	for _, m := range []*Machine{&ASCIRed, &Loki, &Hyglac, &SC96} {
		k := m.Model(1e12, RegimeKernel, msg.PhaseTraffic{})
		e := m.Model(1e12, RegimeTreeEarly, msg.PhaseTraffic{})
		c := m.Model(1e12, RegimeTreeClustered, msg.PhaseTraffic{})
		// SC96 has a single published benchmark, so its two tree
		// efficiencies coincide; require monotone, not strict.
		if !(k.Gflops > e.Gflops && e.Gflops >= c.Gflops) {
			t.Fatalf("%s: regime ordering violated: %v %v %v", m.Name, k.Gflops, e.Gflops, c.Gflops)
		}
	}
}

func TestProcsAndString(t *testing.T) {
	if ASCIRed.Procs() != 6800 {
		t.Fatalf("ASCI Red procs = %d", ASCIRed.Procs())
	}
	if Loki.Procs() != 16 {
		t.Fatalf("Loki procs = %d", Loki.Procs())
	}
	e := Loki.Model(38_000_000_000, RegimeTreeEarly, msg.PhaseTraffic{})
	s := e.String()
	if !strings.Contains(s, "Loki") || !strings.Contains(s, "/Mflop") {
		t.Fatalf("estimate string: %q", s)
	}
}

func TestScaleInteractions(t *testing.T) {
	// log-N scaling: doubling ln(N) doubles interactions/body.
	got := ScaleInteractions(100, math.E, math.E*math.E)
	if math.Abs(got-200) > 1e-9 {
		t.Fatalf("ScaleInteractions = %v", got)
	}
	if ScaleInteractions(100, 1, 10) != 100 {
		t.Fatal("degenerate n0 must pass through")
	}
}

func TestFormatTable(t *testing.T) {
	s := FormatTable(Table1Loki)
	if !strings.Contains(s, "Pentium Pro") || !strings.Contains(s, "51379") {
		t.Fatalf("table rendering:\n%s", s)
	}
}
