// Package perfmodel holds the machine descriptions and the analytic
// time model that converts counted work (interactions, flops) and
// counted communication (messages, bytes from internal/msg) into
// modeled wall-clock time on the paper's platforms: ASCI Red, Loki,
// Hyglac, and the combined SC'96 system. It also encodes the paper's
// price tables (Tables 1 and 2) and computes the price/performance
// figures of merit.
//
// The model is deliberately the same arithmetic the paper uses:
// Gflops = interactions x 38 / wall-clock seconds. We substitute a
// calibrated per-processor kernel rate (derived from the paper's own
// published throughputs) plus a latency/bandwidth network term for
// the 1997 wall clock.
package perfmodel

import (
	"fmt"
	"math"

	"repro/internal/diag"
	"repro/internal/msg"
)

// Machine describes one platform.
type Machine struct {
	Name         string
	Nodes        int
	ProcsPerNode int
	ClockMHz     int
	MemoryMB     int

	// GravityMflops is the sustained per-processor rate on the
	// 38-flop gravity kernel (calibrated from the paper's O(N^2)
	// result, which is pure kernel: 635 Gflops / 6800 procs).
	GravityMflops float64
	// TreeEfficiency discounts the kernel rate for treecode runs
	// (tree build + traversal overhead is not counted as flops;
	// calibrated from 430 Gflops / 6800 procs early-simulation rate).
	TreeEfficiency float64
	// ClusteredEfficiency further discounts deep-clustering phases
	// (calibrated from the 170 Gflops sustained figure on 4096 procs).
	ClusteredEfficiency float64

	// LatencyUS is the round-trip message latency seen by the
	// application (microseconds); BandwidthMBs the per-node
	// uni-directional bandwidth (MB/s).
	LatencyUS    float64
	BandwidthMBs float64

	// PriceUSD is the as-built system price.
	PriceUSD float64
}

// Procs returns the total processor count.
func (m *Machine) Procs() int { return m.Nodes * m.ProcsPerNode }

// The paper's platforms. Rates are calibrated from the paper's own
// numbers, so the model reproduces the headline results when fed the
// paper's interaction counts; the reproduction then feeds it *our*
// measured interaction counts.
var (
	// ASCIRed in its April 1997 partial configuration: 3400 nodes x 2
	// PPro 200 available of 4536 total. Measured MPI numbers from the
	// paper: 290 MB/s per node, 41 us round trip with co-processor.
	ASCIRed = Machine{
		Name: "ASCI Red (6800 procs)", Nodes: 3400, ProcsPerNode: 2,
		ClockMHz: 200, MemoryMB: 3400 * 128,
		GravityMflops:       93.4, // 635 Gflops / 6800
		TreeEfficiency:      0.68, // 431 Gflops / 6800 / 93.4
		ClusteredEfficiency: 0.44, // 170 Gflops / 4096 / 93.4
		LatencyUS:           41, BandwidthMBs: 290,
		PriceUSD: 55_000_000, // DOE contract scale, for context only
	}
	// ASCIRed4096 is the 2048-node partition of the sustained run.
	ASCIRed4096 = Machine{
		Name: "ASCI Red (4096 procs)", Nodes: 2048, ProcsPerNode: 2,
		ClockMHz: 200, MemoryMB: 2048 * 128,
		GravityMflops: 93.4, TreeEfficiency: 0.68, ClusteredEfficiency: 0.44,
		LatencyUS: 41, BandwidthMBs: 290,
		PriceUSD: 55_000_000,
	}
	// Loki: 16 x PPro 200, switched fast ethernet. Paper: 11.5 MB/s
	// per port, 208 us round trip MPI. Rate calibrated from the
	// initial 30 steps: 1.19 Gflops / 16 = 74.4 Mflops/proc,
	// treecode-inclusive; kernel rate matches Red's CPUs.
	Loki = Machine{
		Name: "Loki (16 procs)", Nodes: 16, ProcsPerNode: 1,
		ClockMHz: 200, MemoryMB: 2048,
		GravityMflops:       93.4,
		TreeEfficiency:      0.80, // 74.4/93.4: less comm wait at 16 procs
		ClusteredEfficiency: 0.59, // 879 Mflops sustained / 16 / 93.4
		LatencyUS:           208, BandwidthMBs: 11.5,
		PriceUSD: 51_379,
	}
	// Hyglac: near-identical hardware, single 16-way switch.
	Hyglac = Machine{
		Name: "Hyglac (16 procs)", Nodes: 16, ProcsPerNode: 1,
		ClockMHz: 200, MemoryMB: 2048,
		GravityMflops:       93.4,
		TreeEfficiency:      0.80,
		ClusteredEfficiency: 0.64, // 950 Mflops vortex / 16 / 93.4
		LatencyUS:           208, BandwidthMBs: 11.5,
		PriceUSD: 50_498,
	}
	// SC96 is Loki+Hyglac connected on the SC'96 floor: 32 procs,
	// $103k including $3k of interconnect.
	SC96 = Machine{
		Name: "Loki+Hyglac (SC'96, 32 procs)", Nodes: 32, ProcsPerNode: 1,
		ClockMHz: 200, MemoryMB: 4096,
		GravityMflops:       93.4,
		TreeEfficiency:      0.73, // 2.19 Gflops / 32 / 93.4
		ClusteredEfficiency: 0.73,
		LatencyUS:           208, BandwidthMBs: 11.5,
		PriceUSD: 103_000,
	}
)

// Regime selects which calibrated efficiency applies.
type Regime int

const (
	// RegimeKernel models pure kernel work (the O(N^2) benchmark).
	RegimeKernel Regime = iota
	// RegimeTreeEarly models unclustered treecode steps.
	RegimeTreeEarly
	// RegimeTreeClustered models deep-clustering treecode steps.
	RegimeTreeClustered
)

func (m *Machine) rate(r Regime) float64 {
	switch r {
	case RegimeKernel:
		return m.GravityMflops
	case RegimeTreeEarly:
		return m.GravityMflops * m.TreeEfficiency
	case RegimeTreeClustered:
		return m.GravityMflops * m.ClusteredEfficiency
	default:
		panic("perfmodel: unknown regime")
	}
}

// Estimate is a modeled run.
type Estimate struct {
	Machine     *Machine
	Flops       uint64
	ComputeSec  float64
	CommSec     float64
	TotalSec    float64
	Gflops      float64
	PerMflopUSD float64
}

// Model converts counted flops plus the bottleneck rank's
// communication into a wall-clock estimate on machine m. comm may be
// zero-valued for compute-only estimates.
func (m *Machine) Model(flops uint64, regime Regime, comm msg.PhaseTraffic) Estimate {
	rate := m.rate(regime) * 1e6 * float64(m.Procs())
	e := Estimate{Machine: m, Flops: flops}
	e.ComputeSec = float64(flops) / rate
	e.CommSec = float64(comm.Msgs)*m.LatencyUS*1e-6 +
		float64(comm.Bytes)/(m.BandwidthMBs*1e6)
	e.TotalSec = e.ComputeSec + e.CommSec
	if e.TotalSec > 0 {
		e.Gflops = float64(flops) / e.TotalSec / 1e9
	}
	if e.Gflops > 0 {
		e.PerMflopUSD = m.PriceUSD / (e.Gflops * 1e3)
	}
	return e
}

// String renders the estimate in the paper's idiom.
func (e Estimate) String() string {
	return fmt.Sprintf("%s: %s over %.1f s (compute %.1f s + comm %.1f s), $%.0f/Mflop",
		e.Machine.Name, diag.Rate(e.Flops, e.TotalSec), e.TotalSec,
		e.ComputeSec, e.CommSec, e.PerMflopUSD)
}

// ScaleInteractions extrapolates a measured interactions-per-body
// count at n0 bodies to n bodies assuming the O(N log N) treecode
// profile: interactions/body grows with log N.
func ScaleInteractions(perBody float64, n0, n float64) float64 {
	if n0 <= 1 || n <= 1 {
		return perBody
	}
	return perBody * math.Log(n) / math.Log(n0)
}
