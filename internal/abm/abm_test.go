package abm

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/msg"
)

func TestRoundTripAligned(t *testing.T) {
	msg.Run(4, func(c *msg.Comm) {
		e := New[int, string](c, 8, 16, func(src int, reqs []int) []string {
			out := make([]string, len(reqs))
			for i, r := range reqs {
				out[i] = fmt.Sprintf("r%d:q%d:from%d", c.Rank(), r, src)
			}
			return out
		})
		// Every rank asks every rank (including itself) two questions.
		for d := 0; d < c.Size(); d++ {
			e.Post(d, 10*c.Rank()+d)
			e.Post(d, 100+d)
		}
		reps := e.Round()
		for d := 0; d < c.Size(); d++ {
			want0 := fmt.Sprintf("r%d:q%d:from%d", d, 10*c.Rank()+d, c.Rank())
			want1 := fmt.Sprintf("r%d:q%d:from%d", d, 100+d, c.Rank())
			if len(reps[d]) != 2 || reps[d][0] != want0 || reps[d][1] != want1 {
				t.Errorf("rank %d from %d: %v", c.Rank(), d, reps[d])
			}
		}
	})
}

func TestEmptyRound(t *testing.T) {
	// Ranks with nothing to ask must still serve.
	msg.Run(3, func(c *msg.Comm) {
		e := New[int, int](c, 8, 8, func(src int, reqs []int) []int {
			out := make([]int, len(reqs))
			for i, r := range reqs {
				out[i] = r * r
			}
			return out
		})
		if c.Rank() == 0 {
			e.Post(1, 7)
			e.Post(2, 9)
		}
		reps := e.Round()
		if c.Rank() == 0 {
			if reps[1][0] != 49 || reps[2][0] != 81 {
				t.Errorf("replies: %v", reps)
			}
		} else {
			for _, r := range reps {
				if len(r) != 0 {
					t.Errorf("rank %d got unexpected replies %v", c.Rank(), r)
				}
			}
		}
	})
}

func TestMultiRoundConvergence(t *testing.T) {
	// Chained requests: each reply spawns a follow-up until a depth
	// limit, mimicking a tree walk fetching deeper levels.
	var mu sync.Mutex
	total := 0
	msg.Run(4, func(c *msg.Comm) {
		e := New[int, int](c, 8, 8, func(src int, reqs []int) []int {
			out := make([]int, len(reqs))
			for i, r := range reqs {
				out[i] = r - 1
			}
			return out
		})
		depth := c.Rank() + 1 // ranks need different numbers of rounds
		e.Post((c.Rank()+1)%c.Size(), depth)
		got := 0
		for e.AnyPendingGlobal(false) {
			reps := e.Round()
			for d := range reps {
				for _, v := range reps[d] {
					got++
					if v > 0 {
						e.Post(d, v)
					}
				}
			}
		}
		mu.Lock()
		total += got
		mu.Unlock()
	})
	// Rank r posts depth r+1, generating r+1 replies: sum 1+2+3+4.
	if total != 10 {
		t.Fatalf("total replies %d, want 10", total)
	}
}

func TestCounters(t *testing.T) {
	msg.Run(2, func(c *msg.Comm) {
		e := New[int, int](c, 8, 8, func(src int, reqs []int) []int {
			return make([]int, len(reqs))
		})
		if c.Rank() == 0 {
			e.Post(1, 1)
			e.Post(1, 2)
			if !e.PendingLocal() {
				t.Error("pending should be true after Post")
			}
		}
		e.Round()
		if e.PendingLocal() {
			t.Error("pending should clear after Round")
		}
		if c.Rank() == 0 && e.Posted != 2 {
			t.Errorf("Posted = %d", e.Posted)
		}
		if c.Rank() == 1 && e.Served != 2 {
			t.Errorf("Served = %d", e.Served)
		}
		if e.Rounds != 1 {
			t.Errorf("Rounds = %d", e.Rounds)
		}
	})
}

func TestHandlerArityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on arity violation")
		}
	}()
	msg.Run(1, func(c *msg.Comm) {
		e := New[int, int](c, 8, 8, func(src int, reqs []int) []int {
			return nil // wrong arity
		})
		e.Post(0, 1)
		e.Round()
	})
}

// Steady-state rounds must allocate nothing: the engine recycles the
// drained posting queues, the exchange receive buffers, and the reply
// index, and the handler below reuses its own reply buffer. This pins
// the PR 5 queue-churn fix (one fresh [][]Req per round, previously).
func TestRoundZeroAllocSteadyState(t *testing.T) {
	msg.Run(1, func(c *msg.Comm) {
		var reps []int
		e := New[int, int](c, 8, 8, func(src int, reqs []int) []int {
			reps = reps[:0]
			for _, r := range reqs {
				reps = append(reps, r*2)
			}
			return reps
		})
		// Warm up: let every recycled buffer reach its steady capacity.
		for i := 0; i < 4; i++ {
			e.Post(0, i)
			e.Post(0, i+10)
			e.Round()
		}
		allocs := testing.AllocsPerRun(100, func() {
			e.Post(0, 1)
			e.Post(0, 2)
			out := e.Round()
			if len(out[0]) != 2 || out[0][0] != 2 || out[0][1] != 4 {
				t.Fatalf("bad replies: %v", out[0])
			}
		})
		if allocs != 0 {
			t.Fatalf("steady-state Round allocates %.1f objects/round, want 0", allocs)
		}
	})
}

// The round loop of a real walk posts to many destinations; make sure
// recycling holds across multi-rank worlds too (allocation counted on
// rank 0 only, others just serve).
func TestRoundRecyclesQueuesMultiRank(t *testing.T) {
	msg.Run(4, func(c *msg.Comm) {
		e := New[int, int](c, 8, 8, func(src int, reqs []int) []int {
			out := make([]int, len(reqs))
			for i, r := range reqs {
				out[i] = r + src
			}
			return out
		})
		for round := 0; round < 20; round++ {
			for d := 0; d < c.Size(); d++ {
				e.Post(d, round*10+d)
			}
			out := e.Round()
			for d := 0; d < c.Size(); d++ {
				if len(out[d]) != 1 || out[d][0] != round*10+d+c.Rank() {
					t.Errorf("round %d dst %d: %v", round, d, out[d])
				}
			}
		}
		if e.Rounds != 20 {
			t.Errorf("Rounds = %d", e.Rounds)
		}
	})
}

// BenchmarkRoundSteadyState is the guardrail for the queue-recycling
// fix: bytes/op must stay at zero for the engine's own machinery.
func BenchmarkRoundSteadyState(b *testing.B) {
	msg.Run(1, func(c *msg.Comm) {
		var reps []int
		e := New[int, int](c, 8, 8, func(src int, reqs []int) []int {
			reps = reps[:0]
			for _, r := range reqs {
				reps = append(reps, r*2)
			}
			return reps
		})
		for i := 0; i < 4; i++ {
			e.Post(0, i)
			e.Round()
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			e.Post(0, i)
			e.Post(0, i+1)
			e.Round()
		}
	})
}
