// Package abm implements the paper's "asynchronous batched messages"
// paradigm: instead of stalling the tree walk on every non-local
// access, requests for remote data are queued per destination while
// the walk context-switches to other work; queued batches are then
// exchanged in bulk, each side serves what it received with an active
// message-style handler, and replies return batched the same way.
//
// In this in-process reproduction a batch exchange is one collective
// round: every rank flushes its queues with an all-to-all, serves the
// requests that arrived, and collects the replies to its own
// requests. The engine guarantees replies come back aligned with the
// posted requests (per destination, in posting order), which is what
// lets the treecode insert fetched cells without any bookkeeping
// beyond the original key list.
package abm

import (
	"fmt"

	"repro/internal/msg"
	"repro/internal/trace"
)

// Engine batches Req values per destination rank and exchanges them
// in rounds, invoking Handler on the serving side.
type Engine[Req, Rep any] struct {
	c        *msg.Comm
	reqBytes int
	repBytes int
	// Handler serves a batch of requests from src, returning exactly
	// one reply per request, in order. The request slices are recycled
	// after the round completes; a handler must not retain them past
	// its own return.
	Handler func(src int, reqs []Req) []Rep
	queues  [][]Req
	// spare holds the previous round's drained queues (lengths reset,
	// capacities kept); Round swaps it with queues so steady-state
	// posting allocates nothing. The reply Alltoallv is what makes the
	// swap safe: a rank's Round only returns after every server has
	// read its request batches (the replies prove it), so by the time
	// the recycled arrays take new posts, nobody aliases them.
	spare [][]Req
	// arrived and repRecv are the reused outer receive buffers of the
	// two exchanges; replies is the reused per-source reply index.
	arrived [][]Req
	replies [][]Rep
	repRecv [][]Rep
	// Posted counts requests queued since construction (diagnostic).
	Posted uint64
	// Served counts requests this rank handled (diagnostic).
	Served uint64
	// Rounds counts exchange rounds executed.
	Rounds uint64
	// Trace, when non-nil, receives one "abm.round" span per Round
	// call on this rank's timeline (nil = off, zero cost).
	Trace *trace.Tracer
	// RepBytes, when set, gives each reply's wire size individually
	// and the reply exchange accounts batches as the sum over their
	// elements -- the hook for variable-size replies (a cell plus its
	// piggybacked prefetch subtree). When nil the fixed repBytes from
	// New is used.
	RepBytes func(Rep) int
	// OnReply, when set, is invoked on the calling goroutine as each
	// source's reply batch arrives during Round (in source order, the
	// local batch at its own position), instead of the caller reading
	// the returned slice afterwards. Early batches are processed while
	// later sources are still in flight, which is what lets a caller's
	// Progress hook act on freshly delivered data inside the same
	// round. Must not communicate; batches remain valid until the next
	// Round.
	OnReply func(src int, reps []Rep)
}

// New creates an engine on communicator c. reqBytes and repBytes are
// the logical wire sizes per request and per (fixed part of a) reply
// for traffic accounting.
func New[Req, Rep any](c *msg.Comm, reqBytes, repBytes int, handler func(src int, reqs []Req) []Rep) *Engine[Req, Rep] {
	return &Engine[Req, Rep]{
		c:        c,
		reqBytes: reqBytes,
		repBytes: repBytes,
		Handler:  handler,
		queues:   make([][]Req, c.Size()),
		spare:    make([][]Req, c.Size()),
		replies:  make([][]Rep, c.Size()),
	}
}

// Post queues one request for rank dst. Posting to the local rank is
// allowed; it is served locally during the next Round.
func (e *Engine[Req, Rep]) Post(dst int, r Req) {
	e.queues[dst] = append(e.queues[dst], r)
	e.Posted++
}

// PendingLocal reports whether this rank has unflushed requests.
func (e *Engine[Req, Rep]) PendingLocal() bool {
	for _, q := range e.queues {
		if len(q) > 0 {
			return true
		}
	}
	return false
}

// Round is a collective: all ranks must call it together. It flushes
// every queue, serves incoming batches with Handler, and returns the
// replies to this rank's requests, indexed by destination rank and
// aligned with posting order. Ranks with nothing to send still
// participate (they may be serving others). The returned slice (and
// the request batches handed to Handler) are valid until the next
// Round on this engine; steady-state rounds allocate nothing beyond
// what Handler itself allocates.
func (e *Engine[Req, Rep]) Round() [][]Rep {
	t0 := e.Trace.Now()
	defer func() { e.Trace.Span("abm.round", t0) }()
	e.Rounds++
	e.c.NoteRound(e.Rounds)
	out := e.queues
	e.queues = e.spare

	e.arrived = msg.AlltoallvInto(e.c, out, e.arrived, e.reqBytes)
	arrived := e.arrived
	replies := e.replies
	for src := range arrived {
		replies[src] = nil
		if len(arrived[src]) == 0 {
			continue
		}
		e.Served += uint64(len(arrived[src]))
		reps := e.Handler(src, arrived[src])
		if len(reps) != len(arrived[src]) {
			e.c.Abort(fmt.Errorf("abm: handler returned %d replies for %d requests from rank %d",
				len(reps), len(arrived[src]), src))
		}
		replies[src] = reps
	}
	switch {
	case e.OnReply != nil:
		bytesOf := e.RepBytes
		if bytesOf == nil {
			per := e.repBytes
			bytesOf = func(Rep) int { return per }
		}
		e.repRecv = msg.AlltoallvSizedFunc(e.c, replies, e.repRecv, bytesOf, e.OnReply)
	case e.RepBytes != nil:
		e.repRecv = msg.AlltoallvSizedInto(e.c, replies, e.repRecv, e.RepBytes)
	default:
		e.repRecv = msg.AlltoallvInto(e.c, replies, e.repRecv, e.repBytes)
	}
	// The reply exchange above is the synchronization point: every
	// server has finished reading this round's request batches, so the
	// drained queues can be recycled for posting.
	for d := range out {
		out[d] = out[d][:0]
	}
	e.spare = out
	return e.repRecv
}

// AnyPendingGlobal is a collective that reports whether any rank has
// pending work (its own unflushed requests or the caller-supplied
// extra condition). Used as the termination test of the round loop.
func (e *Engine[Req, Rep]) AnyPendingGlobal(extra bool) bool {
	local := 0
	if extra || e.PendingLocal() {
		local = 1
	}
	return msg.Allreduce(e.c, local, msg.MaxI, 4) != 0
}
