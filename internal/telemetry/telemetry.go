// Package telemetry is the live, in-flight side of the observability
// layer. Where internal/trace and internal/metrics answer questions
// after a run exits (Chrome timelines, RunReport JSON), this package
// answers them *while the run is going*: a lock-light per-step Sampler
// snapshots deltas of the engines' diag.Counters, msg traffic and
// physical invariants (energy, momentum, active fraction, rung
// occupancy, per-rank load imbalance) into a fixed-capacity ring of
// time-series samples; health monitors (monitor.go) evaluate every
// sample and turn "the run is quietly going wrong" into structured
// events; and an HTTP endpoint (http.go) serves the ring, the event
// log, a live RunReport, Prometheus text exposition of the metrics
// Registry, and net/http/pprof -- the same routes a simulation service
// would mount per world.
//
// Cost model, mirroring internal/trace:
//
//   - Off (nil *Sampler): Contribute is a nil-receiver no-op -- one
//     branch, zero allocations on the step path (pinned by
//     TestContributeOffZeroAllocs).
//   - On: each rank pays one uncontended slot mutex and a struct copy
//     per step; the last rank to arrive assembles the world sample
//     under the ring mutex. Nothing touches the force kernels or the
//     tree walks.
//
// Concurrency: every rank calls Contribute exactly once per global
// step, from its own goroutine, right after the step's collective
// completes. The per-slot mutexes make the handoff safe even if one
// rank races a full step ahead of the assembler.
package telemetry

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/diag"
	"repro/internal/metrics"
	"repro/internal/msg"
	"repro/internal/trace"
	"repro/internal/vec"
)

// MaxRungs bounds the rung-occupancy histogram carried by every
// sample (integrate.DefaultMaxRung is 6; 16 leaves headroom without
// growing samples past a cache line or two).
const MaxRungs = 16

// DefaultCapacity is the sample ring size used when Config.Capacity
// is zero: at one sample per step it holds hours of a production run's
// tail, in ~1 MB.
const DefaultCapacity = 4096

// RankSample is one rank's per-step contribution, built by the rank's
// own goroutine from state only it writes (its engine counters, its
// timer, its traffic record), which is what makes the sampler safe
// without world-wide locks. All totals are cumulative since the start
// of the run; the Sampler takes deltas.
type RankSample struct {
	// Counters is the rank's cumulative interaction/work counters.
	Counters diag.Counters
	// StepNs is the rank's own wall-clock for the step just finished,
	// the numerator of the load-imbalance statistic.
	StepNs int64
	// Phases is the cumulative per-phase seconds (diag.Timer
	// SnapshotSeconds; ownership passes to the sampler).
	Phases map[string]float64
	// Rounds/RemoteCells mirror the engine's request-round state.
	Rounds      int
	RemoteCells int
	// Sent is the rank's cumulative outbound traffic total.
	Sent msg.PhaseTraffic
	// Bodies is the rank's current local body count.
	Bodies int
	// Overlap accounting (cumulative): rank wall time inside walk
	// collectives, eval-worker busy time, and how much of the latter
	// ran inside the former. Zero when the pipeline is off.
	CommNs           int64
	EvalBusyNs       int64
	EvalDuringCommNs int64

	// HasEnergy marks Kinetic/Potential/Momentum as meaningful (the
	// gravity and SPH engines set it; vortex dynamics has no softened
	// potential to sum, so its drift would be noise).
	HasEnergy bool
	Kinetic   float64
	Potential float64
	Momentum  vec.V3

	// Stepping totals (cumulative), from the integrate scheduler.
	SubSteps     uint64
	FullEvals    uint64
	PartialEvals uint64
	ActiveSinks  uint64
	TotalSinks   uint64
	// Rungs is the rank's current rung occupancy (not cumulative).
	Rungs [MaxRungs]uint64
}

// Sample is one assembled world-wide time-series point: per-step
// deltas plus the invariants evaluated at the step boundary. The JSON
// names are the /series wire format.
type Sample struct {
	// Step numbers samples from 1; TMs is milliseconds since the
	// sampler started, StepMs the slowest rank's wall-clock for the
	// step.
	Step   int64   `json:"step"`
	TMs    float64 `json:"t_ms"`
	StepMs float64 `json:"step_ms"`

	// Work deltas under the paper's flop accounting.
	Interactions uint64  `json:"interactions"`
	Flops        uint64  `json:"flops"`
	FlopsRate    float64 `json:"flops_rate"`

	// Traffic deltas across all ranks.
	Msgs  uint64 `json:"msgs"`
	Bytes uint64 `json:"bytes"`

	// Invariants. EnergyDrift is (E - E0)/|E0| against the first
	// sample; MomentumErr is |P - P0|. Zero when no engine reported
	// energy.
	Energy      float64 `json:"energy"`
	EnergyDrift float64 `json:"energy_drift"`
	MomentumErr float64 `json:"momentum_err"`

	// ActiveFraction is this step's active sinks over total sinks
	// (1 for uniform stepping); Rungs the current global occupancy.
	ActiveFraction float64          `json:"active_fraction"`
	Rungs          [MaxRungs]uint64 `json:"rungs"`

	// Imbalance is max/mean of the per-rank step wall-clocks (1 =
	// perfectly balanced); the inverse of diag.Balance.Efficiency.
	Imbalance float64 `json:"imbalance"`

	// StallP99Ns is the current walk-stall p99 from the metrics
	// Registry (0 when no histogram is attached).
	StallP99Ns uint64 `json:"stall_p99_ns"`

	// OverlapFrac is this step's eval-during-comm over eval-busy
	// seconds (0 when the walk/eval pipeline is off or idle);
	// PrefetchHitRate this step's prefetch-used over prefetched cells.
	OverlapFrac     float64 `json:"overlap_frac"`
	PrefetchHitRate float64 `json:"prefetch_hit_rate"`

	Bodies int `json:"bodies"`
}

// Config sets up a Sampler.
type Config struct {
	// NP is the number of ranks that will Contribute per step.
	NP int
	// Capacity is the ring size (0 = DefaultCapacity).
	Capacity int
	// Registry, when non-nil, is read for the walk-stall p99 and
	// receives the sampler's own live gauges (telemetry_* series) so
	// /metrics always shows the latest sample.
	Registry *metrics.Registry
	// Trace, when non-nil, gets a MarkAll instant on every health
	// event, pinning the event onto all rank timelines.
	Trace *trace.Run
	// Monitors configures the health checks (monitor.go).
	Monitors MonitorConfig
	// Command names the run in LiveReport ("treebench", ...).
	Command string
}

// slot is one rank's contribution mailbox, mutex-guarded so the
// assembling rank can read it even if its owner races ahead.
type slot struct {
	mu sync.Mutex
	rs RankSample
	_  [32]byte // pad slots apart; adjacent ranks hammer adjacent slots
}

// totals is the cumulative aggregate the delta of each sample is taken
// against.
type totals struct {
	counters         diag.Counters
	msgs, bytes      uint64
	subSteps         uint64
	activeSinks      uint64
	totalSinks       uint64
	wallNs           int64
	evalBusyNs       int64
	evalDuringCommNs int64
}

// Sampler collects per-rank step contributions into a ring of Samples
// and runs the health monitors on each. All methods are safe for
// concurrent use; all are nil-receiver no-ops so a disabled sampler
// costs one branch per call site.
type Sampler struct {
	cfg   Config
	start time.Time

	slots   []slot
	arrived atomic.Int64

	// lastNs is the Now() of the latest assembled sample, the
	// no-progress monitor's heartbeat.
	lastNs atomic.Int64

	mu    sync.Mutex
	ring  []Sample
	head  int   // next write index once the ring is full
	n     int   // live samples (<= cap)
	steps int64 // samples ever assembled (monotonic step number)
	prev  totals
	e0    float64 // first sampled energy
	p0    vec.V3  // first sampled momentum
	seen  bool    // e0/p0 captured

	health *health
}

// NewSampler creates a sampler for np-rank contributions. Call once,
// before the world starts; hand the same *Sampler to every rank.
func NewSampler(cfg Config) *Sampler {
	if cfg.NP < 1 {
		cfg.NP = 1
	}
	if cfg.Capacity <= 0 {
		cfg.Capacity = DefaultCapacity
	}
	s := &Sampler{
		cfg:   cfg,
		start: time.Now(),
		slots: make([]slot, cfg.NP),
		ring:  make([]Sample, 0, cfg.Capacity),
	}
	s.health = newHealth(s)
	return s
}

// Close retires the background monitors (the no-progress watcher).
// Nil-safe no-op; idempotent.
func (s *Sampler) Close() {
	if s == nil {
		return
	}
	s.health.stopWatch()
}

// Contribute records one rank's step sample. When the last rank of
// the step arrives, the world sample is assembled, pushed into the
// ring, and handed to the health monitors. Nil-safe no-op, so the
// telemetry-off step path costs one branch and zero allocations.
func (s *Sampler) Contribute(rank int, rs RankSample) {
	if s == nil {
		return
	}
	sl := &s.slots[rank]
	sl.mu.Lock()
	sl.rs = rs
	sl.mu.Unlock()
	if int(s.arrived.Add(1)) == s.cfg.NP {
		s.arrived.Store(0)
		s.assemble()
	}
}

// now returns nanoseconds since the sampler started.
func (s *Sampler) now() int64 { return time.Since(s.start).Nanoseconds() }

// assemble folds the rank slots into one Sample: cumulative sums,
// then deltas against the previous assembly.
func (s *Sampler) assemble() {
	var cum totals
	var kin, pot float64
	var mom vec.V3
	hasEnergy := false
	var stepMaxNs, stepSumNs int64
	var rungs [MaxRungs]uint64
	bodies := 0
	for i := range s.slots {
		sl := &s.slots[i]
		sl.mu.Lock()
		rs := sl.rs
		sl.mu.Unlock()
		cum.counters.Add(rs.Counters)
		cum.msgs += rs.Sent.Msgs
		cum.bytes += rs.Sent.Bytes
		cum.subSteps += rs.SubSteps
		cum.activeSinks += rs.ActiveSinks
		cum.totalSinks += rs.TotalSinks
		cum.evalBusyNs += rs.EvalBusyNs
		cum.evalDuringCommNs += rs.EvalDuringCommNs
		if rs.HasEnergy {
			hasEnergy = true
			kin += rs.Kinetic
			pot += rs.Potential
			mom = mom.Add(rs.Momentum)
		}
		if rs.StepNs > stepMaxNs {
			stepMaxNs = rs.StepNs
		}
		stepSumNs += rs.StepNs
		for r, n := range rs.Rungs {
			rungs[r] += n
		}
		bodies += rs.Bodies
	}
	cum.wallNs = s.now()

	s.mu.Lock()
	s.steps++
	d := cum.counters.Sub(s.prev.counters)
	smp := Sample{
		Step:         s.steps,
		TMs:          float64(cum.wallNs) / 1e6,
		StepMs:       float64(stepMaxNs) / 1e6,
		Interactions: d.Interactions(),
		Flops:        d.Flops(),
		Msgs:         cum.msgs - s.prev.msgs,
		Bytes:        cum.bytes - s.prev.bytes,
		Rungs:        rungs,
		Bodies:       bodies,
	}
	if dw := cum.wallNs - s.prev.wallNs; dw > 0 {
		smp.FlopsRate = float64(smp.Flops) / (float64(dw) / 1e9)
	}
	if hasEnergy {
		smp.Energy = kin + pot
		if !s.seen {
			s.seen = true
			s.e0 = smp.Energy
			s.p0 = mom
		}
		if s.e0 != 0 {
			smp.EnergyDrift = (smp.Energy - s.e0) / abs(s.e0)
		}
		smp.MomentumErr = mom.Sub(s.p0).Norm()
	}
	if dt := cum.totalSinks - s.prev.totalSinks; dt > 0 {
		smp.ActiveFraction = float64(cum.activeSinks-s.prev.activeSinks) / float64(dt)
	}
	if stepSumNs > 0 {
		mean := float64(stepSumNs) / float64(len(s.slots))
		smp.Imbalance = float64(stepMaxNs) / mean
	}
	if s.cfg.Registry != nil {
		smp.StallP99Ns = s.cfg.Registry.Histogram(metrics.StallHistogram).Quantile(0.99)
	}
	if db := cum.evalBusyNs - s.prev.evalBusyNs; db > 0 {
		smp.OverlapFrac = float64(cum.evalDuringCommNs-s.prev.evalDuringCommNs) / float64(db)
	}
	if dp := d.Prefetched; dp > 0 {
		smp.PrefetchHitRate = float64(d.PrefetchUsed) / float64(dp)
	}
	s.prev = cum
	s.push(smp)
	s.mu.Unlock()

	s.lastNs.Store(cum.wallNs)
	s.publish(&smp)
	s.health.onSample(&smp)
}

// push appends a sample, evicting the oldest once full. Caller holds
// s.mu.
func (s *Sampler) push(smp Sample) {
	if len(s.ring) < cap(s.ring) {
		s.ring = append(s.ring, smp)
		s.n = len(s.ring)
		return
	}
	s.ring[s.head] = smp
	s.head++
	if s.head == cap(s.ring) {
		s.head = 0
	}
}

// publish mirrors the latest sample into the Registry as telemetry_*
// gauges, so Prometheus scrapes see live values without parsing
// /series.
func (s *Sampler) publish(smp *Sample) {
	reg := s.cfg.Registry
	if reg == nil {
		return
	}
	reg.Counter("telemetry_samples").Add(1)
	reg.Gauge("telemetry_step_ms").Set(smp.StepMs)
	reg.Gauge("telemetry_flops_rate").Set(smp.FlopsRate)
	reg.Gauge("telemetry_energy").Set(smp.Energy)
	reg.Gauge("telemetry_energy_drift").Set(smp.EnergyDrift)
	reg.Gauge("telemetry_active_fraction").Set(smp.ActiveFraction)
	reg.Gauge("telemetry_imbalance").Set(smp.Imbalance)
	reg.Gauge("telemetry_overlap_frac").Set(smp.OverlapFrac)
	reg.Gauge("telemetry_prefetch_hit_rate").Set(smp.PrefetchHitRate)
	reg.Gauge("telemetry_bodies").Set(float64(smp.Bodies))
}

// Samples returns the newest max samples oldest-first (max <= 0: all
// buffered). Nil-safe (nil).
func (s *Sampler) Samples(max int) []Sample {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Sample, 0, s.n)
	out = append(out, s.ring[s.head:]...)
	out = append(out, s.ring[:s.head]...)
	if max > 0 && len(out) > max {
		out = out[len(out)-max:]
	}
	return out
}

// Last returns the most recent sample, if any. Nil-safe.
func (s *Sampler) Last() (Sample, bool) {
	if s == nil {
		return Sample{}, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.n == 0 {
		return Sample{}, false
	}
	i := s.head - 1
	if i < 0 {
		i = len(s.ring) - 1
	}
	return s.ring[i], true
}

// Events returns the health-event log oldest-first. Nil-safe (nil).
func (s *Sampler) Events() []HealthEvent {
	if s == nil {
		return nil
	}
	return s.health.events()
}

// LiveReport assembles a mid-run RunReport from the latest per-rank
// snapshots -- the same schema the drivers write at exit, built
// entirely from sampler-owned copies so it is safe to call from the
// HTTP goroutine while every rank keeps running. Nil-safe (nil).
func (s *Sampler) LiveReport() *metrics.RunReport {
	if s == nil {
		return nil
	}
	inputs := make([]metrics.RankInput, len(s.slots))
	bodies := 0
	for i := range s.slots {
		sl := &s.slots[i]
		sl.mu.Lock()
		rs := sl.rs
		phases := make(map[string]float64, len(rs.Phases))
		for k, v := range rs.Phases {
			phases[k] = v
		}
		sl.mu.Unlock()
		inputs[i] = metrics.RankInput{
			Counters:     rs.Counters,
			PhaseSeconds: phases,
			Rounds:       rs.Rounds,
			RemoteCells:  rs.RemoteCells,
			SentMsgs:     rs.Sent.Msgs,
			SentBytes:    rs.Sent.Bytes,
		}
		bodies += rs.Bodies
	}
	wall := float64(s.now()) / 1e9
	rep := metrics.BuildReport(s.cfg.Command, bodies, wall, inputs, nil, s.cfg.Registry)
	return rep
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
