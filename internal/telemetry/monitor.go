// Health monitors: the in-band complement to the msg stall watchdog.
// The watchdog catches a world that stops moving; these catch a world
// that keeps moving while quietly going wrong -- energy drifting past
// tolerance, one rank dominating every step, walk-stall latencies
// blowing up -- plus a no-progress check that fires when samples stop
// arriving at all (e.g. an injected rank stall: the world is alive in
// the watchdog's eyes for its whole quiet period, but the telemetry
// heartbeat has already flatlined).
//
// Each monitor is edge-triggered with re-arm: it emits one structured
// HealthEvent when its condition first becomes true and arms again
// once the condition clears, so a long excursion produces one event,
// not one per step. Every event is appended to a bounded log (served
// at /health), logged through slog with step attributes, pinned onto
// every rank's trace timeline via trace.Run.MarkAll, and -- for
// critical events when an Escalate hook is wired -- handed to the
// driver, which typically routes it to msg.World.Abort.

package telemetry

import (
	"fmt"
	"log/slog"
	"sync"
	"time"
)

// Severities of a HealthEvent.
const (
	SeverityWarn     = "warn"
	SeverityCritical = "critical"
)

// Monitor names, the HealthEvent.Monitor values and the trace-mark
// suffixes ("health.<name>").
const (
	MonitorEnergyDrift = "energy_drift"
	MonitorImbalance   = "load_imbalance"
	MonitorWalkStall   = "walk_stall"
	MonitorNoProgress  = "no_progress"
)

// HealthEvent is one structured monitor firing. The JSON names are
// the /health wire format.
type HealthEvent struct {
	Time      time.Time `json:"time"`
	Step      int64     `json:"step"`
	Monitor   string    `json:"monitor"`
	Severity  string    `json:"severity"`
	Message   string    `json:"message"`
	Value     float64   `json:"value"`
	Threshold float64   `json:"threshold"`
}

// MonitorConfig sets the health thresholds. The zero value disables
// every monitor; DefaultMonitors returns the production defaults.
type MonitorConfig struct {
	// EnergyDriftTol fires energy_drift (critical) when
	// |(E-E0)/E0| exceeds it. 0 disables.
	EnergyDriftTol float64
	// ImbalanceMax fires load_imbalance (warn) when max/mean of the
	// per-rank step wall-clocks exceeds it for ImbalanceRuns
	// consecutive samples. 0 disables.
	ImbalanceMax float64
	// ImbalanceRuns is the consecutive-sample debounce (0 = 3): one
	// slow step is scheduling noise, a streak is a sick decomposition.
	ImbalanceRuns int
	// StallP99Max fires walk_stall (warn) when the walk-stall p99
	// exceeds it. 0 disables.
	StallP99Max time.Duration
	// NoProgress fires no_progress (critical) when no sample has been
	// assembled for this long; checked by a background watcher started
	// with StartWatch and on every /health request. 0 disables.
	NoProgress time.Duration
	// Escalate, when non-nil, receives every critical event -- the
	// hook drivers use to route a sick run into World.Abort.
	Escalate func(HealthEvent)
	// Log receives every event as a structured record (nil =
	// slog.Default()).
	Log *slog.Logger
}

// DefaultMonitors returns the production thresholds: 2% energy drift,
// 4x sustained imbalance, walk-stall p99 over 500ms. NoProgress stays
// off; drivers enable it with their own quiet period (it must exceed
// the slowest expected step).
func DefaultMonitors() MonitorConfig {
	return MonitorConfig{
		EnergyDriftTol: 0.02,
		ImbalanceMax:   4,
		ImbalanceRuns:  3,
		StallP99Max:    500 * time.Millisecond,
	}
}

// maxEvents bounds the event log; a flapping monitor cannot exhaust
// memory. The newest events win (oldest evicted), matching the sample
// ring's policy.
const maxEvents = 256

// health is the sampler's monitor state.
type health struct {
	s   *Sampler
	cfg MonitorConfig

	mu     sync.Mutex
	log    []HealthEvent
	firing map[string]bool // edge-trigger state per monitor
	imbal  int             // consecutive over-threshold samples

	watchStop chan struct{}
	watchOnce sync.Once
}

func newHealth(s *Sampler) *health {
	h := &health{s: s, cfg: s.cfg.Monitors, firing: map[string]bool{}}
	if h.cfg.ImbalanceRuns <= 0 {
		h.cfg.ImbalanceRuns = 3
	}
	if h.cfg.NoProgress > 0 {
		h.watchStop = make(chan struct{})
		go h.watch()
	}
	return h
}

func (h *health) logger() *slog.Logger {
	if h.cfg.Log != nil {
		return h.cfg.Log
	}
	return slog.Default()
}

// onSample evaluates every per-sample monitor.
func (h *health) onSample(smp *Sample) {
	cfg := &h.cfg
	if cfg.EnergyDriftTol > 0 && smp.Energy != 0 {
		h.edge(MonitorEnergyDrift, abs(smp.EnergyDrift) > cfg.EnergyDriftTol, func() HealthEvent {
			return HealthEvent{
				Step: smp.Step, Monitor: MonitorEnergyDrift, Severity: SeverityCritical,
				Value: smp.EnergyDrift, Threshold: cfg.EnergyDriftTol,
				Message: fmt.Sprintf("energy drift %.4g exceeds tolerance %.4g (E=%.6g, E0=%.6g)",
					smp.EnergyDrift, cfg.EnergyDriftTol, smp.Energy, h.s.e0),
			}
		})
	}
	if cfg.ImbalanceMax > 0 && smp.Imbalance > 0 {
		// The streak counter lives under h.mu: two ranks can assemble
		// consecutive steps concurrently (one rank racing a step ahead
		// is within the sampler's contract), so the debounce must not
		// be a bare field increment.
		streak := h.bumpImbal(smp.Imbalance > cfg.ImbalanceMax)
		h.edge(MonitorImbalance, streak >= cfg.ImbalanceRuns, func() HealthEvent {
			return HealthEvent{
				Step: smp.Step, Monitor: MonitorImbalance, Severity: SeverityWarn,
				Value: smp.Imbalance, Threshold: cfg.ImbalanceMax,
				Message: fmt.Sprintf("per-rank step imbalance %.2fx over %d consecutive samples (threshold %.2fx)",
					smp.Imbalance, streak, cfg.ImbalanceMax),
			}
		})
	}
	if cfg.StallP99Max > 0 {
		h.edge(MonitorWalkStall, smp.StallP99Ns > uint64(cfg.StallP99Max.Nanoseconds()), func() HealthEvent {
			return HealthEvent{
				Step: smp.Step, Monitor: MonitorWalkStall, Severity: SeverityWarn,
				Value: float64(smp.StallP99Ns), Threshold: float64(cfg.StallP99Max.Nanoseconds()),
				Message: fmt.Sprintf("walk-stall p99 %v exceeds %v",
					time.Duration(smp.StallP99Ns), cfg.StallP99Max),
			}
		})
	}
	// A fresh sample is progress: re-arm the no-progress monitor.
	h.rearm(MonitorNoProgress)
}

// CheckProgress evaluates the no-progress monitor now -- called by the
// background watcher and by every /health request, so even a pull-only
// deployment (no watcher) detects a flatlined run on inspection.
func (h *health) checkProgress() {
	quiet := h.cfg.NoProgress
	if quiet <= 0 {
		return
	}
	last := h.s.lastNs.Load() // 0 until the first sample: quiet runs from start
	idle := time.Duration(h.s.now() - last)
	h.edge(MonitorNoProgress, idle > quiet, func() HealthEvent {
		var step int64
		if smp, ok := h.s.Last(); ok {
			step = smp.Step
		}
		return HealthEvent{
			Step: step, Monitor: MonitorNoProgress, Severity: SeverityCritical,
			Value: idle.Seconds(), Threshold: quiet.Seconds(),
			Message: fmt.Sprintf("no step sample for %v (threshold %v): run is stalled or a rank stopped contributing",
				idle.Round(time.Millisecond), quiet),
		}
	})
}

// watch is the background no-progress poller.
func (h *health) watch() {
	tick := time.NewTicker(h.cfg.NoProgress / 4)
	defer tick.Stop()
	for {
		select {
		case <-h.watchStop:
			return
		case <-tick.C:
			h.checkProgress()
		}
	}
}

func (h *health) stopWatch() {
	if h.watchStop == nil {
		return
	}
	h.watchOnce.Do(func() { close(h.watchStop) })
}

// edge fires ev() once per excursion: on the false->true transition of
// cond. make is only called when the event actually fires.
func (h *health) edge(monitor string, cond bool, make func() HealthEvent) {
	h.mu.Lock()
	if !cond {
		h.firing[monitor] = false
		h.mu.Unlock()
		return
	}
	if h.firing[monitor] {
		h.mu.Unlock()
		return
	}
	h.firing[monitor] = true
	ev := make()
	ev.Time = time.Now()
	if len(h.log) == maxEvents {
		copy(h.log, h.log[1:])
		h.log = h.log[:maxEvents-1]
	}
	h.log = append(h.log, ev)
	h.mu.Unlock()

	h.emit(ev)
}

// bumpImbal advances (or resets) the imbalance streak under the
// monitor lock and returns the new streak length.
func (h *health) bumpImbal(over bool) int {
	h.mu.Lock()
	defer h.mu.Unlock()
	if over {
		h.imbal++
	} else {
		h.imbal = 0
	}
	return h.imbal
}

// rearm clears a monitor's firing state without emitting.
func (h *health) rearm(monitor string) {
	h.mu.Lock()
	h.firing[monitor] = false
	h.mu.Unlock()
}

// emit routes a fired event: structured log, trace mark on every rank
// timeline, escalation for criticals.
func (h *health) emit(ev HealthEvent) {
	lg := h.logger()
	attrs := []any{
		"monitor", ev.Monitor, "step", ev.Step,
		"value", ev.Value, "threshold", ev.Threshold,
	}
	if ev.Severity == SeverityCritical {
		lg.Error("health: "+ev.Message, attrs...)
	} else {
		lg.Warn("health: "+ev.Message, attrs...)
	}
	h.s.cfg.Trace.MarkAll("health." + ev.Monitor)
	if ev.Severity == SeverityCritical && h.cfg.Escalate != nil {
		h.cfg.Escalate(ev)
	}
}

// events returns the log oldest-first.
func (h *health) events() []HealthEvent {
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]HealthEvent(nil), h.log...)
}

// HealthError adapts a critical HealthEvent into an error for
// World.Abort escalation.
type HealthError struct{ Event HealthEvent }

func (e *HealthError) Error() string {
	return fmt.Sprintf("telemetry: health monitor %s fired: %s", e.Event.Monitor, e.Event.Message)
}
