// The one structured logger every command shares. Drivers used to mix
// log.Printf, fmt.Fprintln(os.Stderr, ...) and the watchdog's text
// dump; routing them all through a single slog JSON handler makes
// health events, watchdog dumps and driver chatter interleave as one
// machine-parseable stream (satellite of ISSUE 8).

package telemetry

import (
	"io"
	"log/slog"
)

// NewLogger returns a JSON slog.Logger writing to w, stamped with the
// command name. Drivers call this once at startup and pass the result
// (or a With-derived child) everywhere a logger is accepted.
func NewLogger(w io.Writer, command string) *slog.Logger {
	h := slog.NewJSONHandler(w, &slog.HandlerOptions{Level: slog.LevelInfo})
	return slog.New(h).With("cmd", command)
}

// RankLogger derives a per-rank child logger: every record carries the
// rank attribute, so per-rank lines from a parallel world sort and
// filter cleanly.
func RankLogger(lg *slog.Logger, rank int) *slog.Logger {
	if lg == nil {
		lg = slog.Default()
	}
	return lg.With("rank", rank)
}
