// Prometheus text exposition (version 0.0.4) of a metrics.Registry:
// counters and gauges typed as such, histograms flattened to the
// summary convention (<name>{quantile="..."} plus _sum and _count).
// Hand-rolled because the repo deliberately has no external
// dependencies; the format is four line shapes and a comment.

package telemetry

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/metrics"
)

// WritePrometheus writes reg in the Prometheus text exposition format.
// A nil registry writes nothing (an empty exposition is valid).
func WritePrometheus(w io.Writer, reg *metrics.Registry) {
	counters := reg.Counters()
	names := make([]string, 0, len(counters))
	for n := range counters {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		pn := promName(n)
		fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", pn, pn, counters[n])
	}

	gauges := reg.Gauges()
	names = names[:0]
	for n := range gauges {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		pn := promName(n)
		fmt.Fprintf(w, "# TYPE %s gauge\n%s %g\n", pn, pn, gauges[n])
	}

	hists := reg.Snapshots()
	names = names[:0]
	for n := range hists {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		h := hists[n]
		pn := promName(n)
		fmt.Fprintf(w, "# TYPE %s summary\n", pn)
		fmt.Fprintf(w, "%s{quantile=\"0.5\"} %d\n", pn, h.P50)
		fmt.Fprintf(w, "%s{quantile=\"0.9\"} %d\n", pn, h.P90)
		fmt.Fprintf(w, "%s{quantile=\"0.99\"} %d\n", pn, h.P99)
		fmt.Fprintf(w, "%s_sum %d\n", pn, h.Sum)
		fmt.Fprintf(w, "%s_count %d\n", pn, h.Count)
	}
}

// promName maps a registry name onto the Prometheus charset
// [a-zA-Z0-9_:]; anything else becomes '_'. Registry names are already
// snake_case, so this is a guard, not a renamer.
func promName(s string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_', r == ':':
			return r
		default:
			return '_'
		}
	}, s)
}
