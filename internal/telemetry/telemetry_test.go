package telemetry

import (
	"io"
	"log/slog"
	"testing"
	"time"

	"repro/internal/diag"
	"repro/internal/metrics"
	"repro/internal/msg"
	"repro/internal/trace"
)

// discard silences monitor logging in tests.
func discard() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

// The telemetry-off cost model: a nil sampler's Contribute must be one
// branch and zero allocations, since every driver leaves the call in
// the step path unconditionally.
func TestContributeOffZeroAllocs(t *testing.T) {
	var s *Sampler
	rs := RankSample{
		Counters: diag.Counters{PP: 1000},
		StepNs:   12345,
		Sent:     msg.PhaseTraffic{Msgs: 10, Bytes: 1 << 20},
	}
	if allocs := testing.AllocsPerRun(200, func() {
		s.Contribute(0, rs)
	}); allocs != 0 {
		t.Fatalf("nil-sampler Contribute allocates %v per call, want 0", allocs)
	}
}

// rank builds a cumulative RankSample the way the engines do.
func rank(pp uint64, stepNs int64, msgs, bytes uint64) RankSample {
	return RankSample{
		Counters: diag.Counters{PP: pp},
		StepNs:   stepNs,
		Sent:     msg.PhaseTraffic{Msgs: msgs, Bytes: bytes},
		Bodies:   100,
	}
}

// Contributions are cumulative; samples must carry per-step deltas,
// the slowest rank's wall-clock, and max/mean imbalance.
func TestSamplerDeltas(t *testing.T) {
	s := NewSampler(Config{NP: 2, Monitors: MonitorConfig{Log: discard()}})
	defer s.Close()

	s.Contribute(0, rank(100, 10e6, 5, 1000))
	s.Contribute(1, rank(50, 30e6, 3, 500))
	smp, ok := s.Last()
	if !ok {
		t.Fatal("no sample after both ranks contributed")
	}
	if smp.Step != 1 || smp.Interactions != 150 {
		t.Fatalf("sample 1 = step %d, %d interactions; want step 1, 150", smp.Step, smp.Interactions)
	}
	if smp.Flops != 150*diag.FlopsPerInteraction {
		t.Fatalf("flops = %d", smp.Flops)
	}
	if smp.Msgs != 8 || smp.Bytes != 1500 {
		t.Fatalf("traffic = %d msgs %d bytes, want 8/1500", smp.Msgs, smp.Bytes)
	}
	if smp.StepMs != 30 {
		t.Fatalf("StepMs = %g, want the slowest rank's 30", smp.StepMs)
	}
	// max/mean = 30 / ((10+30)/2) = 1.5
	if smp.Imbalance < 1.49 || smp.Imbalance > 1.51 {
		t.Fatalf("imbalance = %g, want 1.5", smp.Imbalance)
	}
	if smp.Bodies != 200 {
		t.Fatalf("bodies = %d", smp.Bodies)
	}

	// Second step: cumulative counters grow; the sample is the delta.
	s.Contribute(0, rank(300, 10e6, 9, 2000))
	s.Contribute(1, rank(80, 10e6, 5, 700))
	smp, _ = s.Last()
	if smp.Step != 2 || smp.Interactions != 230 {
		t.Fatalf("sample 2 = step %d, %d interactions; want step 2, 230 (delta)", smp.Step, smp.Interactions)
	}
	if smp.Msgs != 6 || smp.Bytes != 1200 {
		t.Fatalf("traffic delta = %d/%d, want 6/1200", smp.Msgs, smp.Bytes)
	}
	if smp.Imbalance != 1 {
		t.Fatalf("balanced step has imbalance %g, want 1", smp.Imbalance)
	}
}

// The ring keeps the newest Capacity samples; Samples returns them
// oldest-first and honors the max limit.
func TestRingEviction(t *testing.T) {
	s := NewSampler(Config{NP: 1, Capacity: 4, Monitors: MonitorConfig{Log: discard()}})
	defer s.Close()
	for i := 1; i <= 6; i++ {
		s.Contribute(0, rank(uint64(i*10), 1e6, 0, 0))
	}
	all := s.Samples(0)
	if len(all) != 4 {
		t.Fatalf("ring holds %d samples, want 4", len(all))
	}
	if all[0].Step != 3 || all[3].Step != 6 {
		t.Fatalf("ring spans steps %d..%d, want 3..6 (oldest evicted)", all[0].Step, all[3].Step)
	}
	for i := 1; i < len(all); i++ {
		if all[i].Step != all[i-1].Step+1 {
			t.Fatalf("samples out of order: %v", all)
		}
	}
	newest := s.Samples(2)
	if len(newest) != 2 || newest[0].Step != 5 || newest[1].Step != 6 {
		t.Fatalf("Samples(2) = steps %v, want [5 6]", newest)
	}
	last, _ := s.Last()
	if last.Step != 6 {
		t.Fatalf("Last = step %d, want 6", last.Step)
	}
}

// energyRank contributes a fixed-energy sample.
func energyRank(energy float64) RankSample {
	return RankSample{HasEnergy: true, Kinetic: 0, Potential: energy, StepNs: 1e6}
}

// The energy-drift monitor is edge-triggered with re-arm: one critical
// event per excursion, however long it lasts.
func TestEnergyDriftMonitorEdgeTriggered(t *testing.T) {
	s := NewSampler(Config{NP: 1, Monitors: MonitorConfig{
		EnergyDriftTol: 0.01, Log: discard(),
	}})
	defer s.Close()

	s.Contribute(0, energyRank(-1.0)) // E0 baseline
	s.Contribute(0, energyRank(-1.0))
	if evs := s.Events(); len(evs) != 0 {
		t.Fatalf("events on steady energy: %+v", evs)
	}

	s.Contribute(0, energyRank(-1.05)) // 5% drift
	s.Contribute(0, energyRank(-1.05)) // excursion continues
	evs := s.Events()
	if len(evs) != 1 {
		t.Fatalf("%d events for one excursion, want 1 (edge-triggered)", len(evs))
	}
	ev := evs[0]
	if ev.Monitor != MonitorEnergyDrift || ev.Severity != SeverityCritical {
		t.Fatalf("event = %+v", ev)
	}
	if ev.Value > -0.049 || ev.Value < -0.051 {
		t.Fatalf("drift value = %g, want -0.05", ev.Value)
	}

	s.Contribute(0, energyRank(-1.0))  // back in tolerance: re-arms
	s.Contribute(0, energyRank(-1.05)) // second excursion
	if evs := s.Events(); len(evs) != 2 {
		t.Fatalf("%d events after a second excursion, want 2", len(evs))
	}
}

// Imbalance must persist for ImbalanceRuns consecutive samples before
// firing: one slow step is scheduling noise.
func TestImbalanceDebounce(t *testing.T) {
	s := NewSampler(Config{NP: 2, Monitors: MonitorConfig{
		ImbalanceMax: 1.5, ImbalanceRuns: 3, Log: discard(),
	}})
	defer s.Close()

	skewed := func() {
		s.Contribute(0, RankSample{StepNs: 1e6})
		s.Contribute(1, RankSample{StepNs: 9e6}) // max/mean = 1.8
	}
	skewed()
	skewed()
	if evs := s.Events(); len(evs) != 0 {
		t.Fatalf("fired after %d skewed samples, want debounce of 3", 2)
	}
	skewed()
	evs := s.Events()
	if len(evs) != 1 || evs[0].Monitor != MonitorImbalance || evs[0].Severity != SeverityWarn {
		t.Fatalf("events = %+v, want one load_imbalance warn", evs)
	}

	// A balanced sample resets the streak; two more skewed ones stay
	// below the debounce.
	s.Contribute(0, RankSample{StepNs: 5e6})
	s.Contribute(1, RankSample{StepNs: 5e6})
	skewed()
	skewed()
	if evs := s.Events(); len(evs) != 1 {
		t.Fatalf("debounce did not reset: %d events", len(evs))
	}
}

// The walk-stall monitor reads the registry's stall histogram, and
// every fired event is pinned onto all rank trace timelines as a
// "health.<monitor>" instant.
func TestWalkStallMonitorMarksTrace(t *testing.T) {
	reg := metrics.NewRegistry()
	run := trace.NewRun(2)
	s := NewSampler(Config{NP: 1, Registry: reg, Trace: run, Monitors: MonitorConfig{
		StallP99Max: time.Millisecond, Log: discard(),
	}})
	defer s.Close()

	reg.Histogram(metrics.StallHistogram).Observe(uint64(50 * time.Millisecond))
	s.Contribute(0, rank(10, 1e6, 0, 0))
	evs := s.Events()
	if len(evs) != 1 || evs[0].Monitor != MonitorWalkStall {
		t.Fatalf("events = %+v, want one walk_stall", evs)
	}

	marks := 0
	for _, ev := range run.Events() {
		if ev.Kind == trace.KindInstant && ev.Name == "health."+MonitorWalkStall {
			marks++
		}
	}
	if marks != run.Size() {
		t.Fatalf("%d trace marks, want one per rank (%d)", marks, run.Size())
	}
}

// The no-progress monitor fires when samples stop arriving, re-arms on
// the next sample, and fires again on the next flatline.
func TestNoProgressMonitor(t *testing.T) {
	s := NewSampler(Config{NP: 1, Monitors: MonitorConfig{
		NoProgress: 30 * time.Millisecond, Log: discard(),
	}})
	defer s.Close()

	waitEvents := func(n int) []HealthEvent {
		deadline := time.Now().Add(5 * time.Second)
		for time.Now().Before(deadline) {
			if evs := s.Events(); len(evs) >= n {
				return evs
			}
			time.Sleep(5 * time.Millisecond)
		}
		t.Fatalf("no-progress monitor never reached %d events: %+v", n, s.Events())
		return nil
	}

	evs := waitEvents(1)
	if evs[0].Monitor != MonitorNoProgress || evs[0].Severity != SeverityCritical {
		t.Fatalf("event = %+v", evs[0])
	}

	// A sample is progress: the monitor re-arms, then trips again when
	// the flatline resumes.
	s.Contribute(0, rank(10, 1e6, 0, 0))
	evs = waitEvents(2)
	if evs[1].Monitor != MonitorNoProgress {
		t.Fatalf("second event = %+v", evs[1])
	}
}

// Critical events reach the Escalate hook (the driver's World.Abort
// route); warns do not.
func TestEscalateOnlyCriticals(t *testing.T) {
	var escalated []HealthEvent
	s := NewSampler(Config{NP: 2, Monitors: MonitorConfig{
		EnergyDriftTol: 0.01, ImbalanceMax: 1.5, ImbalanceRuns: 1, Log: discard(),
		Escalate: func(ev HealthEvent) { escalated = append(escalated, ev) },
	}})
	defer s.Close()

	// Skewed step clocks (warn) plus drifted energy (critical).
	s.Contribute(0, RankSample{StepNs: 1e6, HasEnergy: true, Potential: -1.0})
	s.Contribute(1, RankSample{StepNs: 9e6})
	s.Contribute(0, RankSample{StepNs: 1e6, HasEnergy: true, Potential: -1.1})
	s.Contribute(1, RankSample{StepNs: 9e6})

	if len(escalated) != 1 || escalated[0].Monitor != MonitorEnergyDrift {
		t.Fatalf("escalated = %+v, want only the energy_drift critical", escalated)
	}
	if got := len(s.Events()); got != 2 {
		t.Fatalf("event log has %d entries, want 2 (warn + critical)", got)
	}
}

// LiveReport builds a mid-run RunReport from sampler-owned copies: the
// detached BuildReport path (no world, no live timers).
func TestLiveReport(t *testing.T) {
	s := NewSampler(Config{NP: 2, Command: "bench", Monitors: MonitorConfig{Log: discard()}})
	defer s.Close()

	rs0 := rank(100, 10e6, 5, 1000)
	rs0.Phases = map[string]float64{"walk": 2.0, "treebuild": 1.0}
	rs0.Rounds = 3
	rs1 := rank(60, 10e6, 7, 2000)
	rs1.Phases = map[string]float64{"walk": 2.5}
	s.Contribute(0, rs0)
	s.Contribute(1, rs1)

	rep := s.LiveReport()
	if rep == nil {
		t.Fatal("nil live report")
	}
	if rep.Command != "bench" || rep.NP != 2 {
		t.Fatalf("report header = %s np=%d", rep.Command, rep.NP)
	}
	if rep.Totals.Interactions != 160 {
		t.Fatalf("totals interactions = %d, want 160", rep.Totals.Interactions)
	}
	if rep.Totals.Msgs != 12 || rep.Totals.Bytes != 3000 {
		t.Fatalf("totals traffic = %d/%d, want detached sent sums 12/3000", rep.Totals.Msgs, rep.Totals.Bytes)
	}
	if rep.Ranks[0].PhaseSeconds["walk"] != 2.0 || rep.Ranks[1].SentBytes != 2000 {
		t.Fatalf("rank rows = %+v", rep.Ranks)
	}
	if len(rep.Phases) == 0 {
		t.Fatal("no phase balance rows from detached PhaseSeconds")
	}

	var nils *Sampler
	if nils.LiveReport() != nil {
		t.Fatal("nil sampler produced a report")
	}
}
