// The HTTP debug endpoint: the routes a simulation service would
// mount per world, served here by every driver under -http=:addr.
//
//	/            route index (text)
//	/metrics     Prometheus text exposition of the metrics Registry
//	/series      JSON time-series ring (?n=K limits to the newest K)
//	/health      JSON health-event log + liveness verdict
//	/report      live mid-run RunReport (same schema as -metrics out.json)
//	/debug/pprof net/http/pprof profiles
//
// Everything served is built from sampler-owned copies, so handlers
// never touch engine state and are safe while every rank keeps
// running.

package telemetry

import (
	"encoding/json"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"

	"repro/internal/metrics"
)

// Endpoint is a live telemetry HTTP server bound to one Sampler.
type Endpoint struct {
	Addr string // actual listen address (resolves ":0")
	srv  *http.Server
	ln   net.Listener
}

// Handler returns the telemetry route mux for s. Usable standalone
// (tests, or an embedding service that owns its own server).
//
// A nil Sampler gets a handler that answers 503 on every route: the
// /health route used to tolerate nil while /series and /metrics
// dereferenced it, so whether a disabled endpoint answered or crashed
// depended on which route was hit first. One uniform 503 keeps a
// service that mounts a per-job handler before the job's sampler
// exists honest.
func Handler(s *Sampler) http.Handler {
	if s == nil {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			http.Error(w, "telemetry disabled", http.StatusServiceUnavailable)
		})
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintf(w, "telemetry endpoint (%s)\n\n", s.command())
		fmt.Fprint(w, "/metrics      Prometheus text exposition\n")
		fmt.Fprint(w, "/series?n=K   per-step time-series JSON (newest K, default all)\n")
		fmt.Fprint(w, "/health       health events + liveness JSON\n")
		fmt.Fprint(w, "/report       live RunReport JSON\n")
		fmt.Fprint(w, "/debug/pprof  pprof profiles\n")
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		WritePrometheus(w, s.registry())
	})
	mux.HandleFunc("/series", func(w http.ResponseWriter, r *http.Request) {
		// strconv.Atoi, not Sscanf: "5x" must be a 400, not a silent 5,
		// and a negative count is a caller bug worth surfacing.
		n := 0
		if q := r.URL.Query().Get("n"); q != "" {
			v, err := strconv.Atoi(q)
			if err != nil || v < 0 {
				http.Error(w, fmt.Sprintf("bad n=%q (want a non-negative integer)", q), http.StatusBadRequest)
				return
			}
			n = v
		}
		writeJSON(w, struct {
			Samples []Sample `json:"samples"`
		}{s.Samples(n)})
	})
	mux.HandleFunc("/health", func(w http.ResponseWriter, r *http.Request) {
		// A pull-only deployment has no watcher goroutine; evaluate
		// liveness on inspection so a flatlined run cannot hide.
		s.health.checkProgress()
		events := s.Events()
		status := "ok"
		for _, ev := range events {
			if ev.Severity == SeverityCritical {
				status = "critical"
				break
			}
			status = "warn"
		}
		writeJSON(w, struct {
			Status string        `json:"status"`
			Events []HealthEvent `json:"events"`
		}{status, events})
	})
	mux.HandleFunc("/report", func(w http.ResponseWriter, r *http.Request) {
		rep := s.LiveReport()
		if rep == nil {
			http.Error(w, "telemetry disabled", http.StatusServiceUnavailable)
			return
		}
		writeJSON(w, rep)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Serve starts the endpoint on addr (":0" picks a free port; the
// chosen address is in Endpoint.Addr). The server runs until Close.
func Serve(addr string, s *Sampler, lg *slog.Logger) (*Endpoint, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: listen %s: %w", addr, err)
	}
	ep := &Endpoint{
		Addr: ln.Addr().String(),
		srv:  &http.Server{Handler: Handler(s)},
		ln:   ln,
	}
	go func() {
		if err := ep.srv.Serve(ln); err != nil && err != http.ErrServerClosed {
			if lg == nil {
				lg = slog.Default()
			}
			lg.Error("telemetry: http server failed", "addr", ep.Addr, "err", err)
		}
	}()
	return ep, nil
}

// Close shuts the endpoint down. Nil-safe.
func (e *Endpoint) Close() {
	if e == nil {
		return
	}
	e.srv.Close()
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// command and registry tolerate a nil Sampler so Handler(nil) serves
// honest emptiness instead of panicking.
func (s *Sampler) command() string {
	if s == nil {
		return "disabled"
	}
	return s.cfg.Command
}

func (s *Sampler) registry() *metrics.Registry {
	if s == nil {
		return nil
	}
	return s.cfg.Registry
}

// Uptime returns time since the sampler started. Nil-safe (0).
func (s *Sampler) Uptime() time.Duration {
	if s == nil {
		return 0
	}
	return time.Since(s.start)
}
