package telemetry

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/metrics"
)

func get(t *testing.T, srv *httptest.Server, path string) (int, string) {
	t.Helper()
	resp, err := http.Get(srv.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s read: %v", path, err)
	}
	return resp.StatusCode, string(body)
}

// Every route must answer mid-run from sampler-owned copies.
func TestHTTPRoutes(t *testing.T) {
	reg := metrics.NewRegistry()
	s := NewSampler(Config{NP: 1, Registry: reg, Command: "bench",
		Monitors: MonitorConfig{Log: discard()}})
	defer s.Close()
	reg.Histogram(metrics.StallHistogram).Observe(12345)
	s.Contribute(0, rank(100, 10e6, 5, 1000))

	srv := httptest.NewServer(Handler(s))
	defer srv.Close()

	code, index := get(t, srv, "/")
	if code != 200 || !strings.Contains(index, "/series") || !strings.Contains(index, "bench") {
		t.Fatalf("index = %d:\n%s", code, index)
	}

	code, prom := get(t, srv, "/metrics")
	if code != 200 {
		t.Fatalf("/metrics = %d", code)
	}
	for _, want := range []string{
		"# TYPE telemetry_samples counter",
		"# TYPE telemetry_step_ms gauge",
		"telemetry_step_ms 10",
		"# TYPE walk_stall_ns summary",
		`walk_stall_ns{quantile="0.99"}`,
		"walk_stall_ns_count 1",
	} {
		if !strings.Contains(prom, want) {
			t.Errorf("/metrics missing %q; got:\n%s", want, prom)
		}
	}

	code, body := get(t, srv, "/series?n=5")
	if code != 200 {
		t.Fatalf("/series = %d", code)
	}
	var series struct {
		Samples []Sample `json:"samples"`
	}
	if err := json.Unmarshal([]byte(body), &series); err != nil {
		t.Fatalf("/series JSON: %v\n%s", err, body)
	}
	if len(series.Samples) != 1 || series.Samples[0].Interactions != 100 {
		t.Fatalf("/series = %+v", series.Samples)
	}

	code, body = get(t, srv, "/health")
	if code != 200 {
		t.Fatalf("/health = %d", code)
	}
	var health struct {
		Status string        `json:"status"`
		Events []HealthEvent `json:"events"`
	}
	if err := json.Unmarshal([]byte(body), &health); err != nil {
		t.Fatalf("/health JSON: %v", err)
	}
	if health.Status != "ok" || len(health.Events) != 0 {
		t.Fatalf("/health = %+v on a healthy run", health)
	}

	code, body = get(t, srv, "/report")
	if code != 200 {
		t.Fatalf("/report = %d", code)
	}
	var rep metrics.RunReport
	if err := json.Unmarshal([]byte(body), &rep); err != nil {
		t.Fatalf("/report JSON: %v", err)
	}
	if rep.Command != "bench" || rep.Totals.Interactions != 100 {
		t.Fatalf("/report = command %q, %d interactions", rep.Command, rep.Totals.Interactions)
	}

	if code, _ := get(t, srv, "/debug/pprof/cmdline"); code != 200 {
		t.Fatalf("/debug/pprof/cmdline = %d", code)
	}
	if code, _ := get(t, srv, "/nope"); code != 404 {
		t.Fatalf("unknown route = %d, want 404", code)
	}
}

// /health must evaluate liveness on inspection, so a pull-only
// deployment (no background watcher is strictly needed) still sees a
// flatlined run go critical.
func TestHealthRouteDetectsFlatline(t *testing.T) {
	s := NewSampler(Config{NP: 1, Monitors: MonitorConfig{
		NoProgress: 20 * time.Millisecond, Log: discard()}})
	defer s.Close()
	srv := httptest.NewServer(Handler(s))
	defer srv.Close()

	deadline := time.Now().Add(5 * time.Second)
	for {
		_, body := get(t, srv, "/health")
		var health struct {
			Status string `json:"status"`
		}
		json.Unmarshal([]byte(body), &health)
		if health.Status == "critical" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("/health never went critical: %s", body)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// A nil sampler answers 503 on EVERY route. It used to serve a mix:
// /health guarded the dereference while /series and /metrics would
// have crashed on the first nil-only path they touched -- whether the
// endpoint worked depended on which route was hit first. One uniform
// "telemetry disabled" keeps a service that mounts per-job handlers
// before the job's sampler exists honest.
func TestHandlerNilSampler(t *testing.T) {
	srv := httptest.NewServer(Handler(nil))
	defer srv.Close()
	for _, path := range []string{"/", "/metrics", "/series", "/series?n=5", "/health", "/report", "/debug/pprof/"} {
		code, body := get(t, srv, path)
		if code != 503 {
			t.Errorf("%s on nil sampler = %d, want 503", path, code)
		}
		if !strings.Contains(body, "disabled") {
			t.Errorf("%s on nil sampler: body %q does not say disabled", path, body)
		}
	}
}

// /series?n= takes a non-negative integer and nothing else: Sscanf
// used to accept garbage prefixes ("5x" parsed as 5) and let negative
// values flow into Sampler.Samples.
func TestSeriesQueryValidation(t *testing.T) {
	s := NewSampler(Config{NP: 1, Monitors: MonitorConfig{Log: discard()}})
	defer s.Close()
	for i := 0; i < 3; i++ {
		s.Contribute(0, rank(uint64(100+i), 10e6, 5, 1000))
	}
	srv := httptest.NewServer(Handler(s))
	defer srv.Close()

	for _, q := range []string{"5x", "-1", "-5", "x", "1.5", "0x10", " 3"} {
		if code, body := get(t, srv, "/series?n="+q); code != 400 {
			t.Errorf("/series?n=%s = %d (%q), want 400", q, code, body)
		}
	}
	for _, tc := range []struct {
		q    string
		want int
	}{{"0", 3}, {"2", 2}, {"100", 3}, {"", 3}} {
		path := "/series"
		if tc.q != "" {
			path += "?n=" + tc.q
		}
		code, body := get(t, srv, path)
		if code != 200 {
			t.Fatalf("%s = %d", path, code)
		}
		var series struct {
			Samples []Sample `json:"samples"`
		}
		if err := json.Unmarshal([]byte(body), &series); err != nil {
			t.Fatalf("%s JSON: %v", path, err)
		}
		if len(series.Samples) != tc.want {
			t.Errorf("%s = %d samples, want %d", path, len(series.Samples), tc.want)
		}
	}
}

// Samples(-1) is pinned as "all buffered", same as 0: the HTTP layer
// rejects negatives before they get here, but direct callers rely on
// max <= 0 meaning everything.
func TestSamplesNegativeMax(t *testing.T) {
	s := NewSampler(Config{NP: 1, Monitors: MonitorConfig{Log: discard()}})
	defer s.Close()
	for i := 0; i < 4; i++ {
		s.Contribute(0, rank(uint64(10+i), 1e6, 1, 10))
	}
	if got := len(s.Samples(-1)); got != 4 {
		t.Fatalf("Samples(-1) = %d samples, want all 4", got)
	}
	if got := len(s.Samples(0)); got != 4 {
		t.Fatalf("Samples(0) = %d samples, want all 4", got)
	}
}

// Serve binds :0, reports the real address, and Close is idempotent
// and nil-safe.
func TestServeAndClose(t *testing.T) {
	s := NewSampler(Config{NP: 1, Monitors: MonitorConfig{Log: discard()}})
	defer s.Close()
	ep, err := Serve("127.0.0.1:0", s, discard())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(ep.Addr, ":") || strings.HasSuffix(ep.Addr, ":0") {
		t.Fatalf("Addr = %q, want a resolved port", ep.Addr)
	}
	resp, err := http.Get("http://" + ep.Addr + "/")
	if err != nil {
		t.Fatalf("GET live endpoint: %v", err)
	}
	resp.Body.Close()
	ep.Close()
	var nilEp *Endpoint
	nilEp.Close()
}

// The exposition format itself: typed counters and gauges, histograms
// as summaries.
func TestWritePrometheus(t *testing.T) {
	reg := metrics.NewRegistry()
	reg.Counter("reqs_total").Add(7)
	reg.Gauge("temp").Set(1.5)
	h := reg.Histogram("lat_ns")
	h.Observe(100)
	h.Observe(200)

	var b strings.Builder
	WritePrometheus(&b, reg)
	out := b.String()
	for _, want := range []string{
		"# TYPE reqs_total counter\nreqs_total 7\n",
		"# TYPE temp gauge\ntemp 1.5\n",
		"# TYPE lat_ns summary\n",
		"lat_ns_sum 300\n",
		"lat_ns_count 2\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q; got:\n%s", want, out)
		}
	}

	b.Reset()
	WritePrometheus(&b, nil)
	if b.Len() != 0 {
		t.Fatalf("nil registry wrote %q", b.String())
	}

	if got := promName("walk stall.p99"); got != "walk_stall_p99" {
		t.Fatalf("promName = %q", got)
	}
}
