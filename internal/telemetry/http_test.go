package telemetry

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/metrics"
)

func get(t *testing.T, srv *httptest.Server, path string) (int, string) {
	t.Helper()
	resp, err := http.Get(srv.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s read: %v", path, err)
	}
	return resp.StatusCode, string(body)
}

// Every route must answer mid-run from sampler-owned copies.
func TestHTTPRoutes(t *testing.T) {
	reg := metrics.NewRegistry()
	s := NewSampler(Config{NP: 1, Registry: reg, Command: "bench",
		Monitors: MonitorConfig{Log: discard()}})
	defer s.Close()
	reg.Histogram(metrics.StallHistogram).Observe(12345)
	s.Contribute(0, rank(100, 10e6, 5, 1000))

	srv := httptest.NewServer(Handler(s))
	defer srv.Close()

	code, index := get(t, srv, "/")
	if code != 200 || !strings.Contains(index, "/series") || !strings.Contains(index, "bench") {
		t.Fatalf("index = %d:\n%s", code, index)
	}

	code, prom := get(t, srv, "/metrics")
	if code != 200 {
		t.Fatalf("/metrics = %d", code)
	}
	for _, want := range []string{
		"# TYPE telemetry_samples counter",
		"# TYPE telemetry_step_ms gauge",
		"telemetry_step_ms 10",
		"# TYPE walk_stall_ns summary",
		`walk_stall_ns{quantile="0.99"}`,
		"walk_stall_ns_count 1",
	} {
		if !strings.Contains(prom, want) {
			t.Errorf("/metrics missing %q; got:\n%s", want, prom)
		}
	}

	code, body := get(t, srv, "/series?n=5")
	if code != 200 {
		t.Fatalf("/series = %d", code)
	}
	var series struct {
		Samples []Sample `json:"samples"`
	}
	if err := json.Unmarshal([]byte(body), &series); err != nil {
		t.Fatalf("/series JSON: %v\n%s", err, body)
	}
	if len(series.Samples) != 1 || series.Samples[0].Interactions != 100 {
		t.Fatalf("/series = %+v", series.Samples)
	}

	code, body = get(t, srv, "/health")
	if code != 200 {
		t.Fatalf("/health = %d", code)
	}
	var health struct {
		Status string        `json:"status"`
		Events []HealthEvent `json:"events"`
	}
	if err := json.Unmarshal([]byte(body), &health); err != nil {
		t.Fatalf("/health JSON: %v", err)
	}
	if health.Status != "ok" || len(health.Events) != 0 {
		t.Fatalf("/health = %+v on a healthy run", health)
	}

	code, body = get(t, srv, "/report")
	if code != 200 {
		t.Fatalf("/report = %d", code)
	}
	var rep metrics.RunReport
	if err := json.Unmarshal([]byte(body), &rep); err != nil {
		t.Fatalf("/report JSON: %v", err)
	}
	if rep.Command != "bench" || rep.Totals.Interactions != 100 {
		t.Fatalf("/report = command %q, %d interactions", rep.Command, rep.Totals.Interactions)
	}

	if code, _ := get(t, srv, "/debug/pprof/cmdline"); code != 200 {
		t.Fatalf("/debug/pprof/cmdline = %d", code)
	}
	if code, _ := get(t, srv, "/nope"); code != 404 {
		t.Fatalf("unknown route = %d, want 404", code)
	}
}

// /health must evaluate liveness on inspection, so a pull-only
// deployment (no background watcher is strictly needed) still sees a
// flatlined run go critical.
func TestHealthRouteDetectsFlatline(t *testing.T) {
	s := NewSampler(Config{NP: 1, Monitors: MonitorConfig{
		NoProgress: 20 * time.Millisecond, Log: discard()}})
	defer s.Close()
	srv := httptest.NewServer(Handler(s))
	defer srv.Close()

	deadline := time.Now().Add(5 * time.Second)
	for {
		_, body := get(t, srv, "/health")
		var health struct {
			Status string `json:"status"`
		}
		json.Unmarshal([]byte(body), &health)
		if health.Status == "critical" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("/health never went critical: %s", body)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// A nil sampler serves honest emptiness, not panics: the endpoint can
// be mounted before telemetry is enabled.
func TestHandlerNilSampler(t *testing.T) {
	srv := httptest.NewServer(Handler(nil))
	defer srv.Close()
	if code, body := get(t, srv, "/"); code != 200 || !strings.Contains(body, "disabled") {
		t.Fatalf("index = %d %q", code, body)
	}
	if code, _ := get(t, srv, "/metrics"); code != 200 {
		t.Fatalf("/metrics on nil sampler = %d", code)
	}
	if code, _ := get(t, srv, "/series"); code != 200 {
		t.Fatalf("/series on nil sampler = %d", code)
	}
	if code, _ := get(t, srv, "/health"); code != 200 {
		t.Fatalf("/health on nil sampler = %d", code)
	}
	if code, _ := get(t, srv, "/report"); code != 503 {
		t.Fatalf("/report on nil sampler = %d, want 503", code)
	}
}

// Serve binds :0, reports the real address, and Close is idempotent
// and nil-safe.
func TestServeAndClose(t *testing.T) {
	s := NewSampler(Config{NP: 1, Monitors: MonitorConfig{Log: discard()}})
	defer s.Close()
	ep, err := Serve("127.0.0.1:0", s, discard())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(ep.Addr, ":") || strings.HasSuffix(ep.Addr, ":0") {
		t.Fatalf("Addr = %q, want a resolved port", ep.Addr)
	}
	resp, err := http.Get("http://" + ep.Addr + "/")
	if err != nil {
		t.Fatalf("GET live endpoint: %v", err)
	}
	resp.Body.Close()
	ep.Close()
	var nilEp *Endpoint
	nilEp.Close()
}

// The exposition format itself: typed counters and gauges, histograms
// as summaries.
func TestWritePrometheus(t *testing.T) {
	reg := metrics.NewRegistry()
	reg.Counter("reqs_total").Add(7)
	reg.Gauge("temp").Set(1.5)
	h := reg.Histogram("lat_ns")
	h.Observe(100)
	h.Observe(200)

	var b strings.Builder
	WritePrometheus(&b, reg)
	out := b.String()
	for _, want := range []string{
		"# TYPE reqs_total counter\nreqs_total 7\n",
		"# TYPE temp gauge\ntemp 1.5\n",
		"# TYPE lat_ns summary\n",
		"lat_ns_sum 300\n",
		"lat_ns_count 2\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q; got:\n%s", want, out)
		}
	}

	b.Reset()
	WritePrometheus(&b, nil)
	if b.Len() != 0 {
		t.Fatalf("nil registry wrote %q", b.String())
	}

	if got := promName("walk stall.p99"); got != "walk_stall_p99" {
		t.Fatalf("promName = %q", got)
	}
}
