package telemetry

import (
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/metrics"
)

// The routes a simulation service serves per job are read under real
// concurrency: many HTTP readers against /series, /health and /report
// while every rank keeps Contributing. Run under -race (check.sh puts
// this package on the uncached race list), this pins that the
// sampler's slot/ring locking actually covers the handler paths --
// the assembler reading a slot mid-copy, LiveReport snapshotting
// phases while a rank overwrites them, the ring evicting under a
// /series copy.
func TestConcurrentHTTPReadsUnderContribution(t *testing.T) {
	const (
		np      = 4
		steps   = 200
		readers = 8
	)
	reg := metrics.NewRegistry()
	s := NewSampler(Config{
		NP: np, Capacity: 64, Registry: reg, Command: "race",
		Monitors: MonitorConfig{EnergyDriftTol: 0.02, ImbalanceMax: 4, NoProgress: time.Second, Log: discard()},
	})
	defer s.Close()
	reg.Histogram(metrics.StallHistogram).Observe(1000)

	srv := httptest.NewServer(Handler(s))
	defer srv.Close()

	var writers, rdrs sync.WaitGroup
	stop := make(chan struct{})

	// np ranks contributing from their own goroutines: each rank races
	// ahead on its own, which is exactly the slot-overwrite case the
	// padded mutexes exist for.
	for r := 0; r < np; r++ {
		writers.Add(1)
		go func(r int) {
			defer writers.Done()
			for i := 0; i < steps; i++ {
				rs := rank(uint64(100+i), int64(1e6+r), 5, 1000)
				rs.Phases = map[string]float64{"walk": float64(i)}
				s.Contribute(r, rs)
			}
		}(r)
	}

	for i := 0; i < readers; i++ {
		rdrs.Add(1)
		go func(i int) {
			defer rdrs.Done()
			paths := []string{"/series?n=16", "/health", "/report", "/metrics"}
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Get(srv.URL + paths[i%len(paths)])
				if err != nil {
					t.Errorf("reader %d: %v", i, err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}(i)
	}

	// Readers overlap the whole contribution window by construction:
	// they only stop after every writer is done.
	writers.Wait()
	close(stop)
	rdrs.Wait()

	// np*steps arrivals assemble exactly `steps` world samples.
	if smp, ok := s.Last(); !ok || smp.Step != steps {
		t.Fatalf("assembled %d steps, want %d", smp.Step, steps)
	}
}
