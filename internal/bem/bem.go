package bem

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/diag"
	"repro/internal/grav"
	"repro/internal/keys"
	"repro/internal/tree"
	"repro/internal/vec"
)

// Flow solves the exterior Neumann problem for potential flow past
// the meshed body: constant source strengths sigma on each panel such
// that the total normal velocity vanishes at every collocation point,
//
//	sigma_i/2 + sum_{j != i} sigma_j A_j (v_ij . n_i) = -Uinf . n_i
//
// with v_ij the unit point-source velocity (1/4pi) r/|r|^3 evaluated
// between centroids (the far-field panel approximation; the self term
// sigma/2 is the flat-panel limit). The system is strongly diagonally
// dominant and solved by damped Richardson iteration, with the
// off-diagonal sums computed either directly or through the gravity
// tree (a source panel IS a gravity monopole up to sign).
type Flow struct {
	Mesh  *Mesh
	Uinf  vec.V3
	Sigma []float64
	// Residual is the final max normal velocity after Solve.
	Residual float64
	// Counters tallies the induced-velocity interactions.
	Counters diag.Counters
}

// NewFlow prepares a solver for a uniform onset flow.
func NewFlow(m *Mesh, uinf vec.V3) *Flow {
	return &Flow{Mesh: m, Uinf: uinf, Sigma: make([]float64, len(m.Panels))}
}

// inducedVelocities fills vel[i] with the velocity at panel i's
// centroid induced by all other panels' sources (excluding the self
// term). useTree selects the tree-accelerated evaluation.
func (f *Flow) inducedVelocities(vel []vec.V3, useTree bool, theta float64) {
	n := len(f.Mesh.Panels)
	if !useTree {
		const fourPiInv = 1 / (4 * math.Pi)
		for i := 0; i < n; i++ {
			var u vec.V3
			ci := f.Mesh.Panels[i].Centroid
			for j := 0; j < n; j++ {
				if j == i {
					continue
				}
				r := ci.Sub(f.Mesh.Panels[j].Centroid)
				r2 := r.Norm2()
				inv := 1 / (r2 * math.Sqrt(r2))
				u = u.Add(r.Scale(fourPiInv * f.Sigma[j] * f.Mesh.Panels[j].Area * inv))
				f.Counters.PP++
			}
			vel[i] = u
		}
		return
	}
	// Tree path: bodies are panel centroids with "mass"
	// sigma_j * A_j; gravity computes a = sum m (x_j - x) / r^3, so
	// the source velocity is -a/(4 pi). Signed masses require the
	// geometric Barnes-Hut MAC.
	sys := core.New(n)
	sys.EnableDynamics()
	for j := 0; j < n; j++ {
		sys.Pos[j] = f.Mesh.Panels[j].Centroid
		sys.Mass[j] = f.Sigma[j] * f.Mesh.Panels[j].Area
	}
	d := keys.NewDomain(sys.Pos)
	sys.AssignKeys(d)
	sys.SortByKey()
	tr := tree.Build(sys, d, grav.MACParams{Kind: grav.MACBarnesHut, Theta: theta, Quad: true}, 16)
	ctr := tr.Gravity(0)
	f.Counters.Add(ctr)
	const scale = -1 / (4 * math.Pi)
	for i := 0; i < n; i++ {
		// Map back to panel order via the stable IDs.
		vel[sys.ID[i]] = sys.Acc[i].Scale(scale)
	}
}

// Solve iterates until the no-penetration residual drops below tol or
// maxIter is hit, returning an error in the latter case. useTree
// selects tree-accelerated induced-velocity sums (theta ~ 0.4 keeps
// the panel quadrature error dominant).
func (f *Flow) Solve(tol float64, maxIter int, useTree bool, theta float64) error {
	n := len(f.Mesh.Panels)
	vel := make([]vec.V3, n)
	for iter := 0; iter < maxIter; iter++ {
		f.inducedVelocities(vel, useTree, theta)
		worst := 0.0
		for i := 0; i < n; i++ {
			p := f.Mesh.Panels[i]
			// Normal velocity with current strengths.
			vn := f.Uinf.Dot(p.Normal) + vel[i].Dot(p.Normal) + f.Sigma[i]/2
			if r := math.Abs(vn); r > worst {
				worst = r
			}
			// Damped Richardson update on the diagonal (1/2) term.
			f.Sigma[i] -= 1.6 * vn
		}
		f.Residual = worst
		if worst < tol {
			return nil
		}
	}
	return fmt.Errorf("bem: no convergence after %d iterations (residual %g)", maxIter, f.Residual)
}

// SurfaceVelocity returns the tangential flow speed at each panel
// (the normal component is zero by construction once solved).
func (f *Flow) SurfaceVelocity(useTree bool, theta float64) []float64 {
	n := len(f.Mesh.Panels)
	vel := make([]vec.V3, n)
	f.inducedVelocities(vel, useTree, theta)
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		p := f.Mesh.Panels[i]
		u := f.Uinf.Add(vel[i])
		// Project off the normal (self term cancels the residual
		// normal component; tangential self contribution is zero for
		// a flat constant panel).
		ut := u.Sub(p.Normal.Scale(u.Dot(p.Normal)))
		out[i] = ut.Norm()
	}
	return out
}

// PressureCoefficient returns Cp = 1 - (u_t/Uinf)^2 per panel.
func (f *Flow) PressureCoefficient(useTree bool, theta float64) []float64 {
	ut := f.SurfaceVelocity(useTree, theta)
	u2 := f.Uinf.Norm2()
	out := make([]float64, len(ut))
	for i, v := range ut {
		out[i] = 1 - v*v/u2
	}
	return out
}

// SphereAnalyticSpeed returns the exact potential-flow surface speed
// for a unit sphere in unit onset flow at polar angle theta from the
// flow axis: (3/2) sin(theta).
func SphereAnalyticSpeed(cosTheta float64) float64 {
	s := 1 - cosTheta*cosTheta
	if s < 0 {
		s = 0
	}
	return 1.5 * math.Sqrt(s)
}
