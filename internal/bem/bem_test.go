package bem

import (
	"math"
	"testing"

	"repro/internal/vec"
)

func TestIcosphereGeometry(t *testing.T) {
	for _, n := range []int{0, 1, 2, 3} {
		m := Icosphere(n)
		if err := m.Check(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		wantTris := 20
		for i := 0; i < n; i++ {
			wantTris *= 4
		}
		if len(m.Tris) != wantTris {
			t.Fatalf("n=%d: %d triangles, want %d", n, len(m.Tris), wantTris)
		}
		// Vertices on the unit sphere.
		for _, v := range m.Verts {
			if math.Abs(v.Norm()-1) > 1e-12 {
				t.Fatalf("n=%d: vertex off sphere: %v", n, v)
			}
		}
		// Total area approaches 4 pi from below as n grows.
		area := m.TotalArea()
		if area >= 4*math.Pi {
			t.Fatalf("n=%d: inscribed area %v >= sphere area", n, area)
		}
		if n >= 2 && area < 4*math.Pi*0.97 {
			t.Fatalf("n=%d: area %v too far from 4pi", n, area)
		}
		// Outward normals.
		for i, p := range m.Panels {
			if p.Normal.Dot(p.Centroid) <= 0 {
				t.Fatalf("n=%d: panel %d normal points inward", n, i)
			}
		}
	}
}

func TestSphereFlowMatchesAnalytic(t *testing.T) {
	m := Icosphere(3) // 1280 panels
	f := NewFlow(m, vec.V3{X: 1})
	if err := f.Solve(1e-8, 200, false, 0); err != nil {
		t.Fatal(err)
	}
	if f.Residual > 1e-8 {
		t.Fatalf("residual %g", f.Residual)
	}
	ut := f.SurfaceVelocity(false, 0)
	var num, den float64
	maxSpeed := 0.0
	for i, p := range m.Panels {
		want := SphereAnalyticSpeed(p.Centroid.X / p.Centroid.Norm())
		num += (ut[i] - want) * (ut[i] - want)
		den += want*want + 1e-12
		if ut[i] > maxSpeed {
			maxSpeed = ut[i]
		}
	}
	if rel := math.Sqrt(num / den); rel > 0.05 {
		t.Fatalf("surface speed RMS error %.3f vs analytic 1.5 sin(theta)", rel)
	}
	// The classic 3/2 maximum at the equator.
	if math.Abs(maxSpeed-1.5) > 0.08 {
		t.Fatalf("max surface speed %v, potential theory says 1.5", maxSpeed)
	}
	// Stagnation pressure at the nose: Cp -> 1.
	cp := f.PressureCoefficient(false, 0)
	bestNose := -2.0
	for i, p := range m.Panels {
		if p.Centroid.X > 0.97 && cp[i] > bestNose {
			bestNose = cp[i]
		}
	}
	if bestNose < 0.8 {
		t.Fatalf("nose Cp %v, want -> 1", bestNose)
	}
}

func TestTreeAcceleratedMatvecMatchesDirect(t *testing.T) {
	m := Icosphere(2)
	f := NewFlow(m, vec.V3{X: 1})
	if err := f.Solve(1e-8, 200, false, 0); err != nil {
		t.Fatal(err)
	}
	n := len(m.Panels)
	direct := make([]vec.V3, n)
	treed := make([]vec.V3, n)
	f.inducedVelocities(direct, false, 0)
	f.inducedVelocities(treed, true, 0.3)
	var rms float64
	for i := range direct {
		rms += direct[i].Norm2()
	}
	rms = math.Sqrt(rms / float64(n))
	for i := range direct {
		if d := treed[i].Sub(direct[i]).Norm() / rms; d > 0.05 {
			t.Fatalf("panel %d: tree matvec deviates %g of RMS", i, d)
		}
	}
	if f.Counters.PP == 0 {
		t.Fatal("no interactions counted")
	}
}

func TestSolveWithTree(t *testing.T) {
	m := Icosphere(2)
	f := NewFlow(m, vec.V3{Z: 1})
	if err := f.Solve(1e-6, 300, true, 0.3); err != nil {
		t.Fatal(err)
	}
	// Flow along z: max speed near the z-equator.
	ut := f.SurfaceVelocity(true, 0.3)
	maxSpeed := 0.0
	for _, v := range ut {
		if v > maxSpeed {
			maxSpeed = v
		}
	}
	if math.Abs(maxSpeed-1.5) > 0.15 {
		t.Fatalf("tree-solved max speed %v", maxSpeed)
	}
}

func TestSolveDivergesGracefully(t *testing.T) {
	m := Icosphere(1)
	f := NewFlow(m, vec.V3{X: 1})
	if err := f.Solve(1e-30, 2, false, 0); err == nil {
		t.Fatal("impossible tolerance should return an error")
	}
}

func TestAnalyticSpeedEdges(t *testing.T) {
	if SphereAnalyticSpeed(1) != 0 || SphereAnalyticSpeed(-1) != 0 {
		t.Fatal("stagnation points must have zero speed")
	}
	if math.Abs(SphereAnalyticSpeed(0)-1.5) > 1e-12 {
		t.Fatal("equator speed must be 1.5")
	}
}

func BenchmarkBEMSolveDirect(b *testing.B) {
	m := Icosphere(2)
	for i := 0; i < b.N; i++ {
		f := NewFlow(m, vec.V3{X: 1})
		if err := f.Solve(1e-6, 200, false, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBEMSolveTree(b *testing.B) {
	m := Icosphere(2)
	for i := 0; i < b.N; i++ {
		f := NewFlow(m, vec.V3{X: 1})
		if err := f.Solve(1e-6, 200, true, 0.4); err != nil {
			b.Fatal(err)
		}
	}
}
