// Package bem implements the boundary element (panel) method for
// potential flow, the fourth physics module the paper lists atop the
// treecode library ("boundary integral methods", citing Winckelmans,
// Salmon, Warren & Leonard's parallel BEM). Constant-strength source
// panels on a closed surface enforce the no-penetration condition for
// an exterior flow; the induced-velocity sums that dominate the solve
// run either directly or through the same hashed oct-tree as gravity
// (the panels' far field is a point source, i.e. a gravity monopole
// up to sign).
package bem

import (
	"fmt"
	"math"

	"repro/internal/vec"
)

// Panel is one constant-strength source panel.
type Panel struct {
	Centroid vec.V3
	Normal   vec.V3 // unit outward normal
	Area     float64
}

// Mesh is a closed triangulated surface.
type Mesh struct {
	Verts  []vec.V3
	Tris   [][3]int32
	Panels []Panel
}

// Icosphere builds a unit-sphere triangulation by subdividing an
// icosahedron n times (20*4^n triangles) and projecting onto the
// sphere. Panels are computed with outward normals.
func Icosphere(n int) *Mesh {
	phi := (1 + math.Sqrt(5)) / 2
	raw := []vec.V3{
		{X: -1, Y: phi}, {X: 1, Y: phi}, {X: -1, Y: -phi}, {X: 1, Y: -phi},
		{Y: -1, Z: phi}, {Y: 1, Z: phi}, {Y: -1, Z: -phi}, {Y: 1, Z: -phi},
		{Z: -1, X: phi}, {Z: 1, X: phi}, {Z: -1, X: -phi}, {Z: 1, X: -phi},
	}
	m := &Mesh{}
	for _, v := range raw {
		m.Verts = append(m.Verts, v.Scale(1/v.Norm()))
	}
	m.Tris = [][3]int32{
		{0, 11, 5}, {0, 5, 1}, {0, 1, 7}, {0, 7, 10}, {0, 10, 11},
		{1, 5, 9}, {5, 11, 4}, {11, 10, 2}, {10, 7, 6}, {7, 1, 8},
		{3, 9, 4}, {3, 4, 2}, {3, 2, 6}, {3, 6, 8}, {3, 8, 9},
		{4, 9, 5}, {2, 4, 11}, {6, 2, 10}, {8, 6, 7}, {9, 8, 1},
	}
	for i := 0; i < n; i++ {
		m.subdivide()
	}
	m.buildPanels()
	return m
}

// subdivide splits every triangle into four, reusing midpoint
// vertices, and reprojects onto the unit sphere.
func (m *Mesh) subdivide() {
	type edge struct{ a, b int32 }
	mid := map[edge]int32{}
	midpoint := func(a, b int32) int32 {
		if a > b {
			a, b = b, a
		}
		if v, ok := mid[edge{a, b}]; ok {
			return v
		}
		p := m.Verts[a].Add(m.Verts[b]).Scale(0.5)
		p = p.Scale(1 / p.Norm())
		m.Verts = append(m.Verts, p)
		id := int32(len(m.Verts) - 1)
		mid[edge{a, b}] = id
		return id
	}
	var out [][3]int32
	for _, t := range m.Tris {
		ab := midpoint(t[0], t[1])
		bc := midpoint(t[1], t[2])
		ca := midpoint(t[2], t[0])
		out = append(out,
			[3]int32{t[0], ab, ca},
			[3]int32{t[1], bc, ab},
			[3]int32{t[2], ca, bc},
			[3]int32{ab, bc, ca},
		)
	}
	m.Tris = out
}

// buildPanels computes centroids, areas and outward normals.
func (m *Mesh) buildPanels() {
	m.Panels = make([]Panel, len(m.Tris))
	for i, t := range m.Tris {
		a, b, c := m.Verts[t[0]], m.Verts[t[1]], m.Verts[t[2]]
		cen := a.Add(b).Add(c).Scale(1.0 / 3.0)
		cr := b.Sub(a).Cross(c.Sub(a))
		area := 0.5 * cr.Norm()
		n := cr.Scale(1 / cr.Norm())
		// Outward: for a star-shaped surface about the origin the
		// normal points along the centroid direction.
		if n.Dot(cen) < 0 {
			n = n.Neg()
		}
		m.Panels[i] = Panel{Centroid: cen, Normal: n, Area: area}
	}
}

// TotalArea sums the panel areas.
func (m *Mesh) TotalArea() float64 {
	var s float64
	for _, p := range m.Panels {
		s += p.Area
	}
	return s
}

// EulerCharacteristic returns V - E + F (2 for a sphere).
func (m *Mesh) EulerCharacteristic() int {
	type edge struct{ a, b int32 }
	edges := map[edge]bool{}
	for _, t := range m.Tris {
		for k := 0; k < 3; k++ {
			a, b := t[k], t[(k+1)%3]
			if a > b {
				a, b = b, a
			}
			edges[edge{a, b}] = true
		}
	}
	return len(m.Verts) - len(edges) + len(m.Tris)
}

// Check validates closedness heuristics, returning a descriptive
// error on failure.
func (m *Mesh) Check() error {
	if chi := m.EulerCharacteristic(); chi != 2 {
		return fmt.Errorf("bem: Euler characteristic %d, want 2", chi)
	}
	for i, p := range m.Panels {
		if p.Area <= 0 {
			return fmt.Errorf("bem: panel %d has area %g", i, p.Area)
		}
		if math.Abs(p.Normal.Norm()-1) > 1e-12 {
			return fmt.Errorf("bem: panel %d normal not unit", i)
		}
	}
	return nil
}
