// pprof plumbing shared by the simulation commands' -cpuprofile and
// -memprofile flags, so each main stays a two-liner.
package trace

import (
	"os"
	"runtime"
	"runtime/pprof"
)

// StartCPUProfile begins a CPU profile to path and returns the stop
// function that ends the profile and closes the file.
func StartCPUProfile(path string) (stop func(), err error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, err
	}
	return func() {
		pprof.StopCPUProfile()
		f.Close()
	}, nil
}

// WriteHeapProfile writes a heap profile to path after a GC, so the
// numbers reflect live steady-state allocation rather than garbage.
func WriteHeapProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
