// Chrome trace_event export: a Run serializes to the JSON Array
// Format understood by chrome://tracing and Perfetto
// (ui.perfetto.dev), so a parallel treecode run opens as per-rank
// timelines with phase spans, worker busy intervals, and message
// markers.
//
// Mapping: rank -> pid (one "process" per rank, named "rank N"),
// sub-track -> tid (0 is the rank's main timeline, 1+ are pool
// workers). Spans are "X" complete events; instants and comm events
// are "i" instants with the peer rank and byte size in args.
// Timestamps are microseconds since the run epoch, as the format
// requires.
package trace

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strings"
)

// WriteChromeTrace serializes the run to w in the Chrome trace_event
// JSON Array Format.
func (r *Run) WriteChromeTrace(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString("[\n"); err != nil {
		return err
	}
	first := true
	put := func(line string) {
		if !first {
			bw.WriteString(",\n")
		}
		first = false
		bw.WriteString(line)
	}
	for rank := 0; rank < r.Size(); rank++ {
		put(fmt.Sprintf(`{"name":"process_name","ph":"M","pid":%d,"tid":0,"args":{"name":"rank %d"}}`, rank, rank))
		put(fmt.Sprintf(`{"name":"thread_name","ph":"M","pid":%d,"tid":0,"args":{"name":"phases"}}`, rank))
	}
	if d := r.Dropped(); d > 0 {
		// Stamp the loss into the export itself: a timeline with holes
		// must say so where the person reading it will look.
		put(fmt.Sprintf(`{"name":"trace_dropped_events","ph":"M","pid":0,"tid":0,"args":{"dropped":%d}}`, d))
	}
	for _, ev := range r.Events() {
		ts := float64(ev.Start) / 1e3
		switch ev.Kind {
		case KindSpan:
			put(fmt.Sprintf(`{"name":%s,"ph":"X","pid":%d,"tid":%d,"ts":%.3f,"dur":%.3f}`,
				quote(ev.Name), ev.Rank, ev.TID, ts, float64(ev.Dur)/1e3))
		case KindInstant:
			put(fmt.Sprintf(`{"name":%s,"ph":"i","s":"t","pid":%d,"tid":%d,"ts":%.3f}`,
				quote(ev.Name), ev.Rank, ev.TID, ts))
		case KindSend:
			put(fmt.Sprintf(`{"name":%s,"ph":"i","s":"t","pid":%d,"tid":%d,"ts":%.3f,"args":{"dir":"send","peer":%d,"bytes":%d}}`,
				quote("send "+ev.Name), ev.Rank, ev.TID, ts, ev.Peer, ev.Bytes))
		case KindRecv:
			put(fmt.Sprintf(`{"name":%s,"ph":"i","s":"t","pid":%d,"tid":%d,"ts":%.3f,"args":{"dir":"recv","peer":%d,"bytes":%d}}`,
				quote("recv "+ev.Name), ev.Rank, ev.TID, ts, ev.Peer, ev.Bytes))
		}
	}
	if _, err := bw.WriteString("\n]\n"); err != nil {
		return err
	}
	return bw.Flush()
}

// WriteChromeFile writes the trace to path.
func (r *Run) WriteChromeFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := r.WriteChromeTrace(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// quote JSON-escapes a name. Phase labels are plain ASCII identifiers,
// so escaping quotes and backslashes suffices.
func quote(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return `"` + s + `"`
}
