package trace

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"
	"time"
)

func TestNilTracerIsSafe(t *testing.T) {
	var tr *Tracer
	t0 := tr.Now()
	if t0 != 0 {
		t.Fatalf("nil Now = %d", t0)
	}
	tr.Span("x", t0)
	tr.SpanAt("x", time.Now(), time.Second)
	tr.WorkerSpan(3, "x", t0)
	tr.Instant("x")
	tr.Send("p", 1, 10)
	tr.Recv("p", 1, 10)
	if tr.Events() != nil || tr.Dropped() != 0 {
		t.Fatal("nil tracer recorded something")
	}
	var r *Run
	if r.Rank(0) != nil || r.Size() != 0 || r.Events() != nil || r.Dropped() != 0 {
		t.Fatal("nil run is not inert")
	}
}

func TestSpanAndCommEvents(t *testing.T) {
	r := NewRun(2)
	tr := r.Rank(1)
	t0 := tr.Now()
	tr.Span("walk", t0)
	tr.Send("branches", 0, 118)
	tr.Recv("branches", 0, 118)
	tr.Instant("stall")
	evs := tr.Events()
	if len(evs) != 4 {
		t.Fatalf("got %d events", len(evs))
	}
	if evs[0].Kind != KindSpan || evs[0].Name != "walk" || evs[0].Rank != 1 {
		t.Fatalf("span event: %+v", evs[0])
	}
	if evs[1].Kind != KindSend || evs[1].Peer != 0 || evs[1].Bytes != 118 {
		t.Fatalf("send event: %+v", evs[1])
	}
	if evs[2].Kind != KindRecv || evs[2].Peer != 0 {
		t.Fatalf("recv event: %+v", evs[2])
	}
	all := r.Events()
	if len(all) != 4 {
		t.Fatalf("run events: %d", len(all))
	}
	for i := 1; i < len(all); i++ {
		if all[i].Start < all[i-1].Start {
			t.Fatal("run events not time-ordered")
		}
	}
}

func TestRingKeepsNewestAndCountsDrops(t *testing.T) {
	r := NewRunCapacity(1, 4)
	tr := r.Rank(0)
	for i := 0; i < 10; i++ {
		tr.emit(Event{Name: "e", Kind: KindInstant, Start: int64(i)})
	}
	evs := tr.Events()
	if len(evs) != 4 {
		t.Fatalf("ring holds %d", len(evs))
	}
	// Oldest-first, and only the newest four survive.
	for i, ev := range evs {
		if ev.Start != int64(6+i) {
			t.Fatalf("event %d has Start %d", i, ev.Start)
		}
	}
	if tr.Dropped() != 6 {
		t.Fatalf("dropped = %d", tr.Dropped())
	}
}

// Concurrent emission from one rank (the ForcePool pattern) must be
// race-free; run under -race.
func TestConcurrentEmit(t *testing.T) {
	r := NewRunCapacity(1, 128)
	tr := r.Rank(0)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				t0 := tr.Now()
				tr.WorkerSpan(w, "busy", t0)
			}
		}(w)
	}
	wg.Wait()
	if got := len(tr.Events()); got != 128 {
		t.Fatalf("ring holds %d", got)
	}
	if tr.Dropped() != 800-128 {
		t.Fatalf("dropped = %d", tr.Dropped())
	}
}

func TestChromeTraceIsValidJSON(t *testing.T) {
	r := NewRun(2)
	tr := r.Rank(0)
	t0 := tr.Now()
	tr.Span(`wa"lk`, t0)
	tr.Send("branches", 1, 142)
	r.Rank(1).Instant("note")
	r.Rank(1).WorkerSpan(2, "busy", 0)

	var buf bytes.Buffer
	if err := r.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var evs []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &evs); err != nil {
		t.Fatalf("invalid trace JSON: %v\n%s", err, buf.String())
	}
	// 2 metadata records per rank + 4 events.
	if len(evs) != 2*2+4 {
		t.Fatalf("got %d records", len(evs))
	}
	kinds := map[string]int{}
	for _, ev := range evs {
		kinds[ev["ph"].(string)]++
		if _, ok := ev["pid"].(float64); !ok {
			t.Fatalf("record without pid: %v", ev)
		}
	}
	if kinds["M"] != 4 || kinds["X"] != 2 || kinds["i"] != 2 {
		t.Fatalf("record kinds: %v", kinds)
	}
}

func TestMarkAllStampsEveryRank(t *testing.T) {
	r := NewRun(3)
	r.MarkAll("watchdog.stall")
	seen := map[int]bool{}
	for _, ev := range r.Events() {
		if ev.Kind == KindInstant && ev.Name == "watchdog.stall" {
			seen[ev.Rank] = true
		}
	}
	if len(seen) != 3 {
		t.Fatalf("MarkAll hit %d of 3 ranks: %v", len(seen), seen)
	}
	// Nil-safety: a traceless run must tolerate the watchdog marking.
	var nilRun *Run
	nilRun.MarkAll("watchdog.stall")
}
