// Package trace is the run-wide structured event layer behind the
// paper-style performance analysis: per-rank ring buffers of spans
// (phase begin/end), instant events, and communication events
// (send/recv with byte sizes). The paper's headline numbers -- 430
// Gflops, 38 flops/interaction, load-balance efficiency -- all come
// from knowing *when* each processor did what and who talked to whom;
// this package records exactly that, cheaply enough to leave in the
// engines.
//
// Cost model:
//
//   - Off (nil *Tracer): every method is a nil-receiver no-op that
//     inlines to a single branch. The hot paths (force kernels, tree
//     walks) are never touched at all; only phase boundaries, message
//     sends and deferral points carry the branch.
//   - On: one mutex-protected append into a fixed-capacity ring per
//     event. The ring keeps the newest events and counts drops, so a
//     long run can never exhaust memory.
//
// A Run groups the per-rank Tracers of one parallel execution under a
// single epoch so cross-rank timelines line up. Export to the Chrome
// trace_event format (chrome://tracing, Perfetto) is in chrome.go.
package trace

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// Kind classifies an event.
type Kind uint8

const (
	// KindSpan is an interval [Start, Start+Dur) on a rank's timeline.
	KindSpan Kind = iota
	// KindInstant is a point event.
	KindInstant
	// KindSend is a message departure; Peer is the destination rank.
	KindSend
	// KindRecv is a message arrival; Peer is the source rank.
	KindRecv
)

// Event is one recorded occurrence. Times are nanoseconds since the
// Run epoch, so events from different ranks share one clock.
type Event struct {
	Name  string
	Kind  Kind
	Rank  int
	TID   int   // sub-track within the rank (0 = the rank's main timeline)
	Start int64 // ns since the run epoch
	Dur   int64 // ns; spans only
	Peer  int   // send: dst rank, recv: src rank; -1 otherwise
	Bytes int64 // comm events: logical payload size
}

// Run is one parallel execution's trace: a shared epoch plus one
// Tracer per rank.
type Run struct {
	epoch time.Time
	ranks []*Tracer
}

// DefaultPerRankEvents is the ring capacity used by NewRun.
const DefaultPerRankEvents = 1 << 14

// NewRun creates a trace for np ranks with the default per-rank ring
// capacity. The epoch is taken now; create the Run immediately before
// the timed region.
func NewRun(np int) *Run { return NewRunCapacity(np, DefaultPerRankEvents) }

// NewRunCapacity creates a trace with an explicit per-rank ring
// capacity (<= 0 means the default).
func NewRunCapacity(np, perRank int) *Run {
	if np < 1 {
		panic("trace: run needs at least one rank")
	}
	if perRank <= 0 {
		perRank = DefaultPerRankEvents
	}
	r := &Run{epoch: time.Now(), ranks: make([]*Tracer, np)}
	for i := range r.ranks {
		r.ranks[i] = &Tracer{run: r, rank: i, buf: make([]Event, 0, perRank), max: perRank}
	}
	return r
}

// Size returns the number of ranks. Nil-safe (0).
func (r *Run) Size() int {
	if r == nil {
		return 0
	}
	return len(r.ranks)
}

// Epoch returns the run's time origin.
func (r *Run) Epoch() time.Time { return r.epoch }

// Rank returns rank i's tracer. Nil-safe: a nil Run yields a nil
// Tracer, whose methods are all no-ops.
func (r *Run) Rank(i int) *Tracer {
	if r == nil {
		return nil
	}
	if i < 0 || i >= len(r.ranks) {
		panic(fmt.Sprintf("trace: rank %d out of range [0,%d)", i, len(r.ranks)))
	}
	return r.ranks[i]
}

// Events returns every recorded event across ranks, ordered by start
// time (ties by rank). Nil-safe (nil).
func (r *Run) Events() []Event {
	if r == nil {
		return nil
	}
	var all []Event
	for _, t := range r.ranks {
		all = append(all, t.Events()...)
	}
	sort.SliceStable(all, func(i, j int) bool {
		if all[i].Start != all[j].Start {
			return all[i].Start < all[j].Start
		}
		return all[i].Rank < all[j].Rank
	})
	return all
}

// MarkAll records an instant event on every rank's timeline at the
// same moment -- the msg watchdog uses it to pin where a stall was
// declared across all rank tracks. Nil-safe no-op.
func (r *Run) MarkAll(name string) {
	if r == nil {
		return
	}
	for _, t := range r.ranks {
		t.Instant(name)
	}
}

// Dropped returns the total events discarded because a rank's ring
// wrapped. Nil-safe (0).
func (r *Run) Dropped() uint64 {
	if r == nil {
		return 0
	}
	var n uint64
	for _, t := range r.ranks {
		n += t.Dropped()
	}
	return n
}

// Tracer is one rank's event sink: a mutex-protected ring that keeps
// the newest max events. Multiple goroutines of the same rank (e.g.
// ForcePool workers) may emit concurrently.
type Tracer struct {
	run  *Run
	rank int

	mu      sync.Mutex
	buf     []Event
	head    int // index of the oldest event once the ring is full
	max     int
	dropped uint64
}

// Now returns nanoseconds since the run epoch, the timestamp currency
// of Span. Nil-safe (0), so "t0 := t.Now(); ...; t.Span(name, t0)"
// costs two branches when tracing is off.
func (t *Tracer) Now() int64 {
	if t == nil {
		return 0
	}
	return time.Since(t.run.epoch).Nanoseconds()
}

func (t *Tracer) emit(ev Event) {
	t.mu.Lock()
	if len(t.buf) < t.max {
		t.buf = append(t.buf, ev)
	} else {
		t.buf[t.head] = ev
		t.head = (t.head + 1) % t.max
		t.dropped++
	}
	t.mu.Unlock()
}

// Span records an interval that started at start (a Tracer.Now value)
// and ends now, on the rank's main timeline. Nil-safe no-op.
func (t *Tracer) Span(name string, start int64) {
	if t == nil {
		return
	}
	t.emit(Event{Name: name, Kind: KindSpan, Rank: t.rank, Start: start, Dur: t.Now() - start, Peer: -1})
}

// SpanAt records a completed interval from wall-clock bookkeeping
// (e.g. a diag.Timer phase). Nil-safe no-op.
func (t *Tracer) SpanAt(name string, start time.Time, d time.Duration) {
	if t == nil {
		return
	}
	t.emit(Event{Name: name, Kind: KindSpan, Rank: t.rank, Start: start.Sub(t.run.epoch).Nanoseconds(), Dur: d.Nanoseconds(), Peer: -1})
}

// WorkerSpan records a span on sub-track worker+1, used by worker
// pools so concurrent per-worker busy intervals get their own rows
// instead of nesting on the rank's main timeline. Nil-safe no-op.
func (t *Tracer) WorkerSpan(worker int, name string, start int64) {
	if t == nil {
		return
	}
	t.emit(Event{Name: name, Kind: KindSpan, Rank: t.rank, TID: worker + 1, Start: start, Dur: t.Now() - start, Peer: -1})
}

// Instant records a point event. Nil-safe no-op.
func (t *Tracer) Instant(name string) {
	if t == nil {
		return
	}
	t.emit(Event{Name: name, Kind: KindInstant, Rank: t.rank, Start: t.Now(), Peer: -1})
}

// Send records a message departure to dst of the given logical size,
// named by the sender's current traffic phase. Nil-safe no-op.
func (t *Tracer) Send(phase string, dst, bytes int) {
	if t == nil {
		return
	}
	t.emit(Event{Name: phase, Kind: KindSend, Rank: t.rank, Start: t.Now(), Peer: dst, Bytes: int64(bytes)})
}

// Recv records a message arrival from src. Nil-safe no-op.
func (t *Tracer) Recv(phase string, src, bytes int) {
	if t == nil {
		return
	}
	t.emit(Event{Name: phase, Kind: KindRecv, Rank: t.rank, Start: t.Now(), Peer: src, Bytes: int64(bytes)})
}

// Events returns this rank's events oldest-first. Nil-safe (nil).
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Event, 0, len(t.buf))
	out = append(out, t.buf[t.head:]...)
	out = append(out, t.buf[:t.head]...)
	return out
}

// Dropped returns how many events this rank's ring discarded.
// Nil-safe (0).
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}
