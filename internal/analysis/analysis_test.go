package analysis

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/ic"
	"repro/internal/vec"
)

// twoClumps builds two well-separated Gaussian clumps plus sparse
// background noise.
func twoClumps(nClump, nNoise int, seed int64) *core.System {
	rng := rand.New(rand.NewSource(seed))
	sys := core.New(2*nClump + nNoise)
	sys.EnableDynamics()
	i := 0
	put := func(c vec.V3, s float64) {
		sys.Pos[i] = c.Add(vec.V3{X: s * rng.NormFloat64(), Y: s * rng.NormFloat64(), Z: s * rng.NormFloat64()})
		sys.Mass[i] = 1
		i++
	}
	for k := 0; k < nClump; k++ {
		put(vec.V3{X: -2}, 0.05)
	}
	for k := 0; k < nClump; k++ {
		put(vec.V3{X: 2}, 0.05)
	}
	for k := 0; k < nNoise; k++ {
		sys.Pos[i] = vec.V3{X: 8 * (rng.Float64() - 0.5), Y: 8 * (rng.Float64() - 0.5), Z: 8 * (rng.Float64() - 0.5)}
		sys.Mass[i] = 1
		i++
	}
	return sys
}

func TestFOFFindsTwoClumps(t *testing.T) {
	sys := twoClumps(300, 50, 1)
	halos := FOF(sys, 0.1, 50)
	if len(halos) != 2 {
		t.Fatalf("found %d halos, want 2", len(halos))
	}
	for _, h := range halos {
		if len(h.Members) < 250 || len(h.Members) > 320 {
			t.Fatalf("halo membership %d implausible", len(h.Members))
		}
		if math.Abs(math.Abs(h.Center.X)-2) > 0.1 || math.Abs(h.Center.Y) > 0.1 {
			t.Fatalf("halo center %v not at a clump", h.Center)
		}
		if h.R50 <= 0 || h.R50 > 0.2 {
			t.Fatalf("half-mass radius %v", h.R50)
		}
	}
	// Largest first ordering.
	if halos[0].Mass < halos[1].Mass {
		t.Fatal("halos not sorted by mass")
	}
}

func TestFOFLinkingLengthControlsMerging(t *testing.T) {
	sys := twoClumps(200, 0, 2)
	// Huge linking length merges both clumps into one group.
	merged := FOF(sys, 10, 50)
	if len(merged) != 1 {
		t.Fatalf("b=10 gave %d halos, want 1", len(merged))
	}
	if len(merged[0].Members) != sys.Len() {
		t.Fatalf("merged halo holds %d of %d", len(merged[0].Members), sys.Len())
	}
	// Tiny linking length finds nothing above the threshold.
	none := FOF(sys, 1e-6, 50)
	if len(none) != 0 {
		t.Fatalf("b=1e-6 gave %d halos", len(none))
	}
}

func TestFOFDeterminism(t *testing.T) {
	a := FOF(twoClumps(150, 30, 3), 0.1, 20)
	b := FOF(twoClumps(150, 30, 3), 0.1, 20)
	if len(a) != len(b) {
		t.Fatal("nondeterministic halo count")
	}
	for i := range a {
		if a[i].Mass != b[i].Mass || a[i].Center != b[i].Center {
			t.Fatalf("halo %d differs between runs", i)
		}
	}
}

func TestMassFunction(t *testing.T) {
	halos := []Halo{{Mass: 1}, {Mass: 10}, {Mass: 11}, {Mass: 100}}
	mass, count := MassFunction(halos, 3)
	if len(mass) != 3 || len(count) != 3 {
		t.Fatal("bin count")
	}
	total := 0
	for _, c := range count {
		total += c
	}
	if total != 4 {
		t.Fatalf("counts sum to %d", total)
	}
	// Bin centers increase.
	if !(mass[0] < mass[1] && mass[1] < mass[2]) {
		t.Fatalf("bin centers not increasing: %v", mass)
	}
	// Degenerate cases.
	if m, c := MassFunction(nil, 3); m != nil || c != nil {
		t.Fatal("empty halos")
	}
	if m, c := MassFunction([]Halo{{Mass: 5}, {Mass: 5}}, 3); len(m) != 1 || c[0] != 2 {
		t.Fatal("identical masses")
	}
}

func TestTwoPointCorrelationClusteredVsUniform(t *testing.T) {
	// A clustered set must show xi >> 0 at small r; a uniform sphere
	// xi ~ 0 at all r.
	clustered := twoClumps(400, 100, 4)
	rr, xi := TwoPointCorrelation(clustered, 0.02, 2.0, 8)
	if len(rr) != 8 {
		t.Fatal("bins")
	}
	if xi[0] < 10 {
		t.Fatalf("clustered xi(small r) = %v, want large", xi[0])
	}

	uni := ic.UniformSphere(3000, 1.0, 5)
	_, xiU := TwoPointCorrelation(uni, 0.05, 0.5, 6)
	for b, v := range xiU {
		if math.Abs(v) > 0.5 {
			t.Fatalf("uniform xi[%d] = %v, want ~0", b, v)
		}
	}
}

func TestRadialProfileUniformSphere(t *testing.T) {
	sys := ic.UniformSphere(20000, 1.0, 6)
	r, rho := RadialProfile(sys, vec.V3{}, 0.1, 1.0, 5)
	// Uniform density: all bins within sampling noise of 3/(4 pi).
	want := 1.0 / (4.0 / 3.0 * math.Pi)
	for b := range r {
		if math.Abs(rho[b]-want)/want > 0.15 {
			t.Fatalf("bin %d (r=%.2f): rho %v, want %v", b, r[b], rho[b], want)
		}
	}
}

func TestRadialProfilePlummer(t *testing.T) {
	sys := ic.Plummer(20000, 1.0, 7)
	r, rho := RadialProfile(sys, vec.V3{}, 0.2, 5.0, 6)
	// Monotone decreasing, and the outer slope approaches r^-5.
	for b := 1; b < len(r); b++ {
		if rho[b] >= rho[b-1] {
			t.Fatalf("profile not decreasing at bin %d", b)
		}
	}
	slope := math.Log(rho[5]/rho[4]) / math.Log(r[5]/r[4])
	if slope > -2.5 || slope < -7 {
		t.Fatalf("outer Plummer slope %v, want ~-5", slope)
	}
}
