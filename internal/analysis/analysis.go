// Package analysis provides the post-processing the paper's science
// case rests on: "Our ability to identify galaxies which can be
// compared to observational results requires that each galaxy contain
// hundreds or thousands of particles". It implements the standard
// friends-of-friends halo finder (the community's galaxy/halo
// identifier), halo mass functions, two-point clustering statistics,
// and radial density profiles — all against the same hashed oct-tree
// used for the dynamics, so neighbor searches stay O(N log N).
package analysis

import (
	"math"
	"sort"

	"repro/internal/core"
	"repro/internal/grav"
	"repro/internal/keys"
	"repro/internal/sph"
	"repro/internal/tree"
	"repro/internal/vec"
)

// Halo is one friends-of-friends group.
type Halo struct {
	// Members indexes the key-sorted system the finder ran over.
	Members []int32
	Mass    float64
	Center  vec.V3 // center of mass
	// R50 is the radius containing half the halo's mass.
	R50 float64
}

// FOF links particles closer than the linking length b into groups
// and returns all groups with at least minMembers particles, largest
// first. The input system is key-sorted in place (a tree is built for
// the neighbor searches).
func FOF(sys *core.System, b float64, minMembers int) []Halo {
	d := keys.NewDomain(sys.Pos)
	sys.AssignKeys(d)
	sys.SortByKey()
	tr := tree.Build(sys, d, grav.MACParams{Kind: grav.MACBarnesHut, Theta: 0.7}, 16)

	n := sys.Len()
	parent := make([]int32, n)
	for i := range parent {
		parent[i] = int32(i)
	}
	var find func(i int32) int32
	find = func(i int32) int32 {
		for parent[i] != i {
			parent[i] = parent[parent[i]] // path halving
			i = parent[i]
		}
		return i
	}
	union := func(a, b int32) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[ra] = rb
		}
	}

	var nb []int32
	for i := 0; i < n; i++ {
		nb = sph.Neighbors(tr, sys.Pos[i], b, nb)
		for _, j := range nb {
			if int(j) > i {
				union(int32(i), j)
			}
		}
	}

	groups := make(map[int32][]int32)
	for i := int32(0); i < int32(n); i++ {
		r := find(i)
		groups[r] = append(groups[r], i)
	}
	var halos []Halo
	for _, members := range groups {
		if len(members) < minMembers {
			continue
		}
		halos = append(halos, newHalo(sys, members))
	}
	sort.Slice(halos, func(i, j int) bool {
		if halos[i].Mass != halos[j].Mass {
			return halos[i].Mass > halos[j].Mass
		}
		// Deterministic tie-break on the first member index.
		return halos[i].Members[0] < halos[j].Members[0]
	})
	return halos
}

func newHalo(sys *core.System, members []int32) Halo {
	sort.Slice(members, func(a, b int) bool { return members[a] < members[b] })
	h := Halo{Members: members}
	for _, i := range members {
		h.Mass += sys.Mass[i]
		h.Center = h.Center.Add(sys.Pos[i].Scale(sys.Mass[i]))
	}
	h.Center = h.Center.Scale(1 / h.Mass)
	// Half-mass radius.
	type rm struct{ r, m float64 }
	rs := make([]rm, len(members))
	for k, i := range members {
		rs[k] = rm{sys.Pos[i].Sub(h.Center).Norm(), sys.Mass[i]}
	}
	sort.Slice(rs, func(a, b int) bool { return rs[a].r < rs[b].r })
	var acc float64
	for _, p := range rs {
		acc += p.m
		if acc >= h.Mass/2 {
			h.R50 = p.r
			break
		}
	}
	return h
}

// MassFunction bins halo masses logarithmically into nBins between
// the smallest and largest halo, returning bin centers and counts.
func MassFunction(halos []Halo, nBins int) (mass []float64, count []int) {
	if len(halos) == 0 || nBins < 1 {
		return nil, nil
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, h := range halos {
		lo = math.Min(lo, h.Mass)
		hi = math.Max(hi, h.Mass)
	}
	if hi <= lo {
		return []float64{lo}, []int{len(halos)}
	}
	llo, lhi := math.Log10(lo), math.Log10(hi)
	mass = make([]float64, nBins)
	count = make([]int, nBins)
	for b := 0; b < nBins; b++ {
		mass[b] = math.Pow(10, llo+(float64(b)+0.5)*(lhi-llo)/float64(nBins))
	}
	for _, h := range halos {
		b := int((math.Log10(h.Mass) - llo) / (lhi - llo) * float64(nBins))
		if b >= nBins {
			b = nBins - 1
		}
		count[b]++
	}
	return mass, count
}

// TwoPointCorrelation estimates xi(r) on logarithmic radial bins in
// [rMin, rMax] by tree-accelerated pair counting against the mean
// density of the bounding sphere of the data. Returns bin centers and
// xi estimates (DD/RR_analytic - 1).
func TwoPointCorrelation(sys *core.System, rMin, rMax float64, nBins int) (r, xi []float64) {
	d := keys.NewDomain(sys.Pos)
	sys.AssignKeys(d)
	sys.SortByKey()
	tr := tree.Build(sys, d, grav.MACParams{Kind: grav.MACBarnesHut, Theta: 0.7}, 16)

	n := sys.Len()
	// Pair counts per bin via neighbor search at rMax.
	counts := make([]float64, nBins)
	logMin, logMax := math.Log10(rMin), math.Log10(rMax)
	var nb []int32
	for i := 0; i < n; i++ {
		nb = sph.Neighbors(tr, sys.Pos[i], rMax, nb)
		for _, j := range nb {
			if int(j) <= i {
				continue
			}
			dist := sys.Pos[j].Sub(sys.Pos[i]).Norm()
			if dist < rMin {
				continue
			}
			b := int((math.Log10(dist) - logMin) / (logMax - logMin) * float64(nBins))
			if b < 0 || b >= nBins {
				continue
			}
			counts[b]++
		}
	}
	// Analytic RR for a uniform sphere of the same bounding radius:
	// expected pairs in shell [r1,r2) = N(N-1)/2 * Vshell/Vtotal,
	// ignoring edge corrections (adequate for shape comparisons).
	center, _ := tree.GroupSphere(sys.Pos)
	var rad float64
	for i := range sys.Pos {
		if v := sys.Pos[i].Sub(center).Norm(); v > rad {
			rad = v
		}
	}
	vTot := 4.0 / 3.0 * math.Pi * rad * rad * rad
	pairs := float64(n) * float64(n-1) / 2
	r = make([]float64, nBins)
	xi = make([]float64, nBins)
	for b := 0; b < nBins; b++ {
		r1 := math.Pow(10, logMin+float64(b)*(logMax-logMin)/float64(nBins))
		r2 := math.Pow(10, logMin+float64(b+1)*(logMax-logMin)/float64(nBins))
		r[b] = math.Sqrt(r1 * r2)
		vShell := 4.0 / 3.0 * math.Pi * (r2*r2*r2 - r1*r1*r1)
		rr := pairs * vShell / vTot
		if rr > 0 {
			xi[b] = counts[b]/rr - 1
		}
	}
	return r, xi
}

// RadialProfile returns the spherically averaged density profile
// about center in nBins logarithmic shells spanning [rMin, rMax].
func RadialProfile(sys *core.System, center vec.V3, rMin, rMax float64, nBins int) (r, rho []float64) {
	logMin, logMax := math.Log10(rMin), math.Log10(rMax)
	mass := make([]float64, nBins)
	for i := 0; i < sys.Len(); i++ {
		dist := sys.Pos[i].Sub(center).Norm()
		if dist < rMin || dist >= rMax {
			continue
		}
		b := int((math.Log10(dist) - logMin) / (logMax - logMin) * float64(nBins))
		if b >= 0 && b < nBins {
			mass[b] += sys.Mass[i]
		}
	}
	r = make([]float64, nBins)
	rho = make([]float64, nBins)
	for b := 0; b < nBins; b++ {
		r1 := math.Pow(10, logMin+float64(b)*(logMax-logMin)/float64(nBins))
		r2 := math.Pow(10, logMin+float64(b+1)*(logMax-logMin)/float64(nBins))
		r[b] = math.Sqrt(r1 * r2)
		v := 4.0 / 3.0 * math.Pi * (r2*r2*r2 - r1*r1*r1)
		rho[b] = mass[b] / v
	}
	return r, rho
}
