package sph

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/grav"
	"repro/internal/keys"
	"repro/internal/tree"
	"repro/internal/vec"
)

func TestKernelNormalization(t *testing.T) {
	// Integrate W over a fine radial grid: 4 pi int r^2 W dr = 1.
	for _, h := range []float64{0.5, 1.0, 2.0} {
		sum := 0.0
		dr := h / 2000
		for r := dr / 2; r < 2*h; r += dr {
			sum += 4 * math.Pi * r * r * W(r, h) * dr
		}
		if math.Abs(sum-1) > 1e-3 {
			t.Fatalf("h=%v: kernel integral %v", h, sum)
		}
	}
}

func TestKernelSupportAndMonotone(t *testing.T) {
	h := 1.0
	if W(2*h, h) != 0 || W(3*h, h) != 0 {
		t.Fatal("kernel must vanish beyond 2h")
	}
	prev := W(0, h)
	for r := 0.05; r < 2; r += 0.05 {
		v := W(r, h)
		if v > prev+1e-12 {
			t.Fatalf("kernel not monotone at r=%v", r)
		}
		prev = v
	}
}

func TestGradWPointsInward(t *testing.T) {
	// The kernel decreases with distance, so GradW (w.r.t. r_i) points
	// from j toward i scaled negatively: rij . grad < 0.
	h := 1.0
	for _, r := range []float64{0.3, 0.8, 1.5} {
		rij := vec.V3{X: r}
		g := GradW(rij, h)
		if rij.Dot(g) >= 0 {
			t.Fatalf("gradient not attractive at r=%v: %v", r, g)
		}
	}
	if GradW(vec.V3{}, 1) != (vec.V3{}) {
		t.Fatal("GradW(0) must be zero")
	}
	if GradW(vec.V3{X: 5}, 1) != (vec.V3{}) {
		t.Fatal("GradW beyond support must be zero")
	}
}

// GradW must be the numerical gradient of W.
func TestGradWMatchesFiniteDifference(t *testing.T) {
	h := 0.9
	for _, r := range []float64{0.2, 0.7, 1.2, 1.9} {
		g := GradW(vec.V3{X: r}, h).X
		const d = 1e-6
		fd := (W(r+d, h) - W(r-d, h)) / (2 * d)
		if math.Abs(g-fd) > 1e-5 {
			t.Fatalf("r=%v: grad %v vs fd %v", r, g, fd)
		}
	}
}

// lattice builds a uniform cubic lattice of n^3 particles with spacing
// dx and smoothing length h, total mass = rho0 * volume.
func lattice(n int, dx, rho0, h float64) *core.System {
	sys := core.New(n * n * n)
	sys.EnableDynamics()
	sys.EnableSPH()
	m := rho0 * dx * dx * dx
	i := 0
	for z := 0; z < n; z++ {
		for y := 0; y < n; y++ {
			for x := 0; x < n; x++ {
				sys.Pos[i] = vec.V3{X: float64(x) * dx, Y: float64(y) * dx, Z: float64(z) * dx}
				sys.Mass[i] = m
				sys.H[i] = h
				i++
			}
		}
	}
	return sys
}

func buildTree(sys *core.System) *tree.Tree {
	d := keys.NewDomain(sys.Pos)
	sys.AssignKeys(d)
	sys.SortByKey()
	return tree.Build(sys, d, grav.MACParams{Kind: grav.MACBarnesHut, Theta: 0.7}, 16)
}

func TestDensityOnUniformLattice(t *testing.T) {
	// Interior particles of a uniform lattice must recover rho0.
	sys := lattice(10, 0.1, 1.0, 0.13)
	tr := buildTree(sys)
	p := &Params{EOS: Isothermal, CS: 1}
	ctr := Density(tr, p)
	if ctr.SPHPairs == 0 {
		t.Fatal("no pairs")
	}
	for i := 0; i < sys.Len(); i++ {
		pos := sys.Pos[i]
		interior := pos.X > 0.25 && pos.X < 0.65 && pos.Y > 0.25 && pos.Y < 0.65 && pos.Z > 0.25 && pos.Z < 0.65
		if !interior {
			continue
		}
		if math.Abs(sys.Rho[i]-1.0) > 0.05 {
			t.Fatalf("interior density %v at %v, want ~1", sys.Rho[i], pos)
		}
	}
}

func TestNeighborsMatchBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	sys := core.New(500)
	sys.EnableSPH()
	sys.EnableDynamics()
	for i := 0; i < 500; i++ {
		sys.Pos[i] = vec.V3{X: rng.Float64(), Y: rng.Float64(), Z: rng.Float64()}
		sys.Mass[i] = 1
	}
	tr := buildTree(sys)
	for trial := 0; trial < 20; trial++ {
		x := vec.V3{X: rng.Float64(), Y: rng.Float64(), Z: rng.Float64()}
		r := 0.05 + 0.3*rng.Float64()
		got := Neighbors(tr, x, r, nil)
		want := map[int32]bool{}
		for i := 0; i < sys.Len(); i++ {
			if sys.Pos[i].Sub(x).Norm() <= r {
				want[int32(i)] = true
			}
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d: %d neighbors, want %d", trial, len(got), len(want))
		}
		for _, j := range got {
			if !want[j] {
				t.Fatalf("trial %d: spurious neighbor %d", trial, j)
			}
		}
	}
}

func TestPressureForcesConserveMomentum(t *testing.T) {
	// Symmetric pairwise forces: sum m*a = 0 even on a perturbed
	// lattice.
	rng := rand.New(rand.NewSource(2))
	sys := lattice(6, 0.1, 1.0, 0.13)
	for i := range sys.Pos {
		sys.Pos[i] = sys.Pos[i].Add(vec.V3{
			X: 0.02 * rng.NormFloat64(),
			Y: 0.02 * rng.NormFloat64(),
			Z: 0.02 * rng.NormFloat64(),
		})
	}
	p := &Params{EOS: Isothermal, CS: 1, AlphaVisc: 1, BetaVisc: 2}
	tr := buildTree(sys)
	Density(tr, p)
	Forces(tr, p)
	var f vec.V3
	var scale float64
	for i := 0; i < sys.Len(); i++ {
		f = f.Add(sys.Acc[i].Scale(sys.Mass[i]))
		scale += sys.Acc[i].Norm() * sys.Mass[i]
	}
	if scale == 0 {
		t.Fatal("no forces at all")
	}
	if f.Norm() > 1e-10*scale {
		t.Fatalf("net force %v (scale %g)", f, scale)
	}
}

func TestCompressionRaisesPressureForce(t *testing.T) {
	// Two particles pushed together must repel; the isothermal EOS is
	// monotone in density.
	p := &Params{EOS: Isothermal, CS: 2}
	if p.pressure(2) <= p.pressure(1) {
		t.Fatal("pressure not monotone in density")
	}
	ideal := &Params{EOS: IdealGas, Gamma: 5.0 / 3.0, U: 1.5}
	if ideal.pressure(2) <= ideal.pressure(1) {
		t.Fatal("ideal gas pressure not monotone")
	}
	if ideal.soundSpeed(1) <= 0 || p.soundSpeed(1) != 2 {
		t.Fatal("sound speeds")
	}
}

func TestStepEndToEnd(t *testing.T) {
	sys := lattice(5, 0.1, 1.0, 0.13)
	// Squeeze the lattice: outward pressure acceleration expected on
	// the boundary particles.
	for i := range sys.Pos {
		sys.Pos[i] = sys.Pos[i].Scale(0.9)
	}
	_, ctr := Step(sys, &Params{EOS: Isothermal, CS: 1}, 16)
	if ctr.SPHPairs == 0 {
		t.Fatal("no SPH pairs")
	}
	if ctr.Flops() == 0 {
		t.Fatal("no flops accounted")
	}
	// The outermost corner particle accelerates outward.
	var corner int
	best := -1.0
	for i := range sys.Pos {
		if d := sys.Pos[i].Norm(); d > best {
			best, corner = d, i
		}
	}
	if sys.Acc[corner].Dot(sys.Pos[corner].Sub(vec.V3{X: 0.18, Y: 0.18, Z: 0.18})) <= 0 {
		t.Fatalf("corner particle accelerates inward: %v", sys.Acc[corner])
	}
}
