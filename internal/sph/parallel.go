package sph

import (
	"math"

	"repro/internal/core"
	"repro/internal/diag"
	"repro/internal/grav"
	"repro/internal/hotengine"
	"repro/internal/integrate"
	"repro/internal/keys"
	"repro/internal/msg"
	"repro/internal/telemetry"
	"repro/internal/tree"
	"repro/internal/vec"
)

// ParallelEngine runs SPH on the distributed hashed oct-tree: the
// third instantiation of the shared pipeline (internal/hotengine),
// the paper's point that SPH was "implemented ... interfaced to
// exactly the same library" as gravity. Density and forces are two
// traversal passes of range queries against the distributed tree:
// each leaf group prunes cells against its search sphere (group
// bounding sphere inflated by the largest kernel support), gathering
// local and imported leaf bodies as neighbor candidates; cells held
// by other ranks arrive through the same deferred-group batched
// request rounds as gravity. Between the passes the imports are
// discarded and re-fetched, because the force pass must see the
// densities the owning ranks just computed, not the stale copies.
// An optional third pass evaluates self-gravity with the gravity
// walker over the same imported cells.
type ParallelEngine struct {
	*hotengine.Engine[hotengine.None, Leaf]
	Cfg ParallelConfig

	phys     *physics
	stack    []keys.Key
	pressure []vec.V3
	// cands and ws are one candidate block / gravity walker per
	// pipeline slot (index = the slot argument of the walk/eval
	// closures); single entries when the pipeline is off.
	cands []candidates
	ws    []*tree.Walker
}

// ParallelConfig controls the distributed SPH evaluation.
type ParallelConfig struct {
	Params Params
	// Bucket is the tree leaf capacity (default 16, matching the
	// serial Step).
	Bucket int
	// Gravity adds a self-gravity pass after the SPH forces; Eps2 is
	// its Plummer softening and Theta the Barnes-Hut opening angle of
	// the shared tree (default 0.7, matching the serial Step).
	Gravity bool
	Eps2    float64
	Theta   float64
	// MaxRounds bounds the request/reply rounds per pass; 0 means 64.
	MaxRounds int
	// EvalWorkers turns on the walk/eval pipeline for the force and
	// gravity passes (the density pass always evaluates inline: it
	// writes Rho, the column the serve path snapshots). 0 = inline;
	// results are bitwise identical either way.
	EvalWorkers int
	// PrefetchDepth makes request replies piggyback the subtree below
	// each cell, that many levels deep. 0 = off.
	PrefetchDepth int
}

// Leaf is the SPH leaf payload of a request reply: every per-body
// column a remote neighbor interaction needs, aliasing the serving
// rank's storage. Rho is whatever the serving rank holds at reply
// time, which is why the force pass re-fetches after the density
// pass completes globally.
type Leaf struct {
	Pos  []vec.V3
	Vel  []vec.V3
	Mass []float64
	H    []float64
	Rho  []float64
	ID   []int64
}

// physics is the SPH instantiation of hotengine.Physics. Like
// gravity, the geometric multipole is all the per-cell state the
// traversal needs (range queries prune on cell geometry alone).
type physics struct {
	e *ParallelEngine

	impPos  []vec.V3
	impVel  []vec.V3
	impMass []float64
	impH    []float64
	impRho  []float64
	impID   []int64
}

func (p *physics) Prepare(sys *core.System) {}
func (p *physics) PostBuild(t *tree.Tree)   {}

func (p *physics) Extra(c *tree.Cell) hotengine.None                 { return hotengine.None{} }
func (p *physics) CombineExtra(acc, _ hotengine.None) hotengine.None { return acc }

// PackLeaf snapshots the leaf's columns rather than aliasing them:
// unlike gravity and vortex, SPH serves replies *while* mutating a
// served column (the density pass writes Rho), so the serving rank
// must copy on its own goroutine, where those writes are sequenced.
// (The requester never consumes a mid-pass Rho — the force pass
// re-fetches after the density pass completes globally — but the
// aliased slice would still be a cross-rank data race.)
func (p *physics) PackLeaf(c *tree.Cell) Leaf {
	sys := p.e.Sys
	lo, hi := c.First, c.First+c.N
	return Leaf{
		Pos:  append([]vec.V3(nil), sys.Pos[lo:hi]...),
		Vel:  append([]vec.V3(nil), sys.Vel[lo:hi]...),
		Mass: append([]float64(nil), sys.Mass[lo:hi]...),
		H:    append([]float64(nil), sys.H[lo:hi]...),
		Rho:  append([]float64(nil), sys.Rho[lo:hi]...),
		ID:   append([]int64(nil), sys.ID[lo:hi]...),
	}
}

func (p *physics) ImportLeaf(n int32, b Leaf) int32 {
	start := int32(len(p.impPos))
	p.impPos = append(p.impPos, b.Pos...)
	p.impVel = append(p.impVel, b.Vel...)
	p.impMass = append(p.impMass, b.Mass...)
	p.impH = append(p.impH, b.H...)
	p.impRho = append(p.impRho, b.Rho...)
	p.impID = append(p.impID, b.ID...)
	return start
}

func (p *physics) ResetImports() {
	p.impPos = p.impPos[:0]
	p.impVel = p.impVel[:0]
	p.impMass = p.impMass[:0]
	p.impH = p.impH[:0]
	p.impRho = p.impRho[:0]
	p.impID = p.impID[:0]
}

// candidates is the reusable SoA neighbor candidate block one group
// gathers before its per-particle distance tests.
type candidates struct {
	pos  []vec.V3
	vel  []vec.V3
	mass []float64
	h    []float64
	rho  []float64
	id   []int64
}

func (c *candidates) reset() {
	c.pos, c.vel = c.pos[:0], c.vel[:0]
	c.mass, c.h, c.rho = c.mass[:0], c.h[:0], c.rho[:0]
	c.id = c.id[:0]
}

// NewParallel wraps this rank's particles.
func NewParallel(c *msg.Comm, sys *core.System, cfg ParallelConfig) *ParallelEngine {
	if cfg.Bucket <= 0 {
		cfg.Bucket = 16
	}
	if cfg.Theta <= 0 {
		cfg.Theta = 0.7
	}
	sys.EnableDynamics()
	sys.EnableSPH()
	e := &ParallelEngine{Cfg: cfg}
	e.phys = &physics{e: e}
	e.Engine = hotengine.New[hotengine.None, Leaf](c, sys, e.phys, hotengine.Config{
		MAC:           grav.MACParams{Kind: grav.MACBarnesHut, Theta: cfg.Theta, Quad: false},
		Bucket:        cfg.Bucket,
		MaxRounds:     cfg.MaxRounds,
		PhasePrefix:   "sph",
		EvalWorkers:   cfg.EvalWorkers,
		PrefetchDepth: cfg.PrefetchDepth,
	})
	e.cands = make([]candidates, e.Slots())
	e.ws = make([]*tree.Walker, e.Slots())
	for i := range e.ws {
		e.ws[i] = new(tree.Walker)
	}
	return e
}

// Eval runs one full distributed evaluation: decompose and exchange,
// then the density pass, a re-fetch, the force pass, and (when
// configured) the gravity pass. On return Sys.Rho holds densities
// and Sys.Acc the pressure (plus gravity) accelerations of the
// redistributed local particles. The returned counters are the
// deltas of this evaluation.
func (e *ParallelEngine) Eval() diag.Counters {
	start := e.Counters
	e.Exchange()
	sys := e.Sys

	// The density pass must evaluate inline (eval nil): it writes
	// Sys.Rho, the column the serve path's PackLeaf snapshots on the
	// rank goroutine -- a concurrent eval stage would race those
	// copies. The force and gravity passes write only per-group
	// pressure/Acc/Pot/Work rows, none of which serve reads, so they
	// pipeline freely.
	e.WalkGroups("density", func(slot int, gk keys.Key, g *tree.Cell, ctr *diag.Counters) []keys.Key {
		return e.walkDensity(g, ctr)
	}, nil)

	// The force pass reads neighbor densities, which the density pass
	// just computed on their owning ranks: drop the stale imports and
	// re-fetch. (WalkGroups completing is a global rendezvous, so
	// every rank's densities are final before any rank re-requests.)
	e.ResetImports()

	if cap(e.pressure) < sys.Len() {
		e.pressure = make([]vec.V3, sys.Len())
	}
	e.pressure = e.pressure[:sys.Len()]
	e.WalkGroups("forces", func(slot int, gk keys.Key, g *tree.Cell, ctr *diag.Counters) []keys.Key {
		lo, hi := g.First, g.First+g.N
		return e.gather(&e.cands[slot], sys.Pos[lo:hi], 2*e.hmax(lo, hi), ctr)
	}, func(slot int, gk keys.Key, g *tree.Cell, ctr *diag.Counters) {
		e.evalForces(&e.cands[slot], g, ctr)
	})

	if e.Cfg.Gravity {
		src := gsource{e}
		e.WalkGroups("gravity", func(slot int, gk keys.Key, g *tree.Cell, ctr *diag.Counters) []keys.Key {
			lo, hi := g.First, g.First+g.N
			return e.ws[slot].Walk(src, gk, sys.Pos[lo:hi], ctr)
		}, func(slot int, gk keys.Key, g *tree.Cell, ctr *diag.Counters) {
			lo, hi := g.First, g.First+g.N
			w := e.ws[slot]
			before := ctr.PP + ctr.PC
			w.Evaluate(sys.Pos[lo:hi], sys.Mass[lo:hi], sys.Acc[lo:hi], sys.Pot[lo:hi], e.Cfg.Eps2, false, ctr)
			if g.N > 0 {
				per := float64(ctr.PP+ctr.PC-before) / float64(g.N)
				for i := lo; i < hi; i++ {
					sys.Work[i] += per
				}
			}
		})
		if len(e.ws) > 1 {
			tree.EqualizeWalkers(e.ws)
		}
		for i := range sys.Acc {
			sys.Acc[i] = sys.Acc[i].Add(e.pressure[i])
		}
	} else {
		copy(sys.Acc, e.pressure)
	}

	return e.Counters.Sub(start)
}

// leafColumns returns the per-body columns of a leaf cell, local or
// imported.
func (e *ParallelEngine) leafColumns(c *tree.Cell) Leaf {
	if c.First >= 0 {
		sys := e.Sys
		lo, hi := c.First, c.First+c.N
		return Leaf{
			Pos: sys.Pos[lo:hi], Vel: sys.Vel[lo:hi], Mass: sys.Mass[lo:hi],
			H: sys.H[lo:hi], Rho: sys.Rho[lo:hi], ID: sys.ID[lo:hi],
		}
	}
	p := e.phys
	lo := -(c.First + 1)
	hi := lo + c.N
	return Leaf{
		Pos: p.impPos[lo:hi], Vel: p.impVel[lo:hi], Mass: p.impMass[lo:hi],
		H: p.impH[lo:hi], Rho: p.impRho[lo:hi], ID: p.impID[lo:hi],
	}
}

// gather collects every body that could lie within rmax of any
// particle of the group into the candidate block, pruning cells
// whose cube is entirely outside the group's search sphere (the same
// cube-versus-sphere test as the serial Neighbors). Missing remote
// cells are returned instead; candidate gathering is suppressed once
// the walk is doomed, but the traversal continues so the whole
// request set batches into one round. gather is the walk stage: it
// always runs on the rank goroutine (Resolve and e.stack are
// single-owner), filling the slot's candidate block for a possibly
// concurrent evaluation.
func (e *ParallelEngine) gather(cand *candidates, gpos []vec.V3, rmax float64, ctr *diag.Counters) (missing []keys.Key) {
	gc, gr := tree.GroupSphere(gpos)
	R := gr + rmax
	cand.reset()
	e.stack = append(e.stack[:0], keys.Root)
	for len(e.stack) > 0 {
		k := e.stack[len(e.stack)-1]
		e.stack = e.stack[:len(e.stack)-1]
		c, _, ok := e.Resolve(k)
		if !ok {
			missing = append(missing, k)
			continue
		}
		ctr.Traversals++
		if c.N == 0 {
			continue
		}
		center, size := e.Domain.CellCenter(k)
		// Prune: the cell cube is entirely outside the sphere when the
		// center distance exceeds R plus the half-diagonal.
		halfDiag := size * math.Sqrt(3) / 2
		if center.Sub(gc).Norm() > R+halfDiag {
			continue
		}
		if c.Leaf {
			if missing == nil {
				b := e.leafColumns(c)
				cand.pos = append(cand.pos, b.Pos...)
				cand.vel = append(cand.vel, b.Vel...)
				cand.mass = append(cand.mass, b.Mass...)
				cand.h = append(cand.h, b.H...)
				cand.rho = append(cand.rho, b.Rho...)
				cand.id = append(cand.id, b.ID...)
			}
			continue
		}
		for oct := 0; oct < 8; oct++ {
			if c.ChildMask&(1<<uint(oct)) != 0 {
				e.stack = append(e.stack, k.Child(oct))
			}
		}
	}
	return missing
}

// hmax returns the largest smoothing length in a body range.
func (e *ParallelEngine) hmax(lo, hi int32) float64 {
	m := 0.0
	for i := lo; i < hi; i++ {
		if e.Sys.H[i] > m {
			m = e.Sys.H[i]
		}
	}
	return m
}

// walkDensity computes rho by kernel summation for one group, with
// the same per-pair arithmetic and pair accounting as the serial
// Density (self included). Inline-only (it writes Sys.Rho and
// Sys.Work, columns the serve path reads), so it always uses slot 0's
// candidate block and the rank's own counters.
func (e *ParallelEngine) walkDensity(g *tree.Cell, ctr *diag.Counters) []keys.Key {
	sys := e.Sys
	cand := &e.cands[0]
	lo, hi := g.First, g.First+g.N
	if missing := e.gather(cand, sys.Pos[lo:hi], 2*e.hmax(lo, hi), ctr); missing != nil {
		return missing
	}
	var pairs uint64
	for i := lo; i < hi; i++ {
		h := sys.H[i]
		r := 2 * h
		rho := 0.0
		for j := range cand.pos {
			d := sys.Pos[i].Sub(cand.pos[j]).Norm()
			if d <= r {
				rho += cand.mass[j] * W(d, h)
				pairs++
			}
		}
		sys.Rho[i] = rho
	}
	ctr.SPHPairs += pairs
	// Neighbor pairs are the work the next decomposition balances
	// (the gravity pass adds its own share on top).
	if g.N > 0 {
		per := float64(pairs) / float64(g.N)
		for i := lo; i < hi; i++ {
			sys.Work[i] = per
		}
	}
	return nil
}

// evalForces computes the symmetric pressure force plus Monaghan
// artificial viscosity for one group from its gathered candidate
// block, matching the serial Forces pair for pair (self-pairs
// excluded by particle ID, which is what the serial index test means
// once neighbors can be remote copies). The eval stage of the force
// pass: it writes only this group's pressure rows and ctr, and reads
// sys columns no concurrent stage writes, so it may run on a worker.
func (e *ParallelEngine) evalForces(cand *candidates, g *tree.Cell, ctr *diag.Counters) {
	sys := e.Sys
	lo, hi := g.First, g.First+g.N
	p := &e.Cfg.Params
	for i := lo; i < hi; i++ {
		hsml := sys.H[i]
		r := 2 * hsml
		Pi := p.pressure(sys.Rho[i])
		var acc vec.V3
		for j := range cand.pos {
			if cand.id[j] == sys.ID[i] {
				continue
			}
			rij := sys.Pos[i].Sub(cand.pos[j])
			if rij.Norm() > r {
				continue
			}
			hbar := 0.5 * (hsml + cand.h[j])
			Pj := p.pressure(cand.rho[j])
			term := Pi/(sys.Rho[i]*sys.Rho[i]) + Pj/(cand.rho[j]*cand.rho[j])
			// Artificial viscosity on approaching pairs.
			if p.AlphaVisc > 0 {
				vij := sys.Vel[i].Sub(cand.vel[j])
				vr := vij.Dot(rij)
				if vr < 0 {
					mu := hbar * vr / (rij.Norm2() + 0.01*hbar*hbar)
					rhob := 0.5 * (sys.Rho[i] + cand.rho[j])
					cbar := 0.5 * (p.soundSpeed(sys.Rho[i]) + p.soundSpeed(cand.rho[j]))
					term += (-p.AlphaVisc*cbar*mu + p.BetaVisc*mu*mu) / rhob
				}
			}
			acc = acc.Sub(GradW(rij, hbar).Scale(cand.mass[j] * term))
			ctr.SPHPairs++
		}
		e.pressure[i] = acc
	}
}

// gsource adapts the engine's cell stores into a tree.Source for the
// gravity walker; the SPH leaf payload carries positions and masses,
// which is all gravity needs.
type gsource struct{ e *ParallelEngine }

func (s gsource) Root() keys.Key { return keys.Root }

func (s gsource) Cell(k keys.Key) *tree.Cell {
	c, _, ok := s.e.Resolve(k)
	if !ok {
		return nil
	}
	return c
}

func (s gsource) LeafBodies(c *tree.Cell) ([]vec.V3, []float64) {
	b := s.e.leafColumns(c)
	return b.Pos, b.Mass
}

// Kick advances velocities by dt using the current accelerations.
func (e *ParallelEngine) Kick(dt float64) { integrate.Kick(e.Sys, dt) }

// Drift advances positions by dt using the current velocities.
func (e *ParallelEngine) Drift(dt float64) { integrate.Drift(e.Sys, dt) }

// sphBodies adapts the engine to integrate.Bodies. SPH stays on
// uniform steps -- the hydrodynamic state (density, pressure) has no
// per-rung partial evaluation here -- so minRung is ignored and every
// Forces call is a full Eval.
type sphBodies struct{ e *ParallelEngine }

func (b sphBodies) Sys() *core.System { return b.e.Sys }
func (b sphBodies) Forces(int)        { b.e.Eval() }
func (b sphBodies) MaxRung(local int) int {
	return msg.Allreduce(b.e.C, local, msg.MaxI, 8)
}

// Step advances one uniform kick-drift-kick leapfrog step through the
// shared integrate core. The engine's accelerations must be current
// (call Eval once before the first Step). The evaluation inside
// redistributes particles, so callers must track them by ID.
func (e *ParallelEngine) Step(dt float64) diag.Counters {
	start := e.Counters
	st := integrate.Stepper{B: sphBodies{e}}
	st.Step(dt)
	return e.Counters.Sub(start)
}

// Telemetry extends the pipeline's rank sample with SPH's invariants:
// this rank's partial kinetic energy and momentum (plus gravitational
// potential when the gravity pass runs), summed across ranks by the
// sampler. Call from the rank's own goroutine right after Step.
func (e *ParallelEngine) Telemetry(stepNs int64) telemetry.RankSample {
	rs := e.Engine.TelemetrySample(stepNs)
	rs.HasEnergy = true
	for i := range e.Sys.Vel {
		rs.Kinetic += 0.5 * e.Sys.Mass[i] * e.Sys.Vel[i].Norm2()
		rs.Momentum = rs.Momentum.Add(e.Sys.Vel[i].Scale(e.Sys.Mass[i]))
	}
	if e.Cfg.Gravity {
		for i := range e.Sys.Pot {
			rs.Potential += 0.5 * e.Sys.Mass[i] * e.Sys.Pot[i]
		}
	}
	return rs
}
