// Package sph implements smoothed particle hydrodynamics on top of the
// same hashed oct-tree as gravity and the vortex method -- the paper's
// "portable parallel particle program" point: SPH was "implemented
// with 3000 lines interfaced to exactly the same library".
//
// The implementation is the standard compressible SPH of Monaghan:
// cubic-spline kernel, density by summation, symmetric pressure
// forces with artificial viscosity, and an isothermal or ideal-gas
// equation of state. Neighbor finding is a range query over the
// oct-tree, so the cost per step is O(N log N).
package sph

import (
	"math"

	"repro/internal/core"
	"repro/internal/diag"
	"repro/internal/grav"
	"repro/internal/keys"
	"repro/internal/tree"
	"repro/internal/vec"
)

// W returns the 3-D cubic spline kernel W(r, h), normalized so that
// its integral over R^3 is 1. Support radius is 2h.
func W(r, h float64) float64 {
	q := r / h
	n := 1 / (math.Pi * h * h * h)
	switch {
	case q < 1:
		return n * (1 - 1.5*q*q + 0.75*q*q*q)
	case q < 2:
		d := 2 - q
		return n * 0.25 * d * d * d
	default:
		return 0
	}
}

// GradW returns the gradient of the kernel with respect to r_i, where
// rij = r_i - r_j (a vector of magnitude r).
func GradW(rij vec.V3, h float64) vec.V3 {
	r := rij.Norm()
	if r == 0 {
		return vec.V3{}
	}
	q := r / h
	n := 1 / (math.Pi * h * h * h * h)
	var dw float64
	switch {
	case q < 1:
		dw = n * (-3*q + 2.25*q*q)
	case q < 2:
		d := 2 - q
		dw = -n * 0.75 * d * d
	default:
		return vec.V3{}
	}
	return rij.Scale(dw / r)
}

// EOS selects the equation of state.
type EOS int

const (
	// Isothermal: P = c^2 rho.
	Isothermal EOS = iota
	// IdealGas: P = (gamma-1) rho u with fixed specific energy u.
	IdealGas
)

// Params configures an SPH evaluation.
type Params struct {
	EOS EOS
	// CS is the (isothermal) sound speed.
	CS float64
	// Gamma and U parameterize the ideal gas EOS.
	Gamma, U float64
	// AlphaVisc and BetaVisc are the Monaghan artificial viscosity
	// coefficients (typical 1.0 and 2.0; zero disables).
	AlphaVisc, BetaVisc float64
}

// pressure evaluates the EOS.
func (p *Params) pressure(rho float64) float64 {
	switch p.EOS {
	case Isothermal:
		return p.CS * p.CS * rho
	case IdealGas:
		return (p.Gamma - 1) * rho * p.U
	default:
		panic("sph: unknown EOS")
	}
}

func (p *Params) soundSpeed(rho float64) float64 {
	switch p.EOS {
	case Isothermal:
		return p.CS
	default:
		return math.Sqrt(p.Gamma * (p.Gamma - 1) * p.U)
	}
}

// Neighbors returns the indices (into the key-sorted system that tr
// was built over) of all bodies within radius r of x, found by
// pruning tree cells against the search sphere.
func Neighbors(tr *tree.Tree, x vec.V3, r float64, out []int32) []int32 {
	out = out[:0]
	stack := []keys.Key{keys.Root}
	for len(stack) > 0 {
		k := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		c := tr.Cell(k)
		if c == nil || c.N == 0 {
			continue
		}
		center, size := tr.Domain.CellCenter(k)
		// Prune: the cell cube is entirely outside the sphere when the
		// center distance exceeds r plus the half-diagonal.
		halfDiag := size * math.Sqrt(3) / 2
		if center.Sub(x).Norm() > r+halfDiag {
			continue
		}
		if c.Leaf {
			for i := c.First; i < c.First+c.N; i++ {
				if tr.Sys.Pos[i].Sub(x).Norm() <= r {
					out = append(out, i)
				}
			}
			continue
		}
		for oct := 0; oct < 8; oct++ {
			if c.ChildMask&(1<<uint(oct)) != 0 {
				stack = append(stack, k.Child(oct))
			}
		}
	}
	return out
}

// Density fills sys.Rho by kernel summation over neighbors within 2h
// (per-particle smoothing lengths from sys.H). The system must be
// key-sorted with a tree built over it.
func Density(tr *tree.Tree, p *Params) diag.Counters {
	var ctr diag.Counters
	sys := tr.Sys
	var nb []int32
	for i := 0; i < sys.Len(); i++ {
		h := sys.H[i]
		nb = Neighbors(tr, sys.Pos[i], 2*h, nb)
		rho := 0.0
		for _, j := range nb {
			rho += sys.Mass[j] * W(sys.Pos[i].Sub(sys.Pos[j]).Norm(), h)
		}
		sys.Rho[i] = rho
		ctr.SPHPairs += uint64(len(nb))
	}
	return ctr
}

// Forces fills sys.Acc with the symmetric SPH pressure force plus
// Monaghan artificial viscosity. Density must be current. Gravity is
// not included here (combine with the gravity driver when needed).
func Forces(tr *tree.Tree, p *Params) diag.Counters {
	var ctr diag.Counters
	sys := tr.Sys
	var nb []int32
	for i := 0; i < sys.Len(); i++ {
		hi := sys.H[i]
		Pi := p.pressure(sys.Rho[i])
		var acc vec.V3
		nb = Neighbors(tr, sys.Pos[i], 2*hi, nb)
		for _, j := range nb {
			if int(j) == i {
				continue
			}
			rij := sys.Pos[i].Sub(sys.Pos[int(j)])
			hbar := 0.5 * (hi + sys.H[j])
			Pj := p.pressure(sys.Rho[j])
			term := Pi/(sys.Rho[i]*sys.Rho[i]) + Pj/(sys.Rho[j]*sys.Rho[j])
			// Artificial viscosity on approaching pairs.
			if p.AlphaVisc > 0 {
				vij := sys.Vel[i].Sub(sys.Vel[int(j)])
				vr := vij.Dot(rij)
				if vr < 0 {
					mu := hbar * vr / (rij.Norm2() + 0.01*hbar*hbar)
					rhob := 0.5 * (sys.Rho[i] + sys.Rho[j])
					cbar := 0.5 * (p.soundSpeed(sys.Rho[i]) + p.soundSpeed(sys.Rho[j]))
					term += (-p.AlphaVisc*cbar*mu + p.BetaVisc*mu*mu) / rhob
				}
			}
			acc = acc.Sub(GradW(rij, hbar).Scale(sys.Mass[j] * term))
			ctr.SPHPairs++
		}
		sys.Acc[i] = acc
	}
	return ctr
}

// Step runs one full SPH evaluation (tree build, density, forces) and
// returns the tree for reuse. mac and bucket follow the tree defaults
// when zero-valued.
func Step(sys *core.System, p *Params, bucket int) (*tree.Tree, diag.Counters) {
	sys.EnableSPH()
	sys.EnableDynamics()
	d := keys.NewDomain(sys.Pos)
	sys.AssignKeys(d)
	sys.SortByKey()
	tr := tree.Build(sys, d, grav.MACParams{Kind: grav.MACBarnesHut, Theta: 0.7, Quad: false}, bucket)
	ctr := Density(tr, p)
	ctr2 := Forces(tr, p)
	ctr.Add(ctr2)
	return tr, ctr
}
