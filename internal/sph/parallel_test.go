package sph

import (
	"math"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/integrate"
	"repro/internal/msg"
	"repro/internal/vec"
)

// lattice builds the uniform-lattice gas the equivalence tests run
// on: side^3 particles on a regular grid with a converging velocity
// field (so the artificial-viscosity branch is exercised) and a
// smoothing length of ~1.1 grid spacings.
func gasLattice(side int) *core.System {
	n := side * side * side
	sys := core.New(n)
	sys.EnableDynamics()
	sys.EnableSPH()
	spacing := 1.0 / float64(side)
	i := 0
	for x := 0; x < side; x++ {
		for y := 0; y < side; y++ {
			for z := 0; z < side; z++ {
				sys.Pos[i] = vec.V3{
					X: (float64(x) + 0.5) * spacing,
					Y: (float64(y) + 0.5) * spacing,
					Z: (float64(z) + 0.5) * spacing,
				}
				sys.Mass[i] = 1.0 / float64(n)
				// Converging flow toward the center.
				sys.Vel[i] = vec.V3{X: 0.5, Y: 0.5, Z: 0.5}.Sub(sys.Pos[i]).Scale(0.3)
				sys.H[i] = 1.1 * spacing
				i++
			}
		}
	}
	return sys
}

func scatterSPH(global *core.System, c *msg.Comm) *core.System {
	n := global.Len()
	lo, hi := c.Rank()*n/c.Size(), (c.Rank()+1)*n/c.Size()
	local := core.New(0)
	local.EnableDynamics()
	local.EnableSPH()
	for i := lo; i < hi; i++ {
		local.AppendFrom(global, i)
	}
	return local
}

// TestParallelMatchesSerial asserts the distributed density and
// pressure forces match the serial Step on 1, 2 and 8 ranks: same
// pair counts exactly, densities and accelerations to roundoff (the
// candidate-gathering order can differ from the per-particle query
// order where the distributed tree force-splits a leaf, so sums may
// reassociate, but the neighbor sets are identical).
func TestParallelMatchesSerial(t *testing.T) {
	p := Params{EOS: Isothermal, CS: 1.0, AlphaVisc: 1, BetaVisc: 2}

	serial := gasLattice(8)
	_, sctr := Step(serial, &p, 16)
	refRho := make(map[int64]float64, serial.Len())
	refAcc := make(map[int64]vec.V3, serial.Len())
	accScale := 0.0
	for i := 0; i < serial.Len(); i++ {
		refRho[serial.ID[i]] = serial.Rho[i]
		refAcc[serial.ID[i]] = serial.Acc[i]
		if a := serial.Acc[i].Norm(); a > accScale {
			accScale = a
		}
	}

	for _, np := range []int{1, 2, 8} {
		var mu sync.Mutex
		var pairs uint64
		var maxRhoErr, maxAccErr float64
		remote := 0
		msg.Run(np, func(c *msg.Comm) {
			e := NewParallel(c, scatterSPH(gasLattice(8), c), ParallelConfig{Params: p})
			e.Eval()
			mu.Lock()
			defer mu.Unlock()
			pairs += e.Counters.SPHPairs
			remote += e.RemoteCells
			for i := 0; i < e.Sys.Len(); i++ {
				id := e.Sys.ID[i]
				if d := math.Abs(e.Sys.Rho[i]-refRho[id]) / refRho[id]; d > maxRhoErr {
					maxRhoErr = d
				}
				if d := e.Sys.Acc[i].Sub(refAcc[id]).Norm() / accScale; d > maxAccErr {
					maxAccErr = d
				}
			}
		})
		if pairs != sctr.SPHPairs {
			t.Errorf("np=%d: SPH pairs = %d, serial = %d (neighbor sets differ)", np, pairs, sctr.SPHPairs)
		}
		if maxRhoErr > 1e-12 {
			t.Errorf("np=%d: max relative density error %g", np, maxRhoErr)
		}
		if maxAccErr > 1e-11 {
			t.Errorf("np=%d: max relative acceleration error %g", np, maxAccErr)
		}
		if np > 1 && remote == 0 {
			t.Errorf("np=%d: no remote cells imported; halo exchange untested", np)
		}
	}
}

// TestParallelWithGravityMatchesSerial adds the self-gravity pass and
// compares against the serial mirror (sph.Step pressure plus
// tree.Gravity on the shared tree). One rank must agree to roundoff;
// on more ranks the force-split tree legitimately changes which cells
// the gravity MAC accepts, so the comparison loosens to the MAC error
// scale while densities stay exact.
func TestParallelWithGravityMatchesSerial(t *testing.T) {
	const eps2 = 1e-4
	p := Params{EOS: Isothermal, CS: 1.0, AlphaVisc: 1, BetaVisc: 2}

	serial := gasLattice(8)
	tr, _ := Step(serial, &p, 16)
	pressure := append(serial.Acc[:0:0], serial.Acc...)
	tr.Gravity(eps2)
	for i := range serial.Acc {
		serial.Acc[i] = serial.Acc[i].Add(pressure[i])
	}
	refAcc := make(map[int64]vec.V3, serial.Len())
	accScale := 0.0
	for i := 0; i < serial.Len(); i++ {
		refAcc[serial.ID[i]] = serial.Acc[i]
		if a := serial.Acc[i].Norm(); a > accScale {
			accScale = a
		}
	}

	for _, np := range []int{1, 2, 8} {
		tol := 1e-11
		if np > 1 {
			tol = 2e-2
		}
		var mu sync.Mutex
		maxAccErr := 0.0
		msg.Run(np, func(c *msg.Comm) {
			e := NewParallel(c, scatterSPH(gasLattice(8), c), ParallelConfig{
				Params: p, Gravity: true, Eps2: eps2,
			})
			e.Eval()
			mu.Lock()
			defer mu.Unlock()
			for i := 0; i < e.Sys.Len(); i++ {
				if d := e.Sys.Acc[i].Sub(refAcc[e.Sys.ID[i]]).Norm() / accScale; d > maxAccErr {
					maxAccErr = d
				}
			}
		})
		if maxAccErr > tol {
			t.Errorf("np=%d: max relative acceleration error %g > %g", np, maxAccErr, tol)
		}
	}
}

// TestParallelStepMatchesLeapfrog integrates the pressure-only gas
// for a few KDK steps on 2 ranks and compares trajectories against
// the serial leapfrog driving sph.Step, by particle ID.
func TestParallelStepMatchesLeapfrog(t *testing.T) {
	const dt, steps = 1e-3, 3
	p := Params{EOS: Isothermal, CS: 1.0, AlphaVisc: 1, BetaVisc: 2}

	serial := gasLattice(6)
	forces := func(s *core.System) {
		Step(s, &p, 16)
	}
	forces(serial)
	integrate.Leapfrog(serial, forces, dt, steps)
	refPos := make(map[int64]vec.V3, serial.Len())
	for i := 0; i < serial.Len(); i++ {
		refPos[serial.ID[i]] = serial.Pos[i]
	}

	var mu sync.Mutex
	maxErr := 0.0
	total := 0
	msg.Run(2, func(c *msg.Comm) {
		e := NewParallel(c, scatterSPH(gasLattice(6), c), ParallelConfig{Params: p})
		e.Eval()
		for s := 0; s < steps; s++ {
			e.Step(dt)
		}
		mu.Lock()
		defer mu.Unlock()
		total += e.Sys.Len()
		for i := 0; i < e.Sys.Len(); i++ {
			if d := e.Sys.Pos[i].Sub(refPos[e.Sys.ID[i]]).Norm(); d > maxErr {
				maxErr = d
			}
		}
	})
	if total != serial.Len() {
		t.Fatalf("particles lost: %d of %d", total, serial.Len())
	}
	if maxErr > 1e-9 {
		t.Errorf("max position divergence after %d steps: %g", steps, maxErr)
	}
}
