package parallel

import (
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/grav"
	"repro/internal/ic"
	"repro/internal/keys"
	"repro/internal/msg"
	"repro/internal/tree"
	"repro/internal/vec"
)

// TestEquivalenceWithSerialTree compares the distributed engine at
// 1, 2 and 8 ranks against the serial tree evaluation on a Plummer
// sphere. On one rank the pipeline must reproduce the serial walk
// bit for bit with identical interaction counts (same domain, same
// sort, same tree, same kernels); on more ranks the force-split
// local trees legitimately refine leaves at interval boundaries, so
// counts shift slightly and forces agree to the MAC error scale.
func TestEquivalenceWithSerialTree(t *testing.T) {
	const n = 1200
	mac := grav.MACParams{Kind: grav.MACSalmonWarren, AccelTol: 1e-4, Quad: true}
	const eps2 = 1e-6

	serial := ic.Plummer(n, 1.0, 17)
	d := keys.NewDomain(serial.Pos)
	serial.AssignKeys(d)
	serial.SortByKey()
	str := tree.Build(serial, d, mac, tree.DefaultBucketSize)
	sctr := str.Gravity(eps2)
	refAcc := make(map[int64]vec.V3, n)
	refPot := make(map[int64]float64, n)
	accScale := 0.0
	for i := 0; i < n; i++ {
		refAcc[serial.ID[i]] = serial.Acc[i]
		refPot[serial.ID[i]] = serial.Pot[i]
		if a := serial.Acc[i].Norm(); a > accScale {
			accScale = a
		}
	}

	for _, np := range []int{1, 2, 8} {
		var mu sync.Mutex
		var pp, pc uint64
		maxErr := 0.0
		exact := true
		msg.Run(np, func(c *msg.Comm) {
			global := ic.Plummer(n, 1.0, 17)
			local := core.New(0)
			local.EnableDynamics()
			lo, hi := c.Rank()*n/c.Size(), (c.Rank()+1)*n/c.Size()
			for i := lo; i < hi; i++ {
				local.AppendFrom(global, i)
			}
			e := New(c, local, Config{MAC: mac, Eps2: eps2})
			e.ComputeForces()
			mu.Lock()
			defer mu.Unlock()
			pp += e.Counters.PP
			pc += e.Counters.PC
			for i := 0; i < e.Sys.Len(); i++ {
				id := e.Sys.ID[i]
				if e.Sys.Acc[i] != refAcc[id] || e.Sys.Pot[i] != refPot[id] {
					exact = false
				}
				if diff := e.Sys.Acc[i].Sub(refAcc[id]).Norm() / accScale; diff > maxErr {
					maxErr = diff
				}
			}
		})
		if np == 1 {
			if !exact {
				t.Errorf("np=1: forces differ bitwise from the serial tree walk (max rel %g)", maxErr)
			}
			if pp != sctr.PP || pc != sctr.PC {
				t.Errorf("np=1: interactions PP=%d PC=%d, serial PP=%d PC=%d", pp, pc, sctr.PP, sctr.PC)
			}
		} else {
			if maxErr > 2e-3 {
				t.Errorf("np=%d: max relative force deviation from serial tree %g", np, maxErr)
			}
			// The walk does the same amount of physics: counts move
			// only by the boundary refinement.
			ratio := float64(pp+pc) / float64(sctr.PP+sctr.PC)
			if ratio < 0.9 || ratio > 1.2 {
				t.Errorf("np=%d: interaction count ratio vs serial %g", np, ratio)
			}
		}
	}
}
