package parallel

import (
	"repro/internal/diag"
	"repro/internal/msg"
)

// BalanceReport summarizes how evenly the last force evaluation's
// work spread across ranks. The paper singles this out: "The load
// balancing problem associated with galaxy formation is probably more
// severe than any other conventional computational physics
// algorithm." A collective: every rank must call it.
type BalanceReport struct {
	// Work is the balance of interaction counts per rank.
	Work diag.Balance
	// Bodies is the balance of local body counts.
	Bodies diag.Balance
	// RemoteCells is the balance of imported cells (communication
	// hot spots).
	RemoteCells diag.Balance
}

// Balance gathers per-rank statistics (collective).
func (e *Engine) Balance() BalanceReport {
	gather := func(v float64) []float64 {
		return msg.Allgather(e.C, v, 8)
	}
	return BalanceReport{
		Work:        diag.BalanceOf(gather(float64(e.Counters.Interactions()))),
		Bodies:      diag.BalanceOf(gather(float64(e.Sys.Len()))),
		RemoteCells: diag.BalanceOf(gather(float64(e.RemoteCells))),
	}
}
