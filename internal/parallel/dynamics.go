package parallel

import (
	"repro/internal/diag"
	"repro/internal/msg"
	"repro/internal/vec"
)

// Kick advances velocities by dt using the current accelerations.
func (e *Engine) Kick(dt float64) {
	for i := range e.Sys.Vel {
		e.Sys.Vel[i] = e.Sys.Vel[i].Add(e.Sys.Acc[i].Scale(dt))
	}
}

// Drift advances positions by dt using the current velocities.
func (e *Engine) Drift(dt float64) {
	for i := range e.Sys.Pos {
		e.Sys.Pos[i] = e.Sys.Pos[i].Add(e.Sys.Vel[i].Scale(dt))
	}
}

// Step advances one kick-drift-kick leapfrog step. The engine's
// accelerations must be current (call ComputeForces once before the
// first Step).
func (e *Engine) Step(dt float64) diag.Counters {
	e.Kick(dt / 2)
	e.Drift(dt)
	ctr := e.ComputeForces()
	e.Kick(dt / 2)
	return ctr
}

// Energy returns the global kinetic and potential energy (collective;
// potential requires a preceding ComputeForces).
func (e *Engine) Energy() (kin, pot float64) {
	type en struct{ K, P float64 }
	var loc en
	for i := range e.Sys.Vel {
		loc.K += 0.5 * e.Sys.Mass[i] * e.Sys.Vel[i].Norm2()
		loc.P += 0.5 * e.Sys.Mass[i] * e.Sys.Pot[i]
	}
	g := msg.Allreduce(e.C, loc, func(a, b en) en { return en{a.K + b.K, a.P + b.P} }, 16)
	return g.K, g.P
}

// Momentum returns the global total momentum (collective).
func (e *Engine) Momentum() vec.V3 {
	var loc vec.V3
	for i := range e.Sys.Vel {
		loc = loc.Add(e.Sys.Vel[i].Scale(e.Sys.Mass[i]))
	}
	return msg.Allreduce(e.C, loc, func(a, b vec.V3) vec.V3 { return a.Add(b) }, 24)
}

// GlobalLen returns the global body count (collective).
func (e *Engine) GlobalLen() int64 {
	return msg.Allreduce(e.C, int64(e.Sys.Len()), msg.SumI64, 8)
}
