package parallel

import (
	"repro/internal/diag"
	"repro/internal/integrate"
	"repro/internal/msg"
	"repro/internal/telemetry"
	"repro/internal/vec"
)

// Kick advances velocities by dt using the current accelerations.
func (e *Engine) Kick(dt float64) { integrate.Kick(e.Sys, dt) }

// Drift advances positions by dt using the current velocities.
func (e *Engine) Drift(dt float64) { integrate.Drift(e.Sys, dt) }

// Step advances one global step through the engine's Stepper: the
// kick-drift-kick leapfrog by default, hierarchical block sub-steps
// when the driver configured Stepper.Scheme (a collective either
// way). The engine's accelerations must be current (call
// ComputeForces once before the first Step); they are current again
// on return. Returns this step's interaction-counter delta, summed
// over however many (partial) evaluations the step ran.
func (e *Engine) Step(dt float64) diag.Counters {
	start := e.Counters
	e.Stepper.Step(dt)
	return e.Counters.Sub(start)
}

// Telemetry extends the pipeline's rank sample with gravity's
// invariants and the scheduler accounting: the energy and momentum
// contributions are this rank's partial sums (no collective -- the
// sampler adds the ranks up), SubSteps..TotalSinks the cumulative
// stepper totals, Rungs the current occupancy. Call from the rank's
// own goroutine right after Step, where Acc/Pot are current.
func (e *Engine) Telemetry(stepNs int64) telemetry.RankSample {
	rs := e.Engine.TelemetrySample(stepNs)
	rs.HasEnergy = true
	for i := range e.Sys.Vel {
		rs.Kinetic += 0.5 * e.Sys.Mass[i] * e.Sys.Vel[i].Norm2()
		rs.Potential += 0.5 * e.Sys.Mass[i] * e.Sys.Pot[i]
		rs.Momentum = rs.Momentum.Add(e.Sys.Vel[i].Scale(e.Sys.Mass[i]))
	}
	s := e.Stepper.Stats
	rs.SubSteps = s.SubSteps
	rs.FullEvals = s.FullEvals
	rs.PartialEvals = s.PartialEvals
	rs.ActiveSinks = s.ActiveSinks
	rs.TotalSinks = s.TotalSinks
	integrate.CountRungs(e.Sys, rs.Rungs[:])
	return rs
}

// Energy returns the global kinetic and potential energy (collective;
// potential requires a preceding ComputeForces).
func (e *Engine) Energy() (kin, pot float64) {
	type en struct{ K, P float64 }
	var loc en
	for i := range e.Sys.Vel {
		loc.K += 0.5 * e.Sys.Mass[i] * e.Sys.Vel[i].Norm2()
		loc.P += 0.5 * e.Sys.Mass[i] * e.Sys.Pot[i]
	}
	g := msg.Allreduce(e.C, loc, func(a, b en) en { return en{a.K + b.K, a.P + b.P} }, 16)
	return g.K, g.P
}

// Momentum returns the global total momentum (collective).
func (e *Engine) Momentum() vec.V3 {
	var loc vec.V3
	for i := range e.Sys.Vel {
		loc = loc.Add(e.Sys.Vel[i].Scale(e.Sys.Mass[i]))
	}
	return msg.Allreduce(e.C, loc, func(a, b vec.V3) vec.V3 { return a.Add(b) }, 24)
}

// GlobalLen returns the global body count (collective).
func (e *Engine) GlobalLen() int64 {
	return msg.Allreduce(e.C, int64(e.Sys.Len()), msg.SumI64, 8)
}
