package parallel

import (
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/grav"
	"repro/internal/ic"
	"repro/internal/msg"
	"repro/internal/vec"
)

// runKernels runs one force evaluation at np ranks with the given
// kernel implementation and returns per-body-ID forces and the summed
// interaction counts.
func runKernels(t *testing.T, np, n int, im grav.Impl, mac grav.MACParams, eps2 float64) (map[int64]vec.V3, map[int64]float64, uint64, uint64) {
	t.Helper()
	acc := make(map[int64]vec.V3, n)
	pot := make(map[int64]float64, n)
	var mu sync.Mutex
	var pp, pc uint64
	msg.Run(np, func(c *msg.Comm) {
		global := ic.Plummer(n, 1.0, 17)
		local := core.New(0)
		local.EnableDynamics()
		lo, hi := c.Rank()*n/c.Size(), (c.Rank()+1)*n/c.Size()
		for i := lo; i < hi; i++ {
			local.AppendFrom(global, i)
		}
		e := New(c, local, Config{MAC: mac, Eps2: eps2, Kernels: im})
		e.ComputeForces()
		mu.Lock()
		defer mu.Unlock()
		pp += e.Counters.PP
		pc += e.Counters.PC
		for i := 0; i < e.Sys.Len(); i++ {
			acc[e.Sys.ID[i]] = e.Sys.Acc[i]
			pot[e.Sys.ID[i]] = e.Sys.Pot[i]
		}
	})
	return acc, pot, pp, pc
}

// TestKernelEquivalenceAcrossRanks is the engine-level switch's
// guarantee: at np = 1, 2 and 8 the tiled kernels must produce exactly
// the same interaction counts as the reference kernels (the tiling
// never changes which interactions happen) and forces within 1e-13
// relative (only the association order of per-tile partial sums
// differs).
func TestKernelEquivalenceAcrossRanks(t *testing.T) {
	const n = 1200
	mac := grav.MACParams{Kind: grav.MACSalmonWarren, AccelTol: 1e-4, Quad: true}
	const eps2 = 1e-6

	for _, np := range []int{1, 2, 8} {
		accT, potT, ppT, pcT := runKernels(t, np, n, grav.ImplTiled, mac, eps2)
		accR, potR, ppR, pcR := runKernels(t, np, n, grav.ImplRef, mac, eps2)
		if ppT != ppR || pcT != pcR {
			t.Errorf("np=%d: counts tiled PP=%d PC=%d, ref PP=%d PC=%d", np, ppT, pcT, ppR, pcR)
		}
		if len(accT) != n || len(accR) != n {
			t.Fatalf("np=%d: missing bodies (tiled %d, ref %d of %d)", np, len(accT), len(accR), n)
		}
		accScale := 0.0
		for _, a := range accR {
			if v := a.Norm(); v > accScale {
				accScale = v
			}
		}
		maxErr := 0.0
		for id, ar := range accR {
			at := accT[id]
			if diff := at.Sub(ar).Norm() / accScale; diff > maxErr {
				maxErr = diff
			}
			pr, pt := potR[id], potT[id]
			if d := pr - pt; d > 1e-13*(-pr) || d < -1e-13*(-pr) {
				t.Errorf("np=%d body %d: potential tiled %g ref %g", np, id, pt, pr)
			}
		}
		if maxErr > 1e-13 {
			t.Errorf("np=%d: max relative force difference tiled vs ref %g > 1e-13", np, maxErr)
		}
	}
}
