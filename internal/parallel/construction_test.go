package parallel

import (
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/grav"
	"repro/internal/ic"
	"repro/internal/msg"
	"repro/internal/vec"
)

// evalSnap freezes one evaluation's global outcome.
type evalSnap struct {
	acc    map[int64]vec.V3
	pot    map[int64]float64
	pp, pc uint64
}

// driftByID nudges every body by a hash of (ID, step), identically on
// any rank that holds it, so consecutive evaluations exercise the
// incremental resort and warm bisection.
func driftByID(sys *core.System, step int) {
	for i := 0; i < sys.Len(); i++ {
		h := uint64(sys.ID[i])*2654435761 + uint64(step)*0x9e3779b9
		f := func(shift uint) float64 {
			return (float64((h>>shift)%1024)/1024 - 0.5) * 1e-4
		}
		sys.Pos[i] = sys.Pos[i].Add(vec.V3{X: f(0), Y: f(10), Z: f(20)})
	}
}

// runPipeline runs `evals` force evaluations at np ranks under cfg,
// drifting bodies between them, and snapshots each.
func runPipeline(t *testing.T, n, np, evals int, cfg Config) []evalSnap {
	t.Helper()
	snaps := make([]evalSnap, evals)
	for s := range snaps {
		snaps[s].acc = make(map[int64]vec.V3, n)
		snaps[s].pot = make(map[int64]float64, n)
	}
	var mu sync.Mutex
	msg.Run(np, func(c *msg.Comm) {
		global := ic.Plummer(n, 1.0, 23)
		local := core.New(0)
		local.EnableDynamics()
		lo, hi := c.Rank()*n/np, (c.Rank()+1)*n/np
		for i := lo; i < hi; i++ {
			local.AppendFrom(global, i)
		}
		e := New(c, local, cfg)
		prev := e.Counters
		for s := 0; s < evals; s++ {
			if s > 0 {
				driftByID(e.Sys, s)
			}
			e.ComputeForces()
			mu.Lock()
			snaps[s].pp += e.Counters.PP - prev.PP
			snaps[s].pc += e.Counters.PC - prev.PC
			prev = e.Counters
			for i := 0; i < e.Sys.Len(); i++ {
				snaps[s].acc[e.Sys.ID[i]] = e.Sys.Acc[i]
				snaps[s].pot[e.Sys.ID[i]] = e.Sys.Pot[i]
			}
			mu.Unlock()
		}
	})
	return snaps
}

// The construction pipeline's knobs (worker fan-out, incremental vs
// cold decomposition) must not change a single output bit: same
// forces, same potentials, same interaction counts, at every rank
// count and on every evaluation of a drifting multi-step run.
func TestConstructionEquivalenceAcrossPipelines(t *testing.T) {
	const n, evals = 1200, 3
	base := Config{
		MAC:  grav.MACParams{Kind: grav.MACSalmonWarren, AccelTol: 1e-4, Quad: true},
		Eps2: 1e-6,
	}
	variants := []struct {
		name string
		mod  func(Config) Config
	}{
		{"serialBuild", func(c Config) Config { c.BuildWorkers = 1; return c }},
		{"parallelBuild", func(c Config) Config { c.BuildWorkers = 8; return c }},
		{"coldStart", func(c Config) Config { c.ColdStart = true; return c }},
		{"coldParallel", func(c Config) Config { c.ColdStart = true; c.BuildWorkers = 8; return c }},
	}
	for _, np := range []int{1, 2, 8} {
		ref := runPipeline(t, n, np, evals, base)
		for _, v := range variants {
			got := runPipeline(t, n, np, evals, v.mod(base))
			for s := 0; s < evals; s++ {
				if got[s].pp != ref[s].pp || got[s].pc != ref[s].pc {
					t.Errorf("np=%d %s eval=%d: PP/PC %d/%d, want %d/%d",
						np, v.name, s, got[s].pp, got[s].pc, ref[s].pp, ref[s].pc)
				}
				if len(got[s].acc) != len(ref[s].acc) {
					t.Fatalf("np=%d %s eval=%d: %d bodies, want %d", np, v.name, s, len(got[s].acc), len(ref[s].acc))
				}
				for id, a := range ref[s].acc {
					if got[s].acc[id] != a || got[s].pot[id] != ref[s].pot[id] {
						t.Fatalf("np=%d %s eval=%d: body %d force differs bitwise", np, v.name, s, id)
					}
				}
			}
		}
	}
}
