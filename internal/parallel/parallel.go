// Package parallel is the distributed gravitational N-body engine:
// the paper's parallel treecode instantiated on the shared HOT
// pipeline (internal/hotengine). The pipeline owns the four phases --
// work-weighted domain decomposition, local tree build plus branch
// exchange, deferred-group traversal, batched request rounds -- and
// this package supplies only what is gravitational about them: the
// per-cell payload is empty (the geometric multipole every cell
// carries IS the gravity moment), leaf replies carry position and
// mass columns, and each completed group walk is evaluated with the
// batched SoA kernels (grav.EvalPP/EvalM2P/EvalSelf) through
// tree.Walker.
package parallel

import (
	"math"

	"repro/internal/core"
	"repro/internal/diag"
	"repro/internal/grav"
	"repro/internal/hotengine"
	"repro/internal/integrate"
	"repro/internal/keys"
	"repro/internal/metrics"
	"repro/internal/msg"
	"repro/internal/tree"
	"repro/internal/vec"
)

// Config controls the parallel force evaluation.
type Config struct {
	MAC    grav.MACParams
	Bucket int
	Eps2   float64
	// MaxRounds bounds the request/reply rounds per evaluation as a
	// deadlock backstop; 0 means the default (64).
	MaxRounds int
	// AdaptTol, when positive and the MAC is Salmon-Warren, rescales
	// MAC.AccelTol to AdaptTol times the RMS acceleration after every
	// evaluation -- the production treecode's way of keeping the
	// *relative* force error fixed as clustering raises the typical
	// acceleration (a collective; all ranks update identically).
	AdaptTol float64
	// BuildWorkers caps the construction-pipeline goroutines (radix
	// sort, fan-out tree build); 0 means automatic, 1 serial. Forces
	// are byte-identical for any value.
	BuildWorkers int
	// ColdStart disables the incremental decomposition (resort repair,
	// warm splitter bisection); results are byte-identical either way.
	ColdStart bool
	// Kernels selects the interaction-kernel implementation for every
	// force evaluation of this engine; the zero value is the production
	// tiled set, grav.ImplRef the reference sweeps (ablations and
	// cross-kernel equivalence tests).
	Kernels grav.Impl
	// EvalWorkers turns on the walk/eval pipeline: completed groups are
	// evaluated by worker goroutines while the rank keeps walking and
	// communicating. 0 = inline (historical schedule); forces are
	// bitwise identical either way.
	EvalWorkers int
	// EvalSlots is the pipeline depth (in-flight group evaluations);
	// 0 = 64 per worker.
	EvalSlots int
	// PrefetchDepth makes request replies piggyback the subtree below
	// each cell, that many levels deep. 0 = off.
	PrefetchDepth int
}

// Leaf is the gravity leaf payload of a request reply: position and
// mass columns, aliasing the serving rank's storage.
type Leaf struct {
	Pos  []vec.V3
	Mass []float64
}

// Engine holds one rank's state across timesteps. The embedded
// hotengine.Engine exposes the pipeline state (Sys, Domain, Splits,
// Local, Counters, Timer, Rounds, RemoteCells).
type Engine struct {
	*hotengine.Engine[hotengine.None, Leaf]
	Cfg Config

	// Stepper drives Step's time integration through the shared
	// integrate core. New wires it to this engine (uniform stepping by
	// default); drivers opt into block timesteps by setting
	// Stepper.Scheme, Eta and Eps before the first Step.
	Stepper integrate.Stepper

	phys *physics
	// walkers is one Walker per pipeline slot (index = the slot
	// argument of the walk/eval closures); a single entry when the
	// pipeline is off.
	walkers []*tree.Walker
}

// physics is the gravity instantiation of hotengine.Physics: no
// per-cell payload beyond the multipole, leaf bodies are (pos, mass).
type physics struct {
	e *Engine

	impPos  []vec.V3
	impMass []float64
}

func (p *physics) Prepare(sys *core.System) {}
func (p *physics) PostBuild(t *tree.Tree)   {}

func (p *physics) Extra(c *tree.Cell) hotengine.None                 { return hotengine.None{} }
func (p *physics) CombineExtra(acc, _ hotengine.None) hotengine.None { return acc }

func (p *physics) PackLeaf(c *tree.Cell) Leaf {
	pos, mass := p.e.Local.LeafBodies(c)
	return Leaf{Pos: pos, Mass: mass}
}

func (p *physics) ImportLeaf(n int32, b Leaf) int32 {
	start := int32(len(p.impPos))
	p.impPos = append(p.impPos, b.Pos...)
	p.impMass = append(p.impMass, b.Mass...)
	return start
}

func (p *physics) ResetImports() {
	p.impPos = p.impPos[:0]
	p.impMass = p.impMass[:0]
}

// New creates an engine for this rank's share of the bodies. The
// system must have dynamics enabled.
func New(c *msg.Comm, sys *core.System, cfg Config) *Engine {
	if cfg.Bucket <= 0 {
		cfg.Bucket = tree.DefaultBucketSize
	}
	if cfg.MaxRounds <= 0 {
		cfg.MaxRounds = 64
	}
	sys.EnableDynamics()
	e := &Engine{Cfg: cfg}
	e.phys = &physics{e: e}
	e.Engine = hotengine.New[hotengine.None, Leaf](c, sys, e.phys, hotengine.Config{
		MAC: cfg.MAC, Bucket: cfg.Bucket, MaxRounds: cfg.MaxRounds,
		BuildWorkers: cfg.BuildWorkers, ColdStart: cfg.ColdStart,
		EvalWorkers: cfg.EvalWorkers, EvalSlots: cfg.EvalSlots,
		PrefetchDepth: cfg.PrefetchDepth,
	})
	e.walkers = make([]*tree.Walker, e.Slots())
	for i := range e.walkers {
		e.walkers[i] = &tree.Walker{Kernels: cfg.Kernels}
	}
	e.Stepper.B = engineBodies{e}
	return e
}

// Report extends the pipeline's rank input with the stepper's
// scheduler accounting, so RunReports show the active-fraction and
// rung-occupancy sections.
func (e *Engine) Report() metrics.RankInput {
	in := e.Engine.Report()
	in.Stepping = SteppingStats(&e.Stepper)
	return in
}

// SteppingStats converts a stepper's accumulated accounting into the
// report schema's mirror struct.
func SteppingStats(st *integrate.Stepper) *metrics.SteppingStats {
	mode := "uniform"
	if st.Scheme == integrate.Block {
		mode = "block"
	}
	s := st.Stats
	out := &metrics.SteppingStats{
		Mode: mode, Eta: st.Eta,
		BigSteps: s.BigSteps, SubSteps: s.SubSteps,
		FullEvals: s.FullEvals, PartialEvals: s.PartialEvals,
		ActiveSinks: s.ActiveSinks, TotalSinks: s.TotalSinks,
		RungOccupancy: append([]uint64(nil), s.Occupancy...),
	}
	if s.TotalSinks > 0 {
		out.ActiveFraction = float64(s.ActiveSinks) / float64(s.TotalSinks)
	}
	return out
}

// engineBodies adapts the engine to integrate.Bodies: forces come
// from the (possibly partial) parallel evaluation, which may
// redistribute bodies, and the rung maximum is a world-wide allreduce
// so every rank runs the same sub-step schedule.
type engineBodies struct{ e *Engine }

func (b engineBodies) Sys() *core.System  { return b.e.Sys }
func (b engineBodies) Forces(minRung int) { b.e.computeForces(minRung) }
func (b engineBodies) MaxRung(local int) int {
	return msg.Allreduce(b.e.C, local, msg.MaxI, 8)
}

// source adapts the engine's three cell stores into a tree.Source
// for the walker.
type source struct{ e *Engine }

func (s source) Root() keys.Key { return keys.Root }

func (s source) Cell(k keys.Key) *tree.Cell {
	c, _, ok := s.e.Resolve(k)
	if !ok {
		return nil
	}
	return c
}

func (s source) LeafBodies(c *tree.Cell) ([]vec.V3, []float64) {
	e := s.e
	if c.First >= 0 {
		return e.Sys.Pos[c.First : c.First+c.N], e.Sys.Mass[c.First : c.First+c.N]
	}
	i := -(c.First + 1)
	return e.phys.impPos[i : i+c.N], e.phys.impMass[i : i+c.N]
}

// ComputeForces runs one full parallel force evaluation: decompose,
// build, exchange branches, walk with batched requests. On return
// Sys.Acc and Sys.Pot hold the forces on the (possibly redistributed)
// local bodies.
func (e *Engine) ComputeForces() diag.Counters {
	return e.computeForces(0)
}

// ComputeForcesActive is the partial evaluation of block timesteps:
// only groups holding a body on rung minRung or finer are walked and
// evaluated (their whole group, so the kernels run unchanged), the
// decomposition takes the incremental fast path
// (hotengine.ExchangeIncremental), and the MAC adaptation is frozen --
// AdaptTol rescales only at full evaluations, so the opening criterion
// is constant across a big step. minRung <= 0 is exactly
// ComputeForces. Collective at any minRung: every rank walks, serves
// requests and enters the same rounds even with no active groups.
func (e *Engine) ComputeForcesActive(minRung int) diag.Counters {
	return e.computeForces(minRung)
}

func (e *Engine) computeForces(minRung int) diag.Counters {
	start := e.Counters

	// AdaptTol may have rescaled the MAC after the previous
	// evaluation; the pipeline builds trees with its own copy.
	e.Engine.Cfg.MAC = e.Cfg.MAC
	if minRung <= 0 {
		e.Exchange()
	} else {
		e.ExchangeIncremental()
	}

	src := source{e}
	sys := e.Sys
	// The walk stage (rank goroutine) builds the slot's self-contained
	// interaction list; the eval stage runs the kernels from it and may
	// execute on a worker goroutine concurrently with later walks. Each
	// group writes only its own disjoint Acc/Pot/Work rows and the
	// handed-in counter set, so forces and counts are bitwise identical
	// to the inline schedule. Walk touches no PP/PC counters, so the
	// per-body work weight is the eval-local delta.
	walk := func(slot int, gk keys.Key, g *tree.Cell, ctr *diag.Counters) []keys.Key {
		lo, hi := g.First, g.First+g.N
		return e.walkers[slot].Walk(src, gk, sys.Pos[lo:hi], ctr)
	}
	eval := func(slot int, gk keys.Key, g *tree.Cell, ctr *diag.Counters) {
		lo, hi := g.First, g.First+g.N
		w := e.walkers[slot]
		before := ctr.PP + ctr.PC
		w.Evaluate(sys.Pos[lo:hi], sys.Mass[lo:hi], sys.Acc[lo:hi], sys.Pot[lo:hi], e.Cfg.Eps2, e.Cfg.MAC.Quad, ctr)
		if g.N > 0 {
			per := float64(ctr.PP+ctr.PC-before) / float64(g.N)
			for i := lo; i < hi; i++ {
				sys.Work[i] = per
			}
		}
	}
	if minRung <= 0 {
		e.WalkGroups("walk", walk, eval)
	} else {
		e.WalkGroupsIf("walk", func(g *tree.Cell) bool {
			return tree.GroupActive(sys, int(g.First), int(g.First+g.N), minRung)
		}, walk, eval)
	}
	if len(e.walkers) > 1 {
		// Level the slot walkers' buffer capacities while they are all
		// idle, same as ForcePool does between evaluations.
		tree.EqualizeWalkers(e.walkers)
	}

	if minRung <= 0 && e.Cfg.AdaptTol > 0 && e.Cfg.MAC.Kind == grav.MACSalmonWarren {
		if rms := e.RMSAccel(); rms > 0 {
			e.Cfg.MAC.AccelTol = e.Cfg.AdaptTol * rms
		}
	}

	return e.Counters.Sub(start)
}

// RMSAccel returns the global root-mean-square acceleration, used to
// scale the absolute-error MAC between steps (a collective).
func (e *Engine) RMSAccel() float64 {
	type sums struct {
		S float64
		N int64
	}
	var loc sums
	for i := range e.Sys.Acc {
		loc.S += e.Sys.Acc[i].Norm2()
		loc.N++
	}
	g := msg.Allreduce(e.C, loc, func(a, b sums) sums { return sums{a.S + b.S, a.N + b.N} }, 16)
	if g.N == 0 {
		return 0
	}
	return math.Sqrt(g.S / float64(g.N))
}
