// Package parallel is the distributed hashed oct-tree engine: the
// paper's parallel N-body method assembled from the substrates. One
// force evaluation runs in four phases, matching the paper's
// description of the algorithm:
//
//  1. Domain decomposition: bodies move to processors as contiguous,
//     work-weighted intervals of the Morton curve (internal/domain).
//  2. Distributed tree build: each processor builds a local hashed
//     oct-tree over its bodies, publishes its "branch" cells (the
//     coarsest cells wholly inside its interval), and all processors
//     assemble the identical shared top tree above the branches.
//  3. Tree traversal with latency hiding: each leaf group walks the
//     tree through a Source that resolves keys against the top tree,
//     the local tree, and an imported-cell table. A miss defers the
//     group (the paper's explicit context switch) and queues a
//     batched request to the cell's owner (internal/abm).
//  4. Rounds of batched request/reply run until every group finishes.
//
// The global key name space makes step 3 possible: any processor can
// compute which cells it needs and who owns them from key arithmetic
// plus the split table alone.
package parallel

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/abm"
	"repro/internal/core"
	"repro/internal/diag"
	"repro/internal/domain"
	"repro/internal/grav"
	"repro/internal/htab"
	"repro/internal/keys"
	"repro/internal/msg"
	"repro/internal/tree"
	"repro/internal/vec"
)

// Config controls the parallel force evaluation.
type Config struct {
	MAC    grav.MACParams
	Bucket int
	Eps2   float64
	// MaxRounds bounds the request/reply rounds per evaluation as a
	// deadlock backstop; 0 means the default (64).
	MaxRounds int
	// AdaptTol, when positive and the MAC is Salmon-Warren, rescales
	// MAC.AccelTol to AdaptTol times the RMS acceleration after every
	// evaluation -- the production treecode's way of keeping the
	// *relative* force error fixed as clustering raises the typical
	// acceleration (a collective; all ranks update identically).
	AdaptTol float64
}

// sentinelUnfetched marks a remote leaf whose bodies have not arrived.
const sentinelUnfetched = int32(-1 << 30)

// Engine holds one rank's state across timesteps.
type Engine struct {
	C   *msg.Comm
	Cfg Config
	// Sys is this rank's current local bodies.
	Sys *core.System

	Domain keys.Domain
	Splits []uint64
	Local  *tree.Tree

	top      *htab.Table[tree.Cell]
	imported *htab.Table[tree.Cell]
	impPos   []vec.V3
	impMass  []float64

	// Counters accumulates interaction counts across evaluations.
	Counters diag.Counters
	// Timer accumulates per-phase wall time across evaluations
	// (decompose, treebuild, branches, walk).
	Timer *diag.Timer
	// Rounds is the number of request/reply rounds of the last
	// evaluation; RemoteCells the cells imported.
	Rounds      int
	RemoteCells int
}

// New creates an engine for this rank's share of the bodies. The
// system must have dynamics enabled.
func New(c *msg.Comm, sys *core.System, cfg Config) *Engine {
	if cfg.Bucket <= 0 {
		cfg.Bucket = tree.DefaultBucketSize
	}
	if cfg.MaxRounds <= 0 {
		cfg.MaxRounds = 64
	}
	sys.EnableDynamics()
	return &Engine{C: c, Cfg: cfg, Sys: sys, Timer: diag.NewTimer()}
}

// cellWire is the packed cell payload used for both the branch
// allgather and request replies.
type cellWire struct {
	Key       keys.Key
	Mp        grav.Multipole
	RCrit     float64
	N         int32
	ChildMask uint8
	Leaf      bool
	// Leaf body payload (replies only; nil in branch messages).
	Pos  []vec.V3
	Mass []float64
}

// cellWireBytes is the fixed wire size of a cell record.
const cellWireBytes = 8 + 12*8 + 8 + 4 + 1 + 1

// ComputeForces runs one full parallel force evaluation: decompose,
// build, exchange branches, walk with batched requests. On return
// Sys.Acc and Sys.Pot hold the forces on the (possibly redistributed)
// local bodies.
func (e *Engine) ComputeForces() diag.Counters {
	start := e.Counters

	// Phase 1: decomposition.
	e.Timer.Start("decompose")
	e.Domain = domain.GlobalDomain(e.C, e.Sys)
	res := domain.Decompose(e.C, e.Sys, e.Domain)
	e.Sys = res.Sys
	e.Splits = res.Splits

	// Phase 2: local tree + shared top tree. The local tree force-
	// splits cells straddling this rank's interval so every branch
	// cell materializes as a node.
	e.Timer.Start("treebuild")
	e.C.Phase("treebuild")
	e.Local = tree.BuildRange(e.Sys, e.Domain, e.Cfg.MAC, e.Cfg.Bucket,
		e.Splits[e.C.Rank()], e.Splits[e.C.Rank()+1])
	e.Counters.CellsBuilt += uint64(e.Local.NCells())
	e.Timer.Start("branches")
	e.exchangeBranches()

	// Phase 3+4: traversal with request rounds.
	e.Timer.Start("walk")
	e.C.Phase("walk")
	e.walkAll()
	e.Timer.Stop()

	if e.Cfg.AdaptTol > 0 && e.Cfg.MAC.Kind == grav.MACSalmonWarren {
		if rms := e.RMSAccel(); rms > 0 {
			e.Cfg.MAC.AccelTol = e.Cfg.AdaptTol * rms
		}
	}

	var out diag.Counters
	out = e.Counters
	out.PP -= start.PP
	out.PC -= start.PC
	out.QuadPC -= start.QuadPC
	out.CellsBuilt -= start.CellsBuilt
	out.Traversals -= start.Traversals
	out.Deferred -= start.Deferred
	out.Requests -= start.Requests
	return out
}

// exchangeBranches publishes this rank's branch cells and assembles
// the shared top tree (branches plus all their ancestors, moments
// combined across ranks).
func (e *Engine) exchangeBranches() {
	e.C.Phase("branches")
	var mine []cellWire
	for _, bk := range tree.RangeDecompose(e.Splits[e.C.Rank()], e.Splits[e.C.Rank()+1]) {
		c := e.Local.Cell(bk)
		if c == nil {
			continue // no bodies in this part of the interval
		}
		mine = append(mine, cellWire{
			Key: bk, Mp: c.Mp, RCrit: c.RCrit, N: c.N,
			ChildMask: c.ChildMask, Leaf: c.Leaf,
		})
	}
	all := msg.Allgather(e.C, mine, cellWireBytes*len(mine))

	e.top = htab.New[tree.Cell](256)
	e.imported = htab.New[tree.Cell](1024)
	e.impPos = e.impPos[:0]
	e.impMass = e.impMass[:0]
	e.RemoteCells = 0

	// Insert branches. Own branches keep their local body ranges so
	// the walker can use them directly; remote leaf branches are
	// marked unfetched.
	var branchKeys []keys.Key
	for r, batch := range all {
		for _, w := range batch {
			c := tree.Cell{
				Key: w.Key, Mp: w.Mp, RCrit: w.RCrit, N: w.N,
				ChildMask: w.ChildMask, Leaf: w.Leaf,
			}
			if r == e.C.Rank() {
				lc := e.Local.Cell(w.Key)
				c.First = lc.First
			} else if w.Leaf {
				c.First = sentinelUnfetched
			}
			e.top.Insert(w.Key, c)
			branchKeys = append(branchKeys, w.Key)
		}
	}

	// Build ancestors, deepest level first so children always exist
	// when their parent's moments are combined.
	anc := map[keys.Key]bool{}
	for _, bk := range branchKeys {
		for k := bk.Parent(); k != keys.Invalid; k = k.Parent() {
			if anc[k] {
				break // all higher ancestors already recorded
			}
			anc[k] = true
		}
	}
	order := make([]keys.Key, 0, len(anc))
	for k := range anc {
		order = append(order, k)
	}
	sort.Slice(order, func(i, j int) bool { return order[i].Level() > order[j].Level() })
	for _, k := range order {
		var children []grav.Multipole
		var mask uint8
		var nb int32
		for oct := 0; oct < 8; oct++ {
			if cc := e.top.Ptr(k.Child(oct)); cc != nil {
				children = append(children, cc.Mp)
				mask |= 1 << uint(oct)
				nb += cc.N
			}
		}
		mp := grav.Combine(children)
		center, size := e.Domain.CellCenter(k)
		e.top.Insert(k, tree.Cell{
			Key: k, Mp: mp,
			RCrit:     grav.RCrit(&mp, size, mp.COM.Sub(center).Norm(), e.Cfg.MAC),
			N:         nb,
			ChildMask: mask,
		})
	}
	if len(branchKeys) > 0 && e.top.Ptr(keys.Root) == nil {
		// Exactly one branch and it is the root itself (single rank
		// holding everything): nothing to do. Otherwise the root must
		// exist.
		if len(branchKeys) != 1 || branchKeys[0] != keys.Root {
			panic("parallel: top tree has no root")
		}
	}
}

// ownerOf returns the rank owning a (strictly below-branch) cell.
func (e *Engine) ownerOf(k keys.Key) int {
	off := tree.KeyOffset(k.MinBody())
	// Find r with Splits[r] <= off < Splits[r+1].
	r := sort.Search(len(e.Splits)-1, func(i int) bool { return e.Splits[i+1] > off })
	if r >= e.C.Size() {
		r = e.C.Size() - 1
	}
	return r
}

// source adapts the three cell stores into a tree.Source for the
// walker. Lookup order: top tree (authoritative above and at
// branches), then local tree, then imported cells.
type source struct{ e *Engine }

func (s source) Root() keys.Key { return keys.Root }

func (s source) Cell(k keys.Key) *tree.Cell {
	e := s.e
	if c := e.top.Ptr(k); c != nil {
		if c.Leaf && c.First == sentinelUnfetched {
			if ic := e.imported.Ptr(k); ic != nil {
				return ic
			}
			return nil // bodies must be fetched
		}
		return c
	}
	if e.ownerOf(k) == e.C.Rank() {
		return e.Local.Cell(k)
	}
	return e.imported.Ptr(k)
}

func (s source) LeafBodies(c *tree.Cell) ([]vec.V3, []float64) {
	e := s.e
	if c.First >= 0 {
		return e.Sys.Pos[c.First : c.First+c.N], e.Sys.Mass[c.First : c.First+c.N]
	}
	i := -(c.First + 1)
	return e.impPos[i : i+c.N], e.impMass[i : i+c.N]
}

// serve answers a batch of cell requests from src out of the local
// tree. Every requested key must be at or below one of this rank's
// branches, so a miss is a protocol violation.
func (e *Engine) serve(src int, reqs []keys.Key) []cellWire {
	out := make([]cellWire, len(reqs))
	for i, k := range reqs {
		c := e.Local.Cell(k)
		if c == nil {
			panic(fmt.Sprintf("parallel: rank %d asked rank %d for unknown cell %v", src, e.C.Rank(), k))
		}
		w := cellWire{
			Key: k, Mp: c.Mp, RCrit: c.RCrit, N: c.N,
			ChildMask: c.ChildMask, Leaf: c.Leaf,
		}
		if c.Leaf {
			w.Pos, w.Mass = e.Local.LeafBodies(c)
		}
		out[i] = w
	}
	return out
}

// walkAll traverses the tree for every local group, deferring groups
// that hit missing remote cells and fetching those cells in batched
// rounds until all groups complete.
func (e *Engine) walkAll() {
	eng := abm.New(e.C, 8, cellWireBytes, e.serve)
	src := source{e}
	var w tree.Walker

	deferred := make([]keys.Key, len(e.Local.Groups))
	copy(deferred, e.Local.Groups)
	pending := map[keys.Key]bool{}
	sys := e.Sys

	e.Rounds = 0
	for round := 0; ; round++ {
		if round > e.Cfg.MaxRounds {
			panic("parallel: request rounds exceeded MaxRounds; protocol stuck")
		}
		var still []keys.Key
		for _, gk := range deferred {
			g := e.Local.Cell(gk)
			lo, hi := g.First, g.First+g.N
			// Snapshot so a deferred group's discarded partial walk
			// does not inflate the traversal counts: the paper's
			// performance accounting rides on these counters being
			// exact. (Interaction counts only accrue in Evaluate, which
			// runs once per completed walk; a re-walk after the data
			// arrives reuses the Walker's list storage.)
			snapshot := e.Counters
			missing := w.Walk(src, gk, sys.Pos[lo:hi], &e.Counters)
			if missing == nil {
				w.Evaluate(sys.Pos[lo:hi], sys.Mass[lo:hi], sys.Acc[lo:hi], sys.Pot[lo:hi], e.Cfg.Eps2, e.Cfg.MAC.Quad, &e.Counters)
				if g.N > 0 {
					per := float64(e.Counters.PP+e.Counters.PC-snapshot.PP-snapshot.PC) / float64(g.N)
					for i := lo; i < hi; i++ {
						sys.Work[i] = per
					}
				}
				continue
			}
			// Context switch: restore the counters, defer the group,
			// batch its requests.
			e.Counters = snapshot
			e.Counters.Deferred++
			still = append(still, gk)
			for _, mk := range missing {
				if !pending[mk] {
					pending[mk] = true
					e.Counters.Requests++
					eng.Post(e.ownerOf(mk), mk)
				}
			}
		}
		deferred = still
		if !eng.AnyPendingGlobal(len(deferred) > 0) {
			break
		}
		replies := eng.Round()
		e.Rounds++
		for _, batch := range replies {
			for _, cw := range batch {
				e.importCell(cw)
			}
		}
	}
}

// importCell stores a fetched remote cell, copying leaf bodies into
// the import arena.
func (e *Engine) importCell(w cellWire) {
	c := tree.Cell{
		Key: w.Key, Mp: w.Mp, RCrit: w.RCrit, N: w.N,
		ChildMask: w.ChildMask, Leaf: w.Leaf,
	}
	if w.Leaf {
		start := int32(len(e.impPos))
		e.impPos = append(e.impPos, w.Pos...)
		e.impMass = append(e.impMass, w.Mass...)
		c.First = -(start + 1)
	}
	e.imported.Insert(w.Key, c)
	e.RemoteCells++
}

// RMSAccel returns the global root-mean-square acceleration, used to
// scale the absolute-error MAC between steps (a collective).
func (e *Engine) RMSAccel() float64 {
	type sums struct {
		S float64
		N int64
	}
	var loc sums
	for i := range e.Sys.Acc {
		loc.S += e.Sys.Acc[i].Norm2()
		loc.N++
	}
	g := msg.Allreduce(e.C, loc, func(a, b sums) sums { return sums{a.S + b.S, a.N + b.N} }, 16)
	if g.N == 0 {
		return 0
	}
	return math.Sqrt(g.S / float64(g.N))
}
