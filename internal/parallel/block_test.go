package parallel

import (
	"math"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/grav"
	"repro/internal/ic"
	"repro/internal/integrate"
	"repro/internal/msg"
	"repro/internal/vec"
)

// blockRun advances the distributed engine `steps` global steps on a
// Plummer sphere over np ranks and returns the final per-ID state plus
// the rank-0 stepper stats. eta = 0 keeps the default uniform scheme.
func blockRun(t *testing.T, np, n, steps int, dt, eta float64) (map[int64]vec.V3, map[int64]vec.V3, integrate.Stats) {
	t.Helper()
	mac := grav.MACParams{Kind: grav.MACSalmonWarren, AccelTol: 1e-4, Quad: true}
	pos := make(map[int64]vec.V3, n)
	vel := make(map[int64]vec.V3, n)
	var stats integrate.Stats
	var mu sync.Mutex
	msg.Run(np, func(c *msg.Comm) {
		global := ic.Plummer(n, 1.0, 17)
		local := core.New(0)
		local.EnableDynamics()
		lo, hi := c.Rank()*n/np, (c.Rank()+1)*n/np
		for i := lo; i < hi; i++ {
			local.AppendFrom(global, i)
		}
		e := New(c, local, Config{MAC: mac, Eps2: 1e-6})
		if eta > 0 {
			e.Stepper.Scheme = integrate.Block
			e.Stepper.Eta = eta
			e.Stepper.Eps = math.Sqrt(1e-6)
		}
		e.ComputeForces()
		for s := 0; s < steps; s++ {
			e.Step(dt)
		}
		mu.Lock()
		defer mu.Unlock()
		for i := 0; i < e.Sys.Len(); i++ {
			pos[e.Sys.ID[i]] = e.Sys.Pos[i]
			vel[e.Sys.ID[i]] = e.Sys.Vel[i]
		}
		if c.Rank() == 0 {
			stats = e.Stepper.Stats
		}
	})
	return pos, vel, stats
}

// The block scheduler with every body on rung zero must reproduce the
// uniform engine bit for bit at every rank count: same exchanges, same
// trees, same kernels, only the stepper plumbing differs.
func TestBlockOneRungBitwiseUniformParallel(t *testing.T) {
	const n, steps, dt = 1200, 3, 1e-3
	for _, np := range []int{1, 2, 8} {
		upos, uvel, _ := blockRun(t, np, n, steps, dt, 0)
		// Enormous eta: the criterion assigns rung zero everywhere.
		bpos, bvel, stats := blockRun(t, np, n, steps, dt, 1e6)
		if stats.PartialEvals != 0 || stats.FullEvals != steps {
			t.Fatalf("np=%d: one-rung block ran %d partial + %d full evals", np, stats.PartialEvals, stats.FullEvals)
		}
		if len(bpos) != len(upos) {
			t.Fatalf("np=%d: body count %d vs %d", np, len(bpos), len(upos))
		}
		for id, p := range upos {
			if bpos[id] != p || bvel[id] != uvel[id] {
				t.Fatalf("np=%d: body %d diverged: uniform pos %v vel %v, block pos %v vel %v",
					np, id, p, uvel[id], bpos[id], bvel[id])
			}
		}
	}
}

// Multi-rung block stepping across ranks: the schedule must engage
// partial evaluations with a shrunken active set, stay identical on
// every rank (it is derived from an allreduce), and keep trajectories
// close to the uniform integration at the same global dt.
func TestBlockPartialStepsParallel(t *testing.T) {
	const n, steps, dt, eta = 1200, 3, 1e-3, 0.02
	upos, _, _ := blockRun(t, 2, n, steps, dt, 0)
	bpos, _, stats := blockRun(t, 2, n, steps, dt, eta)
	if stats.PartialEvals == 0 {
		t.Fatalf("no partial evaluations engaged (stats %+v); clustered Plummer should span rungs", stats)
	}
	if stats.ActiveSinks >= stats.TotalSinks {
		t.Fatalf("active set never shrank: %d/%d", stats.ActiveSinks, stats.TotalSinks)
	}
	// Same IC, same dt, finer sub-steps for fast bodies: trajectories
	// stay within the integration error scale over a few steps.
	scale := 0.0
	for _, p := range upos {
		if r := p.Norm(); r > scale {
			scale = r
		}
	}
	worst := 0.0
	for id, p := range upos {
		if d := bpos[id].Sub(p).Norm() / scale; d > worst {
			worst = d
		}
	}
	if worst > 1e-3 {
		t.Fatalf("block trajectories deviate from uniform by %g (relative); scheduler is mis-kicking", worst)
	}
	t.Logf("active fraction %.3f, worst relative deviation %g",
		float64(stats.ActiveSinks)/float64(stats.TotalSinks), worst)
}
