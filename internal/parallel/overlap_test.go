package parallel

import (
	"math"
	"runtime"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/diag"
	"repro/internal/grav"
	"repro/internal/ic"
	"repro/internal/integrate"
	"repro/internal/msg"
	"repro/internal/vec"
)

// overlapRun runs one full force evaluation at np ranks with the given
// latency-hiding knobs and returns the per-ID forces plus the
// rank-summed interaction counters.
func overlapRun(t *testing.T, np, n, workers, slots, prefetch int) (map[int64]vec.V3, map[int64]float64, diag.Counters) {
	t.Helper()
	mac := grav.MACParams{Kind: grav.MACSalmonWarren, AccelTol: 1e-4, Quad: true}
	acc := make(map[int64]vec.V3, n)
	pot := make(map[int64]float64, n)
	var sum diag.Counters
	var mu sync.Mutex
	msg.Run(np, func(c *msg.Comm) {
		global := ic.Plummer(n, 1.0, 17)
		local := core.New(0)
		local.EnableDynamics()
		lo, hi := c.Rank()*n/np, (c.Rank()+1)*n/np
		for i := lo; i < hi; i++ {
			local.AppendFrom(global, i)
		}
		e := New(c, local, Config{
			MAC: mac, Eps2: 1e-6,
			EvalWorkers: workers, EvalSlots: slots, PrefetchDepth: prefetch,
		})
		defer e.Close()
		e.ComputeForces()
		mu.Lock()
		defer mu.Unlock()
		for i := 0; i < e.Sys.Len(); i++ {
			acc[e.Sys.ID[i]] = e.Sys.Acc[i]
			pot[e.Sys.ID[i]] = e.Sys.Pot[i]
		}
		sum.Add(e.Counters)
	})
	return acc, pot, sum
}

// TestOverlapBitwiseForceEquivalence is the determinism contract of
// the walk/eval pipeline and the serve-side prefetch: at 1, 2 and 8
// ranks, any combination of eval workers and prefetch depth must
// reproduce the inline schedule's forces bit for bit, with identical
// PP/PC/QuadPC/Traversals counts. Group body ranges are disjoint and
// the workers' counters fold as order-independent sums, so nothing
// about the schedule may leak into the physics.
func TestOverlapBitwiseForceEquivalence(t *testing.T) {
	const n = 1200
	variants := []struct {
		name                     string
		workers, slots, prefetch int
	}{
		{"workers3", 3, 8, 0},
		{"prefetch1", 0, 0, 1},
		{"workers3_prefetch1", 3, 8, 1},
	}
	for _, np := range []int{1, 2, 8} {
		baseAcc, basePot, baseCtr := overlapRun(t, np, n, 0, 0, 0)
		if len(baseAcc) != n {
			t.Fatalf("np=%d: baseline covered %d of %d bodies", np, len(baseAcc), n)
		}
		for _, v := range variants {
			acc, pot, ctr := overlapRun(t, np, n, v.workers, v.slots, v.prefetch)
			if len(acc) != n {
				t.Fatalf("np=%d %s: covered %d of %d bodies", np, v.name, len(acc), n)
			}
			for id, a := range baseAcc {
				if acc[id] != a || pot[id] != basePot[id] {
					t.Fatalf("np=%d %s: body %d forces diverged: acc %v vs %v, pot %v vs %v",
						np, v.name, id, acc[id], a, pot[id], basePot[id])
				}
			}
			if ctr.PP != baseCtr.PP || ctr.PC != baseCtr.PC ||
				ctr.QuadPC != baseCtr.QuadPC || ctr.Traversals != baseCtr.Traversals {
				t.Errorf("np=%d %s: counters diverged: PP %d/%d PC %d/%d QuadPC %d/%d Traversals %d/%d",
					np, v.name, ctr.PP, baseCtr.PP, ctr.PC, baseCtr.PC,
					ctr.QuadPC, baseCtr.QuadPC, ctr.Traversals, baseCtr.Traversals)
			}
		}
	}
}

// TestOverlapWorkersMultiCore re-runs the worker variants with
// GOMAXPROCS raised to 4. newEvalPool clamps spawned workers to
// GOMAXPROCS-1, so on a single-core host the materialized-slot path
// (walk on the rank goroutine, eval handed to a pooled slot and drained
// by worker goroutines truly concurrently) never executes; this test
// forces it -- and is what puts that path under the race detector.
func TestOverlapWorkersMultiCore(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	const n = 1200
	for _, np := range []int{2, 8} {
		baseAcc, basePot, baseCtr := overlapRun(t, np, n, 0, 0, 0)
		acc, pot, ctr := overlapRun(t, np, n, 3, 16, 1)
		if len(acc) != n {
			t.Fatalf("np=%d: covered %d of %d bodies", np, len(acc), n)
		}
		for id, a := range baseAcc {
			if acc[id] != a || pot[id] != basePot[id] {
				t.Fatalf("np=%d: body %d forces diverged: acc %v vs %v, pot %v vs %v",
					np, id, acc[id], a, pot[id], basePot[id])
			}
		}
		if ctr.PP != baseCtr.PP || ctr.PC != baseCtr.PC ||
			ctr.QuadPC != baseCtr.QuadPC || ctr.Traversals != baseCtr.Traversals {
			t.Errorf("np=%d: counters diverged: PP %d/%d PC %d/%d QuadPC %d/%d Traversals %d/%d",
				np, ctr.PP, baseCtr.PP, ctr.PC, baseCtr.PC,
				ctr.QuadPC, baseCtr.QuadPC, ctr.Traversals, baseCtr.Traversals)
		}
	}
}

// overlapBlockRun advances the block-timestep engine with the
// latency-hiding knobs set, returning final per-ID state and rank-0
// stepper stats.
func overlapBlockRun(t *testing.T, np, n, steps int, dt, eta float64, workers, prefetch int) (map[int64]vec.V3, map[int64]vec.V3, integrate.Stats) {
	t.Helper()
	mac := grav.MACParams{Kind: grav.MACSalmonWarren, AccelTol: 1e-4, Quad: true}
	pos := make(map[int64]vec.V3, n)
	vel := make(map[int64]vec.V3, n)
	var stats integrate.Stats
	var mu sync.Mutex
	msg.Run(np, func(c *msg.Comm) {
		global := ic.Plummer(n, 1.0, 17)
		local := core.New(0)
		local.EnableDynamics()
		lo, hi := c.Rank()*n/np, (c.Rank()+1)*n/np
		for i := lo; i < hi; i++ {
			local.AppendFrom(global, i)
		}
		e := New(c, local, Config{
			MAC: mac, Eps2: 1e-6,
			EvalWorkers: workers, EvalSlots: 8, PrefetchDepth: prefetch,
		})
		defer e.Close()
		e.Stepper.Scheme = integrate.Block
		e.Stepper.Eta = eta
		e.Stepper.Eps = math.Sqrt(1e-6)
		e.ComputeForces()
		for s := 0; s < steps; s++ {
			e.Step(dt)
		}
		mu.Lock()
		defer mu.Unlock()
		for i := 0; i < e.Sys.Len(); i++ {
			pos[e.Sys.ID[i]] = e.Sys.Pos[i]
			vel[e.Sys.ID[i]] = e.Sys.Vel[i]
		}
		if c.Rank() == 0 {
			stats = e.Stepper.Stats
		}
	})
	return pos, vel, stats
}

// TestOverlapBlockModeBitwise runs the multi-rung block scheduler --
// whose partial evaluations walk only the active groups, leaving some
// ranks with empty active sets that still must serve requests (and
// prefetch subtrees) symmetrically -- and demands bitwise-identical
// trajectories with the pipeline and prefetch on.
func TestOverlapBlockModeBitwise(t *testing.T) {
	const n, steps, dt, eta = 1200, 3, 1e-3, 0.02
	const np = 8
	basePos, baseVel, baseStats := overlapBlockRun(t, np, n, steps, dt, eta, 0, 0)
	if baseStats.PartialEvals == 0 {
		t.Fatalf("no partial evaluations engaged (stats %+v); the partial-walk path went unexercised", baseStats)
	}
	for _, v := range []struct {
		name              string
		workers, prefetch int
	}{
		{"workers3", 3, 0},
		{"prefetch1", 0, 1},
		{"workers3_prefetch1", 3, 1},
	} {
		pos, vel, stats := overlapBlockRun(t, np, n, steps, dt, eta, v.workers, v.prefetch)
		if stats.PartialEvals != baseStats.PartialEvals || stats.FullEvals != baseStats.FullEvals {
			t.Errorf("%s: schedule diverged: %d partial + %d full evals, want %d + %d",
				v.name, stats.PartialEvals, stats.FullEvals, baseStats.PartialEvals, baseStats.FullEvals)
		}
		if len(pos) != len(basePos) {
			t.Fatalf("%s: body count %d vs %d", v.name, len(pos), len(basePos))
		}
		for id, p := range basePos {
			if pos[id] != p || vel[id] != baseVel[id] {
				t.Fatalf("%s: body %d diverged: pos %v vs %v, vel %v vs %v",
					v.name, id, pos[id], p, vel[id], baseVel[id])
			}
		}
	}
}
