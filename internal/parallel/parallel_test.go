package parallel

import (
	"errors"
	"io"
	"math"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/grav"
	"repro/internal/msg"
	"repro/internal/vec"
)

// globalCloud builds the reference body set: clustered so the tree is
// adaptive and the decomposition nontrivial.
func globalCloud(n int, seed int64) *core.System {
	rng := rand.New(rand.NewSource(seed))
	sys := core.New(n)
	sys.EnableDynamics()
	for i := 0; i < n; i++ {
		switch i % 3 {
		case 0:
			sys.Pos[i] = vec.V3{X: rng.Float64(), Y: rng.Float64(), Z: rng.Float64()}
		case 1:
			sys.Pos[i] = vec.V3{X: 0.2 + 0.03*rng.NormFloat64(), Y: 0.8 + 0.03*rng.NormFloat64(), Z: 0.5 + 0.03*rng.NormFloat64()}
		default:
			sys.Pos[i] = vec.V3{X: 0.7 + 0.05*rng.NormFloat64(), Y: 0.3 + 0.05*rng.NormFloat64(), Z: 0.6 + 0.05*rng.NormFloat64()}
		}
		sys.Mass[i] = 1.0 / float64(n)
		sys.Vel[i] = vec.V3{X: 0.1 * rng.NormFloat64(), Y: 0.1 * rng.NormFloat64(), Z: 0.1 * rng.NormFloat64()}
	}
	return sys
}

// scatter hands rank r a block slice of the global set.
func scatter(global *core.System, c *msg.Comm) *core.System {
	n := global.Len()
	lo, hi := c.Rank()*n/c.Size(), (c.Rank()+1)*n/c.Size()
	local := core.New(0)
	local.EnableDynamics()
	for i := lo; i < hi; i++ {
		local.AppendFrom(global, i)
	}
	return local
}

// directRef computes the exact softened forces for all bodies.
func directRef(sys *core.System, eps2 float64) ([]vec.V3, []float64) {
	n := sys.Len()
	acc := make([]vec.V3, n)
	pot := make([]float64, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			d := sys.Pos[j].Sub(sys.Pos[i])
			r2 := d.Norm2() + eps2
			rinv := 1 / math.Sqrt(r2)
			acc[i] = acc[i].Add(d.Scale(sys.Mass[j] * rinv * rinv * rinv))
			pot[i] -= sys.Mass[j] * rinv
		}
	}
	return acc, pot
}

func cfg() Config {
	return Config{
		MAC:  grav.MACParams{Kind: grav.MACSalmonWarren, AccelTol: 1e-6, Quad: true},
		Eps2: 1e-6,
	}
}

// rmsNorm returns the RMS magnitude of a vector field: the paper
// quotes force accuracy as error relative to the RMS force, since
// per-body relative error diverges for bodies whose net force nearly
// cancels.
func rmsNorm(v []vec.V3) float64 {
	s := 0.0
	for i := range v {
		s += v[i].Norm2()
	}
	return math.Sqrt(s / float64(len(v)))
}

func TestParallelForcesMatchDirect(t *testing.T) {
	const n = 1200
	global := globalCloud(n, 1)
	wantAcc, wantPot := directRef(global, 1e-6)
	aRMS := rmsNorm(wantAcc)

	for _, np := range []int{1, 2, 4, 7} {
		var mu sync.Mutex
		seen := 0
		var worstAcc float64
		msg.Run(np, func(c *msg.Comm) {
			e := New(c, scatter(global, c), cfg())
			ctr := e.ComputeForces()
			if ctr.Interactions() == 0 && e.Sys.Len() > 0 {
				t.Errorf("np=%d rank %d: no interactions", np, c.Rank())
			}
			mu.Lock()
			defer mu.Unlock()
			for i := 0; i < e.Sys.Len(); i++ {
				id := e.Sys.ID[i]
				rel := e.Sys.Acc[i].Sub(wantAcc[id]).Norm() / aRMS
				if rel > worstAcc {
					worstAcc = rel
				}
				if math.Abs(e.Sys.Pot[i]-wantPot[id]) > 1e-3*math.Abs(wantPot[id]) {
					t.Errorf("np=%d body %d: pot %g vs %g", np, id, e.Sys.Pot[i], wantPot[id])
				}
				seen++
			}
		})
		if seen != n {
			t.Fatalf("np=%d: saw %d bodies, want %d", np, seen, n)
		}
		if worstAcc > 1e-3 {
			t.Fatalf("np=%d: worst force error %g of RMS", np, worstAcc)
		}
	}
}

func TestParallelMatchesSingleRankBitwise(t *testing.T) {
	// Forces on P ranks should agree with P=1 to floating-point
	// reassociation levels. (Not bit-identical: the P=1 tree is not
	// force-split at interval boundaries, so traversal structure can
	// differ, but both satisfy the same error bound. Compare against
	// the direct reference instead for tight agreement, and between
	// each other loosely.)
	const n = 600
	global := globalCloud(n, 2)
	ref := make([]vec.V3, n)
	msg.Run(1, func(c *msg.Comm) {
		e := New(c, scatter(global, c), cfg())
		e.ComputeForces()
		for i := 0; i < e.Sys.Len(); i++ {
			ref[e.Sys.ID[i]] = e.Sys.Acc[i]
		}
	})
	aRMS := rmsNorm(ref)
	var mu sync.Mutex
	msg.Run(3, func(c *msg.Comm) {
		e := New(c, scatter(global, c), cfg())
		e.ComputeForces()
		mu.Lock()
		defer mu.Unlock()
		for i := 0; i < e.Sys.Len(); i++ {
			id := e.Sys.ID[i]
			if rel := e.Sys.Acc[i].Sub(ref[id]).Norm() / aRMS; rel > 2e-3 {
				t.Errorf("body %d: P=3 force deviates from P=1 by %g of RMS", id, rel)
			}
		}
	})
}

func TestRemoteTrafficHappens(t *testing.T) {
	const n = 800
	global := globalCloud(n, 3)
	var mu sync.Mutex
	totalRemote := 0
	rounds := 0
	w := msg.Run(4, func(c *msg.Comm) {
		e := New(c, scatter(global, c), cfg())
		e.ComputeForces()
		mu.Lock()
		defer mu.Unlock()
		totalRemote += e.RemoteCells
		if e.Rounds > rounds {
			rounds = e.Rounds
		}
	})
	if totalRemote == 0 {
		t.Fatal("no remote cells imported; traversal never crossed ranks")
	}
	if rounds == 0 {
		t.Fatal("no request rounds")
	}
	walk := w.RankTraffic(0).Phases["walk"]
	if walk == nil || walk.Bytes == 0 {
		t.Fatal("no walk-phase traffic recorded")
	}
}

func TestEnergyConservationParallel(t *testing.T) {
	const n = 400
	global := globalCloud(n, 4)
	var drift float64
	msg.Run(3, func(c *msg.Comm) {
		e := New(c, scatter(global, c), Config{
			MAC:  grav.MACParams{Kind: grav.MACSalmonWarren, AccelTol: 1e-7, Quad: true},
			Eps2: 1e-3, // soft enough for the chosen dt
		})
		e.ComputeForces()
		k0, p0 := e.Energy()
		e0 := k0 + p0
		for s := 0; s < 20; s++ {
			e.Step(2e-4)
		}
		k1, p1 := e.Energy()
		if c.Rank() == 0 {
			drift = math.Abs((k1 + p1 - e0) / e0)
		}
	})
	if drift > 1e-3 {
		t.Fatalf("relative energy drift %g over 20 steps", drift)
	}
}

func TestMomentumConservationParallel(t *testing.T) {
	const n = 300
	global := globalCloud(n, 5)
	var p0, p1 vec.V3
	msg.Run(2, func(c *msg.Comm) {
		e := New(c, scatter(global, c), cfg())
		e.ComputeForces()
		m0 := e.Momentum() // collective: every rank participates
		if c.Rank() == 0 {
			p0 = m0
		}
		for s := 0; s < 5; s++ {
			e.Step(1e-3)
		}
		m := e.Momentum()
		if c.Rank() == 0 {
			p1 = m
		}
	})
	// Multipole truncation breaks exact force symmetry, so momentum
	// is conserved only to the MAC error level: |dp| <~ sum(m)*aTol*T.
	if p1.Sub(p0).Norm() > 1e-4 {
		t.Fatalf("momentum drift %v", p1.Sub(p0))
	}
}

func TestEmptyRanksTolerated(t *testing.T) {
	// More ranks than distinguishable key regions: some ranks may own
	// empty intervals; nothing should deadlock and forces must match.
	const n = 40
	global := globalCloud(n, 6)
	wantAcc, _ := directRef(global, 1e-6)
	aRMS := rmsNorm(wantAcc)
	var mu sync.Mutex
	seen := 0
	msg.Run(8, func(c *msg.Comm) {
		e := New(c, scatter(global, c), cfg())
		e.ComputeForces()
		mu.Lock()
		defer mu.Unlock()
		for i := 0; i < e.Sys.Len(); i++ {
			id := e.Sys.ID[i]
			if rel := e.Sys.Acc[i].Sub(wantAcc[id]).Norm() / aRMS; rel > 1e-3 {
				t.Errorf("body %d: error %g of RMS", id, rel)
			}
			seen++
		}
	})
	if seen != n {
		t.Fatalf("saw %d bodies", seen)
	}
}

func TestWorkWeightsFeedBack(t *testing.T) {
	// After an evaluation every local body must carry positive work,
	// and a second evaluation must rebalance using it without error.
	const n = 500
	global := globalCloud(n, 7)
	msg.Run(4, func(c *msg.Comm) {
		e := New(c, scatter(global, c), cfg())
		e.ComputeForces()
		for i := 0; i < e.Sys.Len(); i++ {
			if e.Sys.Work[i] <= 0 {
				t.Errorf("rank %d body %d: work %g", c.Rank(), i, e.Sys.Work[i])
			}
		}
		ctr := e.ComputeForces()
		if e.Sys.Len() > 0 && ctr.Interactions() == 0 {
			t.Errorf("second evaluation produced no work")
		}
	})
}

func TestGlobalLen(t *testing.T) {
	global := globalCloud(100, 8)
	msg.Run(3, func(c *msg.Comm) {
		e := New(c, scatter(global, c), cfg())
		e.ComputeForces()
		if g := e.GlobalLen(); g != 100 {
			t.Errorf("GlobalLen = %d", g)
		}
	})
}

func BenchmarkParallelStep4Ranks(b *testing.B) {
	global := globalCloud(20000, 9)
	b.ResetTimer()
	msg.Run(4, func(c *msg.Comm) {
		e := New(c, scatter(global, c), Config{
			MAC:  grav.MACParams{Kind: grav.MACBarnesHut, Theta: 0.7, Quad: true},
			Eps2: 1e-6,
		})
		for i := 0; i < b.N; i++ {
			e.ComputeForces()
		}
	})
}

func TestAdaptiveTolerance(t *testing.T) {
	const n = 500
	global := globalCloud(n, 10)
	wantAcc, _ := directRef(global, 1e-6)
	aRMS := rmsNorm(wantAcc)
	var tolAfter float64
	msg.Run(2, func(c *msg.Comm) {
		e := New(c, scatter(global, c), Config{
			MAC:      grav.MACParams{Kind: grav.MACSalmonWarren, AccelTol: 1e-2, Quad: true},
			Eps2:     1e-6,
			AdaptTol: 1e-5, // relative tolerance
		})
		e.ComputeForces()
		// After the first evaluation the tolerance is rescaled to
		// AdaptTol * RMS accel, so a second evaluation is accurate
		// even though the initial absolute tolerance was hopeless.
		e.ComputeForces()
		if c.Rank() == 0 {
			tolAfter = e.Cfg.MAC.AccelTol
		}
		for i := 0; i < e.Sys.Len(); i++ {
			id := e.Sys.ID[i]
			if rel := e.Sys.Acc[i].Sub(wantAcc[id]).Norm() / aRMS; rel > 1e-3 {
				t.Errorf("body %d error %g of RMS after adaptation", id, rel)
			}
		}
	})
	// The adapted tolerance tracks the problem's acceleration scale.
	if tolAfter <= 0 || tolAfter > 1e-5*aRMS*10 || tolAfter < 1e-5*aRMS/10 {
		t.Fatalf("adapted tolerance %g, RMS accel %g", tolAfter, aRMS)
	}
}

func TestBalanceReport(t *testing.T) {
	const n = 1000
	global := globalCloud(n, 11)
	var rep BalanceReport
	msg.Run(4, func(c *msg.Comm) {
		e := New(c, scatter(global, c), cfg())
		e.ComputeForces()
		// A second evaluation rebalances on measured work.
		e.ComputeForces()
		r := e.Balance()
		if c.Rank() == 0 {
			rep = r
		}
	})
	if rep.Work.Max == 0 || rep.Bodies.Max == 0 {
		t.Fatalf("empty balance report: %+v", rep)
	}
	// The work-weighted decomposition should balance interactions
	// decently even on a clustered problem.
	if rep.Work.Efficiency < 0.6 {
		t.Fatalf("work balance efficiency %.2f: %+v", rep.Work.Efficiency, rep.Work)
	}
}

// Regression for the PR 4 incident at full pipeline scale: a rank
// dying inside the walk phase of an 8-way force computation must end
// in a structured WorldError promptly (abort path), with the stall
// watchdog armed as a backstop -- never a hang. The injector makes
// the historical failure reproducible on demand.
func TestChaosCrashDuringWalkAborts(t *testing.T) {
	global := globalCloud(800, 4)
	done := make(chan *msg.WorldError, 1)
	go func() {
		w := msg.NewWorld(8)
		inj := &msg.Injector{Seed: 9, CrashProb: 1, CrashPhase: "walk"}
		w.SetInjector(inj)
		w.StartWatchdog(msg.WatchdogConfig{Quiet: 5 * time.Second, Out: io.Discard})
		done <- w.RunErr(func(c *msg.Comm) {
			e := New(c, scatter(global, c), cfg())
			e.ComputeForces()
		})
	}()
	var err *msg.WorldError
	select {
	case err = <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("crashed world hung instead of aborting")
	}
	if err == nil {
		t.Fatal("expected a WorldError from the injected crash")
	}
	var crash *msg.InjectedCrash
	if !errors.As(err, &crash) {
		t.Fatalf("cause = %v, want *InjectedCrash", err.Cause)
	}
	if crash.Phase != "walk" {
		t.Fatalf("crash phase = %q, want walk", crash.Phase)
	}
	if err.Rank != crash.Rank {
		t.Fatalf("WorldError rank %d != crash rank %d", err.Rank, crash.Rank)
	}
}
