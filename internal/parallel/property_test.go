package parallel

import (
	"math"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/grav"
	"repro/internal/msg"
	"repro/internal/snapio"
	"repro/internal/vec"
)

// Property: for random clouds, random rank counts and random MAC
// settings, the distributed forces stay within the expected error of
// the direct sum. This is the end-to-end contract of the whole
// parallel stack (decomposition + branches + requests + kernels).
func TestParallelForcesProperty(t *testing.T) {
	f := func(seed int64, npRaw, nRaw uint8, loose bool) bool {
		np := int(npRaw)%6 + 1
		n := int(nRaw)%300 + 50
		rng := rand.New(rand.NewSource(seed))
		global := core.New(n)
		global.EnableDynamics()
		for i := 0; i < n; i++ {
			// Random mixture of clump and field.
			if rng.Intn(2) == 0 {
				global.Pos[i] = vec.V3{X: rng.Float64(), Y: rng.Float64(), Z: rng.Float64()}
			} else {
				global.Pos[i] = vec.V3{
					X: 0.5 + 0.02*rng.NormFloat64(),
					Y: 0.5 + 0.02*rng.NormFloat64(),
					Z: 0.5 + 0.02*rng.NormFloat64(),
				}
			}
			global.Mass[i] = rng.Float64() + 0.1
		}
		wantAcc, _ := directRef(global, 1e-6)
		aRMS := rmsNorm(wantAcc)

		mac := grav.MACParams{Kind: grav.MACSalmonWarren, AccelTol: 1e-6 * aRMS, Quad: true}
		tol := 1e-3
		if loose {
			mac = grav.MACParams{Kind: grav.MACBarnesHut, Theta: 0.5, Quad: true}
			tol = 1e-2
		}
		okAll := true
		var mu sync.Mutex
		msg.Run(np, func(c *msg.Comm) {
			e := New(c, scatter(global, c), Config{MAC: mac, Eps2: 1e-6})
			e.ComputeForces()
			mu.Lock()
			defer mu.Unlock()
			for i := 0; i < e.Sys.Len(); i++ {
				id := e.Sys.ID[i]
				if e.Sys.Acc[i].Sub(wantAcc[id]).Norm()/aRMS > tol {
					okAll = false
				}
			}
		})
		return okAll
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestTinySystems(t *testing.T) {
	// Degenerate sizes through the full parallel stack.
	for _, n := range []int{1, 2, 3} {
		for _, np := range []int{1, 2, 4} {
			global := globalCloud(17, 12) // placeholder to size fields
			_ = global
			sys := core.New(n)
			sys.EnableDynamics()
			for i := 0; i < n; i++ {
				sys.Pos[i] = vec.V3{X: float64(i), Y: 0.5, Z: 0.5}
				sys.Mass[i] = 1
			}
			msg.Run(np, func(c *msg.Comm) {
				local := core.New(0)
				local.EnableDynamics()
				lo, hi := c.Rank()*n/np, (c.Rank()+1)*n/np
				for i := lo; i < hi; i++ {
					local.AppendFrom(sys, i)
				}
				e := New(c, local, cfg())
				ctr := e.ComputeForces()
				if n > 1 && c.Rank() == 0 {
					// Total interactions across ranks checked loosely
					// via own share being finite; a 1-body system has
					// zero interactions.
					_ = ctr
				}
			})
		}
	}
}

func TestDuplicatePositionsParallel(t *testing.T) {
	// Many bodies at one point: max-depth leaves, softened self-skip,
	// decomposition with indistinguishable keys.
	const n = 30
	sys := core.New(n)
	sys.EnableDynamics()
	for i := 0; i < n; i++ {
		sys.Pos[i] = vec.V3{X: 0.25, Y: 0.75, Z: 0.5}
		sys.Mass[i] = 1
	}
	msg.Run(3, func(c *msg.Comm) {
		local := core.New(0)
		local.EnableDynamics()
		lo, hi := c.Rank()*n/3, (c.Rank()+1)*n/3
		for i := lo; i < hi; i++ {
			local.AppendFrom(sys, i)
		}
		e := New(c, local, Config{
			MAC:  grav.MACParams{Kind: grav.MACSalmonWarren, AccelTol: 1e-6, Quad: true},
			Eps2: 1e-2,
		})
		e.ComputeForces()
		for i := 0; i < e.Sys.Len(); i++ {
			if math.IsNaN(e.Sys.Acc[i].Norm()) {
				t.Errorf("NaN acceleration for coincident bodies")
			}
			if e.Sys.Acc[i].Norm() > 1e-9 {
				t.Errorf("coincident bodies should feel zero net force, got %v", e.Sys.Acc[i])
			}
		}
	})
}

// Checkpoint/restart: write a striped snapshot mid-run, reload it, and
// verify the continued trajectories agree. This is the paper's
// 13.5-day-no-restart reliability story exercised in reverse.
func TestSnapshotRestartContinuity(t *testing.T) {
	const n = 300
	global := globalCloud(n, 13)
	dir := t.TempDir()

	// Run A: 6 steps straight through.
	endA := make([]vec.V3, n)
	msg.Run(2, func(c *msg.Comm) {
		e := New(c, scatter(global, c), cfg())
		e.ComputeForces()
		for s := 0; s < 6; s++ {
			e.Step(1e-3)
		}
		var mu sync.Mutex
		mu.Lock()
		for i := 0; i < e.Sys.Len(); i++ {
			endA[e.Sys.ID[i]] = e.Sys.Pos[i]
		}
		mu.Unlock()
	})

	// Run B: 3 steps, snapshot, reload, 3 more steps.
	var mid *core.System
	msg.Run(2, func(c *msg.Comm) {
		e := New(c, scatter(global, c), cfg())
		e.ComputeForces()
		for s := 0; s < 3; s++ {
			e.Step(1e-3)
		}
		// Gather to rank 0 and snapshot (striped over 3 files).
		type wire struct {
			P, V vec.V3
			M    float64
			ID   int64
		}
		mine := make([]wire, e.Sys.Len())
		for i := range mine {
			mine[i] = wire{e.Sys.Pos[i], e.Sys.Vel[i], e.Sys.Mass[i], e.Sys.ID[i]}
		}
		all := msg.Gather(c, 0, mine, 56*len(mine))
		if c.Rank() == 0 {
			snap := core.New(n)
			snap.EnableDynamics()
			at := 0
			for _, b := range all {
				for _, w := range b {
					snap.Pos[at], snap.Vel[at], snap.Mass[at], snap.ID[at] = w.P, w.V, w.M, w.ID
					at++
				}
			}
			if err := snapio.WriteStriped(dir, "restart", snap, 3e-3, 3); err != nil {
				t.Error(err)
			}
		}
	})
	loaded, tm, err := snapio.ReadStriped(dir, "restart", 3)
	if err != nil {
		t.Fatal(err)
	}
	if tm != 3e-3 {
		t.Fatalf("snapshot time %v", tm)
	}
	mid = loaded

	endB := make([]vec.V3, n)
	msg.Run(2, func(c *msg.Comm) {
		e := New(c, scatter(mid, c), cfg())
		e.ComputeForces()
		for s := 0; s < 3; s++ {
			e.Step(1e-3)
		}
		var mu sync.Mutex
		mu.Lock()
		for i := 0; i < e.Sys.Len(); i++ {
			endB[e.Sys.ID[i]] = e.Sys.Pos[i]
		}
		mu.Unlock()
	})

	// The restart re-evaluates forces at the checkpoint (a fresh KDK
	// step boundary), so trajectories agree to integration tolerance,
	// not bitwise.
	var worst float64
	for i := 0; i < n; i++ {
		if d := endA[i].Sub(endB[i]).Norm(); d > worst {
			worst = d
		}
	}
	if worst > 1e-6 {
		t.Fatalf("restart diverged by %g", worst)
	}
}
