package parallel

import (
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/diag"
	"repro/internal/grav"
	"repro/internal/ic"
	"repro/internal/metrics"
	"repro/internal/msg"
	"repro/internal/trace"
	"repro/internal/vec"
)

// run4 executes evals force evaluations on a 4-rank world and returns
// the world and engines. tr and stalls, when non-nil, instrument
// every rank.
func run4(t *testing.T, n, evals int, tr *trace.Run, stalls *metrics.Histogram) (*msg.World, []*Engine) {
	t.Helper()
	const np = 4
	mac := grav.MACParams{Kind: grav.MACSalmonWarren, AccelTol: 1e-4, Quad: true}
	engines := make([]*Engine, np)
	w := msg.NewWorld(np)
	w.SetTrace(tr)
	var mu sync.Mutex
	w.Run(func(c *msg.Comm) {
		global := ic.Plummer(n, 1.0, 23)
		local := core.New(0)
		local.EnableDynamics()
		lo, hi := c.Rank()*n/c.Size(), (c.Rank()+1)*n/c.Size()
		for i := lo; i < hi; i++ {
			local.AppendFrom(global, i)
		}
		e := New(c, local, Config{MAC: mac, Eps2: 1e-6})
		if tr != nil {
			e.EnableTrace(tr.Rank(c.Rank()))
		}
		e.Stalls = stalls
		for k := 0; k < evals; k++ {
			e.ComputeForces()
		}
		mu.Lock()
		engines[c.Rank()] = e
		mu.Unlock()
	})
	return w, engines
}

// The per-phase traffic attribution the machine models (and now the
// RunReport) depend on: on a 4-rank run, every byte a rank sends is
// attributed to exactly one phase, so the per-phase records sum to
// the rank's total, and the comm-matrix row sums agree with both.
func TestPhaseTrafficAttributionSumsToTotals(t *testing.T) {
	w, engines := run4(t, 1500, 2, nil, nil)

	matMsgs, matBytes := w.CommMatrix()
	var worldMsgs, worldBytes uint64
	for r := 0; r < 4; r++ {
		tr := w.RankTraffic(r)
		var phMsgs, phBytes uint64
		for _, pt := range tr.Phases {
			phMsgs += pt.Msgs
			phBytes += pt.Bytes
		}
		tot := tr.Total()
		if phMsgs != tot.Msgs || phBytes != tot.Bytes {
			t.Fatalf("rank %d: phase sums (%d msgs, %d B) != totals (%d msgs, %d B)",
				r, phMsgs, phBytes, tot.Msgs, tot.Bytes)
		}
		var rowMsgs, rowBytes uint64
		for d := 0; d < 4; d++ {
			rowMsgs += matMsgs[r][d]
			rowBytes += matBytes[r][d]
		}
		if rowMsgs != tot.Msgs || rowBytes != tot.Bytes {
			t.Fatalf("rank %d: comm-matrix row (%d msgs, %d B) != totals (%d msgs, %d B)",
				r, rowMsgs, rowBytes, tot.Msgs, tot.Bytes)
		}
		worldMsgs += tot.Msgs
		worldBytes += tot.Bytes

		// The pipeline phases must carry the traffic: branch exchange
		// always, and the walk phase whenever remote cells were
		// fetched.
		if tr.Phases["branches"] == nil || tr.Phases["branches"].Bytes == 0 {
			t.Fatalf("rank %d: no bytes attributed to the branches phase", r)
		}
		if engines[r].RemoteCells > 0 {
			if tr.Phases["walk"] == nil || tr.Phases["walk"].Bytes == 0 {
				t.Fatalf("rank %d: %d remote cells but no walk-phase bytes",
					r, engines[r].RemoteCells)
			}
		}
	}
	wt := w.TotalTraffic()
	if wt.Msgs != worldMsgs || wt.Bytes != worldBytes {
		t.Fatalf("world totals (%d, %d) != per-rank sums (%d, %d)",
			wt.Msgs, wt.Bytes, worldMsgs, worldBytes)
	}
}

// A RunReport is the counters and traffic records re-expressed: every
// number must match the diag.Counters and msg totals exactly, and
// instrumentation must not perturb the forces -- a traced run is
// byte-identical to an untraced one.
func TestRunReportMatchesCountersAndForcesUnchanged(t *testing.T) {
	const n = 1500

	// Untraced reference run.
	_, ref := run4(t, n, 1, nil, nil)
	refAcc := map[int64]vec.V3{}
	for _, e := range ref {
		for i := 0; i < e.Sys.Len(); i++ {
			refAcc[e.Sys.ID[i]] = e.Sys.Acc[i]
		}
	}

	// Fully instrumented run: tracing, stall histogram, registry.
	reg := metrics.NewRegistry()
	stalls := reg.Histogram(metrics.StallHistogram)
	tr := trace.NewRun(4)
	w, engines := run4(t, n, 1, tr, stalls)

	seen := 0
	for _, e := range engines {
		for i := 0; i < e.Sys.Len(); i++ {
			if e.Sys.Acc[i] != refAcc[e.Sys.ID[i]] {
				t.Fatalf("tracing changed forces: body %d", e.Sys.ID[i])
			}
			seen++
		}
	}
	if seen != n {
		t.Fatalf("compared %d of %d bodies", seen, n)
	}

	inputs := make([]metrics.RankInput, len(engines))
	var want diag.Counters
	var deferredTotal uint64
	for r, e := range engines {
		inputs[r] = e.Report()
		want.Add(e.Counters)
		deferredTotal += e.Counters.Deferred
	}
	rep := metrics.BuildReport("test", n, 1.0, inputs, w, reg)

	if rep.Totals.Counters != want {
		t.Fatalf("report counters %+v != engine counters %+v", rep.Totals.Counters, want)
	}
	if rep.Totals.Interactions != want.Interactions() || rep.Totals.Flops != want.Flops() {
		t.Fatal("report totals disagree with counter arithmetic")
	}
	wt := w.TotalTraffic()
	if rep.Totals.Msgs != wt.Msgs || rep.Totals.Bytes != wt.Bytes {
		t.Fatal("report traffic totals disagree with the world")
	}
	for r, rr := range rep.Ranks {
		if rr.Counters != engines[r].Counters {
			t.Fatalf("rank %d counters differ in report", r)
		}
		tot := w.RankTraffic(r).Total()
		if rr.SentMsgs != tot.Msgs || rr.SentBytes != tot.Bytes {
			t.Fatalf("rank %d traffic differs in report", r)
		}
	}

	// Distributed 4-rank walks defer groups on remote data; the stall
	// histogram must have seen them, bounded by the deferral counter.
	if deferredTotal > 0 {
		if stalls.Count() == 0 {
			t.Fatal("groups were deferred but no stalls sampled")
		}
		if stalls.Count() > deferredTotal {
			t.Fatalf("stall samples %d exceed deferrals %d", stalls.Count(), deferredTotal)
		}
		if rep.Histograms[metrics.StallHistogram].Count != stalls.Count() {
			t.Fatal("report histogram snapshot disagrees")
		}
	}

	// Phase balance covers the pipeline phases with sane statistics.
	phases := map[string]metrics.PhaseBalance{}
	for _, pb := range rep.Phases {
		phases[pb.Phase] = pb
	}
	for _, ph := range []string{"decompose", "treebuild", "branches", "walk"} {
		pb, ok := phases[ph]
		if !ok {
			t.Fatalf("phase %q missing from report balance", ph)
		}
		if pb.Max < pb.Min || pb.Efficiency <= 0 || pb.Efficiency > 1 {
			t.Fatalf("phase %q balance insane: %+v", ph, pb)
		}
	}

	// The trace saw phase spans on every rank and send events whose
	// byte totals match the traffic record (ring large enough here).
	for r := 0; r < 4; r++ {
		var sentBytes uint64
		spans := map[string]bool{}
		for _, ev := range tr.Rank(r).Events() {
			switch ev.Kind {
			case trace.KindSpan:
				spans[ev.Name] = true
			case trace.KindSend:
				sentBytes += uint64(ev.Bytes)
			}
		}
		if tr.Rank(r).Dropped() > 0 {
			t.Fatalf("rank %d trace ring overflowed in a small run", r)
		}
		for _, ph := range []string{"decompose", "treebuild", "branches", "walk"} {
			if !spans[ph] {
				t.Fatalf("rank %d trace missing %q span", r, ph)
			}
		}
		if got := w.RankTraffic(r).Total().Bytes; sentBytes != got {
			t.Fatalf("rank %d trace send bytes %d != traffic record %d", r, sentBytes, got)
		}
	}
}
