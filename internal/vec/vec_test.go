package vec

import (
	"math"
	"testing"
	"testing/quick"
)

func close(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func v3close(a, b V3, tol float64) bool {
	return close(a.X, b.X, tol) && close(a.Y, b.Y, tol) && close(a.Z, b.Z, tol)
}

func TestAddSub(t *testing.T) {
	a := V3{1, 2, 3}
	b := V3{4, -5, 6}
	if got := a.Add(b); got != (V3{5, -3, 9}) {
		t.Fatalf("Add = %v", got)
	}
	if got := a.Sub(b); got != (V3{-3, 7, -3}) {
		t.Fatalf("Sub = %v", got)
	}
	if got := a.Neg(); got != (V3{-1, -2, -3}) {
		t.Fatalf("Neg = %v", got)
	}
}

func TestDotCross(t *testing.T) {
	x := V3{1, 0, 0}
	y := V3{0, 1, 0}
	z := V3{0, 0, 1}
	if got := x.Cross(y); got != z {
		t.Fatalf("x cross y = %v, want z", got)
	}
	if got := y.Cross(x); got != z.Neg() {
		t.Fatalf("y cross x = %v, want -z", got)
	}
	if d := x.Dot(y); d != 0 {
		t.Fatalf("x.y = %v", d)
	}
}

func TestNorm(t *testing.T) {
	a := V3{3, 4, 12}
	if n := a.Norm(); !close(n, 13, 1e-12) {
		t.Fatalf("Norm = %v", n)
	}
	if n2 := a.Norm2(); n2 != 169 {
		t.Fatalf("Norm2 = %v", n2)
	}
}

func TestMaxAbs(t *testing.T) {
	if m := (V3{-7, 2, 3}).MaxAbs(); m != 7 {
		t.Fatalf("MaxAbs = %v", m)
	}
	if m := (V3{1, -9, 3}).MaxAbs(); m != 9 {
		t.Fatalf("MaxAbs = %v", m)
	}
	if m := (V3{1, 2, -30}).MaxAbs(); m != 30 {
		t.Fatalf("MaxAbs = %v", m)
	}
}

func TestMinMax(t *testing.T) {
	a := V3{1, 5, -2}
	b := V3{3, -4, 0}
	if got := Min(a, b); got != (V3{1, -4, -2}) {
		t.Fatalf("Min = %v", got)
	}
	if got := Max(a, b); got != (V3{3, 5, 0}) {
		t.Fatalf("Max = %v", got)
	}
}

// Property: cross product is orthogonal to both inputs.
func TestCrossOrthogonalProperty(t *testing.T) {
	f := func(ax, ay, az, bx, by, bz float64) bool {
		a := V3{clamp(ax), clamp(ay), clamp(az)}
		b := V3{clamp(bx), clamp(by), clamp(bz)}
		c := a.Cross(b)
		scale := (a.Norm() + 1) * (b.Norm() + 1)
		return close(c.Dot(a), 0, 1e-9*scale*scale) && close(c.Dot(b), 0, 1e-9*scale*scale)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: |a x b|^2 + (a.b)^2 == |a|^2 |b|^2 (Lagrange identity).
func TestLagrangeIdentityProperty(t *testing.T) {
	f := func(ax, ay, az, bx, by, bz float64) bool {
		a := V3{clamp(ax), clamp(ay), clamp(az)}
		b := V3{clamp(bx), clamp(by), clamp(bz)}
		lhs := a.Cross(b).Norm2() + a.Dot(b)*a.Dot(b)
		rhs := a.Norm2() * b.Norm2()
		return close(lhs, rhs, 1e-9*(rhs+1))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// clamp maps arbitrary float64s (possibly NaN/Inf from quick) into a
// sane range for numerical property tests.
func clamp(x float64) float64 {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return 0.5
	}
	return math.Mod(x, 1e3)
}

func TestSym3Detrace(t *testing.T) {
	q := Sym3{XX: 1, YY: 2, ZZ: 3, XY: 4, XZ: 5, YZ: 6}
	d := q.Detrace()
	if !close(d.Trace(), 0, 1e-14) {
		t.Fatalf("Detrace trace = %v", d.Trace())
	}
	// Off-diagonals must be untouched.
	if d.XY != 4 || d.XZ != 5 || d.YZ != 6 {
		t.Fatalf("Detrace changed off-diagonals: %+v", d)
	}
}

func TestSym3Apply(t *testing.T) {
	q := Sym3{XX: 2, YY: 3, ZZ: 4} // diagonal
	v := V3{1, 1, 1}
	if got := q.Apply(v); got != (V3{2, 3, 4}) {
		t.Fatalf("Apply = %v", got)
	}
	if f := q.Quad(v); f != 9 {
		t.Fatalf("Quad = %v", f)
	}
}

func TestOuter(t *testing.T) {
	v := V3{1, 2, 3}
	o := Outer(v, 2)
	want := Sym3{XX: 2, YY: 8, ZZ: 18, XY: 4, XZ: 6, YZ: 12}
	if o != want {
		t.Fatalf("Outer = %+v, want %+v", o, want)
	}
}

// Property: Quad(v) of Outer(v, m) equals m * |v|^4.
func TestOuterQuadProperty(t *testing.T) {
	f := func(x, y, z, m float64) bool {
		v := V3{clamp(x), clamp(y), clamp(z)}
		mm := math.Abs(clamp(m))
		got := Outer(v, mm).Quad(v)
		want := mm * v.Norm2() * v.Norm2()
		return close(got, want, 1e-7*(math.Abs(want)+1))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSym3AddScaleMaxAbs(t *testing.T) {
	q := Sym3{XX: 1, YY: -2, ZZ: 3, XY: 0.5, XZ: -7, YZ: 2}
	r := q.Add(q.Scale(-1))
	if r != (Sym3{}) {
		t.Fatalf("q - q = %+v", r)
	}
	if m := q.MaxAbs(); m != 7 {
		t.Fatalf("MaxAbs = %v", m)
	}
}
