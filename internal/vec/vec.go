// Package vec provides the small fixed-size linear algebra used
// throughout the treecode: 3-vectors and symmetric 3x3 tensors.
//
// Everything is a value type; operations return new values so that
// expressions compose without aliasing surprises. The hot kernels in
// internal/grav and internal/vortex inline their own arithmetic and do
// not call into this package, so clarity wins over micro-optimization
// here.
package vec

import "math"

// V3 is a 3-vector of float64.
type V3 struct{ X, Y, Z float64 }

// Add returns a + b.
func (a V3) Add(b V3) V3 { return V3{a.X + b.X, a.Y + b.Y, a.Z + b.Z} }

// Sub returns a - b.
func (a V3) Sub(b V3) V3 { return V3{a.X - b.X, a.Y - b.Y, a.Z - b.Z} }

// Scale returns s*a.
func (a V3) Scale(s float64) V3 { return V3{s * a.X, s * a.Y, s * a.Z} }

// Dot returns the inner product a . b.
func (a V3) Dot(b V3) float64 { return a.X*b.X + a.Y*b.Y + a.Z*b.Z }

// Cross returns the cross product a x b.
func (a V3) Cross(b V3) V3 {
	return V3{
		a.Y*b.Z - a.Z*b.Y,
		a.Z*b.X - a.X*b.Z,
		a.X*b.Y - a.Y*b.X,
	}
}

// Norm2 returns |a|^2.
func (a V3) Norm2() float64 { return a.Dot(a) }

// Norm returns |a|.
func (a V3) Norm() float64 { return math.Sqrt(a.Norm2()) }

// Neg returns -a.
func (a V3) Neg() V3 { return V3{-a.X, -a.Y, -a.Z} }

// MaxAbs returns the largest absolute component.
func (a V3) MaxAbs() float64 {
	m := math.Abs(a.X)
	if v := math.Abs(a.Y); v > m {
		m = v
	}
	if v := math.Abs(a.Z); v > m {
		m = v
	}
	return m
}

// Min returns the componentwise minimum of a and b.
func Min(a, b V3) V3 {
	return V3{math.Min(a.X, b.X), math.Min(a.Y, b.Y), math.Min(a.Z, b.Z)}
}

// Max returns the componentwise maximum of a and b.
func Max(a, b V3) V3 {
	return V3{math.Max(a.X, b.X), math.Max(a.Y, b.Y), math.Max(a.Z, b.Z)}
}

// Sym3 is a symmetric 3x3 tensor stored as its six independent
// components. It represents quadrupole moments Q_ij.
type Sym3 struct {
	XX, YY, ZZ float64
	XY, XZ, YZ float64
}

// Add returns q + r.
func (q Sym3) Add(r Sym3) Sym3 {
	return Sym3{
		q.XX + r.XX, q.YY + r.YY, q.ZZ + r.ZZ,
		q.XY + r.XY, q.XZ + r.XZ, q.YZ + r.YZ,
	}
}

// Scale returns s*q.
func (q Sym3) Scale(s float64) Sym3 {
	return Sym3{s * q.XX, s * q.YY, s * q.ZZ, s * q.XY, s * q.XZ, s * q.YZ}
}

// Outer returns the symmetric part of the outer product v v^T scaled by m.
func Outer(v V3, m float64) Sym3 {
	return Sym3{
		m * v.X * v.X, m * v.Y * v.Y, m * v.Z * v.Z,
		m * v.X * v.Y, m * v.X * v.Z, m * v.Y * v.Z,
	}
}

// Trace returns Q_xx + Q_yy + Q_zz.
func (q Sym3) Trace() float64 { return q.XX + q.YY + q.ZZ }

// Detrace returns the traceless form q - (tr q / 3) I, the reduced
// quadrupole used in the multipole expansion.
func (q Sym3) Detrace() Sym3 {
	t := q.Trace() / 3
	r := q
	r.XX -= t
	r.YY -= t
	r.ZZ -= t
	return r
}

// Apply returns the matrix-vector product Q v.
func (q Sym3) Apply(v V3) V3 {
	return V3{
		q.XX*v.X + q.XY*v.Y + q.XZ*v.Z,
		q.XY*v.X + q.YY*v.Y + q.YZ*v.Z,
		q.XZ*v.X + q.YZ*v.Y + q.ZZ*v.Z,
	}
}

// Quad returns the quadratic form v^T Q v.
func (q Sym3) Quad(v V3) float64 { return v.Dot(q.Apply(v)) }

// MaxAbs returns the largest absolute component of q.
func (q Sym3) MaxAbs() float64 {
	m := 0.0
	for _, v := range [6]float64{q.XX, q.YY, q.ZZ, q.XY, q.XZ, q.YZ} {
		if a := math.Abs(v); a > m {
			m = a
		}
	}
	return m
}
