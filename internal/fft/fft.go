// Package fft implements the fast Fourier transforms the reproduction
// needs: in-place radix-2 complex transforms, and 3-D transforms over
// cubic grids. The paper's initial conditions were "calculated using a
// 1024^3 point 3-d FFT from a Cold Dark Matter power spectrum"; the
// same pipeline runs here at laptop-scale grids, and the NPB FT
// kernel verifies against this package.
//
// Only stdlib is used; the implementation is the iterative
// Cooley-Tukey algorithm with bit-reversal permutation and
// precomputable twiddle tables for repeated same-size transforms.
package fft

import (
	"fmt"
	"math"
	"math/bits"
	"math/cmplx"
)

// Plan caches twiddle factors for transforms of one power-of-two size.
type Plan struct {
	n int
	// twiddle[k] = exp(-2 pi i k / n) for k < n/2.
	twiddle []complex128
}

// NewPlan creates a plan for size n (a power of two >= 1).
func NewPlan(n int) (*Plan, error) {
	if n < 1 || n&(n-1) != 0 {
		return nil, fmt.Errorf("fft: size %d is not a power of two", n)
	}
	p := &Plan{n: n, twiddle: make([]complex128, n/2)}
	for k := range p.twiddle {
		s, c := math.Sincos(-2 * math.Pi * float64(k) / float64(n))
		p.twiddle[k] = complex(c, s)
	}
	return p, nil
}

// Size returns the transform length.
func (p *Plan) Size() int { return p.n }

// Forward computes the in-place forward DFT
// X[k] = sum_j x[j] exp(-2 pi i jk / n).
func (p *Plan) Forward(x []complex128) {
	p.transform(x, false)
}

// Inverse computes the in-place inverse DFT including the 1/n
// normalization, so Inverse(Forward(x)) == x.
func (p *Plan) Inverse(x []complex128) {
	p.transform(x, true)
	inv := complex(1/float64(p.n), 0)
	for i := range x {
		x[i] *= inv
	}
}

func (p *Plan) transform(x []complex128, inverse bool) {
	n := p.n
	if len(x) != n {
		panic(fmt.Sprintf("fft: input length %d, plan size %d", len(x), n))
	}
	// Bit-reversal permutation.
	shift := bits.UintSize - uint(bits.Len(uint(n-1)))
	if n > 1 {
		for i := 0; i < n; i++ {
			j := int(bits.Reverse(uint(i)) >> shift)
			if j > i {
				x[i], x[j] = x[j], x[i]
			}
		}
	}
	// Iterative butterflies.
	for size := 2; size <= n; size <<= 1 {
		half := size / 2
		step := n / size
		for start := 0; start < n; start += size {
			for k := 0; k < half; k++ {
				w := p.twiddle[k*step]
				if inverse {
					w = cmplx.Conj(w)
				}
				a := x[start+k]
				b := x[start+k+half] * w
				x[start+k] = a + b
				x[start+k+half] = a - b
			}
		}
	}
}

// Grid3 is an n^3 complex field stored x-fastest: index = (z*n+y)*n+x.
type Grid3 struct {
	N    int
	Data []complex128
	plan *Plan
	buf  []complex128
}

// NewGrid3 allocates an n^3 grid (n a power of two).
func NewGrid3(n int) (*Grid3, error) {
	p, err := NewPlan(n)
	if err != nil {
		return nil, err
	}
	return &Grid3{
		N:    n,
		Data: make([]complex128, n*n*n),
		plan: p,
		buf:  make([]complex128, n),
	}, nil
}

// At returns the value at (x,y,z) with periodic wrapping.
func (g *Grid3) At(x, y, z int) complex128 {
	n := g.N
	x, y, z = mod(x, n), mod(y, n), mod(z, n)
	return g.Data[(z*n+y)*n+x]
}

// Set stores the value at (x,y,z) with periodic wrapping.
func (g *Grid3) Set(x, y, z int, v complex128) {
	n := g.N
	x, y, z = mod(x, n), mod(y, n), mod(z, n)
	g.Data[(z*n+y)*n+x] = v
}

func mod(i, n int) int {
	i %= n
	if i < 0 {
		i += n
	}
	return i
}

// Forward3 transforms the grid in place along all three axes.
func (g *Grid3) Forward3() { g.transform3(false) }

// Inverse3 inverts Forward3 (normalization included).
func (g *Grid3) Inverse3() { g.transform3(true) }

func (g *Grid3) transform3(inverse bool) {
	n := g.N
	do := func(x []complex128) {
		if inverse {
			g.plan.Inverse(x)
		} else {
			g.plan.Forward(x)
		}
	}
	// X lines are contiguous.
	for zy := 0; zy < n*n; zy++ {
		do(g.Data[zy*n : zy*n+n])
	}
	// Y lines.
	for z := 0; z < n; z++ {
		for x := 0; x < n; x++ {
			for y := 0; y < n; y++ {
				g.buf[y] = g.Data[(z*n+y)*n+x]
			}
			do(g.buf)
			for y := 0; y < n; y++ {
				g.Data[(z*n+y)*n+x] = g.buf[y]
			}
		}
	}
	// Z lines.
	for y := 0; y < n; y++ {
		for x := 0; x < n; x++ {
			for z := 0; z < n; z++ {
				g.buf[z] = g.Data[(z*n+y)*n+x]
			}
			do(g.buf)
			for z := 0; z < n; z++ {
				g.Data[(z*n+y)*n+x] = g.buf[z]
			}
		}
	}
}

// FreqIndex maps grid index i to the signed frequency in [-n/2, n/2).
func FreqIndex(i, n int) int {
	if i <= n/2 {
		return i
	}
	return i - n
}

// DFTSlow is the O(n^2) reference transform used by tests.
func DFTSlow(x []complex128) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	for k := 0; k < n; k++ {
		var sum complex128
		for j := 0; j < n; j++ {
			ang := -2 * math.Pi * float64(k*j) / float64(n)
			s, c := math.Sincos(ang)
			sum += x[j] * complex(c, s)
		}
		out[k] = sum
	}
	return out
}
