package fft

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

func randomSignal(n int, seed int64) []complex128 {
	rng := rand.New(rand.NewSource(seed))
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	return x
}

func maxDiff(a, b []complex128) float64 {
	m := 0.0
	for i := range a {
		if d := cmplx.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}

func TestPlanValidation(t *testing.T) {
	for _, n := range []int{0, 3, 12, -4} {
		if _, err := NewPlan(n); err == nil {
			t.Errorf("NewPlan(%d) should fail", n)
		}
	}
	for _, n := range []int{1, 2, 4, 1024} {
		if _, err := NewPlan(n); err != nil {
			t.Errorf("NewPlan(%d): %v", n, err)
		}
	}
}

func TestForwardMatchesSlowDFT(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8, 32, 128} {
		x := randomSignal(n, int64(n))
		want := DFTSlow(x)
		p, _ := NewPlan(n)
		got := append([]complex128(nil), x...)
		p.Forward(got)
		if d := maxDiff(got, want); d > 1e-9*float64(n) {
			t.Errorf("n=%d: max diff %g", n, d)
		}
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(seed int64, sizeExp uint8) bool {
		n := 1 << (sizeExp % 10)
		x := randomSignal(n, seed)
		p, _ := NewPlan(n)
		y := append([]complex128(nil), x...)
		p.Forward(y)
		p.Inverse(y)
		return maxDiff(x, y) < 1e-10*float64(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestParseval(t *testing.T) {
	n := 256
	x := randomSignal(n, 7)
	var tdom float64
	for _, v := range x {
		tdom += real(v)*real(v) + imag(v)*imag(v)
	}
	p, _ := NewPlan(n)
	p.Forward(x)
	var fdom float64
	for _, v := range x {
		fdom += real(v)*real(v) + imag(v)*imag(v)
	}
	fdom /= float64(n)
	if math.Abs(tdom-fdom) > 1e-9*tdom {
		t.Fatalf("Parseval violated: %g vs %g", tdom, fdom)
	}
}

func TestImpulseResponse(t *testing.T) {
	// DFT of a unit impulse is all ones.
	n := 64
	x := make([]complex128, n)
	x[0] = 1
	p, _ := NewPlan(n)
	p.Forward(x)
	for k, v := range x {
		if cmplx.Abs(v-1) > 1e-12 {
			t.Fatalf("bin %d = %v", k, v)
		}
	}
}

func TestSingleModeFrequency(t *testing.T) {
	// x[j] = exp(2 pi i m j / n) transforms to n*delta[k-m].
	n, m := 32, 5
	x := make([]complex128, n)
	for j := range x {
		ang := 2 * math.Pi * float64(m*j) / float64(n)
		s, c := math.Sincos(ang)
		x[j] = complex(c, s)
	}
	p, _ := NewPlan(n)
	p.Forward(x)
	for k, v := range x {
		want := complex(0, 0)
		if k == m {
			want = complex(float64(n), 0)
		}
		if cmplx.Abs(v-want) > 1e-9 {
			t.Fatalf("bin %d = %v, want %v", k, v, want)
		}
	}
}

func TestGrid3RoundTrip(t *testing.T) {
	g, err := NewGrid3(8)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	orig := make([]complex128, len(g.Data))
	for i := range g.Data {
		g.Data[i] = complex(rng.NormFloat64(), 0)
		orig[i] = g.Data[i]
	}
	g.Forward3()
	g.Inverse3()
	if d := maxDiff(g.Data, orig); d > 1e-10 {
		t.Fatalf("3-D round trip max diff %g", d)
	}
}

func TestGrid3PlaneWave(t *testing.T) {
	// A single 3-D plane wave lands in exactly one bin.
	n := 8
	g, _ := NewGrid3(n)
	kx, ky, kz := 2, 3, 1
	for z := 0; z < n; z++ {
		for y := 0; y < n; y++ {
			for x := 0; x < n; x++ {
				ang := 2 * math.Pi * float64(kx*x+ky*y+kz*z) / float64(n)
				s, c := math.Sincos(ang)
				g.Set(x, y, z, complex(c, s))
			}
		}
	}
	g.Forward3()
	total := float64(n * n * n)
	for z := 0; z < n; z++ {
		for y := 0; y < n; y++ {
			for x := 0; x < n; x++ {
				want := complex(0, 0)
				if x == kx && y == ky && z == kz {
					want = complex(total, 0)
				}
				if cmplx.Abs(g.At(x, y, z)-want) > 1e-8 {
					t.Fatalf("bin (%d,%d,%d) = %v, want %v", x, y, z, g.At(x, y, z), want)
				}
			}
		}
	}
}

func TestAtSetPeriodicWrap(t *testing.T) {
	g, _ := NewGrid3(4)
	g.Set(-1, 4, 9, 7i)
	if g.At(3, 0, 1) != 7i {
		t.Fatal("periodic wrap broken")
	}
}

func TestFreqIndex(t *testing.T) {
	cases := []struct{ i, n, want int }{
		{0, 8, 0}, {1, 8, 1}, {4, 8, 4}, {5, 8, -3}, {7, 8, -1},
	}
	for _, c := range cases {
		if got := FreqIndex(c.i, c.n); got != c.want {
			t.Errorf("FreqIndex(%d,%d) = %d, want %d", c.i, c.n, got, c.want)
		}
	}
}

func BenchmarkFFT1024(b *testing.B) {
	x := randomSignal(1024, 1)
	p, _ := NewPlan(1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Forward(x)
	}
}

func BenchmarkGrid3_32(b *testing.B) {
	g, _ := NewGrid3(32)
	for i := range g.Data {
		g.Data[i] = complex(float64(i%7), 0)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Forward3()
	}
}
