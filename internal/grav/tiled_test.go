package grav

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/vec"
)

// evalSelfBoth runs one self-evaluation through the given
// implementation and returns the scattered results.
func evalSelfImpl(im Impl, pos []vec.V3, mass []float64, eps2 float64) ([]vec.V3, []float64, uint64) {
	var tg Targets
	tg.Load(pos, mass)
	n := im.EvalSelf(&tg, eps2)
	acc := make([]vec.V3, len(pos))
	pot := make([]float64, len(pos))
	tg.Store(acc, pot)
	return acc, pot, n
}

// accScale returns the magnitude the 1e-13 force comparisons are
// relative to: the largest acceleration in the reference set. A
// per-component relative comparison would amplify benign per-element
// rounding whenever components cancel to near zero, so forces are
// compared at force scale, the guarantee the kernels actually make.
func accScale(acc []vec.V3) float64 {
	s := 0.0
	for _, a := range acc {
		if v := a.Norm(); v > s {
			s = v
		}
	}
	return s
}

// The tiled EvalSelf masks the self slot by splitting the self tile at
// that column instead of forming the reference kernels' r2 sentinel.
// This test pins the regression the sentinel made possible: bodies
// exactly coincident with another body (r2 = eps2, the smallest value
// the pipeline can see) must come out identical to PPSelf under both
// implementations, at sizes that place the self column at every tile
// edge: first/last column of a tile, single-column tiles, and blocks
// that straddle the tileSources boundary.
func TestEvalSelfCoincidentBodiesAtTileEdges(t *testing.T) {
	eps2 := 1e-4
	for _, n := range []int{1, 2, 3, 4, 5, 7, tileSources - 1, tileSources, tileSources + 1,
		tileSources + 2, 2*tileSources - 1, 2 * tileSources, 2*tileSources + 2} {
		rng := rand.New(rand.NewSource(int64(n)))
		pos, mass := randBodies(rng, n)
		// Coincident pairs, placed to cross tile edges: the first two
		// bodies, and the pair straddling the first tile boundary.
		if n >= 2 {
			pos[1] = pos[0]
		}
		if n > tileSources {
			pos[tileSources] = pos[tileSources-1]
		}

		accRef := make([]vec.V3, n)
		potRef := make([]float64, n)
		nRef := PPSelf(pos, mass, accRef, potRef, eps2)

		for _, im := range []Impl{ImplTiled, ImplRef} {
			acc, pot, got := evalSelfImpl(im, pos, mass, eps2)
			if got != nRef {
				t.Fatalf("n=%d %v: count %d, PPSelf %d", n, im, got, nRef)
			}
			scale := accScale(accRef)
			for i := range acc {
				if math.IsNaN(acc[i].X) || math.IsInf(acc[i].X, 0) {
					t.Fatalf("n=%d %v body %d: non-finite acceleration %v", n, im, i, acc[i])
				}
				if acc[i].Sub(accRef[i]).Norm() > 1e-13*scale ||
					relDiff(pot[i], potRef[i]) > 1e-13 {
					t.Fatalf("n=%d %v body %d: %v/%g, PPSelf %v/%g",
						n, im, i, acc[i], pot[i], accRef[i], potRef[i])
				}
			}
		}
	}
}

// The two kernel sets must agree to roundoff across a full mixed
// evaluation (multipoles + foreign bodies + self) with identical
// counts, at sizes exercising partial tiles on every loop.
func TestImplTiledMatchesRefMixedList(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	eps2 := 1e-6
	for _, nt := range []int{1, 3, 4, 5, 16, 67} {
		tpos, tmass := randBodies(rng, nt)
		spos, smass := randBodies(rng, 150)
		var cells []Multipole
		for c := 0; c < 70; c++ {
			cpos, cmass := randBodies(rng, 8)
			off := vec.V3{X: 5 * float64(c+2), Y: 3, Z: -2}
			for i := range cpos {
				cpos[i] = cpos[i].Add(off)
			}
			cells = append(cells, FromBodies(cpos, cmass))
		}
		run := func(im Impl) ([]vec.V3, []float64, uint64) {
			var tg Targets
			tg.Load(tpos, tmass)
			var l InteractionList
			l.AddBodies(spos, smass)
			for c := range cells {
				l.AddCell(&cells[c])
			}
			l.Self = true
			n := im.EvalM2P(&tg, &l, true, eps2)
			n += im.EvalPP(&tg, &l, eps2)
			n += im.EvalSelf(&tg, eps2)
			acc := make([]vec.V3, nt)
			pot := make([]float64, nt)
			tg.Store(acc, pot)
			return acc, pot, n
		}
		accT, potT, nT := run(ImplTiled)
		accR, potR, nR := run(ImplRef)
		if nT != nR {
			t.Fatalf("nt=%d: counts tiled %d ref %d", nt, nT, nR)
		}
		scale := accScale(accR)
		for i := range accT {
			if accT[i].Sub(accR[i]).Norm() > 1e-13*scale ||
				relDiff(potT[i], potR[i]) > 1e-13 {
				t.Fatalf("nt=%d body %d: tiled %v/%g ref %v/%g",
					nt, i, accT[i], potT[i], accR[i], potR[i])
			}
		}
	}
}

func TestImplString(t *testing.T) {
	if ImplTiled.String() != "tiled" || ImplRef.String() != "ref" {
		t.Fatalf("Impl strings: %q, %q", ImplTiled, ImplRef)
	}
}
