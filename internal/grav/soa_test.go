package grav

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/vec"
)

func randBodies(rng *rand.Rand, n int) ([]vec.V3, []float64) {
	pos := make([]vec.V3, n)
	mass := make([]float64, n)
	for i := range pos {
		pos[i] = vec.V3{X: rng.Float64(), Y: rng.Float64(), Z: rng.Float64()}
		mass[i] = rng.Float64() + 0.1
	}
	return pos, mass
}

func relDiff(a, b float64) float64 {
	d := math.Abs(a - b)
	s := math.Abs(a) + math.Abs(b)
	if s == 0 {
		return 0
	}
	return d / s
}

// The batched SoA kernels must reproduce the fused AoS kernels to
// roundoff and report identical interaction counts.
func TestEvalPPMatchesPPTile(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	tpos, _ := randBodies(rng, 13)
	spos, smass := randBodies(rng, 29)
	eps2 := 1e-4

	acc := make([]vec.V3, len(tpos))
	pot := make([]float64, len(tpos))
	nFused := PPTile(tpos, acc, pot, spos, smass, eps2)

	var tg Targets
	tg.Load(tpos, nil)
	var l InteractionList
	l.AddBodies(spos, smass)
	nBatch := EvalPP(&tg, &l, eps2)
	acc2 := make([]vec.V3, len(tpos))
	pot2 := make([]float64, len(tpos))
	tg.Store(acc2, pot2)

	if nFused != nBatch {
		t.Fatalf("counts differ: fused %d batched %d", nFused, nBatch)
	}
	for i := range acc {
		if relDiff(acc[i].X, acc2[i].X) > 1e-14 || relDiff(pot[i], pot2[i]) > 1e-14 {
			t.Fatalf("body %d: fused %v/%g batched %v/%g", i, acc[i], pot[i], acc2[i], pot2[i])
		}
	}
}

func TestEvalSelfMatchesPPSelf(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	pos, mass := randBodies(rng, 17)
	eps2 := 1e-4

	acc := make([]vec.V3, len(pos))
	pot := make([]float64, len(pos))
	nFused := PPSelf(pos, mass, acc, pot, eps2)

	var tg Targets
	tg.Load(pos, mass)
	nBatch := EvalSelf(&tg, eps2)
	acc2 := make([]vec.V3, len(pos))
	pot2 := make([]float64, len(pos))
	tg.Store(acc2, pot2)

	if nFused != nBatch {
		t.Fatalf("counts differ: fused %d batched %d", nFused, nBatch)
	}
	for i := range acc {
		if relDiff(acc[i].Y, acc2[i].Y) > 1e-14 || relDiff(pot[i], pot2[i]) > 1e-14 {
			t.Fatalf("body %d: fused %v/%g batched %v/%g", i, acc[i], pot[i], acc2[i], pot2[i])
		}
	}
}

func TestEvalM2PMatchesM2P(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	tpos, _ := randBodies(rng, 11)
	eps2 := 1e-6
	// Moments of two well-separated clumps.
	var cells []Multipole
	for c := 0; c < 3; c++ {
		pos, mass := randBodies(rng, 20)
		off := vec.V3{X: 10 * float64(c+1), Y: -5, Z: 3}
		for i := range pos {
			pos[i] = pos[i].Add(off)
		}
		cells = append(cells, FromBodies(pos, mass))
	}
	for _, quad := range []bool{false, true} {
		acc := make([]vec.V3, len(tpos))
		pot := make([]float64, len(tpos))
		var nFused uint64
		for c := range cells {
			nFused += M2P(tpos, acc, pot, &cells[c], quad, eps2)
		}

		var tg Targets
		tg.Load(tpos, nil)
		var l InteractionList
		for c := range cells {
			l.AddCell(&cells[c])
		}
		nBatch := EvalM2P(&tg, &l, quad, eps2)
		acc2 := make([]vec.V3, len(tpos))
		pot2 := make([]float64, len(tpos))
		tg.Store(acc2, pot2)

		if nFused != nBatch {
			t.Fatalf("quad=%v: counts differ: fused %d batched %d", quad, nFused, nBatch)
		}
		for i := range acc {
			if relDiff(acc[i].Z, acc2[i].Z) > 1e-13 || relDiff(pot[i], pot2[i]) > 1e-13 {
				t.Fatalf("quad=%v body %d: fused %v/%g batched %v/%g", quad, i, acc[i], pot[i], acc2[i], pot2[i])
			}
		}
	}
}

// A reused list and target block must reach a zero-allocation steady
// state: this is what makes per-worker pooling effective.
func TestListReuseAllocatesNothing(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	tpos, tmass := randBodies(rng, 16)
	spos, smass := randBodies(rng, 64)
	mp := FromBodies(spos, smass)
	var tg Targets
	var l InteractionList
	acc := make([]vec.V3, len(tpos))
	pot := make([]float64, len(tpos))
	round := func() {
		l.Reset()
		l.AddBodies(spos, smass)
		l.AddCell(&mp)
		l.Self = true
		tg.Load(tpos, tmass)
		EvalM2P(&tg, &l, true, 1e-6)
		EvalPP(&tg, &l, 1e-6)
		EvalSelf(&tg, 1e-6)
		tg.Store(acc, pot)
	}
	round() // warm-up: buffers reach their high-water mark
	if allocs := testing.AllocsPerRun(10, round); allocs != 0 {
		t.Fatalf("steady-state evaluation allocates %v times per round", allocs)
	}
}
