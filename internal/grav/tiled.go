// Tiled, fused interaction kernels: the production
// EvalPP/EvalSelf/EvalM2P. The reference kernels (soa.go) make three
// full-length passes over the source columns per target -- squared
// distances into a scratch column, one batched rsqrt.Sweep, then the
// force application -- so every interaction's intermediates take a
// store/load round trip through the scratch and the differences are
// computed twice. Here the whole pipeline is fused into a single pass
// over bounded source tiles:
//
//   - the Karp reciprocal-square-root body is inlined between the
//     distance and the force of each interaction using the fused seed
//     table (rsqrt.FusedTable): the interval index comes straight
//     from r2's bit pattern, the Chebyshev quadratic is fit in the
//     unfolded mantissa with the binade fold baked into the
//     coefficients, and the finer per-binade grid lets a SINGLE
//     Newton iteration reach full double precision -- a whole Newton
//     step (four multiply/adds), the mantissa fold, the float->int
//     conversion, and the clamp cheaper per interaction than
//     rsqrt.Sweep, on the port-saturated floating-point side where
//     the cycles actually go;
//   - dx/dy/dz/r2/rinv live only in registers: nothing is staged to
//     memory between passes, which removes five stores and four loads
//     per interaction compared to the three-sweep layout;
//   - the final scale by 2^(-e/2) is an integer add into the
//     exponent field (exact, identical to the multiply), keeping it
//     off the floating-point ports entirely;
//   - sources stream in tiles of tileSources, keeping the active
//     source columns L1-resident and the per-target accumulators in
//     locals while a target sweeps them;
//   - the self-interaction kernel walks each unordered pair once and
//     scatters the force to both bodies, halving the distance+rsqrt
//     work relative to the reference's full n^2 sweep;
//   - inner loops run over slices re-sliced to one shared length and
//     index the seed table through a masked index, so the compiler's
//     prove pass eliminates the in-loop bounds checks -- all of them
//     in the pair sweeps, all but one per unrolled iteration in the
//     tile sweep, whose step-2 induction the prover cannot follow.
//     The -d=ssa/check_bce guard in scripts/check.sh pins the hot
//     loops to exactly that set.
//
// The tiled kernels perform exactly the interactions the reference
// kernels do (counts are equal exactly), but not bit-identically: the
// one-Newton fused seed agrees with the two-Newton canonical Rsqrt to
// a couple of ulps (both are within ~1 ulp of exact), and per-target
// sums associate per tile. Forces therefore agree to roundoff --
// the equivalence tests pin |da|/max|a| and relative potential at
// 1e-13 -- which is what the physics defines; bit-identity is only
// ever guaranteed between runs of the SAME kernel set, which is why
// engines pin one Impl for a whole run.
package grav

import (
	"math"

	"repro/internal/rsqrt"
)

// tileSources bounds the fused tile length, keeping a tile's four
// source columns (2 KB) hot in L1 while a target sweeps them.
const tileSources = 64

// Impl selects a kernel implementation. Engines carry one Impl and
// pin every evaluation to it, so cross-engine equivalence tests
// compare runs that used the same kernel set throughout.
type Impl int

const (
	// ImplTiled is the production fused path.
	ImplTiled Impl = iota
	// ImplRef is the reference three-sweep path (soa.go), kept as the
	// ablation baseline.
	ImplRef
)

// EvalPP dispatches to the implementation's body-body kernel.
func (im Impl) EvalPP(t *Targets, l *InteractionList, eps2 float64) uint64 {
	if im == ImplRef {
		return EvalPPRef(t, l, eps2)
	}
	return EvalPP(t, l, eps2)
}

// EvalSelf dispatches to the implementation's self-interaction kernel.
func (im Impl) EvalSelf(t *Targets, eps2 float64) uint64 {
	if im == ImplRef {
		return EvalSelfRef(t, eps2)
	}
	return EvalSelf(t, eps2)
}

// EvalM2P dispatches to the implementation's multipole kernel.
func (im Impl) EvalM2P(t *Targets, l *InteractionList, quad bool, eps2 float64) uint64 {
	if im == ImplRef {
		return EvalM2PRef(t, l, quad, eps2)
	}
	return EvalM2P(t, l, quad, eps2)
}

func (im Impl) String() string {
	if im == ImplRef {
		return "ref"
	}
	return "tiled"
}

// ppTile is the fused pipeline for one target against one source
// tile: per source element, distance, inlined Karp rsqrt (fused seed,
// one Newton), and force accumulate, every intermediate in registers.
//
// Special r2 values (zero, subnormal, Inf, NaN) cannot be handled by
// an in-loop fallback call computing that element's rv: a CALL whose
// result feeds the loop-carried accumulators makes the compiler
// spill the accumulators, the differences, and the loop index to the
// stack on every iteration -- ten-plus memory operations per
// interaction for a branch that never executes. Instead a special
// abandons the tile's partial sums entirely and recomputes the whole
// tile through the out-of-line slow path: the accumulators are dead
// at the branch, so the hot loop carries no extra registers. A tile
// is at most tileSources elements and specials essentially never
// occur, so the redo is free in expectation.
// The loop is unrolled two sources deep: the two elements'
// seed+Newton dependence chains are independent and interleave in
// the out-of-order window, and the unroll halves the loop-control
// and constant-rematerialization overhead per interaction.
func ppTile(xi, yi, zi float64, sx, sy, sz, sm []float64, eps2 float64) (ax, ay, az, p float64) {
	seed := rsqrt.FusedTable()
	n := len(sx)
	// Re-slicing all four columns to the one shared length (sx's own
	// re-slice is a no-op) hands the prove pass the bounds it needs.
	sx, sy, sz, sm = sx[:n], sy[:n], sz[:n], sm[:n]
	// Each unrolled element feeds its own accumulator set (combined on
	// exit), so the loop-carried add chains are one ADDSD per
	// iteration instead of two back to back.
	var bx, by, bz, q float64
	// The pair loop steps by two, which the prove pass cannot follow
	// as an induction variable, so the first access each iteration
	// keeps its bounds check; hoisting n-1 into the loop bound lets
	// every later access be eliminated against that one check. One
	// compare-and-branch per two interactions is the floor this loop
	// shape admits (the check.sh BCE guard pins it there).
	for j, e := 0, n-1; j < e; j += 2 {
		dx0 := sx[j] - xi
		dy0 := sy[j] - yi
		dz0 := sz[j] - zi
		r20 := dx0*dx0 + dy0*dy0 + dz0*dz0 + eps2
		b0 := math.Float64bits(r20)
		dx1 := sx[j+1] - xi
		dy1 := sy[j+1] - yi
		dz1 := sz[j+1] - zi
		r21 := dx1*dx1 + dy1*dy1 + dz1*dz1 + eps2
		b1 := math.Float64bits(r21)
		if (b0>>52)-1 >= 0x7FE || (b1>>52)-1 >= 0x7FE {
			// zero, subnormal, Inf, NaN: abandon the garbage partial
			// sums and redo the tile. Returning here (rather than
			// setting a flag) keeps the hot loop free of both the
			// flag register and the end-of-loop check: at this point
			// the accumulators are dead, so the never-taken branch
			// costs one fused compare-and-jump per element and no
			// spills.
			return ppTileSlow(xi, yi, zi, sx, sy, sz, sm, eps2)
		}
		be0 := int(b0 >> 52)
		k0 := int(b0>>rsqrt.FusedShift) & (rsqrt.FusedTableSize - 1)
		tf0 := float64(b0 << (64 - rsqrt.FusedShift) >> (64 - rsqrt.FusedShift))
		cf0 := &seed[k0]
		w0 := cf0.C0 + tf0*(cf0.C1+tf0*cf0.C2)
		w0 = w0 * (1.5 - (cf0.D+cf0.E*tf0)*(w0*w0))
		rv0 := math.Float64frombits(math.Float64bits(w0) + uint64((1023+(be0&1^1)-be0)>>1)<<52)
		be1 := int(b1 >> 52)
		k1 := int(b1>>rsqrt.FusedShift) & (rsqrt.FusedTableSize - 1)
		tf1 := float64(b1 << (64 - rsqrt.FusedShift) >> (64 - rsqrt.FusedShift))
		cf1 := &seed[k1]
		w1 := cf1.C0 + tf1*(cf1.C1+tf1*cf1.C2)
		w1 = w1 * (1.5 - (cf1.D+cf1.E*tf1)*(w1*w1))
		rv1 := math.Float64frombits(math.Float64bits(w1) + uint64((1023+(be1&1^1)-be1)>>1)<<52)
		mrv0 := sm[j] * rv0
		rin30 := mrv0 * (rv0 * rv0)
		mrv1 := sm[j+1] * rv1
		rin31 := mrv1 * (rv1 * rv1)
		ax += rin30 * dx0
		ay += rin30 * dy0
		az += rin30 * dz0
		p -= mrv0
		bx += rin31 * dx1
		by += rin31 * dy1
		bz += rin31 * dz1
		q -= mrv1
	}
	ax, ay, az, p = ax+bx, ay+by, az+bz, p+q
	// The unrolled loop exits at the first even index with no pair
	// left, which is n with the low bit cleared: the odd tail element.
	for j := n &^ 1; j < n; j++ {
		dx := sx[j] - xi
		dy := sy[j] - yi
		dz := sz[j] - zi
		r2 := dx*dx + dy*dy + dz*dz + eps2
		b := math.Float64bits(r2)
		if (b>>52)-1 >= 0x7FE {
			return ppTileSlow(xi, yi, zi, sx, sy, sz, sm, eps2)
		}
		be := int(b >> 52)
		k := int(b>>rsqrt.FusedShift) & (rsqrt.FusedTableSize - 1)
		tf := float64(b << (64 - rsqrt.FusedShift) >> (64 - rsqrt.FusedShift))
		cf := &seed[k]
		w := cf.C0 + tf*(cf.C1+tf*cf.C2)
		w = w * (1.5 - (cf.D+cf.E*tf)*(w*w))
		rv := math.Float64frombits(math.Float64bits(w) + uint64((1023+(be&1^1)-be)>>1)<<52)
		mrv := sm[j] * rv
		rin3 := mrv * (rv * rv)
		ax += rin3 * dx
		ay += rin3 * dy
		az += rin3 * dz
		p -= mrv
	}
	return
}

// ppTileSlow is ppTile with the per-element scalar fallback: the redo
// path for tiles that contained a special r2. Semantics match the
// reference kernels' rsqrt.Sweep exactly (same Rsqrt fallback).
//
//go:noinline
func ppTileSlow(xi, yi, zi float64, sx, sy, sz, sm []float64, eps2 float64) (ax, ay, az, p float64) {
	n := len(sx)
	sy, sz, sm = sy[:n], sz[:n], sm[:n]
	for j := range sx {
		dx := sx[j] - xi
		dy := sy[j] - yi
		dz := sz[j] - zi
		r2 := dx*dx + dy*dy + dz*dz + eps2
		rv := rsqrt.RsqrtFused(r2)
		mrv := sm[j] * rv
		rin3 := mrv * (rv * rv)
		ax += rin3 * dx
		ay += rin3 * dy
		az += rin3 * dz
		p -= mrv
	}
	return
}

// EvalPP applies every body source of the list to every target: the
// fused, tiled form of PPTile. Returns the interaction count.
func EvalPP(t *Targets, l *InteractionList, eps2 float64) uint64 {
	ns := len(l.SM)
	nt := len(t.X)
	if ns == 0 || nt == 0 {
		return 0
	}
	for i := 0; i < nt; i++ {
		for s0 := 0; s0 < ns; s0 += tileSources {
			n := ns - s0
			if n > tileSources {
				n = tileSources
			}
			ax, ay, az, p := ppTile(t.X[i], t.Y[i], t.Z[i],
				l.SX[s0:s0+n], l.SY[s0:s0+n], l.SZ[s0:s0+n], l.SM[s0:s0+n], eps2)
			t.AX[i] += ax
			t.AY[i] += ay
			t.AZ[i] += az
			t.Pot[i] += p
		}
	}
	return uint64(nt) * uint64(ns)
}

// EvalSelf evaluates the group's interaction with itself (both
// directions of every pair, self-pairs skipped). Unlike the reference
// kernel, which sweeps all n sources for each of the n targets and
// masks the diagonal with an r2 sentinel, this walks each unordered
// pair (i,j), j < i, exactly once: one distance and one Karp rsqrt
// feed both directions, with +m_j*rinv3*d accumulated into target i's
// locals and -m_i*rinv3*d scattered into body j's output slots. The
// self pair simply never appears in the enumeration, so no sentinel
// value exists to leak into the pipeline -- a body exactly coincident
// with another (r2 = eps2, the smallest value the pipeline can see)
// goes through the ordinary fast path. Groups are leaf buckets (tens
// of bodies), so the columns stay L1-resident without tiling.
//
// Specials take the same abandon-and-redo route as ppTile, with one
// twist: the pair symmetry scatters into the output columns as it
// goes, so the partial garbage cannot simply be dropped on the floor.
// The accumulator columns are snapshotted first (4n copies, O(n)
// against the O(n^2) pair work), and a special restores them before
// the slow redo. Targets must have been loaded with masses. Returns
// the interaction count, still n*(n-1): the physical interactions are
// the same, each is just computed once instead of twice.
func EvalSelf(t *Targets, eps2 float64) uint64 {
	n := len(t.X)
	if n == 0 {
		return 0
	}
	t.snap = growF(t.snap, 4*n)
	copy(t.snap[0:n], t.AX)
	copy(t.snap[n:2*n], t.AY)
	copy(t.snap[2*n:3*n], t.AZ)
	copy(t.snap[3*n:4*n], t.Pot)
	if evalSelfFast(t, eps2) {
		return uint64(n) * uint64(n-1)
	}
	// A special r2 appeared: the fast path scattered garbage partial
	// sums into the accumulators. Restore and redo slowly.
	copy(t.AX, t.snap[0:n])
	copy(t.AY, t.snap[n:2*n])
	copy(t.AZ, t.snap[2*n:3*n])
	copy(t.Pot, t.snap[3*n:4*n])
	evalSelfSlow(t, eps2)
	return uint64(n) * uint64(n-1)
}

// evalSelfFast is the call-free symmetric pair sweep; it reports
// false as soon as any pair's r2 is special (zero, subnormal, Inf,
// NaN), leaving the accumulators polluted for EvalSelf to restore.
func evalSelfFast(t *Targets, eps2 float64) bool {
	n := len(t.X)
	x, y, z, ms := t.X[:n], t.Y[:n], t.Z[:n], t.M[:n]
	ax, ay, az, pot := t.AX[:n], t.AY[:n], t.AZ[:n], t.Pot[:n]
	seed := rsqrt.FusedTable()
	for i := 1; i < n; i++ {
		xi, yi, zi, mi := x[i], y[i], z[i], ms[i]
		var axi, ayi, azi, pi float64
		for j := 0; j < i; j++ {
			dx := x[j] - xi
			dy := y[j] - yi
			dz := z[j] - zi
			r2 := dx*dx + dy*dy + dz*dz + eps2
			b := math.Float64bits(r2)
			if (b>>52)-1 >= 0x7FE {
				return false
			}
			be := int(b >> 52)
			k := int(b>>rsqrt.FusedShift) & (rsqrt.FusedTableSize - 1)
			tf := float64(b << (64 - rsqrt.FusedShift) >> (64 - rsqrt.FusedShift))
			cf := &seed[k]
			w := cf.C0 + tf*(cf.C1+tf*cf.C2)
			w = w * (1.5 - (cf.D+cf.E*tf)*(w*w))
			rv := math.Float64frombits(math.Float64bits(w) + uint64((1023+(be&1^1)-be)>>1)<<52)
			rv2 := rv * rv
			mjrv := ms[j] * rv
			mirv := mi * rv
			fj := mjrv * rv2
			fi := mirv * rv2
			axi += fj * dx
			ayi += fj * dy
			azi += fj * dz
			pi -= mjrv
			ax[j] -= fi * dx
			ay[j] -= fi * dy
			az[j] -= fi * dz
			pot[j] -= mirv
		}
		ax[i] += axi
		ay[i] += ayi
		az[i] += azi
		pot[i] += pi
	}
	return true
}

// evalSelfSlow is the symmetric pair sweep with the per-pair scalar
// fallback: the redo path when the group contained a special r2.
//
//go:noinline
func evalSelfSlow(t *Targets, eps2 float64) {
	n := len(t.X)
	x, y, z, ms := t.X[:n], t.Y[:n], t.Z[:n], t.M[:n]
	ax, ay, az, pot := t.AX[:n], t.AY[:n], t.AZ[:n], t.Pot[:n]
	for i := 1; i < n; i++ {
		xi, yi, zi, mi := x[i], y[i], z[i], ms[i]
		var axi, ayi, azi, pi float64
		for j := 0; j < i; j++ {
			dx := x[j] - xi
			dy := y[j] - yi
			dz := z[j] - zi
			r2 := dx*dx + dy*dy + dz*dz + eps2
			rv := rsqrt.RsqrtFused(r2)
			rv2 := rv * rv
			mjrv := ms[j] * rv
			mirv := mi * rv
			fj := mjrv * rv2
			fi := mirv * rv2
			axi += fj * dx
			ayi += fj * dy
			azi += fj * dz
			pi -= mjrv
			ax[j] -= fi * dx
			ay[j] -= fi * dy
			az[j] -= fi * dz
			pot[j] -= mirv
		}
		ax[i] += axi
		ay[i] += ayi
		az[i] += azi
		pot[i] += pi
	}
}

// m2pQuadTile is the fused monopole+quadrupole pipeline for a single
// target against one cell tile: distance, inlined Karp rsqrt, and the
// quadrupole force in one pass. The difference d points from target
// to cell COM; the quadrupole terms are expressed in d directly
// (Q.d flips sign with d, d.Q.d does not), so the force matches the
// reference kernel's to roundoff without re-differencing.
func m2pQuadTile(xi, yi, zi float64, cm, cx, cy, cz, qxx, qyy, qzz, qxy, qxz, qyz []float64, eps2 float64) (ax, ay, az, p float64) {
	seed := rsqrt.FusedTable()
	n := len(cm)
	cx, cy, cz = cx[:n], cy[:n], cz[:n]
	qxx, qyy, qzz = qxx[:n], qyy[:n], qzz[:n]
	qxy, qxz, qyz = qxy[:n], qxz[:n], qyz[:n]
	for j := range cm {
		da := cx[j] - xi
		db := cy[j] - yi
		dc := cz[j] - zi
		r2 := da*da + db*db + dc*dc + eps2
		b := math.Float64bits(r2)
		if (b>>52)-1 >= 0x7FE {
			// Special r2: redo the tile slowly (see ppTile).
			return m2pQuadTileSlow(xi, yi, zi, cm, cx, cy, cz, qxx, qyy, qzz, qxy, qxz, qyz, eps2)
		}
		be := int(b >> 52)
		k := int(b>>rsqrt.FusedShift) & (rsqrt.FusedTableSize - 1)
		tf := float64(b << (64 - rsqrt.FusedShift) >> (64 - rsqrt.FusedShift))
		cf := &seed[k]
		w := cf.C0 + tf*(cf.C1+tf*cf.C2)
		w = w * (1.5 - (cf.D+cf.E*tf)*(w*w))
		rv := math.Float64frombits(math.Float64bits(w) + uint64((1023+(be&1^1)-be)>>1)<<52)
		rv2 := rv * rv
		rv3 := rv * rv2
		mono := cm[j] * rv3
		qdx := qxx[j]*da + qxy[j]*db + qxz[j]*dc
		qdy := qxy[j]*da + qyy[j]*db + qyz[j]*dc
		qdz := qxz[j]*da + qyz[j]*db + qzz[j]*dc
		dqd := da*qdx + db*qdy + dc*qdz
		rv5 := rv3 * rv2
		rv7 := rv5 * rv2
		cc := 2.5 * dqd * rv7
		ax += (mono+cc)*da - qdx*rv5
		ay += (mono+cc)*db - qdy*rv5
		az += (mono+cc)*dc - qdz*rv5
		p -= cm[j]*rv + 0.5*dqd*rv5
	}
	return
}

// m2pQuadTileSlow is the redo path for quad tiles that contained a
// special r2, mirroring ppTileSlow.
//
//go:noinline
func m2pQuadTileSlow(xi, yi, zi float64, cm, cx, cy, cz, qxx, qyy, qzz, qxy, qxz, qyz []float64, eps2 float64) (ax, ay, az, p float64) {
	n := len(cm)
	cx, cy, cz = cx[:n], cy[:n], cz[:n]
	qxx, qyy, qzz = qxx[:n], qyy[:n], qzz[:n]
	qxy, qxz, qyz = qxy[:n], qxz[:n], qyz[:n]
	for j := range cm {
		da := cx[j] - xi
		db := cy[j] - yi
		dc := cz[j] - zi
		r2 := da*da + db*db + dc*dc + eps2
		rv := rsqrt.RsqrtFused(r2)
		rv2 := rv * rv
		rv3 := rv * rv2
		mono := cm[j] * rv3
		qdx := qxx[j]*da + qxy[j]*db + qxz[j]*dc
		qdy := qxy[j]*da + qyy[j]*db + qyz[j]*dc
		qdz := qxz[j]*da + qyz[j]*db + qzz[j]*dc
		dqd := da*qdx + db*qdy + dc*qdz
		rv5 := rv3 * rv2
		rv7 := rv5 * rv2
		cc := 2.5 * dqd * rv7
		ax += (mono+cc)*da - qdx*rv5
		ay += (mono+cc)*db - qdy*rv5
		az += (mono+cc)*dc - qdz*rv5
		p -= cm[j]*rv + 0.5*dqd*rv5
	}
	return
}

// EvalM2P applies every multipole of the list's slab to every target:
// the fused form of M2P, with the quad branch hoisted all the way out
// of the tile loops. With the difference taken as COM - target the
// monopole interaction is the body-body interaction with the cell
// columns as sources, so the monopole path reuses ppTile.
// Returns the interaction count (one per target per cell).
func EvalM2P(t *Targets, l *InteractionList, quad bool, eps2 float64) uint64 {
	nc := len(l.CM)
	nt := len(t.X)
	if nc == 0 || nt == 0 {
		return 0
	}
	if !quad {
		for i := 0; i < nt; i++ {
			for c0 := 0; c0 < nc; c0 += tileSources {
				n := nc - c0
				if n > tileSources {
					n = tileSources
				}
				ax, ay, az, p := ppTile(t.X[i], t.Y[i], t.Z[i],
					l.CX[c0:c0+n], l.CY[c0:c0+n], l.CZ[c0:c0+n], l.CM[c0:c0+n], eps2)
				t.AX[i] += ax
				t.AY[i] += ay
				t.AZ[i] += az
				t.Pot[i] += p
			}
		}
		return uint64(nt) * uint64(nc)
	}
	for i := 0; i < nt; i++ {
		for c0 := 0; c0 < nc; c0 += tileSources {
			n := nc - c0
			if n > tileSources {
				n = tileSources
			}
			ax, ay, az, p := m2pQuadTile(t.X[i], t.Y[i], t.Z[i],
				l.CM[c0:c0+n], l.CX[c0:c0+n], l.CY[c0:c0+n], l.CZ[c0:c0+n],
				l.QXX[c0:c0+n], l.QYY[c0:c0+n], l.QZZ[c0:c0+n],
				l.QXY[c0:c0+n], l.QXZ[c0:c0+n], l.QYZ[c0:c0+n], eps2)
			t.AX[i] += ax
			t.AY[i] += ay
			t.AZ[i] += az
			t.Pot[i] += p
		}
	}
	return uint64(nt) * uint64(nc)
}
