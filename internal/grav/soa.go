// Batched, structure-of-arrays force evaluation: the "build an
// interaction list, then evaluate it in one dense sweep" split that
// the GRAPE-coupled treecodes use. A tree walk appends every accepted
// interaction into an InteractionList (flat SoA buffers), and the
// Eval* kernels then apply the whole list to a Targets block without
// touching the tree, the hash table, or any AoS accumulator in the
// inner loop.
//
// Two kernel sets evaluate a list. The production EvalPP/EvalSelf/
// EvalM2P (tiled.go) are tile-fused sweeps: sources stream in tiles
// of tileSources per target, with the distance, the inlined Karp
// rsqrt, and the force fused into one pass per tile so every
// intermediate stays in registers, and the self-interaction walks
// each unordered pair once. The EvalPPRef/EvalSelfRef/EvalM2PRef
// kernels in this file are the original three-sweep pipeline -- full-length
// distance column, one batched rsqrt.Sweep, then the accumulate pass
// recomputing the differences -- kept as the ablation baseline and
// the independent implementation the equivalence tests pin the tiled
// path against. Both report identical interaction counts (and hence
// identical 38-flop accounting in internal/diag) and agree to
// roundoff; engines choose a set with Impl.
package grav

import (
	"repro/internal/rsqrt"
	"repro/internal/vec"
)

// InteractionList is the flat interaction list one group accumulates
// during a tree walk: body sources as SoA position/mass columns, and
// accepted cell multipoles as an SoA slab (only the ten moments the
// kernels read; B2/Bmax are MAC-time data and stay out of the hot
// columns). The group's own leaf is not copied into the source
// columns; Self records that it was accepted, and EvalSelf evaluates
// it directly from the Targets block (keeping the self-pair skip, and
// hence the PP count, exact).
//
// All storage is reused across Reset calls, so a long-lived list
// allocates only until its buffers reach the high-water mark.
type InteractionList struct {
	// SX, SY, SZ, SM are the source bodies' coordinates and masses.
	SX, SY, SZ, SM []float64
	// CM, CX, CY, CZ are the accepted cells' masses and centers of
	// mass; QXX..QYZ their traceless quadrupoles.
	CM, CX, CY, CZ               []float64
	QXX, QYY, QZZ, QXY, QXZ, QYZ []float64
	// Self records that the group's own leaf interacts with itself.
	Self bool
}

// Reset empties the list, keeping capacity.
func (l *InteractionList) Reset() {
	l.SX, l.SY, l.SZ, l.SM = l.SX[:0], l.SY[:0], l.SZ[:0], l.SM[:0]
	l.CM, l.CX, l.CY, l.CZ = l.CM[:0], l.CX[:0], l.CY[:0], l.CZ[:0]
	l.QXX, l.QYY, l.QZZ = l.QXX[:0], l.QYY[:0], l.QZZ[:0]
	l.QXY, l.QXZ, l.QYZ = l.QXY[:0], l.QXZ[:0], l.QYZ[:0]
	l.Self = false
}

// AddBodies appends a leaf's bodies to the source columns.
func (l *InteractionList) AddBodies(pos []vec.V3, mass []float64) {
	for i := range pos {
		l.SX = append(l.SX, pos[i].X)
		l.SY = append(l.SY, pos[i].Y)
		l.SZ = append(l.SZ, pos[i].Z)
	}
	l.SM = append(l.SM, mass...)
}

// AddCell appends an accepted cell multipole to the slab.
func (l *InteractionList) AddCell(mp *Multipole) {
	l.CM = append(l.CM, mp.M)
	l.CX = append(l.CX, mp.COM.X)
	l.CY = append(l.CY, mp.COM.Y)
	l.CZ = append(l.CZ, mp.COM.Z)
	l.QXX = append(l.QXX, mp.Q.XX)
	l.QYY = append(l.QYY, mp.Q.YY)
	l.QZZ = append(l.QZZ, mp.Q.ZZ)
	l.QXY = append(l.QXY, mp.Q.XY)
	l.QXZ = append(l.QXZ, mp.Q.XZ)
	l.QYZ = append(l.QYZ, mp.Q.YZ)
}

// NSources returns the number of body sources in the list.
func (l *InteractionList) NSources() int { return len(l.SM) }

// Caps returns the list's storage capacities in source rows and slab
// rows. With Grow it lets a worker pool level all its lists to the
// fleet-wide high-water mark, so nondeterministic work assignment
// cannot ask any list for more than it has already got.
func (l *InteractionList) Caps() (nbodies, ncells int) {
	return cap(l.SM), cap(l.CM)
}

// Grow raises the list's storage capacities to at least nbodies
// source rows and ncells slab rows, preserving contents.
func (l *InteractionList) Grow(nbodies, ncells int) {
	growCap(&l.SX, nbodies)
	growCap(&l.SY, nbodies)
	growCap(&l.SZ, nbodies)
	growCap(&l.SM, nbodies)
	growCap(&l.CM, ncells)
	growCap(&l.CX, ncells)
	growCap(&l.CY, ncells)
	growCap(&l.CZ, ncells)
	growCap(&l.QXX, ncells)
	growCap(&l.QYY, ncells)
	growCap(&l.QZZ, ncells)
	growCap(&l.QXY, ncells)
	growCap(&l.QXZ, ncells)
	growCap(&l.QYZ, ncells)
}

// growCap raises a slice's capacity to at least n, keeping contents.
func growCap(s *[]float64, n int) {
	if cap(*s) < n {
		grown := make([]float64, len(*s), n)
		copy(grown, *s)
		*s = grown
	}
}

// NCells returns the number of cell multipoles in the list.
func (l *InteractionList) NCells() int { return len(l.CM) }

// Cell reconstructs slab entry i as a Multipole (B2/Bmax, which the
// slab does not carry, are zero). For tests and replay tools.
func (l *InteractionList) Cell(i int) Multipole {
	return Multipole{
		M:   l.CM[i],
		COM: vec.V3{X: l.CX[i], Y: l.CY[i], Z: l.CZ[i]},
		Q: vec.Sym3{
			XX: l.QXX[i], YY: l.QYY[i], ZZ: l.QZZ[i],
			XY: l.QXY[i], XZ: l.QXZ[i], YZ: l.QYZ[i],
		},
	}
}

// Targets is the reusable SoA block for one group of targets:
// gathered positions and masses, the acceleration/potential
// accumulators the batched kernels write, and the two scratch columns
// of the distance/rsqrt/apply pipeline. Load/Store convert to and
// from the AoS representation the rest of the code uses; between them
// the kernels never touch []vec.V3.
type Targets struct {
	X, Y, Z, M      []float64
	AX, AY, AZ, Pot []float64
	// r2, ri are the full-length scratch columns of the reference
	// three-sweep pipeline; the fused tiled kernels keep their
	// per-interaction intermediates in registers and need no scratch.
	r2, ri []float64
	// snap backs up the accumulator columns across EvalSelf's
	// symmetric fast path, which scatters as it goes and must be able
	// to unwind if a special r2 forces the slow redo.
	snap []float64
}

// growF returns s resized to n, reusing capacity.
func growF(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

// Load gathers a group into the SoA block and zeroes the
// accumulators. mass may be nil when no self-interaction will be
// evaluated.
func (t *Targets) Load(pos []vec.V3, mass []float64) {
	n := len(pos)
	t.X, t.Y, t.Z = growF(t.X, n), growF(t.Y, n), growF(t.Z, n)
	t.AX, t.AY, t.AZ, t.Pot = growF(t.AX, n), growF(t.AY, n), growF(t.AZ, n), growF(t.Pot, n)
	for i := range pos {
		t.X[i], t.Y[i], t.Z[i] = pos[i].X, pos[i].Y, pos[i].Z
		t.AX[i], t.AY[i], t.AZ[i], t.Pot[i] = 0, 0, 0, 0
	}
	if mass != nil {
		t.M = growF(t.M, n)
		copy(t.M, mass)
	} else {
		t.M = t.M[:0]
	}
}

// Store scatters the accumulators back, overwriting acc and pot.
func (t *Targets) Store(acc []vec.V3, pot []float64) {
	for i := range acc {
		acc[i] = vec.V3{X: t.AX[i], Y: t.AY[i], Z: t.AZ[i]}
		pot[i] = t.Pot[i]
	}
}

// Caps returns the block's capacities in targets and scratch rows
// (see InteractionList.Caps for why pools want these).
func (t *Targets) Caps() (ntargets, nscratch int) {
	return cap(t.X), cap(t.r2)
}

// Grow raises the block's capacities to at least ntargets rows and
// nscratch pipeline rows.
func (t *Targets) Grow(ntargets, nscratch int) {
	growCap(&t.X, ntargets)
	growCap(&t.Y, ntargets)
	growCap(&t.Z, ntargets)
	growCap(&t.M, ntargets)
	growCap(&t.AX, ntargets)
	growCap(&t.AY, ntargets)
	growCap(&t.AZ, ntargets)
	growCap(&t.Pot, ntargets)
	growCap(&t.r2, nscratch)
	growCap(&t.ri, nscratch)
}

// EvalPPRef applies every body source of the list to every target:
// the batched form of PPTile, in the original three-sweep layout.
// Target-major: the target position and its four accumulators stay in
// registers across the whole source sweep, and the sources stream
// from four contiguous columns. The full-length r2/ri scratch and the
// recomputed differences are what the tiled EvalPP eliminates; this
// version is the ablation baseline. Returns the interaction count.
func EvalPPRef(t *Targets, l *InteractionList, eps2 float64) uint64 {
	ns := len(l.SM)
	nt := len(t.X)
	if ns == 0 || nt == 0 {
		return 0
	}
	t.r2, t.ri = growF(t.r2, ns), growF(t.ri, ns)
	sx, sy, sz, sm := l.SX[:ns], l.SY[:ns], l.SZ[:ns], l.SM
	for i := 0; i < nt; i++ {
		xi, yi, zi := t.X[i], t.Y[i], t.Z[i]
		r2 := t.r2
		for j := range sm {
			dx := sx[j] - xi
			dy := sy[j] - yi
			dz := sz[j] - zi
			r2[j] = dx*dx + dy*dy + dz*dz + eps2
		}
		rsqrt.Sweep(t.ri, r2)
		ax, ay, az := t.AX[i], t.AY[i], t.AZ[i]
		p := t.Pot[i]
		ri := t.ri
		for j := range sm {
			dx := sx[j] - xi
			dy := sy[j] - yi
			dz := sz[j] - zi
			rinv := ri[j]
			rinv3 := sm[j] * rinv * rinv * rinv
			ax += rinv3 * dx
			ay += rinv3 * dy
			az += rinv3 * dz
			p -= sm[j] * rinv
		}
		t.AX[i], t.AY[i], t.AZ[i] = ax, ay, az
		t.Pot[i] = p
	}
	return uint64(nt) * uint64(ns)
}

// EvalSelfRef evaluates the group's interaction with itself (both
// directions of every pair, self-pairs skipped): the batched form of
// PPSelf, reading sources from the target block's own columns, in the
// original three-sweep layout. The r2[i] = 1 sentinel below keeps the
// skipped self slot off rsqrt.Sweep's zero fallback path; the tiled
// EvalSelf instead splits the self tile and never forms the slot at
// all. Targets must have been loaded with masses. Returns the
// interaction count.
func EvalSelfRef(t *Targets, eps2 float64) uint64 {
	n := len(t.X)
	if n == 0 {
		return 0
	}
	t.r2, t.ri = growF(t.r2, n), growF(t.ri, n)
	for i := 0; i < n; i++ {
		xi, yi, zi := t.X[i], t.Y[i], t.Z[i]
		r2 := t.r2
		for j := 0; j < n; j++ {
			dx := t.X[j] - xi
			dy := t.Y[j] - yi
			dz := t.Z[j] - zi
			r2[j] = dx*dx + dy*dy + dz*dz + eps2
		}
		r2[i] = 1 // keep the skipped self slot off the fallback path
		rsqrt.Sweep(t.ri, r2)
		ax, ay, az := t.AX[i], t.AY[i], t.AZ[i]
		p := t.Pot[i]
		for j := 0; j < n; j++ {
			if j == i {
				continue
			}
			dx := t.X[j] - xi
			dy := t.Y[j] - yi
			dz := t.Z[j] - zi
			rinv := t.ri[j]
			rinv3 := t.M[j] * rinv * rinv * rinv
			ax += rinv3 * dx
			ay += rinv3 * dy
			az += rinv3 * dz
			p -= t.M[j] * rinv
		}
		t.AX[i], t.AY[i], t.AZ[i] = ax, ay, az
		t.Pot[i] = p
	}
	return uint64(n) * uint64(n-1)
}

// EvalM2PRef applies every multipole of the list's slab to every
// target: the batched form of M2P in the original three-sweep layout,
// with the quad branch hoisted out of the sweeps. Returns the
// interaction count (one per target per cell).
func EvalM2PRef(t *Targets, l *InteractionList, quad bool, eps2 float64) uint64 {
	nc := len(l.CM)
	nt := len(t.X)
	if nc == 0 || nt == 0 {
		return 0
	}
	t.r2, t.ri = growF(t.r2, nc), growF(t.ri, nc)
	cm, cx, cy, cz := l.CM, l.CX[:nc], l.CY[:nc], l.CZ[:nc]
	for i := 0; i < nt; i++ {
		xi, yi, zi := t.X[i], t.Y[i], t.Z[i]
		r2 := t.r2
		for c := range cm {
			dx := xi - cx[c]
			dy := yi - cy[c]
			dz := zi - cz[c]
			r2[c] = dx*dx + dy*dy + dz*dz + eps2
		}
		rsqrt.Sweep(t.ri, r2)
		ax, ay, az := t.AX[i], t.AY[i], t.AZ[i]
		p := t.Pot[i]
		ri := t.ri
		if quad {
			qxx, qyy, qzz := l.QXX[:nc], l.QYY[:nc], l.QZZ[:nc]
			qxy, qxz, qyz := l.QXY[:nc], l.QXZ[:nc], l.QYZ[:nc]
			for c := range cm {
				dx := xi - cx[c]
				dy := yi - cy[c]
				dz := zi - cz[c]
				rinv := ri[c]
				rinv2 := rinv * rinv
				rinv3 := rinv * rinv2
				mono := cm[c] * rinv3
				qdx := qxx[c]*dx + qxy[c]*dy + qxz[c]*dz
				qdy := qxy[c]*dx + qyy[c]*dy + qyz[c]*dz
				qdz := qxz[c]*dx + qyz[c]*dy + qzz[c]*dz
				dqd := dx*qdx + dy*qdy + dz*qdz
				rinv5 := rinv3 * rinv2
				rinv7 := rinv5 * rinv2
				cc := 2.5 * dqd * rinv7
				ax += qdx*rinv5 - cc*dx - mono*dx
				ay += qdy*rinv5 - cc*dy - mono*dy
				az += qdz*rinv5 - cc*dz - mono*dz
				p -= cm[c]*rinv + 0.5*dqd*rinv5
			}
		} else {
			for c := range cm {
				dx := xi - cx[c]
				dy := yi - cy[c]
				dz := zi - cz[c]
				rinv := ri[c]
				mono := cm[c] * rinv * rinv * rinv
				ax -= mono * dx
				ay -= mono * dy
				az -= mono * dz
				p -= cm[c] * rinv
			}
		}
		t.AX[i], t.AY[i], t.AZ[i] = ax, ay, az
		t.Pot[i] = p
	}
	return uint64(nt) * uint64(nc)
}
