// Package grav implements the gravitational kernels of the treecode:
// the softened body-body interaction built on the Karp reciprocal
// square root (the paper's 38-flop interaction), the body-cell
// multipole interaction through quadrupole order, multipole moment
// construction and translation, and the two multipole acceptance
// criteria (Barnes-Hut opening angle and the Salmon-Warren absolute
// error bound from "Skeletons from the treecode closet").
//
// Units: G = 1 throughout. The Plummer softening eps2 enters as
// r^2 -> r^2 + eps^2 in the body-body kernel.
package grav

import (
	"math"

	"repro/internal/rsqrt"
	"repro/internal/vec"
)

// Multipole is the moment set carried by every tree cell: total mass,
// center of mass, traceless quadrupole about the center of mass, and
// the two scalars the Salmon-Warren error bound needs.
type Multipole struct {
	M   float64
	COM vec.V3
	// Q is the traceless quadrupole Q_ij = sum m (3 y_i y_j - y^2 d_ij)
	// with y measured from COM.
	Q vec.Sym3
	// B2 is sum m |y|^2, the second absolute moment.
	B2 float64
	// Bmax bounds the distance from COM to the farthest body.
	Bmax float64
}

// FromBodies computes the exact moments of a body set.
func FromBodies(pos []vec.V3, mass []float64) Multipole {
	var mp Multipole
	for i := range pos {
		mp.M += mass[i]
		mp.COM = mp.COM.Add(pos[i].Scale(mass[i]))
	}
	if mp.M > 0 {
		mp.COM = mp.COM.Scale(1 / mp.M)
	}
	for i := range pos {
		y := pos[i].Sub(mp.COM)
		y2 := y.Norm2()
		q := vec.Outer(y, 3*mass[i])
		q.XX -= mass[i] * y2
		q.YY -= mass[i] * y2
		q.ZZ -= mass[i] * y2
		mp.Q = mp.Q.Add(q)
		mp.B2 += mass[i] * y2
		if d := math.Sqrt(y2); d > mp.Bmax {
			mp.Bmax = d
		}
	}
	return mp
}

// Combine merges child moments into a parent via the parallel-axis
// translations. Bmax is an upper bound (shift + child Bmax), which is
// what the error-bound MAC needs.
func Combine(children []Multipole) Multipole {
	var mp Multipole
	for i := range children {
		mp.M += children[i].M
		mp.COM = mp.COM.Add(children[i].COM.Scale(children[i].M))
	}
	if mp.M > 0 {
		mp.COM = mp.COM.Scale(1 / mp.M)
	}
	for i := range children {
		c := &children[i]
		s := c.COM.Sub(mp.COM)
		s2 := s.Norm2()
		q := vec.Outer(s, 3*c.M)
		q.XX -= c.M * s2
		q.YY -= c.M * s2
		q.ZZ -= c.M * s2
		mp.Q = mp.Q.Add(c.Q).Add(q)
		mp.B2 += c.B2 + c.M*s2
		if b := math.Sqrt(s2) + c.Bmax; b > mp.Bmax {
			mp.Bmax = b
		}
	}
	return mp
}

// PPTile accumulates the force and potential on targets from a
// disjoint set of source bodies: the paper's 38-flop interaction. It
// returns the number of interactions computed.
func PPTile(tpos []vec.V3, acc []vec.V3, pot []float64, spos []vec.V3, smass []float64, eps2 float64) uint64 {
	for i := range tpos {
		ax, ay, az := acc[i].X, acc[i].Y, acc[i].Z
		p := pot[i]
		xi, yi, zi := tpos[i].X, tpos[i].Y, tpos[i].Z
		for j := range spos {
			dx := spos[j].X - xi
			dy := spos[j].Y - yi
			dz := spos[j].Z - zi
			r2 := dx*dx + dy*dy + dz*dz + eps2
			rinv := rsqrt.Rsqrt(r2)
			rinv3 := smass[j] * rinv * rinv * rinv
			ax += rinv3 * dx
			ay += rinv3 * dy
			az += rinv3 * dz
			p -= smass[j] * rinv
		}
		acc[i] = vec.V3{X: ax, Y: ay, Z: az}
		pot[i] = p
	}
	return uint64(len(tpos)) * uint64(len(spos))
}

// PPSelf accumulates mutual forces within one body set, skipping
// self-pairs. Both directions of each pair are computed explicitly:
// the paper found Newton's-third-law saving not worth the extra
// memory write. Returns the interaction count.
func PPSelf(pos []vec.V3, mass []float64, acc []vec.V3, pot []float64, eps2 float64) uint64 {
	n := len(pos)
	for i := 0; i < n; i++ {
		ax, ay, az := acc[i].X, acc[i].Y, acc[i].Z
		p := pot[i]
		xi, yi, zi := pos[i].X, pos[i].Y, pos[i].Z
		for j := 0; j < n; j++ {
			if j == i {
				continue
			}
			dx := pos[j].X - xi
			dy := pos[j].Y - yi
			dz := pos[j].Z - zi
			r2 := dx*dx + dy*dy + dz*dz + eps2
			rinv := rsqrt.Rsqrt(r2)
			rinv3 := mass[j] * rinv * rinv * rinv
			ax += rinv3 * dx
			ay += rinv3 * dy
			az += rinv3 * dz
			p -= mass[j] * rinv
		}
		acc[i] = vec.V3{X: ax, Y: ay, Z: az}
		pot[i] = p
	}
	if n == 0 {
		return 0
	}
	return uint64(n) * uint64(n-1)
}

// M2P accumulates the multipole field of one cell on the targets. If
// quad is true the traceless quadrupole term is included:
//
//	phi  = -M/r - (d.Q.d)/(2 r^5)
//	a    = -M d/r^3 + Q d/r^5 - (5/2)(d.Q.d) d/r^7
//
// with d = x_target - COM and r^2 Plummer-softened by eps2 throughout
// (so a single-body cell reproduces the body-body kernel exactly --
// without this, a point-mass cell accepted at distances comparable to
// the softening length would disagree with the softened direct sum).
// Returns the interaction count (one per target body).
func M2P(tpos []vec.V3, acc []vec.V3, pot []float64, mp *Multipole, quad bool, eps2 float64) uint64 {
	m := mp.M
	cx, cy, cz := mp.COM.X, mp.COM.Y, mp.COM.Z
	for i := range tpos {
		dx := tpos[i].X - cx
		dy := tpos[i].Y - cy
		dz := tpos[i].Z - cz
		r2 := dx*dx + dy*dy + dz*dz + eps2
		rinv := rsqrt.Rsqrt(r2)
		rinv2 := rinv * rinv
		rinv3 := rinv * rinv2
		mono := m * rinv3
		ax := -mono * dx
		ay := -mono * dy
		az := -mono * dz
		p := -m * rinv
		if quad {
			q := &mp.Q
			qdx := q.XX*dx + q.XY*dy + q.XZ*dz
			qdy := q.XY*dx + q.YY*dy + q.YZ*dz
			qdz := q.XZ*dx + q.YZ*dy + q.ZZ*dz
			dqd := dx*qdx + dy*qdy + dz*qdz
			rinv5 := rinv3 * rinv2
			rinv7 := rinv5 * rinv2
			c := 2.5 * dqd * rinv7
			ax += qdx*rinv5 - c*dx
			ay += qdy*rinv5 - c*dy
			az += qdz*rinv5 - c*dz
			p -= 0.5 * dqd * rinv5
		}
		acc[i] = acc[i].Add(vec.V3{X: ax, Y: ay, Z: az})
		pot[i] += p
	}
	return uint64(len(tpos))
}

// AccelAt returns the softened acceleration and potential at point x
// due to all bodies: the O(N^2) reference used by accuracy tests.
func AccelAt(x vec.V3, pos []vec.V3, mass []float64, eps2 float64) (vec.V3, float64) {
	var acc vec.V3
	pot := 0.0
	for j := range pos {
		d := pos[j].Sub(x)
		r2 := d.Norm2() + eps2
		if r2 == 0 {
			continue
		}
		rinv := 1 / math.Sqrt(r2)
		acc = acc.Add(d.Scale(mass[j] * rinv * rinv * rinv))
		pot -= mass[j] * rinv
	}
	return acc, pot
}

// MAC selects the multipole acceptance criterion.
type MAC int

const (
	// MACBarnesHut opens a cell when size/d > theta, with the
	// center-of-mass offset folded in for safety.
	MACBarnesHut MAC = iota
	// MACSalmonWarren opens a cell when the analytic worst-case
	// acceleration error of its truncated expansion exceeds AccelTol.
	MACSalmonWarren
)

// MACParams configures acceptance.
type MACParams struct {
	Kind MAC
	// Theta is the Barnes-Hut opening angle (typical 0.5-1.0).
	Theta float64
	// AccelTol is the Salmon-Warren absolute acceleration error bound
	// per interaction.
	AccelTol float64
	// Quad selects monopole+quadrupole expansions (true) or monopole
	// only (false); it changes both the kernel and the error bound.
	Quad bool
}

// DefaultMAC matches the paper's production setting: quadrupole
// expansions with an absolute error bound giving ~1e-3 RMS force
// accuracy for a system with total mass and size of order unity.
// AccelTol is an absolute acceleration error, so callers should scale
// it to their problem (the simulation drivers set it to a fraction of
// the RMS acceleration of the previous step, as the production code
// did).
func DefaultMAC() MACParams {
	return MACParams{Kind: MACSalmonWarren, AccelTol: 1e-3, Quad: true, Theta: 0.7}
}

// RCrit returns the critical radius of a cell: the cell's multipole
// may be used for any target farther than RCrit from the COM. size is
// the cell edge length, off the |COM - geometric center| offset.
//
// Barnes-Hut: rcrit = size/theta + off.
//
// Salmon-Warren: solve the truncation error bound for d. With
// B_n = sum m|y|^n and b = Bmax, the bound for an expansion carried
// through order p (dipole vanishes about the COM) is
//
//	da <= (n+1) B_n / (d-b)^(n+2),  n = p+1
//
// monopole (p=1 effective): da <= 3 B2 / (d-b)^4
// quadrupole (p=2, B3 <= b*B2): da <= 4 b B2 / (d-b)^5
func RCrit(mp *Multipole, size, off float64, p MACParams) float64 {
	switch p.Kind {
	case MACBarnesHut:
		return size/p.Theta + off
	case MACSalmonWarren:
		if mp.B2 == 0 {
			return 0 // single body or point mass: expansion exact
		}
		var d float64
		if p.Quad {
			d = math.Pow(4*mp.Bmax*mp.B2/p.AccelTol, 1.0/5.0)
		} else {
			d = math.Pow(3*mp.B2/p.AccelTol, 0.25)
		}
		return mp.Bmax + d
	default:
		panic("grav: unknown MAC kind")
	}
}
