// External-package test (grav_test): internal/direct imports grav, so
// comparing the multipole kernels against direct summation has to live
// outside package grav.
package grav_test

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/direct"
	"repro/internal/grav"
	"repro/internal/vec"
)

// mirrorClump returns a source clump of 2n bodies symmetric under
// point reflection through ctr (each body paired with its mirror image
// at equal mass), spread over a cube of half-width s. The symmetry
// kills every odd multipole moment, so with quadrupole terms included
// the first surviving truncation error is the hexadecapole: the
// relative force error falls as O((s/d)^4) with distance d.
func mirrorClump(rng *rand.Rand, n int, ctr vec.V3, s float64) ([]vec.V3, []float64) {
	pos := make([]vec.V3, 0, 2*n)
	mass := make([]float64, 0, 2*n)
	for i := 0; i < n; i++ {
		d := vec.V3{
			X: s * (2*rng.Float64() - 1),
			Y: s * (2*rng.Float64() - 1),
			Z: s * (2*rng.Float64() - 1),
		}
		m := rng.Float64() + 0.5
		pos = append(pos, ctr.Add(d), ctr.Sub(d))
		mass = append(mass, m, m)
	}
	return pos, mass
}

// quadErrAt returns the maximum relative acceleration error of the
// quadrupole M2P approximation for targets at distance d from the
// clump, exact forces computed by direct summation over a combined
// system with massless targets (so targets feel the clump and perturb
// nothing).
func quadErrAt(t *testing.T, im grav.Impl, spos []vec.V3, smass []float64, d float64) float64 {
	t.Helper()
	mp := grav.FromBodies(spos, smass)
	// A few targets on different rays at the same distance.
	dirs := []vec.V3{
		{X: 1}, {Y: 1}, {Z: -1},
		{X: 0.577350269189626, Y: 0.577350269189626, Z: 0.577350269189626},
	}
	tpos := make([]vec.V3, len(dirs))
	for i, u := range dirs {
		tpos[i] = mp.COM.Add(u.Scale(d))
	}

	// Exact: direct summation over clump + massless targets.
	all := append(append([]vec.V3(nil), spos...), tpos...)
	allMass := append(append([]float64(nil), smass...), make([]float64, len(tpos))...)
	accAll := make([]vec.V3, len(all))
	potAll := make([]float64, len(all))
	direct.Serial(all, allMass, accAll, potAll, 0)
	exact := accAll[len(spos):]

	// Approximate: one multipole through the quadrupole kernel.
	var tg grav.Targets
	tg.Load(tpos, nil)
	var l grav.InteractionList
	l.AddCell(&mp)
	im.EvalM2P(&tg, &l, true, 0)
	acc := make([]vec.V3, len(tpos))
	pot := make([]float64, len(tpos))
	tg.Store(acc, pot)

	var worst float64
	for i := range acc {
		e := acc[i].Sub(exact[i]).Norm() / exact[i].Norm()
		if e > worst {
			worst = e
		}
	}
	return worst
}

// TestEvalM2PQuadErrorFalloff pins the quadrupole kernel's accuracy
// against direct summation: for a reflection-symmetric clump the
// relative error must fall by ~16x per distance doubling (the
// O((s/d)^4) hexadecapole truncation); we require at least 6x per
// doubling so roundoff and the clump's particular moments have slack,
// and that the error is small in absolute terms once well separated.
func TestEvalM2PQuadErrorFalloff(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	spos, smass := mirrorClump(rng, 40, vec.V3{X: 0.3, Y: -0.2, Z: 0.1}, 1.0)

	for _, im := range []grav.Impl{grav.ImplTiled, grav.ImplRef} {
		dists := []float64{4, 8, 16, 32}
		errs := make([]float64, len(dists))
		for i, d := range dists {
			errs[i] = quadErrAt(t, im, spos, smass, d)
		}
		for i := 1; i < len(errs); i++ {
			if errs[i] <= 0 {
				// Below roundoff already; nothing further to pin.
				continue
			}
			ratio := errs[i-1] / errs[i]
			if ratio < 6 {
				t.Errorf("%v: error %g at d=%g -> %g at d=%g, falloff %.1fx < 6x per doubling",
					im, errs[i-1], dists[i-1], errs[i], dists[i], ratio)
			}
		}
		if last := errs[len(errs)-1]; last > 1e-5 {
			t.Errorf("%v: relative error %g at d=%g; quadrupole term looks wrong",
				im, last, dists[len(dists)-1])
		}
		if math.IsNaN(errs[0]) {
			t.Errorf("%v: NaN error at d=%g", im, dists[0])
		}
	}
}
