package grav

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/vec"
)

func randomBodies(n int, seed int64, center vec.V3, scale float64) ([]vec.V3, []float64) {
	rng := rand.New(rand.NewSource(seed))
	pos := make([]vec.V3, n)
	mass := make([]float64, n)
	for i := range pos {
		pos[i] = center.Add(vec.V3{
			X: (rng.Float64() - 0.5) * scale,
			Y: (rng.Float64() - 0.5) * scale,
			Z: (rng.Float64() - 0.5) * scale,
		})
		mass[i] = rng.Float64() + 0.5
	}
	return pos, mass
}

func TestPPTileMatchesReference(t *testing.T) {
	tp, _ := randomBodies(10, 1, vec.V3{}, 1)
	sp, sm := randomBodies(20, 2, vec.V3{X: 3}, 1)
	acc := make([]vec.V3, len(tp))
	pot := make([]float64, len(tp))
	const eps2 = 1e-4
	n := PPTile(tp, acc, pot, sp, sm, eps2)
	if n != 200 {
		t.Fatalf("interaction count = %d", n)
	}
	for i := range tp {
		want, wantPot := AccelAt(tp[i], sp, sm, eps2)
		if d := acc[i].Sub(want).Norm(); d > 1e-12*want.Norm() {
			t.Fatalf("body %d acc mismatch: %v vs %v", i, acc[i], want)
		}
		if math.Abs(pot[i]-wantPot) > 1e-12*math.Abs(wantPot) {
			t.Fatalf("body %d pot mismatch: %v vs %v", i, pot[i], wantPot)
		}
	}
}

func TestPPSelfSkipsSelfAndMatchesReference(t *testing.T) {
	pos, mass := randomBodies(15, 3, vec.V3{}, 1)
	acc := make([]vec.V3, len(pos))
	pot := make([]float64, len(pos))
	const eps2 = 1e-3
	n := PPSelf(pos, mass, acc, pot, eps2)
	if n != 15*14 {
		t.Fatalf("interaction count = %d", n)
	}
	for i := range pos {
		// Reference without body i.
		var sp []vec.V3
		var sm []float64
		for j := range pos {
			if j != i {
				sp = append(sp, pos[j])
				sm = append(sm, mass[j])
			}
		}
		want, wantPot := AccelAt(pos[i], sp, sm, eps2)
		if d := acc[i].Sub(want).Norm(); d > 1e-11*(want.Norm()+1) {
			t.Fatalf("body %d acc mismatch: %v vs %v", i, acc[i], want)
		}
		if math.Abs(pot[i]-wantPot) > 1e-11*(math.Abs(wantPot)+1) {
			t.Fatalf("body %d pot", i)
		}
	}
	if PPSelf(nil, nil, nil, nil, eps2) != 0 {
		t.Fatal("empty self count")
	}
}

func TestMomentsFromBodies(t *testing.T) {
	pos := []vec.V3{{X: 1}, {X: -1}}
	mass := []float64{1, 1}
	mp := FromBodies(pos, mass)
	if mp.M != 2 {
		t.Fatalf("M = %v", mp.M)
	}
	if mp.COM.Norm() > 1e-15 {
		t.Fatalf("COM = %v", mp.COM)
	}
	// Q for dumbbell along x: sum m(3x^2 - r^2) = 2*(3-1) = 4 on XX,
	// -2 on YY and ZZ.
	if math.Abs(mp.Q.XX-4) > 1e-14 || math.Abs(mp.Q.YY+2) > 1e-14 || math.Abs(mp.Q.ZZ+2) > 1e-14 {
		t.Fatalf("Q = %+v", mp.Q)
	}
	if math.Abs(mp.Q.Trace()) > 1e-14 {
		t.Fatalf("Q not traceless: %v", mp.Q.Trace())
	}
	if mp.B2 != 2 || mp.Bmax != 1 {
		t.Fatalf("B2 = %v, Bmax = %v", mp.B2, mp.Bmax)
	}
}

func TestCombineMatchesDirect(t *testing.T) {
	posA, massA := randomBodies(30, 4, vec.V3{X: -1}, 0.5)
	posB, massB := randomBodies(20, 5, vec.V3{X: 1}, 0.5)
	mpA := FromBodies(posA, massA)
	mpB := FromBodies(posB, massB)
	combined := Combine([]Multipole{mpA, mpB})

	all := append(append([]vec.V3{}, posA...), posB...)
	allM := append(append([]float64{}, massA...), massB...)
	direct := FromBodies(all, allM)

	if math.Abs(combined.M-direct.M) > 1e-12 {
		t.Fatalf("mass: %v vs %v", combined.M, direct.M)
	}
	if combined.COM.Sub(direct.COM).Norm() > 1e-12 {
		t.Fatalf("com: %v vs %v", combined.COM, direct.COM)
	}
	dq := combined.Q.Add(direct.Q.Scale(-1))
	if dq.MaxAbs() > 1e-10 {
		t.Fatalf("quad differs by %v", dq.MaxAbs())
	}
	if math.Abs(combined.B2-direct.B2) > 1e-10 {
		t.Fatalf("B2: %v vs %v", combined.B2, direct.B2)
	}
	// Combined Bmax is an upper bound on the true Bmax.
	if combined.Bmax < direct.Bmax-1e-12 {
		t.Fatalf("Bmax bound violated: %v < %v", combined.Bmax, direct.Bmax)
	}
}

// The multipole field must converge to the direct sum as distance
// grows, and quadrupole must beat monopole.
func TestM2PConvergence(t *testing.T) {
	pos, mass := randomBodies(100, 6, vec.V3{}, 1)
	mp := FromBodies(pos, mass)
	prevMonoErr := math.Inf(1)
	for _, dist := range []float64{3.0, 6.0, 12.0} {
		target := []vec.V3{{X: dist, Y: 0.3, Z: -0.2}}
		exact, exactPot := AccelAt(target[0], pos, mass, 0)

		accM := make([]vec.V3, 1)
		potM := make([]float64, 1)
		M2P(target, accM, potM, &mp, false, 0)
		monoErr := accM[0].Sub(exact).Norm() / exact.Norm()

		accQ := make([]vec.V3, 1)
		potQ := make([]float64, 1)
		M2P(target, accQ, potQ, &mp, true, 0)
		quadErr := accQ[0].Sub(exact).Norm() / exact.Norm()

		if quadErr > monoErr {
			t.Errorf("dist %v: quad error %g worse than mono %g", dist, quadErr, monoErr)
		}
		if monoErr >= prevMonoErr {
			t.Errorf("dist %v: mono error not decreasing (%g -> %g)", dist, prevMonoErr, monoErr)
		}
		prevMonoErr = monoErr
		if math.Abs(potQ[0]-exactPot)/math.Abs(exactPot) > math.Abs(potM[0]-exactPot)/math.Abs(exactPot)+1e-12 {
			t.Errorf("dist %v: quad potential worse than mono", dist)
		}
	}
	// At 12 cell radii the quadrupole field should be very accurate.
	target := []vec.V3{{X: 12}}
	exact, _ := AccelAt(target[0], pos, mass, 0)
	acc := make([]vec.V3, 1)
	pot := make([]float64, 1)
	M2P(target, acc, pot, &mp, true, 0)
	if rel := acc[0].Sub(exact).Norm() / exact.Norm(); rel > 1e-5 {
		t.Errorf("far-field quad error %g", rel)
	}
}

// The Salmon-Warren bound must actually bound the error: at the
// critical radius the observed acceleration error must not exceed
// AccelTol.
func TestSWBoundIsABound(t *testing.T) {
	pos, mass := randomBodies(200, 7, vec.V3{}, 2)
	mp := FromBodies(pos, mass)
	for _, quad := range []bool{false, true} {
		p := MACParams{Kind: MACSalmonWarren, AccelTol: 1e-5, Quad: quad}
		rc := RCrit(&mp, 2, 0, p)
		if rc <= mp.Bmax {
			t.Fatalf("rcrit %v inside cell", rc)
		}
		rng := rand.New(rand.NewSource(8))
		for trial := 0; trial < 50; trial++ {
			dir := vec.V3{X: rng.NormFloat64(), Y: rng.NormFloat64(), Z: rng.NormFloat64()}
			dir = dir.Scale(1 / dir.Norm())
			x := mp.COM.Add(dir.Scale(rc * (1 + rng.Float64())))
			exact, _ := AccelAt(x, pos, mass, 0)
			acc := make([]vec.V3, 1)
			pot := make([]float64, 1)
			M2P([]vec.V3{x}, acc, pot, &mp, quad, 0)
			if err := acc[0].Sub(exact).Norm(); err > p.AccelTol {
				t.Fatalf("quad=%v: error %g exceeds bound %g at r=%v (rcrit %v)",
					quad, err, p.AccelTol, x.Sub(mp.COM).Norm(), rc)
			}
		}
	}
}

func TestRCritBH(t *testing.T) {
	mp := Multipole{M: 1, Bmax: 0.5, B2: 0.25}
	p := MACParams{Kind: MACBarnesHut, Theta: 0.5}
	if rc := RCrit(&mp, 1, 0.1, p); math.Abs(rc-2.1) > 1e-14 {
		t.Fatalf("BH rcrit = %v", rc)
	}
	// Smaller theta means larger rcrit (more accurate).
	loose := RCrit(&mp, 1, 0, MACParams{Kind: MACBarnesHut, Theta: 1.0})
	tight := RCrit(&mp, 1, 0, MACParams{Kind: MACBarnesHut, Theta: 0.3})
	if tight <= loose {
		t.Fatal("theta ordering violated")
	}
}

func TestRCritSWPointMass(t *testing.T) {
	mp := Multipole{M: 5} // B2 = 0: expansion exact
	p := MACParams{Kind: MACSalmonWarren, AccelTol: 1e-6, Quad: true}
	if rc := RCrit(&mp, 1, 0, p); rc != 0 {
		t.Fatalf("point mass rcrit = %v", rc)
	}
}

func TestDefaultMAC(t *testing.T) {
	p := DefaultMAC()
	if p.Kind != MACSalmonWarren || !p.Quad || p.AccelTol <= 0 {
		t.Fatalf("unexpected default: %+v", p)
	}
}

func BenchmarkPPInteraction(b *testing.B) {
	sp, sm := randomBodies(1000, 9, vec.V3{}, 1)
	tp := []vec.V3{{X: 0.1, Y: 0.2, Z: 0.3}}
	acc := make([]vec.V3, 1)
	pot := make([]float64, 1)
	b.ResetTimer()
	n := 0
	for i := 0; i < b.N; i += 1000 {
		PPTile(tp, acc, pot, sp, sm, 1e-4)
		n += 1000
	}
	b.ReportMetric(float64(38), "flops/interaction")
}

func BenchmarkM2PQuad(b *testing.B) {
	pos, mass := randomBodies(100, 10, vec.V3{}, 1)
	mp := FromBodies(pos, mass)
	tp := []vec.V3{{X: 5, Y: 1, Z: 2}}
	acc := make([]vec.V3, 1)
	pot := make([]float64, 1)
	for i := 0; i < b.N; i++ {
		M2P(tp, acc, pot, &mp, true, 0)
	}
}
