// Package diag provides the internal diagnostics the paper's
// performance claims rest on: exact interaction counters (the flop
// rates "follow from the interaction counts and the elapsed
// wall-clock time"), per-phase timers, and load-balance statistics
// across processors.
package diag

import (
	"fmt"
	"runtime"
	"sort"
	"time"
)

// Counters tallies the work done by one processor during a force
// evaluation. The paper charges 38 flops per interaction (both
// body-body and body-cell count as one interaction at monopole order;
// quadrupole terms are charged separately).
type Counters struct {
	PP         uint64 // body-body interactions
	PC         uint64 // body-cell (multipole) interactions
	QuadPC     uint64 // of PC, how many included quadrupole terms
	CellsBuilt uint64 // tree cells constructed
	Traversals uint64 // tree-walk node visits (non-flop work)
	Deferred   uint64 // bodies context-switched waiting on remote data
	Requests   uint64 // remote cell requests issued
	VortexPP   uint64 // vortex body-body interactions
	SPHPairs   uint64 // SPH neighbor pairs evaluated
	// Prefetch accounting (serve-side subtree prefetch): Prefetched
	// counts speculatively imported cells, PrefetchUsed the subset a
	// walk actually resolved. Prefetched - PrefetchUsed is the wasted
	// speculation.
	Prefetched   uint64
	PrefetchUsed uint64
}

// Paper flop-accounting constants.
const (
	FlopsPerInteraction     = 38  // gravitational monopole, Karp rsqrt
	FlopsPerQuadrupole      = 70  // additional cost of the quadrupole term
	FlopsPerVortexInteract  = 168 // regularized Biot-Savart + stretching
	FlopsPerSPHPair         = 55  // density + pressure force pair
	BytesPerInteractionRead = 32  // the paper's computational intensity figure
)

// Bytes-moved accounting for the tiled kernels (internal/grav), the
// denominator of the roofline's arithmetic intensity. The tiled sweeps
// share each 32-byte source row (x,y,z,m) across a block of 4 targets,
// so the memory traffic charged per interaction is the row divided by
// the block height; target rows and accumulators stay in registers for
// a whole sweep and the tile scratch is L1-resident, so neither is
// charged against DRAM bandwidth.
const (
	// BytesPerPPInteraction: 32-byte body source row / 4-target block.
	BytesPerPPInteraction = 8
	// BytesPerPCInteraction: 32-byte monopole row (cm,cx,cy,cz) / 4.
	BytesPerPCInteraction = 8
	// BytesPerQuadPCExtra: the six 8-byte quadrupole columns / 4,
	// charged on top of BytesPerPCInteraction when quad terms run.
	BytesPerQuadPCExtra = 12
)

// KernelBytes returns the bytes moved through the interaction kernels
// under the accounting above: the roofline denominator paired with
// Flops as the numerator.
func (c *Counters) KernelBytes() uint64 {
	return c.PP*BytesPerPPInteraction +
		c.PC*BytesPerPCInteraction +
		c.QuadPC*BytesPerQuadPCExtra
}

// Add accumulates other into c.
func (c *Counters) Add(other Counters) {
	c.PP += other.PP
	c.PC += other.PC
	c.QuadPC += other.QuadPC
	c.CellsBuilt += other.CellsBuilt
	c.Traversals += other.Traversals
	c.Deferred += other.Deferred
	c.Requests += other.Requests
	c.VortexPP += other.VortexPP
	c.SPHPairs += other.SPHPairs
	c.Prefetched += other.Prefetched
	c.PrefetchUsed += other.PrefetchUsed
}

// Sub returns the field-wise difference c - other: the per-step delta
// between two snapshots of an accumulating counter set.
func (c Counters) Sub(other Counters) Counters {
	return Counters{
		PP:           c.PP - other.PP,
		PC:           c.PC - other.PC,
		QuadPC:       c.QuadPC - other.QuadPC,
		CellsBuilt:   c.CellsBuilt - other.CellsBuilt,
		Traversals:   c.Traversals - other.Traversals,
		Deferred:     c.Deferred - other.Deferred,
		Requests:     c.Requests - other.Requests,
		VortexPP:     c.VortexPP - other.VortexPP,
		SPHPairs:     c.SPHPairs - other.SPHPairs,
		Prefetched:   c.Prefetched - other.Prefetched,
		PrefetchUsed: c.PrefetchUsed - other.PrefetchUsed,
	}
}

// Interactions returns the paper's headline interaction count.
func (c *Counters) Interactions() uint64 { return c.PP + c.PC }

// Flops returns the floating point operation count under the paper's
// accounting: 38 per interaction, plus the quadrupole and
// application-kernel surcharges.
func (c *Counters) Flops() uint64 {
	return (c.PP+c.PC)*FlopsPerInteraction +
		c.QuadPC*FlopsPerQuadrupole +
		c.VortexPP*FlopsPerVortexInteract +
		c.SPHPairs*FlopsPerSPHPair
}

// Timer accumulates wall-clock time per named phase.
//
// Concurrency contract: a Timer is single-owner. Exactly one
// goroutine -- the rank's engine loop -- may call Start/Stop; the
// engines uphold this by construction (each rank is one goroutine,
// and worker pools never touch the rank's Timer). Readers (Get,
// Phases, Total, String) must run after the owner has finished, which
// is how every command uses it: msg.Run joins all ranks before any
// report is built. This keeps the hot phase transitions free of
// locks.
type Timer struct {
	phases map[string]time.Duration
	order  []string
	cur    string
	start  time.Time

	// Sink, when set, additionally receives every closed phase
	// interval (name, wall-clock start, duration) -- the hook the
	// trace layer uses to turn accumulated phase times into per-rank
	// timeline spans. Called by the owner goroutine from Stop.
	Sink func(phase string, start time.Time, d time.Duration)
}

// NewTimer returns an empty phase timer.
func NewTimer() *Timer {
	return &Timer{phases: make(map[string]time.Duration)}
}

// Start begins (or resumes) a phase, ending any current one: the
// previous phase's elapsed time is banked (and reported to Sink)
// before the new phase's clock starts.
func (t *Timer) Start(phase string) {
	t.Stop()
	t.cur = phase
	t.start = time.Now()
}

// Stop ends the current phase.
func (t *Timer) Stop() {
	if t.cur == "" {
		return
	}
	if _, ok := t.phases[t.cur]; !ok {
		t.order = append(t.order, t.cur)
	}
	d := time.Since(t.start)
	t.phases[t.cur] += d
	if t.Sink != nil {
		t.Sink(t.cur, t.start, d)
	}
	t.cur = ""
}

// Get returns the accumulated time of a phase.
func (t *Timer) Get(phase string) time.Duration { return t.phases[phase] }

// Phases returns the phase names in first-start order.
func (t *Timer) Phases() []string {
	return append([]string(nil), t.order...)
}

// SnapshotSeconds returns the banked per-phase seconds as a fresh map
// (the open phase, if any, is not included until its Stop). Like
// Start/Stop it may only be called by the owning goroutine; the
// telemetry sampler calls it from the rank's own step loop and hands
// the returned map across, which is what makes mid-run phase
// reporting safe without adding locks here.
func (t *Timer) SnapshotSeconds() map[string]float64 {
	out := make(map[string]float64, len(t.phases))
	for p, d := range t.phases {
		out[p] = d.Seconds()
	}
	return out
}

// Total returns the sum over all phases.
func (t *Timer) Total() time.Duration {
	var sum time.Duration
	for _, d := range t.phases {
		sum += d
	}
	return sum
}

// String renders phases in first-start order.
func (t *Timer) String() string {
	s := ""
	for _, p := range t.order {
		s += fmt.Sprintf("%-16s %v\n", p, t.phases[p])
	}
	return s
}

// Balance summarizes a per-processor quantity: the load-balance
// statistics the paper cites as the hard part of clustered N-body
// work.
type Balance struct {
	Min, Max, Mean, Median float64
	// Efficiency is Mean/Max: the fraction of ideal speedup retained
	// under this imbalance.
	Efficiency float64
}

// BalanceOf computes balance statistics over per-rank values.
func BalanceOf(vals []float64) Balance {
	if len(vals) == 0 {
		return Balance{}
	}
	sorted := append([]float64(nil), vals...)
	sort.Float64s(sorted)
	sum := 0.0
	for _, v := range sorted {
		sum += v
	}
	med := sorted[len(sorted)/2]
	if len(sorted)%2 == 0 {
		// Even count: the midpoint average, not the upper-middle
		// element.
		med = (sorted[len(sorted)/2-1] + sorted[len(sorted)/2]) / 2
	}
	b := Balance{
		Min:    sorted[0],
		Max:    sorted[len(sorted)-1],
		Mean:   sum / float64(len(sorted)),
		Median: med,
	}
	if b.Max > 0 {
		b.Efficiency = b.Mean / b.Max
	}
	return b
}

// Stacks returns the stack traces of every live goroutine -- the raw
// material of a hang diagnosis. The msg stall watchdog appends this to
// its per-rank state table so a stuck collective shows exactly which
// receive each rank is parked in.
func Stacks() []byte {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			return buf[:n]
		}
		buf = make([]byte, 2*len(buf))
	}
}

// Rate formats ops/seconds as a human-readable flops rate, matching
// the paper's Mflops/Gflops conventions.
func Rate(flops uint64, seconds float64) string {
	if seconds <= 0 {
		return "inf"
	}
	r := float64(flops) / seconds
	switch {
	case r >= 1e12:
		return fmt.Sprintf("%.2f Tflops", r/1e12)
	case r >= 1e9:
		return fmt.Sprintf("%.2f Gflops", r/1e9)
	case r >= 1e6:
		return fmt.Sprintf("%.2f Mflops", r/1e6)
	default:
		return fmt.Sprintf("%.0f flops", r)
	}
}
