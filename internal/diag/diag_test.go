package diag

import (
	"strings"
	"testing"
	"time"
)

func TestCountersFlops(t *testing.T) {
	c := Counters{PP: 10, PC: 5}
	if c.Interactions() != 15 {
		t.Fatalf("Interactions = %d", c.Interactions())
	}
	if c.Flops() != 15*38 {
		t.Fatalf("Flops = %d", c.Flops())
	}
	c.QuadPC = 5
	if c.Flops() != 15*38+5*70 {
		t.Fatalf("Flops with quad = %d", c.Flops())
	}
	c2 := Counters{VortexPP: 2, SPHPairs: 3}
	if c2.Flops() != 2*FlopsPerVortexInteract+3*FlopsPerSPHPair {
		t.Fatalf("app kernel flops = %d", c2.Flops())
	}
}

func TestCountersAdd(t *testing.T) {
	a := Counters{PP: 1, PC: 2, QuadPC: 3, CellsBuilt: 4, Traversals: 5, Deferred: 6, Requests: 7, VortexPP: 8, SPHPairs: 9}
	b := a
	a.Add(b)
	if a.PP != 2 || a.PC != 4 || a.QuadPC != 6 || a.CellsBuilt != 8 ||
		a.Traversals != 10 || a.Deferred != 12 || a.Requests != 14 ||
		a.VortexPP != 16 || a.SPHPairs != 18 {
		t.Fatalf("Add wrong: %+v", a)
	}
}

func TestTimer(t *testing.T) {
	tm := NewTimer()
	tm.Start("build")
	time.Sleep(2 * time.Millisecond)
	tm.Start("walk") // implicitly stops build
	time.Sleep(2 * time.Millisecond)
	tm.Stop()
	if tm.Get("build") <= 0 || tm.Get("walk") <= 0 {
		t.Fatal("phases not recorded")
	}
	if tm.Total() < tm.Get("build") {
		t.Fatal("total smaller than a phase")
	}
	s := tm.String()
	if !strings.Contains(s, "build") || !strings.Contains(s, "walk") {
		t.Fatalf("String missing phases: %q", s)
	}
	// build must come first (first-start order).
	if strings.Index(s, "build") > strings.Index(s, "walk") {
		t.Fatal("phase order not preserved")
	}
	// Stopping when already stopped is a no-op.
	tm.Stop()
}

func TestBalanceOf(t *testing.T) {
	b := BalanceOf([]float64{1, 2, 3, 10})
	if b.Min != 1 || b.Max != 10 || b.Mean != 4 {
		t.Fatalf("balance = %+v", b)
	}
	// Even-length median is the midpoint average, not the
	// upper-middle element (regression: used to report 3 here).
	if b.Median != 2.5 {
		t.Fatalf("even-length median = %v, want 2.5", b.Median)
	}
	if b.Efficiency != 0.4 {
		t.Fatalf("efficiency = %v", b.Efficiency)
	}
	if got := BalanceOf(nil); got != (Balance{}) {
		t.Fatalf("empty balance = %+v", got)
	}
	perfect := BalanceOf([]float64{5, 5, 5})
	if perfect.Efficiency != 1 {
		t.Fatalf("perfect efficiency = %v", perfect.Efficiency)
	}
	// Odd-length median is the middle element, unsorted input.
	odd := BalanceOf([]float64{9, 1, 4})
	if odd.Median != 4 {
		t.Fatalf("odd-length median = %v, want 4", odd.Median)
	}
	two := BalanceOf([]float64{2, 4})
	if two.Median != 3 {
		t.Fatalf("two-element median = %v, want 3", two.Median)
	}
}

// Start while a phase is running must close the previous phase: its
// time is banked, it appears exactly once in first-start order, and
// the Sink sees the closed interval before the new phase begins.
func TestTimerStartClosesPrevious(t *testing.T) {
	tm := NewTimer()
	type closed struct {
		phase string
		start time.Time
		d     time.Duration
	}
	var sunk []closed
	tm.Sink = func(phase string, start time.Time, d time.Duration) {
		sunk = append(sunk, closed{phase, start, d})
	}

	tm.Start("build")
	time.Sleep(time.Millisecond)
	tm.Start("walk") // must close "build" with nonzero duration
	if got := tm.Get("build"); got <= 0 {
		t.Fatalf("build not closed by Start: %v", got)
	}
	if len(sunk) != 1 || sunk[0].phase != "build" || sunk[0].d != tm.Get("build") {
		t.Fatalf("sink after implicit close: %+v", sunk)
	}
	time.Sleep(time.Millisecond)
	tm.Start("build") // resume: accumulates, no duplicate in order
	tm.Stop()
	if len(sunk) != 3 {
		t.Fatalf("sink saw %d intervals, want 3", len(sunk))
	}
	if got := tm.Phases(); len(got) != 2 || got[0] != "build" || got[1] != "walk" {
		t.Fatalf("phases = %v", got)
	}
	// The sink intervals tile without overlap: each starts no earlier
	// than the previous one ended.
	for i := 1; i < len(sunk); i++ {
		if sunk[i].start.Before(sunk[i-1].start.Add(sunk[i-1].d)) {
			t.Fatalf("sink intervals overlap: %+v", sunk)
		}
	}
	if tm.Get("build") != sunk[0].d+sunk[2].d {
		t.Fatalf("accumulated build %v != sunk sum %v", tm.Get("build"), sunk[0].d+sunk[2].d)
	}
}

func TestRate(t *testing.T) {
	cases := []struct {
		flops uint64
		sec   float64
		want  string
	}{
		{38_000_000, 1, "38.00 Mflops"},
		{431_000_000_000, 1, "431.00 Gflops"},
		{2_000_000_000_000, 1, "2.00 Tflops"},
		{500, 1, "500 flops"},
	}
	for _, c := range cases {
		if got := Rate(c.flops, c.sec); got != c.want {
			t.Errorf("Rate(%d, %g) = %q, want %q", c.flops, c.sec, got, c.want)
		}
	}
	if Rate(1, 0) != "inf" {
		t.Error("zero-time rate should be inf")
	}
}

func TestStacksListsGoroutines(t *testing.T) {
	out := Stacks()
	if !strings.Contains(string(out), "goroutine") {
		t.Fatalf("stack dump looks empty: %q", string(out[:min(len(out), 80)]))
	}
	if !strings.Contains(string(out), "TestStacksListsGoroutines") {
		t.Fatal("dump does not include the calling goroutine")
	}
}
