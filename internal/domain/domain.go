// Package domain implements the work-weighted domain decomposition:
// bodies are ordered along the Morton curve and the curve is cut into
// Np contiguous intervals of equal *work* (not equal count), so that
// the expensive clustered regions spread across processors. The paper
// describes this as "practically identical to a parallel sorting
// algorithm, with the modification that the amount of data that ends
// up in each processor is weighted by the work associated with each
// item".
//
// Splitters are found by a parallel bisection on the 63-bit key-offset
// space: each round every rank reports the work below the probe
// offsets (a binary search in its sorted local array), an allreduce
// sums them, and the probes halve. 63 rounds pin the splitters
// exactly; bodies then move with a single all-to-all exchange.
package domain

import (
	"sort"

	"repro/internal/core"
	"repro/internal/keys"
	"repro/internal/msg"
	"repro/internal/tree"
	"repro/internal/vec"
)

// Wire is the packed body record moved during the exchange.
type Wire struct {
	Pos, Vel, Alpha vec.V3
	Mass, Work, H   float64
	Rho             float64
	ID              int64
}

// WireBytes is the logical size of one Wire on the network.
const WireBytes = 14 * 8

// Result is the outcome of a decomposition.
type Result struct {
	// Sys holds this rank's new bodies, key-sorted.
	Sys *core.System
	// Splits has length P+1: rank r owns key offsets
	// [Splits[r], Splits[r+1]).
	Splits []uint64
	// Moved counts bodies that changed ranks (this rank's sends).
	Moved int
}

// Decompose redistributes bodies so every rank owns a contiguous
// Morton interval of roughly equal total Work. The input system is
// consumed (sorted in place and then repacked).
func Decompose(c *msg.Comm, sys *core.System, d keys.Domain) Result {
	c.Phase("decompose")
	sys.AssignKeys(d)
	sys.SortByKey()
	n := sys.Len()
	p := c.Size()

	// Local prefix work sums: pw[i] = work of bodies [0, i).
	pw := make([]float64, n+1)
	for i := 0; i < n; i++ {
		pw[i+1] = pw[i] + sys.Work[i]
	}
	workBelow := func(off uint64) float64 {
		idx := sort.Search(n, func(i int) bool {
			return tree.KeyOffset(sys.Key[i]) >= off
		})
		return pw[idx]
	}

	total := msg.Allreduce(c, pw[n], msg.SumF64, 8)

	// Bisection for the P-1 interior splitters, all probed per round.
	lo := make([]uint64, p-1)
	hi := make([]uint64, p-1)
	tgt := make([]float64, p-1)
	for s := range lo {
		lo[s] = 0
		hi[s] = tree.EndOffset
		tgt[s] = total * float64(s+1) / float64(p)
	}
	probes := make([]float64, p-1)
	for round := 0; round < 64; round++ {
		done := true
		for s := range lo {
			if hi[s]-lo[s] > 1 {
				done = false
			}
			probes[s] = workBelow((lo[s] + hi[s]) / 2)
		}
		if done {
			break
		}
		sums := msg.Allreduce(c, append([]float64(nil), probes...), sumVec, 8*(p-1))
		for s := range lo {
			mid := (lo[s] + hi[s]) / 2
			if sums[s] >= tgt[s] {
				hi[s] = mid
			} else {
				lo[s] = mid
			}
		}
	}

	splits := make([]uint64, p+1)
	splits[p] = tree.EndOffset
	for s := range hi {
		splits[s+1] = hi[s]
	}

	// Pack send buffers: bodies are sorted, so each destination's
	// bodies form one contiguous run.
	send := make([][]Wire, p)
	moved := 0
	start := 0
	for r := 0; r < p; r++ {
		end := start + sort.Search(n-start, func(i int) bool {
			return tree.KeyOffset(sys.Key[start+i]) >= splits[r+1]
		})
		if r != c.Rank() {
			moved += end - start
		}
		buf := make([]Wire, 0, end-start)
		for i := start; i < end; i++ {
			w := Wire{Pos: sys.Pos[i], Mass: sys.Mass[i], Work: sys.Work[i], ID: sys.ID[i]}
			if sys.Vel != nil {
				w.Vel = sys.Vel[i]
			}
			if sys.Alpha != nil {
				w.Alpha = sys.Alpha[i]
			}
			if sys.H != nil {
				w.H = sys.H[i]
			}
			if sys.Rho != nil {
				w.Rho = sys.Rho[i]
			}
			buf = append(buf, w)
		}
		send[r] = buf
		start = end
	}

	recv := msg.Alltoallv(c, send, WireBytes)

	// Unpack, preserving the field configuration of the input.
	m := 0
	for _, b := range recv {
		m += len(b)
	}
	out := core.New(m)
	if sys.Vel != nil || sys.Acc != nil || sys.Pot != nil {
		out.EnableDynamics()
	}
	if sys.Alpha != nil {
		out.EnableVortex()
	}
	if sys.H != nil {
		out.EnableSPH()
	}
	i := 0
	for _, buf := range recv {
		for _, w := range buf {
			out.Pos[i] = w.Pos
			out.Mass[i] = w.Mass
			out.Work[i] = w.Work
			out.ID[i] = w.ID
			if out.Vel != nil {
				out.Vel[i] = w.Vel
			}
			if out.Alpha != nil {
				out.Alpha[i] = w.Alpha
			}
			if out.H != nil {
				out.H[i] = w.H
			}
			if out.Rho != nil {
				out.Rho[i] = w.Rho
			}
			i++
		}
	}
	out.AssignKeys(d)
	out.SortByKey()
	return Result{Sys: out, Splits: splits, Moved: moved}
}

func sumVec(a, b []float64) []float64 {
	out := make([]float64, len(a))
	for i := range a {
		out[i] = a[i] + b[i]
	}
	return out
}

// GlobalDomain computes the bounding domain of bodies distributed
// across ranks (allreduce of the coordinate bounds), so every rank
// quantizes keys identically.
func GlobalDomain(c *msg.Comm, sys *core.System) keys.Domain {
	type bounds struct{ Lo, Hi vec.V3 }
	b := bounds{
		Lo: vec.V3{X: 1e300, Y: 1e300, Z: 1e300},
		Hi: vec.V3{X: -1e300, Y: -1e300, Z: -1e300},
	}
	for _, p := range sys.Pos {
		b.Lo = vec.Min(b.Lo, p)
		b.Hi = vec.Max(b.Hi, p)
	}
	g := msg.Allreduce(c, b, func(x, y bounds) bounds {
		return bounds{Lo: vec.Min(x.Lo, y.Lo), Hi: vec.Max(x.Hi, y.Hi)}
	}, 48)
	span := g.Hi.Sub(g.Lo)
	size := span.MaxAbs()
	if size <= 0 {
		size = 1
	}
	size *= 1.0 + 1e-6
	return keys.Domain{Origin: g.Lo, Size: size}
}
