// Package domain implements the work-weighted domain decomposition:
// bodies are ordered along the Morton curve and the curve is cut into
// Np contiguous intervals of equal *work* (not equal count), so that
// the expensive clustered regions spread across processors. The paper
// describes this as "practically identical to a parallel sorting
// algorithm, with the modification that the amount of data that ends
// up in each processor is weighted by the work associated with each
// item".
//
// Splitters are found by a parallel bisection on the 63-bit key-offset
// space: each round every rank reports the work below the probe
// offsets (a binary search in its sorted local array), an allreduce
// sums them, and the probes halve. 63 rounds pin the splitters
// exactly; bodies then move with a single all-to-all exchange.
//
// The paper's other observation is that the decomposition changes
// slowly between timesteps, so a persistent Decomposer works
// incrementally: the local order is repaired (core.Sorter.Resort)
// instead of re-sorted, the bisection brackets start from a window
// around the previous step's splitters (falling back to the full
// interval when the window no longer brackets the target, so the
// splits are byte-identical to a cold solve either way), and the
// prefix/probe/send scratch is reused across calls.
package domain

import (
	"repro/internal/core"
	"repro/internal/diag"
	"repro/internal/keys"
	"repro/internal/msg"
	"repro/internal/tree"
	"repro/internal/vec"
)

// Wire is the packed body record moved during the exchange.
type Wire struct {
	Pos, Vel, Alpha vec.V3
	Mass, Work, H   float64
	Rho             float64
	ID              int64
	// Rung is the block-timestep rung, carried so a body that strays
	// across a rank boundary mid-step keeps its sub-step schedule.
	Rung uint8
}

// WireBytes is the logical size of one Wire on the network (13
// float64 triples/scalars + id + one rung byte).
const WireBytes = 14*8 + 1

// Result is the outcome of a decomposition.
type Result struct {
	// Sys holds this rank's new bodies, key-sorted.
	Sys *core.System
	// Splits has length P+1: rank r owns key offsets
	// [Splits[r], Splits[r+1]).
	Splits []uint64
	// Moved counts bodies that changed ranks (this rank's sends).
	Moved int
}

// warmWindow is the half-width, in key offsets, of the bracket a warm
// bisection starts from around the previous step's splitters. 2^40 is
// 2^-23 of the curve: generous against per-step drift, yet it cuts
// the bisection from 63 allreduce rounds to about 41.
const warmWindow = uint64(1) << 40

// DefaultReuseThreshold is the displaced-body fraction at or below
// which a Reuse decomposition keeps the previous splits. One body in
// twenty crossing a cell boundary between sub-steps barely moves the
// work balance, and the splits are refreshed exactly at every
// synchronization point anyway.
const DefaultReuseThreshold = 0.05

// Stats describes the most recent Decompose call of a Decomposer.
type Stats struct {
	// Displaced is the number of out-of-order bodies the pre-exchange
	// repair extracted; equal to the body count when it fell back to a
	// full sort.
	Displaced int
	// FullSort reports that fallback.
	FullSort bool
	// Rounds is the number of bisection allreduce rounds.
	Rounds int
	// WarmSplitters is how many of the P-1 splitters accepted the
	// warm-start bracket (0 on a cold solve).
	WarmSplitters int
	// MergeRuns is the number of non-empty sorted runs the
	// post-exchange merge combined (1 means the order was free).
	MergeRuns int
	// DisplacedFrac is the global fraction of bodies the order repair
	// found displaced, allreduced so every rank sees the same value.
	// Only computed when Reuse is set (it costs the one allreduce that
	// replaces the bisection's many).
	DisplacedFrac float64
	// SplitsReused reports that the fast path engaged: the previous
	// splits were kept verbatim and the bisection was skipped.
	SplitsReused bool
}

// Decomposer carries the cross-step state of the incremental
// decomposition: the sorter scratch, the previous splits, and every
// reusable buffer. One Decomposer per rank; the zero value is a cold
// decomposer. The one-shot Decompose function wraps it.
type Decomposer struct {
	// Workers caps the sort fan-out (core.Sorter.Workers).
	Workers int
	// Cold disables every cross-step shortcut: full sort, full-range
	// bisection. The results are byte-identical either way; Cold
	// exists for ablations and paranoia.
	Cold bool
	// Reuse enables the displaced-fraction fast path for the partial
	// force evaluations of block timesteps: when the globally
	// allreduced fraction of displaced bodies is at most
	// ReuseThreshold, the previous call's splits are kept verbatim and
	// the splitter bisection (and its allreduce rounds) is skipped
	// entirely. Bodies that drifted across the kept boundaries are
	// still exchanged, so ownership stays exact; only the load balance
	// goes slightly stale until the next full decomposition. Unlike
	// Cold, this changes results (the splits), so callers enable it
	// only between synchronization points.
	Reuse bool
	// ReuseThreshold is the displaced fraction at or below which Reuse
	// keeps the previous splits; 0 means DefaultReuseThreshold.
	ReuseThreshold float64
	// Sub, when non-nil, accumulates the sorting share of the
	// construction pipeline under the phase "treebuild/sort".
	Sub *diag.Timer
	// Last describes the most recent call.
	Last Stats

	sorter core.Sorter
	prev   []uint64

	pw     []float64
	lo, hi []uint64
	tgt    []float64
	probes []float64
	warm   []float64
	send   [][]Wire
	perm   []int32
	heads  []int
}

// Decompose redistributes bodies so every rank owns a contiguous
// Morton interval of roughly equal total Work. The input system is
// consumed (sorted in place and then repacked). Order contract: the
// returned system is sorted by (Key, ID), exactly as core.Sorter
// produces, regardless of which incremental shortcuts engaged.
func (dc *Decomposer) Decompose(c *msg.Comm, sys *core.System, d keys.Domain) Result {
	c.Phase("decompose")
	dc.Last = Stats{}
	dc.sorter.Workers = dc.Workers

	if dc.Sub != nil {
		dc.Sub.Start("treebuild/sort")
	}
	sys.AssignKeys(d)
	if dc.Cold {
		dc.sorter.Sort(sys)
		dc.Last.Displaced = sys.Len()
		dc.Last.FullSort = true
	} else {
		n := sys.Len()
		dc.Last.Displaced = dc.sorter.Resort(sys)
		dc.Last.FullSort = dc.Last.Displaced == n && n > 0
	}
	if dc.Sub != nil {
		dc.Sub.Stop()
	}

	n := sys.Len()
	p := c.Size()

	var splits []uint64
	if dc.Reuse && !dc.Cold && len(dc.prev) == p+1 {
		// Fast path for partial evaluations: one allreduce decides --
		// identically on every rank -- whether few enough bodies moved
		// to keep the previous splits and skip the bisection.
		thresh := dc.ReuseThreshold
		if thresh <= 0 {
			thresh = DefaultReuseThreshold
		}
		cnt := msg.Allreduce(c, [2]float64{float64(dc.Last.Displaced), float64(n)}, sumPair, 16)
		dc.Last.Rounds++
		if cnt[1] > 0 {
			dc.Last.DisplacedFrac = cnt[0] / cnt[1]
		}
		if cnt[0] <= thresh*cnt[1] {
			dc.Last.SplitsReused = true
			splits = append([]uint64(nil), dc.prev...)
		}
	}
	if splits == nil {
		// Local prefix work sums: pw[i] = work of bodies [0, i).
		if cap(dc.pw) < n+1 {
			dc.pw = make([]float64, n+1)
		}
		pw := dc.pw[:n+1]
		pw[0] = 0
		for i := 0; i < n; i++ {
			pw[i+1] = pw[i] + sys.Work[i]
		}

		total := msg.Allreduce(c, pw[n], msg.SumF64, 8)
		splits = dc.bisect(c, sys, pw, total, p)
	}

	// Pack send buffers: bodies are sorted, so each destination's
	// bodies form one contiguous run and a single linear sweep finds
	// every boundary. The buffers are reused across calls: the next
	// call's collectives cannot be reached by any rank before this
	// call's receivers are done reading, so overwriting is safe.
	if len(dc.send) < p {
		dc.send = make([][]Wire, p)
	}
	send := dc.send[:p]
	moved := 0
	start := 0
	for r := 0; r < p; r++ {
		limit := splits[r+1]
		end := start
		for end < n && tree.KeyOffset(sys.Key[end]) < limit {
			end++
		}
		if r != c.Rank() {
			moved += end - start
		}
		buf := send[r][:0]
		for i := start; i < end; i++ {
			w := Wire{Pos: sys.Pos[i], Mass: sys.Mass[i], Work: sys.Work[i], ID: sys.ID[i]}
			if sys.Vel != nil {
				w.Vel = sys.Vel[i]
			}
			if sys.Alpha != nil {
				w.Alpha = sys.Alpha[i]
			}
			if sys.H != nil {
				w.H = sys.H[i]
			}
			if sys.Rho != nil {
				w.Rho = sys.Rho[i]
			}
			if sys.Rung != nil {
				w.Rung = sys.Rung[i]
			}
			buf = append(buf, w)
		}
		send[r] = buf
		start = end
	}

	recv := msg.Alltoallv(c, send, WireBytes)

	// Unpack, preserving the field configuration of the input.
	m := 0
	for _, b := range recv {
		m += len(b)
	}
	out := core.New(m)
	if sys.Vel != nil || sys.Acc != nil || sys.Pot != nil {
		out.EnableDynamics()
	}
	if sys.Alpha != nil {
		out.EnableVortex()
	}
	if sys.H != nil {
		out.EnableSPH()
	}
	if sys.Rung != nil {
		out.EnableRungs()
	}
	i := 0
	for _, buf := range recv {
		for _, w := range buf {
			out.Pos[i] = w.Pos
			out.Mass[i] = w.Mass
			out.Work[i] = w.Work
			out.ID[i] = w.ID
			if out.Vel != nil {
				out.Vel[i] = w.Vel
			}
			if out.Alpha != nil {
				out.Alpha[i] = w.Alpha
			}
			if out.H != nil {
				out.H[i] = w.H
			}
			if out.Rho != nil {
				out.Rho[i] = w.Rho
			}
			if out.Rung != nil {
				out.Rung[i] = w.Rung
			}
			i++
		}
	}

	if dc.Sub != nil {
		dc.Sub.Start("treebuild/sort")
	}
	out.AssignKeys(d)
	// The received buffers are P (Key, ID)-sorted runs over this
	// rank's new interval; merging them by run boundary is the full
	// stable sort without sorting anything.
	dc.mergeRuns(out, recv)
	if dc.Sub != nil {
		dc.Sub.Stop()
	}

	dc.prev = append(dc.prev[:0], splits...)
	return Result{Sys: out, Splits: splits, Moved: moved}
}

// bisect finds the P-1 interior splitters. A warm bracket from the
// previous call is validated with one extra allreduce round; every
// splitter whose bracket no longer contains its work target falls
// back to the full interval, so the fixed point -- the smallest
// offset whose cumulative work reaches the target -- is identical to
// a cold solve.
func (dc *Decomposer) bisect(c *msg.Comm, sys *core.System, pw []float64, total float64, p int) []uint64 {
	if cap(dc.lo) < p-1 {
		dc.lo = make([]uint64, p-1)
		dc.hi = make([]uint64, p-1)
		dc.tgt = make([]float64, p-1)
		dc.probes = make([]float64, p-1)
		dc.warm = make([]float64, 2*(p-1))
	}
	lo, hi := dc.lo[:p-1], dc.hi[:p-1]
	tgt, probes := dc.tgt[:p-1], dc.probes[:p-1]
	workBelow := func(off uint64) float64 {
		return pw[searchOffset(sys.Key, off)]
	}
	for s := range lo {
		lo[s] = 0
		hi[s] = tree.EndOffset
		tgt[s] = total * float64(s+1) / float64(p)
	}

	if !dc.Cold && len(dc.prev) == p+1 && p > 1 {
		warm := dc.warm[:2*(p-1)]
		for s := range lo {
			wlo, whi := warmBracket(dc.prev[s+1])
			warm[2*s] = workBelow(wlo)
			warm[2*s+1] = workBelow(whi)
		}
		sums := msg.Allreduce(c, append([]float64(nil), warm...), sumVec, 8*len(warm))
		dc.Last.Rounds++
		for s := range lo {
			wlo, whi := warmBracket(dc.prev[s+1])
			if sums[2*s] < tgt[s] && sums[2*s+1] >= tgt[s] {
				lo[s], hi[s] = wlo, whi
				dc.Last.WarmSplitters++
			}
		}
	}

	for round := 0; round < 64; round++ {
		done := true
		for s := range lo {
			if hi[s]-lo[s] > 1 {
				done = false
			}
			probes[s] = workBelow((lo[s] + hi[s]) / 2)
		}
		if done {
			break
		}
		sums := msg.Allreduce(c, append([]float64(nil), probes...), sumVec, 8*(p-1))
		dc.Last.Rounds++
		for s := range lo {
			mid := (lo[s] + hi[s]) / 2
			if sums[s] >= tgt[s] {
				hi[s] = mid
			} else {
				lo[s] = mid
			}
		}
	}

	splits := make([]uint64, p+1)
	splits[p] = tree.EndOffset
	for s := range hi {
		splits[s+1] = hi[s]
	}
	return splits
}

// warmBracket clamps [prev-warmWindow, prev+warmWindow] to the curve.
func warmBracket(prev uint64) (lo, hi uint64) {
	lo = 0
	if prev > warmWindow {
		lo = prev - warmWindow
	}
	hi = prev + warmWindow
	if hi > tree.EndOffset {
		hi = tree.EndOffset
	}
	return lo, hi
}

// mergeRuns restores (Key, ID) order over the freshly unpacked
// bodies. recv holds the exchange's receive buffers in source-rank
// order; their concatenation is out, so each buffer is one sorted run
// and a P-way merge over the run boundaries reproduces the full
// stable sort exactly.
func (dc *Decomposer) mergeRuns(out *core.System, recv [][]Wire) {
	n := out.Len()
	if n < 2 {
		return
	}
	dc.heads = dc.heads[:0]
	runs := 0
	off := 0
	for _, b := range recv {
		dc.heads = append(dc.heads, off)
		off += len(b)
		dc.heads = append(dc.heads, off)
		if len(b) > 0 {
			runs++
		}
	}
	dc.Last.MergeRuns = runs
	if runs <= 1 {
		return // zero or one run: already sorted
	}
	if cap(dc.perm) < n {
		dc.perm = make([]int32, n)
	}
	perm := dc.perm[:n]
	for k := 0; k < n; k++ {
		best, bestIdx := -1, -1
		for r := 0; r < len(dc.heads); r += 2 {
			h := dc.heads[r]
			if h >= dc.heads[r+1] {
				continue
			}
			if best < 0 || lessByKeyID(out, h, bestIdx) {
				best, bestIdx = r, h
			}
		}
		perm[k] = int32(bestIdx)
		dc.heads[best]++
	}
	dc.sorter.Workers = dc.Workers
	dc.sorter.Apply(out, perm)
}

// lessByKeyID orders bodies i, j of s by (Key, ID).
func lessByKeyID(s *core.System, i, j int) bool {
	if s.Key[i] != s.Key[j] {
		return s.Key[i] < s.Key[j]
	}
	return s.ID[i] < s.ID[j]
}

// searchOffset returns the first index whose key offset is >= off.
func searchOffset(ks []keys.Key, off uint64) int {
	lo, hi := 0, len(ks)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if tree.KeyOffset(ks[mid]) < off {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Decompose is the one-shot entry point: a fresh (cold) Decomposer
// per call, byte-identical to the historical function.
func Decompose(c *msg.Comm, sys *core.System, d keys.Domain) Result {
	return new(Decomposer).Decompose(c, sys, d)
}

func sumPair(a, b [2]float64) [2]float64 {
	return [2]float64{a[0] + b[0], a[1] + b[1]}
}

func sumVec(a, b []float64) []float64 {
	out := make([]float64, len(a))
	for i := range a {
		out[i] = a[i] + b[i]
	}
	return out
}

// GlobalDomain computes the bounding domain of bodies distributed
// across ranks (allreduce of the coordinate bounds), so every rank
// quantizes keys identically.
func GlobalDomain(c *msg.Comm, sys *core.System) keys.Domain {
	type bounds struct{ Lo, Hi vec.V3 }
	b := bounds{
		Lo: vec.V3{X: 1e300, Y: 1e300, Z: 1e300},
		Hi: vec.V3{X: -1e300, Y: -1e300, Z: -1e300},
	}
	for _, p := range sys.Pos {
		b.Lo = vec.Min(b.Lo, p)
		b.Hi = vec.Max(b.Hi, p)
	}
	g := msg.Allreduce(c, b, func(x, y bounds) bounds {
		return bounds{Lo: vec.Min(x.Lo, y.Lo), Hi: vec.Max(x.Hi, y.Hi)}
	}, 48)
	span := g.Hi.Sub(g.Lo)
	size := span.MaxAbs()
	if size <= 0 {
		size = 1
	}
	size *= 1.0 + 1e-6
	return keys.Domain{Origin: g.Lo, Size: size}
}
